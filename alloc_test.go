package aqua_test

import (
	"testing"
	"time"

	"aqua/internal/experiment"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
)

// TestEvaluateSteadyStateZeroAlloc is the CI-enforced form of
// BenchmarkEvaluateSteadyState's allocation contract: with observability
// disabled (no registry anywhere near the hot path), repeated model
// evaluation against a warm repository must not allocate. The observability
// subsystem's nil-receiver no-ops ride this same path, so a regression here
// usually means an instrument call stopped being free when disabled.
func TestEvaluateSteadyStateZeroAlloc(t *testing.T) {
	rng := seededRand(42)
	now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	repo := repository.New(20)
	prim, sec := experiment.SeedRepository(repo, 16, 20, rng, now)
	model := selection.Model{BinWidth: 2 * time.Millisecond, LazyInterval: 4 * time.Second}
	spec := qos.Spec{Staleness: 2, Deadline: 150 * time.Millisecond, MinProb: 0.9}
	var in selection.Input
	model.EvaluateInto(&in, repo, prim, sec, "seq", spec, now) // warm caches
	targets := selection.Algorithm1{}.Select(in)

	allocs := testing.AllocsPerRun(200, func() {
		model.EvaluateInto(&in, repo, prim, sec, "seq", spec, now)
		selection.PKOf(&in, targets)
	})
	if allocs != 0 {
		t.Fatalf("steady-state evaluate+observe allocated %.1f/op, want 0", allocs)
	}
}
