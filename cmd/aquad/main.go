// Command aquad hosts one or more replica gateways of a replicated service
// in a single OS process, speaking the protocol over TCP. Several aquad
// processes plus aquacli form a real distributed deployment of the
// framework — the same gateways the simulator runs, on real sockets.
//
// Topology is described by a flag-friendly cluster spec shared by every
// process:
//
//	-cluster "p00=127.0.0.1:7100,p01=127.0.0.1:7101,p02=127.0.0.1:7102,s00=127.0.0.1:7103"
//	-primaries "p00,p01,p02"        # p00 (lowest ID) is the sequencer
//	-clients "c00"                  # client IDs that will connect
//	-host "p01,p02"                 # which replicas THIS process hosts
//	-listen "127.0.0.1:7101"        # this process's TCP endpoint
//
// Example (three terminals):
//
//	aquad -listen 127.0.0.1:7100 -host p00,p01 ...
//	aquad -listen 127.0.0.1:7200 -host p02,s00 ...
//	aquacli -id c00 -listen 127.0.0.1:7300 ...
//
// Alternatively, -shards N stands up a self-contained N-shard service in
// this one process — every shard's sequencer, primaries, and secondaries
// as concurrent goroutine-backed nodes on the parallel runtime. In that
// mode -cluster lists only the client processes (id=host:port) that will
// connect, and -primaries/-host are ignored:
//
//	aquad -listen 127.0.0.1:7100 -shards 4 -cluster "c00=127.0.0.1:7300" -clients c00
//
// -pprof-addr serves net/http/pprof in either mode, for profiling the
// serving hot path under live load.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/cluster"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/tcpnet"
	"aqua/internal/wal"
)

func main() {
	var (
		clusterSpec = flag.String("cluster", "", "comma-separated id=host:port for every replica and client process")
		primaries   = flag.String("primaries", "", "comma-separated primary group IDs (lowest is the sequencer)")
		clients     = flag.String("clients", "", "comma-separated client IDs")
		host        = flag.String("host", "", "comma-separated replica IDs hosted by this process")
		listen      = flag.String("listen", "127.0.0.1:7100", "TCP listen address of this process")
		sendq       = flag.Int("sendq", tcpnet.DefaultSendQueue, "per-peer send queue capacity in frames (overflow drops are recovered by retransmission)")
		lazy        = flag.Duration("lazy", 2*time.Second, "lazy update interval T_L")
		appName     = flag.String("app", "kv", "replicated application: kv, document, ticker")
		metricsAddr = flag.String("metrics-addr", "", "HTTP address serving Prometheus text on /metrics (empty = metrics off)")
		pprofAddr   = flag.String("pprof-addr", "", "HTTP address serving net/http/pprof under /debug/pprof/ (empty = off)")
		tracePath   = flag.String("trace", "", "JSONL trace output file (empty = tracing off)")
		verbose     = flag.Bool("v", false, "log gateway diagnostics")
		shards      = flag.Int("shards", 0, "host a self-contained N-shard service in this process (-primaries/-host ignored; -cluster lists client peers only)")
		shardPrim   = flag.Int("shard-primaries", 2, "serving primaries per shard in -shards mode (the sequencer is extra)")
		shardSec    = flag.Int("shard-secondaries", 1, "secondaries per shard in -shards mode")
		walDir      = flag.String("wal-dir", "", "directory for per-replica WAL + snapshot files; a restarted process recovers from it instead of re-fetching history (empty = durability off)")
		snapEvery   = flag.Int("snapshot-every", 0, "WAL compaction threshold in log records (0 = default)")
		replAssign  = flag.Bool("replicated-assign", false, "enable majority-floor replicated GSN ordering in the primary group")
	)
	flag.Parse()

	if *pprofAddr != "" {
		srv := servePprof(*pprofAddr)
		defer srv.Close()
	}
	var err error
	if *shards > 0 {
		err = runSharded(*clusterSpec, *clients, *listen, *sendq, *lazy, *appName,
			*metricsAddr, *shards, *shardPrim, *shardSec, *verbose)
	} else {
		err = run(*clusterSpec, *primaries, *clients, *host, *listen, *sendq, *lazy, *appName,
			*metricsAddr, *tracePath, *walDir, *snapEvery, *replAssign, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aquad:", err)
		os.Exit(1)
	}
}

// servePprof exposes the standard net/http/pprof endpoints on their own
// listener (kept off the metrics mux so profiling a wedged process never
// competes with scrapes, and so it can stay firewalled separately).
func servePprof(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "aquad: pprof server:", err)
		}
	}()
	fmt.Printf("aquad: pprof on http://%s/debug/pprof/\n", addr)
	return srv
}

func newApp(name string) (func() app.Application, error) {
	switch name {
	case "kv":
		return func() app.Application { return apps.NewKVStore() }, nil
	case "document":
		return func() app.Application { return apps.NewDocument() }, nil
	case "ticker":
		return func() app.Application { return apps.NewTicker() }, nil
	default:
		return nil, fmt.Errorf("unknown -app %q (want kv, document, or ticker)", name)
	}
}

// runSharded is the -shards mode: one process hosting every replica of an
// N-shard service as concurrent nodes on the parallel runtime. The
// cluster spec lists only the client processes that will connect.
func runSharded(clusterSpec, clients, listen string, sendq int, lazy time.Duration, appName,
	metricsAddr string, shards, prim, sec int, verbose bool) error {
	mkApp, err := newApp(appName)
	if err != nil {
		return err
	}
	peers, err := parsePeers(clusterSpec)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if metricsAddr != "" {
		reg = obs.NewRegistry()
	}

	opts := []live.Option{live.WithSeed(time.Now().UnixNano())}
	if verbose {
		opts = append(opts, live.WithLog(os.Stderr))
	}
	rt := live.NewRuntime(opts...)
	tr, err := tcpnet.New(rt, listen, peers, tcpnet.WithSendQueue(sendq))
	if err != nil {
		return err
	}
	defer tr.Close()
	tr.Instrument(reg)
	rt.SetRemote(tr.Send)

	svc := core.ServiceConfig{
		Primaries:    prim + 1, // + the sequencer
		Secondaries:  sec,
		LazyInterval: lazy,
		Group:        group.DefaultConfig(),
		NewApp:       mkApp,
		FastReads:    true,
		ExtraClients: cluster.SplitIDs(clients),
		Obs:          reg,
	}
	sd, err := core.DeployShards(rt, svc, shards, nil)
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Stop()

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(reg))
		srv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "aquad: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("aquad: metrics on http://%s/metrics\n", metricsAddr)
	}

	for i, d := range sd.Shards {
		fmt.Printf("aquad: shard %d: primaries %s; secondaries %s\n",
			i, idList(d.PrimaryGroup), idList(d.Secondaries))
	}
	fmt.Printf("aquad: hosting %d shard(s) on %s\n", shards, listen)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aquad: shutting down")
	return nil
}

// parsePeers reads the sharded mode's client-only cluster spec
// (id=host:port, comma-separated; empty allowed).
func parsePeers(spec string) (map[node.ID]string, error) {
	peers := make(map[node.ID]string)
	if strings.TrimSpace(spec) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want id=host:port)", part)
		}
		peers[node.ID(kv[0])] = kv[1]
	}
	return peers, nil
}

func idList(ids []node.ID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	return strings.Join(ss, ",")
}

func run(clusterSpec, primaries, clients, host, listen string, sendq int, lazy time.Duration, appName string,
	metricsAddr, tracePath, walDir string, snapEvery int, replAssign bool, verbose bool) error {
	spec, err := cluster.Parse(clusterSpec, primaries, clients)
	if err != nil {
		return err
	}
	mkApp, err := newApp(appName)
	if err != nil {
		return err
	}
	hosted := cluster.SplitIDs(host)
	if len(hosted) == 0 {
		return fmt.Errorf("-host must name at least one replica")
	}

	var o cluster.Observability
	if metricsAddr != "" {
		o.Obs = obs.NewRegistry()
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer traceFile.Close()
		o.Tracer = obs.NewTracer(traceFile, time.Now())
	}

	opts := []live.Option{live.WithSeed(time.Now().UnixNano())}
	if verbose {
		opts = append(opts, live.WithLog(os.Stderr))
	}
	rt := live.NewRuntime(opts...)

	tr, err := tcpnet.New(rt, listen, spec.PeersFor(hosted), tcpnet.WithSendQueue(sendq))
	if err != nil {
		return err
	}
	defer tr.Close()
	tr.Instrument(o.Obs)
	rt.SetRemote(tr.Send)

	ropts := cluster.ReplicaOptions{SnapshotEvery: snapEvery, ReplicatedAssign: replAssign}
	for _, id := range hosted {
		ropts.Media = nil
		if walDir != "" {
			media, err := wal.NewFileMedia(filepath.Join(walDir, string(id)))
			if err != nil {
				return fmt.Errorf("-wal-dir: %w", err)
			}
			defer media.Close()
			ropts.Media = media
		}
		gw, err := spec.NewReplicaOpts(id, lazy, mkApp(), o, ropts)
		if err != nil {
			return err
		}
		rt.Register(id, gw)
	}
	rt.Start()
	defer rt.Stop()

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(o.Obs))
		srv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "aquad: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("aquad: metrics on http://%s/metrics\n", metricsAddr)
	}

	fmt.Printf("aquad: hosting %s on %s (sequencer %s)\n",
		strings.Join(hosted.Strings(), ","), listen, spec.Sequencer)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aquad: shutting down")
	if o.Tracer != nil {
		if err := o.Tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "aquad: trace flush:", err)
		}
	}
	if o.Obs != nil {
		// Final metrics snapshot so a scrape-less run still leaves evidence.
		fmt.Println("aquad: final metrics snapshot:")
		if err := o.Obs.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aquad: metrics dump:", err)
		}
	}
	return nil
}
