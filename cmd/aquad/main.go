// Command aquad hosts one or more replica gateways of a replicated service
// in a single OS process, speaking the protocol over TCP. Several aquad
// processes plus aquacli form a real distributed deployment of the
// framework — the same gateways the simulator runs, on real sockets.
//
// Topology is described by a flag-friendly cluster spec shared by every
// process:
//
//	-cluster "p00=127.0.0.1:7100,p01=127.0.0.1:7101,p02=127.0.0.1:7102,s00=127.0.0.1:7103"
//	-primaries "p00,p01,p02"        # p00 (lowest ID) is the sequencer
//	-clients "c00"                  # client IDs that will connect
//	-host "p01,p02"                 # which replicas THIS process hosts
//	-listen "127.0.0.1:7101"        # this process's TCP endpoint
//
// Example (three terminals):
//
//	aquad -listen 127.0.0.1:7100 -host p00,p01 ...
//	aquad -listen 127.0.0.1:7200 -host p02,s00 ...
//	aquacli -id c00 -listen 127.0.0.1:7300 ...
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/cluster"
	"aqua/internal/live"
	"aqua/internal/obs"
	"aqua/internal/tcpnet"
)

func main() {
	var (
		clusterSpec = flag.String("cluster", "", "comma-separated id=host:port for every replica and client process")
		primaries   = flag.String("primaries", "", "comma-separated primary group IDs (lowest is the sequencer)")
		clients     = flag.String("clients", "", "comma-separated client IDs")
		host        = flag.String("host", "", "comma-separated replica IDs hosted by this process")
		listen      = flag.String("listen", "127.0.0.1:7100", "TCP listen address of this process")
		sendq       = flag.Int("sendq", tcpnet.DefaultSendQueue, "per-peer send queue capacity in frames (overflow drops are recovered by retransmission)")
		lazy        = flag.Duration("lazy", 2*time.Second, "lazy update interval T_L")
		appName     = flag.String("app", "kv", "replicated application: kv, document, ticker")
		metricsAddr = flag.String("metrics-addr", "", "HTTP address serving Prometheus text on /metrics (empty = metrics off)")
		tracePath   = flag.String("trace", "", "JSONL trace output file (empty = tracing off)")
		verbose     = flag.Bool("v", false, "log gateway diagnostics")
	)
	flag.Parse()

	if err := run(*clusterSpec, *primaries, *clients, *host, *listen, *sendq, *lazy, *appName,
		*metricsAddr, *tracePath, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "aquad:", err)
		os.Exit(1)
	}
}

func newApp(name string) (func() app.Application, error) {
	switch name {
	case "kv":
		return func() app.Application { return apps.NewKVStore() }, nil
	case "document":
		return func() app.Application { return apps.NewDocument() }, nil
	case "ticker":
		return func() app.Application { return apps.NewTicker() }, nil
	default:
		return nil, fmt.Errorf("unknown -app %q (want kv, document, or ticker)", name)
	}
}

func run(clusterSpec, primaries, clients, host, listen string, sendq int, lazy time.Duration, appName string,
	metricsAddr, tracePath string, verbose bool) error {
	spec, err := cluster.Parse(clusterSpec, primaries, clients)
	if err != nil {
		return err
	}
	mkApp, err := newApp(appName)
	if err != nil {
		return err
	}
	hosted := cluster.SplitIDs(host)
	if len(hosted) == 0 {
		return fmt.Errorf("-host must name at least one replica")
	}

	var o cluster.Observability
	if metricsAddr != "" {
		o.Obs = obs.NewRegistry()
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer traceFile.Close()
		o.Tracer = obs.NewTracer(traceFile, time.Now())
	}

	opts := []live.Option{live.WithSeed(time.Now().UnixNano())}
	if verbose {
		opts = append(opts, live.WithLog(os.Stderr))
	}
	rt := live.NewRuntime(opts...)

	tr, err := tcpnet.New(rt, listen, spec.PeersFor(hosted), tcpnet.WithSendQueue(sendq))
	if err != nil {
		return err
	}
	defer tr.Close()
	tr.Instrument(o.Obs)
	rt.SetRemote(tr.Send)

	for _, id := range hosted {
		gw, err := spec.NewReplica(id, lazy, mkApp(), o)
		if err != nil {
			return err
		}
		rt.Register(id, gw)
	}
	rt.Start()
	defer rt.Stop()

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(o.Obs))
		srv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "aquad: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("aquad: metrics on http://%s/metrics\n", metricsAddr)
	}

	fmt.Printf("aquad: hosting %s on %s (sequencer %s)\n",
		strings.Join(hosted.Strings(), ","), listen, spec.Sequencer)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aquad: shutting down")
	if o.Tracer != nil {
		if err := o.Tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "aquad: trace flush:", err)
		}
	}
	if o.Obs != nil {
		// Final metrics snapshot so a scrape-less run still leaves evidence.
		fmt.Println("aquad: final metrics snapshot:")
		if err := o.Obs.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aquad: metrics dump:", err)
		}
	}
	return nil
}
