// Command aquabench regenerates every table and figure of the paper's
// evaluation on the deterministic simulator. See EXPERIMENTS.md for the
// mapping from experiment IDs to the paper's figures.
//
// Usage:
//
//	aquabench -experiment fig3|fig4a|fig4b|lui|reqdelay|baselines|hotspot|failover|all
//	aquabench -experiment fig4a -requests 200   # faster, noisier
//	aquabench -experiment chaos -chaos-runs 8 -faults crash,partition,link,seqkill
//	aquabench -experiment loadmax -loadmax-json BENCH_loadmax.json
//	aquabench -experiment shardmax -shards 1,2,4 -shardmax-json BENCH_shardmax.json
//	aquabench -experiment shardchaos -chaos-runs 4
//	aquabench -experiment livemax -livemax-json BENCH_livemax.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aqua/internal/chaos"
	"aqua/internal/experiment"
	"aqua/internal/obs"
	"aqua/internal/sim"
)

func main() {
	var (
		which        = flag.String("experiment", "all", "experiment id: fig3, fig4a, fig4b, lui, reqdelay, baselines, hotspot, failover, calibration, groupsplit, window, estimator, scalability, loss, arrivals, chaos, loadmax, shardmax, shardchaos, livemax, all")
		requests     = flag.Int("requests", 1000, "requests per client per run (paper: 1000)")
		seed         = flag.Int64("seed", 2002, "base random seed")
		iters        = flag.Int("iters", 2000, "iterations per fig3 measurement point")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker count (1 = sequential; output is identical either way)")
		progress     = flag.Bool("progress", true, "report per-point sweep progress on stderr")
		obsPath      = flag.String("obs", "", "write an aggregated Prometheus-text metrics snapshot of all runs to this file")
		tracePath    = flag.String("trace", "", "stream per-request JSONL trace spans (run-labelled) to this file")
		faults       = flag.String("faults", "crash,partition,link,seqkill", "chaos fault kinds to inject (comma list of crash, partition, link, seqkill)")
		chaosRuns    = flag.Int("chaos-runs", 4, "number of seeded chaos runs (seeds seed..seed+n-1)")
		loadmaxJSON  = flag.String("loadmax-json", "", "also write the loadmax result as JSON to this file (BENCH_loadmax.json)")
		loadmaxQuick = flag.Bool("loadmax-quick", false, "shrink the loadmax ramp for smoke runs (shorter steps, lower top rate)")
		shards       = flag.String("shards", "", "shard counts for the shardmax ramp, comma list (default 1,2,4)")
		shardmaxJSON = flag.String("shardmax-json", "", "also write the shardmax report as JSON to this file (BENCH_shardmax.json)")
		shardmaxQk   = flag.Bool("shardmax-quick", false, "shrink the shardmax ramp for smoke runs (fewer clients, shorter steps)")
		livemaxJSON  = flag.String("livemax-json", "", "also write the livemax report as JSON to this file (BENCH_livemax.json)")
		livemaxQuick = flag.Bool("livemax-quick", false, "shrink the livemax ramp for smoke runs (two rates, short wall-clock windows, no sim comparison)")
		livemaxShard = flag.Int("livemax-shards", 0, "shard count for the livemax serving process (default 1)")
	)
	flag.Parse()

	experiment.SetParallelism(*parallel)
	if *progress {
		experiment.SetProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "aquabench: point %d/%d\n", done, total)
		})
	}

	if err := run(*which, *requests, *seed, *iters, *obsPath, *tracePath, *faults, *chaosRuns, *loadmaxJSON, *loadmaxQuick, *shards, *shardmaxJSON, *shardmaxQk, *livemaxJSON, *livemaxQuick, *livemaxShard); err != nil {
		fmt.Fprintln(os.Stderr, "aquabench:", err)
		os.Exit(1)
	}
}

// parseFaults maps the -faults comma list onto generator fault rates.
func parseFaults(spec string) (chaos.GenConfig, error) {
	var cfg chaos.GenConfig
	for _, kind := range strings.Split(spec, ",") {
		switch strings.TrimSpace(kind) {
		case "":
		case "crash":
			cfg.Crashes = 3
		case "partition":
			cfg.Partitions = 2
		case "link":
			cfg.LinkFaults = 3
		case "seqkill":
			cfg.SequencerKill = true
		default:
			return cfg, fmt.Errorf("unknown fault kind %q (want crash, partition, link, seqkill)", kind)
		}
	}
	return cfg, nil
}

// runChaos executes the chaos sweep and reports per-invariant verdicts; a
// failing invariant fails the whole command.
func runChaos(out *os.File, requests int, seed int64, faultSpec string, runs int) error {
	gen, err := parseFaults(faultSpec)
	if err != nil {
		return fmt.Errorf("-faults: %w", err)
	}
	if requests > 200 {
		// Chaos verdicts converge long before the paper's request counts;
		// cap so '-experiment chaos' stays interactive at the default 1000.
		requests = 200
	}
	base := experiment.ChaosConfig{Requests: requests, Faults: gen}
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	results := experiment.RunChaosSweep(base, seeds)
	if err := experiment.WriteChaosTable(out, results); err != nil {
		return err
	}
	for i := range results {
		if !results[i].Report.OK() {
			return fmt.Errorf("chaos: invariant violations at seed %d", results[i].Seed)
		}
	}
	return nil
}

// runLoadmax executes the heavy-traffic ramp (baseline vs batched in one
// sweep), prints the table, and optionally writes the JSON artifact.
func runLoadmax(out *os.File, seed int64, jsonPath string, quick bool) error {
	cfg := experiment.LoadmaxConfig{Seed: seed}
	if quick {
		cfg.Clients = 2000
		cfg.Rates = []float64{1000, 4000, 16000}
		cfg.Warmup = 200 * time.Millisecond
		cfg.StepDuration = 500 * time.Millisecond
	}
	pair := experiment.RunLoadmaxPair(cfg)
	experiment.WriteLoadmaxTable(out, pair)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("-loadmax-json: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteLoadmaxJSON(f, pair); err != nil {
			return fmt.Errorf("-loadmax-json: %w", err)
		}
	}
	return nil
}

// parseShards maps the -shards comma list onto shard counts for the ramp.
func parseShards(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil // ShardmaxConfig's default
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want a positive integer list like 1,2,4)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runShardmax executes the sharded scale-out ramp, prints the table, and
// optionally writes the JSON artifact.
func runShardmax(out *os.File, seed int64, shardsSpec, jsonPath string, quick bool) error {
	counts, err := parseShards(shardsSpec)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	cfg := experiment.ShardmaxConfig{Seed: seed, Shards: counts}
	if quick {
		cfg.Clients = 2000
		cfg.Rates = []float64{16000, 64000, 128000}
		cfg.Warmup = 200 * time.Millisecond
		cfg.StepDuration = 500 * time.Millisecond
	}
	rep := experiment.RunShardmax(cfg)
	experiment.WriteShardmaxTable(out, rep)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("-shardmax-json: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteShardmaxJSON(f, rep); err != nil {
			return fmt.Errorf("-shardmax-json: %w", err)
		}
	}
	return nil
}

// runLivemax executes the live-cluster ramp over TCP loopback (legacy vs
// optimized hot path in one invocation), prints the table, and optionally
// writes the JSON artifact. Unlike the virtual-time experiments this one
// consumes real wall clock and real cores.
func runLivemax(out *os.File, seed int64, jsonPath string, quick bool, shards int) error {
	cfg := experiment.LivemaxConfig{Seed: seed, Shards: shards, SimCompare: !quick}
	if quick {
		cfg.Rates = []float64{500, 2000}
		cfg.Warmup = 150 * time.Millisecond
		cfg.StepDuration = 400 * time.Millisecond
	}
	rep := experiment.RunLivemax(cfg, func(stage string, rate float64, legacy bool) {
		mode := "optimized"
		if legacy {
			mode = "baseline"
		}
		if stage == "hotpath" {
			fmt.Fprintf(os.Stderr, "aquabench: livemax hotpath pump, %s\n", mode)
			return
		}
		fmt.Fprintf(os.Stderr, "aquabench: livemax %s @ %.0f req/s\n", mode, rate)
	})
	experiment.WriteLivemaxTable(out, rep)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return fmt.Errorf("-livemax-json: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteLivemaxJSON(f, rep); err != nil {
			return fmt.Errorf("-livemax-json: %w", err)
		}
	}
	return nil
}

// runShardChaos executes the sharded chaos acceptance scenario across seeded
// runs; any invariant violation, stalled loop, or failed split fails the
// whole command.
func runShardChaos(out *os.File, seed int64, runs int) error {
	for i := 0; i < runs; i++ {
		cfg := experiment.ShardChaosConfig{Seed: seed + int64(i)}
		res := experiment.RunShardChaosPoint(cfg)
		experiment.WriteShardChaosTable(out, cfg, res)
		for s := range res.Reports {
			if !res.Reports[s].OK() {
				return fmt.Errorf("shardchaos: invariant violations on shard %d at seed %d", s, cfg.Seed)
			}
		}
		if !res.Done {
			return fmt.Errorf("shardchaos: pinned clients stalled at seed %d", cfg.Seed)
		}
		if !res.MoveInstalled || res.MoveValue != "moved" {
			return fmt.Errorf("shardchaos: live split failed at seed %d (installed=%v, read %q)",
				cfg.Seed, res.MoveInstalled, res.MoveValue)
		}
	}
	return nil
}

func run(which string, requests int, seed int64, iters int, obsPath, tracePath, faultSpec string, chaosRuns int, loadmaxJSON string, loadmaxQuick bool, shardsSpec, shardmaxJSON string, shardmaxQuick bool, livemaxJSON string, livemaxQuick bool, livemaxShards int) error {
	base := experiment.Fig4Config{
		Seed:     seed,
		Deadline: 140 * time.Millisecond,
		MinProb:  0.9,
		LUI:      2 * time.Second,
		Requests: requests,
	}

	// Observability rides along without touching the tables: instruments
	// only record, so the virtual-time output below is byte-identical with
	// or without these flags.
	if obsPath != "" {
		base.Obs = obs.NewRegistry()
		defer func() {
			f, err := os.Create(obsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aquabench: -obs:", err)
				return
			}
			defer f.Close()
			if err := base.Obs.WritePrometheus(f); err != nil {
				fmt.Fprintln(os.Stderr, "aquabench: -obs:", err)
			}
		}()
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		base.Trace = obs.NewTracer(f, sim.Epoch)
		defer base.Trace.Flush()
	}

	out := os.Stdout
	ran := false
	runFig4 := func() []experiment.Fig4Result {
		sw := experiment.DefaultFig4Sweep()
		sw.Base = base
		return sw.Run()
	}

	var fig4Cache []experiment.Fig4Result
	fig4 := func() []experiment.Fig4Result {
		if fig4Cache == nil {
			fig4Cache = runFig4()
		}
		return fig4Cache
	}

	if which == "fig3" || which == "all" {
		ran = true
		points := experiment.RunFig3(
			experiment.DefaultFig3ReplicaCounts(),
			experiment.DefaultFig3Windows(),
			iters, seed)
		experiment.WriteFig3Table(out, points)
		fmt.Fprintln(out)
	}
	if which == "fig4a" || which == "all" {
		ran = true
		experiment.WriteFig4aTable(out, fig4())
		fmt.Fprintln(out)
	}
	if which == "fig4b" || which == "all" {
		ran = true
		experiment.WriteFig4bTable(out, fig4())
		fmt.Fprintln(out)
	}
	if which == "lui" || which == "all" {
		ran = true
		luis := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second}
		res := experiment.RunLUISweep(base, luis)
		experiment.WriteSweepTable(out,
			"Extension (§7) — varying the lazy update interval (d=140ms, Pc=0.9)",
			"LUI", luis, res)
		fmt.Fprintln(out)
	}
	if which == "reqdelay" || which == "all" {
		ran = true
		delays := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second}
		res := experiment.RunRequestDelaySweep(base, delays)
		experiment.WriteSweepTable(out,
			"Extension (§7) — varying the request delay (d=140ms, Pc=0.9, LUI=2s)",
			"reqDelay", delays, res)
		fmt.Fprintln(out)
	}
	if which == "baselines" || which == "all" {
		ran = true
		res := experiment.RunBaselines(base)
		experiment.WriteSelectorTable(out,
			"Ablation — Algorithm 1 vs baseline selectors (d=140ms, Pc=0.9, LUI=2s)", res)
		fmt.Fprintln(out)
	}
	if which == "hotspot" || which == "all" {
		ran = true
		res := experiment.RunHotspot(base)
		experiment.WriteSelectorTable(out,
			"Ablation — anti-hot-spot (ert) ordering vs greedy best-CDF ordering", res)
		fmt.Fprintln(out)
	}
	if which == "failover" || which == "all" {
		ran = true
		res := experiment.RunFailover(base)
		experiment.WriteFailoverTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "calibration" || which == "all" {
		ran = true
		res := experiment.RunCalibration(base, 10)
		experiment.WriteCalibrationTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "groupsplit" || which == "all" {
		ran = true
		res := experiment.RunGroupSplitSweep(base, [][2]int{{2, 8}, {4, 6}, {6, 4}, {8, 2}})
		experiment.WriteGroupSplitTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "window" || which == "all" {
		ran = true
		res := experiment.RunWindowSweep(base, []int{5, 10, 20, 40})
		experiment.WriteWindowTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "estimator" || which == "all" {
		ran = true
		// Stress staleness: long lazy interval, fast clients (high λu) so
		// the estimators actually diverge.
		stress := base
		stress.LUI = 4 * time.Second
		stress.RequestDelay = 250 * time.Millisecond
		res := experiment.RunEstimatorAblation(stress)
		experiment.WriteEstimatorTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "scalability" || which == "all" {
		ran = true
		scaled := base
		if scaled.Requests > 300 {
			scaled.Requests = 300 // N clients × N requests grows fast
		}
		res := experiment.RunScalability(scaled, []int{2, 4, 8, 12, 16})
		experiment.WriteScalabilityTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "loss" || which == "all" {
		ran = true
		res := experiment.RunLossSweep(base, []float64{0, 0.01, 0.05, 0.10})
		experiment.WriteLossTable(out, res)
		fmt.Fprintln(out)
	}
	if which == "arrivals" || which == "all" {
		ran = true
		res := experiment.RunArrivals(seed, requests/2, requests/2)
		experiment.WriteArrivalsTable(out, res)
		fmt.Fprintln(out)
	}
	// Chaos is deliberately excluded from "all": it is a pass/fail protocol
	// audit, not a paper table, and keeping it out leaves the results file
	// byte-identical to earlier revisions.
	if which == "chaos" {
		ran = true
		if err := runChaos(out, requests, seed, faultSpec, chaosRuns); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	// Loadmax is likewise excluded from "all": it is a throughput benchmark
	// on a different (open-loop) workload, recorded in BENCH_loadmax.json
	// rather than the paper-results file.
	if which == "loadmax" {
		ran = true
		if err := runLoadmax(out, seed, loadmaxJSON, loadmaxQuick); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	// Shardmax and shardchaos follow the same rule: scale-out benchmarks and
	// protocol audits live in their own artifacts (BENCH_shardmax.json), not
	// the paper-results file.
	if which == "shardmax" {
		ran = true
		if err := runShardmax(out, seed, shardsSpec, shardmaxJSON, shardmaxQuick); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if which == "shardchaos" {
		ran = true
		if err := runShardChaos(out, seed, chaosRuns); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	// Livemax is excluded from "all" for a stronger reason than the other
	// benchmarks: it measures wall-clock throughput over real sockets, so
	// its numbers depend on the machine. It lives in BENCH_livemax.json.
	if which == "livemax" {
		ran = true
		if err := runLivemax(out, seed, livemaxJSON, livemaxQuick, livemaxShards); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
