// Command aquacli is the interactive client for an aquad cluster: it hosts
// one client gateway, connects over TCP, and executes a small scripted
// workload (or single operations) against the replicated key-value service
// under a QoS specification.
//
//	aquacli -cluster ... -primaries ... -clients c00 -id c00 \
//	        -listen 127.0.0.1:7300 -op set -key lang -value go
//	aquacli ... -op get -key lang -staleness 2 -deadline 200ms -prob 0.9
//	aquacli ... -op bench -n 50
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"aqua/internal/client"
	"aqua/internal/cluster"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/qos"
	"aqua/internal/stats"
	"aqua/internal/tcpnet"
)

func main() {
	var (
		clusterSpec = flag.String("cluster", "", "comma-separated id=host:port for every replica and client process")
		primaries   = flag.String("primaries", "", "comma-separated primary group IDs")
		clients     = flag.String("clients", "", "comma-separated client IDs")
		id          = flag.String("id", "c00", "this client's node ID")
		listen      = flag.String("listen", "127.0.0.1:7300", "TCP listen address of this process")
		sendq       = flag.Int("sendq", tcpnet.DefaultSendQueue, "per-peer send queue capacity in frames (overflow drops are recovered by retransmission)")
		lazy        = flag.Duration("lazy", 2*time.Second, "lazy update interval T_L (must match aquad)")
		op          = flag.String("op", "bench", "operation: set, get, version, bench")
		key         = flag.String("key", "k", "key for set/get")
		value       = flag.String("value", "v", "value for set")
		n           = flag.Int("n", 20, "bench: number of alternating set/get requests")
		staleness   = flag.Int("staleness", 2, "QoS staleness threshold (versions)")
		deadline    = flag.Duration("deadline", 200*time.Millisecond, "QoS response-time deadline")
		prob        = flag.Float64("prob", 0.9, "QoS minimum probability of timely response")
		metricsAddr = flag.String("metrics-addr", "", "HTTP address serving Prometheus text on /metrics — includes the selection calibration counters (empty = metrics off)")
		tracePath   = flag.String("trace", "", "JSONL trace output file (empty = tracing off)")
	)
	flag.Parse()

	if err := run(*clusterSpec, *primaries, *clients, *id, *listen, *sendq, *lazy,
		*op, *key, *value, *n, *metricsAddr, *tracePath,
		qos.Spec{Staleness: *staleness, Deadline: *deadline, MinProb: *prob}); err != nil {
		fmt.Fprintln(os.Stderr, "aquacli:", err)
		os.Exit(1)
	}
}

func run(clusterSpec, primaries, clients, id, listen string, sendq int, lazy time.Duration,
	op, key, value string, n int, metricsAddr, tracePath string, spec qos.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	cs, err := cluster.Parse(clusterSpec, primaries, clients)
	if err != nil {
		return err
	}

	var o cluster.Observability
	if metricsAddr != "" {
		o.Obs = obs.NewRegistry()
	}
	if tracePath != "" {
		traceFile, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer traceFile.Close()
		o.Tracer = obs.NewTracer(traceFile, time.Now())
		defer o.Tracer.Flush()
	}

	rt := live.NewRuntime(live.WithSeed(time.Now().UnixNano()))
	tr, err := tcpnet.New(rt, listen, cs.PeersFor(cluster.IDList{node.ID(id)}), tcpnet.WithSendQueue(sendq))
	if err != nil {
		return err
	}
	defer tr.Close()
	tr.Instrument(o.Obs)
	rt.SetRemote(tr.Send)

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(o.Obs))
		srv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "aquacli: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("aquacli: metrics on http://%s/metrics\n", metricsAddr)
	}

	gw, err := cs.NewClient(node.ID(id), spec, qos.NewMethods("Get", "Version"), lazy, o)
	if err != nil {
		return err
	}

	done := make(chan error, 1)
	driver := func(ctx node.Context, gw *client.Gateway) {
		report := func(label string, r client.Result) {
			fmt.Printf("%-8s -> %q from %s in %v (late=%v, selected=%d, err=%q)\n",
				label, r.Payload, r.Replica, r.ResponseTime.Round(time.Microsecond),
				r.TimingFailure, r.Selected, r.Err)
		}
		switch op {
		case "set":
			gw.Invoke("Set", []byte(key+"="+value), func(r client.Result) {
				report("set", r)
				done <- nil
			})
		case "get":
			gw.Invoke("Get", []byte(key), func(r client.Result) {
				report("get", r)
				done <- nil
			})
		case "version":
			gw.Invoke("Version", nil, func(r client.Result) {
				report("version", r)
				done <- nil
			})
		case "bench":
			var readMS []float64
			var issue func(i int)
			issue = func(i int) {
				if i >= n {
					m := gw.Metrics()
					fmt.Printf("\nbench: %d updates, %d reads, %d timing failures (rate %.3f)\n",
						m.Updates, m.Reads, m.TimingFailures, gw.FailureRate())
					if len(readMS) > 0 {
						fmt.Printf("bench: read latency p50=%.1fms p95=%.1fms p99=%.1fms\n",
							stats.Percentile(readMS, 0.50),
							stats.Percentile(readMS, 0.95),
							stats.Percentile(readMS, 0.99))
					}
					done <- nil
					return
				}
				next := func(r client.Result) {
					if r.Err != "" {
						fmt.Printf("request %d error: %s\n", i, r.Err)
					}
					ctx.SetTimer(50*time.Millisecond, func() { issue(i + 1) })
				}
				if i%2 == 0 {
					gw.Invoke("Set", []byte(fmt.Sprintf("%s=%d", key, i)), next)
				} else {
					gw.Invoke("Get", []byte(key), func(r client.Result) {
						report(fmt.Sprintf("get#%d", i), r)
						if r.Err == "" {
							readMS = append(readMS, float64(r.ResponseTime)/1e6)
						}
						next(r)
					})
				}
			}
			issue(0)
		default:
			done <- fmt.Errorf("unknown -op %q", op)
		}
	}

	rt.Register(node.ID(id), &drivenGateway{gw: gw, driver: driver})
	rt.Start()
	defer rt.Stop()

	select {
	case err := <-done:
		if err == nil && o.Obs != nil {
			fmt.Println("\naquacli: final metrics snapshot:")
			if werr := o.Obs.WritePrometheus(os.Stdout); werr != nil {
				fmt.Fprintln(os.Stderr, "aquacli: metrics dump:", werr)
			}
		}
		return err
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("timed out")
	}
}

// drivenGateway runs the workload driver inside the gateway's node context.
type drivenGateway struct {
	gw     *client.Gateway
	driver func(node.Context, *client.Gateway)
}

func (d *drivenGateway) Init(ctx node.Context) {
	d.gw.Init(ctx)
	ctx.SetTimer(100*time.Millisecond, func() { d.driver(ctx, d.gw) })
}

func (d *drivenGateway) Recv(from node.ID, m node.Message) { d.gw.Recv(from, m) }
