package sim

import (
	"testing"
	"time"

	"aqua/internal/netsim"
	"aqua/internal/node"
)

type ping struct{ N int }

func TestRuntimeDeliversWithDelay(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s, WithDelay(netsim.ConstantDelay(5*time.Millisecond)))

	var gotFrom node.ID
	var gotAt time.Time
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) { ctx.Send("b", ping{N: 1}) },
	})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			gotFrom = from
			gotAt = s.Now()
			if p, ok := m.(ping); !ok || p.N != 1 {
				t.Errorf("message = %#v, want ping{1}", m)
			}
		},
	})
	rt.Start()
	s.RunUntilIdle()

	if gotFrom != "a" {
		t.Fatalf("from = %q, want a", gotFrom)
	}
	if want := Epoch.Add(5 * time.Millisecond); !gotAt.Equal(want) {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
}

func TestRuntimeLossDropsMessages(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s, WithLoss(netsim.UniformLoss{P: 1.0}))
	delivered := false
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) { ctx.Send("b", ping{}) },
	})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { delivered = true },
	})
	rt.Start()
	s.RunUntilIdle()
	if delivered {
		t.Fatal("message delivered despite 100% loss")
	}
	if sent, dropped := rt.Stats(); sent != 1 || dropped != 1 {
		t.Fatalf("stats = (%d,%d), want (1,1)", sent, dropped)
	}
}

func TestRuntimeCrashStopsDelivery(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	var bGot int
	rt.Register("a", &node.FuncNode{})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { bGot++ },
	})
	rt.Start()

	a := rt.lookup("a")
	a.Send("b", ping{})
	s.RunUntilIdle()
	if bGot != 1 {
		t.Fatalf("pre-crash deliveries = %d, want 1", bGot)
	}

	rt.Crash("b")
	a.Send("b", ping{})
	s.RunUntilIdle()
	if bGot != 1 {
		t.Fatal("message delivered to crashed node")
	}

	rt.Crash("a")
	a.Send("b", ping{}) // crashed sender: silently ignored
	s.RunUntilIdle()
	if !rt.Crashed("a") || !rt.Crashed("b") {
		t.Fatal("Crashed() does not reflect crash state")
	}
}

func TestRuntimeCrashDisablesTimers(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	fired := false
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			ctx.SetTimer(10*time.Millisecond, func() { fired = true })
		},
	})
	rt.Start()
	s.RunFor(5 * time.Millisecond)
	rt.Crash("a")
	s.RunUntilIdle()
	if fired {
		t.Fatal("timer fired on crashed node")
	}
}

func TestRuntimeTimerCancel(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	fired := false
	var cancel node.CancelFunc
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			cancel = ctx.SetTimer(10*time.Millisecond, func() { fired = true })
		},
	})
	rt.Start()
	cancel()
	s.RunUntilIdle()
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestRuntimeInFlightMessageToCrashedNodeDropped(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s, WithDelay(netsim.ConstantDelay(10*time.Millisecond)))
	got := 0
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) { ctx.Send("b", ping{}) },
	})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { got++ },
	})
	rt.Start()
	s.RunFor(5 * time.Millisecond) // message is in flight
	rt.Crash("b")
	s.RunUntilIdle()
	if got != 0 {
		t.Fatal("in-flight message delivered to node that crashed first")
	}
}

func TestRuntimeDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate Register")
		}
	}()
	s := NewScheduler(1)
	rt := NewRuntime(s)
	rt.Register("a", &node.FuncNode{})
	rt.Register("a", &node.FuncNode{})
}

func TestRuntimeSendToUnknownPanics(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) { ctx.Send("ghost", ping{}) },
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on send to unknown node")
		}
	}()
	rt.Start()
}

func TestRuntimeDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		s := NewScheduler(99)
		rt := NewRuntime(s, WithDelay(netsim.UniformDelay{Min: 0, Max: 10 * time.Millisecond}))
		var trace []int
		for i := 0; i < 4; i++ {
			id := node.ID(rune('a' + i))
			i := i
			rt.Register(id, &node.FuncNode{
				OnInit: func(ctx node.Context) {
					for j := 0; j < 4; j++ {
						if node.ID(rune('a'+j)) != id {
							ctx.Send(node.ID(rune('a'+j)), ping{N: i})
						}
					}
				},
				OnRecv: func(_ node.ID, m node.Message) {
					trace = append(trace, m.(ping).N)
				},
			})
		}
		rt.Start()
		s.RunUntilIdle()
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) || len(t1) != 12 {
		t.Fatalf("trace lengths %d vs %d, want 12", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, t1, t2)
		}
	}
}

func TestRuntimeIDsSorted(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	rt.Register("c", &node.FuncNode{})
	rt.Register("a", &node.FuncNode{})
	rt.Register("b", &node.FuncNode{})
	ids := rt.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("IDs() = %v, want [a b c]", ids)
	}
}

func TestRuntimeRestartReplacesNode(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	var oldGot, newGot int
	rt.Register("a", &node.FuncNode{})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { oldGot++ },
	})
	rt.Start()
	a := rt.lookup("a")
	a.Send("b", ping{})
	s.RunUntilIdle()
	if oldGot != 1 {
		t.Fatal("pre-restart delivery failed")
	}

	rt.Crash("b")
	initRan := false
	rt.Restart("b", &node.FuncNode{
		OnInit: func(ctx node.Context) { initRan = true },
		OnRecv: func(node.ID, node.Message) { newGot++ },
	})
	if !initRan {
		t.Fatal("fresh incarnation's Init did not run")
	}
	if rt.Crashed("b") {
		t.Fatal("restarted node still reported crashed")
	}
	a = rt.lookup("a")
	a.Send("b", ping{})
	s.RunUntilIdle()
	if newGot != 1 || oldGot != 1 {
		t.Fatalf("post-restart deliveries: old %d new %d", oldGot, newGot)
	}
}

func TestRuntimeRestartUnknownPanics(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Restart("ghost", &node.FuncNode{})
}

func TestRuntimeInFlightToOldIncarnationDropped(t *testing.T) {
	s := NewScheduler(1)
	rt := NewRuntime(s, WithDelay(netsim.ConstantDelay(10*time.Millisecond)))
	got := 0
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) { ctx.Send("b", ping{}) },
	})
	rt.Register("b", &node.FuncNode{})
	rt.Start()
	s.RunFor(5 * time.Millisecond) // message in flight to old b
	rt.Crash("b")
	rt.Restart("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { got++ },
	})
	s.RunUntilIdle()
	if got != 0 {
		t.Fatal("in-flight message crossed the restart boundary")
	}
}
