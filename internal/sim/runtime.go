package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"aqua/internal/netsim"
	"aqua/internal/node"
)

// Runtime executes nodes on a Scheduler. It implements message delivery with
// a configurable delay/loss model and supports crash injection. Like the
// Scheduler it wraps, it is single-threaded by design.
type Runtime struct {
	sched   *Scheduler
	delay   netsim.DelayModel
	loss    netsim.LossModel
	netRand *rand.Rand
	nodes   map[node.ID]*nodeCtx
	order   []node.ID
	started bool
	logW    io.Writer
	sent    uint64
	dropped uint64
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithDelay sets the network delay model. The default is a constant 0.
func WithDelay(d netsim.DelayModel) Option {
	return func(r *Runtime) { r.delay = d }
}

// WithLoss sets the network loss model. The default drops nothing.
func WithLoss(l netsim.LossModel) Option {
	return func(r *Runtime) { r.loss = l }
}

// WithLog directs node Logf output to w. The default discards it.
func WithLog(w io.Writer) Option {
	return func(r *Runtime) { r.logW = w }
}

// NewRuntime creates a runtime over sched.
func NewRuntime(sched *Scheduler, opts ...Option) *Runtime {
	r := &Runtime{
		sched: sched,
		delay: netsim.ConstantDelay(0),
		loss:  netsim.NoLoss{},
		nodes: make(map[node.ID]*nodeCtx),
	}
	for _, o := range opts {
		o(r)
	}
	r.netRand = sched.DeriveRand("netsim")
	return r
}

// Scheduler returns the underlying scheduler, for tests and experiment
// drivers that need direct control of virtual time.
func (r *Runtime) Scheduler() *Scheduler { return r.sched }

// Register adds n under id. It panics on duplicate registration, which is
// always a wiring bug. Registration must precede Start.
func (r *Runtime) Register(id node.ID, n node.Node) {
	if _, dup := r.nodes[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %q", id))
	}
	if r.started {
		panic(fmt.Sprintf("sim: Register(%q) after Start", id))
	}
	r.nodes[id] = &nodeCtx{rt: r, id: id, n: n, rand: r.sched.DeriveRand("node/" + string(id))}
	r.order = append(r.order, id)
}

// Start calls Init on every registered node, in registration order.
func (r *Runtime) Start() {
	if r.started {
		return
	}
	r.started = true
	for _, id := range r.order {
		nc := r.nodes[id]
		nc.n.Init(nc)
	}
}

// Crash makes id stop receiving and sending messages and disables its
// pending and future timers, modelling a crash failure.
func (r *Runtime) Crash(id node.ID) {
	if nc, ok := r.nodes[id]; ok {
		nc.crashed = true
	}
}

// Crashed reports whether id has been crashed.
func (r *Runtime) Crashed(id node.ID) bool {
	nc, ok := r.nodes[id]
	return ok && nc.crashed
}

// Restart models a process restart: the crashed node is replaced by a
// fresh instance n (all volatile state lost, exactly like a real restart)
// whose Init runs immediately. Any recovery/state transfer is the
// protocol's job. It panics if id was never registered.
func (r *Runtime) Restart(id node.ID, n node.Node) {
	old, ok := r.nodes[id]
	if !ok {
		panic(fmt.Sprintf("sim: Restart of unknown node %q", id))
	}
	// The old incarnation stays crashed forever; in-flight messages and
	// timers addressed to it die with it.
	old.crashed = true
	fresh := &nodeCtx{rt: r, id: id, n: n, rand: r.sched.DeriveRand("node/" + string(id) + "/restart")}
	r.nodes[id] = fresh
	n.Init(fresh)
}

// IDs returns the registered node IDs in sorted order.
func (r *Runtime) IDs() []node.ID {
	ids := make([]node.ID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats returns the number of messages sent and dropped so far.
func (r *Runtime) Stats() (sent, dropped uint64) { return r.sent, r.dropped }

func (r *Runtime) deliver(from, to node.ID, m node.Message) {
	src, ok := r.nodes[from]
	if !ok || src.crashed {
		return
	}
	dst, ok := r.nodes[to]
	if !ok {
		panic(fmt.Sprintf("sim: send from %q to unknown node %q", from, to))
	}
	r.sent++
	if r.loss.Drop(r.netRand, from, to) {
		r.dropped++
		return
	}
	d := r.delay.Delay(r.netRand, from, to)
	r.sched.After(d, func() {
		if dst.crashed || src.crashed {
			// A message already in flight from a node that has since
			// crashed is still delivered in a real network; we model the
			// common simulation simplification of dropping both
			// directions at crash time, which only strengthens the
			// failure scenarios the protocols must survive.
			r.dropped++
			return
		}
		dst.n.Recv(from, m)
	})
}

// nodeCtx implements node.Context for one registered node.
type nodeCtx struct {
	rt      *Runtime
	id      node.ID
	n       node.Node
	rand    *rand.Rand
	crashed bool
}

var _ node.Context = (*nodeCtx)(nil)

func (c *nodeCtx) ID() node.ID      { return c.id }
func (c *nodeCtx) Now() time.Time   { return c.rt.sched.Now() }
func (c *nodeCtx) Rand() *rand.Rand { return c.rand }

func (c *nodeCtx) Send(to node.ID, m node.Message) {
	c.rt.deliver(c.id, to, m)
}

func (c *nodeCtx) SetTimer(d time.Duration, f func()) node.CancelFunc {
	cancel := c.rt.sched.After(d, func() {
		if c.crashed {
			return
		}
		f()
	})
	return node.CancelFunc(cancel)
}

func (c *nodeCtx) Logf(format string, args ...interface{}) {
	if c.rt.logW == nil {
		return
	}
	elapsed := c.rt.sched.Now().Sub(Epoch)
	fmt.Fprintf(c.rt.logW, "%12s %-14s "+format+"\n",
		append([]interface{}{elapsed, c.id}, args...)...)
}
