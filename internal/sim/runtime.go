package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/obs"
)

// Runtime executes nodes on a Scheduler. It implements message delivery with
// a configurable delay/loss model and supports crash injection. Like the
// Scheduler it wraps, it is single-threaded by design.
//
// The delivery path is allocation-lean: every send reuses a pooled delivery
// record whose callback was bound once at record creation (no per-message
// closure), node contexts are resolved through a dense slot table instead of
// repeated map[node.ID]*nodeCtx lookups, and the scheduler recycles the
// underlying event structs. Experiment runs churn through millions of
// messages, so this path dominates simulator cost.
type Runtime struct {
	sched   *Scheduler
	delay   netsim.DelayModel
	loss    netsim.LossModel
	dup     netsim.DupModel // resolved from loss at construction; nil = off
	netRand *rand.Rand
	// slots interns each registered ID to a dense index into ctxs; ctxs[i]
	// is the current incarnation (Restart swaps the slot in place). Slot
	// order is registration order.
	slots map[node.ID]int32
	ctxs  []*nodeCtx
	// ids is the sorted ID list, maintained incrementally at Register so
	// IDs() never re-sorts.
	ids        []node.ID
	started    bool
	logW       io.Writer
	sent       uint64
	dropped    uint64
	duplicated uint64
	freeDeliv  []*delivery
	freeTimer  []*timerRec

	// High-water marks of the last ObserveInto, so repeated observations
	// export deltas rather than double-counting.
	obsEvents  uint64
	obsSent    uint64
	obsDropped uint64
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithDelay sets the network delay model. The default is a constant 0.
func WithDelay(d netsim.DelayModel) Option {
	return func(r *Runtime) { r.delay = d }
}

// WithLoss sets the network loss model. The default drops nothing.
func WithLoss(l netsim.LossModel) Option {
	return func(r *Runtime) { r.loss = l }
}

// WithLog directs node Logf output to w. The default discards it.
func WithLog(w io.Writer) Option {
	return func(r *Runtime) { r.logW = w }
}

// NewRuntime creates a runtime over sched.
func NewRuntime(sched *Scheduler, opts ...Option) *Runtime {
	r := &Runtime{
		sched: sched,
		delay: netsim.ConstantDelay(0),
		loss:  netsim.NoLoss{},
		slots: make(map[node.ID]int32),
	}
	for _, o := range opts {
		o(r)
	}
	// Duplication is opt-in: a loss model that also implements DupModel
	// (the chaos fault layer) enables it. Resolving the assertion once here
	// keeps the per-message delivery path free of interface checks.
	r.dup, _ = r.loss.(netsim.DupModel)
	r.netRand = sched.DeriveRand("netsim")
	return r
}

// Scheduler returns the underlying scheduler, for tests and experiment
// drivers that need direct control of virtual time.
func (r *Runtime) Scheduler() *Scheduler { return r.sched }

// Register adds n under id. It panics on duplicate registration, which is
// always a wiring bug. Registration must precede Start.
func (r *Runtime) Register(id node.ID, n node.Node) {
	if _, dup := r.slots[id]; dup {
		panic(fmt.Sprintf("sim: duplicate node %q", id))
	}
	if r.started {
		panic(fmt.Sprintf("sim: Register(%q) after Start", id))
	}
	r.slots[id] = int32(len(r.ctxs))
	r.ctxs = append(r.ctxs, &nodeCtx{rt: r, id: id, n: n, rand: r.sched.DeriveRand("node/" + string(id))})
	// Insert into the sorted ID list in place.
	pos := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids, "")
	copy(r.ids[pos+1:], r.ids[pos:])
	r.ids[pos] = id
}

// Start calls Init on every registered node, in registration order.
func (r *Runtime) Start() {
	if r.started {
		return
	}
	r.started = true
	for _, nc := range r.ctxs {
		nc.n.Init(nc)
	}
}

// lookup returns the current incarnation registered under id, or nil.
func (r *Runtime) lookup(id node.ID) *nodeCtx {
	if slot, ok := r.slots[id]; ok {
		return r.ctxs[slot]
	}
	return nil
}

// Crash makes id stop receiving and sending messages and disables its
// pending and future timers, modelling a crash failure.
func (r *Runtime) Crash(id node.ID) {
	if nc := r.lookup(id); nc != nil {
		nc.crashed = true
	}
}

// Crashed reports whether id has been crashed.
func (r *Runtime) Crashed(id node.ID) bool {
	nc := r.lookup(id)
	return nc != nil && nc.crashed
}

// Restart models a process restart: the crashed node is replaced by a
// fresh instance n (all volatile state lost, exactly like a real restart)
// whose Init runs immediately. Any recovery/state transfer is the
// protocol's job. It panics if id was never registered.
func (r *Runtime) Restart(id node.ID, n node.Node) {
	slot, ok := r.slots[id]
	if !ok {
		panic(fmt.Sprintf("sim: Restart of unknown node %q", id))
	}
	// The old incarnation stays crashed forever; in-flight messages and
	// timers addressed to it die with it (delivery records and timers hold
	// the incarnation pointer captured at send time, not the slot).
	r.ctxs[slot].crashed = true
	fresh := &nodeCtx{rt: r, id: id, n: n, rand: r.sched.DeriveRand("node/" + string(id) + "/restart")}
	r.ctxs[slot] = fresh
	n.Init(fresh)
}

// IDs returns the registered node IDs in sorted order. The slice is shared
// and maintained incrementally; callers must not modify it.
func (r *Runtime) IDs() []node.ID { return r.ids }

// Stats returns the number of messages sent and dropped so far.
func (r *Runtime) Stats() (sent, dropped uint64) { return r.sent, r.dropped }

// Duplicated returns the number of extra message copies injected by the
// duplication fault model.
func (r *Runtime) Duplicated() uint64 { return r.duplicated }

// ObserveInto folds the runtime's counters into reg as deltas since the
// previous ObserveInto call. The simulator itself carries no instruments —
// hot-path hooks could never perturb virtual time, but keeping them out
// makes that property trivially true — so observability reads the totals
// after (or between) runs instead. Safe to call repeatedly; a nil registry
// is a no-op.
func (r *Runtime) ObserveInto(reg *obs.Registry) {
	if reg == nil {
		return
	}
	events := r.sched.Events()
	reg.Counter("sim_scheduler_events_total").Add(events - r.obsEvents)
	reg.Counter("sim_messages_sent_total").Add(r.sent - r.obsSent)
	reg.Counter("sim_messages_dropped_total").Add(r.dropped - r.obsDropped)
	r.obsEvents, r.obsSent, r.obsDropped = events, r.sent, r.dropped
}

// delivery is a pooled in-flight message. run is bound to fire once, at
// record creation, so scheduling a delivery allocates nothing once the pool
// is warm.
type delivery struct {
	rt       *Runtime
	src, dst *nodeCtx
	msg      node.Message
	run      func()
}

func (d *delivery) fire() {
	src, dst, m := d.src, d.dst, d.msg
	// Release before delivering: Recv commonly sends further messages, and
	// this record is the first the pool will hand back.
	d.src, d.dst, d.msg = nil, nil, nil
	d.rt.freeDeliv = append(d.rt.freeDeliv, d)
	if dst.crashed || src.crashed {
		// A message already in flight from a node that has since
		// crashed is still delivered in a real network; we model the
		// common simulation simplification of dropping both
		// directions at crash time, which only strengthens the
		// failure scenarios the protocols must survive.
		d.rt.dropped++
		return
	}
	dst.n.Recv(src.id, m)
}

func (r *Runtime) deliver(src *nodeCtx, to node.ID, m node.Message) {
	if src.crashed {
		return
	}
	dst := r.lookup(to)
	if dst == nil {
		panic(fmt.Sprintf("sim: send from %q to unknown node %q", src.id, to))
	}
	r.sent++
	if r.loss.Drop(r.netRand, src.id, to) {
		r.dropped++
		return
	}
	r.post(src, dst, m)
	if r.dup != nil {
		// Each extra copy draws its own delay, so duplicates may overtake
		// the original — duplication and reordering in one fault.
		for extra := r.dup.Dup(r.netRand, src.id, to); extra > 0; extra-- {
			r.duplicated++
			r.post(src, dst, m)
		}
	}
}

// post schedules one delivery of m with a fresh delay draw.
func (r *Runtime) post(src, dst *nodeCtx, m node.Message) {
	d := r.delay.Delay(r.netRand, src.id, dst.id)
	var rec *delivery
	if n := len(r.freeDeliv); n > 0 {
		rec = r.freeDeliv[n-1]
		r.freeDeliv[n-1] = nil
		r.freeDeliv = r.freeDeliv[:n-1]
	} else {
		rec = &delivery{rt: r}
		rec.run = rec.fire
	}
	rec.src, rec.dst, rec.msg = src, dst, m
	r.sched.Post(d, rec.run)
}

// timerRec is a pooled node timer. Like delivery, run is bound once so a
// timer costs no wrapper-closure allocation; the scheduler-side cancel
// handle is the only per-timer allocation left.
type timerRec struct {
	c      *nodeCtx
	f      func()
	run    func()
	pooled bool
}

func (t *timerRec) fire() {
	if t.pooled {
		panic("sim: timerRec double fire (already pooled)")
	}
	c, f := t.c, t.f
	t.c, t.f = nil, nil
	t.pooled = true
	c.rt.freeTimer = append(c.rt.freeTimer, t)
	if c.crashed {
		return
	}
	f()
}

// nodeCtx implements node.Context for one registered node.
type nodeCtx struct {
	rt      *Runtime
	id      node.ID
	n       node.Node
	rand    *rand.Rand
	crashed bool
}

var _ node.Context = (*nodeCtx)(nil)

func (c *nodeCtx) ID() node.ID      { return c.id }
func (c *nodeCtx) Now() time.Time   { return c.rt.sched.Now() }
func (c *nodeCtx) Rand() *rand.Rand { return c.rand }

func (c *nodeCtx) Send(to node.ID, m node.Message) {
	c.rt.deliver(c, to, m)
}

func (c *nodeCtx) timerRec(f func()) *timerRec {
	r := c.rt
	var rec *timerRec
	if n := len(r.freeTimer); n > 0 {
		rec = r.freeTimer[n-1]
		r.freeTimer[n-1] = nil
		r.freeTimer = r.freeTimer[:n-1]
		rec.pooled = false
	} else {
		rec = new(timerRec)
		rec.run = rec.fire
	}
	rec.c, rec.f = c, f
	return rec
}

func (c *nodeCtx) SetTimer(d time.Duration, f func()) node.CancelFunc {
	return node.CancelFunc(c.rt.sched.After(d, c.timerRec(f).run))
}

func (c *nodeCtx) Post(d time.Duration, f func()) {
	c.rt.sched.Post(d, c.timerRec(f).run)
}

func (c *nodeCtx) Logf(format string, args ...interface{}) {
	if c.rt.logW == nil {
		return
	}
	elapsed := c.rt.sched.Now().Sub(Epoch)
	fmt.Fprintf(c.rt.logW, "%12s %-14s "+format+"\n",
		append([]interface{}{elapsed, c.id}, args...)...)
}
