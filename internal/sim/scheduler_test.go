package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsEventsInTimeOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerTieBreaksBySchedulingOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunUntilIdle()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestSchedulerClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler(1)
	var at time.Time
	s.After(42*time.Millisecond, func() { at = s.Now() })
	s.RunUntilIdle()
	if want := Epoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("event saw clock %v, want %v", at, want)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	s.After(10*time.Millisecond, func() {
		fired = append(fired, s.Now().Sub(Epoch))
		s.After(5*time.Millisecond, func() {
			fired = append(fired, s.Now().Sub(Epoch))
		})
	})
	s.RunUntilIdle()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Fatalf("fired = %v, want [10ms 15ms]", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	cancel := s.After(time.Millisecond, func() { ran = true })
	cancel()
	s.RunUntilIdle()
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestSchedulerCancelIsIdempotent(t *testing.T) {
	s := NewScheduler(1)
	cancel := s.After(time.Millisecond, func() {})
	cancel()
	cancel() // must not panic
	s.RunUntilIdle()
}

func TestSchedulerRunDeadline(t *testing.T) {
	s := NewScheduler(1)
	var ran []int
	s.After(10*time.Millisecond, func() { ran = append(ran, 1) })
	s.After(20*time.Millisecond, func() { ran = append(ran, 2) })
	s.After(30*time.Millisecond, func() { ran = append(ran, 3) })

	n := s.Run(Epoch.Add(20 * time.Millisecond))
	if n != 2 || len(ran) != 2 {
		t.Fatalf("ran %d events (%v), want exactly the first two", n, ran)
	}
	if got := s.Now(); !got.Equal(Epoch.Add(20 * time.Millisecond)) {
		t.Fatalf("clock = %v, want deadline", got)
	}
	s.RunUntilIdle()
	if len(ran) != 3 {
		t.Fatalf("remaining event did not run later: %v", ran)
	}
}

func TestSchedulerRunAdvancesClockToDeadlineWhenIdle(t *testing.T) {
	s := NewScheduler(1)
	s.Run(Epoch.Add(time.Second))
	if got := s.Now(); !got.Equal(Epoch.Add(time.Second)) {
		t.Fatalf("clock = %v, want Epoch+1s", got)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	var ran int
	s.After(time.Millisecond, func() { ran++; s.Stop() })
	s.After(2*time.Millisecond, func() { ran++ })
	s.RunUntilIdle()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt the loop)", ran)
	}
}

func TestSchedulerPastEventClampsToNow(t *testing.T) {
	s := NewScheduler(1)
	s.After(10*time.Millisecond, func() {
		s.At(Epoch, func() {
			if s.Now().Before(Epoch.Add(10 * time.Millisecond)) {
				t.Error("clock moved backwards")
			}
		})
	})
	s.RunUntilIdle()
}

func TestSchedulerNegativeAfterClampsToZero(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.RunUntilIdle()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if !s.Now().Equal(Epoch) {
		t.Fatalf("clock = %v, want Epoch", s.Now())
	}
}

func TestDeriveRandIsDeterministicAndIndependent(t *testing.T) {
	a1 := NewScheduler(7).DeriveRand("a")
	a2 := NewScheduler(7).DeriveRand("a")
	b := NewScheduler(7).DeriveRand("b")
	other := NewScheduler(8).DeriveRand("a")

	x1, x2, y, z := a1.Int63(), a2.Int63(), b.Int63(), other.Int63()
	if x1 != x2 {
		t.Fatal("same seed+name produced different streams")
	}
	if x1 == y {
		t.Fatal("different names produced identical first draws")
	}
	if x1 == z {
		t.Fatal("different seeds produced identical first draws")
	}
}

// Property: for any set of non-negative delays, events fire in nondecreasing
// time order and the clock ends at the max delay.
func TestSchedulerOrderingProperty(t *testing.T) {
	prop := func(delaysMS []uint16) bool {
		s := NewScheduler(3)
		var fired []time.Duration
		var maxD time.Duration
		for _, ms := range delaysMS {
			d := time.Duration(ms) * time.Millisecond
			if d > maxD {
				maxD = d
			}
			s.After(d, func() { fired = append(fired, s.Now().Sub(Epoch)) })
		}
		s.RunUntilIdle()
		if len(fired) != len(delaysMS) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delaysMS) == 0 || s.Now().Sub(Epoch) == maxD
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The free-list tests below pin down the recycling contract: an event struct
// is reused across tenancies, and only the generation counter keeps stale
// cancel handles from reaching into a later tenancy.

func TestSchedulerRecycledEventIgnoresStaleCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	cancel := s.After(time.Millisecond, func() { fired++ })
	s.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("first tenancy fired %d times, want 1", fired)
	}
	// The event struct is now on the free list; the next After reuses it.
	second := 0
	s.After(time.Millisecond, func() { second++ })
	cancel() // stale handle from the first tenancy: must be inert
	s.RunUntilIdle()
	if second != 1 {
		t.Fatalf("stale cancel suppressed the recycled event (fired %d times, want 1)", second)
	}
}

func TestSchedulerCanceledEventRecyclesWithoutFiring(t *testing.T) {
	s := NewScheduler(1)
	fired := 0
	cancel := s.After(time.Millisecond, func() { fired++ })
	cancel()
	s.RunUntilIdle()
	if fired != 0 {
		t.Fatal("canceled event fired")
	}
	// The canceled event was recycled at pop; its struct must serve a new
	// tenancy with a fresh callback, not the canceled flag or old fn.
	second := 0
	s.After(time.Millisecond, func() { second++ })
	s.RunUntilIdle()
	if second != 1 {
		t.Fatalf("recycled canceled event fired %d times, want 1", second)
	}
}

func TestSchedulerCancelAfterRecycleManyTenancies(t *testing.T) {
	// A single retained cancel handle must stay inert across many reuses of
	// its event struct (the generation counter keeps advancing).
	s := NewScheduler(1)
	var stale func()
	fired := 0
	stale = s.After(time.Millisecond, func() { fired++ })
	s.RunUntilIdle()
	for i := 0; i < 100; i++ {
		s.After(time.Millisecond, func() { fired++ })
		stale()
		s.RunUntilIdle()
	}
	if fired != 101 {
		t.Fatalf("fired %d times, want 101 (stale cancel must never suppress a later tenancy)", fired)
	}
}

func TestSchedulerPostReusesEvents(t *testing.T) {
	// Post must recycle event structs: schedule->fire->schedule in a chain
	// and verify the free list keeps the heap from growing.
	s := NewScheduler(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			s.Post(time.Millisecond, tick)
		}
	}
	s.Post(time.Millisecond, tick)
	s.RunUntilIdle()
	if n != 1000 {
		t.Fatalf("chain ran %d ticks, want 1000", n)
	}
	if got := len(s.free); got != 1 {
		t.Fatalf("free list holds %d events after a serial chain, want 1", got)
	}
}
