// Package sim provides a deterministic discrete-event simulation runtime for
// the actor model defined in internal/node. All experiments in this
// repository run on it: the paper's 20-minute wall-clock runs replay in
// milliseconds of CPU time, and a fixed seed reproduces the exact event
// sequence.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// event is a scheduled callback. Events with equal times fire in scheduling
// order (seq breaks ties), which keeps runs deterministic.
//
// Event structs are recycled through the scheduler's free list: experiment
// runs churn through millions of events, and allocating each one separately
// dominated the simulator's cost. gen increments every time an event object
// is returned to the free list, so a stale cancel handle (or any other
// reference from a previous tenancy) can detect that the object has moved on
// and must not be touched.
type event struct {
	at       time.Time
	seq      uint64
	fn       func()
	gen      uint32
	canceled bool
	index    int // heap index, maintained by eventHeap
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x interface{}) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. It is not safe for concurrent use; all interaction must happen from
// the goroutine that calls Run (which is also the goroutine that executes
// every event callback). Distinct Scheduler instances share nothing, so
// independent simulations may run on separate goroutines concurrently.
type Scheduler struct {
	now     time.Time
	seq     uint64
	pending eventHeap
	free    []*event // recycled event structs
	seed    int64
	stopped bool
	ran     uint64
}

// Epoch is the virtual time at which every simulation starts. The concrete
// date is arbitrary; protocol code only ever subtracts Now values.
var Epoch = time.Date(2002, time.June, 23, 0, 0, 0, 0, time.UTC)

// NewScheduler returns a scheduler whose clock starts at Epoch and whose
// derived random sources are seeded from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{now: Epoch, seed: seed}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Seed returns the run seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Events returns the number of events executed so far.
func (s *Scheduler) Events() uint64 { return s.ran }

// post schedules fn at t (clamped to now) on a recycled or fresh event and
// returns the event. The caller must not retain the event past its firing
// without checking gen.
func (s *Scheduler) post(t time.Time, fn func()) *event {
	if t.Before(s.now) {
		t = s.now
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = new(event)
	}
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	ev.canceled = false
	s.seq++
	heap.Push(&s.pending, ev)
	return ev
}

// recycle returns a popped event to the free list, bumping its generation so
// stale handles from its previous tenancy become inert.
func (s *Scheduler) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	s.free = append(s.free, ev)
}

// At schedules fn to run at virtual time t. Times in the past run "now":
// they are clamped to the current clock so the clock never moves backwards.
// The returned function cancels the callback; calling it after the event
// fired (even if the underlying event object has been recycled for a later
// callback) is a safe no-op.
func (s *Scheduler) At(t time.Time, fn func()) func() {
	ev := s.post(t, fn)
	gen := ev.gen
	return func() {
		if ev.gen == gen {
			ev.canceled = true
		}
	}
}

// After schedules fn to run d from the current virtual time and returns a
// cancel function. Negative durations are clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Post schedules fn to run d from the current virtual time with no way to
// cancel it. It is the allocation-lean sibling of After for fire-and-forget
// work (message delivery, periodic ticks): it allocates nothing once the
// event free list is warm, where After must allocate a cancel closure per
// call.
func (s *Scheduler) Post(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.post(s.now.Add(d), fn)
}

// Stop makes the currently running Run/RunUntilIdle call return after the
// current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// RunUntilIdle executes events until no events remain or Stop is called.
// It returns the number of events executed by this call.
func (s *Scheduler) RunUntilIdle() uint64 {
	return s.run(time.Time{}, false)
}

// Run executes events until the virtual clock would pass deadline, no events
// remain, or Stop is called. Events scheduled exactly at deadline still run.
// On return the clock is at the last executed event's time (or at deadline
// if it advanced past all events). It returns the number of events executed.
func (s *Scheduler) Run(deadline time.Time) uint64 {
	n := s.run(deadline, true)
	if !s.stopped && s.now.Before(deadline) {
		s.now = deadline
	}
	return n
}

// RunFor is shorthand for Run(Now().Add(d)).
func (s *Scheduler) RunFor(d time.Duration) uint64 {
	return s.Run(s.now.Add(d))
}

func (s *Scheduler) run(deadline time.Time, bounded bool) uint64 {
	s.stopped = false
	var n uint64
	for len(s.pending) > 0 && !s.stopped {
		next := s.pending[0]
		if bounded && next.at.After(deadline) {
			break
		}
		heap.Pop(&s.pending)
		if next.canceled {
			s.recycle(next)
			continue
		}
		s.now = next.at
		fn := next.fn
		// Recycle before running: fn may itself schedule events and is the
		// common producer of the next tenancy. The generation bump has
		// already invalidated any cancel handle to this firing.
		s.recycle(next)
		fn()
		n++
		s.ran++
	}
	return n
}

// DeriveRand returns a random source deterministically derived from the run
// seed and the given name. Distinct names give independent streams, so
// adding a node or a delay model does not perturb the streams of others.
func (s *Scheduler) DeriveRand(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", s.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
