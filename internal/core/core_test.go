package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/selection"
	"aqua/internal/sim"
)

const ms = time.Millisecond

func kvMethods() *qos.Methods { return qos.NewMethods("Get", "Version") }

func testService(primaries, secondaries int, lazy time.Duration) ServiceConfig {
	return ServiceConfig{
		Primaries:    primaries,
		Secondaries:  secondaries,
		LazyInterval: lazy,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}
}

func newSim(seed int64) (*sim.Scheduler, *sim.Runtime) {
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 500 * time.Microsecond, Max: 2 * ms}))
	return s, rt
}

// fixedSelector always picks the same replicas (plus the sequencer).
type fixedSelector struct{ ids []node.ID }

func (f fixedSelector) Name() string { return "fixed" }
func (f fixedSelector) Select(in selection.Input) []node.ID {
	out := append([]node.ID{}, f.ids...)
	for _, id := range out {
		if id == in.Sequencer {
			return out
		}
	}
	return append(out, in.Sequencer)
}

func TestDeployValidation(t *testing.T) {
	s, rt := newSim(1)
	_ = s
	if _, err := Deploy(rt, testService(1, 0, time.Second), nil); err == nil {
		t.Fatal("single-primary service accepted")
	}
	svc := testService(2, 0, time.Second)
	svc.NewApp = nil
	if _, err := Deploy(rt, svc, nil); err == nil {
		t.Fatal("nil NewApp accepted")
	}
	svc = testService(2, 0, 0)
	if _, err := Deploy(rt, svc, nil); err == nil {
		t.Fatal("zero lazy interval accepted")
	}
	if _, err := Deploy(rt, testService(2, 0, time.Second), []ClientConfig{{
		ID: "c", Spec: qos.Spec{Staleness: -1, Deadline: time.Second, MinProb: 0.5},
	}}); err == nil {
		t.Fatal("invalid client spec accepted")
	}
	if _, err := Deploy(rt, testService(2, 0, time.Second), []ClientConfig{{
		Spec: qos.Spec{Deadline: time.Second, MinProb: 0.5},
	}}); err == nil {
		t.Fatal("empty client ID accepted")
	}
}

func TestDeployTopology(t *testing.T) {
	_, rt := newSim(1)
	d, err := Deploy(rt, testService(4, 6, 2*time.Second), []ClientConfig{{
		ID:   "c00",
		Spec: qos.Spec{Staleness: 2, Deadline: 200 * ms, MinProb: 0.9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Sequencer != "p00" || len(d.PrimaryGroup) != 4 || len(d.ServingPrimaries) != 3 || len(d.Secondaries) != 6 {
		t.Fatalf("topology = %+v", d)
	}
	if len(d.Replicas) != 10 || len(d.Clients) != 1 {
		t.Fatalf("gateways = %d replicas, %d clients", len(d.Replicas), len(d.Clients))
	}
	if d.Info.Sequencer != "p00" || d.Info.LazyInterval != 2*time.Second {
		t.Fatalf("info = %+v", d.Info)
	}
}

func TestEndToEndWriteThenRead(t *testing.T) {
	s, rt := newSim(2)
	var got []client.Result
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 0, Deadline: 500 * ms, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(10*ms, func() {
				gw.Invoke("Set", []byte("a=1"), func(w client.Result) {
					got = append(got, w)
					gw.Invoke("Get", []byte("a"), func(r client.Result) {
						got = append(got, r)
					})
				})
			})
		},
	}}
	d, err := Deploy(rt, testService(3, 2, time.Second), clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(5 * time.Second)

	if len(got) != 2 {
		t.Fatalf("completed %d invocations, want 2", len(got))
	}
	if got[0].Err != "" || string(got[0].Payload) != "v1" {
		t.Fatalf("write result = %+v", got[0])
	}
	if got[1].Err != "" || string(got[1].Payload) != "1" {
		t.Fatalf("read result = %+v", got[1])
	}
	if got[1].Selected < 1 {
		t.Fatalf("read selected %d serving replicas", got[1].Selected)
	}
	m := d.Clients["c00"].Metrics()
	if m.Reads != 1 || m.Updates != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestSequentialConsistencyAcrossPrimaries(t *testing.T) {
	s, rt := newSim(3)
	const writers = 3
	const perWriter = 20
	var clients []ClientConfig
	for i := 0; i < writers; i++ {
		i := i
		id := node.ID(fmt.Sprintf("c%02d", i))
		clients = append(clients, ClientConfig{
			ID:      id,
			Spec:    qos.Spec{Staleness: 2, Deadline: 500 * ms, MinProb: 0.5},
			Methods: kvMethods(),
			Driver: func(ctx node.Context, gw *client.Gateway) {
				var issue func(k int)
				issue = func(k int) {
					if k >= perWriter {
						return
					}
					payload := []byte(fmt.Sprintf("k=%d-%d", i, k))
					gw.Invoke("Set", payload, func(client.Result) {
						ctx.SetTimer(5*ms, func() { issue(k + 1) })
					})
				}
				ctx.SetTimer(time.Duration(i)*ms, func() { issue(0) })
			},
		})
	}
	d, err := Deploy(rt, testService(4, 3, 500*ms), clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(30 * time.Second)

	want := uint64(writers * perWriter)
	// Every primary (including the silent sequencer) applied all updates in
	// the same order; their states must be bit-identical.
	var ref []byte
	for _, id := range d.PrimaryGroup {
		gw := d.Replicas[id]
		if gw.Applied() != want {
			t.Fatalf("%s applied %d, want %d", id, gw.Applied(), want)
		}
		snap, err := gw.App().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = snap
		} else if string(ref) != string(snap) {
			t.Fatalf("%s state diverged from the sequencer's", id)
		}
	}
	// Secondaries caught up through lazy updates.
	for _, id := range d.Secondaries {
		gw := d.Replicas[id]
		if gw.CSN() != want {
			t.Fatalf("%s CSN %d, want %d", id, gw.CSN(), want)
		}
		snap, _ := gw.App().Snapshot()
		if string(snap) != string(ref) {
			t.Fatalf("%s state diverged after lazy propagation", id)
		}
	}
}

func TestDeferredReadWaitsForLazyUpdate(t *testing.T) {
	s, rt := newSim(4)
	const lazy = 800 * ms
	var read client.Result
	var readIssuedAt, readDoneAt time.Time
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 0, Deadline: 10 * time.Second, MinProb: 0.1},
		Methods: kvMethods(),
		// Force the read to a secondary: with staleness 0 and a fresh
		// update, it must defer until the next lazy propagation.
		Selector: fixedSelector{ids: []node.ID{"s00"}},
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(10*ms, func() {
				gw.Invoke("Set", []byte("x=1"), func(client.Result) {
					readIssuedAt = ctx.Now()
					gw.Invoke("Get", []byte("x"), func(r client.Result) {
						read = r
						readDoneAt = ctx.Now()
					})
				})
			})
		},
	}}
	if _, err := Deploy(rt, testService(2, 1, lazy), clients); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(5 * time.Second)

	if readDoneAt.IsZero() {
		t.Fatal("deferred read never completed")
	}
	if string(read.Payload) != "1" {
		t.Fatalf("deferred read payload = %q (staleness guarantee broken)", read.Payload)
	}
	if wait := readDoneAt.Sub(readIssuedAt); wait < 100*ms {
		t.Fatalf("read completed in %v; it should have deferred until the lazy update", wait)
	}
	if read.Replica != "s00" {
		t.Fatalf("read served by %s, want s00", read.Replica)
	}
}

func TestStaleReadServedImmediatelyWithinThreshold(t *testing.T) {
	s, rt := newSim(5)
	const lazy = 10 * time.Second // effectively never during the test
	var read client.Result
	var readDoneAt, readIssuedAt time.Time
	clients := []ClientConfig{{
		ID:       "c00",
		Spec:     qos.Spec{Staleness: 5, Deadline: time.Second, MinProb: 0.1},
		Methods:  kvMethods(),
		Selector: fixedSelector{ids: []node.ID{"s00"}},
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(10*ms, func() {
				gw.Invoke("Set", []byte("x=1"), func(client.Result) {
					readIssuedAt = ctx.Now()
					gw.Invoke("Version", nil, func(r client.Result) {
						read = r
						readDoneAt = ctx.Now()
					})
				})
			})
		},
	}}
	if _, err := Deploy(rt, testService(2, 1, lazy), clients); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(3 * time.Second)

	if readDoneAt.IsZero() {
		t.Fatal("read never completed")
	}
	// The secondary has not applied the update (lazy interval is huge) but
	// staleness 1 ≤ threshold 5, so it answers immediately from old state.
	if string(read.Payload) != "v0" {
		t.Fatalf("payload = %q, want stale v0", read.Payload)
	}
	if wait := readDoneAt.Sub(readIssuedAt); wait > 200*ms {
		t.Fatalf("within-threshold read took %v; should be immediate", wait)
	}
}

func TestSequencerFailover(t *testing.T) {
	s, rt := newSim(6)
	var results []client.Result
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 2, Deadline: time.Second, MinProb: 0.1},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(k int)
			issue = func(k int) {
				if k >= 40 {
					return
				}
				gw.Invoke("Set", []byte(fmt.Sprintf("k=%d", k)), func(r client.Result) {
					results = append(results, r)
					ctx.SetTimer(100*ms, func() { issue(k + 1) })
				})
			}
			ctx.SetTimer(10*ms, func() { issue(0) })
		},
	}}
	d, err := Deploy(rt, testService(4, 2, 500*ms), clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(1 * time.Second)
	rt.Crash("p00") // kill the sequencer mid-run
	s.RunFor(30 * time.Second)

	if len(results) != 40 {
		t.Fatalf("completed %d of 40 updates across sequencer failover", len(results))
	}
	// p01 must have taken over sequencing and announced itself.
	if !d.Replicas["p01"].IsLeader() {
		t.Fatal("p01 did not become sequencer")
	}
	if got := d.Clients["c00"].Sequencer(); got != "p01" {
		t.Fatalf("client believes sequencer is %s, want p01", got)
	}
	// Surviving primaries converged.
	applied := d.Replicas["p01"].Applied()
	if applied != 40 {
		t.Fatalf("p01 applied %d, want 40", applied)
	}
	for _, id := range []node.ID{"p02", "p03"} {
		if d.Replicas[id].Applied() != applied {
			t.Fatalf("%s applied %d, want %d", id, d.Replicas[id].Applied(), applied)
		}
	}
}

func TestLazyPublisherFailover(t *testing.T) {
	s, rt := newSim(7)
	done := 0
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 2, Deadline: time.Second, MinProb: 0.1},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(k int)
			issue = func(k int) {
				if k >= 30 {
					return
				}
				gw.Invoke("Set", []byte(fmt.Sprintf("k=%d", k)), func(client.Result) {
					done++
					ctx.SetTimer(100*ms, func() { issue(k + 1) })
				})
			}
			ctx.SetTimer(10*ms, func() { issue(0) })
		},
	}}
	d, err := Deploy(rt, testService(4, 2, 400*ms), clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(time.Second)
	if !d.Replicas["p01"].IsPublisher() {
		t.Fatal("p01 should be the initial lazy publisher")
	}
	rt.Crash("p01")
	s.RunFor(30 * time.Second)

	if !d.Replicas["p02"].IsPublisher() {
		t.Fatal("p02 did not take over lazy publishing")
	}
	if done != 30 {
		t.Fatalf("completed %d of 30 updates", done)
	}
	// Secondaries kept receiving lazy updates from the new publisher.
	for _, id := range d.Secondaries {
		if got := d.Replicas[id].CSN(); got != 30 {
			t.Fatalf("%s CSN %d, want 30 (lazy propagation stalled)", id, got)
		}
	}
}

func TestTimingFailureDetectionAndBreachCallback(t *testing.T) {
	s, rt := newSim(8)
	var breach []float64
	reads := 0
	svc := testService(3, 2, time.Second)
	// Every request takes ~300ms of simulated service time.
	svc.ServiceDelay = func(*rand.Rand) time.Duration { return 300 * ms }
	clients := []ClientConfig{{
		ID:       "c00",
		Spec:     qos.Spec{Staleness: 5, Deadline: 50 * ms, MinProb: 0.9},
		Methods:  kvMethods(),
		OnBreach: func(rate float64) { breach = append(breach, rate) },
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(k int)
			issue = func(k int) {
				if k >= 10 {
					return
				}
				gw.Invoke("Version", nil, func(r client.Result) {
					reads++
					if !r.TimingFailure {
						t.Errorf("read %d met an unmeetable 50ms deadline", k)
					}
					ctx.SetTimer(50*ms, func() { issue(k + 1) })
				})
			}
			ctx.SetTimer(10*ms, func() { issue(0) })
		},
	}}
	d, err := Deploy(rt, svc, clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(30 * time.Second)

	if reads != 10 {
		t.Fatalf("completed %d of 10 reads", reads)
	}
	if len(breach) != 1 {
		t.Fatalf("breach callback fired %d times, want exactly once", len(breach))
	}
	if m := d.Clients["c00"].Metrics(); m.TimingFailures != 10 {
		t.Fatalf("timing failures = %d, want 10", m.TimingFailures)
	}
	if rate := d.Clients["c00"].FailureRate(); rate != 1 {
		t.Fatalf("failure rate = %v, want 1", rate)
	}
}

func TestPerfBroadcastsPopulateRepository(t *testing.T) {
	s, rt := newSim(9)
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 2, Deadline: 500 * ms, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(k int)
			issue = func(k int) {
				if k >= 6 {
					return
				}
				method, payload := "Set", []byte(fmt.Sprintf("k=%d", k))
				if k%2 == 1 {
					method, payload = "Version", nil
				}
				gw.Invoke(method, payload, func(client.Result) {
					ctx.SetTimer(50*ms, func() { issue(k + 1) })
				})
			}
			ctx.SetTimer(10*ms, func() { issue(0) })
		},
	}}
	d, err := Deploy(rt, testService(3, 2, 300*ms), clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(10 * time.Second)

	repo := d.Clients["c00"].Repository()
	// Cold-start reads go to every serving replica, so all have history.
	histories := 0
	for _, id := range append(append([]node.ID{}, d.ServingPrimaries...), d.Secondaries...) {
		if repo.HasHistory(id) {
			histories++
		}
	}
	if histories == 0 {
		t.Fatal("no replica history after reads")
	}
	if !repo.HasPublisherInfo() {
		t.Fatal("no lazy-publisher info reached the client")
	}
	if repo.UpdateRate() <= 0 {
		t.Fatal("update rate λu not learned")
	}
}

func TestFullStackReplicaRestartMidWorkload(t *testing.T) {
	s, rt := newSim(20)
	done := 0
	var failures int
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 2, Deadline: time.Second, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(k int)
			issue = func(k int) {
				if k >= 60 {
					done++
					return
				}
				next := func(r client.Result) {
					if r.TimingFailure {
						failures++
					}
					ctx.SetTimer(100*ms, func() { issue(k + 1) })
				}
				if k%2 == 0 {
					gw.Invoke("Set", []byte(fmt.Sprintf("k=%d", k)), next)
				} else {
					gw.Invoke("Get", []byte("k"), next)
				}
			}
			ctx.SetTimer(10*ms, func() { issue(0) })
		},
	}}
	d, err := Deploy(rt, testService(3, 2, 400*ms), clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	s.RunFor(2 * time.Second)
	rt.Crash("p02")
	s.RunFor(2 * time.Second)
	fresh, err := d.NewReplicaGateway("p02")
	if err != nil {
		t.Fatal(err)
	}
	rt.Restart("p02", fresh)
	for i := 0; i < 120 && done == 0; i++ {
		s.RunFor(time.Second)
	}

	if done != 1 {
		t.Fatal("workload did not finish across restart")
	}
	// The restarted replica converged with the rest of the group.
	s.RunFor(2 * time.Second)
	want := d.Replicas["p01"].Applied()
	if got := fresh.Applied(); got != want {
		t.Fatalf("restarted p02 applied %d, want %d", got, want)
	}
	snapA, _ := d.Replicas["p01"].App().Snapshot()
	snapB, _ := fresh.App().Snapshot()
	if string(snapA) != string(snapB) {
		t.Fatal("restarted replica state diverged")
	}
}

func TestNewReplicaGatewayUnknownID(t *testing.T) {
	_, rt := newSim(21)
	d, err := Deploy(rt, testService(2, 1, time.Second), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewReplicaGateway("zz"); err == nil {
		t.Fatal("unknown replica accepted")
	}
	if _, err := d.NewReplicaGateway("s00"); err != nil {
		t.Fatalf("secondary rebuild failed: %v", err)
	}
}
