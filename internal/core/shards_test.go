package core

import (
	"testing"
	"time"

	"aqua/internal/node"
	"aqua/internal/obs"
)

func TestDeployShardsTopology(t *testing.T) {
	_, rt := newSim(30)
	svc := testService(3, 2, time.Second)
	hooked := 0
	sd, err := DeployShards(rt, svc, 3, func(shard int, s *ServiceConfig) {
		hooked++
		if shard > 0 && s.NodePrefix == "" {
			t.Errorf("shard %d has no node prefix", shard)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked != 3 || len(sd.Shards) != 3 || len(sd.Infos) != 3 {
		t.Fatalf("deployed %d shards, hook ran %d times", len(sd.Shards), hooked)
	}
	// Each shard is a full deployment with its own prefixed sequencer.
	for i, want := range []node.ID{"sh0-p00", "sh1-p00", "sh2-p00"} {
		d := sd.Shards[i]
		if d.Sequencer != want {
			t.Fatalf("shard %d sequencer = %s, want %s", i, d.Sequencer, want)
		}
		if len(d.PrimaryGroup) != 3 || len(d.Secondaries) != 2 {
			t.Fatalf("shard %d topology = %+v", i, d)
		}
		// Every replica maps back to its shard.
		for _, id := range append(append([]node.ID(nil), d.PrimaryGroup...), d.Secondaries...) {
			if got := sd.Owner(id); got != i {
				t.Fatalf("Owner(%s) = %d, want %d", id, got, i)
			}
		}
	}
	if sd.Owner("c00") != -1 {
		t.Fatal("non-replica ID mapped to a shard")
	}

	// Restart hook reaches through to the owning shard.
	if _, err := sd.NewReplicaGateway("sh1-s01"); err != nil {
		t.Fatalf("cross-shard replica rebuild: %v", err)
	}
	if _, err := sd.NewReplicaGateway("zz"); err == nil {
		t.Fatal("unknown replica accepted")
	}
}

func TestDeployShardsSingleKeepsPlainIDs(t *testing.T) {
	_, rt := newSim(31)
	sd, err := DeployShards(rt, testService(3, 2, time.Second), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := sd.Shards[0]
	if d.Sequencer != "p00" || d.Secondaries[0] != "s00" {
		t.Fatalf("single-shard IDs prefixed: seq=%s sec=%s", d.Sequencer, d.Secondaries[0])
	}
}

// TestDeployShardsObsLabelsDistinct pins the registry-collision fix: two
// deployments on one runtime sharing one registry record through per-shard
// labelled views, so every emitted sample carries its shard label and the
// series stay distinct.
func TestDeployShardsObsLabelsDistinct(t *testing.T) {
	s, rt := newSim(32)
	reg := obs.NewRegistry()
	svc := testService(2, 1, 300*time.Millisecond)
	svc.Obs = reg
	if _, err := DeployShards(rt, svc, 2, nil); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(2 * time.Second)

	seen := map[string]bool{}
	for _, sample := range reg.Snapshot() {
		labels := map[string]string{}
		for i := 0; i+1 < len(sample.Labels); i += 2 {
			labels[sample.Labels[i]] = sample.Labels[i+1]
		}
		v, ok := labels["shard"]
		if !ok {
			t.Fatalf("sample %s %v lacks a shard label", sample.Name, sample.Labels)
		}
		seen[v] = true
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("shard labels seen = %v, want both 0 and 1", seen)
	}
}
