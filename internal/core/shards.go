// Sharded deployments: N independent primary/secondary group pairs — each
// with its own sequencer, lazy publisher, and commit/read buffers — standing
// side by side on one runtime. DeployShards is the deployment half of the
// scale-out design (DESIGN.md §12); the keyspace partitioning and request
// routing live in internal/shard.
package core

import (
	"errors"
	"fmt"
	"strconv"

	"aqua/internal/client"
	"aqua/internal/node"
)

// ShardedDeployment is N deployments sharing one runtime, indexed by shard.
type ShardedDeployment struct {
	Shards []*Deployment
	// Infos caches each shard's client-visible service description, in
	// shard order — what a shard router is configured with.
	Infos []client.ServiceInfo

	// owner maps every replica ID to its shard index, for dispatching
	// replica-originated traffic (replies, broadcasts) to the right
	// per-shard state. Shard ID sets are disjoint by construction.
	owner map[node.ID]int
}

// DeployShards stands up n independent service deployments on one runtime.
// Shard i's replicas get node IDs prefixed "sh<i>-" — except when n == 1,
// where the prefix stays empty so the single-shard deployment is
// byte-identical to a plain Deploy (same node IDs, hence same per-node rand
// streams and the same event order). When svc.Obs is set and n > 1, each
// shard's gateways record through a per-shard labelled registry view
// ("shard", "<i>"), keeping instrument names distinct in /metrics.
//
// perShard, if non-nil, runs on each shard's config copy before deployment —
// the hook chaos runs use to install per-shard recorders. Clients are not
// deployed here: sharded services front their traffic with a shard.Router
// (or a multi-shard workload engine), which routes per key.
func DeployShards(rt Runtime, svc ServiceConfig, n int, perShard func(shard int, s *ServiceConfig)) (*ShardedDeployment, error) {
	if n < 1 {
		return nil, errors.New("core: DeployShards needs at least 1 shard")
	}
	sd := &ShardedDeployment{owner: make(map[node.ID]int)}
	for i := 0; i < n; i++ {
		s := svc
		if n > 1 {
			s.NodePrefix = fmt.Sprintf("sh%d-%s", i, svc.NodePrefix)
			s.Obs = svc.Obs.WithLabels("shard", strconv.Itoa(i))
		}
		if perShard != nil {
			perShard(i, &s)
		}
		d, err := Deploy(rt, s, nil)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		sd.Shards = append(sd.Shards, d)
		sd.Infos = append(sd.Infos, d.Info)
		for _, id := range d.PrimaryGroup {
			sd.owner[id] = i
		}
		for _, id := range d.Secondaries {
			sd.owner[id] = i
		}
	}
	return sd, nil
}

// Owner returns the shard index owning the given replica ID (-1 if the ID
// belongs to no shard — e.g. a client node).
func (sd *ShardedDeployment) Owner(id node.ID) int {
	if i, ok := sd.owner[id]; ok {
		return i
	}
	return -1
}

// NewReplicaGateway rebuilds a fresh gateway for a replica of any shard —
// the restart hook a chaos injector needs when faults span shards.
func (sd *ShardedDeployment) NewReplicaGateway(id node.ID) (node.Node, error) {
	i := sd.Owner(id)
	if i < 0 {
		return nil, fmt.Errorf("core: %q is not a replica of any shard", id)
	}
	return sd.Shards[i].NewReplicaGateway(id)
}
