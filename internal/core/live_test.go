package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/client"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/tcpnet"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout waiting for: " + msg)
}

func TestLiveRuntimeEndToEnd(t *testing.T) {
	rt := live.NewRuntime(live.WithSeed(42))
	var gotWrite, gotRead atomic.Value
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 0, Deadline: 500 * ms, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(10*ms, func() {
				gw.Invoke("Set", []byte("a=live"), func(w client.Result) {
					gotWrite.Store(w)
					gw.Invoke("Get", []byte("a"), func(r client.Result) {
						gotRead.Store(r)
					})
				})
			})
		},
	}}
	svc := testService(3, 2, 500*ms)
	if _, err := Deploy(rt, svc, clients); err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	waitFor(t, func() bool { return gotRead.Load() != nil }, "live read")
	w := gotWrite.Load().(client.Result)
	r := gotRead.Load().(client.Result)
	if w.Err != "" || string(w.Payload) != "v1" {
		t.Fatalf("write = %+v", w)
	}
	if r.Err != "" || string(r.Payload) != "live" {
		t.Fatalf("read = %+v", r)
	}
}

// TestLiveTCPEndToEnd splits the deployment across two "processes" (two
// live runtimes bridged by real TCP): replicas in one, the client in the
// other.
func TestLiveTCPEndToEnd(t *testing.T) {
	serverRT := live.NewRuntime(live.WithSeed(1))
	clientRT := live.NewRuntime(live.WithSeed(2))

	serverTR, err := tcpnet.New(serverRT, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer serverTR.Close()
	clientTR, err := tcpnet.New(clientRT, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer clientTR.Close()
	serverRT.SetRemote(serverTR.Send)
	clientRT.SetRemote(clientTR.Send)

	// Replica nodes live in serverRT; the client gateway in clientRT. Each
	// transport maps the other side's node IDs.
	serverTR.AddPeer("c00", clientTR.Addr())
	for _, id := range []node.ID{"p00", "p01", "p02", "s00", "s01"} {
		clientTR.AddPeer(id, serverTR.Addr())
	}

	// Deploy replicas on the server runtime and the client on the client
	// runtime by using a split registrar.
	var gotRead atomic.Value
	split := splitRuntime{
		pick: func(id node.ID) Runtime {
			if id[0] == 'c' {
				return clientRT
			}
			return serverRT
		},
	}
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 0, Deadline: time.Second, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(20*ms, func() {
				gw.Invoke("Set", []byte("a=tcp"), func(client.Result) {
					gw.Invoke("Get", []byte("a"), func(r client.Result) {
						gotRead.Store(r)
					})
				})
			})
		},
	}}
	if _, err := Deploy(&split, testService(3, 2, 500*ms), clients); err != nil {
		t.Fatal(err)
	}
	serverRT.Start()
	clientRT.Start()
	defer serverRT.Stop()
	defer clientRT.Stop()

	waitFor(t, func() bool { return gotRead.Load() != nil }, "read over TCP")
	r := gotRead.Load().(client.Result)
	if r.Err != "" || string(r.Payload) != "tcp" {
		t.Fatalf("read = %+v", r)
	}
}

// splitRuntime routes registrations to different runtimes by node ID.
type splitRuntime struct {
	pick func(node.ID) Runtime
}

func (s *splitRuntime) Register(id node.ID, n node.Node) {
	s.pick(id).Register(id, n)
}

func TestLiveRuntimeSequencerFailover(t *testing.T) {
	rt := live.NewRuntime(live.WithSeed(99))
	var completed atomic.Int64
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 2, Deadline: time.Second, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			var issue func(i int)
			issue = func(i int) {
				if i >= 30 {
					return
				}
				gw.Invoke("Set", []byte(fmt.Sprintf("k=%d", i)), func(client.Result) {
					completed.Add(1)
					ctx.SetTimer(20*time.Millisecond, func() { issue(i + 1) })
				})
			}
			ctx.SetTimer(10*time.Millisecond, func() { issue(0) })
		},
	}}
	svc := testService(3, 2, 300*ms)
	d, err := Deploy(rt, svc, clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()

	waitFor(t, func() bool { return completed.Load() >= 5 }, "first updates")
	rt.StopNode("p00") // crash the sequencer, in real time
	waitFor(t, func() bool { return completed.Load() == 30 }, "updates across live failover")

	waitFor(t, func() bool { return d.Replicas["p01"].IsLeader() }, "p01 leadership")
	if got := d.Replicas["p02"].Applied(); got != 30 {
		t.Fatalf("p02 applied %d, want 30", got)
	}
}
