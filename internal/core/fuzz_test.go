package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/client"
	"aqua/internal/consistency"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

// TestRandomizedFaultScenarios is a protocol fuzzer: for a set of seeds it
// deploys a service, drives a closed-loop workload from two clients, and
// injects a random schedule of crashes and restarts (always leaving at
// least one primary alive). Invariants checked at the end:
//
//  1. the workload completes (no stalls — every request eventually gets a
//     reply or a bounded-retry failure),
//  2. all live primaries converge to identical applied state,
//  3. all live secondaries converge to the same state after a quiet period,
//  4. applied never exceeds the number of updates issued.
func TestRandomizedFaultScenarios(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFaultScenario(t, seed, 0)
		})
	}
}

// TestRandomizedFaultScenariosUnderLoss layers 2% uniform message loss on
// top of the crash/restart schedule: the substrate's ARQ and the recovery
// protocols must still converge.
func TestRandomizedFaultScenariosUnderLoss(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFaultScenario(t, seed, 0.02)
		})
	}
}

func runFaultScenario(t *testing.T, seed int64, loss float64) {
	s := sim.NewScheduler(seed)
	opts := []sim.Option{sim.WithDelay(netsim.UniformDelay{Min: 500 * time.Microsecond, Max: 2 * ms})}
	if loss > 0 {
		opts = append(opts, sim.WithLoss(netsim.UniformLoss{P: loss}))
	}
	rt := sim.NewRuntime(s, opts...)
	rng := rand.New(rand.NewSource(seed))

	const (
		requests   = 120
		nPrimaries = 4 // incl sequencer
		nSecs      = 3
	)

	var totalUpdates, completed, failedBack int
	mkDriver := func(n int) func(node.Context, *client.Gateway) {
		return func(ctx node.Context, gw *client.Gateway) {
			var issue func(i int)
			issue = func(i int) {
				if i >= n {
					return
				}
				next := func(r client.Result) {
					completed++
					if r.Err != "" {
						failedBack++
					}
					ctx.SetTimer(80*ms, func() { issue(i + 1) })
				}
				if i%2 == 0 {
					totalUpdates++
					gw.Invoke("Set", []byte(fmt.Sprintf("k%d=%d", i%7, i)), next)
				} else {
					gw.Invoke("Get", []byte(fmt.Sprintf("k%d", i%7)), next)
				}
			}
			ctx.SetTimer(10*ms, func() { issue(0) })
		}
	}

	svc := testService(nPrimaries, nSecs, 500*ms)
	svc.ServiceDelay = func(r *rand.Rand) time.Duration {
		return stats.TruncNormalDuration(r, 20*ms, 10*ms, 0)
	}
	// Record every replica's application order for the prefix check.
	appliedLog := make(map[node.ID][]consistency.RequestID)
	svc.OnApply = func(id node.ID, gsn uint64, rid consistency.RequestID) {
		appliedLog[id] = append(appliedLog[id], rid)
	}
	d, err := Deploy(rt, svc, []ClientConfig{
		{ID: "c00", Spec: qos.Spec{Staleness: 2, Deadline: 300 * ms, MinProb: 0.5},
			Methods: kvMethods(), Driver: mkDriver(requests)},
		{ID: "c01", Spec: qos.Spec{Staleness: 0, Deadline: 300 * ms, MinProb: 0.5},
			Methods: kvMethods(), Driver: mkDriver(requests)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	// Random fault schedule: at random instants, crash a random live
	// replica (keeping >=2 primary members so updates stay serviceable
	// within the run) or restart a random crashed one.
	allReplicas := append(append([]node.ID{}, d.PrimaryGroup...), d.Secondaries...)
	crashed := map[node.ID]bool{}
	livePrimaries := func() int {
		n := 0
		for _, id := range d.PrimaryGroup {
			if !crashed[id] {
				n++
			}
		}
		return n
	}
	events := 6 + rng.Intn(5)
	for i := 0; i < events; i++ {
		s.RunFor(time.Duration(1+rng.Intn(4)) * time.Second)
		if rng.Intn(2) == 0 && len(crashed) > 0 {
			// Restart a random crashed replica.
			var list []node.ID
			for id := range crashed {
				list = append(list, id)
			}
			victim := list[rng.Intn(len(list))]
			fresh, err := d.NewReplicaGateway(victim)
			if err != nil {
				t.Fatal(err)
			}
			rt.Restart(victim, fresh)
			delete(crashed, victim)
		} else {
			victim := allReplicas[rng.Intn(len(allReplicas))]
			if crashed[victim] {
				continue
			}
			isPrimary := false
			for _, p := range d.PrimaryGroup {
				if p == victim {
					isPrimary = true
				}
			}
			if isPrimary && livePrimaries() <= 2 {
				continue // keep the service able to commit
			}
			rt.Crash(victim)
			crashed[victim] = true
		}
	}

	// Let the workload finish, then a quiet period for convergence.
	for i := 0; i < 600 && completed < 2*requests; i++ {
		s.RunFor(time.Second)
	}
	if completed != 2*requests {
		t.Fatalf("workload stalled: %d of %d completed (crashed: %v)",
			completed, 2*requests, crashed)
	}
	s.RunFor(10 * time.Second) // quiet: lazy rounds, chases, stragglers

	// Invariant 2/4: live primaries bit-identical, applied ≤ issued updates.
	var refApplied uint64
	var refSnap []byte
	for _, id := range d.PrimaryGroup {
		if crashed[id] {
			continue
		}
		gw := d.Replicas[id]
		snap, err := gw.App().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if refSnap == nil {
			refApplied, refSnap = gw.Applied(), snap
			continue
		}
		if gw.Applied() != refApplied {
			t.Fatalf("%s applied %d, peer %d (divergence)", id, gw.Applied(), refApplied)
		}
		if string(snap) != string(refSnap) {
			t.Fatalf("%s state differs from peer primaries", id)
		}
	}

	// Invariant 3: live secondaries converge to the same state.
	for _, id := range d.Secondaries {
		if crashed[id] {
			continue
		}
		gw := d.Replicas[id]
		if gw.CSN() != refApplied {
			t.Fatalf("%s CSN %d, primaries at %d", id, gw.CSN(), refApplied)
		}
		snap, _ := gw.App().Snapshot()
		if string(snap) != string(refSnap) {
			t.Fatalf("%s state differs from primaries", id)
		}
	}
	// Invariant 5 (sequential consistency): every replica's application
	// order is a prefix of (or equal to, modulo snapshot-skipped spans)
	// every other's. A replica that recovered via snapshots has gaps — it
	// applied a suffix — so the check is: the orders never contradict,
	// i.e. the pairwise common subsequence preserves relative order. We
	// verify against the longest log as the reference order.
	var refLog []consistency.RequestID
	for _, log := range appliedLog {
		if len(log) > len(refLog) {
			refLog = log
		}
	}
	pos := make(map[consistency.RequestID]int, len(refLog))
	for i, id := range refLog {
		pos[id] = i
	}
	for rid, log := range appliedLog {
		last := -1
		for _, id := range log {
			p, ok := pos[id]
			if !ok {
				continue // applied on this replica, subsumed by snapshot on ref
			}
			if p <= last {
				t.Fatalf("%s applied %v out of the reference order (pos %d after %d)",
					rid, id, p, last)
			}
			last = p
		}
	}

	t.Logf("seed %d: %d events, %d crashed at end, %d/%d requests (%d failed back), applied %d",
		seed, events, len(crashed), completed, 2*requests, failedBack, refApplied)
}
