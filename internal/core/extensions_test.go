package core

import (
	"testing"
	"time"

	"aqua/internal/client"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
)

func TestPriorityMapLevels(t *testing.T) {
	p := DefaultPriorityMap()
	if p.Levels() != 4 {
		t.Fatalf("levels = %d", p.Levels())
	}
	if p.MinProb(0) != 0.5 || p.MinProb(3) != 0.99 {
		t.Fatal("level probabilities wrong")
	}
	// Clamping.
	if p.MinProb(-5) != 0.5 || p.MinProb(99) != 0.99 {
		t.Fatal("clamping wrong")
	}
}

func TestPriorityMapSpecFor(t *testing.T) {
	p := DefaultPriorityMap()
	spec := p.SpecFor(2, 3, 150*ms)
	if spec.MinProb != 0.9 || spec.Staleness != 3 || spec.Deadline != 150*ms {
		t.Fatalf("spec = %+v", spec)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityMapValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewPriorityMap() })
	mustPanic("descending", func() { NewPriorityMap(0.9, 0.5) })
	mustPanic("out of range", func() { NewPriorityMap(0.5, 1.5) })
}

func admissionFixture() (*repository.Repository, client.ServiceInfo) {
	info := client.ServiceInfo{
		Primaries:    []node.ID{"p00", "p01", "p02"},
		Secondaries:  []node.ID{"s00", "s01"},
		Sequencer:    "p00",
		LazyInterval: 2 * time.Second,
	}
	repo := repository.New(20)
	return repo, info
}

func TestAdmissionRejectsColdStart(t *testing.T) {
	repo, info := admissionFixture()
	ac := AdmissionController{Model: selection.Model{BinWidth: 2 * ms, LazyInterval: info.LazyInterval}}
	spec := qos.Spec{Staleness: 2, Deadline: 150 * ms, MinProb: 0.9}
	d := ac.Evaluate(repo, info, spec, time.Now())
	if d.Admit {
		t.Fatalf("admitted with no performance history: %+v", d)
	}
}

func TestAdmissionAcceptsFastReplicas(t *testing.T) {
	repo, info := admissionFixture()
	now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	for _, id := range []node.ID{"p01", "p02", "s00", "s01"} {
		for i := 0; i < 20; i++ {
			repo.RecordPerf(id, 20*ms, 2*ms)
		}
		repo.RecordReply(id, ms, now)
	}
	repo.RecordPublisherRates(1, 10*time.Second) // λu = 0.1/s: rarely stale
	repo.RecordLazyInfo(0, 0, now)

	ac := AdmissionController{Model: selection.Model{BinWidth: 2 * ms, LazyInterval: info.LazyInterval}}
	spec := qos.Spec{Staleness: 2, Deadline: 150 * ms, MinProb: 0.9}
	d := ac.Evaluate(repo, info, spec, now)
	if !d.Admit {
		t.Fatalf("rejected despite fast replicas: %+v", d)
	}
	if d.PredictedPK < 0.9 {
		t.Fatalf("PredictedPK = %v", d.PredictedPK)
	}
	if d.ReplicasNeeded <= 0 || d.ReplicasNeeded >= 4 {
		t.Fatalf("ReplicasNeeded = %d, want a strict subset", d.ReplicasNeeded)
	}
}

func TestAdmissionRejectsSlowReplicas(t *testing.T) {
	repo, info := admissionFixture()
	now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	for _, id := range []node.ID{"p01", "p02", "s00", "s01"} {
		for i := 0; i < 20; i++ {
			repo.RecordPerf(id, 500*ms, 50*ms) // far beyond the deadline
		}
		repo.RecordReply(id, ms, now)
	}
	ac := AdmissionController{Model: selection.Model{BinWidth: 2 * ms, LazyInterval: info.LazyInterval}}
	spec := qos.Spec{Staleness: 2, Deadline: 150 * ms, MinProb: 0.9}
	d := ac.Evaluate(repo, info, spec, now)
	if d.Admit {
		t.Fatalf("admitted despite hopeless replicas: %+v", d)
	}
}
