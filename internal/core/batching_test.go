package core

import (
	"fmt"
	"testing"
	"time"

	"aqua/internal/client"
	"aqua/internal/node"
	"aqua/internal/qos"
)

// TestSequentialConsistencyWithBatchedAssignment re-runs the cross-primary
// convergence invariant with batched GSN ordering, a non-trivial window, and
// the frontier read fast path enabled: every primary must still apply every
// update in the same order, and secondaries must converge through lazy
// propagation. It also checks the batch machinery actually engaged — the
// sequencer's flush stats must show multi-request windows.
func TestSequentialConsistencyWithBatchedAssignment(t *testing.T) {
	s, rt := newSim(3)
	const writers = 3
	const perWriter = 20
	var clients []ClientConfig
	for i := 0; i < writers; i++ {
		i := i
		id := node.ID(fmt.Sprintf("c%02d", i))
		clients = append(clients, ClientConfig{
			ID:      id,
			Spec:    qos.Spec{Staleness: 2, Deadline: 500 * ms, MinProb: 0.5},
			Methods: kvMethods(),
			Driver: func(ctx node.Context, gw *client.Gateway) {
				var issue func(k int)
				issue = func(k int) {
					if k >= perWriter {
						return
					}
					payload := []byte(fmt.Sprintf("k=%d-%d", i, k))
					gw.Invoke("Set", payload, func(client.Result) {
						ctx.SetTimer(5*ms, func() { issue(k + 1) })
					})
				}
				ctx.SetTimer(time.Duration(i)*ms, func() { issue(0) })
			},
		})
	}
	svc := testService(4, 3, 500*ms)
	svc.AssignBatch = 8
	svc.AssignBatchWindow = 2 * ms
	svc.FastReads = true
	d, err := Deploy(rt, svc, clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(30 * time.Second)

	want := uint64(writers * perWriter)
	var ref []byte
	for _, id := range d.PrimaryGroup {
		gw := d.Replicas[id]
		if gw.Applied() != want {
			t.Fatalf("%s applied %d, want %d", id, gw.Applied(), want)
		}
		snap, err := gw.App().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = snap
		} else if string(ref) != string(snap) {
			t.Fatalf("%s state diverged from the sequencer's", id)
		}
	}
	for _, id := range d.Secondaries {
		gw := d.Replicas[id]
		if gw.CSN() != want {
			t.Fatalf("%s CSN %d, want %d", id, gw.CSN(), want)
		}
		snap, _ := gw.App().Snapshot()
		if string(snap) != string(ref) {
			t.Fatalf("%s state diverged after lazy propagation", id)
		}
	}
	flushes, reqs := d.Replicas[d.Sequencer].AssignBatchStats()
	if flushes == 0 || reqs != want {
		t.Fatalf("sequencer flushed %d windows covering %d requests, want all %d requests batched", flushes, reqs, want)
	}
	if flushes >= reqs {
		t.Fatalf("no amortization: %d flushes for %d requests", flushes, reqs)
	}
}

// TestFastReadPathServesFrontierReads drives a write-then-many-reads
// workload with FastReads on and no service-delay model: reads that arrive
// with their snapshot already committed must be served through the inline
// path, with correct results.
func TestFastReadPathServesFrontierReads(t *testing.T) {
	s, rt := newSim(7)
	const reads = 10
	var results []client.Result
	clients := []ClientConfig{{
		ID:      "c00",
		Spec:    qos.Spec{Staleness: 0, Deadline: 500 * ms, MinProb: 0.5},
		Methods: kvMethods(),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(10*ms, func() {
				gw.Invoke("Set", []byte("a=1"), func(client.Result) {
					var issue func(k int)
					issue = func(k int) {
						if k >= reads {
							return
						}
						gw.Invoke("Get", []byte("a"), func(r client.Result) {
							results = append(results, r)
							ctx.SetTimer(20*ms, func() { issue(k + 1) })
						})
					}
					issue(0)
				})
			})
		},
	}}
	svc := testService(3, 2, time.Second)
	svc.FastReads = true
	d, err := Deploy(rt, svc, clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	s.RunFor(10 * time.Second)

	if len(results) != reads {
		t.Fatalf("completed %d reads, want %d", len(results), reads)
	}
	for i, r := range results {
		if r.Err != "" || string(r.Payload) != "1" {
			t.Fatalf("read %d = %+v", i, r)
		}
	}
	var fast uint64
	for _, id := range d.ServingPrimaries {
		fast += d.Replicas[id].FastServed()
	}
	if fast == 0 {
		t.Fatal("no read went through the frontier fast path")
	}
}
