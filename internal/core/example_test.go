package core_test

import (
	"fmt"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
)

// ExampleDeploy builds a replicated key-value service on the deterministic
// simulator, attaches one client with a QoS specification, and performs a
// write followed by a fresh read.
func ExampleDeploy() {
	sched := sim.NewScheduler(1)
	rt := sim.NewRuntime(sched)

	svc := core.ServiceConfig{
		Primaries:    3, // sequencer + 2 serving primaries
		Secondaries:  2,
		LazyInterval: 500 * time.Millisecond,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}
	clientCfg := core.ClientConfig{
		ID: "alice",
		// At most 1 version stale, within 250ms, with probability ≥ 0.8.
		Spec:    qos.Spec{Staleness: 1, Deadline: 250 * time.Millisecond, MinProb: 0.8},
		Methods: qos.NewMethods("Get", "Version"),
		Driver: func(ctx node.Context, gw *client.Gateway) {
			ctx.SetTimer(10*time.Millisecond, func() {
				gw.Invoke("Set", []byte("greeting=hello"), func(client.Result) {
					gw.Invoke("Get", []byte("greeting"), func(r client.Result) {
						fmt.Printf("read %q (timing failure: %v)\n", r.Payload, r.TimingFailure)
					})
				})
			})
		},
	}

	d, err := core.Deploy(rt, svc, []core.ClientConfig{clientCfg})
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	rt.Start()
	sched.RunFor(2 * time.Second) // virtual time

	fmt.Printf("sequencer: %s, serving primaries: %d, secondaries: %d\n",
		d.Sequencer, len(d.ServingPrimaries), len(d.Secondaries))
	// Output:
	// read "hello" (timing failure: false)
	// sequencer: p00, serving primaries: 2, secondaries: 2
}
