// Package core is the framework's top-level API: it deploys a replicated
// service — sequencer, primary group, secondary group, lazy publisher, and
// client gateways with QoS specifications — onto any runtime (the
// deterministic simulator or the live goroutine runtime), mirroring the
// replica organization of Figure 1.
//
// It also hosts the paper's Section 7 extensions: admission control and the
// priority-to-probability mapping.
package core

import (
	"errors"
	"fmt"
	"time"

	"aqua/internal/app"
	"aqua/internal/client"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/qos"
	"aqua/internal/replica"
	"aqua/internal/selection"
	"aqua/internal/wal"
)

// Runtime is the minimal registration surface both runtimes expose.
type Runtime interface {
	Register(id node.ID, n node.Node)
}

// ServiceConfig describes a replicated service deployment.
type ServiceConfig struct {
	// NodePrefix prefixes every generated replica ID ("sh1-" turns p00
	// into sh1-p00), letting several deployments share one runtime without
	// colliding node IDs. The empty prefix keeps the historical IDs —
	// and, because per-node rand streams derive from node IDs, keeps every
	// existing single-deployment run byte-identical.
	NodePrefix string
	// Primaries is the primary group size, including the sequencer.
	// Must be at least 2 (the sequencer never serves requests).
	Primaries int
	// Secondaries is the secondary group size.
	Secondaries int
	// LazyInterval is T_L.
	LazyInterval time.Duration
	// ServiceDelay simulates background load per request (nil for none).
	ServiceDelay replica.DelayModel
	// Group tunes the communication substrate for replicas.
	Group group.Config
	// NewApp builds one application instance per replica.
	NewApp func() app.Application
	// ChaseInterval and TakeoverTimeout tune failover handling (0 =
	// defaults).
	ChaseInterval   time.Duration
	TakeoverTimeout time.Duration
	// AssignBatch/AssignBatchWindow enable batched GSN ordering at the
	// sequencer (one GSNAssignBatch broadcast per window). <= 1 keeps the
	// per-request broadcast path. See replica.Config.
	AssignBatch       int
	AssignBatchWindow time.Duration
	// SeqCostBase/SeqCostPerReq model the sequencer ordering pipeline's
	// per-broadcast occupancy (both zero disables). See replica.Config.
	SeqCostBase   time.Duration
	SeqCostPerReq time.Duration
	// FastReads enables the replicas' frontier read fast path.
	FastReads bool
	// Durable equips every replica with a write-ahead log plus periodic
	// snapshots (package wal). A replica restarted with recovery (see
	// Deployment.NewRecoveredReplicaGateway) replays its durable state at
	// Init instead of re-fetching history through the sync protocol.
	Durable bool
	// SnapshotEvery is the WAL compaction threshold in log records
	// (0 = replica default).
	SnapshotEvery int
	// ReplicatedAssign enables majority-floor replicated GSN ordering in
	// the primary group: commits release only once a majority holds their
	// assignments, so sequencer death leaves no assignment holes. See
	// replica.Config.ReplicatedAssign.
	ReplicatedAssign bool
	// NewMedia overrides the per-replica durable media (file-backed for a
	// live deployment). Nil uses an in-memory registry owned by the
	// Deployment, which survives simulated restarts. Consulted only when
	// Durable is set.
	NewMedia func(id node.ID) (wal.Media, error)
	// OnRecover, if set, observes every durable recovery with the replayed
	// commit frontier. Feeds the recovery-frontier chaos oracle.
	OnRecover func(replica node.ID, csn uint64)
	// ExtraClients names client nodes the replicas must treat as clients
	// (perf broadcasts, sequencer announcements) even though Deploy does
	// not instantiate them — the hosts of shard routers and other
	// self-registered request sources. Appended to the deployed clients.
	ExtraClients []node.ID
	// OnApply, if set, observes every (replica, gsn, request) application —
	// the ordering-invariant hook used by the protocol fuzzer.
	OnApply func(replica node.ID, gsn uint64, id consistency.RequestID)
	// OnServeRead, if set, observes every served read: the read's order GSN,
	// the replica's CSN at serve time, the client's staleness bound, and
	// whether the read was deferred. Feeds the chaos invariant oracles.
	OnServeRead func(replica node.ID, id consistency.RequestID, gsn, csn uint64, staleness int, deferred bool)
	// OnRestore, if set, observes every state snapshot a replica restores
	// (lazy update or recovery), with the snapshot's CSN.
	OnRestore func(replica node.ID, csn uint64)
	// Obs, when non-nil, receives metrics from every deployed gateway
	// (replicas and — unless overridden per client — clients). Nil keeps the
	// whole deployment's request paths allocation-free.
	Obs *obs.Registry
	// Tracer, when non-nil, receives per-request trace spans from every
	// deployed gateway.
	Tracer *obs.Tracer
}

// ClientConfig describes one client gateway and its workload driver.
type ClientConfig struct {
	ID   node.ID
	Spec qos.Spec
	// Methods names the service's read-only methods.
	Methods *qos.Methods
	// Selector defaults to the paper's Algorithm 1.
	Selector selection.Selector
	// WindowSize is the repository sliding-window length l (default 20).
	WindowSize int
	// BinWidth coarsens model pmfs (0 = default 2ms, negative = none).
	BinWidth time.Duration
	// Group tunes the client's substrate (heartbeats are unnecessary for
	// clients; the zero value disables them but keeps retransmission on
	// via DefaultsForClient).
	Group *group.Config
	// OnBreach is the QoS-violation callback.
	OnBreach func(float64)
	// CountedEstimator selects the n_L-anchored staleness estimator.
	CountedEstimator bool
	// OnSelect observes every read's predicted success probability and
	// selection size (model-calibration experiments).
	OnSelect func(predicted float64, selected int)
	// RetryInterval/MaxRetries tune the client's retransmission machinery
	// (0 = defaults). Experiments without failure injection set a very
	// large interval: the paper's clients never retransmit, and retries
	// would mask the deferred-read latency tail the evaluation measures.
	RetryInterval time.Duration
	MaxRetries    int
	// Driver, if set, runs once at Init in the client's node context —
	// the workload generator's entry point.
	Driver func(ctx node.Context, gw *client.Gateway)
	// Obs and Tracer override the ServiceConfig-level observability sinks
	// for this client (nil inherits the service's).
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// Deployment is a wired service: every gateway, addressed by node ID.
type Deployment struct {
	// Sequencer is the initial sequencer (leader of the primary group).
	Sequencer node.ID
	// PrimaryGroup lists all primary members, sequencer included.
	PrimaryGroup []node.ID
	// ServingPrimaries lists primaries that answer requests (no sequencer).
	ServingPrimaries []node.ID
	// Secondaries lists the secondary group.
	Secondaries []node.ID
	// ClientIDs lists client gateways in deployment order.
	ClientIDs []node.ID

	Replicas map[node.ID]*replica.Gateway
	Clients  map[node.ID]*client.Gateway

	// Media is the per-replica durable state when Durable is on without a
	// NewMedia override. It outlives gateway incarnations — that is what
	// makes simulated recovery possible — and adversarial tests reach in
	// to plant corruption between incarnations.
	Media *wal.Registry

	// Info is what each client was told about the service.
	Info client.ServiceInfo

	svc ServiceConfig
}

// roleOf reports whether id is a primary of this deployment, or an error if
// it is not a replica at all.
func (d *Deployment) roleOf(id node.ID) (bool, error) {
	for _, p := range d.PrimaryGroup {
		if p == id {
			return true, nil
		}
	}
	for _, s := range d.Secondaries {
		if s == id {
			return false, nil
		}
	}
	return false, fmt.Errorf("core: %q is not a replica of this deployment", id)
}

// durableStore builds id's WAL store over its media (nil when durability is
// off). Each gateway incarnation gets a fresh Store; the media underneath
// persists or not depending on the restart flavor.
func (d *Deployment) durableStore(id node.ID) (*wal.Store, error) {
	if !d.svc.Durable {
		return nil, nil
	}
	if d.svc.NewMedia != nil {
		m, err := d.svc.NewMedia(id)
		if err != nil {
			return nil, fmt.Errorf("core: media for %s: %w", id, err)
		}
		return wal.NewStore(m), nil
	}
	return wal.NewStore(d.Media.Get(id)), nil
}

// buildReplicaConfig renders the deployment's replica.Config for one node.
func (d *Deployment) buildReplicaConfig(id node.ID, primary bool) (replica.Config, error) {
	durable, err := d.durableStore(id)
	if err != nil {
		return replica.Config{}, err
	}
	return replica.Config{
		Primary:           primary,
		OnApply:           bindApply(d.svc.OnApply, id),
		OnServeRead:       bindServeRead(d.svc.OnServeRead, id),
		OnRestore:         bindRestore(d.svc.OnRestore, id),
		OnRecover:         bindRecover(d.svc.OnRecover, id),
		PrimaryGroup:      d.PrimaryGroup,
		Secondaries:       d.Secondaries,
		Clients:           d.ClientIDs,
		Group:             d.svc.Group,
		LazyInterval:      d.svc.LazyInterval,
		ServiceDelay:      d.svc.ServiceDelay,
		ChaseInterval:     d.svc.ChaseInterval,
		TakeoverTimeout:   d.svc.TakeoverTimeout,
		AssignBatch:       d.svc.AssignBatch,
		AssignBatchWindow: d.svc.AssignBatchWindow,
		SeqCostBase:       d.svc.SeqCostBase,
		SeqCostPerReq:     d.svc.SeqCostPerReq,
		FastReads:         d.svc.FastReads,
		Durable:           durable,
		SnapshotEvery:     d.svc.SnapshotEvery,
		ReplicatedAssign:  d.svc.ReplicatedAssign,
		App:               d.svc.NewApp(),
		Obs:               d.svc.Obs,
		Tracer:            d.svc.Tracer,
	}, nil
}

// NewReplicaGateway builds a fresh gateway for a deployed replica ID — the
// replacement instance for a process restart with total state loss (pass it
// to the runtime's Restart). Any durable media is wiped — this restart
// flavor models losing the disk with the process — and the new instance
// recovers through the replica recovery protocol (startup SyncRequest,
// commit-gap chase).
func (d *Deployment) NewReplicaGateway(id node.ID) (*replica.Gateway, error) {
	if d.Media != nil {
		d.Media.Wipe(id)
	}
	return d.newReplica(id)
}

// NewRecoveredReplicaGateway builds a replacement gateway that keeps id's
// durable media: at Init it replays snapshot + WAL suffix back to the
// pre-crash commit frontier instead of re-fetching history from peers.
// Requires ServiceConfig.Durable.
func (d *Deployment) NewRecoveredReplicaGateway(id node.ID) (*replica.Gateway, error) {
	if !d.svc.Durable {
		return nil, errors.New("core: NewRecoveredReplicaGateway requires ServiceConfig.Durable")
	}
	return d.newReplica(id)
}

func (d *Deployment) newReplica(id node.ID) (*replica.Gateway, error) {
	primary, err := d.roleOf(id)
	if err != nil {
		return nil, err
	}
	cfg, err := d.buildReplicaConfig(id, primary)
	if err != nil {
		return nil, err
	}
	gw := replica.New(cfg)
	d.Replicas[id] = gw
	return gw, nil
}

// bindApply/bindServeRead/bindRestore curry the deployment-level observation
// hooks with the replica's identity; a nil hook stays nil so the gateways'
// fast paths keep their single nil check.
func bindApply(fn func(node.ID, uint64, consistency.RequestID), id node.ID) func(uint64, consistency.RequestID) {
	if fn == nil {
		return nil
	}
	return func(gsn uint64, rid consistency.RequestID) { fn(id, gsn, rid) }
}

func bindServeRead(fn func(node.ID, consistency.RequestID, uint64, uint64, int, bool), id node.ID) func(consistency.RequestID, uint64, uint64, int, bool) {
	if fn == nil {
		return nil
	}
	return func(rid consistency.RequestID, gsn, csn uint64, staleness int, deferred bool) {
		fn(id, rid, gsn, csn, staleness, deferred)
	}
}

func bindRestore(fn func(node.ID, uint64), id node.ID) func(uint64) {
	if fn == nil {
		return nil
	}
	return func(csn uint64) { fn(id, csn) }
}

func bindRecover(fn func(node.ID, uint64), id node.ID) func(uint64) {
	if fn == nil {
		return nil
	}
	return func(csn uint64) { fn(id, csn) }
}

// DefaultsForClient returns substrate settings for client gateways:
// reliable FIFO links with retransmission, no heartbeats (clients join no
// groups).
func DefaultsForClient() group.Config {
	cfg := group.DefaultConfig()
	cfg.HeartbeatInterval = 0
	cfg.FailTimeout = 0
	return cfg
}

// Deploy registers a full service and its clients with rt. Node IDs are
// generated: the sequencer and primaries are p00, p01, ...; secondaries
// s00, s01, ...; p00 is the initial sequencer.
func Deploy(rt Runtime, svc ServiceConfig, clients []ClientConfig) (*Deployment, error) {
	if svc.Primaries < 2 {
		return nil, errors.New("core: need at least 2 primaries (sequencer + 1 serving member)")
	}
	if svc.NewApp == nil {
		return nil, errors.New("core: ServiceConfig.NewApp is required")
	}
	if svc.LazyInterval <= 0 {
		return nil, errors.New("core: LazyInterval must be positive")
	}
	for _, c := range clients {
		if err := c.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("core: client %s: %w", c.ID, err)
		}
		if c.ID == "" {
			return nil, errors.New("core: client ID required")
		}
	}

	d := &Deployment{
		Replicas: make(map[node.ID]*replica.Gateway),
		Clients:  make(map[node.ID]*client.Gateway),
		svc:      svc,
	}
	if svc.Durable && svc.NewMedia == nil {
		d.Media = wal.NewRegistry()
	}
	for i := 0; i < svc.Primaries; i++ {
		d.PrimaryGroup = append(d.PrimaryGroup, node.ID(fmt.Sprintf("%sp%02d", svc.NodePrefix, i)))
	}
	d.Sequencer = d.PrimaryGroup[0]
	d.ServingPrimaries = d.PrimaryGroup[1:]
	for i := 0; i < svc.Secondaries; i++ {
		d.Secondaries = append(d.Secondaries, node.ID(fmt.Sprintf("%ss%02d", svc.NodePrefix, i)))
	}
	for _, c := range clients {
		d.ClientIDs = append(d.ClientIDs, c.ID)
	}
	d.ClientIDs = append(d.ClientIDs, svc.ExtraClients...)

	d.Info = client.ServiceInfo{
		Primaries:    d.PrimaryGroup,
		Secondaries:  d.Secondaries,
		Sequencer:    d.Sequencer,
		LazyInterval: svc.LazyInterval,
	}

	for _, id := range d.PrimaryGroup {
		gw, err := d.newReplica(id)
		if err != nil {
			return nil, err
		}
		rt.Register(id, gw)
	}
	for _, id := range d.Secondaries {
		gw, err := d.newReplica(id)
		if err != nil {
			return nil, err
		}
		rt.Register(id, gw)
	}

	for _, c := range clients {
		cc := ClientGatewayConfig(svc, c)
		cc.Service = d.Info
		gw := client.New(cc)
		d.Clients[c.ID] = gw
		var n node.Node = gw
		if c.Driver != nil {
			n = &drivenClient{gw: gw, driver: c.Driver}
		}
		rt.Register(c.ID, n)
	}
	return d, nil
}

// ClientGatewayConfig renders a ClientConfig into the client.Config Deploy
// would build for it — substrate defaults, registry/tracer fallback to the
// service's — with Service left zero for the caller to fill. Shard routers
// use it to instantiate per-shard gateways that behave exactly like
// Deploy-built clients.
func ClientGatewayConfig(svc ServiceConfig, c ClientConfig) client.Config {
	gcfg := DefaultsForClient()
	if c.Group != nil {
		gcfg = *c.Group
	}
	reg, tracer := c.Obs, c.Tracer
	if reg == nil {
		reg = svc.Obs
	}
	if tracer == nil {
		tracer = svc.Tracer
	}
	return client.Config{
		Spec:             c.Spec,
		Methods:          c.Methods,
		WindowSize:       c.WindowSize,
		BinWidth:         c.BinWidth,
		Selector:         c.Selector,
		Group:            gcfg,
		OnBreach:         c.OnBreach,
		CountedEstimator: c.CountedEstimator,
		OnSelect:         c.OnSelect,
		RetryInterval:    c.RetryInterval,
		MaxRetries:       c.MaxRetries,
		Obs:              reg,
		Tracer:           tracer,
	}
}

// drivenClient wraps a client gateway with a workload driver that runs in
// the node's own context at Init.
type drivenClient struct {
	gw     *client.Gateway
	driver func(ctx node.Context, gw *client.Gateway)
}

func (d *drivenClient) Init(ctx node.Context) {
	d.gw.Init(ctx)
	d.driver(ctx, d.gw)
}

func (d *drivenClient) Recv(from node.ID, m node.Message) {
	d.gw.Recv(from, m)
}
