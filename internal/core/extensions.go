package core

import (
	"sort"
	"time"

	"aqua/internal/client"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
)

// This file implements the extensions sketched in the paper's conclusions
// (Section 7): "with some modifications, we can also use our framework to
// perform admission control" and "the clients can replace the probability
// of timely response with a higher-level specification, such as priority
// ... the middleware can then internally map these higher level inputs to
// an appropriate probability value".

// PriorityMap translates client priority levels into minimum probabilities
// of timely response. Index 0 is the lowest priority.
type PriorityMap struct {
	levels []float64
}

// NewPriorityMap builds a map from ascending probability levels. It panics
// on an empty or non-monotone level list — a static configuration bug.
func NewPriorityMap(levels ...float64) PriorityMap {
	if len(levels) == 0 {
		panic("core: priority map needs at least one level")
	}
	if !sort.Float64sAreSorted(levels) {
		panic("core: priority levels must ascend")
	}
	for _, l := range levels {
		if l < 0 || l > 1 {
			panic("core: priority levels must be probabilities")
		}
	}
	return PriorityMap{levels: append([]float64(nil), levels...)}
}

// DefaultPriorityMap offers four levels: bronze 0.5, silver 0.7, gold 0.9,
// platinum 0.99.
func DefaultPriorityMap() PriorityMap {
	return NewPriorityMap(0.5, 0.7, 0.9, 0.99)
}

// Levels returns the number of priority levels.
func (p PriorityMap) Levels() int { return len(p.levels) }

// MinProb maps a priority (0 = lowest) to its probability, clamping
// out-of-range priorities to the nearest level.
func (p PriorityMap) MinProb(priority int) float64 {
	if priority < 0 {
		priority = 0
	}
	if priority >= len(p.levels) {
		priority = len(p.levels) - 1
	}
	return p.levels[priority]
}

// SpecFor builds a full QoS specification from a priority level plus the
// client's consistency and deadline requirements.
func (p PriorityMap) SpecFor(priority, staleness int, deadline time.Duration) qos.Spec {
	return qos.Spec{
		Staleness: staleness,
		Deadline:  deadline,
		MinProb:   p.MinProb(priority),
	}
}

// AdmissionDecision reports whether a prospective client's QoS is currently
// satisfiable, and with what margin.
type AdmissionDecision struct {
	// Admit is true when the selection model predicts the spec can be met
	// by a strict subset of the replicas (so one replica of headroom
	// remains even under the algorithm's crash-exclusion rule).
	Admit bool
	// PredictedPK is P_K(d) of the set Algorithm 1 would choose, with its
	// best member excluded (the value the stopping rule tests).
	PredictedPK float64
	// ReplicasNeeded is the number of serving replicas that set uses.
	ReplicasNeeded int
}

// AdmissionController evaluates prospective client specs against observed
// replica performance. The paper's deployment admits all clients and
// reports violations after the fact; this controller performs the a-priori
// check the conclusions propose, reusing the same probabilistic model.
type AdmissionController struct {
	Model selection.Model
}

// Evaluate decides whether a client with spec could be admitted now, given
// a repository of observed performance (typically a snapshot from an
// existing client gateway or a monitoring probe).
func (a AdmissionController) Evaluate(
	repo *repository.Repository,
	info client.ServiceInfo,
	spec qos.Spec,
	now time.Time,
) AdmissionDecision {
	serving := make([]node.ID, 0, len(info.Primaries))
	for _, id := range info.Primaries {
		if id != info.Sequencer {
			serving = append(serving, id)
		}
	}
	in := a.Model.Evaluate(repo, serving, info.Secondaries, info.Sequencer, spec, now)
	sel := selection.Algorithm1{}.Select(in)

	// Count serving replicas in the selection and rebuild the candidate
	// subset to evaluate the stopping-rule probability.
	byID := make(map[node.ID]selection.Candidate, len(in.Candidates))
	for _, c := range in.Candidates {
		byID[c.ID] = c
	}
	var chosen []selection.Candidate
	for _, id := range sel {
		if c, ok := byID[id]; ok {
			chosen = append(chosen, c)
		}
	}
	d := AdmissionDecision{ReplicasNeeded: len(chosen)}
	if len(chosen) == 0 {
		return d
	}
	best := 0
	for i, c := range chosen {
		if c.ImmedCDF > chosen[best].ImmedCDF {
			best = i
		}
	}
	surviving := append(append([]selection.Candidate{}, chosen[:best]...), chosen[best+1:]...)
	d.PredictedPK = selection.PK(surviving, in.StaleFactor)
	d.Admit = len(chosen) < len(in.Candidates) && d.PredictedPK >= spec.MinProb
	return d
}
