// Package causal implements the framework's causal ordering handler — the
// third of the "well-known ordering guarantees" Section 2 names (sequential,
// causal, FIFO). Where the sequential handler totally orders updates through
// the sequencer, the causal handler guarantees only that causally related
// updates are applied in dependency order at every replica; concurrent
// updates may interleave differently.
//
// The design is the classic dependency-vector scheme: each client gateway
// maintains a vector clock over clients recording the writes it has
// observed (its own, plus those reflected in values it has read). An update
// carries the client's dependency vector; a replica buffers the update
// until its applied-vector dominates those dependencies, then applies it.
// Reads return the replica's applied vector, which the reading client merges
// into its own — so a subsequent write by the reader causally follows
// everything it has seen.
package causal

import (
	"math/rand"
	"time"

	"aqua/internal/app"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// Vector is a vector clock over client IDs: the number of writes observed
// per client.
type Vector map[node.ID]uint64

// Copy returns an independent copy.
func (v Vector) Copy() Vector {
	out := make(Vector, len(v))
	for k, x := range v {
		out[k] = x
	}
	return out
}

// Merge folds other into v, taking per-entry maxima.
func (v Vector) Merge(other Vector) {
	for k, x := range other {
		if x > v[k] {
			v[k] = x
		}
	}
}

// Dominates reports whether v ≥ other entry-wise.
func (v Vector) Dominates(other Vector) bool {
	for k, x := range other {
		if v[k] < x {
			return false
		}
	}
	return true
}

// Wire messages of the causal handler.
type (
	// Update is a client write with its causal dependencies.
	Update struct {
		ID      consistency.RequestID
		Method  string
		Payload []byte
		// Writer is the issuing client; Seq its per-client write number.
		Writer node.ID
		Seq    uint64
		// Deps is the writer's observed vector before this write.
		Deps Vector
	}
	// UpdateAck confirms an update applied at one replica, carrying the
	// replica's applied vector.
	UpdateAck struct {
		ID      consistency.RequestID
		Payload []byte
		Err     string
		Applied Vector
		Replica node.ID
	}
	// ReadReq is a client read.
	ReadReq struct {
		ID      consistency.RequestID
		Method  string
		Payload []byte
	}
	// ReadReply returns the value plus the replica's applied vector.
	ReadReply struct {
		ID      consistency.RequestID
		Payload []byte
		Err     string
		Applied Vector
		Replica node.ID
	}
)

// ReplicaConfig describes one causal replica.
type ReplicaConfig struct {
	Replicas []node.ID
	Group    group.Config
	// ServiceDelay simulates background load (nil for none).
	ServiceDelay func(r *rand.Rand) time.Duration
	App          app.Application
}

// Replica is a causal-ordering server gateway.
type Replica struct {
	cfg   ReplicaConfig
	ctx   node.Context
	stack *group.Stack

	applied Vector
	// waiting holds updates whose dependencies are not yet satisfied.
	waiting []Update
	// seen deduplicates updates by (writer, seq).
	seen map[node.ID]uint64 // highest applied seq per writer
}

var _ node.Node = (*Replica)(nil)

// NewReplica creates a causal replica gateway.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.App == nil {
		panic("causal: ReplicaConfig.App is required")
	}
	return &Replica{cfg: cfg, applied: make(Vector), seen: make(map[node.ID]uint64)}
}

// Applied returns a copy of the replica's applied vector.
func (r *Replica) Applied() Vector { return r.applied.Copy() }

// App exposes the application.
func (r *Replica) App() app.Application { return r.cfg.App }

// Init implements node.Node.
func (r *Replica) Init(ctx node.Context) {
	r.ctx = ctx
	r.stack = group.NewStack(ctx, r.cfg.Group, r.deliver)
}

// Recv implements node.Node.
func (r *Replica) Recv(from node.ID, m node.Message) {
	if r.stack.Handle(from, m) {
		return
	}
	r.ctx.Logf("causal: unexpected raw message %T from %s", m, from)
}

func (r *Replica) deliver(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case Update:
		r.onUpdate(from, msg)
	case ReadReq:
		r.onRead(from, msg)
	default:
		r.ctx.Logf("causal: unhandled payload %T from %s", m, from)
	}
}

func (r *Replica) onUpdate(from node.ID, u Update) {
	if r.seen[u.Writer] >= u.Seq {
		return // duplicate
	}
	r.waiting = append(r.waiting, u)
	r.drain(from)
}

// drain applies every waiting update whose dependencies are satisfied,
// repeating until a fixed point (one application may unblock others).
// Updates from the same writer additionally apply in seq order, which the
// dependency vectors enforce (write n+1 depends on write n).
func (r *Replica) drain(ackTo node.ID) {
	for {
		progressed := false
		var still []Update
		for _, u := range r.waiting {
			if r.canApply(u) {
				r.apply(ackTo, u)
				progressed = true
			} else if r.seen[u.Writer] < u.Seq {
				still = append(still, u)
			}
		}
		r.waiting = still
		if !progressed {
			return
		}
	}
}

func (r *Replica) canApply(u Update) bool {
	if r.seen[u.Writer] != u.Seq-1 {
		return false // a prior write by the same client is missing
	}
	return r.applied.Dominates(u.Deps)
}

func (r *Replica) apply(ackTo node.ID, u Update) {
	payload, err := r.cfg.App.ApplyUpdate(u.Method, u.Payload)
	r.seen[u.Writer] = u.Seq
	if u.Seq > r.applied[u.Writer] {
		r.applied[u.Writer] = u.Seq
	}
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	r.stack.Send(u.Writer, UpdateAck{
		ID:      u.ID,
		Payload: payload,
		Err:     errStr,
		Applied: r.applied.Copy(),
		Replica: r.ctx.ID(),
	})
	_ = ackTo
}

func (r *Replica) onRead(from node.ID, req ReadReq) {
	serve := func() {
		payload, err := r.cfg.App.Read(req.Method, req.Payload)
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		r.stack.Send(from, ReadReply{
			ID:      req.ID,
			Payload: payload,
			Err:     errStr,
			Applied: r.applied.Copy(),
			Replica: r.ctx.ID(),
		})
	}
	if r.cfg.ServiceDelay != nil {
		r.ctx.Post(r.cfg.ServiceDelay(r.ctx.Rand()), serve)
		return
	}
	serve()
}

// ClientConfig describes a causal client gateway.
type ClientConfig struct {
	Replicas []node.ID
	Group    group.Config
}

// Client is the causal handler's client gateway. Writes go to every
// replica; reads round-robin and merge the returned applied vector so
// later writes depend on everything read.
type Client struct {
	cfg ClientConfig
	ctx node.Context

	stack    *group.Stack
	observed Vector
	writeSeq uint64
	nextReq  uint64
	rr       int
	pending  map[consistency.RequestID]func(payload []byte, errStr string, applied Vector, replica node.ID)
}

var _ node.Node = (*Client)(nil)

// NewClient creates a causal client gateway.
func NewClient(cfg ClientConfig) *Client {
	return &Client{
		cfg:      cfg,
		observed: make(Vector),
		pending:  make(map[consistency.RequestID]func([]byte, string, Vector, node.ID)),
	}
}

// Observed returns a copy of the client's observed vector.
func (c *Client) Observed() Vector { return c.observed.Copy() }

// Init implements node.Node.
func (c *Client) Init(ctx node.Context) {
	c.ctx = ctx
	c.stack = group.NewStack(ctx, c.cfg.Group, c.deliver)
}

// Recv implements node.Node.
func (c *Client) Recv(from node.ID, m node.Message) {
	if c.stack.Handle(from, m) {
		return
	}
	c.ctx.Logf("causal client: unexpected raw message %T from %s", m, from)
}

func (c *Client) deliver(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case UpdateAck:
		if cb, ok := c.pending[msg.ID]; ok {
			delete(c.pending, msg.ID)
			c.observed.Merge(msg.Applied)
			if cb != nil {
				cb(msg.Payload, msg.Err, msg.Applied, msg.Replica)
			}
		}
	case ReadReply:
		if cb, ok := c.pending[msg.ID]; ok {
			delete(c.pending, msg.ID)
			// Reading a value makes everything it reflects a causal
			// dependency of this client's future writes.
			c.observed.Merge(msg.Applied)
			if cb != nil {
				cb(msg.Payload, msg.Err, msg.Applied, msg.Replica)
			}
		}
	}
}

// Write issues a causally ordered update to every replica. cb (optional)
// fires on the first acknowledgment.
func (c *Client) Write(method string, payload []byte, cb func(payload []byte, errStr string)) {
	deps := c.observed.Copy()
	c.writeSeq++
	c.nextReq++
	// The client's own previous write is always a dependency; encode it by
	// advancing observed immediately.
	c.observed[c.ctx.ID()] = c.writeSeq
	id := consistency.RequestID{Client: c.ctx.ID(), Seq: c.nextReq}
	var once bool
	c.pending[id] = func(p []byte, e string, _ Vector, _ node.ID) {
		if once {
			return
		}
		once = true
		if cb != nil {
			cb(p, e)
		}
	}
	u := Update{
		ID:      id,
		Method:  method,
		Payload: payload,
		Writer:  c.ctx.ID(),
		Seq:     c.writeSeq,
		Deps:    deps,
	}
	for _, r := range c.cfg.Replicas {
		c.stack.Send(r, u)
	}
}

// Read issues a read to one replica (round-robin); cb fires on the reply.
func (c *Client) Read(method string, payload []byte, cb func(payload []byte, errStr string, replica node.ID)) {
	c.nextReq++
	id := consistency.RequestID{Client: c.ctx.ID(), Seq: c.nextReq}
	c.pending[id] = func(p []byte, e string, _ Vector, rep node.ID) {
		if cb != nil {
			cb(p, e, rep)
		}
	}
	target := c.cfg.Replicas[c.rr%len(c.cfg.Replicas)]
	c.rr++
	c.stack.Send(target, ReadReq{ID: id, Method: method, Payload: payload})
}
