package causal

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"aqua/internal/apps"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/sim"
)

const ms = time.Millisecond

func TestVectorOps(t *testing.T) {
	a := Vector{"x": 2, "y": 1}
	b := Vector{"x": 1, "z": 3}
	c := a.Copy()
	c.Merge(b)
	if c["x"] != 2 || c["y"] != 1 || c["z"] != 3 {
		t.Fatalf("merge = %v", c)
	}
	if a["z"] != 0 {
		t.Fatal("merge mutated source copy origin")
	}
	if !c.Dominates(a) || !c.Dominates(b) {
		t.Fatal("merged vector must dominate both")
	}
	if a.Dominates(b) {
		t.Fatal("incomparable vectors reported dominance")
	}
	if !a.Dominates(Vector{}) {
		t.Fatal("everything dominates the empty vector")
	}
}

// Property: Merge is an upper bound and is commutative.
func TestVectorMergeProperty(t *testing.T) {
	prop := func(xs, ys []uint8) bool {
		a, b := make(Vector), make(Vector)
		for i, x := range xs {
			a[node.ID(rune('a'+i%8))] = uint64(x)
		}
		for i, y := range ys {
			b[node.ID(rune('a'+i%8))] = uint64(y)
		}
		m1 := a.Copy()
		m1.Merge(b)
		m2 := b.Copy()
		m2.Merge(a)
		if !m1.Dominates(a) || !m1.Dominates(b) {
			return false
		}
		return m1.Dominates(m2) && m2.Dominates(m1) // equality
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type bed struct {
	s        *sim.Scheduler
	rt       *sim.Runtime
	replicas map[node.ID]*Replica
	clients  map[node.ID]*Client
}

func newBed(seed int64, nReplicas, nClients int, jitter time.Duration) *bed {
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 0, Max: jitter}))
	b := &bed{s: s, rt: rt, replicas: make(map[node.ID]*Replica), clients: make(map[node.ID]*Client)}
	var rids []node.ID
	for i := 0; i < nReplicas; i++ {
		rids = append(rids, node.ID(fmt.Sprintf("r%d", i)))
	}
	gcfg := group.DefaultConfig()
	gcfg.HeartbeatInterval = 0
	for _, id := range rids {
		r := NewReplica(ReplicaConfig{Replicas: rids, Group: gcfg, App: apps.NewKVStore()})
		b.replicas[id] = r
		rt.Register(id, r)
	}
	for i := 0; i < nClients; i++ {
		id := node.ID(fmt.Sprintf("c%d", i))
		c := NewClient(ClientConfig{Replicas: rids, Group: gcfg})
		b.clients[id] = c
		rt.Register(id, c)
	}
	return b
}

func TestCausalWriteAppliesEverywhere(t *testing.T) {
	b := newBed(1, 3, 1, ms)
	b.rt.Start()
	var ackPayload string
	b.s.After(0, func() {
		b.clients["c0"].Write("Set", []byte("a=1"), func(p []byte, e string) {
			ackPayload = string(p)
		})
	})
	b.s.RunFor(time.Second)
	if ackPayload != "v1" {
		t.Fatalf("ack payload = %q", ackPayload)
	}
	for id, r := range b.replicas {
		if got := r.Applied()["c0"]; got != 1 {
			t.Fatalf("%s applied vector = %v", id, r.Applied())
		}
	}
}

func TestCausalSameWriterOrderHolds(t *testing.T) {
	b := newBed(2, 3, 1, 25*ms) // heavy reordering
	b.rt.Start()
	const n = 20
	b.s.After(0, func() {
		for i := 0; i < n; i++ {
			b.clients["c0"].Write("Set", []byte(fmt.Sprintf("k=%d", i)), nil)
		}
	})
	b.s.RunFor(5 * time.Second)
	for id, r := range b.replicas {
		got, _ := r.App().Read("Get", []byte("k"))
		if string(got) != fmt.Sprintf("%d", n-1) {
			t.Fatalf("%s final k = %q, want %d (writer order broken)", id, got, n-1)
		}
	}
}

func TestCausalReadThenWriteOrdering(t *testing.T) {
	// The causal litmus test: c0 writes x; c1 reads x, then writes y.
	// Every replica must apply y only after x (y causally depends on x via
	// c1's read), even with network jitter.
	b := newBed(3, 3, 2, 15*ms)
	b.rt.Start()
	b.s.After(0, func() {
		b.clients["c0"].Write("Set", []byte("x=1"), func([]byte, string) {
			// c1 reads after c0's write is acked somewhere.
			b.clients["c1"].Read("Get", []byte("x"), func(p []byte, e string, _ node.ID) {
				b.clients["c1"].Write("Set", []byte("y=saw-"+string(p)), nil)
			})
		})
	})
	b.s.RunFor(5 * time.Second)
	for id, r := range b.replicas {
		y, _ := r.App().Read("Get", []byte("y"))
		if len(y) == 0 {
			t.Fatalf("%s never applied y", id)
		}
		x, _ := r.App().Read("Get", []byte("x"))
		// Causality: wherever y exists, x must exist (y depends on x).
		if string(x) != "1" {
			t.Fatalf("%s has y=%q without x (causal violation)", id, y)
		}
		if string(y) != "saw-1" {
			t.Fatalf("%s y = %q, want saw-1", id, y)
		}
	}
}

func TestCausalDependencyBuffering(t *testing.T) {
	// Drive a replica directly: deliver a dependent update before its
	// dependency; it must buffer, then apply both in order.
	b := newBed(4, 1, 2, 0)
	b.rt.Start()
	b.s.RunFor(10 * ms)

	r := b.replicas["r0"]
	dep := Update{Writer: "c0", Seq: 1, Method: "Set", Payload: []byte("a=first"), Deps: Vector{}}
	dependent := Update{Writer: "c1", Seq: 1, Method: "Set", Payload: []byte("a=second"), Deps: Vector{"c0": 1}}

	b.s.After(0, func() { r.onUpdate("c1", dependent) })
	b.s.RunFor(10 * ms)
	if got := r.Applied()["c1"]; got != 0 {
		t.Fatal("dependent update applied before its dependency")
	}
	b.s.After(0, func() { r.onUpdate("c0", dep) })
	b.s.RunFor(10 * ms)
	if r.Applied()["c0"] != 1 || r.Applied()["c1"] != 1 {
		t.Fatalf("applied = %v", r.Applied())
	}
	got, _ := r.App().Read("Get", []byte("a"))
	if string(got) != "second" {
		t.Fatalf("a = %q, want second (dependency order)", got)
	}
}

func TestCausalDuplicateUpdateIgnored(t *testing.T) {
	b := newBed(5, 1, 1, 0)
	b.rt.Start()
	b.s.RunFor(10 * ms)
	r := b.replicas["r0"]
	u := Update{Writer: "c0", Seq: 1, Method: "Set", Payload: []byte("a=1"), Deps: Vector{}}
	b.s.After(0, func() {
		r.onUpdate("c0", u)
		r.onUpdate("c0", u)
	})
	b.s.RunFor(10 * ms)
	if kv := r.App().(*apps.KVStore); kv.Version() != 1 {
		t.Fatalf("version = %d, duplicate applied", kv.Version())
	}
}

func TestCausalClientObservedGrows(t *testing.T) {
	b := newBed(6, 2, 1, ms)
	b.rt.Start()
	b.s.After(0, func() {
		b.clients["c0"].Write("Set", []byte("a=1"), nil)
	})
	b.s.RunFor(time.Second)
	if got := b.clients["c0"].Observed()["c0"]; got != 1 {
		t.Fatalf("observed = %v", b.clients["c0"].Observed())
	}
}

func TestCausalNewReplicaPanicsWithoutApp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplica(ReplicaConfig{})
}
