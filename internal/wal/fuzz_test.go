package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecoder locks in the decoder's contract on arbitrary (corrupt,
// truncated, bit-flipped) log images:
//
//   - decode-exactly-or-error: a record either decodes from an exact byte
//     span (re-encoding it reproduces those bytes) or replay stops at that
//     boundary — never a misdecoded record, never a panic;
//   - determinism: replaying the same image twice yields the same valid
//     prefix, records, and torn verdict;
//   - fixed point: re-encoding the recovered records and replaying that
//     image recovers the identical records with nothing torn.
func FuzzWALDecoder(f *testing.F) {
	// Seed corpus: well-formed logs, truncations, bit flips, garbage.
	seed := logImage(3)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	f.Add(seed[:5])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	r := rec(1)
	one := AppendRecord(nil, &r)
	f.Add(one)
	f.Add(append(append([]byte(nil), one...), 0x7f))
	big := logImage(8)
	f.Add(big[3:])

	f.Fuzz(func(t *testing.T, img []byte) {
		var recs []Record
		valid, torn, err := Replay(img, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatalf("replay returned visitor error: %v", err)
		}
		if valid < 0 || valid > len(img) {
			t.Fatalf("valid prefix %d outside image of %d bytes", valid, len(img))
		}

		// Decode-exactly: re-encoding the recovered prefix reproduces the
		// image's first `valid` bytes.
		var re []byte
		for i := range recs {
			re = AppendRecord(re, &recs[i])
		}
		if !bytes.Equal(re, img[:valid]) {
			t.Fatalf("re-encoded prefix differs from image prefix (%d bytes)", valid)
		}

		// Determinism.
		var recs2 []Record
		valid2, torn2, _ := Replay(img, func(r Record) error {
			recs2 = append(recs2, r)
			return nil
		})
		if valid2 != valid || torn2 != torn || len(recs2) != len(recs) {
			t.Fatalf("replay nondeterministic: (%d,%t,%d) then (%d,%t,%d)",
				valid, torn, len(recs), valid2, torn2, len(recs2))
		}

		// Fixed point: replaying the re-encoded prefix is clean and total.
		var recs3 []Record
		valid3, torn3, _ := Replay(re, func(r Record) error {
			recs3 = append(recs3, r)
			return nil
		})
		if valid3 != len(re) || torn3 || len(recs3) != len(recs) {
			t.Fatalf("replay not a fixed point: valid=%d/%d torn=%t records=%d/%d",
				valid3, len(re), torn3, len(recs3), len(recs))
		}

		// Snapshot decoding must be equally total on arbitrary bytes.
		if s, n, err := DecodeSnapshot(img); err == nil {
			re := AppendSnapshot(nil, &s)
			if !bytes.Equal(re, img[:n]) {
				t.Fatalf("snapshot decode not exact: %d bytes", n)
			}
		}
	})
}
