package wal

import (
	"errors"
	"fmt"
	"testing"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

func asg(gsn uint64) Assign {
	return Assign{
		GSN: gsn,
		ID:  consistency.RequestID{Client: node.ID(fmt.Sprintf("c%02d", gsn%3)), Seq: gsn},
	}
}

func TestAssignRecordRoundTrip(t *testing.T) {
	want := Record{Kind: KindAssign, GSN: 9, ID: consistency.RequestID{Client: "c01", Seq: 9}}
	b := AppendRecord(nil, &want)
	got, n, err := DecodeRecord(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(b))
	}
	if got.Kind != KindAssign || got.GSN != want.GSN || got.ID != want.ID ||
		got.Method != "" || got.Payload != nil || got.Dup {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	// An assign record is much smaller than a commit record: no method, no
	// payload, no dup byte.
	c := rec(9)
	if cb := AppendRecord(nil, &c); len(b) >= len(cb) {
		t.Fatalf("assign record (%d bytes) not smaller than commit record (%d bytes)", len(b), len(cb))
	}
}

func TestRecordRejectsUnknownKind(t *testing.T) {
	r := Record{Kind: 7, GSN: 1, ID: consistency.RequestID{Client: "c", Seq: 1}}
	b := AppendRecord(nil, &r)
	if _, _, err := DecodeRecord(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind decoded: err=%v", err)
	}
}

func TestSnapshotAssignsRoundTrip(t *testing.T) {
	want := Snapshot{
		CSN:     5,
		App:     []byte("state"),
		Assigns: []Assign{asg(6), asg(7), asg(8)},
	}
	b := AppendSnapshot(nil, &want)
	got, n, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(b))
	}
	if len(got.Assigns) != 3 {
		t.Fatalf("assigns = %+v, want 3 entries", got.Assigns)
	}
	for i, a := range got.Assigns {
		if a != want.Assigns[i] {
			t.Fatalf("assign[%d] = %+v, want %+v", i, a, want.Assigns[i])
		}
	}
}

// TestStoreAppendAssignContiguity: assignments must extend the assignment
// frontier one GSN at a time, and a released commit subsumes (and can
// extend past) the assign chain.
func TestStoreAppendAssignContiguity(t *testing.T) {
	s := NewStore(NewMemMedia())
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAssign(asg(2).GSN, asg(2).ID); err == nil {
		t.Fatal("gap assign (gsn 2 into empty store) accepted")
	}
	for g := uint64(1); g <= 3; g++ {
		if err := s.AppendAssign(asg(g).GSN, asg(g).ID); err != nil {
			t.Fatalf("assign %d: %v", g, err)
		}
	}
	if err := s.AppendAssign(asg(3).GSN, asg(3).ID); err == nil {
		t.Fatal("duplicate assign accepted")
	}
	if got := s.AssignFrontier(); got != 3 {
		t.Fatalf("assign frontier = %d, want 3", got)
	}
	if got := s.Frontier(); got != 0 {
		t.Fatalf("commit frontier = %d, want 0 (no commits yet)", got)
	}

	// Commits release under the logged assigns, then extend past them: the
	// commit record subsumes the assignment.
	for g := uint64(1); g <= 4; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatalf("commit %d: %v", g, err)
		}
	}
	if got := s.Frontier(); got != 4 {
		t.Fatalf("commit frontier = %d, want 4", got)
	}
	if got := s.AssignFrontier(); got != 4 {
		t.Fatalf("assign frontier = %d, want 4 (commit subsumes assignment)", got)
	}
	// The assign chain resumes above the subsumed range.
	if err := s.AppendAssign(asg(5).GSN, asg(5).ID); err != nil {
		t.Fatalf("assign 5 after commits: %v", err)
	}

	// Append rejects assign-kind records (API misuse guard).
	bad := Record{Kind: KindAssign, GSN: 5, ID: asg(5).ID}
	if err := s.Append(&bad); err == nil {
		t.Fatal("Append accepted an assign-kind record")
	}
}

// TestStoreRecoverAssigns is the finding-1 regression at the store layer:
// assignments logged before a crash must come back, both from the log and —
// after compaction — from the snapshot cell, minus whatever commits
// subsumed.
func TestStoreRecoverAssigns(t *testing.T) {
	m := NewMemMedia()
	s := NewStore(m)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	// Interleave: assigns 1..5 durable, commits released for 1..2 only.
	for g := uint64(1); g <= 5; g++ {
		if err := s.AppendAssign(asg(g).GSN, asg(g).ID); err != nil {
			t.Fatal(err)
		}
	}
	for g := uint64(1); g <= 2; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: a fresh store over the same media.
	s2 := NewStore(m)
	out, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if out.CSN != 2 || len(out.Records) != 2 {
		t.Fatalf("recovered CSN %d with %d records, want 2/2", out.CSN, len(out.Records))
	}
	if len(out.Assigns) != 3 {
		t.Fatalf("recovered assigns %+v, want gsns 3,4,5", out.Assigns)
	}
	for i, a := range out.Assigns {
		if want := asg(uint64(3 + i)); a != want {
			t.Fatalf("assign[%d] = %+v, want %+v", i, a, want)
		}
	}
	if got := s2.AssignFrontier(); got != 5 {
		t.Fatalf("recovered assign frontier = %d, want 5", got)
	}
	if got := s2.Frontier(); got != 2 {
		t.Fatalf("recovered commit frontier = %d, want 2", got)
	}

	// Compact at CSN 2 carrying the outstanding table; the cell alone must
	// reproduce it after another crash.
	snap := Snapshot{CSN: 2, App: []byte("s"), Assigns: []Assign{asg(3), asg(4), asg(5)}}
	if err := s2.SaveSnapshot(&snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	s3 := NewStore(m)
	out3, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if out3.CSN != 2 || len(out3.Assigns) != 3 || out3.Assigns[0] != asg(3) || out3.Assigns[2] != asg(5) {
		t.Fatalf("post-compaction recovery: CSN %d assigns %+v", out3.CSN, out3.Assigns)
	}
	if got := s3.AssignFrontier(); got != 5 {
		t.Fatalf("post-compaction assign frontier = %d, want 5", got)
	}
	// The assign chain continues durably across the compaction boundary.
	if err := s3.AppendAssign(asg(6).GSN, asg(6).ID); err != nil {
		t.Fatalf("assign 6 after compaction recovery: %v", err)
	}
}

// TestStoreSnapshotMustCoverAssignFrontier: a snapshot that would reset the
// log while silently dropping durable assign records is a frontier
// regression and must be refused.
func TestStoreSnapshotMustCoverAssignFrontier(t *testing.T) {
	s := NewStore(NewMemMedia())
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 3; g++ {
		if err := s.AppendAssign(asg(g).GSN, asg(g).ID); err != nil {
			t.Fatal(err)
		}
	}
	// Covers only up to 1 < assign frontier 3: refused.
	if err := s.SaveSnapshot(&Snapshot{CSN: 0, Assigns: []Assign{asg(1)}}); err == nil {
		t.Fatal("snapshot dropping durable assigns accepted")
	}
	// Non-contiguous table: refused.
	if err := s.SaveSnapshot(&Snapshot{CSN: 0, Assigns: []Assign{asg(1), asg(3), asg(2)}}); err == nil {
		t.Fatal("non-contiguous snapshot assigns accepted")
	}
	// Full cover: accepted.
	if err := s.SaveSnapshot(&Snapshot{CSN: 0, Assigns: []Assign{asg(1), asg(2), asg(3)}}); err != nil {
		t.Fatalf("covering snapshot refused: %v", err)
	}
	if got := s.AssignFrontier(); got != 3 {
		t.Fatalf("assign frontier after snapshot = %d, want 3", got)
	}
}

// TestStoreRecoverStopsAtAssignGap: replay treats a non-contiguous assign
// record like any other untrustworthy continuation — it stops at the
// preceding boundary instead of recovering a frontier with holes.
func TestStoreRecoverStopsAtAssignGap(t *testing.T) {
	m := NewMemMedia()
	var img []byte
	r1 := Record{Kind: KindAssign, GSN: 1, ID: asg(1).ID}
	r3 := Record{Kind: KindAssign, GSN: 3, ID: asg(3).ID}
	img = AppendRecord(img, &r1)
	img = AppendRecord(img, &r3) // gap: 2 missing
	m.SetLog(img)

	s := NewStore(m)
	out, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assigns) != 1 || out.Assigns[0].GSN != 1 {
		t.Fatalf("recovered assigns %+v, want only gsn 1", out.Assigns)
	}
	if got := s.AssignFrontier(); got != 1 {
		t.Fatalf("assign frontier = %d, want 1", got)
	}
}
