package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"aqua/internal/node"
)

// Media is the durable surface a Store writes to: one snapshot cell and one
// append-only log. Implementations must make AppendLog and StoreSnapshot
// durable before returning (the store's frontier guarantee — durable CSN ≥
// applied CSN — rests on it).
type Media interface {
	// LoadSnapshot returns the snapshot cell (nil when never written).
	LoadSnapshot() ([]byte, error)
	// StoreSnapshot atomically replaces the snapshot cell.
	StoreSnapshot(b []byte) error
	// LoadLog returns the full log image.
	LoadLog() ([]byte, error)
	// AppendLog durably appends b to the log.
	AppendLog(b []byte) error
	// ResetLog truncates the log to empty (after a snapshot subsumed it).
	ResetLog() error
	// Syncs reports how many durability barriers (fsync or the in-memory
	// equivalent) the media has performed — the WAL-fsync metric's source.
	Syncs() uint64
}

// MemMedia is the simulator's media: plain byte slices that survive a node
// restart because the deployment's registry (see Registry) outlives the
// crashed gateway instance. All operations are synchronous function calls —
// no scheduler events, no rand draws — so enabling durability leaves
// virtual-time execution byte-identical.
//
// MemMedia doubles as the crash-point injection surface: FailAfter bounds
// how many log bytes become durable, silently dropping the excess exactly
// like a torn write at that boundary, and the adversarial tests rewrite
// Log/SetLog images to plant corruption between incarnations.
type MemMedia struct {
	snapshot []byte
	log      []byte
	syncs    uint64

	// failAfter, when >= 0, caps the durable log length: append bytes
	// beyond it are dropped (the crash-point injection knob). -1 is off.
	failAfter int
}

// NewMemMedia returns an empty in-memory media.
func NewMemMedia() *MemMedia { return &MemMedia{failAfter: -1} }

// LoadSnapshot implements Media.
func (m *MemMedia) LoadSnapshot() ([]byte, error) { return m.snapshot, nil }

// StoreSnapshot implements Media.
func (m *MemMedia) StoreSnapshot(b []byte) error {
	m.snapshot = append(m.snapshot[:0:0], b...)
	m.syncs++
	return nil
}

// LoadLog implements Media.
func (m *MemMedia) LoadLog() ([]byte, error) { return m.log, nil }

// AppendLog implements Media.
func (m *MemMedia) AppendLog(b []byte) error {
	if m.failAfter >= 0 {
		room := m.failAfter - len(m.log)
		if room < 0 {
			room = 0
		}
		if len(b) > room {
			// Torn write: the prefix lands, the rest never reaches the
			// platter. The writer is not told — that is the point.
			b = b[:room]
		}
	}
	m.log = append(m.log, b...)
	m.syncs++
	return nil
}

// ResetLog implements Media.
func (m *MemMedia) ResetLog() error {
	m.log = m.log[:0]
	return nil
}

// Syncs implements Media.
func (m *MemMedia) Syncs() uint64 { return m.syncs }

// FailAfter caps the durable log at n total bytes; appends beyond it are
// silently torn at that boundary. n < 0 disables the injection.
func (m *MemMedia) FailAfter(n int) { m.failAfter = n }

// Log returns the raw log image (test inspection).
func (m *MemMedia) Log() []byte { return m.log }

// SetLog replaces the raw log image (test corruption injection).
func (m *MemMedia) SetLog(b []byte) { m.log = append(m.log[:0:0], b...) }

// Registry hands each replica ID a stable MemMedia that survives process
// restarts within one simulation: the deployment owns the registry, gateway
// incarnations come and go. Wipe models a disk loss (the legacy state-loss
// restart keeps its semantics by wiping before rebuilding).
type Registry struct {
	media map[node.ID]*MemMedia
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{media: make(map[node.ID]*MemMedia)} }

// Get returns id's media, creating it on first use.
func (r *Registry) Get(id node.ID) *MemMedia {
	m, ok := r.media[id]
	if !ok {
		m = NewMemMedia()
		r.media[id] = m
	}
	return m
}

// Wipe discards id's durable state: the next Get starts empty.
func (r *Registry) Wipe(id node.ID) { delete(r.media, id) }

// FileMedia stores the snapshot cell and log as two files in a directory —
// the live deployment's (cmd/aquad) media. Appends write-then-fsync; the
// snapshot cell is replaced via write-to-temp + rename + directory fsync.
type FileMedia struct {
	dir string

	mu    sync.Mutex
	logF  *os.File
	syncs uint64
}

// NewFileMedia opens (creating if needed) a file-backed media rooted at dir.
func NewFileMedia(dir string) (*FileMedia, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: media dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &FileMedia{dir: dir, logF: f}, nil
}

// Close releases the log file handle.
func (m *FileMedia) Close() error { return m.logF.Close() }

func (m *FileMedia) snapshotPath() string { return filepath.Join(m.dir, "snapshot") }

// LoadSnapshot implements Media.
func (m *FileMedia) LoadSnapshot() ([]byte, error) {
	b, err := os.ReadFile(m.snapshotPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	return b, err
}

// StoreSnapshot implements Media.
func (m *FileMedia) StoreSnapshot(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	tmp := m.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, m.snapshotPath()); err != nil {
		return err
	}
	m.syncs++
	return syncDir(m.dir)
}

// LoadLog implements Media.
func (m *FileMedia) LoadLog() ([]byte, error) {
	return os.ReadFile(filepath.Join(m.dir, "wal.log"))
}

// AppendLog implements Media.
func (m *FileMedia) AppendLog(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.logF.Write(b); err != nil {
		return err
	}
	m.syncs++
	return m.logF.Sync()
}

// ResetLog implements Media.
func (m *FileMedia) ResetLog() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.logF.Truncate(0); err != nil {
		return err
	}
	_, err := m.logF.Seek(0, 0)
	return err
}

// Syncs implements Media.
func (m *FileMedia) Syncs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
