package wal

import (
	"fmt"

	"aqua/internal/consistency"
)

// Store is one replica's durable state: a snapshot cell plus the log of
// commits released since that snapshot. The owning gateway appends a record
// per released commit (before acknowledging it), replaces the snapshot at
// compaction points, and recovers snapshot + log suffix at startup. All
// methods are synchronous; the store carries no timers and draws no
// randomness, so it never perturbs the simulator's virtual time.
type Store struct {
	media Media

	// records counts log records since the last snapshot; frontier is the
	// GSN of the last appended commit record (the durable commit frontier).
	records  int
	frontier uint64

	// assignFrontier is the durable assignment frontier: every assignment
	// at or below it is held by an assign record, a commit record, or the
	// snapshot cell. Invariant: assignFrontier >= frontier (a released
	// commit subsumes its assignment). The gateway acknowledges only up to
	// this frontier, so an AssignAck survives the acker's crash.
	assignFrontier uint64

	// scratch backs record encoding between appends.
	scratch []byte

	// Counters for the observability layer.
	appends     uint64
	appendBytes uint64
	snapshots   uint64

	// dropTail, when > 0, silently discards that many records from the end
	// of the log during Recover — a deliberate durability bug used to prove
	// the recovery-frontier oracle can actually fail. Production code never
	// sets it.
	dropTail int
}

// NewStore wraps a media. Nothing is read until Recover.
func NewStore(m Media) *Store { return &Store{media: m} }

// Recovered is the state a Store reconstructs at startup.
type Recovered struct {
	// Snapshot is the compaction cell (zero value when never written).
	Snapshot Snapshot
	// Records is the replayable commit-record suffix above the snapshot,
	// in commit order with strictly ascending GSNs.
	Records []Record
	// Assigns is the recovered assignment table above CSN, contiguous from
	// it: entries from the snapshot cell plus replayed assign records whose
	// commits had not been released at the crash.
	Assigns []Assign
	// CSN is the recovered commit frontier: the last commit record's GSN,
	// or the snapshot's CSN when the log holds no commits.
	CSN uint64
	// Torn reports that the log ended in an incomplete record (crash
	// mid-append) which recovery truncated.
	Torn bool
}

// Recover loads the snapshot cell and replays the log suffix. A torn final
// record is truncated (the expected crash artifact); corruption anywhere
// stops replay at the preceding record boundary — deterministically, so
// recovering twice from the same image yields the same frontier. Records at
// or below the snapshot CSN or breaking GSN contiguity also stop replay:
// past that point the log is not a trustworthy continuation. The store's
// append frontier resumes from the recovered state.
func (s *Store) Recover() (Recovered, error) {
	var out Recovered
	cell, err := s.media.LoadSnapshot()
	if err != nil {
		return out, fmt.Errorf("wal: load snapshot: %w", err)
	}
	if len(cell) > 0 {
		snap, n, err := DecodeSnapshot(cell)
		if err != nil || n != len(cell) || !assignsContiguous(snap.CSN, snap.Assigns) {
			// An unreadable snapshot cell means no provable baseline: treat
			// the whole store as empty rather than replay a log whose
			// starting state is unknown.
			s.frontier, s.assignFrontier, s.records = 0, 0, 0
			return Recovered{}, fmt.Errorf("wal: snapshot cell unreadable: %w", errOr(err, ErrCorrupt))
		}
		out.Snapshot = snap
		out.CSN = snap.CSN
	}

	log, err := s.media.LoadLog()
	if err != nil {
		return out, fmt.Errorf("wal: load log: %w", err)
	}
	next := out.CSN
	assignNext := out.CSN + uint64(len(out.Snapshot.Assigns))
	out.Assigns = append(out.Assigns, out.Snapshot.Assigns...)
	replayed := 0
	stop := fmt.Errorf("wal: stop") // sentinel: replay prefix ends here
	_, torn, _ := Replay(log, func(r Record) error {
		if r.Kind == KindAssign {
			if r.GSN != assignNext+1 {
				return stop
			}
			assignNext++
			replayed++
			out.Assigns = append(out.Assigns, Assign{GSN: r.GSN, ID: r.ID})
			return nil
		}
		if r.GSN != next+1 {
			return stop
		}
		next++
		if next > assignNext {
			// A commit subsumes its assignment; contiguity of the commit
			// chain keeps this a one-step extension at most.
			assignNext = next
		}
		replayed++
		out.Records = append(out.Records, r)
		return nil
	})
	out.Torn = torn
	if s.dropTail > 0 {
		// Injected bug: lose the tail and pretend recovery was complete.
		n := len(out.Records) - s.dropTail
		if n < 0 {
			n = 0
		}
		out.Records = out.Records[:n]
		if n := len(out.Records); n > 0 {
			next = out.Records[n-1].GSN
		} else {
			next = out.Snapshot.CSN
		}
	}
	out.CSN = next
	// Commits released during replay subsume their table entries.
	if len(out.Assigns) > 0 {
		keep := out.Assigns[:0]
		for _, a := range out.Assigns {
			if a.GSN > out.CSN {
				keep = append(keep, a)
			}
		}
		if out.Assigns = keep; len(keep) == 0 {
			out.Assigns = nil
		}
	}
	s.frontier = next
	s.assignFrontier = assignNext
	if s.assignFrontier < s.frontier {
		s.assignFrontier = s.frontier
	}
	s.records = replayed
	return out, nil
}

// assignsContiguous verifies an assignment table extends csn one GSN at a
// time — the shape every writer produces and every reader depends on.
func assignsContiguous(csn uint64, assigns []Assign) bool {
	for i, a := range assigns {
		if a.GSN != csn+uint64(i)+1 {
			return false
		}
	}
	return true
}

// Append durably logs one released commit. Records must arrive in commit
// order (GSN = frontier+1); anything else is a caller bug.
func (s *Store) Append(r *Record) error {
	if r.Kind != KindCommit {
		return fmt.Errorf("wal: append record kind %d; use AppendAssign", r.Kind)
	}
	if s.frontier != 0 || s.records > 0 || s.snapshots > 0 {
		if r.GSN != s.frontier+1 {
			return fmt.Errorf("wal: append gsn %d does not extend frontier %d", r.GSN, s.frontier)
		}
	} else if r.GSN != 1 {
		// First record of a fresh store: history starts at GSN 1.
		return fmt.Errorf("wal: append gsn %d into empty store", r.GSN)
	}
	s.scratch = AppendRecord(s.scratch[:0], r)
	if err := s.media.AppendLog(s.scratch); err != nil {
		return err
	}
	s.frontier = r.GSN
	if s.assignFrontier < r.GSN {
		// A released commit subsumes its assignment.
		s.assignFrontier = r.GSN
	}
	s.records++
	s.appends++
	s.appendBytes += uint64(len(s.scratch))
	return nil
}

// AppendAssign durably logs one assignment-table entry. Assignments must
// extend the assignment frontier one GSN at a time (the gateway logs the
// contiguous frontier extension before acknowledging it); anything else is
// a caller bug.
func (s *Store) AppendAssign(gsn uint64, id consistency.RequestID) error {
	if gsn != s.assignFrontier+1 {
		return fmt.Errorf("wal: assign gsn %d does not extend assignment frontier %d", gsn, s.assignFrontier)
	}
	rec := Record{Kind: KindAssign, GSN: gsn, ID: id}
	s.scratch = AppendRecord(s.scratch[:0], &rec)
	if err := s.media.AppendLog(s.scratch); err != nil {
		return err
	}
	s.assignFrontier = gsn
	s.records++
	s.appends++
	s.appendBytes += uint64(len(s.scratch))
	return nil
}

// SaveSnapshot replaces the snapshot cell with state at snap.CSN and resets
// the log: every record at or below it is subsumed. The caller passes state
// reflecting all logged commits (snap.CSN ≥ the append frontier); the
// frontier advances to it. The snapshot is made durable before the log is
// reset, so a crash between the two steps leaves a log whose records fall
// at or below the new snapshot — replay discards them.
func (s *Store) SaveSnapshot(snap *Snapshot) error {
	if snap.CSN < s.frontier {
		return fmt.Errorf("wal: snapshot csn %d below frontier %d", snap.CSN, s.frontier)
	}
	if !assignsContiguous(snap.CSN, snap.Assigns) {
		return fmt.Errorf("wal: snapshot assigns not contiguous from csn %d", snap.CSN)
	}
	if covered := snap.CSN + uint64(len(snap.Assigns)); covered < s.assignFrontier {
		// Resetting the log would drop assign records the snapshot does not
		// carry — regressing the durable frontier behind an acknowledged one.
		return fmt.Errorf("wal: snapshot covers assignments to %d, below frontier %d", covered, s.assignFrontier)
	}
	s.scratch = AppendSnapshot(s.scratch[:0], snap)
	if err := s.media.StoreSnapshot(s.scratch); err != nil {
		return err
	}
	if err := s.media.ResetLog(); err != nil {
		return err
	}
	s.frontier = snap.CSN
	s.assignFrontier = snap.CSN + uint64(len(snap.Assigns))
	s.records = 0
	s.snapshots++
	return nil
}

// Frontier returns the durable commit frontier: the highest GSN whose
// record (or covering snapshot) the media holds.
func (s *Store) Frontier() uint64 { return s.frontier }

// AssignFrontier returns the durable assignment frontier: the highest GSN
// such that every assignment at or below it is on media (as an assign
// record, a commit record, or in the snapshot cell). Always at or above
// Frontier.
func (s *Store) AssignFrontier() uint64 { return s.assignFrontier }

// LogRecords returns how many records the log holds since the last
// snapshot — the compaction trigger's input.
func (s *Store) LogRecords() int { return s.records }

// Stats returns the store's append count, appended bytes, snapshot count,
// and the media's durability-barrier count, for the observability layer.
func (s *Store) Stats() (appends, appendBytes, snapshots, syncs uint64) {
	return s.appends, s.appendBytes, s.snapshots, s.media.Syncs()
}

// EnableDropTailFault arms the deliberate recovery bug: Recover silently
// discards the last n log records, reporting a frontier below what the
// media can prove. The recovery-frontier oracle must catch the resulting
// regression — the planted-bug test that keeps the oracle honest.
// Production code never calls it.
func (s *Store) EnableDropTailFault(n int) { s.dropTail = n }

// errOr returns err when non-nil, fallback otherwise.
func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}
