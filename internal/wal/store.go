package wal

import "fmt"

// Store is one replica's durable state: a snapshot cell plus the log of
// commits released since that snapshot. The owning gateway appends a record
// per released commit (before acknowledging it), replaces the snapshot at
// compaction points, and recovers snapshot + log suffix at startup. All
// methods are synchronous; the store carries no timers and draws no
// randomness, so it never perturbs the simulator's virtual time.
type Store struct {
	media Media

	// records counts log records since the last snapshot; frontier is the
	// GSN of the last appended record (the durable commit frontier).
	records  int
	frontier uint64

	// scratch backs record encoding between appends.
	scratch []byte

	// Counters for the observability layer.
	appends     uint64
	appendBytes uint64
	snapshots   uint64

	// dropTail, when > 0, silently discards that many records from the end
	// of the log during Recover — a deliberate durability bug used to prove
	// the recovery-frontier oracle can actually fail. Production code never
	// sets it.
	dropTail int
}

// NewStore wraps a media. Nothing is read until Recover.
func NewStore(m Media) *Store { return &Store{media: m} }

// Recovered is the state a Store reconstructs at startup.
type Recovered struct {
	// Snapshot is the compaction cell (zero value when never written).
	Snapshot Snapshot
	// Records is the replayable log suffix above the snapshot, in commit
	// order with strictly ascending GSNs.
	Records []Record
	// CSN is the recovered commit frontier: the last record's GSN, or the
	// snapshot's CSN when the log is empty.
	CSN uint64
	// Torn reports that the log ended in an incomplete record (crash
	// mid-append) which recovery truncated.
	Torn bool
}

// Recover loads the snapshot cell and replays the log suffix. A torn final
// record is truncated (the expected crash artifact); corruption anywhere
// stops replay at the preceding record boundary — deterministically, so
// recovering twice from the same image yields the same frontier. Records at
// or below the snapshot CSN or breaking GSN contiguity also stop replay:
// past that point the log is not a trustworthy continuation. The store's
// append frontier resumes from the recovered state.
func (s *Store) Recover() (Recovered, error) {
	var out Recovered
	cell, err := s.media.LoadSnapshot()
	if err != nil {
		return out, fmt.Errorf("wal: load snapshot: %w", err)
	}
	if len(cell) > 0 {
		snap, n, err := DecodeSnapshot(cell)
		if err != nil || n != len(cell) {
			// An unreadable snapshot cell means no provable baseline: treat
			// the whole store as empty rather than replay a log whose
			// starting state is unknown.
			s.frontier, s.records = 0, 0
			return Recovered{}, fmt.Errorf("wal: snapshot cell unreadable: %w", errOr(err, ErrCorrupt))
		}
		out.Snapshot = snap
		out.CSN = snap.CSN
	}

	log, err := s.media.LoadLog()
	if err != nil {
		return out, fmt.Errorf("wal: load log: %w", err)
	}
	next := out.CSN
	stop := fmt.Errorf("wal: stop") // sentinel: replay prefix ends here
	_, torn, _ := Replay(log, func(r Record) error {
		if r.GSN != next+1 {
			return stop
		}
		next++
		out.Records = append(out.Records, r)
		return nil
	})
	out.Torn = torn
	if s.dropTail > 0 {
		// Injected bug: lose the tail and pretend recovery was complete.
		n := len(out.Records) - s.dropTail
		if n < 0 {
			n = 0
		}
		out.Records = out.Records[:n]
		if n := len(out.Records); n > 0 {
			next = out.Records[n-1].GSN
		} else {
			next = out.Snapshot.CSN
		}
	}
	out.CSN = next
	s.frontier = next
	s.records = len(out.Records)
	return out, nil
}

// Append durably logs one released commit. Records must arrive in commit
// order (GSN = frontier+1); anything else is a caller bug.
func (s *Store) Append(r *Record) error {
	if s.frontier != 0 || s.records > 0 || s.snapshots > 0 {
		if r.GSN != s.frontier+1 {
			return fmt.Errorf("wal: append gsn %d does not extend frontier %d", r.GSN, s.frontier)
		}
	} else if r.GSN != 1 {
		// First record of a fresh store: history starts at GSN 1.
		return fmt.Errorf("wal: append gsn %d into empty store", r.GSN)
	}
	s.scratch = AppendRecord(s.scratch[:0], r)
	if err := s.media.AppendLog(s.scratch); err != nil {
		return err
	}
	s.frontier = r.GSN
	s.records++
	s.appends++
	s.appendBytes += uint64(len(s.scratch))
	return nil
}

// SaveSnapshot replaces the snapshot cell with state at snap.CSN and resets
// the log: every record at or below it is subsumed. The caller passes state
// reflecting all logged commits (snap.CSN ≥ the append frontier); the
// frontier advances to it. The snapshot is made durable before the log is
// reset, so a crash between the two steps leaves a log whose records fall
// at or below the new snapshot — replay discards them.
func (s *Store) SaveSnapshot(snap *Snapshot) error {
	if snap.CSN < s.frontier {
		return fmt.Errorf("wal: snapshot csn %d below frontier %d", snap.CSN, s.frontier)
	}
	s.scratch = AppendSnapshot(s.scratch[:0], snap)
	if err := s.media.StoreSnapshot(s.scratch); err != nil {
		return err
	}
	if err := s.media.ResetLog(); err != nil {
		return err
	}
	s.frontier = snap.CSN
	s.records = 0
	s.snapshots++
	return nil
}

// Frontier returns the durable commit frontier: the highest GSN whose
// record (or covering snapshot) the media holds.
func (s *Store) Frontier() uint64 { return s.frontier }

// LogRecords returns how many records the log holds since the last
// snapshot — the compaction trigger's input.
func (s *Store) LogRecords() int { return s.records }

// Stats returns the store's append count, appended bytes, snapshot count,
// and the media's durability-barrier count, for the observability layer.
func (s *Store) Stats() (appends, appendBytes, snapshots, syncs uint64) {
	return s.appends, s.appendBytes, s.snapshots, s.media.Syncs()
}

// EnableDropTailFault arms the deliberate recovery bug: Recover silently
// discards the last n log records, reporting a frontier below what the
// media can prove. The recovery-frontier oracle must catch the resulting
// regression — the planted-bug test that keeps the oracle honest.
// Production code never calls it.
func (s *Store) EnableDropTailFault(n int) { s.dropTail = n }

// errOr returns err when non-nil, fallback otherwise.
func errOr(err, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}
