package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

func rec(gsn uint64) Record {
	return Record{
		GSN:     gsn,
		ID:      consistency.RequestID{Client: node.ID(fmt.Sprintf("c%02d", gsn%3)), Seq: gsn},
		Method:  "Set",
		Payload: []byte(fmt.Sprintf("doc%d=%d", gsn%3, gsn)),
		Dup:     gsn%5 == 0,
	}
}

func logImage(n int) []byte {
	var b []byte
	for g := uint64(1); g <= uint64(n); g++ {
		r := rec(g)
		b = AppendRecord(b, &r)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	want := rec(7)
	b := AppendRecord(nil, &want)
	got, n, err := DecodeRecord(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(b))
	}
	if got.GSN != want.GSN || got.ID != want.ID || got.Method != want.Method ||
		!bytes.Equal(got.Payload, want.Payload) || got.Dup != want.Dup {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := Snapshot{
		CSN: 42,
		App: []byte("state"),
		RecentIDs: []consistency.RequestID{
			{Client: "c00", Seq: 41}, {Client: "c01", Seq: 42},
		},
	}
	b := AppendSnapshot(nil, &want)
	got, n, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(b))
	}
	if got.CSN != want.CSN || !bytes.Equal(got.App, want.App) || len(got.RecentIDs) != 2 ||
		got.RecentIDs[0] != want.RecentIDs[0] || got.RecentIDs[1] != want.RecentIDs[1] {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

// TestReplayTruncationEveryByte is the crash-point sweep: a crash may tear
// the log at any byte boundary. For every prefix length the replay must
// recover exactly the records wholly contained in the prefix and report the
// partial final record as torn.
func TestReplayTruncationEveryByte(t *testing.T) {
	const records = 6
	full := logImage(records)
	// Record boundaries.
	var bounds []int
	off := 0
	for off < len(full) {
		_, n, err := DecodeRecord(full[off:])
		if err != nil {
			t.Fatalf("full log invalid at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(full); cut++ {
		var got []Record
		valid, torn, err := Replay(full[:cut], func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay error %v", cut, err)
		}
		wantRecs := 0
		wantValid := 0
		for i, b := range bounds {
			if b <= cut {
				wantRecs = i + 1
				wantValid = b
			}
		}
		if len(got) != wantRecs || valid != wantValid {
			t.Fatalf("cut=%d: recovered %d records (valid=%d), want %d (valid=%d)",
				cut, len(got), valid, wantRecs, wantValid)
		}
		if wantTorn := cut != wantValid; torn != wantTorn {
			t.Fatalf("cut=%d: torn=%t want %t", cut, torn, wantTorn)
		}
		for i, r := range got {
			if r.GSN != uint64(i+1) {
				t.Fatalf("cut=%d: record %d has gsn %d", cut, i, r.GSN)
			}
		}
	}
}

// TestReplayBitFlipStopsAtBoundary flips every byte of a log in turn; replay
// must stop at (or before) the corrupted record's boundary and never emit a
// record that differs from the original sequence.
func TestReplayBitFlipStopsAtBoundary(t *testing.T) {
	const records = 4
	full := logImage(records)
	for pos := 0; pos < len(full); pos++ {
		img := append([]byte(nil), full...)
		img[pos] ^= 0x41
		var got []Record
		valid, _, err := Replay(img, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("pos=%d: replay error %v", pos, err)
		}
		if valid > len(full) {
			t.Fatalf("pos=%d: valid %d beyond image", pos, valid)
		}
		for i, r := range got {
			want := rec(uint64(i + 1))
			if r.GSN != want.GSN || r.ID != want.ID || r.Method != want.Method ||
				!bytes.Equal(r.Payload, want.Payload) || r.Dup != want.Dup {
				t.Fatalf("pos=%d: replay emitted corrupted record %d: %+v", pos, i, r)
			}
		}
		// Determinism: replaying the same corrupt image twice agrees.
		valid2, _, _ := Replay(img, nil)
		if valid2 != valid {
			t.Fatalf("pos=%d: replay nondeterministic: %d then %d", pos, valid, valid2)
		}
	}
}

func TestStoreAppendRecoverCompact(t *testing.T) {
	m := NewMemMedia()
	s := NewStore(m)
	for g := uint64(1); g <= 10; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}
	if s.Frontier() != 10 || s.LogRecords() != 10 {
		t.Fatalf("frontier=%d records=%d", s.Frontier(), s.LogRecords())
	}
	// Compact at 10, then log two more.
	if err := s.SaveSnapshot(&Snapshot{CSN: 10, App: []byte("app@10"),
		RecentIDs: []consistency.RequestID{{Client: "c01", Seq: 10}}}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for g := uint64(11); g <= 12; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatalf("append %d: %v", g, err)
		}
	}

	// A fresh store over the same media recovers snapshot + suffix.
	s2 := NewStore(m)
	got, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got.CSN != 12 || got.Snapshot.CSN != 10 || string(got.Snapshot.App) != "app@10" {
		t.Fatalf("recovered csn=%d snapshot=%+v", got.CSN, got.Snapshot)
	}
	if len(got.Records) != 2 || got.Records[0].GSN != 11 || got.Records[1].GSN != 12 {
		t.Fatalf("recovered records %+v", got.Records)
	}
	if got.Torn {
		t.Fatal("clean log reported torn")
	}
	// Appends resume above the recovered frontier.
	r := rec(13)
	if err := s2.Append(&r); err != nil {
		t.Fatalf("append after recover: %v", err)
	}
	bad := rec(15)
	if err := s2.Append(&bad); err == nil {
		t.Fatal("gap append accepted")
	}
}

func TestStoreRecoverTornTail(t *testing.T) {
	m := NewMemMedia()
	s := NewStore(m)
	for g := uint64(1); g <= 5; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Tear the final record mid-frame.
	img := m.Log()
	m.SetLog(img[:len(img)-3])
	got, err := NewStore(m).Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got.CSN != 4 || !got.Torn {
		t.Fatalf("recovered csn=%d torn=%t, want 4/true", got.CSN, got.Torn)
	}
}

// TestStoreFailAfterBoundarySweep drives the crash-point injection through
// the store: for every byte boundary inside the final append, a store whose
// media tore there must recover to frontier 4 or 5 — never anything else,
// and never an error.
func TestStoreFailAfterBoundarySweep(t *testing.T) {
	// Length of the durable prefix before the final record.
	clean := NewMemMedia()
	cs := NewStore(clean)
	for g := uint64(1); g <= 4; g++ {
		r := rec(g)
		if err := cs.Append(&r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	base := len(clean.Log())
	r5 := rec(5)
	full := AppendRecord(nil, &r5)

	for extra := 0; extra <= len(full); extra++ {
		m := NewMemMedia()
		s := NewStore(m)
		for g := uint64(1); g <= 4; g++ {
			r := rec(g)
			if err := s.Append(&r); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		m.FailAfter(base + extra)
		r := rec(5)
		if err := s.Append(&r); err != nil {
			t.Fatalf("torn append surfaced: %v", err)
		}
		m.FailAfter(-1)
		got, err := NewStore(m).Recover()
		if err != nil {
			t.Fatalf("extra=%d: recover: %v", extra, err)
		}
		want := uint64(4)
		if extra == len(full) {
			want = 5
		}
		if got.CSN != want {
			t.Fatalf("extra=%d: recovered csn=%d want %d", extra, got.CSN, want)
		}
	}
}

func TestStoreSnapshotCellCorruption(t *testing.T) {
	m := NewMemMedia()
	s := NewStore(m)
	r := rec(1)
	if err := s.Append(&r); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.SaveSnapshot(&Snapshot{CSN: 1, App: []byte("x")}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	m.snapshot[len(m.snapshot)-1] ^= 0xff
	if _, err := NewStore(m).Recover(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot cell recovered: err=%v", err)
	}
}

func TestStoreDropTailFault(t *testing.T) {
	m := NewMemMedia()
	s := NewStore(m)
	for g := uint64(1); g <= 6; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	s2 := NewStore(m)
	s2.EnableDropTailFault(2)
	got, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got.CSN != 4 || len(got.Records) != 4 {
		t.Fatalf("drop-tail fault recovered csn=%d records=%d, want 4/4", got.CSN, len(got.Records))
	}
}

func TestRegistrySurvivesAndWipes(t *testing.T) {
	reg := NewRegistry()
	m := reg.Get("p01")
	r := rec(1)
	if err := NewStore(m).Append(&r); err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := reg.Get("p01"); got != m || len(got.Log()) == 0 {
		t.Fatal("registry did not return the surviving media")
	}
	reg.Wipe("p01")
	if got := reg.Get("p01"); len(got.Log()) != 0 {
		t.Fatal("wiped media still holds a log")
	}
}

func TestFileMediaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := NewFileMedia(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s := NewStore(m)
	for g := uint64(1); g <= 3; g++ {
		r := rec(g)
		if err := s.Append(&r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.SaveSnapshot(&Snapshot{CSN: 3, App: []byte("app@3")}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r4 := rec(4)
	if err := s.Append(&r4); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, err := NewFileMedia(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	got, err := NewStore(m2).Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got.CSN != 4 || got.Snapshot.CSN != 3 || string(got.Snapshot.App) != "app@3" || len(got.Records) != 1 {
		t.Fatalf("recovered %+v", got)
	}
}
