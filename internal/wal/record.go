// Package wal implements the replica's durable state: an append-only
// write-ahead log of committed updates plus a snapshot cell holding the
// last compaction point. A restarting replica replays snapshot + WAL
// suffix to its exact pre-crash commit frontier instead of re-fetching
// history from its peers (DESIGN.md §14).
//
// The binary format follows the live transport's codec conventions
// (internal/tcpnet/wire.go): length-prefixed framing, a version byte,
// uvarint integers, length-prefixed strings and byte slices, and
// decode-exactly-or-error semantics. Every frame additionally carries a
// CRC32 of its body, because unlike a TCP stream a log survives torn
// writes and media corruption: a record either decodes byte-exactly with a
// matching checksum or replay stops at that record boundary. A torn final
// record is the expected crash artifact and is truncated on recovery;
// corruption earlier in the log also stops replay deterministically at the
// preceding boundary (the suffix is unrecoverable either way — the replica
// rejoins from the frontier it could prove).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

// Version is the current record format version. Decoders reject anything
// else outright — a frame is never misdecoded into the wrong shape.
// Version 2 added the record kind byte (assignment records) and the
// snapshot's outstanding-assignment table.
const Version = 2

// Record kinds. A commit record carries a released update (GSN, body,
// dup marker); an assign record carries only a durable assignment-table
// entry (GSN, request ID) — the promise a primary acknowledged to the
// sequencer before the commit was released. Assignment durability is what
// lets an AssignAck survive the acker's crash (DESIGN.md §14): a frontier
// is acknowledged only after every assignment at or below it is on media.
const (
	KindCommit byte = 0
	KindAssign byte = 1
)

// maxRecordBytes bounds one record/snapshot body; larger length prefixes
// indicate a corrupt or hostile log.
const maxRecordBytes = 64 << 20

var (
	// ErrCorrupt reports a record that failed structural validation: bad
	// version, bad checksum, truncated or trailing bytes inside the frame.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTorn reports an incomplete final frame — fewer bytes remain than
	// the record's own header promises, the signature of a crash mid-append.
	ErrTorn = errors.New("wal: torn record")
)

// Record is one log entry. A KindCommit record is one committed update as
// the replica's commit stream released it: the paired (GSN, body) plus the
// duplicate marker. A KindAssign record is a durable assignment-table
// entry: only GSN and ID are meaningful. Each kind's GSNs are strictly
// ascending in a log (commits advance the commit frontier by one, assigns
// the assignment frontier), which replay verifies.
type Record struct {
	Kind    byte
	GSN     uint64
	ID      consistency.RequestID
	Method  string
	Payload []byte
	// Dup marks a re-sequenced duplicate: it advances the commit frontier
	// but is not applied to the application (see replica commit dedup).
	Dup bool
}

// Assign is one durable assignment-table entry: a GSN promised to a
// request whose commit had not yet been released when it was persisted.
type Assign struct {
	GSN uint64
	ID  consistency.RequestID
}

// Snapshot is the compaction cell: the application state at a commit
// frontier plus the commit-dedup memo seed, mirroring what a StateUpdate
// carries on the wire.
type Snapshot struct {
	CSN       uint64
	App       []byte
	RecentIDs []consistency.RequestID
	// Assigns is the outstanding assignment table above CSN, contiguous
	// from it (Assigns[i].GSN == CSN+i+1). Compaction folds the log into
	// the cell atomically; without this table a snapshot would silently
	// drop the assign records above its CSN and regress the durable
	// assignment frontier behind an acknowledged one.
	Assigns []Assign
}

// Frame layout (shared by records and the snapshot cell):
//
//	uint32  length of what follows (big-endian, excludes these 4 bytes)
//	uint32  CRC32 (IEEE) of the body
//	body:
//	  byte  version (currently 2)
//	  byte  kind (records only)
//	  ...   fields, uvarint/length-prefixed as in tcpnet/wire.go

// AppendRecord appends one encoded record frame to b. Assign records carry
// only (GSN, ID); the body fields are commit-only.
func AppendRecord(b []byte, r *Record) []byte {
	b, start := beginFrame(b)
	b = append(b, Version, r.Kind)
	b = binary.AppendUvarint(b, r.GSN)
	b = appendString(b, string(r.ID.Client))
	b = binary.AppendUvarint(b, r.ID.Seq)
	if r.Kind == KindCommit {
		b = appendString(b, r.Method)
		b = appendBytes(b, r.Payload)
		b = appendBool(b, r.Dup)
	}
	return endFrame(b, start)
}

// AppendSnapshot appends one encoded snapshot frame to b.
func AppendSnapshot(b []byte, s *Snapshot) []byte {
	b, start := beginFrame(b)
	b = append(b, Version)
	b = binary.AppendUvarint(b, s.CSN)
	b = appendBytes(b, s.App)
	b = binary.AppendUvarint(b, uint64(len(s.RecentIDs)))
	for _, id := range s.RecentIDs {
		b = appendString(b, string(id.Client))
		b = binary.AppendUvarint(b, id.Seq)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Assigns)))
	for _, a := range s.Assigns {
		b = binary.AppendUvarint(b, a.GSN)
		b = appendString(b, string(a.ID.Client))
		b = binary.AppendUvarint(b, a.ID.Seq)
	}
	return endFrame(b, start)
}

// beginFrame reserves the length+CRC header and returns its offset.
func beginFrame(b []byte) ([]byte, int) {
	start := len(b)
	return append(b, 0, 0, 0, 0, 0, 0, 0, 0), start
}

// endFrame back-fills the length and CRC over the body written since start.
func endFrame(b []byte, start int) []byte {
	body := b[start+8:]
	binary.BigEndian.PutUint32(b[start:], uint32(len(body)+4))
	binary.BigEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(body))
	return b
}

// DecodeRecord decodes exactly one record frame from the front of b,
// returning the bytes it consumed. It never misdecodes: the result is
// either a record whose encoding occupies exactly n bytes of b, or an
// error (ErrTorn for an incomplete final frame, ErrCorrupt for anything
// structurally invalid).
func DecodeRecord(b []byte) (r Record, n int, err error) {
	body, n, err := frameBody(b)
	if err != nil {
		return Record{}, 0, err
	}
	d := decoder{b: body}
	if v := d.byte_(); v != Version {
		return Record{}, 0, fmt.Errorf("%w: record version %d", ErrCorrupt, v)
	}
	r.Kind = d.byte_()
	if d.err == nil && r.Kind != KindCommit && r.Kind != KindAssign {
		return Record{}, 0, fmt.Errorf("%w: record kind %d", ErrCorrupt, r.Kind)
	}
	r.GSN = d.uvarint()
	r.ID.Client = node.ID(d.str())
	r.ID.Seq = d.uvarint()
	if r.Kind == KindCommit {
		r.Method = d.str()
		r.Payload = d.bytes()
		r.Dup = d.bool_()
	}
	if d.err != nil || len(d.b) != 0 {
		return Record{}, 0, ErrCorrupt
	}
	return r, n, nil
}

// DecodeSnapshot decodes exactly one snapshot frame from the front of b.
// Error semantics match DecodeRecord.
func DecodeSnapshot(b []byte) (s Snapshot, n int, err error) {
	body, n, err := frameBody(b)
	if err != nil {
		return Snapshot{}, 0, err
	}
	d := decoder{b: body}
	if v := d.byte_(); v != Version {
		return Snapshot{}, 0, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, v)
	}
	s.CSN = d.uvarint()
	s.App = d.bytes()
	count := d.uvarint()
	if d.err == nil && count > uint64(len(d.b)) {
		// Each ID needs at least one byte; a larger count is corrupt (and
		// guarding here keeps a hostile count from driving a huge alloc).
		return Snapshot{}, 0, ErrCorrupt
	}
	if d.err == nil && count > 0 {
		s.RecentIDs = make([]consistency.RequestID, 0, count)
		for i := uint64(0); i < count; i++ {
			var id consistency.RequestID
			id.Client = node.ID(d.str())
			id.Seq = d.uvarint()
			s.RecentIDs = append(s.RecentIDs, id)
		}
	}
	acount := d.uvarint()
	if d.err == nil && acount > uint64(len(d.b))/3 {
		// Each assign needs at least three bytes (gsn, client length, seq).
		return Snapshot{}, 0, ErrCorrupt
	}
	if d.err == nil && acount > 0 {
		s.Assigns = make([]Assign, 0, acount)
		for i := uint64(0); i < acount; i++ {
			var a Assign
			a.GSN = d.uvarint()
			a.ID.Client = node.ID(d.str())
			a.ID.Seq = d.uvarint()
			s.Assigns = append(s.Assigns, a)
		}
	}
	if d.err != nil || len(d.b) != 0 {
		return Snapshot{}, 0, ErrCorrupt
	}
	return s, n, nil
}

// frameBody validates the frame header at the front of b and returns the
// checked body plus the total frame size.
func frameBody(b []byte) (body []byte, n int, err error) {
	if len(b) < 8 {
		return nil, 0, ErrTorn
	}
	length := binary.BigEndian.Uint32(b)
	if length < 5 || length > maxRecordBytes {
		return nil, 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	n = 4 + int(length)
	if len(b) < n {
		return nil, 0, ErrTorn
	}
	sum := binary.BigEndian.Uint32(b[4:])
	body = b[8:n]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body, n, nil
}

// Replay decodes a log image into records, stopping deterministically at
// the first invalid boundary. It returns the good prefix, the byte length
// of that prefix, and whether the remainder was a torn tail (ErrTorn) as
// opposed to a clean end or detected corruption. Replaying the returned
// prefix is a fixed point: re-encoding it reproduces exactly the first
// valid bytes of the log.
func Replay(log []byte, visit func(Record) error) (valid int, torn bool, err error) {
	off := 0
	for off < len(log) {
		r, n, derr := DecodeRecord(log[off:])
		if derr != nil {
			return off, errors.Is(derr, ErrTorn), nil
		}
		if visit != nil {
			if err := visit(r); err != nil {
				return off, false, err
			}
		}
		off += n
	}
	return off, false, nil
}

// Codec helpers mirroring tcpnet/wire.go's conventions.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// decoder is a fail-latching cursor over a frame body: the first parse
// error sticks and subsequent reads return zero values.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *decoder) byte_() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// str copies the bytes out: decoded records escape the read buffer.
func (d *decoder) str() string { return string(d.take(d.uvarint())) }

func (d *decoder) bytes() []byte {
	p := d.take(d.uvarint())
	if len(p) == 0 {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

func (d *decoder) bool_() bool {
	switch d.byte_() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail()
		return false
	}
}
