package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/qos"
	"aqua/internal/sim"
	"aqua/internal/stats"
	"aqua/internal/workload"
)

// ArrivalsResult is one row of the update-arrival-process ablation.
type ArrivalsResult struct {
	Process string
	Reads   int
	// FailureProb is the reader's observed timing-failure probability.
	FailureProb float64
	// AvgSelected is the reader's mean selection size.
	AvgSelected float64
	// MeanResponse is the reader's mean read response time.
	MeanResponse time.Duration
	Done         bool
}

// RunArrivals stresses the staleness model's Poisson assumption
// (Section 5.1.3): a writer drives updates through a Poisson process (the
// model's assumption) and through a bursty process of the same mean rate
// (its worst case); a measured reader with a tight staleness threshold
// reads periodically. The paper claims the approach extends beyond Poisson
// arrivals; the comparison quantifies the degradation.
func RunArrivals(seed int64, updates, reads int) []ArrivalsResult {
	if updates <= 0 {
		updates = 300
	}
	if reads <= 0 {
		reads = 300
	}
	const rate = 2.0 // updates per second, both processes

	type proc struct {
		name  string
		build func(done func()) workload.Driver
	}
	procs := []proc{
		{"poisson", func(done func()) workload.Driver {
			return workload.PoissonWrites(updates, "k", rate, done)
		}},
		{"bursty", func(done func()) workload.Driver {
			// Mean rate matched: bursts of 8 every 4s = 2/s.
			return workload.BurstyWrites(updates, "k", 8, 4*time.Second, done)
		}},
	}

	var out []ArrivalsResult
	for _, p := range procs {
		out = append(out, runArrivalsPoint(seed, p.name, p.build, reads))
	}
	return out
}

func runArrivalsPoint(seed int64, name string, build func(done func()) workload.Driver, reads int) ArrivalsResult {
	s := sim.NewScheduler(seed + int64(len(name)))
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{
		Min: 500 * time.Microsecond,
		Max: 2 * time.Millisecond,
	}))

	svc := core.ServiceConfig{
		Primaries:    5,
		Secondaries:  6,
		LazyInterval: 2 * time.Second,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, 100*time.Millisecond, 50*time.Millisecond, 0)
		},
	}

	doneCount := 0
	done := func() { doneCount++ }
	var responses []float64

	writer := core.ClientConfig{
		ID:      "writer",
		Spec:    qos.Spec{Staleness: 4, Deadline: 5 * time.Second, MinProb: 0.1},
		Methods: qos.NewMethods("Get", "Version"),
		Driver:  build(done),
	}
	reader := core.ClientConfig{
		ID:      "reader",
		Spec:    qos.Spec{Staleness: 2, Deadline: 140 * time.Millisecond, MinProb: 0.9},
		Methods: qos.NewMethods("Get", "Version"),
		Driver: workload.PeriodicReads(reads, "Get", []byte("k"), 400*time.Millisecond,
			func(r client.Result) { responses = append(responses, float64(r.ResponseTime)) },
			done),
	}

	d, err := core.Deploy(rt, svc, []core.ClientConfig{writer, reader})
	if err != nil {
		panic(fmt.Sprintf("experiment: arrivals deploy: %v", err))
	}
	rt.Start()
	for i := 0; i < 60 && doneCount < 2; i++ {
		s.RunFor(30 * time.Second)
	}
	s.RunFor(5 * time.Second)

	m := d.Clients["reader"].Metrics()
	res := ArrivalsResult{Process: name, Reads: m.Reads, Done: doneCount == 2}
	if m.Reads > 0 {
		res.FailureProb = float64(m.TimingFailures) / float64(m.Reads)
		res.AvgSelected = float64(m.SelectedTotal) / float64(m.Reads)
	}
	if len(responses) > 0 {
		res.MeanResponse = time.Duration(stats.Summarize(responses).Mean)
	}
	return res
}

// WriteArrivalsTable renders the arrival-process ablation.
func WriteArrivalsTable(w io.Writer, results []ArrivalsResult) {
	fmt.Fprintln(w, "Update arrivals — Poisson (model assumption) vs bursty (same mean rate)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %8s %12s %12s %14s %8s\n",
		"process", "reads", "failureProb", "avgSelected", "meanResp(ms)", "done")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %8d %12.3f %12.2f %14.1f %8v\n",
			r.Process, r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000, r.Done)
	}
}
