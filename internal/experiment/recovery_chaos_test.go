package experiment

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"aqua/internal/chaos"
	"aqua/internal/check"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/replica"
	"aqua/internal/sim"
	"aqua/internal/workload"

	"aqua/internal/app"
	"aqua/internal/apps"
)

// requireCleanReport fails the test with the full rendered report when any
// invariant verdict is violated.
func requireCleanReport(t *testing.T, name string, rep check.Report) {
	t.Helper()
	if !rep.OK() {
		var buf bytes.Buffer
		rep.Write(&buf)
		t.Fatalf("%s: invariant violations:\n%s", name, buf.Bytes())
	}
}

// recoveryVerdict returns the recovery-frontier verdict, asserting it sits
// at its pinned index (appended sixth; earlier indices are load-bearing for
// older tests).
func recoveryVerdict(t *testing.T, rep check.Report) check.Verdict {
	t.Helper()
	if len(rep.Verdicts) != 6 || rep.Verdicts[5].Invariant != "recovery-frontier" {
		t.Fatalf("verdict layout changed: %+v", rep.Verdicts)
	}
	return rep.Verdicts[5]
}

// TestRecoveryAdversarialSchedules is the durable-recovery acceptance
// suite: five hand-placed crash schedules, each stressing a different
// corner of the WAL + replicated-ordering design, all run with durability
// and majority-floor GSN ordering armed. Every run must satisfy all six
// invariants, actually recover at least one replica from its own media,
// and finish with application state byte-identical to a never-faulted
// reference run of the same configuration.
func TestRecoveryAdversarialSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos runs in -short mode")
	}

	base := ChaosConfig{
		Seed:             424242,
		Durable:          true,
		SnapshotEvery:    8, // small threshold: every run crosses several compactions
		ReplicatedAssign: true,
	}

	// The reference: identical config, empty schedule (non-nil, so no
	// faults are generated either).
	ref := base
	ref.Schedule = chaos.Schedule{}
	refRes := RunChaosPoint(ref)
	requireCleanReport(t, "reference", refRes.Report)
	if !refRes.Done {
		t.Fatalf("reference run did not finish: %d requests", refRes.Requests)
	}

	cases := []struct {
		name string
		// mutate tweaks the base config (batching knobs etc.).
		mutate func(*ChaosConfig)
		sched  chaos.Schedule
		// recovers lists replicas that must have replayed durable state.
		recovers []node.ID
	}{
		{
			// The sequencer batches assignments; the crash lands while a
			// window is open, so the victim's WAL ends mid-batch and replay
			// must resume exactly at the batch's released prefix.
			name: "crash-mid-batch",
			mutate: func(c *ChaosConfig) {
				c.AssignBatch = 32
				c.AssignBatchWindow = 15 * time.Millisecond
			},
			sched: chaos.Schedule{
				{At: 700 * time.Millisecond, Action: chaos.ActCrash, Target: "p01"},
				{At: 1400 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "p01"},
			},
			recovers: []node.ID{"p01"},
		},
		{
			// Dense traffic makes it near-certain the crash lands between a
			// commit's durable append and the client observing its ack: the
			// client retries into the recovered incarnation, whose replayed
			// dedup memo must suppress the duplicate instead of re-applying.
			name: "crash-between-append-and-ack",
			mutate: func(c *ChaosConfig) {
				c.Clients = 4
				c.RequestDelay = 10 * time.Millisecond
			},
			sched: chaos.Schedule{
				{At: 500 * time.Millisecond, Action: chaos.ActCrash, Target: "p02"},
				{At: 600 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "p02"},
			},
			recovers: []node.ID{"p02"},
		},
		{
			// The second crash lands 20ms after the recovering restart —
			// enough virtual time for Init's synchronous replay plus a few
			// fresh appends — so the final incarnation recovers from media
			// that a recovered incarnation already extended.
			name: "double-crash-during-replay",
			sched: chaos.Schedule{
				{At: 600 * time.Millisecond, Action: chaos.ActCrash, Target: "s01"},
				{At: 900 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "s01"},
				{At: 920 * time.Millisecond, Action: chaos.ActCrash, Target: "s01"},
				{At: 1300 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "s01"},
			},
			recovers: []node.ID{"s01"},
		},
		{
			// The kill lands on a lazy-interval boundary (LUI defaults to
			// 250ms), when secondaries are installing StateUpdate snapshots:
			// takeover, the snapshot installs' WAL cells, and the recovered
			// leader's re-join all overlap.
			name: "sequencer-kill-during-snapshot-install",
			sched: chaos.Schedule{
				{At: 1000 * time.Millisecond, Action: chaos.ActCrash, Target: "p00"},
				{At: 1750 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "p00"},
			},
			recovers: []node.ID{"p00"},
		},
		{
			// The replica recovers while still partitioned from the whole
			// service: replay must stand it at its durable frontier with no
			// peer reachable, and the post-heal catch-up must never pull
			// state below that frontier.
			name: "restart-into-active-partition",
			sched: chaos.Schedule{
				{At: 500 * time.Millisecond, Action: chaos.ActPartition, Name: "part00",
					SideA: []node.ID{"p00", "p01", "p02", "p03", "s00", "s01", "s04", "c00", "c01"},
					SideB: []node.ID{"s02", "s03"}},
				{At: 700 * time.Millisecond, Action: chaos.ActCrash, Target: "s02"},
				{At: 900 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "s02"},
				{At: 1600 * time.Millisecond, Action: chaos.ActHeal, Name: "part00"},
			},
			recovers: []node.ID{"s02"},
		},
		{
			// A follower crash-recovers first, then the sequencer dies: the
			// takeover's majority must count the recovered incarnation, and
			// the assignments it acked before its own crash must reach the
			// new leader through its durable GSNReport — the end-to-end path
			// for the durable-ack rule.
			name: "follower-recover-then-sequencer-kill",
			sched: chaos.Schedule{
				{At: 600 * time.Millisecond, Action: chaos.ActCrash, Target: "p02"},
				{At: 1000 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "p02"},
				{At: 1400 * time.Millisecond, Action: chaos.ActCrash, Target: "p00"},
				{At: 2200 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "p00"},
			},
			recovers: []node.ID{"p02", "p00"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Schedule = tc.sched
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			res := RunChaosPoint(cfg)
			if !res.Done {
				t.Fatalf("clients did not finish: %d requests, %d failed", res.Requests, res.Failed)
			}
			requireCleanReport(t, tc.name, res.Report)
			if v := recoveryVerdict(t, res.Report); v.Checked == 0 {
				t.Error("recovery-frontier oracle performed no checks")
			}
			for _, id := range tc.recovers {
				if res.Recovered[id] == 0 {
					t.Errorf("%s never recovered from its durable media", id)
				}
			}
			// Same clients, same per-client keys, last write wins: the
			// converged application state is schedule-independent. Any
			// divergence from the never-faulted reference means recovery
			// lost, duplicated, or reordered a committed update. (The
			// batching/clients variants change traffic, not final state.)
			if cfg.Clients == 0 || cfg.Clients == base.Clients {
				for id, want := range refRes.AppStates {
					if got, ok := res.AppStates[id]; !ok || !bytes.Equal(got, want) {
						t.Errorf("%s final state diverged from the never-faulted reference", id)
					}
				}
			}
		})
	}
}

// TestRecoveryGeneratedSchedulePasses runs the random generator with
// recovery restarts swapped in for every restart: whatever crash placement
// it emits, all six invariants must hold and at least one replica must
// have actually replayed durable state.
func TestRecoveryGeneratedSchedulePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos runs in -short mode")
	}
	for _, seed := range []int64{19, 73} {
		cfg := ChaosConfig{
			Seed:             seed,
			Requests:         60,
			Durable:          true,
			SnapshotEvery:    8,
			ReplicatedAssign: true,
			Faults: chaos.GenConfig{
				Crashes: 3, Partitions: 1, LinkFaults: 2,
				SequencerKill: true, RecoverRestarts: true,
			},
		}
		res := RunChaosPoint(cfg)
		if len(res.Schedule) == 0 {
			t.Fatalf("seed %d: generator produced an empty schedule", seed)
		}
		requireCleanReport(t, fmt.Sprintf("seed %d", seed), res.Report)
		if len(res.Recovered) == 0 {
			t.Errorf("seed %d: no replica recovered durable state", seed)
		}
	}
}

// TestRecoveryChaosSweepParallelismInvariant mirrors the PR-5 determinism
// pin for the durable configuration: same seeds, same oracle traces and
// verdicts, whether the sweep runs sequentially or fanned across workers.
// Under -race in CI this also checks durability shares nothing across runs.
func TestRecoveryChaosSweepParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	base := ChaosConfig{
		Requests:         40,
		Durable:          true,
		SnapshotEvery:    8,
		ReplicatedAssign: true,
		Faults: chaos.GenConfig{
			Crashes: 2, Partitions: 1, LinkFaults: 2,
			SequencerKill: true, RecoverRestarts: true,
		},
	}
	seeds := []int64{4, 5, 6}

	render := func(results []ChaosResult) []byte {
		var buf bytes.Buffer
		WriteChaosTable(&buf, results)
		for i := range results {
			buf.Write(results[i].Trace)
		}
		return buf.Bytes()
	}

	defer SetParallelism(1)
	var want []byte
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		SetParallelism(par)
		got := render(RunChaosSweep(base, seeds))
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("parallelism %d changed recovery chaos traces or verdicts", par)
		}
	}
}

// TestRecoveryOracleCatchesDropTail proves the recovery-frontier oracle
// can actually fail: a planted WAL bug silently drops the last records of
// the log during replay, so the replica recovers below its pre-crash
// frontier — exactly the durable-history loss the oracle exists to flag.
func TestRecoveryOracleCatchesDropTail(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run in -short mode")
	}
	cfg := ChaosConfig{
		Seed:    99,
		Durable: true,
		// No compaction before the crash: the whole history sits in the
		// log, so dropping its tail certainly loses applied commits.
		SnapshotEvery: 100000,
		Schedule: chaos.Schedule{
			{At: 2 * time.Second, Action: chaos.ActCrash, Target: "p01"},
			{At: 2500 * time.Millisecond, Action: chaos.ActRestartRecover, Target: "p01"},
		},
		MutateFresh: func(id node.ID, gw *replica.Gateway) {
			if id == "p01" {
				gw.DurableStore().EnableDropTailFault(3)
			}
		},
	}
	res := RunChaosPoint(cfg)
	if res.Recovered["p01"] == 0 {
		t.Fatal("p01 never recovered — the planted bug was not exercised")
	}
	v := recoveryVerdict(t, res.Report)
	if v.OK() {
		var buf bytes.Buffer
		res.Report.Write(&buf)
		t.Fatalf("planted drop-tail bug was not caught by the recovery-frontier oracle:\n%s", buf.Bytes())
	}
}

// TestSeqKillOpenLoopZeroHoles is the replicated-ordering acceptance test:
// under open-loop load with majority-floor GSN ordering armed, killing the
// sequencer mid-run must leave no assignment holes — every replica's
// applied stream stays gap-free through the takeover, judged by the
// sequential-consistency oracle over the full trace.
func TestSeqKillOpenLoopZeroHoles(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop chaos run in -short mode")
	}
	s := sim.NewScheduler(31337)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{
		Min: 200 * time.Microsecond,
		Max: time.Millisecond,
	}))
	rec := check.NewRecorder(sim.Epoch, s.Now)

	svc := core.ServiceConfig{
		Primaries:        3, // sequencer + 2 serving
		Secondaries:      2,
		LazyInterval:     100 * time.Millisecond,
		Group:            group.DefaultConfig(),
		NewApp:           func() app.Application { return apps.NewKVStore() },
		ReplicatedAssign: true,
		OnApply:          rec.Apply,
		OnServeRead:      rec.ServeRead,
		OnRestore:        rec.Restore,
	}
	d, err := core.Deploy(rt, svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := workload.NewEngine(workload.EngineConfig{
		Service:      d.Info,
		Clients:      200,
		Arrivals:     workload.Poisson{Rate: 400},
		ReadFraction: 0.5,
		Deadline:     50 * time.Millisecond,
	})
	rt.Register("load", eng)
	rt.Start()

	// One second of steady load, then the kill; no restart — takeover
	// alone must close the ordering pipeline's open window.
	s.RunFor(time.Second)
	preKill := eng.Metrics().UpdatesDone
	rt.Crash(d.Sequencer)
	rec.Crash(d.Sequencer)
	s.RunFor(3 * time.Second)

	if m := eng.Metrics(); m.UpdatesDone <= preKill {
		t.Fatalf("no updates committed after the sequencer kill (before=%d after=%d)",
			preKill, m.UpdatesDone)
	}
	rep := check.Run(rec.Events())
	requireCleanReport(t, "seq-kill-open-loop", rep)
	seq := rep.Verdicts[0]
	if seq.Invariant != "sequential-consistency" || seq.Checked == 0 {
		t.Fatalf("sequential-consistency oracle did not run: %+v", seq)
	}
	var floors uint64
	for _, id := range d.PrimaryGroup {
		g := d.Replicas[id]
		if g.IsLeader() {
			floors += g.OrderCommits()
		}
	}
	if floors == 0 {
		t.Error("no OrderCommit floors were ever broadcast — replicated ordering never engaged")
	}
}

// TestFig4DurabilityByteIdentical pins the compatibility contract of the
// durable layer: with the WAL + snapshot store armed on every replica but
// no recovery faults injected, the Fig4 paper tables must be byte-for-byte
// identical to a run without durability. The in-memory media is synchronous
// — no scheduler events, no rand draws — so merely logging must not perturb
// virtual-time execution.
func TestFig4DurabilityByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep in -short mode")
	}
	render := func(durable bool) []byte {
		var results []Fig4Result
		for _, deadline := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
			results = append(results, RunFig4Point(Fig4Config{
				Seed:          77,
				Deadline:      deadline,
				MinProb:       0.05,
				Requests:      60,
				RequestDelay:  100 * time.Millisecond,
				Durable:       durable,
				SnapshotEvery: 8,
			}))
		}
		var buf bytes.Buffer
		WriteFig4aTable(&buf, results)
		WriteFig4bTable(&buf, results)
		return buf.Bytes()
	}

	plain := render(false)
	durable := render(true)
	if !bytes.Equal(plain, durable) {
		t.Fatalf("durability perturbed the paper tables:\n--- plain ---\n%s\n--- durable ---\n%s",
			plain, durable)
	}
}
