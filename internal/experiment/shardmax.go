package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/shard"
	"aqua/internal/sim"
	"aqua/internal/workload"
)

// ShardmaxConfig parameterizes the scale-out sweep: the loadmax open-loop
// ramp repeated at increasing shard counts, with the keyspace partitioned
// uniformly across independent sequencer/publisher deployments. Every shard
// count runs the identical ramp (same rates, same batching config), so the
// peak-sustained-throughput ratio between N shards and 1 isolates the
// scale-out win. The sequencer pipeline cost is tuned so a single ordering
// pipeline saturates inside the ramp — sharding moves the ceiling because
// each shard brings its own pipeline, not because any one gets faster.
type ShardmaxConfig struct {
	Seed int64

	// Shards is the ladder of shard counts to sweep (default 1, 2, 4).
	Shards []int
	// Keys is the partitioned keyspace size (default 4096); requests draw
	// keys uniformly so shards see balanced load.
	Keys int

	// Primaries counts serving primaries per shard (the sequencer is
	// extra); Secondaries the secondary group per shard. Defaults 3 and 2.
	Primaries   int
	Secondaries int
	// LUI is the lazy update interval (default 100ms).
	LUI time.Duration

	// Clients is the simulated open-loop population (default 10000).
	Clients int
	// ReadFraction is the read share of the offered stream (default 0.5).
	ReadFraction float64
	// Staleness is the read staleness bound a (default 0: sequential).
	Staleness int

	// Deadline, P99Bound, MaxFailureRate are the sustained-rate criteria,
	// as in loadmax (defaults 25ms, = Deadline, 0.01).
	Deadline       time.Duration
	P99Bound       time.Duration
	MaxFailureRate float64

	// Rates is the offered-rate ramp in requests/second (default a
	// geometric ×2 ladder 16000..256000 — high enough that one sequencer
	// pipeline saturates well before the top).
	Rates []float64
	// Warmup elapses before each step's measurement window; the window
	// lasts StepDuration (defaults 500ms and 2s). Steps are share-nothing.
	Warmup       time.Duration
	StepDuration time.Duration

	// SeqCostBase/SeqCostPerReq model each shard's sequencer ordering
	// pipeline (defaults 150µs + 8µs/request — per-request cost above the
	// loadmax default so saturation arrives inside the default ramp).
	SeqCostBase   time.Duration
	SeqCostPerReq time.Duration
	// AssignBatch/AssignBatchWindow configure batched GSN assignment,
	// always on in this sweep (defaults 256 requests / 1ms window):
	// shardmax measures scale-out beyond what batching alone buys.
	AssignBatch       int
	AssignBatchWindow time.Duration
}

func (c *ShardmaxConfig) setDefaults() {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4}
	}
	if c.Keys == 0 {
		c.Keys = 4096
	}
	if c.Primaries == 0 {
		c.Primaries = 3
	}
	if c.Secondaries == 0 {
		c.Secondaries = 2
	}
	if c.LUI == 0 {
		c.LUI = 100 * time.Millisecond
	}
	if c.Clients == 0 {
		c.Clients = 10000
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.Deadline == 0 {
		c.Deadline = 25 * time.Millisecond
	}
	if c.P99Bound == 0 {
		c.P99Bound = c.Deadline
	}
	if c.MaxFailureRate == 0 {
		c.MaxFailureRate = 0.01
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{16000, 32000, 64000, 128000, 256000}
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.StepDuration == 0 {
		c.StepDuration = 2 * time.Second
	}
	if c.SeqCostBase == 0 {
		c.SeqCostBase = 150 * time.Microsecond
	}
	if c.SeqCostPerReq == 0 {
		c.SeqCostPerReq = 8 * time.Microsecond
	}
	if c.AssignBatch == 0 {
		c.AssignBatch = 256
	}
	if c.AssignBatchWindow == 0 {
		c.AssignBatchWindow = time.Millisecond
	}
}

// ShardmaxPoint is one measured step: one shard count at one offered rate.
type ShardmaxPoint struct {
	Shards      int     `json:"shards"`
	OfferedRate float64 `json:"offered_rate"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Expired   uint64 `json:"expired"`

	UpdatesPerSec float64 `json:"updates_per_sec"`
	ReadsPerSec   float64 `json:"reads_per_sec"`

	ReadP50MS   float64 `json:"read_p50_ms"`
	ReadP99MS   float64 `json:"read_p99_ms"`
	UpdateP99MS float64 `json:"update_p99_ms"`
	FailureRate float64 `json:"failure_rate"`

	// PerShardCompleted is the whole-run completion count per shard — the
	// balance evidence that the partition actually spreads the load.
	PerShardCompleted []uint64 `json:"per_shard_completed"`

	Sustained bool `json:"sustained"`
}

// ShardmaxResult is one shard count's full ramp with its peak.
type ShardmaxResult struct {
	Shards int             `json:"shards"`
	Points []ShardmaxPoint `json:"points"`

	// Peak* report the highest sustained offered rate and its completed
	// throughput split; SpeedupUpdates is this shard count's peak sustained
	// updates/sec over the 1-shard result's (1.0 for the 1-shard row, 0 if
	// no baseline peak).
	PeakRate          float64 `json:"peak_rate"`
	PeakUpdatesPerSec float64 `json:"peak_updates_per_sec"`
	PeakReadsPerSec   float64 `json:"peak_reads_per_sec"`
	SpeedupUpdates    float64 `json:"speedup_updates"`
	SpeedupRate       float64 `json:"speedup_rate"`
}

// ShardmaxReport is the full sweep across shard counts.
type ShardmaxReport struct {
	Config  ShardmaxConfig   `json:"config"`
	Results []ShardmaxResult `json:"results"`
}

// shardmaxStep is one share-nothing unit of work for the sweep pool.
type shardmaxStep struct {
	cfg    ShardmaxConfig
	shards int
	rate   float64
}

// RunShardmaxPoint executes one step: deploy shards sharing one scheduler,
// offer the rate through the engine's multi-shard mode, measure one window.
// The engine runs in multi-shard mode even at shards == 1 so every point of
// the sweep exercises the identical request path; the N=1 pin test holds
// that path byte-identical to a plain unsharded deployment.
func RunShardmaxPoint(cfg ShardmaxConfig, shards int, rate float64) ShardmaxPoint {
	cfg.setDefaults()

	s := sim.NewScheduler(cfg.Seed + int64(rate) + 1_000_003*int64(shards))
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{
		Min: 200 * time.Microsecond,
		Max: time.Millisecond,
	}))

	svc := core.ServiceConfig{
		Primaries:         cfg.Primaries + 1, // + sequencer
		Secondaries:       cfg.Secondaries,
		LazyInterval:      cfg.LUI,
		Group:             group.DefaultConfig(),
		NewApp:            func() app.Application { return apps.NewKVStore() },
		SeqCostBase:       cfg.SeqCostBase,
		SeqCostPerReq:     cfg.SeqCostPerReq,
		AssignBatch:       cfg.AssignBatch,
		AssignBatchWindow: cfg.AssignBatchWindow,
		FastReads:         true,
	}
	sd, err := core.DeployShards(rt, svc, shards, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: shardmax deploy: %v", err)) // static config bug
	}
	m := shard.NewUniform(shards)
	eng := workload.NewEngine(workload.EngineConfig{
		Shards:       sd.Infos,
		ShardOf:      m.Owner,
		Keys:         &workload.UniformKeys{N: cfg.Keys},
		Clients:      cfg.Clients,
		Arrivals:     workload.Poisson{Rate: rate},
		ReadFraction: cfg.ReadFraction,
		Staleness:    cfg.Staleness,
		Deadline:     cfg.Deadline,
	})
	rt.Register("load", eng)
	rt.Start()

	s.RunFor(cfg.Warmup)
	before := eng.Metrics()
	s.RunFor(cfg.StepDuration)
	w := eng.Metrics().Sub(before)

	secs := cfg.StepDuration.Seconds()
	p := ShardmaxPoint{
		Shards:        shards,
		OfferedRate:   rate,
		Issued:        w.Issued,
		Completed:     w.Completed,
		Shed:          w.Shed,
		Expired:       w.Expired,
		UpdatesPerSec: float64(w.UpdatesDone) / secs,
		ReadsPerSec:   float64(w.ReadsDone) / secs,
		ReadP50MS:     durMS(w.ReadLatency.Quantile(0.50)),
		ReadP99MS:     durMS(w.ReadLatency.Quantile(0.99)),
		UpdateP99MS:   durMS(w.UpdateLatency.Quantile(0.99)),
	}
	_, p.PerShardCompleted = eng.ShardCounts()
	if denom := w.ReadsDone + w.Expired; denom > 0 {
		p.FailureRate = float64(w.TimingFailures) / float64(denom)
	}
	p.Sustained = w.Shed == 0 &&
		p.FailureRate <= cfg.MaxFailureRate &&
		p.ReadP99MS <= durMS(cfg.P99Bound) &&
		w.ReadsDone > 0 && w.UpdatesDone > 0
	return p
}

// collectShardmax folds one shard count's points into a result.
func collectShardmax(shards int, points []ShardmaxPoint) ShardmaxResult {
	res := ShardmaxResult{Shards: shards, Points: points}
	for _, p := range points {
		if p.Sustained && p.OfferedRate > res.PeakRate {
			res.PeakRate = p.OfferedRate
			res.PeakUpdatesPerSec = p.UpdatesPerSec
			res.PeakReadsPerSec = p.ReadsPerSec
		}
	}
	return res
}

// RunShardmax runs the full sweep — every shard count × every rate fans
// across the package worker pool — and reports per-shard-count peaks with
// speedups relative to the 1-shard (or lowest) ladder entry.
func RunShardmax(cfg ShardmaxConfig) ShardmaxReport {
	cfg.setDefaults()
	steps := make([]shardmaxStep, 0, len(cfg.Shards)*len(cfg.Rates))
	for _, n := range cfg.Shards {
		for _, r := range cfg.Rates {
			steps = append(steps, shardmaxStep{cfg: cfg, shards: n, rate: r})
		}
	}
	points := runPoints(steps, func(st shardmaxStep) ShardmaxPoint {
		return RunShardmaxPoint(st.cfg, st.shards, st.rate)
	})
	rep := ShardmaxReport{Config: cfg}
	nr := len(cfg.Rates)
	for i, n := range cfg.Shards {
		rep.Results = append(rep.Results, collectShardmax(n, points[i*nr:(i+1)*nr]))
	}
	base := rep.Results[0]
	for i := range rep.Results {
		if base.PeakUpdatesPerSec > 0 {
			rep.Results[i].SpeedupUpdates = rep.Results[i].PeakUpdatesPerSec / base.PeakUpdatesPerSec
		}
		if base.PeakRate > 0 {
			rep.Results[i].SpeedupRate = rep.Results[i].PeakRate / base.PeakRate
		}
	}
	return rep
}

// WriteShardmaxTable renders the sweep, one ramp per shard count.
func WriteShardmaxTable(w io.Writer, rep ShardmaxReport) {
	fmt.Fprintln(w, "Shardmax — peak sustained throughput vs shard count (batched GSN assignment)")
	fmt.Fprintf(w, "(bounds: read p99 <= %.1fms, failure rate <= %.3f, no shed)\n\n",
		durMS(rep.Config.P99Bound), rep.Config.MaxFailureRate)
	for _, res := range rep.Results {
		fmt.Fprintf(w, "%d shard(s)\n", res.Shards)
		fmt.Fprintf(w, "%-12s %10s %10s %8s %10s %10s %10s %5s\n",
			"offered/s", "upd/s", "reads/s", "shed", "p50(ms)", "p99(ms)", "failRate", "ok")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%-12.0f %10.0f %10.0f %8d %10.2f %10.2f %10.4f %5v\n",
				p.OfferedRate, p.UpdatesPerSec, p.ReadsPerSec, p.Shed,
				p.ReadP50MS, p.ReadP99MS, p.FailureRate, p.Sustained)
		}
		fmt.Fprintf(w, "peak: %.0f offered/s (%.0f upd/s, %.0f reads/s), speedup %.2fx updates, %.2fx rate\n\n",
			res.PeakRate, res.PeakUpdatesPerSec, res.PeakReadsPerSec,
			res.SpeedupUpdates, res.SpeedupRate)
	}
}

// WriteShardmaxJSON writes the report as indented JSON (BENCH_shardmax.json).
func WriteShardmaxJSON(w io.Writer, rep ShardmaxReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string `json:"experiment"`
		ShardmaxReport
	}{Experiment: "shardmax", ShardmaxReport: rep})
}
