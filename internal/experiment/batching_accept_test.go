package experiment

import (
	"bytes"
	"testing"
	"time"

	"aqua/internal/chaos"
	"aqua/internal/node"
)

// TestFig4BatchKnobByteIdentical pins the compatibility contract of the
// batched sequencer: AssignBatch=1 must take the legacy per-request
// assignment path, rendering the Fig4 tables byte-for-byte identical to a
// run with the knob absent, across a sweep of deadlines. Any divergence
// means the batching plumbing perturbs the paper figures even when off.
func TestFig4BatchKnobByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep in -short mode")
	}
	render := func(assignBatch int, window time.Duration) []byte {
		var results []Fig4Result
		for _, deadline := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
			results = append(results, RunFig4Point(Fig4Config{
				Seed:              77,
				Deadline:          deadline,
				MinProb:           0.05,
				Requests:          60,
				RequestDelay:      100 * time.Millisecond,
				AssignBatch:       assignBatch,
				AssignBatchWindow: window,
			}))
		}
		var buf bytes.Buffer
		WriteFig4aTable(&buf, results)
		WriteFig4bTable(&buf, results)
		return buf.Bytes()
	}

	legacy := render(0, 0)
	batchOne := render(1, time.Millisecond)
	if !bytes.Equal(legacy, batchOne) {
		t.Fatalf("AssignBatch=1 diverged from the pre-batching path:\n--- legacy ---\n%s\n--- batch=1 ---\n%s",
			legacy, batchOne)
	}
}

// TestChaosBatchingFastPathAcceptance runs the full oracle suite with
// batched GSN assignment and the frontier-read fast path armed, under a
// schedule that kills the sequencer while traffic keeps its assign batches
// populated — so the kill lands mid-batch and takeover must not lose or
// reorder the buffered window.
func TestChaosBatchingFastPathAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run in -short mode")
	}
	cfg := ChaosConfig{
		Seed:         2025,
		Clients:      4,
		Requests:     80,
		RequestDelay: 10 * time.Millisecond,
		ServiceMean:  -1, // no service delay: required by the fast path
		AssignBatch:  64,
		// A window much longer than the inter-arrival gap keeps a partially
		// filled batch pending at the sequencer almost continuously, so the
		// 400ms kill lands mid-batch rather than between flushes.
		AssignBatchWindow: 20 * time.Millisecond,
		FastReads:         true,
		Schedule: chaos.Schedule{
			{At: 400 * time.Millisecond, Action: chaos.ActCrash, Target: "p00"},
			{At: 900 * time.Millisecond, Action: chaos.ActRestart, Target: "p00"},
			{At: 1400 * time.Millisecond, Action: chaos.ActPartition, Name: "part00",
				SideA: []node.ID{"p00", "p01", "p02", "p03", "s00", "s01", "s04", "c00", "c01", "c02", "c03"},
				SideB: []node.ID{"s02", "s03"}},
			{At: 2 * time.Second, Action: chaos.ActHeal, Name: "part00"},
		},
	}
	res := RunChaosPoint(cfg)
	if !res.Done {
		t.Fatalf("clients did not finish: %d requests completed, %d failed", res.Requests, res.Failed)
	}
	if !res.Report.OK() {
		var buf bytes.Buffer
		res.Report.Write(&buf)
		t.Fatalf("invariant violations with batching + fast path:\n%s", buf.Bytes())
	}
	for _, v := range res.Report.Verdicts {
		switch v.Invariant {
		case "sequential-consistency", "csn-monotonicity", "staleness-bound", "read-your-writes":
			if v.Checked == 0 {
				t.Errorf("invariant %s performed no checks", v.Invariant)
			}
		}
	}
	if res.FastServed == 0 {
		t.Error("fast path armed but no read was served through it")
	}
}

// TestChaosBatchingGeneratedSweep fans generated fault schedules (including
// sequencer kills) over seeds with batching and the fast path on: every
// seed must satisfy all oracles.
func TestChaosBatchingGeneratedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	base := ChaosConfig{
		Requests:          40,
		ServiceMean:       -1,
		AssignBatch:       8,
		AssignBatchWindow: 2 * time.Millisecond,
		FastReads:         true,
		Faults:            chaos.GenConfig{Crashes: 2, Partitions: 1, LinkFaults: 2, SequencerKill: true},
	}
	for _, res := range RunChaosSweep(base, []int64{1, 2, 3}) {
		if !res.Report.OK() {
			var buf bytes.Buffer
			res.Report.Write(&buf)
			t.Errorf("seed %d violated invariants under batching:\n%s", res.Seed, buf.Bytes())
		}
		if !res.Done {
			t.Errorf("seed %d: clients did not finish (%d completed, %d failed)", res.Seed, res.Requests, res.Failed)
		}
	}
}
