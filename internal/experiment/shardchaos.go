package experiment

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/chaos"
	"aqua/internal/check"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/shard"
	"aqua/internal/sim"
)

// ShardChaosConfig parameterizes the sharded chaos scenario: N shards on one
// runtime, each with its own recorder and oracle trace; per-shard pinned
// clients driving traffic through shard routers; one shard's sequencer
// killed and restarted mid-run; and a live shard split (range move)
// re-homing a key while the source shard is still recovering. The scenario's
// claims: every shard's protocol invariants hold independently, the
// unaffected shards keep completing requests during the outage, and the
// moved key preserves read-your-writes across its re-homing.
type ShardChaosConfig struct {
	Seed int64

	// Shards counts deployments (default 2; the kill targets shard 0 and
	// the split moves a key from shard 0 to shard 1).
	Shards int
	// Primaries counts serving primaries per shard (the sequencer is
	// extra); Secondaries the per-shard secondary group. Defaults 3 and 2.
	Primaries   int
	Secondaries int
	// LUI is the lazy update interval (default 250ms).
	LUI time.Duration

	// Requests per pinned client (default 60), alternating Set/Get with
	// RequestDelay think time (default 20ms). Two pinned clients per shard:
	// one strict (a=0), one loose (a=2), so the per-shard traces exercise
	// primaries, secondaries, and deferral.
	Requests     int
	RequestDelay time.Duration

	// KillAt/RestartAt bound shard 0's sequencer outage (defaults 400ms
	// and 900ms). MoveAt starts the live split (default 600ms — inside the
	// outage, so the copy's source reads must ride out the failover).
	KillAt    time.Duration
	RestartAt time.Duration
	MoveAt    time.Duration
}

func (c *ShardChaosConfig) setDefaults() {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Primaries == 0 {
		c.Primaries = 3
	}
	if c.Secondaries == 0 {
		c.Secondaries = 2
	}
	if c.LUI == 0 {
		c.LUI = 250 * time.Millisecond
	}
	if c.Requests == 0 {
		c.Requests = 60
	}
	if c.RequestDelay == 0 {
		c.RequestDelay = 20 * time.Millisecond
	}
	if c.KillAt == 0 {
		c.KillAt = 400 * time.Millisecond
	}
	if c.RestartAt == 0 {
		c.RestartAt = 900 * time.Millisecond
	}
	if c.MoveAt == 0 {
		c.MoveAt = 600 * time.Millisecond
	}
}

// ShardChaosResult is the scenario's verdicts, one oracle report per shard.
type ShardChaosResult struct {
	Reports []check.Report
	Traces  [][]byte

	// Requests/Failed/Done aggregate the pinned clients' closed loops.
	Requests int
	Failed   int
	Done     bool

	// OutageCompletions counts completions by clients pinned to shards
	// other than 0 inside the [KillAt, RestartAt] window — nonzero proves
	// the kill did not stall the rest of the fleet.
	OutageCompletions int

	// MoveInstalled/MoveValue/MoveOwner report the live split: whether the
	// migration installed, what the post-move read observed, and which
	// shard served it.
	MoveInstalled bool
	MoveValue     string
	MoveOwner     int
}

// shardChaosObs fans injector fault notifications to the owning shard's
// recorder, so each per-shard trace carries exactly its own faults.
type shardChaosObs struct {
	sd   *core.ShardedDeployment
	recs []*check.Recorder
}

func (o *shardChaosObs) Crash(id node.ID) {
	if i := o.sd.Owner(id); i >= 0 {
		o.recs[i].Crash(id)
	}
}
func (o *shardChaosObs) Restart(id node.ID) {
	if i := o.sd.Owner(id); i >= 0 {
		o.recs[i].Restart(id)
	}
}
func (o *shardChaosObs) Fault(note string) {
	for _, r := range o.recs {
		r.Fault(note)
	}
}

// keyOwnedBy scans for a key the map homes on the given shard, skipping any
// listed hash positions (so the split's single-position range stays private
// to the migration key).
func keyOwnedBy(m *shard.Map, owner int, tag string, avoid map[uint32]bool) string {
	for j := 0; j < 100000; j++ {
		k := fmt.Sprintf("%s%d", tag, j)
		h := shard.Hash(k)
		if m.OwnerOf(h) == owner && !avoid[h] {
			return k
		}
	}
	panic("experiment: no key found for shard " + fmt.Sprint(owner))
}

// WriteShardChaosTable renders one scenario run: per-shard invariant
// verdicts, the pinned clients' closed-loop outcome, the unaffected shards'
// liveness through the outage, and the live split's result.
func WriteShardChaosTable(w io.Writer, cfg ShardChaosConfig, res ShardChaosResult) {
	cfg.setDefaults()
	fmt.Fprintf(w, "Sharded chaos — %d shards; shard 0 sequencer down %v–%v; split at %v (seed %d)\n",
		cfg.Shards, cfg.KillAt, cfg.RestartAt, cfg.MoveAt, cfg.Seed)
	fmt.Fprintf(w, "  %-5s  %-26s  %7s  %8s  %s\n", "shard", "invariant", "checked", "failures", "verdict")
	for i := range res.Reports {
		for _, v := range res.Reports[i].Verdicts {
			verdict := "ok"
			if !v.OK() {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "  %-5d  %-26s  %7d  %8d  %s\n", i, v.Invariant, v.Checked, v.Failures, verdict)
		}
	}
	fmt.Fprintf(w, "  pinned loops: done=%v, %d requests, %d failed\n", res.Done, res.Requests, res.Failed)
	fmt.Fprintf(w, "  liveness: %d completions on other shards during shard 0's outage\n", res.OutageCompletions)
	fmt.Fprintf(w, "  split: installed=%v, post-move read %q served by shard %d\n",
		res.MoveInstalled, res.MoveValue, res.MoveOwner)
}

// RunShardChaosPoint executes the scenario and returns per-shard verdicts.
func RunShardChaosPoint(cfg ShardChaosConfig) ShardChaosResult {
	cfg.setDefaults()

	s := sim.NewScheduler(cfg.Seed)
	faults := chaos.NewNetFaults(netsim.UniformDelay{
		Min: 500 * time.Microsecond,
		Max: 2 * time.Millisecond,
	}, netsim.NoLoss{})
	rt := sim.NewRuntime(s, sim.WithDelay(faults), sim.WithLoss(faults))

	recs := make([]*check.Recorder, cfg.Shards)
	// Every router host — two pinned clients per shard plus the migration
	// client — must be known to the replicas as a client, or failover
	// announcements never reach it.
	var clientIDs []node.ID
	for i := 0; i < 2*cfg.Shards; i++ {
		clientIDs = append(clientIDs, node.ID(fmt.Sprintf("c%02d", i)))
	}
	clientIDs = append(clientIDs, "m00")
	svc := core.ServiceConfig{
		Primaries:    cfg.Primaries + 1, // + sequencer
		Secondaries:  cfg.Secondaries,
		LazyInterval: cfg.LUI,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
		ExtraClients: clientIDs,
	}
	sd, err := core.DeployShards(rt, svc, cfg.Shards, func(i int, s2 *core.ServiceConfig) {
		rec := check.NewRecorder(sim.Epoch, s.Now)
		recs[i] = rec
		s2.OnApply = rec.Apply
		s2.OnServeRead = rec.ServeRead
		s2.OnRestore = rec.Restore
	})
	if err != nil {
		panic(fmt.Sprintf("experiment: shard chaos deploy: %v", err)) // static config bug
	}

	base := shard.NewUniform(cfg.Shards)
	// The split moves exactly the migration key's ring position, so pinned
	// keys avoid that position and never re-home.
	moveKey := keyOwnedBy(base, 0, "mig", nil)
	moveHash := shard.Hash(moveKey)
	avoid := map[uint32]bool{moveHash: true}

	clientCfg := func(staleness int) client.Config {
		return client.Config{
			Spec:    qos.Spec{Staleness: staleness, Deadline: 200 * time.Millisecond, MinProb: 0.5},
			Methods: qos.NewMethods("Get", "Version"),
			// The substrate needs real retransmit settings: the migration
			// client's first-ever message to the sequencer can be swallowed
			// by the crash, and only link-layer recovery (drop after
			// MaxRetries, then a generation reset on the stuck ack) unwedges
			// that link for the copy phase's frontier read.
			Group:         core.DefaultsForClient(),
			RetryInterval: 150 * time.Millisecond,
			MaxRetries:    100,
		}
	}

	var res ShardChaosResult
	var doneCount int
	totalClients := 0

	// Two pinned clients per shard: strict and loose staleness. Each drives
	// a key the uniform map homes on its shard, so its whole closed loop
	// lands on one gateway — the seq bookkeeping the oracles rely on.
	for i := 0; i < cfg.Shards; i++ {
		for _, staleness := range []int{0, 2} {
			shardIdx := i
			key := keyOwnedBy(base, i, fmt.Sprintf("doc%d-%d-", i, staleness), avoid)
			avoid[shard.Hash(key)] = true
			id := node.ID(fmt.Sprintf("c%02d", totalClients))
			totalClients++
			r := shard.New(shard.Config{Shards: sd.Infos, Client: clientCfg(staleness)})
			rec := recs[i]
			drive := func(ctx node.Context, _ invoker) {
				var issue func(k int)
				issue = func(k int) {
					if k >= cfg.Requests {
						doneCount++
						return
					}
					seq := uint64(k + 1)
					readOnly := k%2 == 1
					done := func(rr client.Result) {
						rec.ClientResult(ctx.ID(), seq, readOnly, rr.Err != "")
						res.Requests++
						if rr.Err != "" {
							res.Failed++
						}
						now := ctx.Now().Sub(sim.Epoch)
						if shardIdx != 0 && now >= cfg.KillAt && now <= cfg.RestartAt {
							res.OutageCompletions++
						}
						ctx.Post(cfg.RequestDelay, func() { issue(k + 1) })
					}
					if readOnly {
						r.Invoke("Get", []byte(key), done)
					} else {
						r.Invoke("Set", []byte(fmt.Sprintf("%s=%d", key, k)), done)
					}
				}
				stagger := time.Duration(ctx.Rand().Int63n(int64(cfg.RequestDelay) + 1))
				ctx.Post(stagger, func() { issue(0) })
			}
			rt.Register(id, &routedClient{r: r, run: drive})
		}
	}

	// The migration client runs the live split: write, move the key's range
	// to shard 1 while the write may still be in flight (and shard 0 is mid
	// failover), then read back through the new owner.
	mr := shard.New(shard.Config{Shards: sd.Infos, Client: clientCfg(0)})
	migrate := func(ctx node.Context, _ invoker) {
		ctx.SetTimer(cfg.MoveAt, func() {
			mr.Invoke("Set", []byte(moveKey+"=moved"), nil)
			if err := mr.Move(uint64(moveHash), uint64(moveHash)+1, 1%cfg.Shards, func(m *shard.Map) {
				res.MoveInstalled = true
			}); err != nil {
				panic(fmt.Sprintf("experiment: shard chaos move: %v", err))
			}
			mr.Invoke("Get", []byte(moveKey), func(rr client.Result) {
				res.MoveValue = string(rr.Payload)
				res.MoveOwner = sd.Owner(rr.Replica)
			})
		})
	}
	rt.Register("m00", &routedClient{r: mr, run: migrate})
	rt.Start()

	seq0 := sd.Shards[0].Sequencer
	inj := &chaos.Injector{
		RT:     rt,
		Faults: faults,
		Fresh:  sd.NewReplicaGateway,
		Obs:    &shardChaosObs{sd: sd, recs: recs},
	}
	inj.Install(chaos.Schedule{
		{At: cfg.KillAt, Action: chaos.ActCrash, Target: seq0},
		{At: cfg.RestartAt, Action: chaos.ActRestart, Target: seq0},
	})

	capAt := time.Duration(cfg.Requests)*cfg.RequestDelay*10 + 30*time.Second
	for elapsed := time.Duration(0); doneCount < totalClients && elapsed < capAt; elapsed += time.Second {
		s.RunFor(time.Second)
	}
	s.RunFor(5 * time.Second) // drain stragglers and the migration read

	res.Done = doneCount == totalClients
	for _, rec := range recs {
		res.Reports = append(res.Reports, check.Run(rec.Events()))
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			panic(fmt.Sprintf("experiment: shard chaos trace: %v", err)) // bytes.Buffer cannot fail
		}
		res.Traces = append(res.Traces, buf.Bytes())
	}
	return res
}
