package experiment

import (
	"bytes"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPointsPreservesInputOrder(t *testing.T) {
	points := make([]int, 37)
	for i := range points {
		points[i] = i
	}
	got := RunPoints(points, 4, nil, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunPointsProgressCountsEveryPoint(t *testing.T) {
	var calls, last atomic.Int64
	RunPoints(make([]struct{}, 9), 3, func(done, total int) {
		calls.Add(1)
		last.Store(int64(done))
		if total != 9 {
			t.Errorf("total = %d, want 9", total)
		}
	}, func(struct{}) struct{} { return struct{}{} })
	if calls.Load() != 9 || last.Load() != 9 {
		t.Fatalf("progress calls=%d last done=%d, want 9/9", calls.Load(), last.Load())
	}
}

func TestRunPointsEmptyAndDefaults(t *testing.T) {
	if got := RunPoints(nil, 0, nil, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty input gave %d results", len(got))
	}
	// parallel <= 0 selects GOMAXPROCS; must still cover every point.
	got := RunPoints([]int{1, 2, 3}, -1, nil, func(i int) int { return i })
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

// TestFig4SweepParallelismInvariant is the engine's core guarantee: the
// rendered Figure 4 tables are byte-identical whether the sweep runs
// sequentially or fanned across workers, because every point owns a private
// scheduler seeded only by its config. Run under -race in CI, it also
// checks the share-nothing claim.
func TestFig4SweepParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep grid in -short mode")
	}
	sw := DefaultFig4Sweep()
	sw.Base = Fig4Config{Seed: 2002, Requests: 30}
	// Shrink the grid: two deadlines x two series is enough to cross worker
	// boundaries while keeping the test fast.
	sw.Deadlines = sw.Deadlines[:2]
	sw.Configs = sw.Configs[:2]

	render := func(results []Fig4Result) []byte {
		var buf bytes.Buffer
		WriteFig4aTable(&buf, results)
		WriteFig4bTable(&buf, results)
		return buf.Bytes()
	}

	defer SetParallelism(1)
	var want []byte
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		SetParallelism(par)
		got := render(sw.Run())
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("parallelism %d changed the rendered tables:\n--- sequential ---\n%s--- parallel=%d ---\n%s",
				par, want, par, got)
		}
	}
}

func TestRunScalabilityClampsAndDedupesCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	base := Fig4Config{Seed: 7, Requests: 10, Deadline: 140 * time.Millisecond, MinProb: 0.9}
	// 0, 1, and 2 all clamp to the two mandatory clients; each selector must
	// run that point once, not three times.
	res := RunScalability(base, []int{0, 1, 2, 4})
	if len(res) != 4 { // 2 selectors x {2, 4}
		t.Fatalf("got %d results, want 4: %+v", len(res), res)
	}
	for i, want := range []int{2, 4, 2, 4} {
		if res[i].Clients != want {
			t.Fatalf("res[%d].Clients = %d, want %d", i, res[i].Clients, want)
		}
	}
}
