package experiment

import (
	"fmt"
	"io"

	"aqua/internal/selection"
)

// ScalabilityResult is one row of the client-scaling experiment.
type ScalabilityResult struct {
	Clients  int // total clients sharing the service
	Selector string
	Fig4Result
}

// RunScalability quantifies §5's scalability argument — "allocating all the
// available replicas to service a single client ... is not scalable, as it
// increases the load on all the replicas and results in higher response
// times for the remaining clients" — by growing the number of concurrent
// clients and comparing Algorithm 1 against the select-all baseline for the
// measured client.
func RunScalability(base Fig4Config, clientCounts []int) []ScalabilityResult {
	// Clamp to the two mandatory clients and dedupe before deriving seeds:
	// clamping inside the loop used to alias e.g. counts 1 and 2 onto the
	// same seed (and an identical run), silently double-counting one point.
	counts := make([]int, 0, len(clientCounts))
	seen := make(map[int]bool, len(clientCounts))
	for _, n := range clientCounts {
		if n < 2 {
			n = 2
		}
		if !seen[n] {
			seen[n] = true
			counts = append(counts, n)
		}
	}
	type point struct {
		sel selection.Selector
		n   int
	}
	var points []point
	for _, sel := range []selection.Selector{selection.Algorithm1{}, selection.All{}} {
		for _, n := range counts {
			points = append(points, point{sel: sel, n: n})
		}
	}
	return runPoints(points, func(p point) ScalabilityResult {
		cfg := base
		cfg.Selector = p.sel
		cfg.SelectorForAll = true
		cfg.ExtraClients = p.n - 2
		cfg.Seed = base.Seed + int64(p.n*10)
		return ScalabilityResult{
			Clients:    p.n,
			Selector:   p.sel.Name(),
			Fig4Result: RunFig4Point(cfg),
		}
	})
}

// WriteScalabilityTable renders the client-scaling experiment.
func WriteScalabilityTable(w io.Writer, results []ScalabilityResult) {
	fmt.Fprintln(w, "Scalability — measured client vs growing client population")
	fmt.Fprintln(w, "(Algorithm 1 keeps per-request load bounded; select-all floods every replica)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %8s %8s %12s %12s %14s\n",
		"selector", "clients", "reads", "failureProb", "avgSelected", "meanResp(ms)")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s %8d %8d %12.3f %12.2f %14.1f\n",
			r.Selector, r.Clients, r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000)
	}
}

// LossResult is one row of the loss-tolerance experiment.
type LossResult struct {
	Loss float64
	Fig4Result
}

// RunLossSweep subjects the whole deployment to uniform message loss: the
// substrate's ack/retransmit recovery (the role Ensemble's reliable
// channels play in the paper) must keep the protocol correct, trading
// latency for delivery.
func RunLossSweep(base Fig4Config, rates []float64) []LossResult {
	return runPoints(rates, func(p float64) LossResult {
		cfg := base
		cfg.Loss = p
		cfg.Seed = base.Seed + int64(p*10000)
		return LossResult{Loss: p, Fig4Result: RunFig4Point(cfg)}
	})
}

// WriteLossTable renders the loss sweep.
func WriteLossTable(w io.Writer, results []LossResult) {
	fmt.Fprintln(w, "Message loss — QoS under uniform network loss (substrate ARQ recovery)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %8s %12s %12s %14s %8s\n",
		"loss", "reads", "failureProb", "avgSelected", "meanResp(ms)", "done")
	for _, r := range results {
		fmt.Fprintf(w, "%-8.2f %8d %12.3f %12.2f %14.1f %8v\n",
			r.Loss, r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000, r.Done)
	}
}
