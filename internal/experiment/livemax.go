// Livemax: the heavy-traffic ramp of loadmax, run for real — goroutine
// parallelism instead of the virtual-time scheduler, TCP loopback sockets
// instead of the simulated network, wall-clock measurement windows instead
// of simulated time. It exists to load-test the serving stack itself: the
// live mailbox hot path, the zero-copy inbound decoder, the batched
// enqueue, and the vectored writer flush. Each run measures the
// pre-optimization hot path (live.WithLegacyHotPath +
// tcpnet.WithLegacyInbound) and the optimized one in the same invocation —
// the same same-run-baseline discipline as the wire-vs-gob benchmark — and
// also runs the virtual-time loadmax ramp so the sim-predicted ceiling and
// the measured live ceiling sit in one artifact.
//
// Caveat (see EXPERIMENTS.md): these are wall-clock numbers over loopback
// on whatever machine runs the benchmark, competing with the generator for
// the same cores. They measure the serving stack's efficiency, not the
// protocol's intrinsic latency; the virtual-time tables remain the
// controlled-model results.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/shard"
	"aqua/internal/tcpnet"
	"aqua/internal/workload"
)

// LivemaxConfig parameterizes the live offered-load ramp.
type LivemaxConfig struct {
	Seed int64

	// Shards is the number of independent shard deployments hosted by the
	// serving process (default 1). All shards share the process — the
	// point of the parallel node runtime is that they actually run
	// concurrently on its goroutines.
	Shards int
	// Primaries counts serving primaries (the sequencer is extra);
	// Secondaries the secondary group. Defaults 2 and 1 — a leaner
	// replica set than the sim ramps, because every hop here is a real
	// socket round trip competing for real cores.
	Primaries   int
	Secondaries int
	// LUI is the lazy update interval (default 100ms).
	LUI time.Duration

	// Clients is the simulated open-loop population (default 512).
	Clients int
	// ReadFraction is the read share of the offered stream (default 0.5).
	ReadFraction float64
	// Staleness is the read staleness bound a (default 0: sequential).
	Staleness int

	// UpdateBytes pads update payloads to this size (default 1024 — a
	// representative KV value; the sim ramps keep their historical tiny
	// payloads, which is part of why live and sim ceilings differ).
	UpdateBytes int

	// Deadline is the per-read deadline (default 50ms — wall-clock, so it
	// absorbs scheduler and GC noise the simulator does not have);
	// P99Bound the sustained criterion on windowed p99 read latency
	// (default = Deadline); MaxFailureRate the bound on the windowed
	// timing-failure rate (default 0.01).
	Deadline       time.Duration
	P99Bound       time.Duration
	MaxFailureRate float64

	// Rates is the offered-rate ramp in requests/second (default a
	// geometric ×1.5 ladder 1000..~26000 — finer than the sim's ×2 ladder
	// so the peak ratio is not quantized to powers of two).
	Rates []float64
	// Warmup elapses before the measurement window of each step; the
	// window lasts StepDuration (defaults 500ms and 2s). Every step is an
	// independent deployment over fresh sockets.
	Warmup       time.Duration
	StepDuration time.Duration

	// AssignBatch/AssignBatchWindow configure batched GSN assignment
	// (defaults 256 requests / 1ms window); both modes run batched — the
	// baseline here is the runtime/transport hot path, not the ordering
	// protocol.
	AssignBatch       int
	AssignBatchWindow time.Duration

	// ArrivalCoalesce quantizes the generator's arrival timers (default
	// 10ms): at tens of kilorequests/second one runtime timer per arrival
	// would make the generator the bottleneck — even at 10ms, measured
	// issuance runs a few percent under the offered rate, which is why
	// the points report issued counts. Applied to both modes.
	ArrivalCoalesce time.Duration
	// SendQueue is the per-peer transport ring capacity (default 8192) —
	// sized so bursts ride the ring instead of shedding onto the
	// retransmit path.
	SendQueue int

	// SimCompare runs the virtual-time loadmax ramp (batched mode, same
	// seed) in the same invocation and reports its predicted ceiling next
	// to the measured live one (default on; quick smokes disable it).
	SimCompare bool
	// SimRates overrides the sim comparison ramp (default: the loadmax
	// defaults).
	SimRates []float64
}

func (c *LivemaxConfig) setDefaults() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Primaries == 0 {
		c.Primaries = 2
	}
	if c.Secondaries == 0 {
		c.Secondaries = 1
	}
	if c.LUI == 0 {
		c.LUI = 100 * time.Millisecond
	}
	if c.Clients == 0 {
		c.Clients = 512
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.UpdateBytes == 0 {
		c.UpdateBytes = 1024
	}
	if c.Deadline == 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.P99Bound == 0 {
		c.P99Bound = c.Deadline
	}
	if c.MaxFailureRate == 0 {
		c.MaxFailureRate = 0.01
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1000, 1500, 2250, 3400, 5100, 7700, 11500, 17000, 26000}
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.StepDuration == 0 {
		c.StepDuration = 2 * time.Second
	}
	if c.AssignBatch == 0 {
		c.AssignBatch = 256
	}
	if c.AssignBatchWindow == 0 {
		c.AssignBatchWindow = time.Millisecond
	}
	if c.ArrivalCoalesce == 0 {
		c.ArrivalCoalesce = 10 * time.Millisecond
	}
	if c.SendQueue == 0 {
		c.SendQueue = 8192
	}
}

// LivemaxPoint is one measured step of the live ramp.
type LivemaxPoint struct {
	OfferedRate float64 `json:"offered_rate"`
	Legacy      bool    `json:"legacy"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Expired   uint64 `json:"expired"`

	UpdatesPerSec float64 `json:"updates_per_sec"`
	ReadsPerSec   float64 `json:"reads_per_sec"`

	ReadP50MS   float64 `json:"read_p50_ms"`
	ReadP99MS   float64 `json:"read_p99_ms"`
	UpdateP99MS float64 `json:"update_p99_ms"`
	FailureRate float64 `json:"failure_rate"`

	// FastServed counts frontier fast-path reads across serving replicas
	// (whole run).
	FastServed uint64 `json:"fast_served"`

	Sustained bool `json:"sustained"`
}

// LivemaxResult is one hot-path mode's ramp with its peak sustained point.
type LivemaxResult struct {
	Legacy bool           `json:"legacy"`
	Points []LivemaxPoint `json:"points"`

	PeakRate          float64 `json:"peak_rate"`
	PeakUpdatesPerSec float64 `json:"peak_updates_per_sec"`
	PeakReadsPerSec   float64 `json:"peak_reads_per_sec"`
}

// LivemaxHotpath is the serving-stack isolation stage of the report: both
// modes' pump runs (livehotpath.go) and their updates/s ratio. The full
// service ramp saturates on replication-protocol CPU, so this is where
// the runtime/transport optimizations are actually visible.
type LivemaxHotpath struct {
	Baseline  HotpathResult `json:"baseline"`
	Optimized HotpathResult `json:"optimized"`
	Speedup   float64       `json:"speedup"`
}

// LivemaxReport is the whole artifact: the legacy-hot-path baseline and the
// optimized ramp from the same invocation, their speedup, the hot-path
// pump stage, and the sim-predicted loadmax ceiling for the
// model-vs-reality row.
type LivemaxReport struct {
	Config LivemaxConfig `json:"config"`

	// GOMAXPROCS records the benchmark host's parallelism. The parallel
	// node runtime's wins are contention wins — fewer wakeups, fewer
	// lock handoffs, fewer allocations fighting for the same GC — so on
	// a single-core host both modes serialize onto one CPU and the
	// separation compresses toward the pure instruction-count saving
	// (see EXPERIMENTS.md). Floor tests must read this before judging
	// the speedup.
	GOMAXPROCS int `json:"gomaxprocs"`

	Baseline  LivemaxResult `json:"baseline"`
	Optimized LivemaxResult `json:"optimized"`

	// SpeedupUpdates is optimized peak sustained updates/sec over the
	// legacy baseline's; SpeedupRate the same ratio on offered peak rate.
	SpeedupUpdates float64 `json:"speedup_updates"`
	SpeedupRate    float64 `json:"speedup_rate"`

	// Hotpath is the closed-loop pump stage over the same serving stack.
	Hotpath LivemaxHotpath `json:"hotpath"`

	// Sim* carry the virtual-time loadmax prediction (batched mode) when
	// SimCompare is set; LiveVsSimUpdates is measured-live over
	// sim-predicted peak updates/sec.
	SimPeakRate          float64 `json:"sim_peak_rate,omitempty"`
	SimPeakUpdatesPerSec float64 `json:"sim_peak_updates_per_sec,omitempty"`
	LiveVsSimUpdates     float64 `json:"live_vs_sim_updates,omitempty"`
}

// RunLivemaxPoint executes one live step: deploy the service on one live
// runtime and the workload engine on another, connect them over TCP
// loopback, warm up, measure one wall-clock window, tear down.
func RunLivemaxPoint(cfg LivemaxConfig, rate float64, legacy bool) LivemaxPoint {
	cfg.setDefaults()

	liveOpts := []live.Option{live.WithSeed(cfg.Seed)}
	trOpts := []tcpnet.Option{tcpnet.WithSendQueue(cfg.SendQueue)}
	if legacy {
		liveOpts = append(liveOpts, live.WithLegacyHotPath())
		trOpts = append(trOpts, tcpnet.WithLegacyInbound())
	}
	rtS := live.NewRuntime(liveOpts...) // serving process
	rtC := live.NewRuntime(liveOpts...) // generator process
	trS, err := tcpnet.New(rtS, "127.0.0.1:0", nil, trOpts...)
	if err != nil {
		panic(fmt.Sprintf("experiment: livemax listen: %v", err))
	}
	trC, err := tcpnet.New(rtC, "127.0.0.1:0", nil, trOpts...)
	if err != nil {
		panic(fmt.Sprintf("experiment: livemax listen: %v", err))
	}

	svc := core.ServiceConfig{
		Primaries:         cfg.Primaries + 1, // + sequencer
		Secondaries:       cfg.Secondaries,
		LazyInterval:      cfg.LUI,
		Group:             group.DefaultConfig(),
		NewApp:            func() app.Application { return apps.NewKVStore() },
		AssignBatch:       cfg.AssignBatch,
		AssignBatchWindow: cfg.AssignBatchWindow,
		FastReads:         true,
	}
	sd, err := core.DeployShards(rtS, svc, cfg.Shards, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: livemax deploy: %v", err)) // static config bug
	}

	// Address wiring: the generator reaches every replica at the serving
	// process's listener; replicas reach the engine at the generator's.
	const engineID = node.ID("load")
	for _, d := range sd.Shards {
		for _, id := range d.PrimaryGroup {
			trC.AddPeer(id, trS.Addr())
		}
		for _, id := range d.Secondaries {
			trC.AddPeer(id, trS.Addr())
		}
	}
	trS.AddPeer(engineID, trC.Addr())
	rtS.SetRemote(trS.Send)
	rtC.SetRemote(trC.Send)

	ecfg := workload.EngineConfig{
		Clients:         cfg.Clients,
		Arrivals:        workload.Poisson{Rate: rate},
		ArrivalCoalesce: cfg.ArrivalCoalesce,
		UpdatePad:       cfg.UpdateBytes,
		ReadFraction:    cfg.ReadFraction,
		Staleness:       cfg.Staleness,
		Deadline:        cfg.Deadline,
	}
	if cfg.Shards > 1 {
		m := shard.NewUniform(cfg.Shards)
		ecfg.Shards = sd.Infos
		ecfg.ShardOf = m.Owner
		ecfg.Keys = &workload.UniformKeys{N: 1024}
	} else {
		ecfg.Service = sd.Infos[0]
	}
	eng := workload.NewEngine(ecfg)
	rtC.Register(engineID, eng)

	rtS.Start()
	rtC.Start()

	time.Sleep(cfg.Warmup)
	before := eng.Metrics()
	time.Sleep(cfg.StepDuration)
	w := eng.Metrics().Sub(before)

	rtC.Stop()
	rtS.Stop()
	trC.Close()
	trS.Close()

	secs := cfg.StepDuration.Seconds()
	p := LivemaxPoint{
		OfferedRate:   rate,
		Legacy:        legacy,
		Issued:        w.Issued,
		Completed:     w.Completed,
		Shed:          w.Shed,
		Expired:       w.Expired,
		UpdatesPerSec: float64(w.UpdatesDone) / secs,
		ReadsPerSec:   float64(w.ReadsDone) / secs,
		ReadP50MS:     durMS(w.ReadLatency.Quantile(0.50)),
		ReadP99MS:     durMS(w.ReadLatency.Quantile(0.99)),
		UpdateP99MS:   durMS(w.UpdateLatency.Quantile(0.99)),
	}
	for _, d := range sd.Shards {
		for _, id := range d.ServingPrimaries {
			p.FastServed += d.Replicas[id].FastServed()
		}
	}
	if denom := w.ReadsDone + w.Expired; denom > 0 {
		p.FailureRate = float64(w.TimingFailures) / float64(denom)
	}
	p.Sustained = w.Shed == 0 &&
		p.FailureRate <= cfg.MaxFailureRate &&
		p.ReadP99MS <= durMS(cfg.P99Bound) &&
		w.ReadsDone > 0 && w.UpdatesDone > 0
	return p
}

// RunLivemaxRamp walks one mode's ramp sequentially — wall-clock
// measurements must not share the machine with each other — stopping two
// consecutive non-sustained steps past the peak (overload only gets worse
// with offered rate; the tail would be dead time). progress, if non-nil,
// is called before each step.
func RunLivemaxRamp(cfg LivemaxConfig, legacy bool, progress func(stage string, rate float64, legacy bool)) LivemaxResult {
	cfg.setDefaults()
	res := LivemaxResult{Legacy: legacy}
	failStreak := 0
	for _, rate := range cfg.Rates {
		if progress != nil {
			progress("ramp", rate, legacy)
		}
		p := RunLivemaxPoint(cfg, rate, legacy)
		res.Points = append(res.Points, p)
		if p.Sustained {
			failStreak = 0
			if p.OfferedRate > res.PeakRate {
				res.PeakRate = p.OfferedRate
				res.PeakUpdatesPerSec = p.UpdatesPerSec
				res.PeakReadsPerSec = p.ReadsPerSec
			}
		} else {
			failStreak++
			if failStreak >= 2 {
				break
			}
		}
	}
	return res
}

// RunLivemax measures both hot paths in one invocation — legacy first, then
// optimized, for the full-service ramp and then the hot-path pump — and
// attaches the sim-predicted loadmax ceiling when configured.
func RunLivemax(cfg LivemaxConfig, progress func(stage string, rate float64, legacy bool)) LivemaxReport {
	cfg.setDefaults()
	rep := LivemaxReport{Config: cfg, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	rep.Baseline = RunLivemaxRamp(cfg, true, progress)
	rep.Optimized = RunLivemaxRamp(cfg, false, progress)
	if rep.Baseline.PeakUpdatesPerSec > 0 {
		rep.SpeedupUpdates = rep.Optimized.PeakUpdatesPerSec / rep.Baseline.PeakUpdatesPerSec
	}
	if rep.Baseline.PeakRate > 0 {
		rep.SpeedupRate = rep.Optimized.PeakRate / rep.Baseline.PeakRate
	}
	if progress != nil {
		progress("hotpath", 0, true)
	}
	rep.Hotpath.Baseline = RunHotpathPoint(cfg, true)
	if progress != nil {
		progress("hotpath", 0, false)
	}
	rep.Hotpath.Optimized = RunHotpathPoint(cfg, false)
	if rep.Hotpath.Baseline.UpdatesPerSec > 0 {
		rep.Hotpath.Speedup = rep.Hotpath.Optimized.UpdatesPerSec / rep.Hotpath.Baseline.UpdatesPerSec
	}
	if cfg.SimCompare {
		simCfg := LoadmaxConfig{Seed: cfg.Seed}
		if len(cfg.SimRates) > 0 {
			simCfg.Rates = cfg.SimRates
		}
		simRes := RunLoadmax(simCfg, true)
		rep.SimPeakRate = simRes.PeakRate
		rep.SimPeakUpdatesPerSec = simRes.PeakUpdatesPerSec
		if simRes.PeakUpdatesPerSec > 0 {
			rep.LiveVsSimUpdates = rep.Optimized.PeakUpdatesPerSec / simRes.PeakUpdatesPerSec
		}
	}
	return rep
}

// WriteLivemaxTable renders both live ramps and the sim comparison row.
func WriteLivemaxTable(w io.Writer, rep LivemaxReport) {
	fmt.Fprintln(w, "Livemax — peak sustained live throughput over TCP loopback, optimized hot path vs pre-optimization baseline")
	fmt.Fprintf(w, "(wall-clock; bounds: read p99 <= %.1fms, failure rate <= %.3f, no shed; %d shard(s), %d+1 primaries, %d secondaries)\n\n",
		durMS(rep.Config.P99Bound), rep.Config.MaxFailureRate,
		rep.Config.Shards, rep.Config.Primaries, rep.Config.Secondaries)
	for _, res := range []LivemaxResult{rep.Baseline, rep.Optimized} {
		mode := "optimized (batched mailbox, zero-copy inbound, vectored flush)"
		if res.Legacy {
			mode = "baseline (legacy mailbox + per-frame inbound)"
		}
		fmt.Fprintf(w, "%s\n", mode)
		fmt.Fprintf(w, "%-12s %10s %10s %8s %8s %10s %10s %10s %5s\n",
			"offered/s", "upd/s", "reads/s", "shed", "expired", "p50(ms)", "p99(ms)", "failRate", "ok")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%-12.0f %10.0f %10.0f %8d %8d %10.2f %10.2f %10.4f %5v\n",
				p.OfferedRate, p.UpdatesPerSec, p.ReadsPerSec, p.Shed, p.Expired,
				p.ReadP50MS, p.ReadP99MS, p.FailureRate, p.Sustained)
		}
		fmt.Fprintf(w, "peak: %.0f offered/s (%.0f upd/s, %.0f reads/s)\n\n",
			res.PeakRate, res.PeakUpdatesPerSec, res.PeakReadsPerSec)
	}
	fmt.Fprintf(w, "speedup: %.2fx peak sustained updates/sec, %.2fx peak offered rate (host GOMAXPROCS=%d)\n",
		rep.SpeedupUpdates, rep.SpeedupRate, rep.GOMAXPROCS)
	if rep.SimPeakUpdatesPerSec > 0 {
		fmt.Fprintf(w, "sim-predicted loadmax ceiling: %.0f offered/s (%.0f upd/s); live/sim = %.2f\n",
			rep.SimPeakRate, rep.SimPeakUpdatesPerSec, rep.LiveVsSimUpdates)
	}
	fmt.Fprintf(w, "\nhot-path pump (closed loop, raw-socket generator, unreplicated store on the serving runtime)\n")
	fmt.Fprintf(w, "%-10s %12s %12s %10s %10s %5s\n",
		"mode", "upd/s", "reads/s", "p50(ms)", "p99(ms)", "ok")
	for _, h := range []HotpathResult{rep.Hotpath.Baseline, rep.Hotpath.Optimized} {
		mode := "optimized"
		if h.Legacy {
			mode = "baseline"
		}
		fmt.Fprintf(w, "%-10s %12.0f %12.0f %10.2f %10.2f %5v\n",
			mode, h.UpdatesPerSec, h.ReadsPerSec, h.ReadP50MS, h.ReadP99MS, h.Sustained)
	}
	fmt.Fprintf(w, "hot-path speedup: %.2fx updates/sec\n", rep.Hotpath.Speedup)
}

// WriteLivemaxJSON writes the report as indented JSON (BENCH_livemax.json).
func WriteLivemaxJSON(w io.Writer, rep LivemaxReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string `json:"experiment"`
		LivemaxReport
	}{Experiment: "livemax", LivemaxReport: rep})
}
