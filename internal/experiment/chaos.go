package experiment

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/chaos"
	"aqua/internal/check"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/replica"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

// ChaosConfig parameterizes one chaos run: a full deployment under a
// generated (or supplied) fault schedule, with every protocol observation
// recorded and judged by the check package's invariant oracles.
//
// Unlike the paper-figure experiments, a chaos run measures nothing — its
// output is a verdict. It runs entirely in virtual time on the simulator,
// so it never perturbs the wall-clock results in results_full.txt.
type ChaosConfig struct {
	Seed int64

	// Primaries counts serving primaries (the sequencer is extra, as in
	// Fig4Config); Secondaries the secondary group. Defaults 3 and 5: nine
	// replicas total.
	Primaries   int
	Secondaries int
	// Clients is the number of closed-loop clients (default 2). Client i
	// uses staleness bound i%3*2 — a strict read-your-writes client plus
	// looser ones that exercise secondary reads and deferrals.
	Clients int

	// Requests per client (default 120), alternating Set/Get with
	// RequestDelay think time (default 50ms).
	Requests     int
	RequestDelay time.Duration

	// LUI is the lazy update interval T_L (default 250ms — short, so
	// deferred reads resolve quickly and the run stays cheap).
	LUI time.Duration

	// ServiceMean/ServiceStd simulate background load (defaults 10ms/5ms).
	// A negative ServiceMean disables the service-delay model entirely —
	// required to arm the frontier-read fast path, which only engages when
	// reads carry no simulated service cost.
	ServiceMean time.Duration
	ServiceStd  time.Duration

	// AssignBatch/AssignBatchWindow enable batched GSN assignment at the
	// sequencer; FastReads the frontier-read fast path. The batching
	// acceptance tests run the full chaos oracle suite with these on —
	// including sequencer kills that land mid-batch.
	AssignBatch       int
	AssignBatchWindow time.Duration
	FastReads         bool

	// Faults sets the generator's fault rates. Zero Horizon defaults to
	// ~70% of the expected workload duration so faults land amid traffic.
	Faults chaos.GenConfig

	// Schedule, if non-nil, is injected verbatim instead of generating one
	// from Faults — the acceptance tests pin exact scenarios with it.
	Schedule chaos.Schedule

	// Durable gives every replica a WAL + snapshot store; SnapshotEvery is
	// its compaction threshold (0 = replica default). With Durable on, the
	// schedule's restart_recover events rebuild replicas from their own
	// durable media instead of blank state.
	Durable       bool
	SnapshotEvery int

	// ReplicatedAssign enables majority-floor replicated GSN ordering, so
	// sequencer kills leave no assignment holes behind released commits.
	ReplicatedAssign bool

	// Mutate, if set, runs after deployment and before the run starts —
	// the hook the oracle-sensitivity test uses to arm a deliberate bug on
	// one replica.
	Mutate func(d *core.Deployment)

	// MutateFresh, if set, runs on every replacement gateway built for a
	// restart, before its Init — the recovery-sensitivity test arms a
	// planted WAL bug (drop-tail) on the incarnation that will recover.
	MutateFresh func(id node.ID, gw *replica.Gateway)
}

func (c *ChaosConfig) setDefaults() {
	if c.Primaries == 0 {
		c.Primaries = 3
	}
	if c.Secondaries == 0 {
		c.Secondaries = 5
	}
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.Requests == 0 {
		c.Requests = 120
	}
	if c.RequestDelay == 0 {
		c.RequestDelay = 50 * time.Millisecond
	}
	if c.LUI == 0 {
		c.LUI = 250 * time.Millisecond
	}
	if c.ServiceMean == 0 {
		c.ServiceMean = 10 * time.Millisecond
	}
	if c.ServiceStd == 0 {
		c.ServiceStd = 5 * time.Millisecond
	}
	if c.Faults.Horizon == 0 {
		// Expected per-request time ≈ think time + service, two requests per
		// Set/Get pair; 70% keeps repairs inside the traffic window too.
		c.Faults.Horizon = time.Duration(c.Requests) * (c.RequestDelay + 2*c.ServiceMean) * 7 / 10
	}
}

// ChaosResult is one chaos run's verdict.
type ChaosResult struct {
	Seed   int64
	Report check.Report
	// Schedule is the fault schedule that ran (generated or supplied).
	Schedule chaos.Schedule
	// Requests counts completed client invocations; Failed those that
	// errored (retries exhausted). Done reports whether every client
	// finished its quota before the virtual-time cap.
	Requests int
	Failed   int
	Done     bool
	// Events is the oracle-trace length; Trace its byte-stable rendering —
	// what the determinism tests compare across parallelism levels.
	Events int
	Trace  []byte
	// FastServed sums frontier fast-path reads across replicas — nonzero
	// proves a FastReads run actually exercised the hot path.
	FastServed uint64
	// Recovered maps each replica to the durable frontier its final
	// incarnation replayed at Init (absent when it never recovered).
	Recovered map[node.ID]uint64
	// AppStates holds each replica's final application snapshot — what the
	// adversarial recovery tests compare byte-for-byte against a
	// never-crashed reference run.
	AppStates map[node.ID][]byte
}

// chaosDriver issues total alternating Set/Get requests in a closed loop,
// reporting each completion to the recorder. Seq bookkeeping relies on the
// gateway assigning sequence numbers in Invoke order starting at 1.
func chaosDriver(rec *check.Recorder, total int, think time.Duration, key string, onDone func()) func(node.Context, *client.Gateway) {
	return func(ctx node.Context, gw *client.Gateway) {
		var issue func(k int)
		issue = func(k int) {
			if k >= total {
				onDone()
				return
			}
			seq := uint64(k + 1)
			readOnly := k%2 == 1
			done := func(r client.Result) {
				rec.ClientResult(ctx.ID(), seq, readOnly, r.Err != "")
				ctx.Post(think, func() { issue(k + 1) })
			}
			if readOnly {
				gw.Invoke("Get", []byte(key), done)
			} else {
				gw.Invoke("Set", []byte(fmt.Sprintf("%s=%d", key, k)), done)
			}
		}
		stagger := time.Duration(ctx.Rand().Int63n(int64(think) + 1))
		ctx.Post(stagger, func() { issue(0) })
	}
}

// RunChaosPoint executes one chaos run and returns its verdict. Identical
// configs (same seed, same fault rates or schedule) produce byte-identical
// traces and identical reports, on any machine, at any sweep parallelism.
func RunChaosPoint(cfg ChaosConfig) ChaosResult {
	cfg.setDefaults()

	s := sim.NewScheduler(cfg.Seed)
	faults := chaos.NewNetFaults(netsim.UniformDelay{
		Min: 500 * time.Microsecond,
		Max: 2 * time.Millisecond,
	}, netsim.NoLoss{})
	rt := sim.NewRuntime(s, sim.WithDelay(faults), sim.WithLoss(faults))
	rec := check.NewRecorder(sim.Epoch, s.Now)

	svc := core.ServiceConfig{
		Primaries:    cfg.Primaries + 1, // + sequencer
		Secondaries:  cfg.Secondaries,
		LazyInterval: cfg.LUI,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, cfg.ServiceMean, cfg.ServiceStd, 0)
		},
		OnApply:     rec.Apply,
		OnServeRead: rec.ServeRead,
		OnRestore:   rec.Restore,
	}
	if cfg.ServiceMean < 0 {
		svc.ServiceDelay = nil
	}
	svc.AssignBatch = cfg.AssignBatch
	svc.AssignBatchWindow = cfg.AssignBatchWindow
	svc.FastReads = cfg.FastReads
	svc.Durable = cfg.Durable
	svc.SnapshotEvery = cfg.SnapshotEvery
	svc.ReplicatedAssign = cfg.ReplicatedAssign
	if cfg.Durable {
		svc.OnRecover = rec.Recover
	}

	var doneCount, completed, failed int
	clients := make([]core.ClientConfig, cfg.Clients)
	for i := range clients {
		id := node.ID(fmt.Sprintf("c%02d", i))
		clients[i] = core.ClientConfig{
			ID: id,
			// Client 0 reads with a=0 (strict read-your-writes, primaries
			// only); the others tolerate growing staleness, spreading reads
			// onto secondaries where deferral happens.
			Spec: qos.Spec{
				Staleness: (i % 3) * 2,
				Deadline:  200 * time.Millisecond,
				MinProb:   0.5,
			},
			Methods: qos.NewMethods("Get", "Version"),
			// Faults are the point here: retry briskly so the workload
			// survives crashes and partitions instead of stalling on them.
			RetryInterval: 150 * time.Millisecond,
			MaxRetries:    100,
			Driver: chaosDriver(rec, cfg.Requests, cfg.RequestDelay,
				fmt.Sprintf("doc%d", i), func() { doneCount++ }),
		}
	}

	d, err := core.Deploy(rt, svc, clients)
	if err != nil {
		panic(fmt.Sprintf("experiment: chaos deploy: %v", err)) // static config bug
	}
	if cfg.Mutate != nil {
		cfg.Mutate(d)
	}
	rt.Start()

	sched := cfg.Schedule
	if sched == nil {
		// The generator gets its own seed-derived stream: fault placement
		// must not steal draws from the simulation's node/net streams.
		gen := rand.New(rand.NewSource(cfg.Seed ^ 0x5eedFa17))
		sched = chaos.Generate(gen, chaos.Topology{
			Sequencer:   d.Sequencer,
			Primaries:   d.ServingPrimaries,
			Secondaries: d.Secondaries,
			Clients:     d.ClientIDs,
		}, cfg.Faults)
	}
	inj := &chaos.Injector{
		RT:     rt,
		Faults: faults,
		Fresh: func(id node.ID) (node.Node, error) {
			gw, err := d.NewReplicaGateway(id)
			if err != nil {
				return nil, err
			}
			if cfg.MutateFresh != nil {
				cfg.MutateFresh(id, gw)
			}
			return gw, nil
		},
		FreshRecovered: func(id node.ID) (node.Node, error) {
			gw, err := d.NewRecoveredReplicaGateway(id)
			if err != nil {
				return nil, err
			}
			if cfg.MutateFresh != nil {
				cfg.MutateFresh(id, gw)
			}
			return gw, nil
		},
		Obs: rec,
	}
	inj.Install(sched)

	// Run until every client finishes, with a virtual-time cap covering the
	// workload plus fault downtime and retries.
	perRequest := cfg.RequestDelay + 4*cfg.ServiceMean + cfg.LUI/4 + 500*time.Millisecond
	capAt := time.Duration(cfg.Requests+10)*perRequest*2 + 2*cfg.Faults.Horizon
	for elapsed := time.Duration(0); doneCount < cfg.Clients && elapsed < capAt; elapsed += time.Minute {
		s.RunFor(time.Minute)
	}
	s.RunFor(5 * time.Second) // drain stragglers

	events := rec.Events()
	for i := range events {
		if events[i].Kind == check.KindClient {
			completed++
			if events[i].Failed {
				failed++
			}
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		panic(fmt.Sprintf("experiment: chaos trace: %v", err)) // bytes.Buffer cannot fail
	}
	var fastServed uint64
	recovered := make(map[node.ID]uint64)
	appStates := make(map[node.ID][]byte)
	for id, g := range d.Replicas {
		fastServed += g.FastServed()
		if r := g.Recovered(); r > 0 {
			recovered[id] = r
		}
		if snap, err := g.App().Snapshot(); err == nil {
			appStates[id] = snap
		}
	}
	return ChaosResult{
		Seed:       cfg.Seed,
		Report:     check.Run(events),
		Schedule:   sched,
		Requests:   completed,
		Failed:     failed,
		Done:       doneCount == cfg.Clients,
		Events:     len(events),
		Trace:      buf.Bytes(),
		FastServed: fastServed,
		Recovered:  recovered,
		AppStates:  appStates,
	}
}

// RunChaosSweep runs one chaos point per seed, fanned across the package's
// worker pool like every other sweep. Each point is self-contained, so
// results are identical at any parallelism.
func RunChaosSweep(base ChaosConfig, seeds []int64) []ChaosResult {
	points := make([]ChaosConfig, len(seeds))
	for i, seed := range seeds {
		p := base
		p.Seed = seed
		points[i] = p
	}
	return runPoints(points, RunChaosPoint)
}

// WriteChaosTable renders a sweep's verdicts, one line per seed, with the
// full per-invariant report for any failing run. Output is deterministic.
func WriteChaosTable(w io.Writer, results []ChaosResult) error {
	if _, err := fmt.Fprintf(w, "# chaos sweep: %d runs\n", len(results)); err != nil {
		return err
	}
	for i := range results {
		r := &results[i]
		status := "PASS"
		if !r.Report.OK() {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "seed=%-6d %s faults=%d requests=%d failed=%d events=%d done=%t\n",
			r.Seed, status, len(r.Schedule), r.Requests, r.Failed, r.Events, r.Done); err != nil {
			return err
		}
		if !r.Report.OK() {
			if err := r.Report.Write(w); err != nil {
				return err
			}
		}
	}
	return nil
}
