package experiment

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"aqua/internal/chaos"
	"aqua/internal/core"
	"aqua/internal/node"
)

// TestChaosAcceptance is the harness's headline scenario: nine replicas
// (sequencer + 3 serving primaries + 5 secondaries) survive a secondary
// crash/restart, a two-secondary partition with heal, and a sequencer
// kill forcing takeover and re-join — and the full run satisfies all five
// protocol invariants.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run in -short mode")
	}
	cfg := ChaosConfig{
		Seed: 2002,
		Schedule: chaos.Schedule{
			{At: 300 * time.Millisecond, Action: chaos.ActCrash, Target: "s01"},
			{At: 800 * time.Millisecond, Action: chaos.ActRestart, Target: "s01"},
			{At: 1200 * time.Millisecond, Action: chaos.ActPartition, Name: "part00",
				SideA: []node.ID{"p00", "p01", "p02", "p03", "s00", "s01", "s04", "c00", "c01"},
				SideB: []node.ID{"s02", "s03"}},
			{At: 2 * time.Second, Action: chaos.ActHeal, Name: "part00"},
			{At: 2500 * time.Millisecond, Action: chaos.ActCrash, Target: "p00"},
			{At: 3100 * time.Millisecond, Action: chaos.ActRestart, Target: "p00"},
		},
	}
	res := RunChaosPoint(cfg)
	if !res.Done {
		t.Fatalf("clients did not finish: %d requests completed, %d failed", res.Requests, res.Failed)
	}
	if !res.Report.OK() {
		var buf bytes.Buffer
		res.Report.Write(&buf)
		t.Fatalf("invariant violations:\n%s", buf.Bytes())
	}
	// The run must actually exercise the oracles, not pass vacuously.
	for _, v := range res.Report.Verdicts {
		switch v.Invariant {
		case "sequential-consistency", "csn-monotonicity", "staleness-bound", "read-your-writes":
			if v.Checked == 0 {
				t.Errorf("invariant %s performed no checks", v.Invariant)
			}
		}
	}
	if res.Requests == 0 {
		t.Error("no client requests completed")
	}
}

// TestChaosOracleCatchesReorderBug proves the sequential-consistency oracle
// has teeth: with a deliberate ordering bug armed on one serving primary
// (the commit buffer jumps one-GSN holes) and heavy jitter on its
// assignment link to force out-of-order arrivals, the oracle must flag the
// run. A harness that cannot catch a planted bug proves nothing when it
// passes.
func TestChaosOracleCatchesReorderBug(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run in -short mode")
	}
	cfg := ChaosConfig{
		Seed:         7,
		Clients:      4, // more concurrent updates -> more adjacent assignments to reorder
		Requests:     80,
		RequestDelay: 20 * time.Millisecond,
		Schedule: chaos.Schedule{
			// The group links are per-sender FIFO, so reordering one sender's
			// stream is impossible; holes form when one client's update BODY
			// lags behind the sequencer's assignments. Delaying c02 -> p01 far
			// beyond the inter-update gap keeps p01's commit buffer holding a
			// paired later update above a missing body — the armed bug's
			// trigger.
			{At: 0, Action: chaos.ActLink, From: "c02", To: "p01",
				Fault: chaos.LinkFault{ExtraDelay: 60 * time.Millisecond, Jitter: 40 * time.Millisecond}},
		},
		Mutate: func(d *core.Deployment) {
			d.Replicas["p01"].EnableCommitReorderFault()
		},
	}
	res := RunChaosPoint(cfg)
	if res.Report.OK() {
		t.Fatalf("oracles passed a run with a planted commit-reorder bug (%d events, %d requests)",
			res.Events, res.Requests)
	}
	seq := res.Report.Verdicts[0]
	if seq.Invariant != "sequential-consistency" {
		t.Fatalf("verdict order changed: got %q first", seq.Invariant)
	}
	if seq.OK() {
		var buf bytes.Buffer
		res.Report.Write(&buf)
		t.Fatalf("planted ordering bug was not caught by the sequential-consistency oracle:\n%s", buf.Bytes())
	}
}

// TestChaosSweepParallelismInvariant mirrors TestFig4SweepParallelismInvariant
// for chaos runs: the same seeds produce byte-identical oracle traces and
// rendered verdicts whether the sweep runs sequentially or fanned across
// workers. Under -race in CI this also checks the share-nothing claim.
func TestChaosSweepParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	base := ChaosConfig{
		Requests: 40,
		Faults:   chaos.GenConfig{Crashes: 2, Partitions: 1, LinkFaults: 2, SequencerKill: true},
	}
	seeds := []int64{1, 2, 3}

	render := func(results []ChaosResult) []byte {
		var buf bytes.Buffer
		WriteChaosTable(&buf, results)
		for i := range results {
			buf.Write(results[i].Trace)
		}
		return buf.Bytes()
	}

	defer SetParallelism(1)
	var want []byte
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		SetParallelism(par)
		got := render(RunChaosSweep(base, seeds))
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("parallelism %d changed chaos traces or verdicts", par)
		}
	}
}

// TestChaosGeneratedSchedulePasses runs the random generator end to end:
// whatever scenario it emits within its guard rails, the protocol must
// satisfy every invariant.
func TestChaosGeneratedSchedulePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos run in -short mode")
	}
	for _, seed := range []int64{11, 42} {
		cfg := ChaosConfig{
			Seed:     seed,
			Requests: 60,
			Faults:   chaos.GenConfig{Crashes: 3, Partitions: 2, LinkFaults: 3, SequencerKill: true},
		}
		res := RunChaosPoint(cfg)
		if len(res.Schedule) == 0 {
			t.Fatalf("seed %d: generator produced an empty schedule", seed)
		}
		if !res.Report.OK() {
			var buf bytes.Buffer
			res.Report.Write(&buf)
			t.Errorf("seed %d: invariant violations under generated faults:\n%s", seed, buf.Bytes())
		}
	}
}
