package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/stats"
)

// Fig3Point is one bar of Figure 3: the wall-clock overhead of one
// selection (distribution computation + Algorithm 1) for a given number of
// available replicas and sliding-window size.
type Fig3Point struct {
	Replicas int
	Window   int
	// Overhead is the mean time per selection.
	Overhead time.Duration
	// ModelShare is the fraction of the overhead spent computing the
	// response-time distributions (the paper reports ≈90%).
	ModelShare float64
}

// SeedRepository fills a repository with plausible measurement history for
// n replicas (half primary, half secondary), mimicking a warmed-up client.
// It returns the primary and secondary ID lists.
func SeedRepository(repo *repository.Repository, n int, windowSize int, rng *rand.Rand, now time.Time) (primaries, secondaries []node.ID) {
	nPrim := n / 2
	for i := 0; i < n; i++ {
		id := node.ID(fmt.Sprintf("r%02d", i))
		if i < nPrim {
			primaries = append(primaries, id)
		} else {
			secondaries = append(secondaries, id)
		}
		for k := 0; k < windowSize; k++ {
			ts := stats.TruncNormalDuration(rng, 100*time.Millisecond, 50*time.Millisecond, 0)
			tq := stats.TruncNormalDuration(rng, 10*time.Millisecond, 5*time.Millisecond, 0)
			repo.RecordPerf(id, ts, tq)
			if i >= nPrim {
				tb := stats.TruncNormalDuration(rng, 2*time.Second, time.Second, 0)
				repo.RecordDeferWait(id, tb)
			}
		}
		tg := stats.TruncNormalDuration(rng, 2*time.Millisecond, 500*time.Microsecond, 0)
		repo.RecordReply(id, tg, now.Add(-time.Duration(i)*time.Second))
	}
	for k := 0; k < windowSize; k++ {
		repo.RecordPublisherRates(2+rng.Intn(3), 2*time.Second)
	}
	repo.RecordLazyInfo(1, time.Second, now.Add(-500*time.Millisecond))
	return primaries, secondaries
}

// RunFig3Point measures the selection overhead for one (replicas, window)
// configuration by timing iters selections against a warmed repository.
func RunFig3Point(replicas, windowSize, iters int, seed int64) Fig3Point {
	rng := rand.New(rand.NewSource(seed))
	now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	repo := repository.New(windowSize)
	prim, sec := SeedRepository(repo, replicas, windowSize, rng, now)

	model := selection.Model{BinWidth: 2 * time.Millisecond, LazyInterval: 4 * time.Second}
	spec := qos.Spec{Staleness: 2, Deadline: 150 * time.Millisecond, MinProb: 0.9}
	selector := selection.Algorithm1{}

	// Time the full selection (model evaluation + Algorithm 1).
	start := time.Now()
	for i := 0; i < iters; i++ {
		in := model.Evaluate(repo, prim, sec, "seq", spec, now)
		selector.Select(in)
	}
	full := time.Since(start)

	// Time the model evaluation alone to attribute the overhead.
	start = time.Now()
	for i := 0; i < iters; i++ {
		model.Evaluate(repo, prim, sec, "seq", spec, now)
	}
	modelOnly := time.Since(start)

	p := Fig3Point{
		Replicas: replicas,
		Window:   windowSize,
		Overhead: full / time.Duration(iters),
	}
	if full > 0 {
		share := float64(modelOnly) / float64(full)
		if share > 1 {
			share = 1
		}
		p.ModelShare = share
	}
	return p
}

// RunFig3 regenerates the Figure 3 series: overhead vs available replicas
// for each window size.
func RunFig3(replicaCounts, windows []int, iters int, seed int64) []Fig3Point {
	var out []Fig3Point
	for _, w := range windows {
		for _, n := range replicaCounts {
			out = append(out, RunFig3Point(n, w, iters, seed))
		}
	}
	return out
}

// DefaultFig3ReplicaCounts is the paper's x-axis: 2 through 10 replicas.
func DefaultFig3ReplicaCounts() []int { return []int{2, 3, 4, 5, 6, 7, 8, 9, 10} }

// DefaultFig3Windows is the paper's two series: sliding windows of 10, 20.
func DefaultFig3Windows() []int { return []int{10, 20} }
