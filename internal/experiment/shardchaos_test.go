package experiment

import (
	"bytes"
	"testing"
)

// TestShardChaosAcceptance is the sharded fault-tolerance headline: with
// shard 0's sequencer killed and restarted mid-run and a live shard split
// re-homing a key during the outage, every shard's protocol invariants must
// hold independently, shard 1's clients must keep completing requests while
// shard 0 recovers, and the moved key must preserve read-your-writes at its
// new owner.
func TestShardChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full shard chaos run in -short mode")
	}
	res := RunShardChaosPoint(ShardChaosConfig{Seed: 2026})

	if !res.Done {
		t.Fatalf("pinned clients did not finish: %d requests completed, %d failed", res.Requests, res.Failed)
	}
	for i, rep := range res.Reports {
		if !rep.OK() {
			var buf bytes.Buffer
			rep.Write(&buf)
			t.Fatalf("shard %d invariant violations:\n%s", i, buf.Bytes())
		}
		// Per-shard verdicts must not pass vacuously.
		for _, v := range rep.Verdicts {
			switch v.Invariant {
			case "sequential-consistency", "csn-monotonicity", "read-your-writes":
				if v.Checked == 0 {
					t.Errorf("shard %d: invariant %s performed no checks", i, v.Invariant)
				}
			}
		}
		if len(res.Traces[i]) == 0 {
			t.Errorf("shard %d produced an empty oracle trace", i)
		}
	}
	// The kill must stay contained: shard 1's clients complete requests
	// while shard 0's sequencer is down.
	if res.OutageCompletions == 0 {
		t.Error("no completions on other shards during shard 0's sequencer outage")
	}
	// The live split rode out the failover and kept read-your-writes.
	if !res.MoveInstalled {
		t.Fatal("shard split never installed")
	}
	if res.MoveValue != "moved" {
		t.Fatalf("post-move read = %q, want the pre-move write", res.MoveValue)
	}
	if res.MoveOwner != 1 {
		t.Fatalf("post-move read served by shard %d, want the new owner 1", res.MoveOwner)
	}
}
