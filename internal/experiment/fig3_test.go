package experiment

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/selection"
)

func TestSeedRepositoryShapes(t *testing.T) {
	repo := repository.New(10)
	rng := rand.New(rand.NewSource(1))
	now := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	prim, sec := SeedRepository(repo, 7, 10, rng, now)
	if len(prim) != 3 || len(sec) != 4 {
		t.Fatalf("split = %d/%d, want 3/4", len(prim), len(sec))
	}
	for _, id := range append(append([]node.ID{}, prim...), sec...) {
		if !repo.HasHistory(id) {
			t.Fatalf("%s has no history", id)
		}
	}
	if repo.UpdateRate() <= 0 || !repo.HasPublisherInfo() {
		t.Fatal("publisher info not seeded")
	}
	// The seeded model must produce meaningful CDFs at a realistic deadline.
	m := selection.Model{BinWidth: 2 * time.Millisecond, LazyInterval: 4 * time.Second}
	spec := qos.Spec{Staleness: 2, Deadline: 200 * time.Millisecond, MinProb: 0.9}
	in := m.Evaluate(repo, prim, sec, "seq", spec, now)
	any := false
	for _, c := range in.Candidates {
		if c.ImmedCDF > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("seeded repository gives all-zero CDFs")
	}
}

func TestRunFig3PointMeasuresSomething(t *testing.T) {
	p := RunFig3Point(6, 10, 50, 1)
	if p.Replicas != 6 || p.Window != 10 {
		t.Fatalf("point = %+v", p)
	}
	if p.Overhead <= 0 {
		t.Fatal("zero overhead measured")
	}
	if p.ModelShare <= 0 || p.ModelShare > 1 {
		t.Fatalf("model share = %v", p.ModelShare)
	}
}

func TestRunFig3GridSize(t *testing.T) {
	points := RunFig3([]int{2, 4}, []int{10, 20}, 10, 1)
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
}

func TestFig3OverheadGrowsWithWindow(t *testing.T) {
	small := RunFig3Point(8, 5, 200, 1)
	large := RunFig3Point(8, 20, 200, 1)
	// The paper's observation: bigger windows cost more (more data points
	// in the convolution).
	if large.Overhead <= small.Overhead {
		t.Fatalf("window 20 (%v) not costlier than window 5 (%v)", large.Overhead, small.Overhead)
	}
}

func TestDefaults(t *testing.T) {
	if got := DefaultFig3ReplicaCounts(); len(got) != 9 || got[0] != 2 || got[8] != 10 {
		t.Fatalf("replica counts = %v", got)
	}
	if got := DefaultFig3Windows(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("windows = %v", got)
	}
}

func TestWriteTables(t *testing.T) {
	var sb strings.Builder
	WriteFig3Table(&sb, []Fig3Point{{Replicas: 2, Window: 10, Overhead: 500 * time.Microsecond, ModelShare: 0.9}})
	if !strings.Contains(sb.String(), "500.0") || !strings.Contains(sb.String(), "90%") {
		t.Fatalf("fig3 table:\n%s", sb.String())
	}

	results := []Fig4Result{
		{Deadline: 100 * time.Millisecond, MinProb: 0.9, LUI: 2 * time.Second, AvgSelected: 4.5, FailureProb: 0.05},
		{Deadline: 200 * time.Millisecond, MinProb: 0.9, LUI: 2 * time.Second, AvgSelected: 2.5, FailureProb: 0.01},
	}
	sb.Reset()
	WriteFig4aTable(&sb, results)
	out := sb.String()
	if !strings.Contains(out, "p=0.9,LUI=2s") || !strings.Contains(out, "4.50") {
		t.Fatalf("fig4a table:\n%s", out)
	}
	sb.Reset()
	WriteFig4bTable(&sb, results)
	if !strings.Contains(sb.String(), "0.050") {
		t.Fatalf("fig4b table:\n%s", sb.String())
	}

	sb.Reset()
	WriteSelectorTable(&sb, "title", []SelectorResult{{
		Name:       "algorithm1",
		Fig4Result: Fig4Result{Reads: 10, TimingFailures: 1, FailureProb: 0.1, AvgSelected: 3},
		LoadCV:     0.5,
	}})
	if !strings.Contains(sb.String(), "algorithm1") {
		t.Fatalf("selector table:\n%s", sb.String())
	}

	sb.Reset()
	WriteFailoverTable(&sb, []FailoverResult{{Crash: "sequencer", Fig4Result: Fig4Result{Done: true}}})
	if !strings.Contains(sb.String(), "sequencer") {
		t.Fatalf("failover table:\n%s", sb.String())
	}

	sb.Reset()
	WriteSweepTable(&sb, "t", "LUI", []time.Duration{time.Second}, []Fig4Result{{Reads: 5}})
	if !strings.Contains(sb.String(), "1s") {
		t.Fatalf("sweep table:\n%s", sb.String())
	}
}

func TestCV(t *testing.T) {
	if got := cv(nil); got != 0 {
		t.Fatalf("cv(nil) = %v", got)
	}
	if got := cv([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("cv(const) = %v", got)
	}
	if got := cv([]float64{0, 0}); got != 0 {
		t.Fatalf("cv(zeros) = %v", got)
	}
	if got := cv([]float64{0, 10}); got <= 0.9 {
		t.Fatalf("cv(imbalanced) = %v, want ~1", got)
	}
}
