package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteFig3Table renders the Figure 3 reproduction: selection overhead (µs)
// vs available replicas, one column group per window size.
func WriteFig3Table(w io.Writer, points []Fig3Point) {
	fmt.Fprintln(w, "Figure 3 — Overhead of the probabilistic selection algorithm")
	fmt.Fprintln(w, "(microseconds per selection; ModelShare = fraction spent computing")
	fmt.Fprintln(w, " response-time distributions; paper reports ~90%)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-8s %14s %12s\n", "replicas", "window", "overhead(us)", "model-share")
	for _, p := range points {
		fmt.Fprintf(w, "%-10d %-8d %14.1f %11.0f%%\n",
			p.Replicas, p.Window, float64(p.Overhead.Nanoseconds())/1e3, p.ModelShare*100)
	}
}

// WriteFig4aTable renders Figure 4a: average number of replicas selected vs
// deadline, one series per (probability, LUI).
func WriteFig4aTable(w io.Writer, results []Fig4Result) {
	fmt.Fprintln(w, "Figure 4a — Average number of replicas selected")
	fmt.Fprintln(w)
	writeFig4Grid(w, results, func(r Fig4Result) string {
		return fmt.Sprintf("%6.2f", r.AvgSelected)
	})
}

// WriteFig4bTable renders Figure 4b: observed probability of timing failure
// vs deadline with 95% binomial confidence intervals.
func WriteFig4bTable(w io.Writer, results []Fig4Result) {
	fmt.Fprintln(w, "Figure 4b — Observed probability of timing failure (95% CI)")
	fmt.Fprintln(w)
	writeFig4Grid(w, results, func(r Fig4Result) string {
		return fmt.Sprintf("%.3f[%.3f,%.3f]", r.FailureProb, r.CI.Lo, r.CI.Hi)
	})
}

// writeFig4Grid pivots results into deadline rows × (prob,LUI) columns.
func writeFig4Grid(w io.Writer, results []Fig4Result, cell func(Fig4Result) string) {
	type colKey struct {
		prob float64
		lui  time.Duration
	}
	cols := make(map[colKey]bool)
	rows := make(map[time.Duration]map[colKey]Fig4Result)
	for _, r := range results {
		k := colKey{prob: r.MinProb, lui: r.LUI}
		cols[k] = true
		if rows[r.Deadline] == nil {
			rows[r.Deadline] = make(map[colKey]Fig4Result)
		}
		rows[r.Deadline][k] = r
	}

	colList := make([]colKey, 0, len(cols))
	for k := range cols {
		colList = append(colList, k)
	}
	sort.Slice(colList, func(i, j int) bool {
		if colList[i].lui != colList[j].lui {
			return colList[i].lui > colList[j].lui
		}
		return colList[i].prob > colList[j].prob
	})
	deadlines := make([]time.Duration, 0, len(rows))
	for d := range rows {
		deadlines = append(deadlines, d)
	}
	sort.Slice(deadlines, func(i, j int) bool { return deadlines[i] < deadlines[j] })

	fmt.Fprintf(w, "%-14s", "deadline(ms)")
	for _, c := range colList {
		fmt.Fprintf(w, " %22s", fmt.Sprintf("p=%.1f,LUI=%ds", c.prob, int(c.lui/time.Second)))
	}
	fmt.Fprintln(w)
	for _, d := range deadlines {
		fmt.Fprintf(w, "%-14d", d/time.Millisecond)
		for _, c := range colList {
			if r, ok := rows[d][c]; ok {
				fmt.Fprintf(w, " %22s", cell(r))
			} else {
				fmt.Fprintf(w, " %22s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteSelectorTable renders the baseline/hot-spot ablations.
func WriteSelectorTable(w io.Writer, title string, results []SelectorResult) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %8s %10s %12s %12s %10s %14s\n",
		"selector", "reads", "failures", "failureProb", "avgSelected", "loadCV", "meanResp(ms)")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s %8d %10d %12.3f %12.2f %10.2f %14.1f\n",
			r.Name, r.Reads, r.TimingFailures, r.FailureProb, r.AvgSelected, r.LoadCV,
			float64(r.MeanResponse.Microseconds())/1000)
	}
}

// WriteFailoverTable renders the crash-injection results.
func WriteFailoverTable(w io.Writer, results []FailoverResult) {
	fmt.Fprintln(w, "Failure injection — QoS under a mid-run crash")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %8s %10s %12s %12s %8s\n",
		"crash", "reads", "failures", "failureProb", "avgSelected", "done")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s %8d %10d %12.3f %12.2f %8v\n",
			r.Crash, r.Reads, r.TimingFailures, r.FailureProb, r.AvgSelected, r.Done)
	}
}

// WriteSweepTable renders a one-variable sweep (LUI or request delay).
func WriteSweepTable(w io.Writer, title, varName string, values []time.Duration, results []Fig4Result) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s %8s %12s %12s %14s\n", varName, "reads", "failureProb", "avgSelected", "meanResp(ms)")
	for i, r := range results {
		fmt.Fprintf(w, "%-14v %8d %12.3f %12.2f %14.1f\n",
			values[i], r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000)
	}
}
