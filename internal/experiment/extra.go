package experiment

import (
	"fmt"
	"io"
	"time"

	"aqua/internal/stats"
)

// CalibrationBucket is one row of the model-calibration experiment: reads
// whose predicted success probability fell in [Lo, Hi), against the
// fraction that actually met the deadline.
type CalibrationBucket struct {
	Lo, Hi    float64
	Reads     int
	OnTime    int
	Predicted float64 // mean prediction within the bucket
	Observed  float64
	CI        stats.BinomialCI
}

// RunCalibration validates the probabilistic model head-on (the paper's
// §5.1 claim that "the resulting model makes reasonably good predictions"):
// for every read the client records the model's predicted P_K(d) for the
// chosen set; we bucket predictions and compare with the observed fraction
// of timely responses.
func RunCalibration(cfg Fig4Config, buckets int) []CalibrationBucket {
	if buckets <= 0 {
		buckets = 5
	}
	type obs struct {
		predicted float64
	}
	var pending []obs
	out := make([]CalibrationBucket, buckets)
	for i := range out {
		out[i].Lo = float64(i) / float64(buckets)
		out[i].Hi = float64(i+1) / float64(buckets)
	}
	sumPred := make([]float64, buckets)

	cfg.OnSelect = func(predicted float64, selected int) {
		pending = append(pending, obs{predicted: predicted})
	}
	// The alternating driver calls OnSelect exactly once per read, in issue
	// order, and the result callback fires in the same order (closed loop:
	// one outstanding request at a time), so predictions and outcomes pair
	// by index. We recover outcomes from the run result's failure count per
	// read via a second hook: reuse the response recording by running the
	// point and pairing afterwards through the deterministic order.
	res := runFig4WithOutcomes(cfg, func(i int, timely bool) {
		if i >= len(pending) {
			return
		}
		p := pending[i].predicted
		b := int(p * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		out[b].Reads++
		sumPred[b] += p
		if timely {
			out[b].OnTime++
		}
	})
	_ = res
	for i := range out {
		if out[i].Reads > 0 {
			out[i].Predicted = sumPred[i] / float64(out[i].Reads)
			out[i].Observed = float64(out[i].OnTime) / float64(out[i].Reads)
			out[i].CI = stats.BinomialConfidence(out[i].OnTime, out[i].Reads, 0.95)
		}
	}
	return out
}

// runFig4WithOutcomes runs a Fig4 point and reports, per read index,
// whether the response met the deadline.
func runFig4WithOutcomes(cfg Fig4Config, onOutcome func(i int, timely bool)) Fig4Result {
	idx := 0
	deadline := cfg.Deadline
	cfg.onReadResult = func(respTime time.Duration) {
		onOutcome(idx, respTime <= deadline)
		idx++
	}
	return RunFig4Point(cfg)
}

// WriteCalibrationTable renders the calibration experiment.
func WriteCalibrationTable(w io.Writer, buckets []CalibrationBucket) {
	fmt.Fprintln(w, "Model calibration — predicted P_K(d) vs observed timely fraction")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s %8s %12s %12s %22s\n", "predicted bin", "reads", "meanPred", "observed", "95% CI")
	for _, b := range buckets {
		if b.Reads == 0 {
			continue
		}
		fmt.Fprintf(w, "[%.2f,%.2f)    %8d %12.3f %12.3f     [%.3f,%.3f]\n",
			b.Lo, b.Hi, b.Reads, b.Predicted, b.Observed, b.CI.Lo, b.CI.Hi)
	}
}

// GroupSplitResult is one row of the two-level-organization sweep.
type GroupSplitResult struct {
	Primaries   int // serving primaries (sequencer extra)
	Secondaries int
	Fig4Result
}

// RunGroupSplitSweep explores §3's tunability claim — "the size of these
// groups can be tuned to implement a range of consistency semantics" — by
// sweeping the primary/secondary split at a fixed total of serving
// replicas.
func RunGroupSplitSweep(base Fig4Config, splits [][2]int) []GroupSplitResult {
	return runPoints(splits, func(sp [2]int) GroupSplitResult {
		cfg := base
		cfg.Primaries = sp[0]
		cfg.Secondaries = sp[1]
		cfg.Seed = base.Seed + int64(sp[0]*100+sp[1])
		return GroupSplitResult{
			Primaries:   sp[0],
			Secondaries: sp[1],
			Fig4Result:  RunFig4Point(cfg),
		}
	})
}

// WriteGroupSplitTable renders the split sweep.
func WriteGroupSplitTable(w io.Writer, results []GroupSplitResult) {
	fmt.Fprintln(w, "Two-level organization — primary/secondary split at 10 serving replicas")
	fmt.Fprintln(w, "(d=140ms, Pc=0.9, LUI=2s; updates load every primary, reads spread wider)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-12s %8s %12s %12s %14s\n",
		"primaries", "secondaries", "reads", "failureProb", "avgSelected", "meanResp(ms)")
	for _, r := range results {
		fmt.Fprintf(w, "%-10d %-12d %8d %12.3f %12.2f %14.1f\n",
			r.Primaries, r.Secondaries, r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000)
	}
}

// WindowResult is one row of the sliding-window-size sweep.
type WindowResult struct {
	Window int
	Fig4Result
	// Overhead is the per-selection cost at this window size (Figure 3's
	// other axis), measured on the same synthetic setup as fig3.
	Overhead time.Duration
}

// RunWindowSweep studies the window-size trade-off the paper describes in
// §5.2 ("include a reasonable number of recently measured values, while
// eliminating obsolete measurements"): prediction quality (failure rate)
// versus selection overhead.
func RunWindowSweep(base Fig4Config, windows []int) []WindowResult {
	return runPoints(windows, func(wsize int) WindowResult {
		cfg := base
		cfg.WindowSize = wsize
		cfg.Seed = base.Seed + int64(wsize)
		r := RunFig4Point(cfg)
		fp := RunFig3Point(10, wsize, 300, base.Seed)
		return WindowResult{Window: wsize, Fig4Result: r, Overhead: fp.Overhead}
	})
}

// WriteWindowTable renders the window sweep.
func WriteWindowTable(w io.Writer, results []WindowResult) {
	fmt.Fprintln(w, "Sliding-window size — prediction quality vs selection overhead")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %8s %12s %12s %14s %14s\n",
		"window", "reads", "failureProb", "avgSelected", "meanResp(ms)", "overhead(us)")
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %8d %12.3f %12.2f %14.1f %14.1f\n",
			r.Window, r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000,
			float64(r.Overhead.Nanoseconds())/1e3)
	}
}

// EstimatorResult is one row of the staleness-estimator ablation.
type EstimatorResult struct {
	Name string
	Fig4Result
}

// RunEstimatorAblation compares the paper's pure-Poisson staleness factor
// (Equation 4) against the n_L-anchored counted estimator.
func RunEstimatorAblation(base Fig4Config) []EstimatorResult {
	return runPoints([]bool{false, true}, func(counted bool) EstimatorResult {
		cfg := base
		cfg.CountedEstimator = counted
		name := "poisson(eq4)"
		if counted {
			name = "counted(nL)"
		}
		return EstimatorResult{Name: name, Fig4Result: RunFig4Point(cfg)}
	})
}

// WriteEstimatorTable renders the estimator ablation.
func WriteEstimatorTable(w io.Writer, results []EstimatorResult) {
	fmt.Fprintln(w, "Staleness estimator — Equation 4 vs n_L-anchored variant")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s %8s %12s %12s %14s\n",
		"estimator", "reads", "failureProb", "avgSelected", "meanResp(ms)")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %8d %12.3f %12.2f %14.1f\n",
			r.Name, r.Reads, r.FailureProb, r.AvgSelected,
			float64(r.MeanResponse.Microseconds())/1000)
	}
}
