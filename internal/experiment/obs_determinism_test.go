package experiment

import (
	"bytes"
	"strings"
	"testing"

	"aqua/internal/obs"
	"aqua/internal/sim"
)

// TestFig4SweepObservabilityInvariant is the observability subsystem's core
// guarantee: enabling metrics and tracing on a sweep leaves the rendered
// Figure 4 tables byte-identical, because instruments only record — they
// never read clocks, allocate timers, or schedule events on the virtual-time
// path. A violation here means an instrument perturbed the simulation.
func TestFig4SweepObservabilityInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep grid in -short mode")
	}
	mkSweep := func() Fig4Sweep {
		sw := DefaultFig4Sweep()
		sw.Base = Fig4Config{Seed: 2002, Requests: 30}
		sw.Deadlines = sw.Deadlines[:2]
		sw.Configs = sw.Configs[:2]
		return sw
	}
	render := func(results []Fig4Result) []byte {
		var buf bytes.Buffer
		WriteFig4aTable(&buf, results)
		WriteFig4bTable(&buf, results)
		return buf.Bytes()
	}

	plain := mkSweep()
	want := render(plain.Run())

	var traced bytes.Buffer
	observed := mkSweep()
	observed.Base.Obs = obs.NewRegistry()
	observed.Base.Trace = obs.NewTracer(&traced, sim.Epoch)
	got := render(observed.Run())
	if err := observed.Base.Trace.Flush(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(want, got) {
		t.Fatalf("enabling observability changed the rendered tables:\n--- metrics off ---\n%s--- metrics on ---\n%s", want, got)
	}

	// The run was genuinely observed, not silently disconnected.
	var snap bytes.Buffer
	if err := observed.Base.Obs.WritePrometheus(&snap); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"aqua_client_reads_total",
		"aqua_client_selections_total",
		"aqua_replica_reads_served_total",
		"aqua_sequencer_gsn_assigned_total",
		"sim_scheduler_events_total",
	} {
		if !strings.Contains(snap.String(), metric) {
			t.Fatalf("metrics snapshot missing %s:\n%s", metric, snap.String())
		}
	}
	if traced.Len() == 0 {
		t.Fatal("tracer captured no spans")
	}
	if !strings.Contains(traced.String(), `"run":"fig4 d=80ms`) {
		t.Fatalf("trace spans missing run labels:\n%.500s", traced.String())
	}
}
