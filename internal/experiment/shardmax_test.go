package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/shard"
	"aqua/internal/sim"
	"aqua/internal/workload"
)

// TestFig4ShardedSingleIsByteIdentical is the byte-identity pin promised in
// Fig4Config: Sharded == 1 deploys through core.DeployShards and fronts the
// clients with shard routers, yet must reproduce the unsharded sweep exactly
// — same node IDs, same rand streams, same event order, same tables.
func TestFig4ShardedSingleIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep in -short mode")
	}
	render := func(sharded int) ([]Fig4Result, []byte) {
		var results []Fig4Result
		for _, deadline := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
			results = append(results, RunFig4Point(Fig4Config{
				Seed:         77,
				Deadline:     deadline,
				MinProb:      0.05,
				Requests:     60,
				RequestDelay: 100 * time.Millisecond,
				Sharded:      sharded,
			}))
		}
		var buf bytes.Buffer
		WriteFig4aTable(&buf, results)
		WriteFig4bTable(&buf, results)
		return results, buf.Bytes()
	}

	plain, plainTab := render(0)
	single, singleTab := render(1)
	if !reflect.DeepEqual(plain, single) {
		t.Fatalf("Sharded=1 results diverged from unsharded:\n%+v\nvs\n%+v", plain, single)
	}
	if !bytes.Equal(plainTab, singleTab) {
		t.Fatalf("Sharded=1 tables diverged from unsharded:\n--- plain ---\n%s\n--- sharded=1 ---\n%s",
			plainTab, singleTab)
	}
}

// shardPinService mirrors RunShardmaxPoint's service config.
func shardPinService() core.ServiceConfig {
	return core.ServiceConfig{
		Primaries:         4,
		Secondaries:       2,
		LazyInterval:      100 * time.Millisecond,
		Group:             group.DefaultConfig(),
		NewApp:            func() app.Application { return apps.NewKVStore() },
		SeqCostBase:       150 * time.Microsecond,
		SeqCostPerReq:     8 * time.Microsecond,
		AssignBatch:       256,
		AssignBatchWindow: time.Millisecond,
		FastReads:         true,
	}
}

// TestShardmaxSingleShardMatchesUnsharded pins the shardmax half of the N=1
// contract at the engine level: the multi-shard request path over one shard
// must draw the same rands and send the same messages as the single-service
// path with the same key distribution, making every metric — including the
// full latency histograms — byte-identical.
func TestShardmaxSingleShardMatchesUnsharded(t *testing.T) {
	run := func(sharded bool) workload.EngineMetrics {
		s := sim.NewScheduler(99)
		rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{
			Min: 200 * time.Microsecond,
			Max: time.Millisecond,
		}))
		ecfg := workload.EngineConfig{
			Keys:         &workload.UniformKeys{N: 4096},
			Clients:      2000,
			Arrivals:     workload.Poisson{Rate: 8000},
			ReadFraction: 0.5,
			Deadline:     25 * time.Millisecond,
		}
		if sharded {
			sd, err := core.DeployShards(rt, shardPinService(), 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			ecfg.Shards = sd.Infos
			ecfg.ShardOf = shard.NewUniform(1).Owner
		} else {
			d, err := core.Deploy(rt, shardPinService(), nil)
			if err != nil {
				t.Fatal(err)
			}
			ecfg.Service = d.Info
		}
		eng := workload.NewEngine(ecfg)
		rt.Register("load", eng)
		rt.Start()
		s.RunFor(time.Second)
		return eng.Metrics()
	}

	sharded, unsharded := run(true), run(false)
	if sharded.Completed == 0 {
		t.Fatal("pin run completed nothing")
	}
	if !reflect.DeepEqual(sharded, unsharded) {
		t.Fatalf("one-shard engine metrics diverged from unsharded:\n%+v\nvs\n%+v", sharded, unsharded)
	}
}

// smokeShardmaxConfig is small enough for -race CI yet spans the single
// sequencer pipeline's saturation point (~105k/s at 150µs+8µs cost), so the
// 4-shard ramp demonstrably outlasts the 1-shard one.
func smokeShardmaxConfig() ShardmaxConfig {
	return ShardmaxConfig{
		Seed:         43,
		Shards:       []int{1, 4},
		Clients:      2000,
		Rates:        []float64{16000, 128000},
		Warmup:       200 * time.Millisecond,
		StepDuration: 500 * time.Millisecond,
	}
}

func TestShardmaxSmokeScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("shardmax ramp in -short mode")
	}
	rep := RunShardmax(smokeShardmaxConfig())

	var buf bytes.Buffer
	WriteShardmaxTable(&buf, rep)
	t.Logf("\n%s", buf.String())

	one, four := rep.Results[0], rep.Results[1]
	if one.PeakRate == 0 {
		t.Fatal("one shard sustained nothing, even at the lowest rate")
	}
	if one.PeakRate >= rep.Config.Rates[len(rep.Config.Rates)-1] {
		t.Fatalf("one shard sustained the top rate %.0f — the ramp never found its ceiling", one.PeakRate)
	}
	if four.PeakRate <= one.PeakRate {
		t.Fatalf("4-shard peak %.0f not above 1-shard peak %.0f", four.PeakRate, one.PeakRate)
	}
	if four.SpeedupUpdates < 2.5 {
		t.Fatalf("4-shard speedup %.2fx below 2.5x even on the smoke ramp", four.SpeedupUpdates)
	}
	for _, p := range four.Points {
		if !p.Sustained {
			continue
		}
		if len(p.PerShardCompleted) != 4 {
			t.Fatalf("point at %.0f/s reports %d shards", p.OfferedRate, len(p.PerShardCompleted))
		}
		for i, c := range p.PerShardCompleted {
			if c == 0 {
				t.Fatalf("point at %.0f/s: shard %d completed nothing", p.OfferedRate, i)
			}
		}
	}
}

// TestShardmaxHotShardZipf is the hot-shard scenario: a Zipf key stream
// concentrates load on the shard owning the hottest keys, and the per-shard
// counters expose the skew while every shard still makes progress.
func TestShardmaxHotShardZipf(t *testing.T) {
	s := sim.NewScheduler(17)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{
		Min: 200 * time.Microsecond,
		Max: time.Millisecond,
	}))
	const shards = 4
	sd, err := core.DeployShards(rt, shardPinService(), shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := shard.NewUniform(shards)
	eng := workload.NewEngine(workload.EngineConfig{
		Shards:  sd.Infos,
		ShardOf: m.Owner,
		// 256 keys: enough that every shard owns a slice of the keyspace
		// (short sequential keys hash unevenly), while the Zipf head still
		// dominates the draw stream.
		Keys:         &workload.ZipfKeys{N: 256},
		Clients:      2000,
		Arrivals:     workload.Poisson{Rate: 8000},
		ReadFraction: 0.5,
		Deadline:     25 * time.Millisecond,
	})
	rt.Register("load", eng)
	rt.Start()
	s.RunFor(2 * time.Second)

	issued, completed := eng.ShardCounts()
	hot := m.Owner("k0")
	var total, min, max uint64
	min = issued[0]
	for i := 0; i < shards; i++ {
		total += issued[i]
		if issued[i] < min {
			min = issued[i]
		}
		if issued[i] > max {
			max = issued[i]
		}
		if completed[i] == 0 {
			t.Fatalf("shard %d completed nothing under the hot-key stream", i)
		}
	}
	if issued[hot] != max {
		t.Fatalf("shard %d owns the hottest key but shard counts are %v", hot, issued)
	}
	if issued[hot] <= total/shards {
		t.Fatalf("hot shard issued %d of %d — no skew above fair share", issued[hot], total)
	}
	if max < min*3/2 {
		t.Fatalf("skew too shallow: max %d vs min %d", max, min)
	}
	var done uint64
	for _, c := range completed {
		done += c
	}
	if done != eng.Metrics().Completed {
		t.Fatalf("per-shard completions %d != engine total %d", done, eng.Metrics().Completed)
	}
}

// TestShardmaxParallelismDeterminism mirrors the loadmax guarantee for the
// sharded sweep: byte-identical output at any worker-pool parallelism.
func TestShardmaxParallelismDeterminism(t *testing.T) {
	cfg := smokeShardmaxConfig()
	cfg.Shards = []int{1, 2}
	cfg.Rates = []float64{8000, 32000}
	cfg.StepDuration = 300 * time.Millisecond

	render := func(par int) []byte {
		old := Parallelism()
		SetParallelism(par)
		defer SetParallelism(old)
		rep := RunShardmax(cfg)
		var buf bytes.Buffer
		WriteShardmaxTable(&buf, rep)
		if err := WriteShardmaxJSON(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	one := render(1)
	if got := render(4); !bytes.Equal(got, one) {
		t.Fatal("shardmax output diverged between parallelism 1 and 4")
	}
}

// BENCH_shardmax.json at the repo root is the committed artifact of the full
// sweep (scripts/bench.sh regenerates it). Guard its shape and the headline
// claim: 4 shards sustain at least 2.5x the 1-shard peak updates/sec under
// the same batching config.
func TestBenchShardmaxJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_shardmax.json")
	if err != nil {
		t.Skipf("BENCH_shardmax.json not present: %v", err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		ShardmaxReport
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_shardmax.json is not valid JSON: %v", err)
	}
	if doc.Experiment != "shardmax" {
		t.Fatalf("experiment = %q, want shardmax", doc.Experiment)
	}
	var one, four *ShardmaxResult
	for i := range doc.Results {
		res := &doc.Results[i]
		if len(res.Points) == 0 {
			t.Fatalf("%d-shard ramp has no points", res.Shards)
		}
		switch res.Shards {
		case 1:
			one = res
		case 4:
			four = res
		}
	}
	if one == nil || four == nil {
		t.Fatal("missing the 1-shard or 4-shard ramp")
	}
	if one.PeakUpdatesPerSec <= 0 || four.PeakUpdatesPerSec <= 0 {
		t.Fatalf("non-positive peaks: 1-shard %.0f, 4-shard %.0f",
			one.PeakUpdatesPerSec, four.PeakUpdatesPerSec)
	}
	if four.SpeedupUpdates < 2.5 {
		t.Fatalf("speedup_updates = %.2f at 4 shards, want >= 2.5", four.SpeedupUpdates)
	}
}
