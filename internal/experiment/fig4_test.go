package experiment

import (
	"testing"
	"time"
)

// smallFig4 keeps unit-test runs fast: 60 requests, short think time.
func smallFig4() Fig4Config {
	return Fig4Config{
		Seed:         1,
		Deadline:     160 * time.Millisecond,
		MinProb:      0.9,
		LUI:          2 * time.Second,
		Requests:     60,
		RequestDelay: 200 * time.Millisecond,
	}
}

func TestRunFig4PointCompletes(t *testing.T) {
	r := RunFig4Point(smallFig4())
	if !r.Done {
		t.Fatal("run did not complete its request quota")
	}
	if r.Reads != 30 {
		t.Fatalf("reads = %d, want 30 (half of 60 alternating)", r.Reads)
	}
	if r.AvgSelected <= 0 {
		t.Fatalf("avg selected = %v", r.AvgSelected)
	}
	if r.MeanResponse <= 0 {
		t.Fatal("mean response not measured")
	}
	if r.CI.Hi < r.CI.Lo {
		t.Fatalf("CI = %+v", r.CI)
	}
}

func TestRunFig4PointMeetsQoS(t *testing.T) {
	cfg := smallFig4()
	cfg.Deadline = 200 * time.Millisecond
	r := RunFig4Point(cfg)
	// The core claim of Figure 4b: observed failure probability stays
	// within 1 − Pc. With a small sample allow CI slack.
	if r.FailureProb > (1-cfg.MinProb)+0.1 {
		t.Fatalf("failure prob %.3f grossly exceeds 1-Pc = %.3f", r.FailureProb, 1-cfg.MinProb)
	}
}

func TestRunFig4PointDeterministicForSeed(t *testing.T) {
	a := RunFig4Point(smallFig4())
	b := RunFig4Point(smallFig4())
	if a.TimingFailures != b.TimingFailures || a.AvgSelected != b.AvgSelected || a.MeanResponse != b.MeanResponse {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFig4TighterDeadlineSelectsMoreReplicas(t *testing.T) {
	loose := smallFig4()
	loose.Deadline = 220 * time.Millisecond
	tight := smallFig4()
	tight.Deadline = 90 * time.Millisecond
	rl := RunFig4Point(loose)
	rt := RunFig4Point(tight)
	// Figure 4a's shape: stricter deadlines need more replicas.
	if rt.AvgSelected <= rl.AvgSelected {
		t.Fatalf("tight %.2f <= loose %.2f replicas selected", rt.AvgSelected, rl.AvgSelected)
	}
}

func TestDefaultFig4Sweep(t *testing.T) {
	sw := DefaultFig4Sweep()
	if len(sw.Deadlines) != 8 || len(sw.Configs) != 4 {
		t.Fatalf("sweep = %d deadlines, %d configs", len(sw.Deadlines), len(sw.Configs))
	}
}
