package experiment

import (
	"testing"
	"time"
)

func ablationBase() Fig4Config {
	return Fig4Config{
		Seed:         9,
		Deadline:     160 * time.Millisecond,
		MinProb:      0.9,
		LUI:          2 * time.Second,
		Requests:     40,
		RequestDelay: 150 * time.Millisecond,
	}
}

func TestRunBaselinesCoversAllSelectors(t *testing.T) {
	res := RunBaselines(ablationBase())
	if len(res) != 5 {
		t.Fatalf("rows = %d", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Name] = true
		if !r.Done {
			t.Fatalf("%s run did not complete", r.Name)
		}
	}
	for _, want := range []string{"algorithm1", "stateless", "all", "single", "randomk"} {
		if !names[want] {
			t.Fatalf("missing selector %s", want)
		}
	}
	// All selects everything; Single selects one.
	for _, r := range res {
		switch r.Name {
		case "all":
			if r.AvgSelected != 10 {
				t.Fatalf("all avg selected = %v", r.AvgSelected)
			}
		case "single":
			if r.AvgSelected != 1 {
				t.Fatalf("single avg selected = %v", r.AvgSelected)
			}
		}
	}
}

func TestRunHotspotPair(t *testing.T) {
	res := RunHotspot(ablationBase())
	if len(res) != 2 || res[0].Name != "algorithm1" || res[1].Name != "cdfgreedy" {
		t.Fatalf("rows = %+v", res)
	}
}

func TestRunFailoverScenarios(t *testing.T) {
	base := ablationBase()
	res := RunFailover(base)
	if len(res) != 4 {
		t.Fatalf("rows = %d", len(res))
	}
	for _, r := range res {
		if !r.Done {
			t.Fatalf("crash=%s run did not complete its workload", r.Crash)
		}
		// The dependability claim: QoS held despite the crash (generous
		// slack for the small sample).
		if r.FailureProb > (1-base.MinProb)+0.15 {
			t.Fatalf("crash=%s failure prob %.3f grossly out of spec", r.Crash, r.FailureProb)
		}
	}
}

func TestRunLUISweepShape(t *testing.T) {
	luis := []time.Duration{500 * time.Millisecond, 4 * time.Second}
	res := RunLUISweep(ablationBase(), luis)
	if len(res) != 2 {
		t.Fatalf("rows = %d", len(res))
	}
	// Figure 4a's LUI effect: a longer lazy interval means staler
	// secondaries, so more replicas are needed.
	if res[1].AvgSelected <= res[0].AvgSelected {
		t.Fatalf("LUI 4s selected %.2f <= LUI 0.5s %.2f", res[1].AvgSelected, res[0].AvgSelected)
	}
}

func TestRunRequestDelaySweep(t *testing.T) {
	delays := []time.Duration{100 * time.Millisecond, time.Second}
	res := RunRequestDelaySweep(ablationBase(), delays)
	if len(res) != 2 {
		t.Fatalf("rows = %d", len(res))
	}
	for i, r := range res {
		if r.Reads == 0 {
			t.Fatalf("row %d has no reads", i)
		}
	}
}
