package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// smokeLoadmaxConfig is small enough for -race CI yet still spans the
// unbatched sequencer's saturation point (~4k/s at 150µs+2µs pipeline
// cost), so the batched ramp demonstrably outlasts the baseline.
func smokeLoadmaxConfig() LoadmaxConfig {
	return LoadmaxConfig{
		Seed:         41,
		Clients:      2000,
		Rates:        []float64{1000, 4000, 16000},
		Warmup:       200 * time.Millisecond,
		StepDuration: 500 * time.Millisecond,
	}
}

func TestLoadmaxBatchingSpeedup(t *testing.T) {
	pair := RunLoadmaxPair(smokeLoadmaxConfig())

	var buf bytes.Buffer
	WriteLoadmaxTable(&buf, pair)
	t.Logf("\n%s", buf.String())

	if pair.Baseline.PeakRate == 0 {
		t.Fatal("baseline sustained nothing, even at the lowest rate")
	}
	if pair.Baseline.PeakRate >= pair.Config.Rates[len(pair.Config.Rates)-1] {
		t.Fatalf("baseline sustained the top rate %.0f — the ramp never found its ceiling", pair.Baseline.PeakRate)
	}
	if pair.Batched.PeakRate <= pair.Baseline.PeakRate {
		t.Fatalf("batched peak %.0f not above baseline peak %.0f", pair.Batched.PeakRate, pair.Baseline.PeakRate)
	}
	if pair.SpeedupUpdates < 2.5 {
		t.Fatalf("speedup %.2fx below 2.5x even on the smoke ramp", pair.SpeedupUpdates)
	}
	for _, p := range pair.Batched.Points {
		if p.Sustained && p.AssignFlushes == 0 {
			t.Fatalf("batched point at %.0f/s recorded no assign-batch flushes", p.OfferedRate)
		}
		if p.Sustained && p.FastServed == 0 {
			t.Fatalf("batched point at %.0f/s served no reads on the fast path", p.OfferedRate)
		}
	}
	for _, p := range pair.Baseline.Points {
		if p.FastServed != 0 {
			t.Fatalf("baseline point at %.0f/s used the fast path (%d)", p.OfferedRate, p.FastServed)
		}
	}
}

// The loadmax sweep must render byte-identically at any worker-pool
// parallelism: each step is share-nothing, so scheduling order cannot leak
// into results.
func TestLoadmaxParallelismDeterminism(t *testing.T) {
	cfg := smokeLoadmaxConfig()
	cfg.Rates = []float64{2000, 8000}
	cfg.StepDuration = 300 * time.Millisecond

	render := func(par int) []byte {
		old := Parallelism()
		SetParallelism(par)
		defer SetParallelism(old)
		pair := RunLoadmaxPair(cfg)
		var buf bytes.Buffer
		WriteLoadmaxTable(&buf, pair)
		if err := WriteLoadmaxJSON(&buf, pair); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	one := render(1)
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := render(par); !bytes.Equal(got, one) {
			t.Fatalf("loadmax output diverged between parallelism 1 and %d", par)
		}
	}
}

// BENCH_loadmax.json at the repo root is the committed artifact of the full
// ramp (scripts/bench.sh regenerates it). Guard its shape and the headline
// claim: batched GSN assignment sustains at least 3x the baseline's peak
// updates/sec in the same run.
func TestBenchLoadmaxJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_loadmax.json")
	if err != nil {
		t.Skipf("BENCH_loadmax.json not present: %v", err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		LoadmaxPair
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_loadmax.json is not valid JSON: %v", err)
	}
	if doc.Experiment != "loadmax" {
		t.Fatalf("experiment = %q, want loadmax", doc.Experiment)
	}
	if len(doc.Baseline.Points) == 0 || len(doc.Batched.Points) == 0 {
		t.Fatal("missing ramp points")
	}
	if doc.Baseline.PeakUpdatesPerSec <= 0 || doc.Batched.PeakUpdatesPerSec <= 0 {
		t.Fatalf("non-positive peaks: baseline %.0f, batched %.0f",
			doc.Baseline.PeakUpdatesPerSec, doc.Batched.PeakUpdatesPerSec)
	}
	if doc.SpeedupUpdates < 3 {
		t.Fatalf("speedup_updates = %.2f, want >= 3", doc.SpeedupUpdates)
	}
}
