package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/sim"
	"aqua/internal/workload"
)

// LoadmaxConfig parameterizes the heavy-traffic load ramp: an open-loop
// engine offers an increasing arrival rate against a deployment whose
// sequencer pays a modelled ordering-pipeline cost per broadcast, and the
// experiment reports the highest offered rate the service sustains — p99
// read latency and timing-failure rate inside their bounds, no load shed.
// Running the same ramp with and without batched GSN assignment (same
// seeds, same arrival streams) isolates the group-commit win.
type LoadmaxConfig struct {
	Seed int64

	// Primaries counts serving primaries (the sequencer is extra, as in
	// Fig4Config); Secondaries the secondary group. Defaults 3 and 2.
	Primaries   int
	Secondaries int
	// LUI is the lazy update interval (default 100ms).
	LUI time.Duration

	// Clients is the simulated open-loop population (default 10000).
	Clients int
	// ReadFraction is the read share of the offered stream (default 0.5).
	ReadFraction float64
	// Staleness is the read staleness bound a (default 0: sequential).
	Staleness int

	// Deadline is the per-read deadline (default 25ms); P99Bound the
	// sustained-rate criterion on windowed p99 read latency (default =
	// Deadline); MaxFailureRate the bound on the windowed timing-failure
	// rate (default 0.01).
	Deadline       time.Duration
	P99Bound       time.Duration
	MaxFailureRate float64

	// Rates is the offered-rate ramp in requests/second (default a
	// geometric ×2 ladder 1000..64000).
	Rates []float64
	// Warmup elapses before the measurement window of each step; the
	// window lasts StepDuration (defaults 500ms and 2s). Every step is an
	// independent run — share-nothing, like every sweep in this package.
	Warmup       time.Duration
	StepDuration time.Duration

	// SeqCostBase/SeqCostPerReq model the sequencer ordering pipeline
	// (defaults 150µs + 2µs/request): each broadcast occupies the pipeline
	// for base + n·perReq, which is what makes per-request broadcasts
	// saturate and amortized batches not.
	SeqCostBase   time.Duration
	SeqCostPerReq time.Duration
	// AssignBatch/AssignBatchWindow configure the batched mode (defaults
	// 256 requests / 1ms window).
	AssignBatch       int
	AssignBatchWindow time.Duration
}

func (c *LoadmaxConfig) setDefaults() {
	if c.Primaries == 0 {
		c.Primaries = 3
	}
	if c.Secondaries == 0 {
		c.Secondaries = 2
	}
	if c.LUI == 0 {
		c.LUI = 100 * time.Millisecond
	}
	if c.Clients == 0 {
		c.Clients = 10000
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.Deadline == 0 {
		c.Deadline = 25 * time.Millisecond
	}
	if c.P99Bound == 0 {
		c.P99Bound = c.Deadline
	}
	if c.MaxFailureRate == 0 {
		c.MaxFailureRate = 0.01
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1000, 2000, 4000, 8000, 16000, 32000, 64000}
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.StepDuration == 0 {
		c.StepDuration = 2 * time.Second
	}
	if c.SeqCostBase == 0 {
		c.SeqCostBase = 150 * time.Microsecond
	}
	if c.SeqCostPerReq == 0 {
		c.SeqCostPerReq = 2 * time.Microsecond
	}
	if c.AssignBatch == 0 {
		c.AssignBatch = 256
	}
	if c.AssignBatchWindow == 0 {
		c.AssignBatchWindow = time.Millisecond
	}
}

// LoadmaxPoint is one measured step of the ramp.
type LoadmaxPoint struct {
	OfferedRate float64 `json:"offered_rate"`
	Batched     bool    `json:"batched"`

	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Expired   uint64 `json:"expired"`

	UpdatesPerSec float64 `json:"updates_per_sec"`
	ReadsPerSec   float64 `json:"reads_per_sec"`

	ReadP50MS   float64 `json:"read_p50_ms"`
	ReadP99MS   float64 `json:"read_p99_ms"`
	UpdateP99MS float64 `json:"update_p99_ms"`
	FailureRate float64 `json:"failure_rate"`

	// FastServed counts frontier fast-path reads across serving replicas
	// (whole run, not just the window).
	FastServed uint64 `json:"fast_served"`
	// AssignFlushes counts sequencer batch flushes (whole run).
	AssignFlushes uint64 `json:"assign_flushes"`

	Sustained bool `json:"sustained"`
}

// LoadmaxResult is one mode's full ramp with its peak sustained point.
type LoadmaxResult struct {
	Batched bool           `json:"batched"`
	Points  []LoadmaxPoint `json:"points"`

	// Peak* report the highest offered rate whose step met every bound,
	// with that step's completed throughput split by kind. All zero if no
	// step was sustained.
	PeakRate          float64 `json:"peak_rate"`
	PeakUpdatesPerSec float64 `json:"peak_updates_per_sec"`
	PeakReadsPerSec   float64 `json:"peak_reads_per_sec"`
}

// LoadmaxPair is the same-run baseline comparison: identical ramp, seeds,
// and arrival streams, with only the sequencer's assignment mode (and the
// frontier read fast path) switched.
type LoadmaxPair struct {
	Config   LoadmaxConfig `json:"config"`
	Baseline LoadmaxResult `json:"baseline"`
	Batched  LoadmaxResult `json:"batched"`

	// SpeedupUpdates is batched peak sustained updates/sec over baseline;
	// SpeedupRate the same ratio on offered peak rate.
	SpeedupUpdates float64 `json:"speedup_updates"`
	SpeedupRate    float64 `json:"speedup_rate"`
}

// loadmaxStep is one share-nothing unit of work for the sweep pool.
type loadmaxStep struct {
	cfg     LoadmaxConfig
	rate    float64
	batched bool
}

// RunLoadmaxPoint executes one step: deploy, warm up, measure one window.
func RunLoadmaxPoint(cfg LoadmaxConfig, rate float64, batched bool) LoadmaxPoint {
	cfg.setDefaults()

	s := sim.NewScheduler(cfg.Seed + int64(rate))
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{
		Min: 200 * time.Microsecond,
		Max: time.Millisecond,
	}))

	svc := core.ServiceConfig{
		Primaries:     cfg.Primaries + 1, // + sequencer
		Secondaries:   cfg.Secondaries,
		LazyInterval:  cfg.LUI,
		Group:         group.DefaultConfig(),
		NewApp:        func() app.Application { return apps.NewKVStore() },
		SeqCostBase:   cfg.SeqCostBase,
		SeqCostPerReq: cfg.SeqCostPerReq,
	}
	if batched {
		svc.AssignBatch = cfg.AssignBatch
		svc.AssignBatchWindow = cfg.AssignBatchWindow
		svc.FastReads = true
	}
	d, err := core.Deploy(rt, svc, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: loadmax deploy: %v", err)) // static config bug
	}
	eng := workload.NewEngine(workload.EngineConfig{
		Service:      d.Info,
		Clients:      cfg.Clients,
		Arrivals:     workload.Poisson{Rate: rate},
		ReadFraction: cfg.ReadFraction,
		Staleness:    cfg.Staleness,
		Deadline:     cfg.Deadline,
	})
	rt.Register("load", eng)
	rt.Start()

	s.RunFor(cfg.Warmup)
	before := eng.Metrics()
	s.RunFor(cfg.StepDuration)
	w := eng.Metrics().Sub(before)

	secs := cfg.StepDuration.Seconds()
	p := LoadmaxPoint{
		OfferedRate:   rate,
		Batched:       batched,
		Issued:        w.Issued,
		Completed:     w.Completed,
		Shed:          w.Shed,
		Expired:       w.Expired,
		UpdatesPerSec: float64(w.UpdatesDone) / secs,
		ReadsPerSec:   float64(w.ReadsDone) / secs,
		ReadP50MS:     durMS(w.ReadLatency.Quantile(0.50)),
		ReadP99MS:     durMS(w.ReadLatency.Quantile(0.99)),
		UpdateP99MS:   durMS(w.UpdateLatency.Quantile(0.99)),
	}
	for _, id := range d.ServingPrimaries {
		p.FastServed += d.Replicas[id].FastServed()
	}
	flushes, _ := d.Replicas[d.Sequencer].AssignBatchStats()
	p.AssignFlushes = flushes
	// Timing failures over reads resolved in the window (completions plus
	// expiries — the open-loop denominator the bound is judged against).
	if denom := w.ReadsDone + w.Expired; denom > 0 {
		p.FailureRate = float64(w.TimingFailures) / float64(denom)
	}
	p.Sustained = w.Shed == 0 &&
		p.FailureRate <= cfg.MaxFailureRate &&
		p.ReadP99MS <= durMS(cfg.P99Bound) &&
		w.ReadsDone > 0 && w.UpdatesDone > 0
	return p
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// collect folds one mode's points into a result with its peak.
func collectLoadmax(batched bool, points []LoadmaxPoint) LoadmaxResult {
	res := LoadmaxResult{Batched: batched, Points: points}
	for _, p := range points {
		if p.Sustained && p.OfferedRate > res.PeakRate {
			res.PeakRate = p.OfferedRate
			res.PeakUpdatesPerSec = p.UpdatesPerSec
			res.PeakReadsPerSec = p.ReadsPerSec
		}
	}
	return res
}

// RunLoadmax runs one mode's full ramp on the package worker pool.
func RunLoadmax(cfg LoadmaxConfig, batched bool) LoadmaxResult {
	cfg.setDefaults()
	steps := make([]loadmaxStep, len(cfg.Rates))
	for i, r := range cfg.Rates {
		steps[i] = loadmaxStep{cfg: cfg, rate: r, batched: batched}
	}
	points := runPoints(steps, func(st loadmaxStep) LoadmaxPoint {
		return RunLoadmaxPoint(st.cfg, st.rate, st.batched)
	})
	return collectLoadmax(batched, points)
}

// RunLoadmaxPair runs the baseline (unbatched, per-request broadcasts) and
// batched ramps as one sweep — every step of both modes fans across the
// same worker pool — and reports the peak-throughput ratio.
func RunLoadmaxPair(cfg LoadmaxConfig) LoadmaxPair {
	cfg.setDefaults()
	steps := make([]loadmaxStep, 0, 2*len(cfg.Rates))
	for _, batched := range []bool{false, true} {
		for _, r := range cfg.Rates {
			steps = append(steps, loadmaxStep{cfg: cfg, rate: r, batched: batched})
		}
	}
	points := runPoints(steps, func(st loadmaxStep) LoadmaxPoint {
		return RunLoadmaxPoint(st.cfg, st.rate, st.batched)
	})
	n := len(cfg.Rates)
	pair := LoadmaxPair{
		Config:   cfg,
		Baseline: collectLoadmax(false, points[:n]),
		Batched:  collectLoadmax(true, points[n:]),
	}
	if pair.Baseline.PeakUpdatesPerSec > 0 {
		pair.SpeedupUpdates = pair.Batched.PeakUpdatesPerSec / pair.Baseline.PeakUpdatesPerSec
	}
	if pair.Baseline.PeakRate > 0 {
		pair.SpeedupRate = pair.Batched.PeakRate / pair.Baseline.PeakRate
	}
	return pair
}

// WriteLoadmaxTable renders both ramps side by side.
func WriteLoadmaxTable(w io.Writer, pair LoadmaxPair) {
	fmt.Fprintln(w, "Loadmax — peak sustained throughput, batched GSN assignment vs per-request")
	fmt.Fprintf(w, "(bounds: read p99 <= %.1fms, failure rate <= %.3f, no shed)\n\n",
		durMS(pair.Config.P99Bound), pair.Config.MaxFailureRate)
	for _, res := range []LoadmaxResult{pair.Baseline, pair.Batched} {
		mode := "baseline (unbatched)"
		if res.Batched {
			mode = "batched + fast reads"
		}
		fmt.Fprintf(w, "%s\n", mode)
		fmt.Fprintf(w, "%-12s %10s %10s %8s %10s %10s %10s %9s %5s\n",
			"offered/s", "upd/s", "reads/s", "shed", "p50(ms)", "p99(ms)", "failRate", "fast", "ok")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%-12.0f %10.0f %10.0f %8d %10.2f %10.2f %10.4f %9d %5v\n",
				p.OfferedRate, p.UpdatesPerSec, p.ReadsPerSec, p.Shed,
				p.ReadP50MS, p.ReadP99MS, p.FailureRate, p.FastServed, p.Sustained)
		}
		fmt.Fprintf(w, "peak: %.0f offered/s (%.0f upd/s, %.0f reads/s)\n\n",
			res.PeakRate, res.PeakUpdatesPerSec, res.PeakReadsPerSec)
	}
	fmt.Fprintf(w, "speedup: %.2fx peak sustained updates/sec, %.2fx peak offered rate\n",
		pair.SpeedupUpdates, pair.SpeedupRate)
}

// WriteLoadmaxJSON writes the pair as indented JSON (BENCH_loadmax.json).
func WriteLoadmaxJSON(w io.Writer, pair LoadmaxPair) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Experiment string `json:"experiment"`
		LoadmaxPair
	}{Experiment: "loadmax", LoadmaxPair: pair})
}
