package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// smokeLivemaxConfig shrinks the wall-clock windows to CI scale. Unlike
// the virtual-time smokes this consumes real time and real cores, so it
// runs one low rate only — the point is that the live plumbing (two
// runtimes, loopback sockets, engine, shard deployment, teardown) works,
// not where the ceiling is.
func smokeLivemaxConfig() LivemaxConfig {
	return LivemaxConfig{
		Seed:         41,
		Rates:        []float64{500},
		Warmup:       100 * time.Millisecond,
		StepDuration: 300 * time.Millisecond,
	}
}

func TestLivemaxSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark smoke")
	}
	cfg := smokeLivemaxConfig()
	p := RunLivemaxPoint(cfg, cfg.Rates[0], false)
	if p.Issued == 0 || p.Completed == 0 {
		t.Fatalf("live point issued %d, completed %d — nothing flowed", p.Issued, p.Completed)
	}
	if p.UpdatesPerSec <= 0 || p.ReadsPerSec <= 0 {
		t.Fatalf("live point rates: %.0f upd/s, %.0f reads/s", p.UpdatesPerSec, p.ReadsPerSec)
	}
	if p.FastServed == 0 {
		t.Fatal("no reads served on the frontier fast path")
	}
}

func TestLivemaxSmokeLegacyMode(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark smoke")
	}
	cfg := smokeLivemaxConfig()
	p := RunLivemaxPoint(cfg, cfg.Rates[0], true)
	if p.Completed == 0 {
		t.Fatal("legacy hot path completed nothing — baseline mode is broken")
	}
}

func TestLivemaxSmokeSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark smoke")
	}
	cfg := smokeLivemaxConfig()
	cfg.Shards = 2
	p := RunLivemaxPoint(cfg, cfg.Rates[0], false)
	if p.Completed == 0 {
		t.Fatal("two-shard live deployment completed nothing")
	}
}

func TestHotpathPumpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark smoke")
	}
	cfg := smokeLivemaxConfig()
	for _, legacy := range []bool{true, false} {
		h := RunHotpathPoint(cfg, legacy)
		if h.UpdatesPerSec <= 0 {
			t.Fatalf("legacy=%v: pump pushed no updates", legacy)
		}
		if h.ReadsPerSec <= 0 {
			t.Fatalf("legacy=%v: no read probes answered", legacy)
		}
	}
}

func TestLivemaxTableRenders(t *testing.T) {
	var rep LivemaxReport
	rep.Config.setDefaults()
	rep.GOMAXPROCS = 1
	var buf bytes.Buffer
	WriteLivemaxTable(&buf, rep)
	if err := WriteLivemaxJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

// BENCH_livemax.json at the repo root is the committed artifact of the
// full live ramp plus the hot-path pump (scripts/bench.sh regenerates
// it). Guard its shape and the headline claim.
//
// The floor is conditional on the recorded host parallelism, because the
// optimized runtime's wins are contention wins: one wakeup per mailbox
// batch instead of per message, zero-copy decode instead of per-frame
// allocation pressure on a shared GC, one vectored writev instead of
// per-frame scheduling. On GOMAXPROCS>=4 those multiply and the pump
// must clear 3x. On a single-core host everything serializes onto one
// CPU, kernel TCP and the store apply dominate the profile as shared
// serial cost, and the honest separation compresses to the pure
// instruction-count saving — we require >=1.25x there rather than
// inventing a multicore number the machine cannot produce (see
// EXPERIMENTS.md, "livemax").
func TestBenchLivemaxJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_livemax.json")
	if err != nil {
		t.Skipf("BENCH_livemax.json not present: %v", err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		LivemaxReport
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_livemax.json is not valid JSON: %v", err)
	}
	if doc.Experiment != "livemax" {
		t.Fatalf("experiment = %q, want livemax", doc.Experiment)
	}
	if doc.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d — artifact does not record host parallelism", doc.GOMAXPROCS)
	}
	if len(doc.Baseline.Points) == 0 || len(doc.Optimized.Points) == 0 {
		t.Fatal("missing live ramp points")
	}
	if doc.Baseline.PeakUpdatesPerSec <= 0 || doc.Optimized.PeakUpdatesPerSec <= 0 {
		t.Fatalf("non-positive ramp peaks: baseline %.0f, optimized %.0f",
			doc.Baseline.PeakUpdatesPerSec, doc.Optimized.PeakUpdatesPerSec)
	}
	if doc.SimPeakUpdatesPerSec <= 0 || doc.LiveVsSimUpdates <= 0 {
		t.Fatal("missing sim-vs-live comparison row")
	}
	hp := doc.Hotpath
	if hp.Baseline.UpdatesPerSec <= 0 || hp.Optimized.UpdatesPerSec <= 0 {
		t.Fatalf("non-positive pump throughput: baseline %.0f, optimized %.0f",
			hp.Baseline.UpdatesPerSec, hp.Optimized.UpdatesPerSec)
	}
	if !hp.Baseline.Sustained || !hp.Optimized.Sustained {
		t.Fatal("pump read p99 blew its bound — throughput was bought with unbounded latency")
	}
	floor := 1.25
	if doc.GOMAXPROCS >= 4 {
		floor = 3.0
	}
	if hp.Speedup < floor {
		t.Fatalf("hotpath speedup = %.2f, want >= %.2f at gomaxprocs=%d",
			hp.Speedup, floor, doc.GOMAXPROCS)
	}
}
