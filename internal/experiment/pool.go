package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweeps in this package are embarrassingly parallel: every point builds
// its own sim.Scheduler from its own seed and shares no mutable state with
// any other point. RunPoints exploits that by fanning points across worker
// goroutines while assembling results in input order, so a parallel sweep
// renders byte-identical tables to a sequential one.

// sweepParallel is the worker count the sweep drivers hand to RunPoints;
// sweepProgress, if set, observes point completions. Both are process-wide
// configuration: set them once (from main or a test) before running sweeps,
// not concurrently with one.
var (
	sweepParallel = 1
	sweepProgress func(done, total int)
)

// SetParallelism sets the worker count used by every sweep driver in this
// package. n <= 0 selects GOMAXPROCS; 1 (the default) runs sequentially.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	sweepParallel = n
}

// Parallelism returns the sweep drivers' current worker count.
func Parallelism() int { return sweepParallel }

// SetProgress installs a callback observing sweep progress: it is called
// once per completed point with the number done so far and the sweep total.
// Calls are serialized but may come from worker goroutines. nil disables.
func SetProgress(fn func(done, total int)) { sweepProgress = fn }

// RunPoints runs fn over every point on up to parallel workers and returns
// the results in input order. Each fn call must be self-contained (build its
// own scheduler, share nothing mutable) — which every experiment point in
// this package is. parallel <= 0 selects GOMAXPROCS. progress, if non-nil,
// is invoked (serialized) after each point completes.
func RunPoints[C, R any](points []C, parallel int, progress func(done, total int), fn func(C) R) []R {
	total := len(points)
	out := make([]R, total)
	if total == 0 {
		return out
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > total {
		parallel = total
	}
	if parallel == 1 {
		for i := range points {
			out[i] = fn(points[i])
			if progress != nil {
				progress(i+1, total)
			}
		}
		return out
	}
	var (
		next   atomic.Int64 // next point index to claim
		done   atomic.Int64
		progMu sync.Mutex
		wg     sync.WaitGroup
	)
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				out[i] = fn(points[i])
				d := int(done.Add(1))
				if progress != nil {
					progMu.Lock()
					progress(d, total)
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// runPoints is the sweep drivers' entry: RunPoints with the package-level
// parallelism and progress configuration.
func runPoints[C, R any](points []C, fn func(C) R) []R {
	return RunPoints(points, sweepParallel, sweepProgress, fn)
}
