package experiment

import (
	"math"
	"math/rand"
	"time"

	"aqua/internal/selection"
)

// SelectorResult is one row of the baseline-selector comparison.
type SelectorResult struct {
	Name string
	Fig4Result
	// LoadCV is the coefficient of variation of per-replica selection
	// counts: 0 means perfectly balanced load, larger means hotter spots.
	LoadCV float64
}

func cv(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// RunBaselines compares Algorithm 1 against the baseline selectors at one
// operating point (the middle of the Figure 4 deadline range).
func RunBaselines(base Fig4Config) []SelectorResult {
	selectors := []selection.Selector{
		selection.Algorithm1{},
		selection.Stateless{},
		selection.All{},
		selection.Single{},
		&selection.RandomK{K: 3, Rand: rand.New(rand.NewSource(base.Seed + 77))},
	}
	return runSelectorPoints(base, selectors)
}

// runSelectorPoints runs one Fig4 point per selector in parallel. Selector
// instances are not shared between points, so each worker owns its
// selector's state (RandomK's private rand included).
func runSelectorPoints(base Fig4Config, selectors []selection.Selector) []SelectorResult {
	return runPoints(selectors, func(sel selection.Selector) SelectorResult {
		cfg := base
		cfg.Selector = sel
		r := RunFig4Point(cfg)
		return SelectorResult{
			Name:       sel.Name(),
			Fig4Result: r,
			LoadCV:     selectionCV(r),
		}
	})
}

// RunHotspot compares Algorithm 1's LRU (ert) ordering against the greedy
// best-CDF-first ablation: same stopping rule, no load spreading.
func RunHotspot(base Fig4Config) []SelectorResult {
	return runSelectorPoints(base, []selection.Selector{selection.Algorithm1{}, selection.CDFGreedy{}})
}

func selectionCV(r Fig4Result) float64 {
	var xs []float64
	for _, v := range r.Selections {
		xs = append(xs, float64(v))
	}
	return cv(xs)
}

// FailoverResult is one row of the crash-injection experiment.
type FailoverResult struct {
	Crash string
	Fig4Result
}

// RunFailover verifies the crash-tolerance claims: the selected sets (and
// the sequencer/publisher failover machinery) keep the observed failure
// probability within the client's spec when a replica crashes mid-run.
func RunFailover(base Fig4Config) []FailoverResult {
	runLen := time.Duration(base.Requests) * (base.RequestDelay + 300*time.Millisecond)
	scenarios := []string{"none", "p01", "sequencer", "publisher"}
	return runPoints(scenarios, func(sc string) FailoverResult {
		cfg := base
		if sc != "none" {
			cfg.Crash = sc
			cfg.CrashAt = runLen / 3
		}
		return FailoverResult{Crash: sc, Fig4Result: RunFig4Point(cfg)}
	})
}

// RunLUISweep reproduces the conclusions' "varying the lazy update
// interval" study at a fixed deadline.
func RunLUISweep(base Fig4Config, luis []time.Duration) []Fig4Result {
	return runPoints(luis, func(lui time.Duration) Fig4Result {
		cfg := base
		cfg.LUI = lui
		cfg.Seed = base.Seed + int64(lui/time.Millisecond)
		return RunFig4Point(cfg)
	})
}

// RunRequestDelaySweep reproduces the conclusions' "varying the request
// delay" study: faster clients mean higher update rates and staler
// secondaries.
func RunRequestDelaySweep(base Fig4Config, delays []time.Duration) []Fig4Result {
	return runPoints(delays, func(d time.Duration) Fig4Result {
		cfg := base
		cfg.RequestDelay = d
		cfg.Seed = base.Seed + int64(d/time.Millisecond)
		return RunFig4Point(cfg)
	})
}
