// The hot-path pump: the serving-stack isolation stage of livemax. The
// full-protocol service ramp in livemax.go saturates on replication
// protocol CPU (and, sharing cores with its generator, on the generator
// itself), which masks the transport/runtime layers this benchmark exists
// to compare. The pump strips the pipeline to exactly the optimized
// layers: a mode-invariant raw-socket load generator blasts pre-encoded
// update frames (with interleaved read probes) at an unreplicated store
// node hosted on the live runtime, so the measured path is socket read →
// frame decode → mailbox enqueue → handler → reply encode → writer flush
// and nothing else. Only the serving process switches between the legacy
// and optimized hot paths; the generator is identical in both runs.
package experiment

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aqua/internal/apps"
	"aqua/internal/consistency"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/tcpnet"
	"aqua/internal/workload"
)

// hotSink is the unreplicated store node: updates apply straight to a
// local KV (no ordering, no replication — replication factor 1), acked
// cumulatively every ackEvery updates the way a group-commit store acks;
// reads answer immediately with the stored value.
type hotSink struct {
	kv       *apps.KVStore
	ctx      node.Context
	ackEvery int
	updates  atomic.Uint64
	reads    atomic.Uint64
	pending  int
}

func (s *hotSink) Init(ctx node.Context) { s.ctx = ctx }

func (s *hotSink) Recv(from node.ID, m node.Message) {
	var req consistency.Request
	switch v := m.(type) {
	case consistency.Request:
		req = v
	case *consistency.Request:
		req = *v
	default:
		return
	}
	if req.ReadOnly {
		s.reads.Add(1)
		val, _ := s.kv.Read(req.Method, req.Payload)
		s.ctx.Send(from, consistency.Reply{ID: req.ID, Payload: val})
		return
	}
	s.kv.ApplyUpdate(req.Method, req.Payload)
	s.updates.Add(1)
	if s.pending++; s.pending >= s.ackEvery {
		s.pending = 0
		s.ctx.Send(from, consistency.Reply{ID: req.ID})
	}
}

// HotpathResult is one pump run: peak closed-loop updates/s through the
// serving hot path with read-probe latency quantiles.
type HotpathResult struct {
	Legacy bool `json:"legacy"`

	UpdatesPerSec float64 `json:"updates_per_sec"`
	ReadsPerSec   float64 `json:"reads_per_sec"`
	ReadP50MS     float64 `json:"read_p50_ms"`
	ReadP99MS     float64 `json:"read_p99_ms"`

	Sustained bool `json:"sustained"`
}

const (
	hotSinks    = 2  // sink nodes, so batched enqueue sees >1 destination
	hotAckEvery = 64 // cumulative-ack interval at the sink
	hotChunk    = 64 // frames per generator write: 63 updates + 1 read probe
	hotRingBits = 13 // read-probe seq ring (1<<13 outstanding probes)
)

// RunHotpathPoint measures one mode's pump throughput: warm up, then count
// updates processed by the sinks over one wall-clock window while read
// probes sample end-to-end latency. Closed loop: the generator writes as
// fast as the serving process drains, so the window measures the stack's
// peak, and TCP backpressure bounds in-flight frames (which is what keeps
// read p99 finite).
func RunHotpathPoint(cfg LivemaxConfig, legacy bool) HotpathResult {
	cfg.setDefaults()

	var liveOpts []live.Option
	trOpts := []tcpnet.Option{tcpnet.WithSendQueue(cfg.SendQueue)}
	if legacy {
		liveOpts = append(liveOpts, live.WithLegacyHotPath())
		trOpts = append(trOpts, tcpnet.WithLegacyInbound())
	}
	rt := live.NewRuntime(liveOpts...)
	sinks := make([]*hotSink, hotSinks)
	for i := range sinks {
		sinks[i] = &hotSink{kv: apps.NewKVStore(), ackEvery: hotAckEvery}
		rt.Register(node.ID(fmt.Sprintf("hot%d", i)), sinks[i])
	}
	tr, err := tcpnet.New(rt, "127.0.0.1:0", nil, trOpts...)
	if err != nil {
		panic(fmt.Sprintf("experiment: hotpath listen: %v", err))
	}
	rt.SetRemote(tr.Send)

	// The generator's reply side is a raw listener, not a runtime — the
	// generator is not the system under test and must not switch modes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("experiment: hotpath reply listen: %v", err))
	}
	tr.AddPeer("load", ln.Addr().String())
	rt.Start()

	// Read-probe bookkeeping: send times by probe seq, observed latencies
	// under a lock (one writer goroutine, one reader goroutine).
	const ring = 1 << hotRingBits
	base := time.Now()
	var sendNanos [ring]atomic.Int64
	var histMu sync.Mutex
	hist := &workload.LatencyHist{}
	var measuring atomic.Bool

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reply pump: parse frames, record read-probe latencies
		defer wg.Done()
		var dec tcpnet.FrameDecoder
		buf := make([]byte, 1<<20)
		have := 0
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			n, err := conn.Read(buf[have:])
			if err != nil {
				return
			}
			have += n
			off := 0
			for have-off >= 4 {
				fl := int(binary.BigEndian.Uint32(buf[off:]))
				if fl <= 0 || have-off-4 < fl {
					break
				}
				if _, _, m, err := dec.Decode(buf[off+4 : off+4+fl]); err == nil {
					if rep, ok := m.(consistency.Reply); ok && rep.ID.Client == "probe" {
						at := sendNanos[rep.ID.Seq&(ring-1)].Load()
						if at > 0 && measuring.Load() {
							histMu.Lock()
							hist.Observe(time.Since(base) - time.Duration(at))
							histMu.Unlock()
						}
					}
				}
				off += 4 + fl
			}
			copy(buf, buf[off:have])
			have -= off
		}
	}()

	// Pre-encode the blast chunk: hotChunk-1 updates round-robined over
	// the sinks plus one read-probe slot re-encoded per send (its seq
	// changes). Values are UpdateBytes of filler — the realistic KV value
	// size the copying decoder must copy and the shared decoder aliases.
	val := make([]byte, cfg.UpdateBytes)
	for i := range val {
		val[i] = 'v'
	}
	upd := consistency.Request{ID: consistency.RequestID{Client: "load", Seq: 1},
		Method: "Set", Payload: append([]byte("k="), val...)}
	var chunk []byte
	for i := 0; i < hotChunk-1; i++ {
		to := node.ID(fmt.Sprintf("hot%d", i%hotSinks))
		chunk, err = tcpnet.AppendFrame(chunk, "load", to, upd)
		if err != nil {
			panic(fmt.Sprintf("experiment: hotpath encode: %v", err))
		}
	}
	readFrame := func(seq uint64) []byte {
		f, err := tcpnet.AppendFrame(nil, "load", "hot0", consistency.Request{
			ID:       consistency.RequestID{Client: "probe", Seq: seq},
			ReadOnly: true, Method: "Get", Payload: []byte("k")})
		if err != nil {
			panic(fmt.Sprintf("experiment: hotpath encode: %v", err))
		}
		return f
	}

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		panic(fmt.Sprintf("experiment: hotpath dial: %v", err))
	}

	stopBlast := make(chan struct{})
	wg.Add(1)
	go func() { // blast loop: closed-loop writes until told to stop
		defer wg.Done()
		seq := uint64(0)
		out := make([]byte, 0, len(chunk)+256)
		for {
			select {
			case <-stopBlast:
				return
			default:
			}
			seq++
			sendNanos[seq&(ring-1)].Store(int64(time.Since(base)))
			out = append(out[:0], chunk...)
			out = append(out, readFrame(seq)...)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	var u0, r0 uint64
	for _, s := range sinks {
		u0 += s.updates.Load()
		r0 += s.reads.Load()
	}
	time.Sleep(cfg.StepDuration)
	measuring.Store(false)
	var u1, r1 uint64
	for _, s := range sinks {
		u1 += s.updates.Load()
		r1 += s.reads.Load()
	}

	close(stopBlast)
	conn.Close()
	rt.Stop()
	tr.Close()
	ln.Close()
	wg.Wait()

	secs := cfg.StepDuration.Seconds()
	histMu.Lock()
	p50 := durMS(hist.Quantile(0.50))
	p99 := durMS(hist.Quantile(0.99))
	n := hist.Total()
	histMu.Unlock()
	res := HotpathResult{
		Legacy:        legacy,
		UpdatesPerSec: float64(u1-u0) / secs,
		ReadsPerSec:   float64(r1-r0) / secs,
		ReadP50MS:     p50,
		ReadP99MS:     p99,
	}
	res.Sustained = res.UpdatesPerSec > 0 && n > 0 && p99 <= durMS(cfg.P99Bound)
	return res
}
