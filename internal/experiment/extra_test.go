package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRunCalibrationBucketsAreConsistent(t *testing.T) {
	cfg := ablationBase()
	cfg.Requests = 80
	buckets := RunCalibration(cfg, 5)
	if len(buckets) != 5 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Reads
		if b.Reads > 0 {
			if b.Predicted < b.Lo-1e-9 || b.Predicted > b.Hi+1e-9 {
				t.Fatalf("mean prediction %.3f outside bucket [%.2f,%.2f)", b.Predicted, b.Lo, b.Hi)
			}
			if b.Observed < 0 || b.Observed > 1 {
				t.Fatalf("observed = %v", b.Observed)
			}
		}
	}
	if total != 40 { // half of 80 alternating requests are reads
		t.Fatalf("bucketed reads = %d, want 40", total)
	}
}

func TestRunCalibrationModelIsInformative(t *testing.T) {
	// The §5.1 validation: where the model predicts high success, observed
	// success must be high. Aggregate everything predicted ≥ 0.8.
	cfg := ablationBase()
	cfg.Requests = 200
	buckets := RunCalibration(cfg, 10)
	var reads, onTime int
	for _, b := range buckets {
		if b.Lo >= 0.8 {
			reads += b.Reads
			onTime += b.OnTime
		}
	}
	if reads == 0 {
		t.Skip("no high-confidence predictions in this configuration")
	}
	if frac := float64(onTime) / float64(reads); frac < 0.8 {
		t.Fatalf("high-confidence predictions observed only %.3f timely", frac)
	}
}

func TestRunGroupSplitSweep(t *testing.T) {
	base := ablationBase()
	base.Requests = 40
	res := RunGroupSplitSweep(base, [][2]int{{2, 8}, {8, 2}})
	if len(res) != 2 {
		t.Fatalf("rows = %d", len(res))
	}
	if res[0].Primaries != 2 || res[0].Secondaries != 8 {
		t.Fatalf("row0 = %+v", res[0])
	}
	for _, r := range res {
		if !r.Done {
			t.Fatalf("split %d/%d did not complete", r.Primaries, r.Secondaries)
		}
	}
}

func TestRunWindowSweep(t *testing.T) {
	base := ablationBase()
	base.Requests = 40
	res := RunWindowSweep(base, []int{5, 20})
	if len(res) != 2 || res[0].Window != 5 || res[1].Window != 20 {
		t.Fatalf("rows = %+v", res)
	}
	if res[1].Overhead <= res[0].Overhead {
		t.Fatalf("window 20 overhead %v not above window 5 %v", res[1].Overhead, res[0].Overhead)
	}
}

func TestRunEstimatorAblation(t *testing.T) {
	base := ablationBase()
	base.Requests = 40
	res := RunEstimatorAblation(base)
	if len(res) != 2 || res[0].Name != "poisson(eq4)" || res[1].Name != "counted(nL)" {
		t.Fatalf("rows = %+v", res)
	}
	for _, r := range res {
		if !r.Done {
			t.Fatalf("%s run did not complete", r.Name)
		}
	}
}

func TestWriteExtraTables(t *testing.T) {
	var sb strings.Builder
	WriteCalibrationTable(&sb, []CalibrationBucket{
		{Lo: 0.8, Hi: 1.0, Reads: 10, OnTime: 9, Predicted: 0.9, Observed: 0.9},
		{Lo: 0, Hi: 0.2}, // empty bucket skipped
	})
	if !strings.Contains(sb.String(), "0.900") || strings.Contains(sb.String(), "[0.00,0.20)") {
		t.Fatalf("calibration table:\n%s", sb.String())
	}

	sb.Reset()
	WriteGroupSplitTable(&sb, []GroupSplitResult{{Primaries: 4, Secondaries: 6}})
	if !strings.Contains(sb.String(), "4") {
		t.Fatalf("split table:\n%s", sb.String())
	}

	sb.Reset()
	WriteWindowTable(&sb, []WindowResult{{Window: 10, Overhead: time.Millisecond}})
	if !strings.Contains(sb.String(), "1000.0") {
		t.Fatalf("window table:\n%s", sb.String())
	}

	sb.Reset()
	WriteEstimatorTable(&sb, []EstimatorResult{{Name: "poisson(eq4)"}})
	if !strings.Contains(sb.String(), "poisson") {
		t.Fatalf("estimator table:\n%s", sb.String())
	}
}

func TestRunScalability(t *testing.T) {
	base := ablationBase()
	base.Requests = 30
	res := RunScalability(base, []int{2, 4})
	if len(res) != 4 {
		t.Fatalf("rows = %d", len(res))
	}
	for _, r := range res {
		if !r.Done {
			t.Fatalf("%s with %d clients did not complete", r.Selector, r.Clients)
		}
	}
	// Select-all floods: with 4 clients its mean response time exceeds
	// Algorithm 1's at the same population.
	byKey := map[string]ScalabilityResult{}
	for _, r := range res {
		byKey[r.Selector+string(rune('0'+r.Clients))] = r
	}
	if byKey["all4"].MeanResponse <= byKey["algorithm14"].MeanResponse {
		t.Logf("note: all=%v alg1=%v (load effect small at this scale)",
			byKey["all4"].MeanResponse, byKey["algorithm14"].MeanResponse)
	}
}

func TestRunLossSweep(t *testing.T) {
	base := ablationBase()
	base.Requests = 30
	res := RunLossSweep(base, []float64{0, 0.05})
	if len(res) != 2 {
		t.Fatalf("rows = %d", len(res))
	}
	for _, r := range res {
		if !r.Done {
			t.Fatalf("loss %.2f run did not complete (ARQ failed)", r.Loss)
		}
		if r.Reads == 0 {
			t.Fatalf("loss %.2f: no reads", r.Loss)
		}
	}
}

func TestWriteScalabilityAndLossTables(t *testing.T) {
	var sb strings.Builder
	WriteScalabilityTable(&sb, []ScalabilityResult{{Clients: 4, Selector: "all"}})
	if !strings.Contains(sb.String(), "all") {
		t.Fatalf("scalability table:\n%s", sb.String())
	}
	sb.Reset()
	WriteLossTable(&sb, []LossResult{{Loss: 0.05}})
	if !strings.Contains(sb.String(), "0.05") {
		t.Fatalf("loss table:\n%s", sb.String())
	}
}

func TestRunArrivals(t *testing.T) {
	res := RunArrivals(5, 60, 60)
	if len(res) != 2 || res[0].Process != "poisson" || res[1].Process != "bursty" {
		t.Fatalf("rows = %+v", res)
	}
	for _, r := range res {
		if !r.Done || r.Reads == 0 {
			t.Fatalf("%s run incomplete: %+v", r.Process, r)
		}
	}
	var sb strings.Builder
	WriteArrivalsTable(&sb, res)
	if !strings.Contains(sb.String(), "bursty") {
		t.Fatalf("arrivals table:\n%s", sb.String())
	}
}
