// Package experiment regenerates the paper's evaluation (Section 6): the
// selection-overhead measurement of Figure 3, the model-validation runs of
// Figure 4, the parameter sweeps the conclusions mention (lazy update
// interval, request delay), and the ablations (baseline selectors, hot-spot
// avoidance, failure injection).
package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/qos"
	"aqua/internal/selection"
	"aqua/internal/shard"
	"aqua/internal/sim"
	"aqua/internal/stats"
)

// Fig4Config parameterizes one run of the paper's validation experiment:
// 10 server replicas (4 primary + 6 secondary) plus the sequencer, two
// clients issuing alternating write and read requests with a request delay,
// background load simulated as a normally distributed service delay.
type Fig4Config struct {
	Seed int64

	// Client 2 (the measured client) QoS.
	Deadline  time.Duration
	MinProb   float64
	Staleness int

	// LUI is the lazy update interval T_L.
	LUI time.Duration

	// Requests is the number of alternating write/read requests per client
	// (the paper uses 1000).
	Requests int
	// RequestDelay elapses between a completion and the next request (the
	// paper uses 1000 ms).
	RequestDelay time.Duration

	// ServiceMean/ServiceStd parameterize the simulated background load
	// (the paper uses 100 ms / 50 ms).
	ServiceMean time.Duration
	ServiceStd  time.Duration

	// Primaries counts serving primaries (the sequencer is extra);
	// Secondaries counts the secondary group. Paper: 4 and 6.
	Primaries   int
	Secondaries int

	// WindowSize is the repository sliding window l (paper: 20).
	WindowSize int

	// Selector overrides the measured client's selector (default
	// Algorithm 1) — used by the baseline ablations.
	Selector selection.Selector
	// SelectorForAll applies Selector to every client, not just the
	// measured one — the systemic comparison the scalability experiment
	// needs (a lone flooding client otherwise free-rides on polite peers).
	SelectorForAll bool

	// Crash, if non-empty, crashes that replica at CrashAt into the run —
	// used by the failover ablation. "sequencer" and "publisher" select
	// those roles symbolically.
	Crash   string
	CrashAt time.Duration

	// AssignBatch threads the sequencer's GSN batching knob through to the
	// deployment. Values <= 1 keep the legacy per-request assignment path;
	// the batching acceptance test pins AssignBatch=1 byte-identical to 0
	// across the sweep, so the knob's mere presence cannot perturb the
	// paper figures.
	AssignBatch int
	// AssignBatchWindow bounds how long a batch may wait (only meaningful
	// with AssignBatch > 1).
	AssignBatchWindow time.Duration

	// Durable equips every replica with the WAL + snapshot store. The
	// in-memory media is synchronous (no scheduler events, no rand draws),
	// so with no recovery faults injected the paper tables must stay
	// byte-identical — TestFig4DurabilityByteIdentical holds this.
	Durable       bool
	SnapshotEvery int
	// ReplicatedAssign turns on majority-floor GSN ordering. Unlike
	// Durable it adds real protocol traffic (acks, release floors), so it
	// carries no byte-identity claim.
	ReplicatedAssign bool

	// Sharded, when > 0, deploys that many keyspace shards via
	// core.DeployShards and fronts every client with a shard.Router instead
	// of a bare gateway. Sharded == 1 is the byte-identity pin: one shard
	// keeps the historical node IDs and the router collapses to a
	// pass-through, so the run must reproduce the unsharded sweep exactly
	// (TestFig4ShardedSingleIsByteIdentical holds this).
	Sharded int

	// CountedEstimator switches the measured client to the n_L-anchored
	// staleness estimator (abl-estimator).
	CountedEstimator bool
	// OnSelect, if set, observes the measured client's per-read prediction
	// (model calibration).
	OnSelect func(predicted float64, selected int)

	// onReadResult, if set, observes every measured-client read's response
	// time in issue order (closed loop: exactly one outstanding request),
	// pairing 1:1 with OnSelect calls. Used by the calibration experiment.
	onReadResult func(time.Duration)

	// ExtraClients adds background clients beyond the paper's client 1,
	// each running the same alternating workload with client 1's loose QoS
	// — the scalability experiment's load knob.
	ExtraClients int
	// Loss drops each network message independently with this probability
	// (the substrate's ARQ recovers) — the loss-tolerance experiment.
	Loss float64

	// Obs, when non-nil, collects metrics from every gateway in the run
	// plus the simulator's event/message totals. Instruments only record —
	// they never read clocks or schedule work — so enabling them leaves the
	// virtual-time event order, and therefore every result, bit-identical.
	// Sweeps share one registry across points: instruments are atomic, so
	// parallel workers aggregate into it safely.
	Obs *obs.Registry
	// Trace, when non-nil, streams per-request spans; each point derives a
	// run-labelled sub-tracer so one JSONL file serves a whole sweep.
	Trace *obs.Tracer
}

// runLabel names one experimental point in trace output.
func (c *Fig4Config) runLabel() string {
	return fmt.Sprintf("fig4 d=%s p=%g lui=%s seed=%d", c.Deadline, c.MinProb, c.LUI, c.Seed)
}

func (c *Fig4Config) setDefaults() {
	if c.Staleness == 0 {
		c.Staleness = 2
	}
	if c.Requests == 0 {
		c.Requests = 1000
	}
	if c.RequestDelay == 0 {
		c.RequestDelay = time.Second
	}
	if c.ServiceMean == 0 {
		c.ServiceMean = 100 * time.Millisecond
	}
	if c.ServiceStd == 0 {
		c.ServiceStd = 50 * time.Millisecond
	}
	if c.Primaries == 0 {
		c.Primaries = 4
	}
	if c.Secondaries == 0 {
		c.Secondaries = 6
	}
	if c.WindowSize == 0 {
		c.WindowSize = 20
	}
	if c.LUI == 0 {
		c.LUI = 2 * time.Second
	}
}

// Fig4Result reports the measured client's run.
type Fig4Result struct {
	Deadline time.Duration
	MinProb  float64
	LUI      time.Duration

	Reads          int
	TimingFailures int
	// FailureProb is the observed probability of timing failure with its
	// 95% binomial confidence interval (Figure 4b).
	FailureProb float64
	CI          stats.BinomialCI
	// AvgSelected is the mean number of serving replicas selected per read
	// (Figure 4a).
	AvgSelected float64
	// MeanResponse is the mean read response time.
	MeanResponse time.Duration
	// Selections counts how often each serving replica was selected (for
	// the hot-spot ablation).
	Selections map[node.ID]int
	// Done reports whether both clients finished their request quota.
	Done bool
}

// invoker is the request surface a workload driver needs — satisfied by
// both a bare client gateway and a shard router, which is what lets the
// same driver run unsharded and sharded points.
type invoker interface {
	Invoke(method string, payload []byte, cb func(client.Result))
}

// alternatingDriver issues total alternating Set/Get requests in a closed
// loop with the given think time, recording read response times.
func alternatingDriver(total int, thinkTime time.Duration, key string, onRead func(client.Result), onDone func()) func(node.Context, invoker) {
	return func(ctx node.Context, gw invoker) {
		var issue func(k int)
		issue = func(k int) {
			if k >= total {
				if onDone != nil {
					onDone()
				}
				return
			}
			next := func(client.Result) {
				ctx.Post(thinkTime, func() { issue(k + 1) })
			}
			if k%2 == 0 {
				gw.Invoke("Set", []byte(fmt.Sprintf("%s=%d", key, k)), next)
			} else {
				gw.Invoke("Get", []byte(key), func(r client.Result) {
					if onRead != nil {
						onRead(r)
					}
					next(r)
				})
			}
		}
		// Small deterministic stagger so the two clients do not start in
		// lockstep.
		stagger := time.Duration(ctx.Rand().Int63n(int64(200 * time.Millisecond)))
		ctx.Post(stagger, func() { issue(0) })
	}
}

// gatewayDriver adapts an invoker driver to the ClientConfig signature.
func gatewayDriver(run func(node.Context, invoker)) func(node.Context, *client.Gateway) {
	return func(ctx node.Context, gw *client.Gateway) { run(ctx, gw) }
}

// routedClient registers a shard router plus its workload driver as one
// runtime node — the sharded counterpart of core's driven client.
type routedClient struct {
	r   *shard.Router
	run func(node.Context, invoker)
}

func (rc *routedClient) Init(ctx node.Context) {
	rc.r.Init(ctx)
	rc.run(ctx, rc.r)
}
func (rc *routedClient) Recv(from node.ID, m node.Message) { rc.r.Recv(from, m) }

// routerMetrics aggregates client metrics across a router's per-shard
// gateways.
func routerMetrics(r *shard.Router, shards int) client.Metrics {
	m := client.Metrics{Selections: map[node.ID]int{}}
	for i := 0; i < shards; i++ {
		gm := r.Gateway(i).Metrics()
		m.Reads += gm.Reads
		m.Updates += gm.Updates
		m.TimingFailures += gm.TimingFailures
		m.SelectedTotal += gm.SelectedTotal
		for id, c := range gm.Selections {
			m.Selections[id] += c
		}
	}
	return m
}

// RunFig4Point executes one experimental point (one full run) in virtual
// time and returns the measured client's statistics.
func RunFig4Point(cfg Fig4Config) Fig4Result {
	cfg.setDefaults()

	s := sim.NewScheduler(cfg.Seed)
	opts := []sim.Option{sim.WithDelay(netsim.UniformDelay{
		Min: 500 * time.Microsecond,
		Max: 2 * time.Millisecond,
	})}
	if cfg.Loss > 0 {
		opts = append(opts, sim.WithLoss(netsim.UniformLoss{P: cfg.Loss}))
	}
	rt := sim.NewRuntime(s, opts...)

	svc := core.ServiceConfig{
		Primaries:    cfg.Primaries + 1, // + sequencer
		Secondaries:  cfg.Secondaries,
		LazyInterval: cfg.LUI,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
		ServiceDelay: func(r *rand.Rand) time.Duration {
			return stats.TruncNormalDuration(r, cfg.ServiceMean, cfg.ServiceStd, 0)
		},
		AssignBatch:       cfg.AssignBatch,
		AssignBatchWindow: cfg.AssignBatchWindow,
		Durable:           cfg.Durable,
		SnapshotEvery:     cfg.SnapshotEvery,
		ReplicatedAssign:  cfg.ReplicatedAssign,
		Obs:               cfg.Obs,
		Tracer:            cfg.Trace.WithRun(cfg.runLabel(), sim.Epoch),
	}

	var (
		doneCount     int
		readResponses []float64
	)
	onDone := func() { doneCount++ }

	// Client 1: fixed loose QoS, as in the paper (staleness 4, 200 ms,
	// probability 0.1).
	var bgSelector selection.Selector
	if cfg.SelectorForAll {
		bgSelector = cfg.Selector
	}
	// The paper's clients never retransmit; retries exist for crash
	// recovery. Without failure injection, an effectively-infinite retry
	// interval keeps the measured latency tail faithful (a deferred read
	// must wait out the lazy interval, exactly as in the paper).
	retry := time.Duration(0)
	if cfg.Crash == "" {
		retry = 10 * time.Minute
	}
	run1 := alternatingDriver(cfg.Requests, cfg.RequestDelay, "doc1", nil, onDone)
	run2 := alternatingDriver(cfg.Requests, cfg.RequestDelay, "doc2", func(r client.Result) {
		readResponses = append(readResponses, float64(r.ResponseTime))
		if cfg.onReadResult != nil {
			cfg.onReadResult(r.ResponseTime)
		}
	}, onDone)
	client1 := core.ClientConfig{
		ID:            "c00",
		Spec:          qos.Spec{Staleness: 4, Deadline: 200 * time.Millisecond, MinProb: 0.1},
		Methods:       qos.NewMethods("Get", "Version"),
		WindowSize:    cfg.WindowSize,
		Selector:      bgSelector,
		RetryInterval: retry,
		Driver:        gatewayDriver(run1),
	}
	// Client 2: the measured client.
	client2 := core.ClientConfig{
		ID:               "c01",
		Spec:             qos.Spec{Staleness: cfg.Staleness, Deadline: cfg.Deadline, MinProb: cfg.MinProb},
		Methods:          qos.NewMethods("Get", "Version"),
		WindowSize:       cfg.WindowSize,
		Selector:         cfg.Selector,
		CountedEstimator: cfg.CountedEstimator,
		OnSelect:         cfg.OnSelect,
		RetryInterval:    retry,
		Driver:           gatewayDriver(run2),
	}

	deployClients := []core.ClientConfig{client1, client2}
	runs := []func(node.Context, invoker){run1, run2}
	expectedDone := 2
	for i := 0; i < cfg.ExtraClients; i++ {
		run := alternatingDriver(cfg.Requests, cfg.RequestDelay,
			fmt.Sprintf("doc%d", i+3), nil, onDone)
		deployClients = append(deployClients, core.ClientConfig{
			ID:            node.ID(fmt.Sprintf("c%02d", i+2)),
			Spec:          qos.Spec{Staleness: 4, Deadline: 200 * time.Millisecond, MinProb: 0.1},
			Methods:       qos.NewMethods("Get", "Version"),
			WindowSize:    cfg.WindowSize,
			Selector:      bgSelector,
			RetryInterval: retry,
			Driver:        gatewayDriver(run),
		})
		runs = append(runs, run)
		expectedDone++
	}
	var d *core.Deployment
	var routers map[node.ID]*shard.Router
	if cfg.Sharded > 0 {
		// Sharded mode: the service splits into cfg.Sharded keyspace shards
		// and every client becomes a router fronting one gateway per shard.
		// The replicas must know the router hosts as clients (perf
		// broadcasts, sequencer announcements) exactly as Deploy would
		// have wired the same IDs.
		for _, c := range deployClients {
			svc.ExtraClients = append(svc.ExtraClients, c.ID)
		}
		sd, err := core.DeployShards(rt, svc, cfg.Sharded, nil)
		if err != nil {
			panic(fmt.Sprintf("experiment: sharded deploy: %v", err)) // static config bug
		}
		routers = make(map[node.ID]*shard.Router, len(deployClients))
		for i, c := range deployClients {
			r := shard.New(shard.Config{Shards: sd.Infos, Client: core.ClientGatewayConfig(svc, c)})
			routers[c.ID] = r
			rt.Register(c.ID, &routedClient{r: r, run: runs[i]})
		}
		// Symbolic crash targets and drain checks resolve against shard 0.
		d = sd.Shards[0]
	} else {
		var err error
		d, err = core.Deploy(rt, svc, deployClients)
		if err != nil {
			panic(fmt.Sprintf("experiment: deploy: %v", err)) // static config bug
		}
	}
	rt.Start()

	if cfg.Crash != "" {
		target := node.ID(cfg.Crash)
		switch cfg.Crash {
		case "sequencer":
			target = d.Sequencer
		case "publisher":
			target = d.ServingPrimaries[0]
		}
		s.After(cfg.CrashAt, func() { rt.Crash(target) })
	}

	// Run until both clients complete, with a generous virtual-time cap.
	perRequest := cfg.RequestDelay + 4*cfg.ServiceMean + cfg.LUI/4 + 500*time.Millisecond
	capAt := time.Duration(cfg.Requests+10) * perRequest * 2
	for elapsed := time.Duration(0); doneCount < expectedDone && elapsed < capAt; elapsed += time.Minute {
		s.RunFor(time.Minute)
	}
	s.RunFor(5 * time.Second) // drain stragglers
	rt.ObserveInto(cfg.Obs)

	var m client.Metrics
	if routers != nil {
		m = routerMetrics(routers["c01"], cfg.Sharded)
	} else {
		m = d.Clients["c01"].Metrics()
	}
	res := Fig4Result{
		Deadline:       cfg.Deadline,
		MinProb:        cfg.MinProb,
		LUI:            cfg.LUI,
		Reads:          m.Reads,
		TimingFailures: m.TimingFailures,
		Selections:     m.Selections,
		Done:           doneCount == expectedDone,
	}
	if m.Reads > 0 {
		res.FailureProb = float64(m.TimingFailures) / float64(m.Reads)
		res.CI = stats.BinomialConfidence(m.TimingFailures, m.Reads, 0.95)
		res.AvgSelected = float64(m.SelectedTotal) / float64(m.Reads)
	}
	if len(readResponses) > 0 {
		res.MeanResponse = time.Duration(stats.Summarize(readResponses).Mean)
	}
	return res
}

// Fig4Sweep runs the full Figure 4 grid: every deadline × (MinProb, LUI)
// combination from the paper.
type Fig4Sweep struct {
	Deadlines []time.Duration
	Configs   []struct {
		MinProb float64
		LUI     time.Duration
	}
	Base Fig4Config
}

// DefaultFig4Sweep reproduces the paper's axes: deadlines 80–220 ms and the
// four (probability, LUI) series.
func DefaultFig4Sweep() Fig4Sweep {
	sw := Fig4Sweep{
		Deadlines: []time.Duration{
			80 * time.Millisecond, 100 * time.Millisecond, 120 * time.Millisecond,
			140 * time.Millisecond, 160 * time.Millisecond, 180 * time.Millisecond,
			200 * time.Millisecond, 220 * time.Millisecond,
		},
	}
	for _, c := range []struct {
		MinProb float64
		LUI     time.Duration
	}{
		{0.9, 4 * time.Second},
		{0.5, 4 * time.Second},
		{0.9, 2 * time.Second},
		{0.5, 2 * time.Second},
	} {
		sw.Configs = append(sw.Configs, c)
	}
	return sw
}

// Run executes every point of the sweep, fanned across the package's
// configured worker count (see SetParallelism). Results are in grid order
// regardless of parallelism.
func (sw Fig4Sweep) Run() []Fig4Result {
	points := make([]Fig4Config, 0, len(sw.Configs)*len(sw.Deadlines))
	for _, cfg := range sw.Configs {
		for _, d := range sw.Deadlines {
			point := sw.Base
			point.Deadline = d
			point.MinProb = cfg.MinProb
			point.LUI = cfg.LUI
			point.Seed = sw.Base.Seed + int64(d/time.Millisecond) + int64(cfg.MinProb*1000) + int64(cfg.LUI/time.Millisecond)
			points = append(points, point)
		}
	}
	return runPoints(points, RunFig4Point)
}
