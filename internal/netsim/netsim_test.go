package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aqua/internal/node"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestConstantDelay(t *testing.T) {
	m := ConstantDelay(3 * time.Millisecond)
	r := testRand()
	for i := 0; i < 10; i++ {
		if d := m.Delay(r, "a", "b"); d != 3*time.Millisecond {
			t.Fatalf("delay = %v, want 3ms", d)
		}
	}
}

func TestUniformDelayBounds(t *testing.T) {
	m := UniformDelay{Min: time.Millisecond, Max: 5 * time.Millisecond}
	r := testRand()
	for i := 0; i < 1000; i++ {
		d := m.Delay(r, "a", "b")
		if d < m.Min || d > m.Max {
			t.Fatalf("delay %v outside [%v,%v]", d, m.Min, m.Max)
		}
	}
}

func TestUniformDelayDegenerateRange(t *testing.T) {
	m := UniformDelay{Min: 2 * time.Millisecond, Max: 2 * time.Millisecond}
	if d := m.Delay(testRand(), "a", "b"); d != 2*time.Millisecond {
		t.Fatalf("delay = %v, want 2ms", d)
	}
}

func TestNormalDelayFloor(t *testing.T) {
	m := NormalDelay{Mean: time.Millisecond, Stddev: 100 * time.Millisecond}
	r := testRand()
	for i := 0; i < 1000; i++ {
		if d := m.Delay(r, "a", "b"); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
}

func TestNormalDelayMeanApproximate(t *testing.T) {
	m := NormalDelay{Mean: 100 * time.Millisecond, Stddev: 10 * time.Millisecond}
	r := testRand()
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		sum += m.Delay(r, "a", "b")
	}
	mean := sum / n
	if mean < 95*time.Millisecond || mean > 105*time.Millisecond {
		t.Fatalf("empirical mean %v too far from 100ms", mean)
	}
}

func TestPairDelayOverride(t *testing.T) {
	m := PairDelay{
		Default: ConstantDelay(time.Millisecond),
		Overrides: map[[2]node.ID]DelayModel{
			{"a", "b"}: ConstantDelay(9 * time.Millisecond),
		},
	}
	r := testRand()
	if d := m.Delay(r, "a", "b"); d != 9*time.Millisecond {
		t.Fatalf("override delay = %v, want 9ms", d)
	}
	if d := m.Delay(r, "b", "a"); d != time.Millisecond {
		t.Fatalf("reverse direction delay = %v, want default 1ms", d)
	}
	if d := m.Delay(r, "x", "y"); d != time.Millisecond {
		t.Fatalf("default delay = %v, want 1ms", d)
	}
}

func TestNoLoss(t *testing.T) {
	if (NoLoss{}).Drop(testRand(), "a", "b") {
		t.Fatal("NoLoss dropped a message")
	}
}

func TestUniformLossRate(t *testing.T) {
	m := UniformLoss{P: 0.3}
	r := testRand()
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.Drop(r, "a", "b") {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("empirical loss rate %.3f too far from 0.3", rate)
	}
}

func TestUniformLossExtremes(t *testing.T) {
	r := testRand()
	if (UniformLoss{P: 0}).Drop(r, "a", "b") {
		t.Fatal("P=0 dropped")
	}
	if !(UniformLoss{P: 1}).Drop(r, "a", "b") {
		t.Fatal("P=1 did not drop")
	}
}

func TestPartition(t *testing.T) {
	p := NewPartition([]node.ID{"a1", "a2"}, []node.ID{"b1"})
	r := testRand()
	tests := []struct {
		from, to node.ID
		want     bool
	}{
		{"a1", "b1", true},
		{"b1", "a2", true},
		{"a1", "a2", false},
		{"a1", "c", false},
		{"c", "b1", false},
		{"c", "d", false},
	}
	for _, tt := range tests {
		if got := p.Drop(r, tt.from, tt.to); got != tt.want {
			t.Errorf("Drop(%s→%s) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestComposeLoss(t *testing.T) {
	p := NewPartition([]node.ID{"a"}, []node.ID{"b"})
	c := ComposeLoss{NoLoss{}, p}
	r := testRand()
	if !c.Drop(r, "a", "b") {
		t.Fatal("composed loss missed partition drop")
	}
	if c.Drop(r, "a", "c") {
		t.Fatal("composed loss dropped unaffected pair")
	}
}

// Property: uniform delays are always within declared bounds for arbitrary
// bound pairs.
func TestUniformDelayProperty(t *testing.T) {
	r := testRand()
	prop := func(a, b uint16) bool {
		lo := time.Duration(a) * time.Microsecond
		hi := time.Duration(b) * time.Microsecond
		m := UniformDelay{Min: lo, Max: hi}
		d := m.Delay(r, "x", "y")
		if hi <= lo {
			return d == lo
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
