// Package netsim models the network between simulated nodes: per-message
// delays, losses, and partitions. It stands in for the 100 Mbps LAN of the
// paper's testbed, with the transient-overload behaviour the paper observes
// expressed as configurable delay distributions.
package netsim

import (
	"math/rand"
	"time"

	"aqua/internal/node"
)

// DelayModel produces the one-way network delay for a message. Models must
// be deterministic given the supplied random source.
type DelayModel interface {
	Delay(r *rand.Rand, from, to node.ID) time.Duration
}

// LossModel decides whether a message is dropped in transit.
type LossModel interface {
	Drop(r *rand.Rand, from, to node.ID) bool
}

// DupModel decides how many extra copies of a message are delivered beyond
// the first — the fault-injection layer's duplication knob. A LossModel that
// also implements DupModel is consulted once per surviving message; each
// extra copy draws its own delay, so duplicates can also arrive reordered.
type DupModel interface {
	Dup(r *rand.Rand, from, to node.ID) int
}

// ConstantDelay delays every message by the same duration.
type ConstantDelay time.Duration

// Delay implements DelayModel.
func (c ConstantDelay) Delay(*rand.Rand, node.ID, node.ID) time.Duration {
	return time.Duration(c)
}

// UniformDelay draws delays uniformly from [Min, Max].
type UniformDelay struct {
	Min, Max time.Duration
}

// Delay implements DelayModel.
func (u UniformDelay) Delay(r *rand.Rand, _, _ node.ID) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)+1))
}

// NormalDelay draws delays from a normal distribution truncated below at
// Floor (which defaults to 0: network delays are never negative).
type NormalDelay struct {
	Mean   time.Duration
	Stddev time.Duration
	Floor  time.Duration
}

// Delay implements DelayModel.
func (n NormalDelay) Delay(r *rand.Rand, _, _ node.ID) time.Duration {
	d := time.Duration(r.NormFloat64()*float64(n.Stddev)) + n.Mean
	if d < n.Floor {
		d = n.Floor
	}
	return d
}

// PairDelay applies a dedicated model per (from, to) pair, falling back to
// Default for pairs without an override. It models heterogeneous links
// (e.g. one slow host) in the paper's LAN.
type PairDelay struct {
	Default   DelayModel
	Overrides map[[2]node.ID]DelayModel
}

// Delay implements DelayModel.
func (p PairDelay) Delay(r *rand.Rand, from, to node.ID) time.Duration {
	if m, ok := p.Overrides[[2]node.ID{from, to}]; ok {
		return m.Delay(r, from, to)
	}
	return p.Default.Delay(r, from, to)
}

// NoLoss never drops a message. The paper's Ensemble substrate provides
// reliable delivery; the group layer's ARQ exists for the lossy configs.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop(*rand.Rand, node.ID, node.ID) bool { return false }

// UniformLoss drops each message independently with probability P.
type UniformLoss struct {
	P float64
}

// Drop implements LossModel.
func (u UniformLoss) Drop(r *rand.Rand, _, _ node.ID) bool {
	return r.Float64() < u.P
}

// Partition drops every message crossing between the two sides. IDs not
// listed on either side communicate freely with everyone.
type Partition struct {
	sideA map[node.ID]bool
	sideB map[node.ID]bool
}

// NewPartition builds a partition between the two listed sides.
func NewPartition(a, b []node.ID) *Partition {
	p := &Partition{
		sideA: make(map[node.ID]bool, len(a)),
		sideB: make(map[node.ID]bool, len(b)),
	}
	for _, id := range a {
		p.sideA[id] = true
	}
	for _, id := range b {
		p.sideB[id] = true
	}
	return p
}

// Drop implements LossModel.
func (p *Partition) Drop(_ *rand.Rand, from, to node.ID) bool {
	return (p.sideA[from] && p.sideB[to]) || (p.sideB[from] && p.sideA[to])
}

// ComposeLoss drops a message if any component model drops it.
type ComposeLoss []LossModel

// Drop implements LossModel.
func (c ComposeLoss) Drop(r *rand.Rand, from, to node.ID) bool {
	for _, m := range c {
		if m.Drop(r, from, to) {
			return true
		}
	}
	return false
}
