package selection

import (
	"math/rand"

	"aqua/internal/node"
)

// All is the write-all-read-all style baseline the paper argues against in
// Section 5: "allocate all the available replicas to service a single
// client ... not scalable, as it increases the load on all the replicas".
type All struct{}

var _ Selector = All{}

// Name implements Selector.
func (All) Name() string { return "all" }

// Select implements Selector.
func (All) Select(in Input) []node.ID {
	ids := make([]node.ID, 0, len(in.Candidates)+1)
	for _, c := range in.Candidates {
		ids = append(ids, c.ID)
	}
	return appendSequencer(ids, in.Sequencer)
}

// Single is the other extreme the paper discusses: one replica per request.
// It picks the replica with the highest effective probability of a timely
// response ("should a replica fail while servicing a request, the failure
// could result in an unacceptable delay").
type Single struct{}

var _ Selector = Single{}

// Name implements Selector.
func (Single) Name() string { return "single" }

// Select implements Selector.
func (Single) Select(in Input) []node.ID {
	if len(in.Candidates) == 0 {
		return appendSequencer(nil, in.Sequencer)
	}
	best := in.Candidates[0]
	bestP := effectiveCDF(best, in.StaleFactor)
	for _, c := range in.Candidates[1:] {
		if p := effectiveCDF(c, in.StaleFactor); p > bestP || (p == bestP && c.ID < best.ID) {
			best, bestP = c, p
		}
	}
	return appendSequencer([]node.ID{best.ID}, in.Sequencer)
}

// effectiveCDF is a candidate's unconditional probability of answering by
// the deadline: primaries always hold fresh state; secondaries respond
// immediately only when the group state satisfies the staleness threshold.
func effectiveCDF(c Candidate, staleFactor float64) float64 {
	if c.Primary {
		return c.ImmedCDF
	}
	return c.ImmedCDF*staleFactor + c.DelayedCDF*(1-staleFactor)
}

// RandomK selects K uniformly random replicas (plus the sequencer),
// ignoring all model information — the naive load-spreading baseline.
type RandomK struct {
	K    int
	Rand *rand.Rand
}

var _ Selector = (*RandomK)(nil)

// Name implements Selector.
func (s *RandomK) Name() string { return "randomk" }

// Select implements Selector.
func (s *RandomK) Select(in Input) []node.ID {
	k := s.K
	if k <= 0 {
		k = 1
	}
	if k > len(in.Candidates) {
		k = len(in.Candidates)
	}
	perm := s.Rand.Perm(len(in.Candidates))
	ids := make([]node.ID, 0, k+1)
	for _, i := range perm[:k] {
		ids = append(ids, in.Candidates[i].ID)
	}
	return appendSequencer(ids, in.Sequencer)
}

// Stateless is the authors' prior selection algorithm [5], which assumed
// stateless replicas: it runs the same accumulation as Algorithm 1 but
// ignores staleness entirely, treating every replica as able to respond
// immediately. Comparing it against Algorithm 1 isolates the value of the
// staleness factor.
type Stateless struct{}

var _ Selector = Stateless{}

// Name implements Selector.
func (Stateless) Name() string { return "stateless" }

// Select implements Selector.
func (Stateless) Select(in Input) []node.ID {
	statelessIn := Input{
		Candidates:  make([]Candidate, len(in.Candidates)),
		StaleFactor: 1, // every replica presumed fresh
		MinProb:     in.MinProb,
		Sequencer:   in.Sequencer,
	}
	copy(statelessIn.Candidates, in.Candidates)
	return Algorithm1{}.Select(statelessIn)
}
