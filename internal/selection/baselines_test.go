package selection

import (
	"math/rand"
	"testing"
	"time"

	"aqua/internal/node"
)

func baselineInput() Input {
	return Input{
		Candidates: []Candidate{
			cand("p1", true, 0.9, 0, 3*time.Second),
			cand("p2", true, 0.4, 0, 2*time.Second),
			cand("s1", false, 0.8, 0.1, time.Second),
			cand("s2", false, 0.2, 0.6, 4*time.Second),
		},
		StaleFactor: 0.5,
		MinProb:     0.9,
		Sequencer:   "seq",
	}
}

func TestAllSelectsEverything(t *testing.T) {
	got := All{}.Select(baselineInput())
	if len(got) != 5 {
		t.Fatalf("All selected %v", got)
	}
	for _, id := range []string{"p1", "p2", "s1", "s2", "seq"} {
		if !contains(got, node.ID(id)) {
			t.Fatalf("All missing %s in %v", id, got)
		}
	}
}

func TestSinglePicksHighestEffectiveCDF(t *testing.T) {
	got := Single{}.Select(baselineInput())
	// Effective CDFs: p1=0.9, p2=0.4, s1=0.8*0.5+0.1*0.5=0.45,
	// s2=0.2*0.5+0.6*0.5=0.4 → p1 wins.
	if len(got) != 2 || got[0] != "p1" || got[1] != "seq" {
		t.Fatalf("Single selected %v, want [p1 seq]", got)
	}
}

func TestSingleEmptyCandidates(t *testing.T) {
	got := Single{}.Select(Input{Sequencer: "seq"})
	if len(got) != 1 || got[0] != "seq" {
		t.Fatalf("Single(∅) = %v", got)
	}
}

func TestSingleSecondaryWinsWhenFresh(t *testing.T) {
	in := Input{
		Candidates: []Candidate{
			cand("p1", true, 0.5, 0, 0),
			cand("s1", false, 0.9, 0.1, 0),
		},
		StaleFactor: 1,
		Sequencer:   "seq",
	}
	got := Single{}.Select(in)
	if got[0] != "s1" {
		t.Fatalf("Single = %v, want fresh secondary s1", got)
	}
}

func TestRandomKSelectsKDistinct(t *testing.T) {
	s := &RandomK{K: 2, Rand: rand.New(rand.NewSource(1))}
	got := s.Select(baselineInput())
	if len(got) != 3 { // 2 + sequencer
		t.Fatalf("RandomK selected %v", got)
	}
	seen := map[string]bool{}
	for _, id := range got {
		if seen[string(id)] {
			t.Fatalf("duplicate in %v", got)
		}
		seen[string(id)] = true
	}
}

func TestRandomKClampsK(t *testing.T) {
	s := &RandomK{K: 99, Rand: rand.New(rand.NewSource(1))}
	if got := s.Select(baselineInput()); len(got) != 5 {
		t.Fatalf("K>n selected %v", got)
	}
	s = &RandomK{K: 0, Rand: rand.New(rand.NewSource(1))}
	if got := s.Select(baselineInput()); len(got) != 2 {
		t.Fatalf("K=0 selected %v, want 1+sequencer", got)
	}
}

func TestStatelessIgnoresStaleness(t *testing.T) {
	// A very stale secondary group (factor 0) with good immediate CDFs:
	// Algorithm 1 must keep adding replicas (delayed CDFs are 0), while
	// Stateless is satisfied by the immediate CDFs alone.
	in := Input{
		Candidates: []Candidate{
			cand("s1", false, 0.9, 0, 3*time.Second),
			cand("s2", false, 0.9, 0, 2*time.Second),
			cand("s3", false, 0.9, 0, time.Second),
		},
		StaleFactor: 0,
		MinProb:     0.85,
		Sequencer:   "seq",
	}
	stateless := Stateless{}.Select(in)
	aware := Algorithm1{}.Select(in)
	if len(stateless) != 3 { // s1, s2, seq
		t.Fatalf("Stateless = %v, want 2 replicas + seq", stateless)
	}
	if len(aware) != 4 { // all three + seq (unsatisfiable)
		t.Fatalf("Algorithm1 = %v, want all + seq", aware)
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]Selector{
		"algorithm1": Algorithm1{},
		"all":        All{},
		"single":     Single{},
		"randomk":    &RandomK{K: 1, Rand: rand.New(rand.NewSource(1))},
		"stateless":  Stateless{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestCDFGreedyIgnoresERT(t *testing.T) {
	// "slow" has huge ert but poor CDF; "fast" the reverse. CDFGreedy must
	// visit fast first, Algorithm1 must visit slow first.
	in := Input{
		Candidates: []Candidate{
			cand("slow", true, 0.2, 0, time.Hour),
			cand("fast", true, 0.9, 0, time.Second),
		},
		StaleFactor: 1,
		MinProb:     0.15,
		Sequencer:   "seq",
	}
	greedy := CDFGreedy{}.Select(in)
	if greedy[0] != "fast" {
		t.Fatalf("CDFGreedy order = %v, want fast first", greedy)
	}
	lru := Algorithm1{}.Select(in)
	if lru[0] != "slow" {
		t.Fatalf("Algorithm1 order = %v, want slow (LRU) first", lru)
	}
	if (CDFGreedy{}).Name() != "cdfgreedy" {
		t.Fatal("name")
	}
}

func TestCDFGreedyEmptyCandidates(t *testing.T) {
	got := CDFGreedy{}.Select(Input{Sequencer: "seq", MinProb: 0.9})
	if len(got) != 1 || got[0] != "seq" {
		t.Fatalf("CDFGreedy(∅) = %v", got)
	}
}
