// Package selection implements the paper's probabilistic model-based
// replica selection (Section 5): evaluation of P_K(d) from per-replica
// response-time distributions and the secondary group's staleness factor
// (Equations 1–4), the state-based selection algorithm (Algorithm 1), and
// the baseline selectors the framework is compared against.
package selection

import (
	"sort"
	"time"

	"aqua/internal/node"
)

// Candidate is one selectable replica with its model inputs: the values of
// its immediate and deferred response-time distribution functions at the
// client's deadline, and the client-specific elapsed response time.
type Candidate struct {
	ID      node.ID
	Primary bool
	// ImmedCDF is F^I_i(d): P(response within d | no state wait).
	ImmedCDF float64
	// DelayedCDF is F^D_i(d): P(response within d | deferred read). Unused
	// for primaries, whose state is always current.
	DelayedCDF float64
	// ERT is the elapsed response time for the anti-hot-spot sort.
	ERT time.Duration
}

// Input is everything a Selector needs for one read request.
type Input struct {
	Candidates []Candidate
	// StaleFactor is P(A_s(t) ≤ a) for the secondary group (Equation 4).
	StaleFactor float64
	// MinProb is the client's Pc(d).
	MinProb float64
	// Sequencer is appended to every selection; reads must reach it so it
	// can broadcast the GSN they are ordered against.
	Sequencer node.ID

	// sorted optionally carries the candidates pre-arranged in Algorithm
	// 1's visit order. Model.EvaluateInto fills it (reusing the buffer
	// across reads) so Select need not copy and re-sort per request.
	sorted    []Candidate
	presorted bool
}

// MarkDirty invalidates any precomputed sort order carried by the Input.
// Callers that mutate Candidates after Model.EvaluateInto (e.g. the client
// gateway zeroing the CDFs of suspected replicas) must call it before
// handing the Input to a Selector.
func (in *Input) MarkDirty() { in.presorted = false }

// Selector chooses the replica subset to service one read request.
type Selector interface {
	// Select returns the chosen replica IDs, always including the
	// sequencer.
	Select(in Input) []node.ID
	// Name identifies the selector in experiment output.
	Name() string
}

// accumulator tracks the running products of Algorithm 1's includeCDF
// procedure (lines 17–30).
type accumulator struct {
	primCDF       float64 // Π (1 − F^I_i(d)) over included primaries
	secImmedCDF   float64 // Π (1 − F^I_j(d)) over included secondaries
	secDelayedCDF float64 // Π (1 − F^D_j(d)) over included secondaries
	staleFactor   float64
}

func newAccumulator(staleFactor float64) *accumulator {
	return &accumulator{primCDF: 1, secImmedCDF: 1, secDelayedCDF: 1, staleFactor: staleFactor}
}

// include folds candidate c into the products and returns P_K(d) so far
// (Equation 1 composed from Equations 2 and 3).
func (a *accumulator) include(c Candidate) float64 {
	if c.Primary {
		a.primCDF *= 1 - c.ImmedCDF
	} else {
		a.secImmedCDF *= 1 - c.ImmedCDF
		a.secDelayedCDF *= 1 - c.DelayedCDF
	}
	return a.pK()
}

func (a *accumulator) pK() float64 {
	secCDF := a.secImmedCDF*a.staleFactor + a.secDelayedCDF*(1-a.staleFactor)
	return 1 - a.primCDF*secCDF
}

// PK evaluates P_K(d) for an arbitrary candidate set — the probability that
// at least one replica responds within the deadline. Exposed for tests,
// benchmarks, and the experiment harness.
func PK(candidates []Candidate, staleFactor float64) float64 {
	a := newAccumulator(staleFactor)
	p := 0.0
	for _, c := range candidates {
		p = a.include(c)
	}
	if len(candidates) == 0 {
		return 0
	}
	return p
}

// PKOf evaluates P_K(d) over the candidates of in that appear in targets,
// without allocating: the calibration-telemetry path calls it once per read
// with metrics enabled. Candidates are folded in Input order, so the result
// can differ from PK over a differently ordered slice only in float
// rounding.
func PKOf(in *Input, targets []node.ID) float64 {
	a := accumulator{primCDF: 1, secImmedCDF: 1, secDelayedCDF: 1, staleFactor: in.StaleFactor}
	p := 0.0
	n := 0
	for i := range in.Candidates {
		c := in.Candidates[i]
		for _, id := range targets {
			if id == c.ID {
				p = a.include(c)
				n++
				break
			}
		}
	}
	if n == 0 {
		return 0
	}
	return p
}

// candLess is the Algorithm-1 visit order: decreasing ert; ties break by
// decreasing immediate CDF, exactly as Section 5.3 prescribes. Remaining
// ties break by ID, making the order strictly total (and the sorted
// permutation unique) whenever candidate IDs are distinct.
func candLess(a, b Candidate) bool {
	if a.ERT != b.ERT {
		return a.ERT > b.ERT
	}
	if a.ImmedCDF != b.ImmedCDF {
		return a.ImmedCDF > b.ImmedCDF
	}
	return a.ID < b.ID
}

// sortCandidates returns the Input's candidates in Algorithm-1 visit
// order, reusing the order precomputed by Model.EvaluateInto when present.
func sortCandidates(in Input) []Candidate {
	if in.presorted {
		return in.sorted
	}
	sorted := make([]Candidate, len(in.Candidates))
	copy(sorted, in.Candidates)
	return sortCandidateSlice(sorted)
}

// sortCandidateSlice sorts cs in place by candLess and returns it.
func sortCandidateSlice(cs []Candidate) []Candidate {
	sort.Slice(cs, func(i, j int) bool { return candLess(cs[i], cs[j]) })
	return cs
}

// appendSequencer adds the sequencer to ids unless already present or
// empty.
func appendSequencer(ids []node.ID, seq node.ID) []node.ID {
	if seq == "" {
		return ids
	}
	for _, id := range ids {
		if id == seq {
			return ids
		}
	}
	return append(ids, seq)
}
