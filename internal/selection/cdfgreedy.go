package selection

import "aqua/internal/node"

// CDFGreedy is the hot-spot ablation of Algorithm 1: identical accumulation
// and stopping rule, but candidates are visited in decreasing immediate-CDF
// order instead of decreasing elapsed response time. Without the ert sort,
// every client with a similar repository picks the same "best" replicas,
// producing the hot spots Section 5.3 warns about.
type CDFGreedy struct{}

var _ Selector = CDFGreedy{}

// Name implements Selector.
func (CDFGreedy) Name() string { return "cdfgreedy" }

// Select implements Selector.
func (CDFGreedy) Select(in Input) []node.ID {
	byCDF := make([]Candidate, len(in.Candidates))
	copy(byCDF, in.Candidates)
	// Zero the ert so sortCandidates falls through to its CDF tie-break,
	// giving a pure decreasing-CDF order.
	for i := range byCDF {
		byCDF[i].ERT = 0
	}
	sorted := sortCandidateSlice(byCDF)
	if len(sorted) == 0 {
		return appendSequencer(nil, in.Sequencer)
	}

	acc := newAccumulator(in.StaleFactor)
	k := []node.ID{sorted[0].ID}
	maxCDF := sorted[0]
	for _, c := range sorted[1:] {
		k = append(k, c.ID)
		var pk float64
		if c.ImmedCDF > maxCDF.ImmedCDF {
			pk = acc.include(maxCDF)
			maxCDF = c
		} else {
			pk = acc.include(c)
		}
		if pk >= in.MinProb {
			return appendSequencer(k, in.Sequencer)
		}
	}
	return appendSequencer(k, in.Sequencer)
}
