package selection

import (
	"math"
	"testing"
	"time"

	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/stats"
)

var tBase = time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)

const ms = time.Millisecond

func TestStaleFactorColdStartIsFresh(t *testing.T) {
	m := Model{LazyInterval: 4 * time.Second}
	repo := repository.New(10)
	if got := m.StaleFactor(repo, 2, tBase); got != 1 {
		t.Fatalf("cold-start stale factor = %v, want 1", got)
	}
}

func TestStaleFactorMatchesPoisson(t *testing.T) {
	m := Model{LazyInterval: 4 * time.Second}
	repo := repository.New(10)
	// λu = 2/s; last lazy update 1s ago (tL=1s reported now).
	repo.RecordPublisherRates(4, 2*time.Second)
	repo.RecordLazyInfo(0, time.Second, tBase)
	got := m.StaleFactor(repo, 3, tBase)
	want := stats.PoissonCDF(2*1.0, 3)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("stale factor = %v, want Poisson(2,3) = %v", got, want)
	}
}

func TestStaleFactorDecreasesWithElapsedTime(t *testing.T) {
	m := Model{LazyInterval: 10 * time.Second}
	repo := repository.New(10)
	repo.RecordPublisherRates(10, 2*time.Second) // λu = 5/s
	repo.RecordLazyInfo(0, 0, tBase)
	early := m.StaleFactor(repo, 2, tBase.Add(100*ms))
	late := m.StaleFactor(repo, 2, tBase.Add(5*time.Second))
	if late >= early {
		t.Fatalf("stale factor did not decay: early %v late %v", early, late)
	}
}

func TestEvaluateBuildsCandidates(t *testing.T) {
	m := Model{LazyInterval: 4 * time.Second}
	repo := repository.New(10)
	spec := qos.Spec{Staleness: 2, Deadline: 100 * ms, MinProb: 0.9}

	// Primary with solid history: S=50ms, W=10ms, G=5ms → R=65ms ≤ 100ms.
	repo.RecordPerf("p1", 50*ms, 10*ms)
	repo.RecordReply("p1", 5*ms, tBase)
	// Secondary with slow history: S=150ms → R > deadline.
	repo.RecordPerf("s1", 150*ms, 10*ms)
	repo.RecordReply("s1", 5*ms, tBase.Add(10*ms))

	in := m.Evaluate(repo, []node.ID{"p1"}, []node.ID{"s1"}, "seq", spec, tBase.Add(time.Second))
	if len(in.Candidates) != 2 {
		t.Fatalf("candidates = %+v", in.Candidates)
	}
	p1, s1 := in.Candidates[0], in.Candidates[1]
	if !p1.Primary || p1.ID != "p1" || p1.ImmedCDF != 1 {
		t.Fatalf("p1 = %+v", p1)
	}
	if s1.Primary || s1.ImmedCDF != 0 {
		t.Fatalf("s1 = %+v", s1)
	}
	if p1.ERT != time.Second || s1.ERT != time.Second-10*ms {
		t.Fatalf("ERTs = %v %v", p1.ERT, s1.ERT)
	}
	if in.Sequencer != "seq" || in.MinProb != 0.9 {
		t.Fatalf("input meta = %+v", in)
	}
}

func TestEvaluateDeferredUsesFallbackU(t *testing.T) {
	m := Model{LazyInterval: 2 * time.Second}
	repo := repository.New(10)
	spec := qos.Spec{Staleness: 0, Deadline: 3 * time.Second, MinProb: 0.9}

	// Secondary: fast service but no defer history. Publisher reported a
	// lazy update 1.5s into a 2s interval → fallback U = 0.5s. With S=50ms
	// the deferred response ≈ 550ms ≤ 3s ⇒ DelayedCDF = 1.
	repo.RecordPerf("s1", 50*ms, 0)
	repo.RecordLazyInfo(0, 1500*ms, tBase)
	in := m.Evaluate(repo, nil, []node.ID{"s1"}, "seq", spec, tBase)
	if got := in.Candidates[0].DelayedCDF; got != 1 {
		t.Fatalf("DelayedCDF = %v, want 1 with 0.5s fallback U", got)
	}

	// Tight deadline of 400ms: 50ms + 500ms fallback exceeds it.
	spec.Deadline = 400 * ms
	in = m.Evaluate(repo, nil, []node.ID{"s1"}, "seq", spec, tBase)
	if got := in.Candidates[0].DelayedCDF; got != 0 {
		t.Fatalf("DelayedCDF = %v, want 0 under tight deadline", got)
	}
}

func TestCountedEstimatorUsesNL(t *testing.T) {
	repo := repository.New(10)
	repo.RecordPublisherRates(4, 2*time.Second) // λu = 2/s
	// Publisher reported nL=3 at tBase with tL=1s into a 4s interval.
	repo.RecordLazyInfo(3, time.Second, tBase)

	now := tBase.Add(500 * ms) // tz=0.5s ≤ tl=1.5s: count applies
	paper := Model{LazyInterval: 4 * time.Second}
	counted := Model{LazyInterval: 4 * time.Second, CountedEstimator: true}

	// Paper: P(N(λ·1.5s) ≤ 2) with λ=2 → Poisson(3, k=2).
	wantPaper := stats.PoissonCDF(2*1.5, 2)
	if got := paper.StaleFactor(repo, 2, now); math.Abs(got-wantPaper) > 1e-12 {
		t.Fatalf("paper estimator = %v, want %v", got, wantPaper)
	}
	// Counted: n_L=3 already exceeds a=2 → only arrivals can make it worse:
	// P(3 + N(λ·tz) ≤ 2) = 0.
	if got := counted.StaleFactor(repo, 2, now); got != 0 {
		t.Fatalf("counted estimator = %v, want 0 (count exceeds threshold)", got)
	}
	// With a=4: remaining headroom 1, λ·tz = 1 → Poisson(1, k=1).
	want := stats.PoissonCDF(1.0, 1)
	if got := counted.StaleFactor(repo, 4, now); math.Abs(got-want) > 1e-12 {
		t.Fatalf("counted estimator a=4 = %v, want %v", got, want)
	}
}

func TestCountedEstimatorFallsBackAfterWrap(t *testing.T) {
	repo := repository.New(10)
	repo.RecordPublisherRates(4, 2*time.Second)
	repo.RecordLazyInfo(9, 3900*ms, tBase) // just before a lazy update

	// 500ms later a lazy update has certainly fired (tl wrapped): the count
	// is obsolete and the paper's estimator must be used.
	now := tBase.Add(500 * ms)
	counted := Model{LazyInterval: 4 * time.Second, CountedEstimator: true}
	paper := Model{LazyInterval: 4 * time.Second}
	if got, want := counted.StaleFactor(repo, 2, now), paper.StaleFactor(repo, 2, now); got != want {
		t.Fatalf("post-wrap counted = %v, want paper value %v", got, want)
	}
}
