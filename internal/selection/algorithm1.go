package selection

import "aqua/internal/node"

// Algorithm1 is the paper's state-based replica selection algorithm
// (Section 5.3). It walks the candidates in decreasing elapsed-response-time
// order — favouring least-recently-used replicas to avoid hot spots — and
// grows the set K until P_K(d) ≥ Pc(d), where P_K deliberately excludes the
// selected member with the highest immediate CDF. The exclusion simulates
// the crash of the most promising member, so the returned set meets the
// client's constraint even if any single selected replica fails. The
// sequencer is always appended.
type Algorithm1 struct{}

var _ Selector = Algorithm1{}

// Name implements Selector.
func (Algorithm1) Name() string { return "algorithm1" }

// Select implements Selector.
func (Algorithm1) Select(in Input) []node.ID {
	sorted := sortCandidates(in)
	if len(sorted) == 0 {
		return appendSequencer(nil, in.Sequencer)
	}

	acc := newAccumulator(in.StaleFactor)
	k := []node.ID{sorted[0].ID} // line 3: K ⇐ [first(sortedList)]
	maxCDF := sorted[0]          //         maxCDFReplica ⇐ first

	for _, c := range sorted[1:] { // line 4: visit the rest in sorted order
		k = append(k, c.ID) // line 5
		var pk float64
		if c.ImmedCDF > maxCDF.ImmedCDF { // lines 6–8
			pk = acc.include(maxCDF)
			maxCDF = c
		} else { // line 10
			pk = acc.include(c)
		}
		if pk >= in.MinProb { // lines 12–14: found an acceptable set
			return appendSequencer(k, in.Sequencer)
		}
	}
	// Line 16: not satisfiable — return every replica plus the sequencer.
	return appendSequencer(k, in.Sequencer)
}
