package selection

// This file keeps the pre-optimization selection pipeline as a slow
// reference: the old Model.Evaluate control flow (fresh Input per call, no
// memoization, two TimeSinceLazyUpdate calls folded into one stale-factor /
// one fallback-U computation) and the old Algorithm 1 entry (copy +
// sort.Slice per request). The rewritten EvaluateInto/sort-cache path must
// produce bit-for-bit identical candidates, stale factors, and selections.
// The slow side additionally evaluates against a freshly replayed
// repository, so the generation-keyed PMF caches are cross-checked end to
// end, not just inside the repository package.

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
)

// slowEvaluate is the old Model.Evaluate, verbatim: allocate a fresh Input,
// compute the stale factor and fallback U with independent
// TimeSinceLazyUpdate calls, and query the repository per candidate.
func slowEvaluate(
	m Model,
	repo *repository.Repository,
	primaries, secondaries []node.ID,
	sequencer node.ID,
	spec qos.Spec,
	now time.Time,
) Input {
	in := Input{
		Candidates:  make([]Candidate, 0, len(primaries)+len(secondaries)),
		StaleFactor: m.StaleFactor(repo, spec.Staleness, now),
		MinProb:     spec.MinProb,
		Sequencer:   sequencer,
	}
	for _, id := range primaries {
		in.Candidates = append(in.Candidates, Candidate{
			ID:       id,
			Primary:  true,
			ImmedCDF: repo.ImmediatePMF(id, m.BinWidth).CDF(spec.Deadline),
			ERT:      repo.ERT(id, now),
		})
	}
	fallbackU := m.LazyInterval
	if tl, ok := repo.TimeSinceLazyUpdate(now, m.LazyInterval); ok {
		fallbackU = m.LazyInterval - tl
	}
	for _, id := range secondaries {
		in.Candidates = append(in.Candidates, Candidate{
			ID:         id,
			Primary:    false,
			ImmedCDF:   repo.ImmediatePMF(id, m.BinWidth).CDF(spec.Deadline),
			DelayedCDF: repo.DeferredPMF(id, m.BinWidth, fallbackU).CDF(spec.Deadline),
			ERT:        repo.ERT(id, now),
		})
	}
	return in
}

// slowSelect is the old Algorithm1.Select, with its per-request candidate
// copy and sort.Slice inlined (the pre-cache sortCandidates).
func slowSelect(in Input) []node.ID {
	sorted := make([]Candidate, len(in.Candidates))
	copy(sorted, in.Candidates)
	sort.Slice(sorted, func(i, j int) bool { return candLess(sorted[i], sorted[j]) })
	if len(sorted) == 0 {
		return appendSequencer(nil, in.Sequencer)
	}
	acc := newAccumulator(in.StaleFactor)
	k := []node.ID{sorted[0].ID}
	maxCDF := sorted[0]
	for _, c := range sorted[1:] {
		k = append(k, c.ID)
		var pk float64
		if c.ImmedCDF > maxCDF.ImmedCDF {
			pk = acc.include(maxCDF)
			maxCDF = c
		} else {
			pk = acc.include(c)
		}
		if pk >= in.MinProb {
			return appendSequencer(k, in.Sequencer)
		}
	}
	return appendSequencer(k, in.Sequencer)
}

type repoOp struct {
	kind int
	id   node.ID
	a, b time.Duration
	n    int
	at   time.Time
}

func (op repoOp) apply(r *repository.Repository) {
	switch op.kind {
	case 0:
		r.RecordPerf(op.id, op.a, op.b)
	case 1:
		r.RecordDeferWait(op.id, op.a)
	case 2:
		r.RecordReply(op.id, op.a, op.at)
	case 3:
		r.RecordPublisherRates(op.n, op.a)
	case 4:
		r.RecordLazyInfo(op.n, op.a, op.at)
	}
}

func sameIDs(a, b []node.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameCandidates(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEvaluateSelectMatchesSlowReference drives the cached fast path
// (pointer Model + reused Input via EvaluateInto, sort-order cache warm
// across reads, generation-keyed PMF caches warm across mutations) against
// the slow reference over randomized scenarios, and demands identical
// candidates, stale factors, and selected ID sequences. It also exercises
// the MarkDirty path by zeroing suspected replicas' CDFs mid-request, the
// way the client gateway does.
func TestEvaluateSelectMatchesSlowReference(t *testing.T) {
	base := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
	scenarios := 0
	for cfg := 0; cfg < 40; cfg++ {
		rng := rand.New(rand.NewSource(int64(1000 + cfg)))
		window := 1 + rng.Intn(12)
		model := &Model{
			BinWidth:         time.Duration(rng.Intn(4)) * time.Millisecond, // includes 0
			LazyInterval:     time.Duration(1+rng.Intn(5)) * time.Second,
			CountedEstimator: cfg%2 == 1,
		}
		slowModel := *model // value copy: the slow path never sees the cache

		nPrim, nSec := 1+rng.Intn(4), rng.Intn(4)
		var primaries, secondaries, all []node.ID
		for i := 0; i < nPrim; i++ {
			primaries = append(primaries, node.ID("p"+string(rune('0'+i))))
		}
		for i := 0; i < nSec; i++ {
			secondaries = append(secondaries, node.ID("s"+string(rune('0'+i))))
		}
		all = append(append([]node.ID{}, primaries...), secondaries...)
		sequencer := node.ID("seq")

		repo := repository.New(window)
		var ops []repoOp
		var in Input // reused across every read in this config
		now := base

		for step := 0; step < 30; step++ {
			// Mutate the live repository (sometimes not at all, so the
			// same-generation cache-hit path is hit too).
			for k := rng.Intn(3); k > 0; k-- {
				op := repoOp{
					kind: rng.Intn(5),
					id:   all[rng.Intn(len(all))],
					a:    time.Duration(rng.Intn(80_000)) * time.Microsecond,
					b:    time.Duration(rng.Intn(20_000)) * time.Microsecond,
					n:    rng.Intn(4),
					at:   now,
				}
				if op.kind == 3 && op.a == 0 {
					op.a = time.Second
				}
				op.apply(repo)
				ops = append(ops, op)
			}
			now = now.Add(time.Duration(rng.Intn(700)) * time.Millisecond)
			spec := qos.Spec{
				Staleness: rng.Intn(4),
				Deadline:  time.Duration(rng.Intn(150)) * time.Millisecond,
				MinProb:   float64(rng.Intn(100)) / 100,
			}

			// Fast path: warm caches, reused buffers.
			model.EvaluateInto(&in, repo, primaries, secondaries, sequencer, spec, now)

			// Slow path: fresh repository replay, fresh Input, full sort.
			fresh := repository.New(window)
			for _, op := range ops {
				op.apply(fresh)
			}
			slowIn := slowEvaluate(slowModel, fresh, primaries, secondaries, sequencer, spec, now)

			if in.StaleFactor != slowIn.StaleFactor {
				t.Fatalf("cfg %d step %d: stale factor %v, slow %v", cfg, step, in.StaleFactor, slowIn.StaleFactor)
			}
			if !sameCandidates(in.Candidates, slowIn.Candidates) {
				t.Fatalf("cfg %d step %d: candidates diverge\nfast %+v\nslow %+v", cfg, step, in.Candidates, slowIn.Candidates)
			}
			if got, want := (Algorithm1{}).Select(in), slowSelect(slowIn); !sameIDs(got, want) {
				t.Fatalf("cfg %d step %d: selection %v, slow %v", cfg, step, got, want)
			}

			// Suspicion path: zero a random candidate's CDFs post-Evaluate
			// (as the gateway does) and re-select after MarkDirty.
			if len(in.Candidates) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(in.Candidates))
				in.Candidates[j].ImmedCDF = 0
				in.Candidates[j].DelayedCDF = 0
				in.MarkDirty()
				slowIn.Candidates[j].ImmedCDF = 0
				slowIn.Candidates[j].DelayedCDF = 0
				if got, want := (Algorithm1{}).Select(in), slowSelect(slowIn); !sameIDs(got, want) {
					t.Fatalf("cfg %d step %d: post-suspicion selection %v, slow %v", cfg, step, got, want)
				}
			}
			scenarios++
		}
	}
	if scenarios < 1000 {
		t.Fatalf("only %d scenarios exercised, want >= 1000", scenarios)
	}
}
