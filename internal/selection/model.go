package selection

import (
	"time"

	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/stats"
)

// Model turns a client's information repository into Selector inputs: it
// evaluates the response-time distribution functions at the client's
// deadline (Section 5.2) and the secondary group's staleness factor
// (Section 5.1.3).
type Model struct {
	// BinWidth coarsens pmfs before convolution; 0 disables binning.
	BinWidth time.Duration
	// LazyInterval is T_L, the configured lazy update period.
	LazyInterval time.Duration
	// CountedEstimator switches the staleness factor from the paper's pure
	// Poisson estimate P(N_u(t_l) ≤ a) to a variant anchored on the
	// publisher's last reported count: P(n_L + N_u(t_z) ≤ a), where n_L is
	// the number of updates the publisher had seen since the last lazy
	// update and t_z is the time since that report. The paper records n_L
	// but does not use it; this is the abl-estimator design ablation.
	CountedEstimator bool
}

// StaleFactor computes P(A_s(t) ≤ a) — Equation 4, or the counted variant
// when CountedEstimator is set. Before any publisher broadcast arrives the
// client has seen no evidence of updates, so the factor is 1 (fresh) — the
// cold start self-corrects within one lazy interval.
func (m Model) StaleFactor(repo *repository.Repository, staleness int, now time.Time) float64 {
	tl, ok := repo.TimeSinceLazyUpdate(now, m.LazyInterval)
	if !ok {
		return 1
	}
	if m.CountedEstimator {
		// tl = (tL + tz) mod T_L; tz ≤ tl means no lazy update has fired
		// since the publisher's report, so its count n_L still applies.
		if tz, nl, ok := repo.SincePublisherReport(now); ok && tz <= tl {
			// The publisher's count n_L is a hard floor on the current
			// staleness; only arrivals in the last tz are uncertain.
			remaining := staleness - nl
			lambda := repo.UpdateRate() * tz.Seconds()
			return stats.PoissonCDF(lambda, remaining)
		}
		// A lazy update likely intervened since the report; the count is
		// obsolete — fall through to the paper's estimator.
	}
	lambda := repo.UpdateRate() * tl.Seconds()
	return stats.PoissonCDF(lambda, staleness)
}

// Evaluate builds the selection Input for one read request. primaries and
// secondaries are the live server replicas by group (excluding the
// sequencer, which never serves requests).
func (m Model) Evaluate(
	repo *repository.Repository,
	primaries, secondaries []node.ID,
	sequencer node.ID,
	spec qos.Spec,
	now time.Time,
) Input {
	in := Input{
		Candidates:  make([]Candidate, 0, len(primaries)+len(secondaries)),
		StaleFactor: m.StaleFactor(repo, spec.Staleness, now),
		MinProb:     spec.MinProb,
		Sequencer:   sequencer,
	}

	for _, id := range primaries {
		in.Candidates = append(in.Candidates, Candidate{
			ID:       id,
			Primary:  true,
			ImmedCDF: repo.ImmediatePMF(id, m.BinWidth).CDF(spec.Deadline),
			ERT:      repo.ERT(id, now),
		})
	}

	// Fallback estimate of the lazy-update wait U when a secondary has no
	// defer-wait history: the remaining time to the next lazy update.
	fallbackU := m.LazyInterval
	if tl, ok := repo.TimeSinceLazyUpdate(now, m.LazyInterval); ok {
		fallbackU = m.LazyInterval - tl
	}
	for _, id := range secondaries {
		in.Candidates = append(in.Candidates, Candidate{
			ID:         id,
			Primary:    false,
			ImmedCDF:   repo.ImmediatePMF(id, m.BinWidth).CDF(spec.Deadline),
			DelayedCDF: repo.DeferredPMF(id, m.BinWidth, fallbackU).CDF(spec.Deadline),
			ERT:        repo.ERT(id, now),
		})
	}
	return in
}
