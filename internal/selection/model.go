package selection

import (
	"time"

	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/repository"
	"aqua/internal/stats"
)

// Model turns a client's information repository into Selector inputs: it
// evaluates the response-time distribution functions at the client's
// deadline (Section 5.2) and the secondary group's staleness factor
// (Section 5.1.3).
//
// A Model used through EvaluateInto additionally caches the Algorithm-1
// candidate sort order between reads (see sortInto); use one Model value
// per client and call EvaluateInto on a pointer to keep that cache warm.
type Model struct {
	// BinWidth coarsens pmfs before convolution; 0 disables binning.
	BinWidth time.Duration
	// LazyInterval is T_L, the configured lazy update period.
	LazyInterval time.Duration
	// CountedEstimator switches the staleness factor from the paper's pure
	// Poisson estimate P(N_u(t_l) ≤ a) to a variant anchored on the
	// publisher's last reported count: P(n_L + N_u(t_z) ≤ a), where n_L is
	// the number of updates the publisher had seen since the last lazy
	// update and t_z is the time since that report. The paper records n_L
	// but does not use it; this is the abl-estimator design ablation.
	CountedEstimator bool

	// Sort-order cache for EvaluateInto: the candidate visit order is
	// stable between repository mutations (ert differences shift uniformly
	// with the clock), so the previous permutation is revalidated in O(n)
	// instead of re-sorted.
	orderKey evalKey
	order    []int32
}

// evalKey identifies the repository state a cached sort order was computed
// against.
type evalKey struct {
	valid       bool
	gen         uint64
	deadline    time.Duration
	nPrim, nSec int
}

// StaleFactor computes P(A_s(t) ≤ a) — Equation 4, or the counted variant
// when CountedEstimator is set. Before any publisher broadcast arrives the
// client has seen no evidence of updates, so the factor is 1 (fresh) — the
// cold start self-corrects within one lazy interval.
func (m Model) StaleFactor(repo *repository.Repository, staleness int, now time.Time) float64 {
	tl, ok := repo.TimeSinceLazyUpdate(now, m.LazyInterval)
	return m.staleFactorAt(repo, staleness, now, tl, ok)
}

// staleFactorAt is StaleFactor with t_l already computed, so Evaluate can
// share one TimeSinceLazyUpdate call between the staleness factor and the
// fallback-U estimate.
func (m Model) staleFactorAt(repo *repository.Repository, staleness int, now time.Time, tl time.Duration, ok bool) float64 {
	if !ok {
		return 1
	}
	if m.CountedEstimator {
		// tl = (tL + tz) mod T_L; tz ≤ tl means no lazy update has fired
		// since the publisher's report, so its count n_L still applies.
		if tz, nl, ok := repo.SincePublisherReport(now); ok && tz <= tl {
			// The publisher's count n_L is a hard floor on the current
			// staleness; only arrivals in the last tz are uncertain.
			remaining := staleness - nl
			lambda := repo.UpdateRate() * tz.Seconds()
			return stats.PoissonCDF(lambda, remaining)
		}
		// A lazy update likely intervened since the report; the count is
		// obsolete — fall through to the paper's estimator.
	}
	lambda := repo.UpdateRate() * tl.Seconds()
	return stats.PoissonCDF(lambda, staleness)
}

// Evaluate builds the selection Input for one read request. primaries and
// secondaries are the live server replicas by group (excluding the
// sequencer, which never serves requests).
//
// Evaluate allocates a fresh Input per call; the hot path is EvaluateInto,
// which reuses a caller-held Input and the Model's sort cache.
func (m Model) Evaluate(
	repo *repository.Repository,
	primaries, secondaries []node.ID,
	sequencer node.ID,
	spec qos.Spec,
	now time.Time,
) Input {
	var in Input
	m.EvaluateInto(&in, repo, primaries, secondaries, sequencer, spec, now)
	return in
}

// EvaluateInto builds the selection Input for one read request into in,
// reusing in's candidate buffers across calls. Candidates appear in build
// order (primaries, then secondaries, preserving the given slices' order);
// the Algorithm-1 visit order is precomputed into the Input as well, so
// Algorithm1.Select skips its sort. Callers that mutate in.Candidates
// afterwards must call in.MarkDirty.
func (m *Model) EvaluateInto(
	in *Input,
	repo *repository.Repository,
	primaries, secondaries []node.ID,
	sequencer node.ID,
	spec qos.Spec,
	now time.Time,
) {
	tl, tlOK := repo.TimeSinceLazyUpdate(now, m.LazyInterval)

	in.Candidates = in.Candidates[:0]
	in.presorted = false
	in.StaleFactor = m.staleFactorAt(repo, spec.Staleness, now, tl, tlOK)
	in.MinProb = spec.MinProb
	in.Sequencer = sequencer

	for _, id := range primaries {
		in.Candidates = append(in.Candidates, Candidate{
			ID:       id,
			Primary:  true,
			ImmedCDF: repo.ImmediatePMF(id, m.BinWidth).CDF(spec.Deadline),
			ERT:      repo.ERT(id, now),
		})
	}

	// Fallback estimate of the lazy-update wait U when a secondary has no
	// defer-wait history: the remaining time to the next lazy update.
	fallbackU := m.LazyInterval
	if tlOK {
		fallbackU = m.LazyInterval - tl
	}
	for _, id := range secondaries {
		in.Candidates = append(in.Candidates, Candidate{
			ID:         id,
			Primary:    false,
			ImmedCDF:   repo.ImmediatePMF(id, m.BinWidth).CDF(spec.Deadline),
			DelayedCDF: repo.DeferredPMF(id, m.BinWidth, fallbackU).CDF(spec.Deadline),
			ERT:        repo.ERT(id, now),
		})
	}

	m.sortInto(in, repo.Generation(), spec.Deadline, len(primaries), len(secondaries))
}

// sortInto fills in.sorted with the Algorithm-1 visit order. The order is a
// strict total order (ties end at the unique ID), so its sorted permutation
// is unique: when the cached permutation from the previous read still
// yields a sorted sequence — verified with one O(n) adjacent-pair pass — it
// is the answer; otherwise an insertion sort (cheap for the nearly-sorted
// candidate sets that arise between repository generations) rebuilds it.
func (m *Model) sortInto(in *Input, gen uint64, deadline time.Duration, nPrim, nSec int) {
	cs := in.Candidates
	n := len(cs)
	key := evalKey{valid: true, gen: gen, deadline: deadline, nPrim: nPrim, nSec: nSec}
	if m.orderKey == key && len(m.order) == n && m.emitSorted(in) {
		in.presorted = true
		return
	}

	m.order = m.order[:0]
	for i := 0; i < n; i++ {
		m.order = append(m.order, int32(i))
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && candLess(cs[m.order[j]], cs[m.order[j-1]]); j-- {
			m.order[j], m.order[j-1] = m.order[j-1], m.order[j]
		}
	}
	if !m.emitSorted(in) {
		// Unreachable: a freshly built permutation is sorted by
		// construction. Guard anyway so a future bug cannot feed Select an
		// unsorted visit order.
		in.presorted = false
		m.orderKey = evalKey{}
		return
	}
	in.presorted = true
	m.orderKey = key
}

// emitSorted applies m.order to in.Candidates, writing the permuted
// candidates into in.sorted, and reports whether the result really is in
// Algorithm-1 order.
func (m *Model) emitSorted(in *Input) bool {
	cs := in.Candidates
	in.sorted = in.sorted[:0]
	for _, idx := range m.order {
		in.sorted = append(in.sorted, cs[idx])
	}
	for i := 1; i < len(in.sorted); i++ {
		if candLess(in.sorted[i], in.sorted[i-1]) {
			return false
		}
	}
	return true
}
