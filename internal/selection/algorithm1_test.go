package selection

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"aqua/internal/node"
)

func cand(id string, primary bool, immed, delayed float64, ert time.Duration) Candidate {
	return Candidate{ID: node.ID(id), Primary: primary, ImmedCDF: immed, DelayedCDF: delayed, ERT: ert}
}

func contains(ids []node.ID, id node.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func TestPKSinglePrimary(t *testing.T) {
	got := PK([]Candidate{cand("p", true, 0.8, 0, 0)}, 1)
	if !approx(got, 0.8) {
		t.Fatalf("PK = %v, want 0.8", got)
	}
}

func TestPKTwoPrimariesIndependence(t *testing.T) {
	cs := []Candidate{
		cand("p1", true, 0.5, 0, 0),
		cand("p2", true, 0.5, 0, 0),
	}
	if got := PK(cs, 1); !approx(got, 0.75) {
		t.Fatalf("PK = %v, want 1-(0.5)^2 = 0.75", got)
	}
}

func TestPKSecondaryMixesByStaleFactor(t *testing.T) {
	// One secondary: immediate CDF 0.8, delayed CDF 0.1, stale factor 0.5.
	// Equation 3: P(no response) = (1-0.8)*0.5 + (1-0.1)*0.5 = 0.55.
	cs := []Candidate{cand("s1", false, 0.8, 0.1, 0)}
	if got := PK(cs, 0.5); !approx(got, 0.45) {
		t.Fatalf("PK = %v, want 0.45", got)
	}
}

func TestPKFreshSecondaryEqualsPrimaryFormula(t *testing.T) {
	p := PK([]Candidate{cand("p", true, 0.7, 0, 0)}, 1)
	s := PK([]Candidate{cand("s", false, 0.7, 0.2, 0)}, 1)
	if !approx(p, s) {
		t.Fatalf("fresh secondary %v != primary %v", s, p)
	}
}

func TestPKEmptySet(t *testing.T) {
	if got := PK(nil, 1); got != 0 {
		t.Fatalf("PK(∅) = %v, want 0", got)
	}
}

func TestPKMixedGroups(t *testing.T) {
	// Equation 1: 1 - P(no primary) · P(no secondary).
	cs := []Candidate{
		cand("p1", true, 0.6, 0, 0),
		cand("s1", false, 0.5, 0.0, 0),
	}
	sf := 0.8
	wantNoSec := (1-0.5)*sf + (1-0.0)*(1-sf) // 0.4 + 0.2 = 0.6
	want := 1 - 0.4*wantNoSec                // 1 - 0.24 = 0.76
	if got := PK(cs, sf); !approx(got, want) {
		t.Fatalf("PK = %v, want %v", got, want)
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAlgorithm1SortsByERTDescending(t *testing.T) {
	// All CDFs high enough that two candidates satisfy Pc; the two with the
	// largest ert must be chosen (least recently used first).
	in := Input{
		Candidates: []Candidate{
			cand("a", true, 0.9, 0, 10*time.Second),
			cand("b", true, 0.9, 0, 30*time.Second),
			cand("c", true, 0.9, 0, 20*time.Second),
		},
		StaleFactor: 1,
		MinProb:     0.85,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)
	// b (ert 30) first, then c (ert 20): with the max-CDF exclusion, after
	// adding c we fold in one 0.9 ⇒ PK = 0.9 ≥ 0.85 → stop.
	if !contains(got, "b") || !contains(got, "c") || contains(got, "a") {
		t.Fatalf("selected %v, want {b,c,seq}", got)
	}
	if !contains(got, "seq") {
		t.Fatal("sequencer missing")
	}
}

func TestAlgorithm1ExcludesBestReplicaFromPK(t *testing.T) {
	// Two replicas each with CDF 0.9 and Pc = 0.85: a set of two only
	// reaches PK = 0.9 with the best excluded (one 0.9 counted), which
	// satisfies 0.85. But with Pc = 0.95 two replicas give only 0.9 < 0.95,
	// so a third must be added: its inclusion folds a second 0.9 giving
	// 1-(0.1)^2 = 0.99 ≥ 0.95.
	mk := func(minProb float64) []node.ID {
		in := Input{
			Candidates: []Candidate{
				cand("a", true, 0.9, 0, 3*time.Second),
				cand("b", true, 0.9, 0, 2*time.Second),
				cand("c", true, 0.9, 0, time.Second),
			},
			StaleFactor: 1,
			MinProb:     minProb,
			Sequencer:   "seq",
		}
		return Algorithm1{}.Select(in)
	}
	if got := mk(0.85); len(got) != 3 { // a, b, seq
		t.Fatalf("Pc=0.85 selected %v, want 2 replicas + sequencer", got)
	}
	if got := mk(0.95); len(got) != 4 { // a, b, c, seq
		t.Fatalf("Pc=0.95 selected %v, want 3 replicas + sequencer", got)
	}
}

func TestAlgorithm1SingleFailureTolerance(t *testing.T) {
	// The defining property: removing the member with the highest immediate
	// CDF from the returned set must still leave PK ≥ Pc (whenever the
	// algorithm reported success, i.e. didn't fall through to line 16).
	in := Input{
		Candidates: []Candidate{
			cand("a", true, 0.95, 0, 5*time.Second),
			cand("b", true, 0.7, 0, 4*time.Second),
			cand("c", true, 0.8, 0, 3*time.Second),
			cand("d", true, 0.6, 0, 2*time.Second),
		},
		StaleFactor: 1,
		MinProb:     0.9,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)

	// Rebuild the selected candidate set minus the best member.
	byID := make(map[node.ID]Candidate)
	for _, c := range in.Candidates {
		byID[c.ID] = c
	}
	var sel []Candidate
	for _, id := range got {
		if c, ok := byID[id]; ok {
			sel = append(sel, c)
		}
	}
	best := 0
	for i, c := range sel {
		if c.ImmedCDF > sel[best].ImmedCDF {
			best = i
		}
	}
	surviving := append(append([]Candidate{}, sel[:best]...), sel[best+1:]...)
	if pk := PK(surviving, 1); pk < in.MinProb {
		t.Fatalf("after best-member crash PK = %v < Pc = %v (set %v)", pk, in.MinProb, got)
	}
}

func TestAlgorithm1UnsatisfiableReturnsAll(t *testing.T) {
	in := Input{
		Candidates: []Candidate{
			cand("a", true, 0.1, 0, 2*time.Second),
			cand("b", true, 0.1, 0, time.Second),
		},
		StaleFactor: 1,
		MinProb:     0.99,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)
	if len(got) != 3 || !contains(got, "a") || !contains(got, "b") || !contains(got, "seq") {
		t.Fatalf("unsatisfiable selection = %v, want all + sequencer", got)
	}
}

func TestAlgorithm1ColdStartSelectsAll(t *testing.T) {
	// No history: all CDFs zero → never satisfiable → all replicas probed.
	in := Input{
		Candidates: []Candidate{
			cand("a", true, 0, 0, time.Duration(1<<62-1)),
			cand("b", false, 0, 0, time.Duration(1<<62-1)),
		},
		StaleFactor: 1,
		MinProb:     0.5,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)
	if len(got) != 3 {
		t.Fatalf("cold start selection = %v, want everything", got)
	}
}

func TestAlgorithm1EmptyCandidates(t *testing.T) {
	got := Algorithm1{}.Select(Input{Sequencer: "seq", MinProb: 0.9})
	if len(got) != 1 || got[0] != "seq" {
		t.Fatalf("empty candidates selection = %v", got)
	}
}

func TestAlgorithm1SequencerNotDuplicated(t *testing.T) {
	in := Input{
		Candidates:  []Candidate{cand("seq", true, 0.99, 0, time.Second), cand("b", true, 0.99, 0, 2*time.Second)},
		StaleFactor: 1,
		MinProb:     0.9,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)
	seen := 0
	for _, id := range got {
		if id == "seq" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("sequencer appears %d times in %v", seen, got)
	}
}

func TestAlgorithm1ERTTieBreaksByCDF(t *testing.T) {
	in := Input{
		Candidates: []Candidate{
			cand("low", true, 0.2, 0, time.Second),
			cand("high", true, 0.9, 0, time.Second),
		},
		StaleFactor: 1,
		MinProb:     0.15,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)
	// Equal ert: "high" sorts first, becomes maxCDF; adding "low" folds
	// low's 0.2 ⇒ PK = 0.2 ≥ 0.15 → K = {high, low}. Both are selected
	// here; the ordering property is observable through the first element.
	if got[0] != "high" {
		t.Fatalf("selection order = %v, want high first on CDF tie-break", got)
	}
}

func TestAlgorithm1StopsAsEarlyAsPossible(t *testing.T) {
	// Never selects more replicas than necessary: with a generous Pc, stop
	// after the second candidate (the minimum the exclusion rule allows).
	in := Input{
		Candidates: []Candidate{
			cand("a", true, 0.99, 0, 5*time.Second),
			cand("b", true, 0.99, 0, 4*time.Second),
			cand("c", true, 0.99, 0, 3*time.Second),
			cand("d", true, 0.99, 0, 2*time.Second),
		},
		StaleFactor: 1,
		MinProb:     0.5,
		Sequencer:   "seq",
	}
	got := Algorithm1{}.Select(in)
	if len(got) != 3 { // a, b, seq — cannot be fewer: one replica is always excluded
		t.Fatalf("selected %v, want exactly {a,b,seq}", got)
	}
}

// Property: the returned set always includes the sequencer, has no
// duplicates, and — whenever it is a strict subset of the candidates —
// satisfies PK ≥ Pc with its best member excluded.
func TestAlgorithm1Property(t *testing.T) {
	prop := func(rawCDF []uint8, minProbRaw uint8, staleRaw uint8) bool {
		if len(rawCDF) == 0 {
			return true
		}
		if len(rawCDF) > 10 {
			rawCDF = rawCDF[:10]
		}
		in := Input{
			StaleFactor: float64(staleRaw) / 255,
			MinProb:     float64(minProbRaw) / 255,
			Sequencer:   "seq",
		}
		for i, b := range rawCDF {
			in.Candidates = append(in.Candidates, Candidate{
				ID:         node.ID(rune('a' + i)),
				Primary:    i%2 == 0,
				ImmedCDF:   float64(b) / 255,
				DelayedCDF: float64(b) / 512,
				ERT:        time.Duration(i) * time.Second,
			})
		}
		got := Algorithm1{}.Select(in)
		if !contains(got, "seq") {
			return false
		}
		seen := make(map[node.ID]bool)
		for _, id := range got {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		if len(got)-1 >= len(in.Candidates) {
			return true // fell through to line 16: no guarantee claimed
		}
		// Strict subset ⇒ the crash-tolerance property must hold.
		byID := make(map[node.ID]Candidate)
		for _, c := range in.Candidates {
			byID[c.ID] = c
		}
		var sel []Candidate
		for _, id := range got {
			if c, ok := byID[id]; ok {
				sel = append(sel, c)
			}
		}
		best := 0
		for i, c := range sel {
			if c.ImmedCDF > sel[best].ImmedCDF {
				best = i
			}
		}
		surviving := append(append([]Candidate{}, sel[:best]...), sel[best+1:]...)
		return PK(surviving, in.StaleFactor) >= in.MinProb-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
