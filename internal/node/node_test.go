package node

import "testing"

func TestFuncNodeNilCallbacksSafe(t *testing.T) {
	var n FuncNode
	n.Init(nil)     // must not panic
	n.Recv("x", 42) // must not panic
}

func TestFuncNodeDispatch(t *testing.T) {
	inits, recvs := 0, 0
	n := FuncNode{
		OnInit: func(Context) { inits++ },
		OnRecv: func(from ID, m Message) {
			if from != "peer" || m.(int) != 7 {
				t.Fatalf("recv got %v %v", from, m)
			}
			recvs++
		},
	}
	n.Init(nil)
	n.Recv("peer", 7)
	if inits != 1 || recvs != 1 {
		t.Fatalf("dispatch counts %d/%d", inits, recvs)
	}
}
