// Package node defines the actor model that every protocol participant in
// this repository is written against: a Node receives messages and timer
// callbacks, one at a time, through a Context supplied by a runtime.
//
// Two runtimes implement Context: the deterministic discrete-event simulator
// (internal/sim) used by the experiments and integration tests, and the
// real-time goroutine runtime (internal/live) used by the example binaries.
// Because both runtimes serialize all callbacks delivered to a given node,
// protocol code needs no locking and behaves identically on either runtime.
package node

import (
	"math/rand"
	"time"
)

// ID identifies a node (a replica gateway, a client gateway, or the
// sequencer) within one runtime instance.
type ID string

// Message is any value exchanged between nodes. Concrete message types are
// plain structs; the live TCP transport additionally requires them to be
// gob-encodable and registered with tcpnet.Register.
type Message interface{}

// CancelFunc cancels a pending timer. Calling it after the timer fired, or
// calling it twice, is a no-op.
type CancelFunc func()

// Context is the interface a runtime presents to a node. All methods must be
// called only from within the node's own callbacks (Init, Recv, or a timer
// function); runtimes do not make them safe for use from other goroutines.
type Context interface {
	// ID returns the identity this node was registered under.
	ID() ID

	// Now returns the current time: virtual time in the simulator, wall
	// clock time in the live runtime. Only differences between Now values
	// are meaningful to protocol code.
	Now() time.Time

	// Send delivers m to the node registered under 'to'. Delivery is
	// asynchronous and, depending on the configured network model, may be
	// delayed, dropped, or reordered relative to other Sends.
	Send(to ID, m Message)

	// SetTimer schedules f to run in this node's context after d. The
	// returned CancelFunc prevents f from running if invoked first.
	SetTimer(d time.Duration, f func()) CancelFunc

	// Post schedules f like SetTimer but returns no cancel handle. It is
	// the allocation-lean path for fire-and-forget timers (periodic ticks,
	// service delays, think times): the simulator runs it without the
	// per-timer cancel closure SetTimer must allocate.
	Post(d time.Duration, f func())

	// Rand returns this node's private random source. The simulator seeds
	// it deterministically from the run seed and the node ID.
	Rand() *rand.Rand

	// Logf records a diagnostic message tagged with the node ID and time.
	Logf(format string, args ...interface{})
}

// Node is a protocol participant. A runtime calls Init exactly once, before
// any Recv, and then Recv once per delivered message. Both run in the node's
// single logical thread of control.
type Node interface {
	Init(ctx Context)
	Recv(from ID, m Message)
}

// FuncNode adapts plain functions to the Node interface; useful in tests.
type FuncNode struct {
	OnInit func(ctx Context)
	OnRecv func(from ID, m Message)
}

// Init implements Node.
func (f *FuncNode) Init(ctx Context) {
	if f.OnInit != nil {
		f.OnInit(ctx)
	}
}

// Recv implements Node.
func (f *FuncNode) Recv(from ID, m Message) {
	if f.OnRecv != nil {
		f.OnRecv(from, m)
	}
}

var _ Node = (*FuncNode)(nil)
