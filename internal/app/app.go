// Package app defines the replicated-application contract. A server object
// in the paper is a CORBA servant behind the AQuA gateway; here it is any
// type implementing Application. The gateway guarantees that ApplyUpdate is
// invoked in the same global order at every primary replica and that
// secondary state only ever moves forward through Restore snapshots taken
// by the lazy publisher.
package app

// Application is a deterministic replicated state machine.
//
// Implementations need no internal locking: each replica gateway invokes
// its application from a single logical thread.
type Application interface {
	// ApplyUpdate executes a state-modifying operation and returns its
	// reply. Implementations must be deterministic: replicas applying the
	// same updates in the same order must reach identical states.
	ApplyUpdate(method string, payload []byte) ([]byte, error)

	// Read executes a read-only operation against current state.
	Read(method string, payload []byte) ([]byte, error)

	// Snapshot serializes the full application state for lazy propagation
	// and recovery. The encoding must be canonical: two replicas holding
	// identical logical state must produce identical bytes (sort map keys;
	// never gob-encode a map directly), because the anti-entropy layer
	// compares state digests.
	Snapshot() ([]byte, error)

	// Restore replaces the application state with a snapshot.
	Restore(snapshot []byte) error
}
