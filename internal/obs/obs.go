// Package obs is the observability subsystem: an allocation-conscious
// metrics registry (counters, gauges, fixed-bucket histograms) and a JSONL
// request tracer shared by both runtimes — virtual time in internal/sim and
// wall time in internal/live.
//
// Design contract (the "zero cost when disabled" rule every instrumented
// hot path relies on):
//
//   - A nil *Registry hands out nil instruments, and every instrument
//     method is a nil-safe no-op. Instrumented code therefore never
//     branches on "is observability on": it just calls c.Inc() and the
//     disabled path costs one nil check and zero allocations.
//   - Instruments only record; they never read clocks, draw randomness, or
//     schedule work. Enabling them cannot perturb a deterministic
//     virtual-time run — the simulator's event order is identical with
//     metrics on or off (enforced by the experiment package's determinism
//     test).
//   - Updates are atomic, so one registry may be shared by the live
//     runtime's node goroutines, a parallel experiment sweep's workers, and
//     a concurrent Prometheus scrape.
//
// Instruments are interned by (name, labels): asking twice returns the same
// instrument, so gateways resolve theirs once at Init and hold pointers.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes instrument types in snapshots.
type Kind int

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindFloatCounter
	KindFloatGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter, KindFloatCounter:
		return "counter"
	case KindGauge, KindFloatGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Safe on nil.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta. Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatCounter is a monotonically increasing float (e.g. a sum of predicted
// probabilities). Adds use a CAS loop over the float's bit pattern.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates f. Safe on nil.
func (c *FloatCounter) Add(f float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + f)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated sum (0 on nil).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// FloatGauge is a settable float (e.g. an observed failure rate).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores f. Safe on nil.
func (g *FloatGauge) Set(f float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(f))
	}
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds,
// ascending) plus an overflow bucket. Bounds are fixed at creation so
// Observe never allocates.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     FloatCounter
}

// Observe records v. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~16) and almost always hit an
	// early bound, which beats binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// LatencyBucketsMS is the default latency bucket layout, in milliseconds —
// wide enough for both the sub-millisecond simulated network and multi-
// second deferred-read waits. The sub-100µs bounds at the bottom keep the
// group-commit fast path (which serves frontier reads in ~0 service time)
// distinguishable from ordinary sub-millisecond serves instead of lumping
// everything below 1ms into one bucket.
func LatencyBucketsMS() []float64 {
	return []float64{0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 500, 1000, 2000, 5000}
}

// DepthBuckets is the default layout for queue depths and staleness counts.
func DepthBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	labels []string // alternating key, value
	kind   Kind

	counter   *Counter
	gauge     *Gauge
	fcounter  *FloatCounter
	fgauge    *FloatGauge
	histogram *Histogram
}

// Registry holds instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled state: every accessor
// returns nil and Snapshot returns nothing.
//
// A Registry may also be a labelled view of another registry (see
// WithLabels): views own no instruments — they delegate to their root with
// the view's base labels prepended — so a view and its root always agree.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	ordered []*metric

	// root/base make this registry a labelled view: every instrument
	// request is forwarded to root with base prepended to the caller's
	// labels. Nil root means this registry owns its instruments.
	root *Registry
	base []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// WithLabels returns a view of this registry that prepends the given
// key/value label pairs to every instrument created through it. Multiple
// deployments sharing one runtime each take a view (e.g. "shard", "2") so
// their otherwise identically named instruments stay distinct in /metrics
// instead of silently aggregating. Views chain (labels accumulate) and all
// share the root's instrument table; Snapshot and WritePrometheus on a view
// render the whole root. Returns nil on a nil registry, preserving the
// disabled-observability contract.
func (r *Registry) WithLabels(labels ...string) *Registry {
	if r == nil {
		return nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: WithLabels: labels must be key/value pairs, got %d strings", len(labels)))
	}
	root, base := r, []string(nil)
	if r.root != nil {
		root, base = r.root, r.base
	}
	merged := make([]string, 0, len(base)+len(labels))
	merged = append(merged, base...)
	merged = append(merged, labels...)
	return &Registry{root: root, base: merged}
}

// withBase prepends the view's base labels (no-op on a root registry).
func (r *Registry) withBase(labels []string) []string {
	if len(r.base) == 0 {
		return labels
	}
	merged := make([]string, 0, len(r.base)+len(labels))
	merged = append(merged, r.base...)
	merged = append(merged, labels...)
	return merged
}

// metricKey builds the interning key. Labels keep caller order (call sites
// are consistent); the key embeds it verbatim.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	k := name
	for _, l := range labels {
		k += "\x00" + l
	}
	return k
}

func (r *Registry) intern(name string, kind Kind, labels []string) *metric {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: %s: labels must be key/value pairs, got %d strings", name, len(labels)))
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %v, was %v", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: append([]string(nil), labels...), kind: kind}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns (creating if needed) the named counter. labels are
// alternating key/value pairs. Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	if r.root != nil {
		return r.root.Counter(name, r.withBase(labels)...)
	}
	m := r.intern(name, KindCounter, labels)
	if m.counter == nil {
		m.counter = new(Counter)
	}
	return m.counter
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	if r.root != nil {
		return r.root.Gauge(name, r.withBase(labels)...)
	}
	m := r.intern(name, KindGauge, labels)
	if m.gauge == nil {
		m.gauge = new(Gauge)
	}
	return m.gauge
}

// FloatCounter returns (creating if needed) the named float counter.
func (r *Registry) FloatCounter(name string, labels ...string) *FloatCounter {
	if r == nil {
		return nil
	}
	if r.root != nil {
		return r.root.FloatCounter(name, r.withBase(labels)...)
	}
	m := r.intern(name, KindFloatCounter, labels)
	if m.fcounter == nil {
		m.fcounter = new(FloatCounter)
	}
	return m.fcounter
}

// FloatGauge returns (creating if needed) the named float gauge.
func (r *Registry) FloatGauge(name string, labels ...string) *FloatGauge {
	if r == nil {
		return nil
	}
	if r.root != nil {
		return r.root.FloatGauge(name, r.withBase(labels)...)
	}
	m := r.intern(name, KindFloatGauge, labels)
	if m.fgauge == nil {
		m.fgauge = new(FloatGauge)
	}
	return m.fgauge
}

// Histogram returns (creating if needed) the named histogram with the given
// bucket upper bounds (ascending). Bounds are fixed by the first caller;
// later callers get the same instrument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if r.root != nil {
		return r.root.Histogram(name, bounds, r.withBase(labels)...)
	}
	m := r.intern(name, KindHistogram, labels)
	if m.histogram == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds)+1)
		m.histogram = h
	}
	return m.histogram
}

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations ≤ UpperBound (Prometheus "le" semantics).
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Cumulative uint64
}

// Sample is one instrument's state at snapshot time.
type Sample struct {
	Name   string
	Labels []string // alternating key, value
	Kind   Kind

	// Value holds the counter/gauge reading (integer kinds are widened).
	Value float64
	// Histogram data; nil for scalar kinds.
	Buckets []Bucket
	Count   uint64
	Sum     float64
}

// Snapshot captures every instrument, sorted by name then labels, so two
// snapshots of identically wired registries render identically. Returns nil
// on a nil registry.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	if r.root != nil {
		return r.root.Snapshot()
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()

	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Value())
		case KindGauge:
			s.Value = float64(m.gauge.Value())
		case KindFloatCounter:
			s.Value = m.fcounter.Value()
		case KindFloatGauge:
			s.Value = m.fgauge.Value()
		case KindHistogram:
			h := m.histogram
			var cum uint64
			s.Buckets = make([]Bucket, 0, len(h.buckets))
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Cumulative: cum})
			}
			s.Count = h.count.Load()
			s.Sum = h.sum.Value()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelsLess(out[i].Labels, out[j].Labels)
	})
	return out
}

func labelsLess(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
