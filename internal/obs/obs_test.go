package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeFloat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "node", "p01")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "node", "p01"); again != c {
		t.Fatal("same name+labels must intern to the same counter")
	}
	if other := r.Counter("c_total", "node", "p02"); other == c {
		t.Fatal("different labels must intern to a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	f := r.FloatCounter("f_sum")
	f.Add(0.25)
	f.Add(0.5)
	if got := f.Value(); got != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}

	fg := r.FloatGauge("rate")
	fg.Set(0.125)
	if got := fg.Value(); got != 0.125 {
		t.Fatalf("float gauge = %v, want 0.125", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples, want 1", len(snap))
	}
	s := snap[0]
	wantCum := []uint64{2, 3, 4, 5} // ≤1, ≤10, ≤100, +Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Cumulative != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Cumulative, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestNilRegistryAndInstrumentsAreZeroAllocNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	f := r.FloatCounter("x")
	fg := r.FloatGauge("x")
	h := r.Histogram("x", LatencyBucketsMS())
	var tr *Tracer
	sub := tr.WithRun("run", time.Time{})

	if c != nil || g != nil || f != nil || fg != nil || h != nil || sub != nil {
		t.Fatal("nil registry/tracer must hand out nil instruments")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, %v; want empty, nil", buf.String(), err)
	}

	var span Span
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		f.Add(0.5)
		fg.Set(0.5)
		h.Observe(2)
		tr.Record(time.Time{}, &span)
		_ = tr.Flush()
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f/op, want 0", allocs)
	}
}

func TestEnabledInstrumentUpdatesAreAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", DepthBuckets())
	f := r.FloatCounter("f")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(3)
		f.Add(0.25)
	})
	if allocs != 0 {
		t.Fatalf("enabled instrument updates allocated %.1f/op, want 0", allocs)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("aqua_reads_total", "client", "c01").Add(3)
	r.FloatGauge("aqua_failure_rate", "client", "c01").Set(0.25)
	r.Histogram("aqua_lat_ms", []float64{10, 100}, "client", "c01").Observe(42)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE aqua_reads_total counter",
		`aqua_reads_total{client="c01"} 3`,
		`aqua_failure_rate{client="c01"} 0.25`,
		`aqua_lat_ms_bucket{client="c01",le="10"} 0`,
		`aqua_lat_ms_bucket{client="c01",le="100"} 1`,
		`aqua_lat_ms_bucket{client="c01",le="+Inf"} 1`,
		`aqua_lat_ms_sum{client="c01"} 42`,
		`aqua_lat_ms_count{client="c01"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	f := r.FloatCounter("f")
	h := r.Histogram("h", []float64{5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				f.Add(1)
				h.Observe(float64(i % 10))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if f.Value() != workers*per {
		t.Fatalf("float counter = %v, want %d", f.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	epoch := time.Date(2002, time.June, 23, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(&buf, epoch)
	run := tr.WithRun("fig4 d=140ms", epoch)
	run.Record(epoch.Add(1500*time.Millisecond), &Span{
		Kind: "read", Client: "c01", Seq: 7, Replica: "p02",
		Predicted: 0.93, Deferred: true, ResponseMS: 120.5,
	})
	tr.Record(epoch.Add(2*time.Second), &Span{Kind: "serve_read", Node: "s00"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var s Span
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if s.Run != "fig4 d=140ms" || s.TMS != 1500 || s.Replica != "p02" || !s.Deferred {
		t.Fatalf("span round-trip mismatch: %+v", s)
	}
	var s2 Span
	if err := json.Unmarshal([]byte(lines[1]), &s2); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if s2.Run != "" || s2.TMS != 2000 {
		t.Fatalf("base tracer span mismatch: %+v", s2)
	}
}

func TestWithLabels(t *testing.T) {
	r := NewRegistry()
	v := r.WithLabels("shard", "1")
	v.Counter("req_total", "node", "p00").Add(3)
	// The view interns into the root with the base labels prepended: the
	// fully qualified lookup on the root must reach the same instrument.
	if got := r.Counter("req_total", "shard", "1", "node", "p00").Value(); got != 3 {
		t.Fatalf("root sees %d, want 3", got)
	}
	// Same name through a different view (or none) is a distinct series.
	r.Counter("req_total", "node", "p00").Inc()
	r.WithLabels("shard", "2").Counter("req_total", "node", "p00").Add(7)
	if got := r.Counter("req_total", "shard", "1", "node", "p00").Value(); got != 3 {
		t.Fatalf("series collided across views: %d", got)
	}

	// Views chain: labels accumulate left to right.
	vv := v.WithLabels("role", "primary")
	vv.Gauge("csn").Set(9)
	if got := r.Gauge("csn", "shard", "1", "role", "primary").Value(); got != 9 {
		t.Fatalf("chained view gauge = %d, want 9", got)
	}

	// Snapshot delegates to the root: the view exposes everything.
	if got, want := len(v.Snapshot()), len(r.Snapshot()); got != want {
		t.Fatalf("view snapshot has %d samples, root %d", got, want)
	}

	// Histograms keep their bounds through the view.
	v.Histogram("lat", []float64{1, 10}).Observe(5)
	if h := r.Histogram("lat", []float64{1, 10}, "shard", "1"); h.Count() != 1 {
		t.Fatalf("view histogram count = %d, want 1", h.Count())
	}

	// A nil registry's view is still a nil no-op.
	var nilReg *Registry
	nv := nilReg.WithLabels("shard", "0")
	if nv != nil {
		t.Fatal("nil registry view must be nil")
	}
	nv.Counter("x").Inc() // must not panic
}
