package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one family per instrument name, histogram
// `_bucket`/`_sum`/`_count` expansion, label escaping. Safe on nil (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastType := map[string]bool{}
	for _, s := range r.Snapshot() {
		if !lastType[s.Name] {
			lastType[s.Name] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n",
					s.Name, labelString(s.Labels, "le", formatBound(b.UpperBound)), b.Cumulative)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatValue(s.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, labelString(s.Labels), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

// labelString renders {k="v",...}; extra appends one more pair (used for
// the histogram "le" label). Returns "" when there are no labels at all.
func labelString(labels []string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	wrote := false
	emit := func(k, v string) {
		if wrote {
			sb.WriteByte(',')
		}
		wrote = true
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteByte('"')
	}
	for i := 0; i+1 < len(labels); i += 2 {
		emit(labels[i], labels[i+1])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return formatValue(b)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics (any path) in Prometheus text
// format — plug it into aquad's -metrics-addr HTTP server. A nil registry
// serves an empty exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
