package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one traced request event, serialized as a single JSONL record.
// Client gateways record one span per completed invocation; replica
// gateways record one per served job. Times are expressed relative to the
// tracer's epoch, so virtual-time (sim) and wall-time (live) runs read the
// same way.
type Span struct {
	// TMS is milliseconds since the tracer epoch, filled by Record.
	TMS float64 `json:"t_ms"`
	// Run labels the experiment point or process that produced the span.
	Run string `json:"run,omitempty"`
	// Kind is "read", "update" (client side), "serve_read", "serve_update"
	// (replica side).
	Kind string `json:"kind"`
	// Node is the gateway that recorded the span.
	Node string `json:"node,omitempty"`
	// Client/Seq identify the request.
	Client string `json:"client,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Method string `json:"method,omitempty"`
	// Replica is the gateway whose reply was delivered (client spans).
	Replica string `json:"replica,omitempty"`
	// Selected is the serving-replica count of the initial selection.
	Selected int `json:"selected,omitempty"`
	// Predicted is the model's P_K(d) for the chosen set at selection time.
	Predicted float64 `json:"predicted,omitempty"`
	// Deferred reports whether the winning reply (client spans) or the
	// served read (replica spans) waited for a lazy state update.
	Deferred bool `json:"deferred,omitempty"`
	// ResponseMS is the observed response time tr (client spans).
	ResponseMS float64 `json:"response_ms,omitempty"`
	// ServiceMS/QueueMS/DeferMS are ts/tq/tb (replica spans).
	ServiceMS float64 `json:"service_ms,omitempty"`
	QueueMS   float64 `json:"queue_ms,omitempty"`
	DeferMS   float64 `json:"defer_ms,omitempty"`
	// Staleness is my_GSN − my_CSN at read admission (replica spans).
	Staleness int64 `json:"staleness,omitempty"`
	// TimingFailure reports tr > d (client read spans).
	TimingFailure bool   `json:"timing_failure,omitempty"`
	Err           string `json:"err,omitempty"`
}

// traceWriter is the shared sink behind a tracer and all its derived
// sub-tracers: one mutex, one buffered writer, whole-line writes.
type traceWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// Tracer records spans as JSON lines. A nil *Tracer is the disabled state:
// Record is a no-op costing one nil check and zero allocations. Derived
// tracers (WithRun) share the underlying writer, so a parallel experiment
// sweep can stream every point into one file; each line is written
// atomically.
type Tracer struct {
	w     *traceWriter
	run   string
	epoch time.Time
}

// NewTracer creates a tracer writing to w with times relative to epoch
// (sim.Epoch for virtual-time runs, process start for live runs).
func NewTracer(w io.Writer, epoch time.Time) *Tracer {
	return &Tracer{w: &traceWriter{bw: bufio.NewWriter(w)}, epoch: epoch}
}

// WithRun returns a tracer labeling every span with run and measuring times
// from epoch, sharing this tracer's output. Safe on nil (returns nil).
func (t *Tracer) WithRun(run string, epoch time.Time) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{w: t.w, run: run, epoch: epoch}
}

// Record stamps s with the tracer's run label and epoch-relative time and
// appends it as one JSON line. Safe on nil.
func (t *Tracer) Record(at time.Time, s *Span) {
	if t == nil {
		return
	}
	s.TMS = float64(at.Sub(t.epoch)) / float64(time.Millisecond)
	if s.Run == "" {
		s.Run = t.run
	}
	line, err := json.Marshal(s)
	t.w.mu.Lock()
	defer t.w.mu.Unlock()
	if err != nil {
		if t.w.err == nil {
			t.w.err = err
		}
		return
	}
	if t.w.err != nil {
		return
	}
	if _, err := t.w.bw.Write(line); err != nil {
		t.w.err = err
		return
	}
	if err := t.w.bw.WriteByte('\n'); err != nil {
		t.w.err = err
	}
}

// Flush drains buffered spans to the underlying writer and reports the
// first error seen. Safe on nil.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.w.mu.Lock()
	defer t.w.mu.Unlock()
	if err := t.w.bw.Flush(); err != nil && t.w.err == nil {
		t.w.err = err
	}
	return t.w.err
}
