package cluster

import (
	"testing"
	"time"

	"aqua/internal/apps"
	"aqua/internal/qos"
)

const spec = "p00=h1:1,p01=h1:2,p02=h2:1,s00=h2:2,s01=h3:1,c00=h4:1"

func TestParseBasic(t *testing.T) {
	s, err := Parse(spec, "p00,p01,p02", "c00")
	if err != nil {
		t.Fatal(err)
	}
	if s.Sequencer != "p00" {
		t.Fatalf("sequencer = %s", s.Sequencer)
	}
	if len(s.Primaries) != 3 || len(s.Secondaries) != 2 || len(s.Clients) != 1 {
		t.Fatalf("spec = %+v", s)
	}
	if s.Secondaries[0] != "s00" || s.Secondaries[1] != "s01" {
		t.Fatalf("secondaries = %v", s.Secondaries)
	}
	if s.Addresses["p02"] != "h2:1" {
		t.Fatalf("addresses = %v", s.Addresses)
	}
}

func TestParseSortsPrimariesForSequencer(t *testing.T) {
	s, err := Parse(spec, "p02,p00,p01", "c00")
	if err != nil {
		t.Fatal(err)
	}
	if s.Sequencer != "p00" {
		t.Fatalf("sequencer = %s, want lowest ID", s.Sequencer)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name                string
		cluster, prim, clis string
	}{
		{"empty cluster", "", "a,b", ""},
		{"bad entry", "p00", "p00,p01", ""},
		{"duplicate id", "p00=h:1,p00=h:2", "p00,p01", ""},
		{"one primary", spec, "p00", "c00"},
		{"primary not in cluster", spec, "p00,zz", "c00"},
		{"client not in cluster", spec, "p00,p01", "nope"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.cluster, tt.prim, tt.clis); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestSplitIDs(t *testing.T) {
	got := SplitIDs(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SplitIDs = %v", got)
	}
	if len(SplitIDs("")) != 0 {
		t.Fatal("empty split should be empty")
	}
	if !got.Contains("b") || got.Contains("z") {
		t.Fatal("Contains wrong")
	}
	if s := got.Strings(); len(s) != 3 || s[0] != "a" {
		t.Fatalf("Strings = %v", s)
	}
}

func TestPeersForExcludesHosted(t *testing.T) {
	s, _ := Parse(spec, "p00,p01,p02", "c00")
	peers := s.PeersFor(IDList{"p00", "p01"})
	if _, ok := peers["p00"]; ok {
		t.Fatal("hosted node in peer map")
	}
	if len(peers) != 4 {
		t.Fatalf("peers = %v", peers)
	}
}

func TestServiceInfo(t *testing.T) {
	s, _ := Parse(spec, "p00,p01,p02", "c00")
	info := s.ServiceInfo(3 * time.Second)
	if info.Sequencer != "p00" || info.LazyInterval != 3*time.Second || len(info.Secondaries) != 2 {
		t.Fatalf("info = %+v", info)
	}
}

func TestNewReplicaValidation(t *testing.T) {
	s, _ := Parse(spec, "p00,p01,p02", "c00")
	if _, err := s.NewReplica("zz", time.Second, apps.NewKVStore(), Observability{}); err == nil {
		t.Fatal("unknown replica accepted")
	}
	if _, err := s.NewReplica("c00", time.Second, apps.NewKVStore(), Observability{}); err == nil {
		t.Fatal("client accepted as replica")
	}
	gw, err := s.NewReplica("s00", time.Second, apps.NewKVStore(), Observability{})
	if err != nil || gw == nil {
		t.Fatalf("NewReplica(s00) = %v", err)
	}
}

func TestNewClientValidation(t *testing.T) {
	s, _ := Parse(spec, "p00,p01,p02", "c00")
	qspec := qos.Spec{Staleness: 1, Deadline: time.Second, MinProb: 0.5}
	if _, err := s.NewClient("p00", qspec, qos.NewMethods("Get"), time.Second, Observability{}); err == nil {
		t.Fatal("replica accepted as client")
	}
	gw, err := s.NewClient("c00", qspec, qos.NewMethods("Get"), time.Second, Observability{})
	if err != nil || gw == nil {
		t.Fatalf("NewClient = %v", err)
	}
}
