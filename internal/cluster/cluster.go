// Package cluster parses the flag-level cluster description shared by the
// aquad and aquacli binaries and turns it into gateway configurations: who
// the replicas and clients are, where each process listens, which primary
// is the sequencer, and which peers a given process must dial.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aqua/internal/app"
	"aqua/internal/client"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/qos"
	"aqua/internal/replica"
	"aqua/internal/wal"
)

// Observability bundles the optional metrics registry and trace sink a
// process attaches to the gateways it hosts. The zero value disables both.
type Observability struct {
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// IDList is a parsed, order-preserving list of node IDs.
type IDList []node.ID

// Strings converts back for display.
func (l IDList) Strings() []string {
	out := make([]string, len(l))
	for i, id := range l {
		out[i] = string(id)
	}
	return out
}

// Contains reports membership.
func (l IDList) Contains(id node.ID) bool {
	for _, x := range l {
		if x == id {
			return true
		}
	}
	return false
}

// SplitIDs parses a comma-separated ID list, ignoring empty entries and
// surrounding spaces.
func SplitIDs(s string) IDList {
	var out IDList
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, node.ID(part))
		}
	}
	return out
}

// Spec is a parsed cluster description.
type Spec struct {
	// Addresses maps every node ID (replicas and clients) to the TCP
	// address of the process hosting it.
	Addresses map[node.ID]string
	// Primaries is the primary group, sorted; Primaries[0] is the
	// sequencer.
	Primaries IDList
	// Secondaries is every replica in Addresses that is neither primary
	// nor client, sorted.
	Secondaries IDList
	// Clients lists client gateway IDs.
	Clients IDList
	// Sequencer is the initial sequencer.
	Sequencer node.ID
}

// Parse builds a Spec from the -cluster, -primaries and -clients flags.
func Parse(clusterSpec, primaries, clients string) (*Spec, error) {
	if strings.TrimSpace(clusterSpec) == "" {
		return nil, fmt.Errorf("cluster: -cluster spec is required")
	}
	s := &Spec{Addresses: make(map[node.ID]string)}
	for _, part := range strings.Split(clusterSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad entry %q (want id=host:port)", part)
		}
		if _, dup := s.Addresses[node.ID(id)]; dup {
			return nil, fmt.Errorf("cluster: duplicate id %q", id)
		}
		s.Addresses[node.ID(id)] = addr
	}

	s.Primaries = SplitIDs(primaries)
	if len(s.Primaries) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 primaries (sequencer + 1 serving)")
	}
	sort.Slice(s.Primaries, func(i, j int) bool { return s.Primaries[i] < s.Primaries[j] })
	s.Sequencer = s.Primaries[0]
	s.Clients = SplitIDs(clients)

	for _, id := range s.Primaries {
		if _, ok := s.Addresses[id]; !ok {
			return nil, fmt.Errorf("cluster: primary %q missing from -cluster", id)
		}
	}
	for _, id := range s.Clients {
		if _, ok := s.Addresses[id]; !ok {
			return nil, fmt.Errorf("cluster: client %q missing from -cluster", id)
		}
	}
	for id := range s.Addresses {
		if !s.Primaries.Contains(id) && !s.Clients.Contains(id) {
			s.Secondaries = append(s.Secondaries, id)
		}
	}
	sort.Slice(s.Secondaries, func(i, j int) bool { return s.Secondaries[i] < s.Secondaries[j] })
	return s, nil
}

// PeersFor returns the dial map for a process hosting the given IDs: every
// other node's address.
func (s *Spec) PeersFor(hosted IDList) map[node.ID]string {
	peers := make(map[node.ID]string, len(s.Addresses))
	for id, addr := range s.Addresses {
		if !hosted.Contains(id) {
			peers[id] = addr
		}
	}
	return peers
}

// ServiceInfo builds the client-side view of the service.
func (s *Spec) ServiceInfo(lazy time.Duration) client.ServiceInfo {
	return client.ServiceInfo{
		Primaries:    s.Primaries,
		Secondaries:  s.Secondaries,
		Sequencer:    s.Sequencer,
		LazyInterval: lazy,
	}
}

// ReplicaOptions are the durability and ordering knobs a process can arm
// on the replicas it hosts. The zero value is the legacy configuration:
// no WAL, per-sequencer GSN ordering.
type ReplicaOptions struct {
	// Media, when non-nil, equips the replica with a WAL + snapshot store
	// over it; a restart of the process then recovers from media instead
	// of re-fetching history.
	Media wal.Media
	// SnapshotEvery is the WAL compaction threshold in log records
	// (0 = replica default).
	SnapshotEvery int
	// ReplicatedAssign enables majority-floor replicated GSN ordering.
	ReplicatedAssign bool
}

// NewReplica builds a replica gateway config for one hosted ID.
func (s *Spec) NewReplica(id node.ID, lazy time.Duration, application app.Application, o Observability) (*replica.Gateway, error) {
	return s.NewReplicaOpts(id, lazy, application, o, ReplicaOptions{})
}

// NewReplicaOpts is NewReplica with durability and ordering options.
func (s *Spec) NewReplicaOpts(id node.ID, lazy time.Duration, application app.Application, o Observability, opts ReplicaOptions) (*replica.Gateway, error) {
	if _, ok := s.Addresses[id]; !ok {
		return nil, fmt.Errorf("cluster: unknown replica %q", id)
	}
	if s.Clients.Contains(id) {
		return nil, fmt.Errorf("cluster: %q is a client, not a replica", id)
	}
	var store *wal.Store
	if opts.Media != nil {
		store = wal.NewStore(opts.Media)
	}
	return replica.New(replica.Config{
		Primary:          s.Primaries.Contains(id),
		PrimaryGroup:     s.Primaries,
		Secondaries:      s.Secondaries,
		Clients:          s.Clients,
		Group:            group.DefaultConfig(),
		LazyInterval:     lazy,
		Durable:          store,
		SnapshotEvery:    opts.SnapshotEvery,
		ReplicatedAssign: opts.ReplicatedAssign,
		App:              application,
		Obs:              o.Obs,
		Tracer:           o.Tracer,
	}), nil
}

// NewClient builds a client gateway for one client ID.
func (s *Spec) NewClient(id node.ID, spec qos.Spec, methods *qos.Methods, lazy time.Duration, o Observability) (*client.Gateway, error) {
	if !s.Clients.Contains(id) {
		return nil, fmt.Errorf("cluster: %q is not declared in -clients", id)
	}
	gcfg := group.DefaultConfig()
	gcfg.HeartbeatInterval = 0
	gcfg.FailTimeout = 0
	return client.New(client.Config{
		Service: s.ServiceInfo(lazy),
		Spec:    spec,
		Methods: methods,
		Group:   gcfg,
		Obs:     o.Obs,
		Tracer:  o.Tracer,
	}), nil
}
