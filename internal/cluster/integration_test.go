package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/tcpnet"
)

// TestClusterEndToEndOverTCP exercises the exact code path the aquad and
// aquacli binaries run: parse a cluster spec, build replica and client
// gateways from it, host them in separate live runtimes bridged by real
// TCP, and complete a write+read under a QoS spec.
func TestClusterEndToEndOverTCP(t *testing.T) {
	// Three "processes": two replica hosts and one client host, with
	// ephemeral ports discovered after listen.
	type proc struct {
		rt *live.Runtime
		tr *tcpnet.Transport
	}
	mkProc := func() *proc {
		rt := live.NewRuntime()
		tr, err := tcpnet.New(rt, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		rt.SetRemote(tr.Send)
		return &proc{rt: rt, tr: tr}
	}
	procA, procB, procC := mkProc(), mkProc(), mkProc()
	defer func() {
		procA.tr.Close()
		procB.tr.Close()
		procC.tr.Close()
	}()

	// Cluster spec written exactly as the -cluster flag would be.
	hostOf := map[string]*proc{
		"p00": procA, "p01": procA,
		"p02": procB, "s00": procB,
		"c00": procC,
	}
	specStr := ""
	for id, p := range hostOf {
		if specStr != "" {
			specStr += ","
		}
		specStr += fmt.Sprintf("%s=%s", id, p.tr.Addr())
	}
	spec, err := Parse(specStr, "p00,p01,p02", "c00")
	if err != nil {
		t.Fatal(err)
	}

	// Every process maps all non-local peers.
	for idStr, p := range hostOf {
		id := node.ID(idStr)
		for otherStr, other := range hostOf {
			if other != p {
				p.tr.AddPeer(node.ID(otherStr), other.tr.Addr())
			}
		}
		_ = id
	}

	const lazy = 500 * time.Millisecond
	for _, idStr := range []string{"p00", "p01", "p02", "s00"} {
		id := node.ID(idStr)
		gw, err := spec.NewReplica(id, lazy, apps.NewKVStore(), Observability{})
		if err != nil {
			t.Fatal(err)
		}
		hostOf[idStr].rt.Register(id, gw)
	}

	qspec := qos.Spec{Staleness: 0, Deadline: time.Second, MinProb: 0.5}
	cgw, err := spec.NewClient("c00", qspec, qos.NewMethods("Get", "Version"), lazy, Observability{})
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Value
	procC.rt.Register("c00", &drivenClient{gw: cgw, run: func(ctx node.Context) {
		ctx.SetTimer(50*time.Millisecond, func() {
			cgw.Invoke("Set", []byte("k=over-tcp"), func(client.Result) {
				cgw.Invoke("Get", []byte("k"), func(r client.Result) {
					got.Store(r)
				})
			})
		})
	}})

	procA.rt.Start()
	procB.rt.Start()
	procC.rt.Start()
	defer procA.rt.Stop()
	defer procB.rt.Stop()
	defer procC.rt.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && got.Load() == nil {
		time.Sleep(5 * time.Millisecond)
	}
	r, ok := got.Load().(client.Result)
	if !ok {
		t.Fatal("read never completed over TCP")
	}
	if r.Err != "" || string(r.Payload) != "over-tcp" {
		t.Fatalf("read = %+v", r)
	}
}

// drivenClient mirrors the cmd binaries' pattern of running the workload in
// the gateway's node context.
type drivenClient struct {
	gw  *client.Gateway
	run func(node.Context)
}

func (d *drivenClient) Init(ctx node.Context) {
	d.gw.Init(ctx)
	d.run(ctx)
}

func (d *drivenClient) Recv(from node.ID, m node.Message) { d.gw.Recv(from, m) }
