// Package qos implements the paper's QoS model (Section 2): consistency as
// the two-dimensional attribute <ordering guarantee, staleness threshold>,
// timeliness as the pair <response time, probability of meeting it>, the
// read-only method registry that lets the middleware distinguish reads from
// updates, and the timing-failure detector of Section 5.4.
package qos

import (
	"errors"
	"fmt"
	"time"
)

// Ordering is the service-specific ordering guarantee.
type Ordering int

// Ordering guarantees the framework's handlers implement. The paper targets
// sequential ordering; the FIFO handler exists as the "service B" example.
const (
	Sequential Ordering = iota + 1
	FIFO
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Sequential:
		return "sequential"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Spec is a client's QoS specification for its read-only requests: "a copy
// ... that is not more than Staleness versions old within Deadline with a
// probability of at least MinProb".
type Spec struct {
	// Staleness is the maximum number of committed-but-unseen updates the
	// client tolerates in a response (threshold a, in versions).
	Staleness int
	// Deadline is the response-time constraint d.
	Deadline time.Duration
	// MinProb is Pc(d), the minimum probability of meeting Deadline.
	MinProb float64
}

// Validate reports whether the specification is well-formed.
func (s Spec) Validate() error {
	switch {
	case s.Staleness < 0:
		return errors.New("qos: staleness threshold must be >= 0")
	case s.Deadline <= 0:
		return errors.New("qos: deadline must be positive")
	case s.MinProb < 0 || s.MinProb > 1:
		return errors.New("qos: probability must be in [0,1]")
	default:
		return nil
	}
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("<=%d versions stale within %v with P>=%.2f",
		s.Staleness, s.Deadline, s.MinProb)
}

// Methods is the read-only method registry. Per the request model, "a
// client application has to explicitly specify all the read-only methods it
// invokes on an object by their names. If an operation is not specified as
// read-only, then our middleware considers it to be an update operation."
type Methods struct {
	readOnly map[string]bool
}

// NewMethods registers the given method names as read-only.
func NewMethods(readOnly ...string) *Methods {
	m := &Methods{readOnly: make(map[string]bool, len(readOnly))}
	for _, name := range readOnly {
		m.readOnly[name] = true
	}
	return m
}

// IsReadOnly reports whether method was declared read-only.
func (m *Methods) IsReadOnly(method string) bool {
	return m != nil && m.readOnly[method]
}

// FailureDetector is the client-side timing-failure detector: it counts
// requests and deadline misses and issues a callback when the observed
// frequency of timely responses drops below the client's requested minimum
// probability.
type FailureDetector struct {
	spec     Spec
	onBreach func(observedFailureRate float64)
	total    int
	failures int
	breached bool
}

// NewFailureDetector creates a detector for spec. onBreach may be nil.
func NewFailureDetector(spec Spec, onBreach func(observedFailureRate float64)) *FailureDetector {
	return &FailureDetector{spec: spec, onBreach: onBreach}
}

// Record notes the outcome of one read request. It returns true if this
// outcome was a timing failure.
func (f *FailureDetector) Record(responseTime time.Duration) bool {
	f.total++
	miss := responseTime > f.spec.Deadline
	if miss {
		f.failures++
	}
	if f.onBreach != nil && !f.breached {
		if rate := f.FailureRate(); rate > 1-f.spec.MinProb {
			f.breached = true
			f.onBreach(rate)
		}
	}
	return miss
}

// Total returns the number of recorded requests.
func (f *FailureDetector) Total() int { return f.total }

// Failures returns the number of recorded timing failures.
func (f *FailureDetector) Failures() int { return f.failures }

// FailureRate returns the observed timing-failure frequency (0 before any
// request is recorded).
func (f *FailureDetector) FailureRate() float64 {
	if f.total == 0 {
		return 0
	}
	return float64(f.failures) / float64(f.total)
}
