package qos

import (
	"strings"
	"testing"
	"time"
)

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    Spec
		wantErr bool
	}{
		{"valid", Spec{Staleness: 2, Deadline: 200 * time.Millisecond, MinProb: 0.9}, false},
		{"zero staleness ok", Spec{Staleness: 0, Deadline: time.Second, MinProb: 0.5}, false},
		{"negative staleness", Spec{Staleness: -1, Deadline: time.Second, MinProb: 0.5}, true},
		{"zero deadline", Spec{Staleness: 1, Deadline: 0, MinProb: 0.5}, true},
		{"prob too high", Spec{Staleness: 1, Deadline: time.Second, MinProb: 1.5}, true},
		{"prob negative", Spec{Staleness: 1, Deadline: time.Second, MinProb: -0.1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Staleness: 5, Deadline: 2 * time.Second, MinProb: 0.7}
	got := s.String()
	if !strings.Contains(got, "5") || !strings.Contains(got, "2s") || !strings.Contains(got, "0.70") {
		t.Fatalf("String() = %q", got)
	}
}

func TestOrderingString(t *testing.T) {
	if Sequential.String() != "sequential" || FIFO.String() != "fifo" {
		t.Fatal("ordering names wrong")
	}
	if got := Ordering(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown ordering = %q", got)
	}
}

func TestMethodsRegistry(t *testing.T) {
	m := NewMethods("Read", "Get")
	if !m.IsReadOnly("Read") || !m.IsReadOnly("Get") {
		t.Fatal("registered methods not read-only")
	}
	if m.IsReadOnly("Write") {
		t.Fatal("unregistered method treated as read-only")
	}
	var nilM *Methods
	if nilM.IsReadOnly("Read") {
		t.Fatal("nil registry must treat everything as update")
	}
}

func TestFailureDetectorCountsAndRate(t *testing.T) {
	spec := Spec{Staleness: 1, Deadline: 100 * time.Millisecond, MinProb: 0.5}
	f := NewFailureDetector(spec, nil)
	if f.FailureRate() != 0 {
		t.Fatal("rate before any record should be 0")
	}
	if miss := f.Record(50 * time.Millisecond); miss {
		t.Fatal("on-time response flagged as miss")
	}
	if miss := f.Record(150 * time.Millisecond); !miss {
		t.Fatal("late response not flagged")
	}
	if f.Total() != 2 || f.Failures() != 1 || f.FailureRate() != 0.5 {
		t.Fatalf("counters = %d/%d rate %v", f.Failures(), f.Total(), f.FailureRate())
	}
}

func TestFailureDetectorExactDeadlineIsOnTime(t *testing.T) {
	f := NewFailureDetector(Spec{Deadline: 100 * time.Millisecond, MinProb: 0.9}, nil)
	if f.Record(100 * time.Millisecond) {
		t.Fatal("response exactly at deadline must not be a timing failure")
	}
}

func TestFailureDetectorBreachCallback(t *testing.T) {
	var breaches []float64
	spec := Spec{Deadline: 100 * time.Millisecond, MinProb: 0.8}
	f := NewFailureDetector(spec, func(rate float64) { breaches = append(breaches, rate) })

	// Three on-time, then misses until the observed failure rate exceeds
	// 1 - 0.8 = 0.2.
	for i := 0; i < 3; i++ {
		f.Record(10 * time.Millisecond)
	}
	f.Record(200 * time.Millisecond) // 1/4 = 0.25 > 0.2 → breach
	if len(breaches) != 1 {
		t.Fatalf("breach callbacks = %d, want 1", len(breaches))
	}
	if breaches[0] != 0.25 {
		t.Fatalf("breach rate = %v, want 0.25", breaches[0])
	}
	// Further misses do not re-fire the callback.
	f.Record(200 * time.Millisecond)
	if len(breaches) != 1 {
		t.Fatal("breach callback fired twice")
	}
}

func TestFailureDetectorNoBreachWhenWithinSpec(t *testing.T) {
	fired := false
	spec := Spec{Deadline: 100 * time.Millisecond, MinProb: 0.5}
	f := NewFailureDetector(spec, func(float64) { fired = true })
	for i := 0; i < 10; i++ {
		f.Record(10 * time.Millisecond)
	}
	f.Record(500 * time.Millisecond) // 1/11 < 0.5
	if fired {
		t.Fatal("breach callback fired within spec")
	}
}
