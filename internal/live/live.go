// Package live is the real-time runtime: every node gets a mailbox
// goroutine that serializes its message and timer callbacks, exactly
// matching the execution model protocol code sees under the simulator —
// the same gateways run unchanged on either. Delivery is in-process by
// default; a RemoteSender hook (implemented by tcpnet) routes messages for
// node IDs not registered locally.
package live

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"

	"aqua/internal/node"
)

// RemoteSender forwards messages to nodes hosted in other processes. It
// must not block indefinitely.
type RemoteSender func(from, to node.ID, m node.Message)

// Runtime hosts nodes on goroutines with real timers.
type Runtime struct {
	mu      sync.Mutex
	nodes   map[node.ID]*liveNode
	seed    int64
	logW    io.Writer
	logMu   sync.Mutex
	remote  RemoteSender
	started bool
	stopped bool
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithSeed seeds per-node random sources (default 1).
func WithSeed(seed int64) Option {
	return func(r *Runtime) { r.seed = seed }
}

// WithLog directs node Logf output to w.
func WithLog(w io.Writer) Option {
	return func(r *Runtime) { r.logW = w }
}

// WithRemote installs the forwarding hook for unknown destinations.
func WithRemote(rs RemoteSender) Option {
	return func(r *Runtime) { r.remote = rs }
}

// NewRuntime creates an empty live runtime.
func NewRuntime(opts ...Option) *Runtime {
	r := &Runtime{nodes: make(map[node.ID]*liveNode), seed: 1}
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetRemote installs (or replaces) the forwarding hook after construction;
// it breaks the construction cycle between a runtime and the transport that
// needs to inject into it.
func (r *Runtime) SetRemote(rs RemoteSender) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.remote = rs
}

// Register adds a node. It panics on duplicates and after Start, mirroring
// the simulator's contract.
func (r *Runtime) Register(id node.ID, n node.Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic(fmt.Sprintf("live: Register(%q) after Start", id))
	}
	if _, dup := r.nodes[id]; dup {
		panic(fmt.Sprintf("live: duplicate node %q", id))
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", r.seed, id)
	r.nodes[id] = newLiveNode(r, id, n, rand.New(rand.NewSource(int64(h.Sum64()))))
}

// Start initializes every node (in its own goroutine context) and begins
// delivery.
func (r *Runtime) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	nodes := make([]*liveNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()

	for _, n := range nodes {
		n.start()
	}
}

// Stop shuts every node down and waits for their goroutines to exit.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	nodes := make([]*liveNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()

	for _, n := range nodes {
		n.stop()
	}
}

// StopNode terminates one node's mailbox goroutine, modelling a crash: it
// stops receiving, its timers stop firing, and messages addressed to it are
// dropped. Unlike the simulator there is no restart; a replacement process
// would register with a fresh runtime and connect over the transport.
func (r *Runtime) StopNode(id node.ID) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if ok {
		delete(r.nodes, id)
	}
	r.mu.Unlock()
	if ok {
		n.stop()
	}
}

// Inject delivers a message that arrived from a remote transport to a
// locally hosted node. Unknown destinations are dropped (the peer may have
// stopped).
func (r *Runtime) Inject(from, to node.ID, m node.Message) {
	r.mu.Lock()
	dst := r.nodes[to]
	r.mu.Unlock()
	if dst != nil {
		dst.enqueue(envelope{from: from, msg: m})
	}
}

// Local reports whether id is hosted by this runtime.
func (r *Runtime) Local(id node.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.nodes[id]
	return ok
}

func (r *Runtime) route(from, to node.ID, m node.Message) {
	r.mu.Lock()
	dst := r.nodes[to]
	remote := r.remote
	r.mu.Unlock()
	if dst != nil {
		dst.enqueue(envelope{from: from, msg: m})
		return
	}
	if remote != nil {
		remote(from, to, m)
		return
	}
	r.logf("live: dropped message %T from %s to unknown node %s", m, from, to)
}

func (r *Runtime) logf(format string, args ...interface{}) {
	if r.logW == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.logW, format+"\n", args...)
}

// envelope is one mailbox entry: either a message or a timer callback.
type envelope struct {
	from  node.ID
	msg   node.Message
	timer func()
}

// liveNode owns one node's mailbox goroutine.
type liveNode struct {
	rt   *Runtime
	id   node.ID
	n    node.Node
	rand *rand.Rand

	mu      sync.Mutex
	queue   []envelope
	ready   chan struct{} // capacity 1: wakeup signal
	stopped bool
	done    chan struct{}
}

var _ node.Context = (*liveNode)(nil)

func newLiveNode(rt *Runtime, id node.ID, n node.Node, rng *rand.Rand) *liveNode {
	return &liveNode{
		rt:    rt,
		id:    id,
		n:     n,
		rand:  rng,
		ready: make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

func (l *liveNode) start() {
	go l.run()
}

func (l *liveNode) run() {
	defer close(l.done)
	l.n.Init(l)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.stopped {
			l.mu.Unlock()
			<-l.ready
			l.mu.Lock()
		}
		if l.stopped {
			l.mu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.mu.Unlock()

		for _, env := range batch {
			if env.timer != nil {
				env.timer()
				continue
			}
			l.n.Recv(env.from, env.msg)
		}
	}
}

// enqueue appends to the unbounded mailbox; unbounded so that two nodes
// flooding each other can never deadlock.
func (l *liveNode) enqueue(env envelope) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.queue = append(l.queue, env)
	l.mu.Unlock()
	select {
	case l.ready <- struct{}{}:
	default:
	}
}

func (l *liveNode) stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
	select {
	case l.ready <- struct{}{}:
	default:
	}
	<-l.done
}

// ID implements node.Context.
func (l *liveNode) ID() node.ID { return l.id }

// Now implements node.Context.
func (l *liveNode) Now() time.Time { return time.Now() }

// Rand implements node.Context. It is only touched from the node's own
// goroutine.
func (l *liveNode) Rand() *rand.Rand { return l.rand }

// Send implements node.Context.
func (l *liveNode) Send(to node.ID, m node.Message) {
	l.rt.route(l.id, to, m)
}

// SetTimer implements node.Context: f runs in this node's mailbox, never
// concurrently with Recv.
func (l *liveNode) SetTimer(d time.Duration, f func()) node.CancelFunc {
	var canceled sync.Once
	stop := make(chan struct{})
	timer := time.AfterFunc(d, func() {
		select {
		case <-stop:
			return
		default:
		}
		l.enqueue(envelope{timer: func() {
			select {
			case <-stop:
			default:
				f()
			}
		}})
	})
	return func() {
		canceled.Do(func() {
			close(stop)
			timer.Stop()
		})
	}
}

// Post implements node.Context: SetTimer without the cancel machinery.
func (l *liveNode) Post(d time.Duration, f func()) {
	time.AfterFunc(d, func() {
		l.enqueue(envelope{timer: f})
	})
}

// Logf implements node.Context.
func (l *liveNode) Logf(format string, args ...interface{}) {
	l.rt.logf("%-14s "+format, append([]interface{}{l.id}, args...)...)
}
