// Package live is the real-time runtime: every node gets a mailbox
// goroutine that serializes its message and timer callbacks, exactly
// matching the execution model protocol code sees under the simulator —
// the same gateways run unchanged on either. Delivery is in-process by
// default; a RemoteSender hook (implemented by tcpnet) routes messages for
// node IDs not registered locally.
//
// The hot path is built for sustained socket traffic: sends resolve the
// destination through a copy-on-write map (no global lock per message),
// each mailbox is a chunked ring drained in batches with one consumer
// wakeup per empty→non-empty transition, and SetTimer is a small CAS state
// machine that releases its runtime timer promptly on cancel. The
// WithLegacyHotPath option restores the original mutex+slice mailbox and
// channel-based timers so benchmarks can measure both in one run.
package live

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aqua/internal/node"
)

// RemoteSender forwards messages to nodes hosted in other processes. It
// must not block indefinitely.
type RemoteSender func(from, to node.ID, m node.Message)

// Runtime hosts nodes on goroutines with real timers.
type Runtime struct {
	mu      sync.Mutex
	nodes   map[node.ID]*liveNode
	nodesCW atomic.Value // map[node.ID]*liveNode, copy-on-write snapshot
	seed    int64
	logW    io.Writer
	logMu   sync.Mutex
	remote  atomic.Value // remoteBox
	started bool
	stopped bool
	legacy  bool
	timers  atomic.Int64 // armed cancellable timers (SetTimer, non-legacy)
}

// remoteBox wraps RemoteSender so atomic.Value never sees inconsistently
// typed (or nil-interface) stores.
type remoteBox struct{ fn RemoteSender }

// Option configures a Runtime.
type Option func(*Runtime)

// WithSeed seeds per-node random sources (default 1).
func WithSeed(seed int64) Option {
	return func(r *Runtime) { r.seed = seed }
}

// WithLog directs node Logf output to w.
func WithLog(w io.Writer) Option {
	return func(r *Runtime) { r.logW = w }
}

// WithRemote installs the forwarding hook for unknown destinations.
func WithRemote(rs RemoteSender) Option {
	return func(r *Runtime) { r.remote.Store(remoteBox{fn: rs}) }
}

// WithLegacyHotPath restores the pre-optimization mailbox (mutex+slice,
// one wakeup per enqueue) and SetTimer (sync.Once + stop channel per
// timer). It exists so the livemax benchmark can measure the old and new
// hot paths in the same run; nothing else should use it.
func WithLegacyHotPath() Option {
	return func(r *Runtime) { r.legacy = true }
}

// NewRuntime creates an empty live runtime.
func NewRuntime(opts ...Option) *Runtime {
	r := &Runtime{nodes: make(map[node.ID]*liveNode), seed: 1}
	r.remote.Store(remoteBox{})
	r.nodesCW.Store(map[node.ID]*liveNode{})
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetRemote installs (or replaces) the forwarding hook after construction;
// it breaks the construction cycle between a runtime and the transport that
// needs to inject into it.
func (r *Runtime) SetRemote(rs RemoteSender) {
	r.remote.Store(remoteBox{fn: rs})
}

// Register adds a node. It panics on duplicates and after Start, mirroring
// the simulator's contract.
func (r *Runtime) Register(id node.ID, n node.Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		panic(fmt.Sprintf("live: Register(%q) after Start", id))
	}
	if _, dup := r.nodes[id]; dup {
		panic(fmt.Sprintf("live: duplicate node %q", id))
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", r.seed, id)
	r.nodes[id] = newLiveNode(r, id, n, rand.New(rand.NewSource(int64(h.Sum64()))))
	r.publishNodesLocked()
}

// publishNodesLocked refreshes the copy-on-write snapshot; r.mu must be
// held. Registration and StopNode are rare, so copying the map there buys
// lock-free lookups on every send and inject.
func (r *Runtime) publishNodesLocked() {
	snap := make(map[node.ID]*liveNode, len(r.nodes))
	for id, n := range r.nodes {
		snap[id] = n
	}
	r.nodesCW.Store(snap)
}

// lookup resolves a destination without taking the runtime lock.
func (r *Runtime) lookup(to node.ID) *liveNode {
	m, _ := r.nodesCW.Load().(map[node.ID]*liveNode)
	return m[to]
}

// Start initializes every node (in its own goroutine context) and begins
// delivery.
func (r *Runtime) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	nodes := make([]*liveNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()

	for _, n := range nodes {
		n.start()
	}
}

// Stop shuts every node down and waits for their goroutines to exit.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	nodes := make([]*liveNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()

	for _, n := range nodes {
		n.stop()
	}
}

// StopNode terminates one node's mailbox goroutine, modelling a crash: it
// stops receiving, its timers stop firing, and messages addressed to it are
// dropped. Unlike the simulator there is no restart; a replacement process
// would register with a fresh runtime and connect over the transport.
func (r *Runtime) StopNode(id node.ID) {
	r.mu.Lock()
	n, ok := r.nodes[id]
	if ok {
		delete(r.nodes, id)
		r.publishNodesLocked()
	}
	r.mu.Unlock()
	if ok {
		n.stop()
	}
}

// Inject delivers a message that arrived from a remote transport to a
// locally hosted node. Unknown destinations are dropped (the peer may have
// stopped).
func (r *Runtime) Inject(from, to node.ID, m node.Message) {
	if dst := r.lookup(to); dst != nil {
		dst.enqueue(envelope{from: from, msg: m})
	}
}

// Local reports whether id is hosted by this runtime.
func (r *Runtime) Local(id node.ID) bool {
	return r.lookup(id) != nil
}

// ActiveTimers reports the number of armed cancellable timers created by
// SetTimer that have neither fired nor been cancelled. It exists for leak
// regression tests; the count is not maintained under WithLegacyHotPath.
func (r *Runtime) ActiveTimers() int64 { return r.timers.Load() }

func (r *Runtime) route(from, to node.ID, m node.Message) {
	if dst := r.lookup(to); dst != nil {
		dst.enqueue(envelope{from: from, msg: m})
		return
	}
	if box, _ := r.remote.Load().(remoteBox); box.fn != nil {
		box.fn(from, to, m)
		return
	}
	r.logf("live: dropped message %T from %s to unknown node %s", m, from, to)
}

func (r *Runtime) logf(format string, args ...interface{}) {
	if r.logW == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.logW, format+"\n", args...)
}

// envelope is one mailbox entry: a message, a fire-and-forget callback
// (Post, legacy timers), or a cancellable timer.
type envelope struct {
	from  node.ID
	msg   node.Message
	timer func()
	t     *liveTimer
}

// liveNode owns one node's mailbox goroutine.
type liveNode struct {
	rt   *Runtime
	id   node.ID
	n    node.Node
	rand *rand.Rand

	mb   *mailbox // nil under the legacy hot path
	done chan struct{}

	// Legacy (pre-optimization) mailbox, kept verbatim so livemax can
	// benchmark against it in the same run.
	legacy    bool
	legacyMu  sync.Mutex
	legacyQ   []envelope
	ready     chan struct{} // capacity 1: per-enqueue wakeup signal
	legacyOff bool          // legacy stopped flag
}

var _ node.Context = (*liveNode)(nil)

func newLiveNode(rt *Runtime, id node.ID, n node.Node, rng *rand.Rand) *liveNode {
	l := &liveNode{
		rt:   rt,
		id:   id,
		n:    n,
		rand: rng,
		done: make(chan struct{}),
	}
	if rt.legacy {
		l.legacy = true
		l.ready = make(chan struct{}, 1)
	} else {
		l.mb = newMailbox()
	}
	return l
}

func (l *liveNode) start() {
	go l.run()
}

func (l *liveNode) run() {
	defer close(l.done)
	l.n.Init(l)
	if l.legacy {
		l.runLegacy()
		return
	}
	var spare *mchunk
	for {
		chain, ok := l.mb.take(spare)
		spare = nil
		if !ok {
			dropChain(chain)
			return
		}
		for c := chain; c != nil; {
			for i := c.r; i < c.w; i++ {
				env := &c.envs[i]
				switch {
				case env.t != nil:
					env.t.fire()
				case env.timer != nil:
					env.timer()
				default:
					l.n.Recv(env.from, env.msg)
				}
			}
			next := c.next
			*c = mchunk{} // clear message references and cursors for reuse
			c.next = spare
			spare = c
			c = next
		}
	}
}

// dropChain releases timer accounting for envelopes that will never run
// because their node stopped with them still queued.
func dropChain(chain *mchunk) {
	for c := chain; c != nil; c = c.next {
		for i := c.r; i < c.w; i++ {
			if t := c.envs[i].t; t != nil {
				t.drop()
			}
		}
	}
}

func (l *liveNode) runLegacy() {
	for {
		l.legacyMu.Lock()
		for len(l.legacyQ) == 0 && !l.legacyOff {
			l.legacyMu.Unlock()
			<-l.ready
			l.legacyMu.Lock()
		}
		if l.legacyOff {
			l.legacyMu.Unlock()
			return
		}
		batch := l.legacyQ
		l.legacyQ = nil
		l.legacyMu.Unlock()

		for _, env := range batch {
			if env.timer != nil {
				env.timer()
				continue
			}
			l.n.Recv(env.from, env.msg)
		}
	}
}

// enqueue appends to the unbounded mailbox; unbounded so that two nodes
// flooding each other can never deadlock.
func (l *liveNode) enqueue(env envelope) {
	if l.legacy {
		l.legacyMu.Lock()
		if l.legacyOff {
			l.legacyMu.Unlock()
			return
		}
		l.legacyQ = append(l.legacyQ, env)
		l.legacyMu.Unlock()
		select {
		case l.ready <- struct{}{}:
		default:
		}
		return
	}
	if !l.mb.put(env) && env.t != nil {
		env.t.drop()
	}
}

// enqueueBatch delivers a batch of message envelopes under one lock with at
// most one wakeup (see Batcher).
func (l *liveNode) enqueueBatch(envs []envelope) {
	if l.legacy {
		for i := range envs {
			l.enqueue(envs[i])
		}
		return
	}
	l.mb.putBatch(envs)
}

func (l *liveNode) stop() {
	if l.legacy {
		l.legacyMu.Lock()
		l.legacyOff = true
		l.legacyMu.Unlock()
		select {
		case l.ready <- struct{}{}:
		default:
		}
		<-l.done
		return
	}
	l.mb.stop()
	<-l.done
}

// ID implements node.Context.
func (l *liveNode) ID() node.ID { return l.id }

// Now implements node.Context.
func (l *liveNode) Now() time.Time { return time.Now() }

// Rand implements node.Context. It is only touched from the node's own
// goroutine.
func (l *liveNode) Rand() *rand.Rand { return l.rand }

// Send implements node.Context.
func (l *liveNode) Send(to node.ID, m node.Message) {
	l.rt.route(l.id, to, m)
}

// liveTimer is a cancellable timer as a tiny CAS state machine:
//
//	0 armed    — AfterFunc pending in the Go runtime
//	1 queued   — fired, envelope sitting in the mailbox
//	2 done     — executed, cancelled, or dropped
//
// Exactly one transition into state 2 happens, and every path into it
// releases the runtime's ActiveTimers count once. Cancel stops the
// underlying time.Timer immediately, so cancelled timers release their Go
// runtime slot promptly instead of holding it (plus a stop channel and two
// closures) until expiry like the old implementation.
type liveTimer struct {
	l     *liveNode
	f     func()
	t     *time.Timer
	state atomic.Uint32
}

const (
	timerArmed uint32 = iota
	timerQueued
	timerDone
)

// fire runs on the mailbox goroutine.
func (t *liveTimer) fire() {
	if t.state.CompareAndSwap(timerQueued, timerDone) {
		t.l.rt.timers.Add(-1)
		t.f()
	}
}

// drop releases accounting for a queued timer whose node stopped.
func (t *liveTimer) drop() {
	if t.state.CompareAndSwap(timerQueued, timerDone) {
		t.l.rt.timers.Add(-1)
	}
}

// cancel is the returned CancelFunc. The node.Context contract says it is
// only invoked from the node's own callbacks, but it is written to be safe
// from any goroutine.
func (t *liveTimer) cancel() {
	for {
		s := t.state.Load()
		if s == timerDone {
			return
		}
		if t.state.CompareAndSwap(s, timerDone) {
			t.t.Stop()
			t.l.rt.timers.Add(-1)
			return
		}
	}
}

// SetTimer implements node.Context: f runs in this node's mailbox, never
// concurrently with Recv.
func (l *liveNode) SetTimer(d time.Duration, f func()) node.CancelFunc {
	if l.legacy {
		return l.setTimerLegacy(d, f)
	}
	t := &liveTimer{l: l, f: f}
	l.rt.timers.Add(1)
	t.t = time.AfterFunc(d, func() {
		if !t.state.CompareAndSwap(timerArmed, timerQueued) {
			return // cancelled while armed
		}
		if !l.mb.put(envelope{t: t}) {
			t.drop() // node stopped; release accounting
		}
	})
	return t.cancel
}

// setTimerLegacy is the pre-optimization SetTimer: a sync.Once, a stop
// channel, and two closures per timer, with cancelled timers holding their
// time.AfterFunc slot until expiry. Kept for same-run baselines.
func (l *liveNode) setTimerLegacy(d time.Duration, f func()) node.CancelFunc {
	var canceled sync.Once
	stop := make(chan struct{})
	timer := time.AfterFunc(d, func() {
		select {
		case <-stop:
			return
		default:
		}
		l.enqueue(envelope{timer: func() {
			select {
			case <-stop:
			default:
				f()
			}
		}})
	})
	return func() {
		canceled.Do(func() {
			close(stop)
			timer.Stop()
		})
	}
}

// Post implements node.Context: SetTimer without the cancel machinery.
func (l *liveNode) Post(d time.Duration, f func()) {
	time.AfterFunc(d, func() {
		l.enqueue(envelope{timer: f})
	})
}

// Logf implements node.Context.
func (l *liveNode) Logf(format string, args ...interface{}) {
	l.rt.logf("%-14s "+format, append([]interface{}{l.id}, args...)...)
}
