package live

import (
	"sync"

	"aqua/internal/node"
)

// chunkSize is the number of envelopes per mailbox chunk. 256 keeps a chunk
// around 16KB — big enough that a saturated node amortizes the mailbox lock
// and the consumer wakeup over hundreds of messages, small enough that idle
// nodes pin almost nothing.
const chunkSize = 256

// mchunk is one fixed-size segment of a mailbox. Chunks form a singly
// linked list; the consumer detaches the whole list per drain and recycles
// emptied chunks through the mailbox free list, so a steady-state node
// allocates no mailbox memory at all.
type mchunk struct {
	envs [chunkSize]envelope
	r, w int // read/write cursors into envs
	next *mchunk
}

// mailbox is the low-contention batched-drain queue behind each live node.
// Producers append under one short lock; the consumer detaches the entire
// chunk chain in one critical section and is woken at most once per
// empty→non-empty transition (the sleeping flag), not once per message like
// the old capacity-1 ready channel. It is unbounded so that two nodes
// flooding each other can never deadlock, exactly like the old slice queue.
type mailbox struct {
	mu       sync.Mutex
	head     *mchunk
	tail     *mchunk
	free     *mchunk // recycled, zeroed chunks
	sleeping bool    // consumer parked on wake
	stopped  bool
	wake     chan struct{} // capacity 1; one token per sleep cycle
}

func newMailbox() *mailbox {
	return &mailbox{wake: make(chan struct{}, 1)}
}

// appendLocked adds one envelope; m.mu must be held.
func (m *mailbox) appendLocked(env envelope) {
	t := m.tail
	if t == nil || t.w == chunkSize {
		c := m.free
		if c != nil {
			m.free = c.next
			c.next = nil
		} else {
			c = new(mchunk)
		}
		if t == nil {
			m.head = c
		} else {
			t.next = c
		}
		m.tail = c
		t = c
	}
	t.envs[t.w] = env
	t.w++
}

// put enqueues one envelope. It reports false if the mailbox is stopped (the
// envelope was dropped). The wakeup send happens outside the lock: only the
// producer that observed sleeping==true sends, so at most one token is ever
// in flight and the send can never block.
func (m *mailbox) put(env envelope) bool {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return false
	}
	m.appendLocked(env)
	wake := m.sleeping
	m.sleeping = false
	m.mu.Unlock()
	if wake {
		m.wake <- struct{}{}
	}
	return true
}

// putBatch enqueues a batch under a single lock acquisition with a single
// wakeup decision. It reports false if the mailbox is stopped.
func (m *mailbox) putBatch(envs []envelope) bool {
	if len(envs) == 0 {
		return true
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return false
	}
	for i := range envs {
		m.appendLocked(envs[i])
	}
	wake := m.sleeping
	m.sleeping = false
	m.mu.Unlock()
	if wake {
		m.wake <- struct{}{}
	}
	return true
}

// take detaches the whole pending chain, blocking until there is work or the
// mailbox stops. spare chunks (already zeroed by the consumer) are returned
// to the free list while the lock is held anyway. On stop it returns the
// undelivered chain with ok=false so the caller can release timer accounting.
func (m *mailbox) take(spare *mchunk) (chain *mchunk, ok bool) {
	m.mu.Lock()
	if spare != nil {
		m.spliceFreeLocked(spare)
	}
	for {
		if m.stopped {
			chain = m.head
			m.head, m.tail = nil, nil
			m.mu.Unlock()
			return chain, false
		}
		if m.head != nil {
			chain = m.head
			m.head, m.tail = nil, nil
			m.mu.Unlock()
			return chain, true
		}
		m.sleeping = true
		m.mu.Unlock()
		<-m.wake
		m.mu.Lock()
	}
}

func (m *mailbox) spliceFreeLocked(spare *mchunk) {
	tail := spare
	for tail.next != nil {
		tail = tail.next
	}
	tail.next = m.free
	m.free = spare
}

// stop marks the mailbox stopped and wakes the consumer if it is parked.
func (m *mailbox) stop() {
	m.mu.Lock()
	m.stopped = true
	wake := m.sleeping
	m.sleeping = false
	m.mu.Unlock()
	if wake {
		m.wake <- struct{}{}
	}
}

// Batcher groups messages by destination node so a transport read cycle
// that decoded many frames pays one mailbox lock and at most one consumer
// wakeup per destination instead of one per frame. It is not safe for
// concurrent use; each transport connection owns its own Batcher.
type Batcher struct {
	rt    *Runtime
	dests []destBatch
}

type destBatch struct {
	to   node.ID
	node *liveNode
	envs []envelope
}

// NewBatcher creates a Batcher that injects into rt.
func NewBatcher(rt *Runtime) *Batcher {
	return &Batcher{rt: rt}
}

// Add buffers one inbound message. Messages for unknown destinations are
// dropped, matching Inject.
func (b *Batcher) Add(from, to node.ID, m node.Message) {
	for i := range b.dests {
		if b.dests[i].to == to {
			b.dests[i].envs = append(b.dests[i].envs, envelope{from: from, msg: m})
			return
		}
	}
	d := destBatch{to: to, node: b.rt.lookup(to)}
	d.envs = append(d.envs, envelope{from: from, msg: m})
	b.dests = append(b.dests, d)
}

// Flush delivers every buffered batch. Destination slices are retained (and
// their message references cleared) for reuse by the next read cycle.
func (b *Batcher) Flush() {
	for i := range b.dests {
		d := &b.dests[i]
		if len(d.envs) > 0 {
			if d.node == nil {
				// The node may have been registered under a different
				// runtime snapshot when first seen; retry once so
				// long-lived Batchers don't blackhole a destination
				// forever on a pre-Start race.
				d.node = b.rt.lookup(d.to)
			}
			if d.node != nil {
				d.node.enqueueBatch(d.envs)
			}
			for j := range d.envs {
				d.envs[j] = envelope{}
			}
			d.envs = d.envs[:0]
		}
	}
}
