package live

import (
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/node"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout waiting for: " + msg)
}

func TestLiveDeliversMessages(t *testing.T) {
	rt := NewRuntime()
	var got atomic.Int64
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			for i := 0; i < 10; i++ {
				ctx.Send("b", i)
			}
		},
	})
	var order []int
	rt.Register("b", &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			order = append(order, m.(int)) // single mailbox goroutine: safe
			got.Add(1)
		},
	})
	rt.Start()
	defer rt.Stop()
	waitFor(t, func() bool { return got.Load() == 10 }, "10 deliveries")
	for i, v := range order {
		if v != i {
			t.Fatalf("in-process delivery reordered: %v", order)
		}
	}
}

func TestLiveTimerRunsInNodeContext(t *testing.T) {
	rt := NewRuntime()
	var fired atomic.Bool
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			ctx.SetTimer(10*time.Millisecond, func() { fired.Store(true) })
		},
	})
	rt.Start()
	defer rt.Stop()
	waitFor(t, fired.Load, "timer")
}

func TestLiveTimerCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: real-time sleep to prove the timer stayed quiet")
	}
	rt := NewRuntime()
	var fired atomic.Bool
	cancelCh := make(chan node.CancelFunc, 1)
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			cancelCh <- ctx.SetTimer(50*time.Millisecond, func() { fired.Store(true) })
		},
	})
	rt.Start()
	defer rt.Stop()
	cancel := <-cancelCh
	cancel()
	cancel() // idempotent
	time.Sleep(100 * time.Millisecond)
	if fired.Load() {
		t.Fatal("canceled timer fired")
	}
}

func TestLiveStopTerminatesNodes(t *testing.T) {
	rt := NewRuntime()
	var ticks atomic.Int64
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			var tick func()
			tick = func() {
				ticks.Add(1)
				ctx.SetTimer(5*time.Millisecond, tick)
			}
			ctx.SetTimer(5*time.Millisecond, tick)
		},
	})
	rt.Start()
	waitFor(t, func() bool { return ticks.Load() > 2 }, "a few ticks")
	rt.Stop()
	n := ticks.Load()
	time.Sleep(50 * time.Millisecond)
	// At most one in-flight tick may land after Stop returns' snapshot.
	if ticks.Load() > n+1 {
		t.Fatalf("ticks continued after Stop: %d -> %d", n, ticks.Load())
	}
	rt.Stop() // idempotent
}

func TestLiveRemoteHook(t *testing.T) {
	var remoteTo atomic.Value
	rt := NewRuntime(WithRemote(func(from, to node.ID, m node.Message) {
		remoteTo.Store(to)
	}))
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) { ctx.Send("far-away", "hello") },
	})
	rt.Start()
	defer rt.Stop()
	waitFor(t, func() bool { return remoteTo.Load() != nil }, "remote hook")
	if remoteTo.Load().(node.ID) != "far-away" {
		t.Fatalf("remote to = %v", remoteTo.Load())
	}
}

func TestLiveInject(t *testing.T) {
	rt := NewRuntime()
	var got atomic.Value
	rt.Register("a", &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			got.Store(string(from) + ":" + m.(string))
		},
	})
	rt.Start()
	defer rt.Stop()
	rt.Inject("remote-node", "a", "ping")
	rt.Inject("remote-node", "ghost", "dropped") // must not panic
	waitFor(t, func() bool { return got.Load() != nil }, "inject")
	if got.Load().(string) != "remote-node:ping" {
		t.Fatalf("got %v", got.Load())
	}
}

func TestLiveLocal(t *testing.T) {
	rt := NewRuntime()
	rt.Register("a", &node.FuncNode{})
	if !rt.Local("a") || rt.Local("b") {
		t.Fatal("Local() wrong")
	}
}

func TestLiveDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt := NewRuntime()
	rt.Register("a", &node.FuncNode{})
	rt.Register("a", &node.FuncNode{})
}

func TestLiveRegisterAfterStartPanics(t *testing.T) {
	rt := NewRuntime()
	rt.Register("a", &node.FuncNode{})
	rt.Start()
	defer rt.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt.Register("b", &node.FuncNode{})
}

func TestLiveNoCrossNodeConcurrency(t *testing.T) {
	// Hammer one node from three senders; its handler must never run
	// concurrently with itself.
	rt := NewRuntime()
	var inHandler atomic.Int32
	var violations atomic.Int32
	var received atomic.Int64
	rt.Register("sink", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) {
			if inHandler.Add(1) != 1 {
				violations.Add(1)
			}
			time.Sleep(10 * time.Microsecond)
			inHandler.Add(-1)
			received.Add(1)
		},
	})
	for _, id := range []node.ID{"s1", "s2", "s3"} {
		rt.Register(id, &node.FuncNode{
			OnInit: func(ctx node.Context) {
				for i := 0; i < 100; i++ {
					ctx.Send("sink", i)
				}
			},
		})
	}
	rt.Start()
	defer rt.Stop()
	waitFor(t, func() bool { return received.Load() == 300 }, "300 deliveries")
	if violations.Load() != 0 {
		t.Fatalf("handler ran concurrently %d times", violations.Load())
	}
}

func TestLiveStopNode(t *testing.T) {
	rt := NewRuntime()
	var got atomic.Int64
	rt.Register("a", &node.FuncNode{})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { got.Add(1) },
	})
	rt.Start()
	defer rt.Stop()

	rt.Inject("x", "b", "one")
	waitFor(t, func() bool { return got.Load() == 1 }, "pre-stop delivery")

	rt.StopNode("b")
	if rt.Local("b") {
		t.Fatal("stopped node still local")
	}
	rt.Inject("x", "b", "two") // dropped
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatal("message delivered to stopped node")
	}
	rt.StopNode("b") // idempotent
	rt.StopNode("ghost")
}
