package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/node"
)

// TestLiveTimerCancelReleasesPromptly is the SetTimer leak regression test:
// cancelling a timer must release the underlying time.AfterFunc immediately
// (observable through ActiveTimers), not hold it — plus a stop channel and
// closures — until the original deadline like the old implementation did.
func TestLiveTimerCancelReleasesPromptly(t *testing.T) {
	rt := NewRuntime()
	const churn = 1000
	done := make(chan struct{})
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			// Arm far-future timers and cancel them right away. With the
			// old implementation every one of these stayed armed in the Go
			// runtime (and kept its stop channel alive) for the full hour.
			for i := 0; i < churn; i++ {
				cancel := ctx.SetTimer(time.Hour, func() {
					t.Error("cancelled timer fired")
				})
				cancel()
				cancel() // idempotent
			}
			close(done)
		},
	})
	rt.Start()
	defer rt.Stop()
	<-done
	if n := rt.ActiveTimers(); n != 0 {
		t.Fatalf("after cancelling %d timers, ActiveTimers = %d, want 0", churn, n)
	}
}

// TestLiveTimerAccountingBalances pins that every SetTimer path — fire,
// cancel-before-fire, cancel-after-queue, and drop-on-node-stop — releases
// the ActiveTimers count exactly once.
func TestLiveTimerAccountingBalances(t *testing.T) {
	rt := NewRuntime()
	var fired atomic.Int64
	armed := make(chan struct{})
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			for i := 0; i < 100; i++ {
				ctx.SetTimer(time.Millisecond, func() { fired.Add(1) })
			}
			// These never fire: the node is stopped before the hour is up.
			for i := 0; i < 50; i++ {
				ctx.SetTimer(time.Hour, func() { t.Error("stale timer fired") })
			}
			close(armed)
		},
	})
	rt.Start()
	<-armed
	waitFor(t, func() bool { return fired.Load() == 100 }, "100 timer fires")
	rt.Stop()
	// Stopping the runtime does not cancel armed timers; their AfterFunc
	// will eventually fire into a stopped mailbox and drop. The short-lived
	// ones have all fired, so only the hour-long ones remain armed.
	if n := rt.ActiveTimers(); n != 50 {
		t.Fatalf("ActiveTimers after stop = %d, want 50 still armed", n)
	}
}

// TestLiveMailboxEnqueueVsStopRace hammers a node with concurrent senders
// racing StopNode, under -race in CI. The contract: no panic, no deadlock,
// and no delivery after stop() has returned.
func TestLiveMailboxEnqueueVsStopRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		rt := NewRuntime()
		var delivered atomic.Int64
		var stopped atomic.Bool
		rt.Register("sink", &node.FuncNode{
			OnRecv: func(node.ID, node.Message) {
				if stopped.Load() {
					t.Error("delivery after StopNode returned")
				}
				delivered.Add(1)
			},
		})
		rt.Start()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 500; i++ {
					rt.Inject("src", "sink", i)
				}
			}()
		}
		close(start)
		time.Sleep(time.Duration(iter%5) * 100 * time.Microsecond)
		rt.StopNode("sink")
		stopped.Store(true)
		wg.Wait()
		rt.Stop()
	}
}

// TestLiveBatcher covers the batched-inject path used by the transport read
// loop: grouping by destination, reuse across flushes, unknown-destination
// drops, and enqueue-batch-vs-stop.
func TestLiveBatcher(t *testing.T) {
	rt := NewRuntime()
	var aGot, bGot atomic.Int64
	var aOrder []int
	rt.Register("a", &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			aOrder = append(aOrder, m.(int)) // single mailbox goroutine: safe
			aGot.Add(1)
		},
	})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(node.ID, node.Message) { bGot.Add(1) },
	})
	rt.Start()
	defer rt.Stop()

	bat := NewBatcher(rt)
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 100; i++ {
			bat.Add("src", "a", cycle*100+i)
			if i%10 == 0 {
				bat.Add("src", "b", i)
			}
			bat.Add("src", "ghost", i) // unknown: dropped silently
		}
		bat.Flush()
	}
	bat.Flush() // empty flush is a no-op

	waitFor(t, func() bool { return aGot.Load() == 300 && bGot.Load() == 30 }, "batched deliveries")
	for i, v := range aOrder {
		if v != i {
			t.Fatalf("batched delivery reordered at %d: %v", i, aOrder[:i+1])
		}
	}

	rt.StopNode("a")
	bat.Add("src", "a", 999)
	bat.Flush() // enqueueBatch on a stopped node must not panic or deliver
	time.Sleep(10 * time.Millisecond)
	if aGot.Load() != 300 {
		t.Fatal("batch delivered to stopped node")
	}
}

// TestLiveLegacyHotPathParity runs the exact message/timer scenarios of the
// optimized runtime under WithLegacyHotPath, pinning that the baseline mode
// livemax measures against still behaves correctly.
func TestLiveLegacyHotPathParity(t *testing.T) {
	rt := NewRuntime(WithLegacyHotPath())
	var got atomic.Int64
	var order []int
	var fired, cancelled atomic.Bool
	rt.Register("a", &node.FuncNode{
		OnInit: func(ctx node.Context) {
			for i := 0; i < 50; i++ {
				ctx.Send("b", i)
			}
			ctx.SetTimer(5*time.Millisecond, func() { fired.Store(true) })
			c := ctx.SetTimer(time.Hour, func() { cancelled.Store(true) })
			c()
			ctx.Post(time.Millisecond, func() { ctx.Send("b", 50) })
		},
	})
	rt.Register("b", &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			order = append(order, m.(int))
			got.Add(1)
		},
	})
	rt.Start()
	defer rt.Stop()
	waitFor(t, func() bool { return got.Load() == 51 && fired.Load() }, "legacy deliveries+timer")
	for i, v := range order[:50] {
		if v != i {
			t.Fatalf("legacy delivery reordered: %v", order)
		}
	}
	if cancelled.Load() {
		t.Fatal("legacy cancelled timer fired")
	}
}

// TestLiveMailboxChunkBoundaries pushes exactly around multiples of the
// chunk size through one mailbox to exercise chunk hand-off and recycling.
func TestLiveMailboxChunkBoundaries(t *testing.T) {
	rt := NewRuntime()
	const total = chunkSize*3 + 7
	var got atomic.Int64
	var last atomic.Int64
	rt.Register("sink", &node.FuncNode{
		OnRecv: func(_ node.ID, m node.Message) {
			v := int64(m.(int))
			if v != last.Load() {
				t.Errorf("out of order: got %d want %d", v, last.Load())
			}
			last.Store(v + 1)
			got.Add(1)
		},
	})
	rt.Start()
	defer rt.Stop()
	bat := NewBatcher(rt)
	for i := 0; i < total; i++ {
		bat.Add("src", "sink", i)
		if i%(chunkSize+1) == 0 {
			bat.Flush()
		}
	}
	bat.Flush()
	waitFor(t, func() bool { return got.Load() == total }, "chunk-boundary deliveries")
}
