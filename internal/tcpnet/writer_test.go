package tcpnet

import (
	"sync"
	"testing"

	"aqua/internal/consistency"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/obs"
)

// TestWriterRingOverflowAccounting hammers one peer's bounded send ring
// from concurrent senders while the peer is unreachable, then checks the
// books balance exactly: every enqueued frame is either a counted drop
// (ring overflow or failed-dial flush) — never lost silently, never
// double-counted — and the queue-depth gauge returns to zero. Run under
// -race in CI.
func TestWriterRingOverflowAccounting(t *testing.T) {
	rt := live.NewRuntime()
	defer rt.Stop()
	// Peer address points at a fresh, unbound port: dials fail, so nothing
	// is ever delivered and every send must eventually surface as a drop.
	probe, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := probe.Addr()
	probe.Close() // release the port; nothing listens there now

	tr, err := New(rt, "127.0.0.1:0", map[node.ID]string{"peer": deadAddr},
		WithSendQueue(8))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := obs.NewRegistry()
	tr.Instrument(reg)

	const senders, perSender = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				tr.Send("local", "peer", consistency.GSNQuery{Epoch: uint64(i)})
			}
		}()
	}
	wg.Wait()

	const total = senders * perSender
	waitFor(t, func() bool {
		return counterValue(t, reg, "tcpnet_drops_total") == total
	}, "all sends accounted as drops")
	waitFor(t, func() bool {
		return gaugeValue(t, reg, "tcpnet_send_queue_depth") == 0
	}, "queue depth back to zero")
	if sent := counterValue(t, reg, "tcpnet_messages_sent_total"); sent != 0 {
		t.Fatalf("messages_sent = %d with no reachable peer", sent)
	}
}

func gaugeValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return int64(s.Value)
		}
	}
	t.Fatalf("gauge %s not in snapshot", name)
	return 0
}
