package tcpnet

import (
	"encoding/binary"
	"runtime"
	"testing"

	"aqua/internal/consistency"
)

// TestHostileGSNReportCountBounded is the finding-5 regression: a GSNReport
// frame claiming far more assignment entries than its bytes can hold must be
// rejected *before* the count sizes an allocation. Each entry costs at least
// 4 wire bytes but ~48 heap bytes, so a 1 MiB frame with a 1 Mi-entry count
// used to pin ~48 MiB per frame — an amplification a hostile peer can repeat
// per connection. The old 1-byte-per-entry guard let such a frame through;
// the decode loop then failed on truncation, but only after allocating.
func TestHostileGSNReportCountBounded(t *testing.T) {
	const count = 1 << 20
	body := []byte{WireVersion}
	body = appendString(body, "a") // from
	body = appendString(body, "b") // to
	body = append(body, tagGSNReport)
	body = binary.AppendUvarint(body, 1)     // epoch
	body = binary.AppendUvarint(body, 9)     // gsn
	body = binary.AppendUvarint(body, count) // hostile assign count
	// One byte per claimed entry: enough to pass a 1-byte-per-entry guard,
	// a quarter of what real entries need.
	body = append(body, make([]byte, count)...)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, _, _, err := DecodeFrame(body)
	runtime.ReadMemStats(&after)

	if err == nil {
		t.Fatal("hostile GSNReport frame decoded")
	}
	// The rejection must happen before make([]GSNAssign, count): allow
	// generous incidental slack, but nothing near count*sizeof(GSNAssign).
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 4<<20 {
		t.Fatalf("decoding hostile frame allocated %d bytes", delta)
	}

	// A report whose count matches its bytes still round-trips.
	want := consistency.GSNReport{Epoch: 1, GSN: 9, Assigns: []consistency.GSNAssign{
		{ID: consistency.RequestID{Client: "c", Seq: 4}, GSN: 8, Update: true},
		{ID: consistency.RequestID{Client: "c", Seq: 5}, GSN: 9},
	}}
	frame, err := AppendFrame(nil, "a", "b", want)
	if err != nil {
		t.Fatal(err)
	}
	_, _, m, err := DecodeFrame(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(consistency.GSNReport)
	if !ok || got.Epoch != want.Epoch || got.GSN != want.GSN || len(got.Assigns) != 2 ||
		got.Assigns[0] != want.Assigns[0] || got.Assigns[1] != want.Assigns[1] {
		t.Fatalf("round trip mismatch: %+v", m)
	}
}
