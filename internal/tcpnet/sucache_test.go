package tcpnet

import (
	"bytes"
	"testing"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

func frameVia(t *testing.T, encode func([]byte, node.ID, node.ID, node.Message) ([]byte, error),
	from, to node.ID, m node.Message) []byte {
	t.Helper()
	b, err := encode(nil, from, to, m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// TestAppendFrameCachedByteIdentical: the cached encoder must be invisible
// on the wire — every frame it emits is byte-for-byte what AppendFrame
// would have produced, across cache hits, misses, and non-cacheable frames.
func TestAppendFrameCachedByteIdentical(t *testing.T) {
	tr := &Transport{}
	rid := consistency.RequestID{Client: "c00", Seq: 7}
	su := consistency.StateUpdate{CSN: 41, Snapshot: []byte("snap-a"),
		RecentIDs: []consistency.RequestID{rid}}
	su2 := consistency.StateUpdate{CSN: 42, Snapshot: []byte("snap-b"), RecentIDs: nil}
	msgs := []node.Message{
		group.DataMsg{SrcEpoch: 1, Gen: 2, Seq: 3, Payload: su},
		group.DataMsg{SrcEpoch: 1, Gen: 2, Seq: 4, Payload: su},  // cache hit
		group.DataMsg{SrcEpoch: 2, Gen: 1, Seq: 1, Payload: su2}, // cache replace
		group.DataMsg{SrcEpoch: 2, Gen: 1, Seq: 2, Payload: su2},
		group.DataMsg{SrcEpoch: 1, Gen: 1, Seq: 5,
			Payload: consistency.Request{ID: rid, Method: "Set", Payload: []byte("x")}},
		consistency.StateUpdate{CSN: 9, Snapshot: []byte("bare")}, // not wrapped: fallback path
		group.AckMsg{SrcEpoch: 1, DstEpoch: 1, Gen: 1, Expected: 2},
	}
	for i, m := range msgs {
		want := frameVia(t, AppendFrame, "p00", "s01", m)
		got := frameVia(t, tr.appendFrameCached, "p00", "s01", m)
		if !bytes.Equal(got, want) {
			t.Fatalf("msg %d: cached frame differs from AppendFrame\n got %x\nwant %x", i, got, want)
		}
	}
}

// TestStateUpdateCacheSingleEncode: fanning one StateUpdate value out to
// many peers encodes the payload body once; a new tick's value (different
// CSN / backing arrays) re-encodes.
func TestStateUpdateCacheSingleEncode(t *testing.T) {
	var c stateUpdateCache
	su := consistency.StateUpdate{CSN: 7, Snapshot: []byte("abc"),
		RecentIDs: []consistency.RequestID{{Client: "c01", Seq: 1}}}
	first := c.encoded(su)
	if first == nil {
		t.Fatal("encoded returned nil")
	}
	for i := 0; i < 4; i++ {
		if again := c.encoded(su); &again[0] != &first[0] {
			t.Fatalf("fan-out %d re-encoded instead of reusing cached body", i)
		}
	}
	// Equal contents but fresh backing arrays: identity keying must miss.
	clone := consistency.StateUpdate{CSN: 7,
		Snapshot:  append([]byte(nil), su.Snapshot...),
		RecentIDs: append([]consistency.RequestID(nil), su.RecentIDs...)}
	if b := c.encoded(clone); &b[0] == &first[0] {
		t.Fatal("cache hit on different backing arrays")
	}
	if b := c.encoded(clone); !bytes.Equal(b, first) {
		t.Fatal("clone encoding differs from original encoding")
	}
}
