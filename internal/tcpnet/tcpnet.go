// Package tcpnet carries node messages between processes over TCP — the
// real-network transport for the live runtime. Frames travel in a
// length-prefixed binary wire format (see wire.go and DESIGN.md §9), not
// gob: one hand-written encoder/decoder per registered protocol message,
// so the hot path does no reflection and the steady-state encode performs
// zero heap allocations per frame.
//
// One Transport per process: it listens for inbound frames and injects
// them into the local live.Runtime, and its Send method plugs into
// live.WithRemote to forward frames addressed to nodes hosted elsewhere.
// Send never blocks: it enqueues onto a bounded per-peer ring serviced by
// a writer goroutine that batches queued frames into single writes and
// performs all dialing (retry, backoff, cooldown) off the caller path.
//
// Reliability note: TCP provides ordering per connection, but connections
// may drop and be re-dialed (and overflowing send rings shed frames);
// end-to-end reliability and FIFO across reconnects come from the group
// substrate's sequence numbers and ack/retransmit, exactly as with the
// simulated lossy network.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/obs"
)

// Frame is the wire unit: addressed, self-contained. The binary codec in
// wire.go flattens it as version|From|To|tagged-payload; the struct (and
// the gob registrations below) remain for programs that decode recorded
// traffic themselves and for the codec-vs-gob differential tests.
type Frame struct {
	From    node.ID
	To      node.ID
	Payload node.Message
}

var registerOnce sync.Once

// RegisterProtocolTypes registers every protocol message with gob. The live
// transport itself no longer speaks gob, but the registrations keep
// recorded-traffic tooling and the differential tests working. It is
// idempotent and called automatically by New.
func RegisterProtocolTypes() {
	registerOnce.Do(func() {
		gob.Register(group.DataMsg{})
		gob.Register(group.AckMsg{})
		gob.Register(group.HeartbeatMsg{})
		gob.Register(consistency.Request{})
		gob.Register(consistency.Reply{})
		gob.Register(consistency.GSNAssign{})
		gob.Register(consistency.GSNRequest{})
		gob.Register(consistency.BodyRequest{})
		gob.Register(consistency.SyncRequest{})
		gob.Register(consistency.GSNQuery{})
		gob.Register(consistency.GSNReport{})
		gob.Register(consistency.StateUpdate{})
		gob.Register(consistency.PerfBroadcast{})
		gob.Register(consistency.SequencerAnnounce{})
		gob.Register(consistency.DigestAnnounce{})
		gob.Register(consistency.GSNAssignBatch{})
		gob.Register(consistency.ShardMapAnnounce{})
		gob.Register(consistency.AssignAck{})
		gob.Register(consistency.OrderCommit{})
	})
}

// Dial retry policy: a missing peer at startup (processes come up in
// arbitrary order) gets a few quick retries with doubling backoff; after
// that the address enters a cooldown during which queued frames drop
// immediately. All of it runs on the peer's writer goroutine — a Send
// caller never sleeps in a dial.
const (
	dialAttempts     = 4
	dialBackoffBase  = 25 * time.Millisecond
	dialCooldownSpan = 250 * time.Millisecond
)

// instruments holds the transport's traffic counters; the zero value (no
// registry) is all nil no-ops.
type instruments struct {
	messagesSent *obs.Counter
	bytesSent    *obs.Counter
	messagesRecv *obs.Counter
	bytesRecv    *obs.Counter
	dials        *obs.Counter
	dialFailures *obs.Counter
	accepts      *obs.Counter
	drops        *obs.Counter
	queueDepth   *obs.Gauge
	flushBatch   *obs.Histogram
}

// Transport is one process's TCP endpoint.
type Transport struct {
	rt       *live.Runtime
	listener net.Listener
	ins      instruments
	queueCap int

	legacyIn bool // pre-optimization inbound path (benchmark baseline)

	mu      sync.Mutex
	peers   map[node.ID]string // node -> address
	writers map[string]*peerWriter
	inbound map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup

	// suCache amortizes the lazy publisher's fan-out: the same StateUpdate
	// value sent to every secondary in one tick is encoded once and the
	// bytes spliced into each peer's frame.
	suCache stateUpdateCache
}

// Option configures a Transport.
type Option func(*Transport)

// WithSendQueue sets the per-peer send ring capacity in frames (default
// DefaultSendQueue). Overflow frames are counted drops recovered by the
// group substrate's retransmission.
func WithSendQueue(n int) Option {
	return func(t *Transport) {
		if n > 0 {
			t.queueCap = n
		}
	}
}

// WithLegacyInbound restores the pre-optimization inbound path (buffered
// copies, per-frame decode allocations, one runtime injection per frame)
// and disables the writer's vectored flush. It exists so the livemax
// benchmark can measure the old and new transport hot paths in the same
// run; nothing else should use it.
func WithLegacyInbound() Option {
	return func(t *Transport) { t.legacyIn = true }
}

// New starts a transport listening on listenAddr (e.g. ":7100" or
// "127.0.0.1:0"). peers maps every remote node ID to the address of the
// process hosting it; local IDs need no entry. Pass the returned
// Transport's Send to live.WithRemote.
func New(rt *live.Runtime, listenAddr string, peers map[node.ID]string, opts ...Option) (*Transport, error) {
	RegisterProtocolTypes()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	t := &Transport{
		rt:       rt,
		listener: ln,
		queueCap: DefaultSendQueue,
		peers:    make(map[node.ID]string, len(peers)),
		writers:  make(map[string]*peerWriter),
		inbound:  make(map[net.Conn]bool),
	}
	for id, addr := range peers {
		t.peers[id] = addr
	}
	for _, o := range opts {
		o(t)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with port 0).
func (t *Transport) Addr() string { return t.listener.Addr().String() }

// Instrument attaches traffic counters from reg (nil detaches nothing and
// is a no-op). Call before traffic flows; counters cover frames and bytes
// in both directions, dial and accept activity, the aggregate send-queue
// depth, and the per-flush batch size distribution.
func (t *Transport) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.ins = instruments{
		messagesSent: reg.Counter("tcpnet_messages_sent_total"),
		bytesSent:    reg.Counter("tcpnet_bytes_sent_total"),
		messagesRecv: reg.Counter("tcpnet_messages_recv_total"),
		bytesRecv:    reg.Counter("tcpnet_bytes_recv_total"),
		dials:        reg.Counter("tcpnet_dials_total"),
		dialFailures: reg.Counter("tcpnet_dial_failures_total"),
		accepts:      reg.Counter("tcpnet_accepts_total"),
		drops:        reg.Counter("tcpnet_drops_total"),
		queueDepth:   reg.Gauge("tcpnet_send_queue_depth"),
		flushBatch:   reg.Histogram("tcpnet_flush_batch_size", obs.DepthBuckets()),
	}
}

// countingReader tees byte totals into a counter; a nil counter costs one
// no-op method call per read. (Outbound bytes are counted at flush time in
// the writer, where the whole batch is one length-known write.)
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// AddPeer maps (or remaps) a node ID to an address.
func (t *Transport) AddPeer(id node.ID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Close stops the listener, every writer goroutine, and all connections.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	writers := make([]*peerWriter, 0, len(t.writers))
	for _, w := range t.writers {
		writers = append(writers, w)
	}
	in := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		in = append(in, c)
	}
	t.mu.Unlock()

	err := t.listener.Close()
	for _, w := range writers {
		w.shutdown()
	}
	for _, c := range in {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// Send forwards a frame to the process hosting 'to'. It is non-blocking:
// the frame is enqueued on the peer's bounded send ring and the per-peer
// writer goroutine does all encoding, dialing, and writing. Messages to
// unknown peers, and frames shed by a full ring or an unreachable peer,
// are counted drops — the group substrate's retransmission recovers once
// the peer is reachable.
func (t *Transport) Send(from, to node.ID, m node.Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	addr, ok := t.peers[to]
	if !ok {
		t.mu.Unlock()
		t.ins.drops.Inc()
		return
	}
	w := t.writers[addr]
	if w == nil {
		w = newPeerWriter(t, addr, t.queueCap)
		t.writers[addr] = w
		t.wg.Add(1)
		go w.run()
	}
	t.mu.Unlock()
	w.enqueue(from, to, m)
}

// dropConnections closes every established connection — outbound writer
// conns and inbound accepted conns — without touching queues, cooldowns,
// or the listener. Test hook simulating a mid-stream network failure; the
// writers re-dial on their next flush.
func (t *Transport) dropConnections() {
	t.mu.Lock()
	writers := make([]*peerWriter, 0, len(t.writers))
	for _, w := range t.writers {
		writers = append(writers, w)
	}
	in := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		in = append(in, c)
	}
	t.mu.Unlock()
	for _, w := range writers {
		w.setConn(nil)
	}
	for _, c := range in {
		c.Close()
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.ins.accepts.Inc()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readSlab is the size of the decoder-owned inbound buffer. Reads go
// straight from the socket into the slab and decoded messages alias it, so
// a slab is write-once: when it fills, a fresh one is allocated and the
// old one is garbage once its messages die. 256KB amortizes that
// allocation over thousands of typical frames.
const readSlab = 256 << 10

// readMinFree is the minimum free tail space worth issuing a read into;
// below it the loop moves to a fresh slab rather than degrade into tiny
// reads.
const readMinFree = 16 << 10

// readLoop parses length-prefixed frames off one inbound connection. Any
// framing or decode error (unknown version or tag, truncation, oversize)
// drops the connection — the sender re-dials, the stream resynchronizes at
// a frame boundary, and the group layer retransmits — so a desynchronized
// stream can never be misdecoded into wrong messages.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	if t.legacyIn {
		t.readFramesLegacy(conn)
		return
	}
	t.readFrames(conn)
}

// readFrames is the zero-copy inbound hot path: the socket is read directly
// into a decoder-owned slab, every complete frame in the readable window is
// decoded with DecodeShared (byte fields alias the slab, hot types box from
// the decoder's arena), and the whole window's messages are injected as one
// batched enqueue per destination node. Decoded messages own their slab
// regions, so the slab is never rewritten behind them; the parse cursor
// only moves forward and cramped tails migrate to a fresh slab.
func (t *Transport) readFrames(conn net.Conn) {
	var dec FrameDecoder // per-connection string intern cache + arena
	bat := live.NewBatcher(t.rt)
	slab := make([]byte, readSlab)
	r, w := 0, 0 // parse and fill cursors into slab
	for {
		for w-r >= 4 {
			n := int(binary.BigEndian.Uint32(slab[r : r+4]))
			if n == 0 || n > maxFrameBytes {
				bat.Flush()
				return
			}
			if w-r-4 < n {
				break // frame body not fully arrived
			}
			body := slab[r+4 : r+4+n : r+4+n]
			r += 4 + n
			from, to, m, err := dec.DecodeShared(body)
			if err != nil {
				bat.Flush()
				return
			}
			t.ins.messagesRecv.Inc()
			bat.Add(from, to, m)
		}
		bat.Flush()

		// Need more bytes. need = the full span of the pending frame when
		// its length is already readable, else just the length prefix.
		need := 4
		if w-r >= 4 {
			if n := int(binary.BigEndian.Uint32(slab[r : r+4])); n > 0 && n <= maxFrameBytes {
				need = 4 + n
			}
		}
		if len(slab)-r < need || len(slab)-w < readMinFree {
			// The pending frame cannot fit in (or the free tail is too
			// cramped for useful reads from) the current slab: carry the
			// partial tail to a fresh one. Earlier regions stay untouched
			// for the messages that alias them.
			ns := make([]byte, max(readSlab, need))
			copy(ns, slab[r:w])
			w -= r
			r = 0
			slab = ns
		}
		n, err := conn.Read(slab[w:])
		if n > 0 {
			t.ins.bytesRecv.Add(uint64(n))
			w += n
		}
		if err != nil {
			return
		}
	}
}

// readFramesLegacy is the pre-optimization inbound path — buffered reads,
// one copying decode and one runtime injection per frame — kept verbatim so
// livemax can benchmark against it in the same run (WithLegacyInbound).
func (t *Transport) readFramesLegacy(conn net.Conn) {
	br := bufio.NewReaderSize(countingReader{r: conn, c: t.ins.bytesRecv}, 64<<10)
	var lenBuf [4]byte
	var body []byte
	var dec FrameDecoder // per-connection string intern cache
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrameBytes {
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		from, to, m, err := dec.Decode(body)
		if err != nil {
			return
		}
		t.ins.messagesRecv.Inc()
		t.rt.Inject(from, to, m)
	}
}
