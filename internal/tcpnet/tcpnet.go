// Package tcpnet carries node messages between processes over TCP with gob
// encoding — the real-network transport for the live runtime. One Transport
// per process: it listens for inbound frames and injects them into the
// local live.Runtime, and its Send method plugs into live.WithRemote to
// forward frames addressed to nodes hosted elsewhere.
//
// Reliability note: TCP provides ordering per connection, but connections
// may drop and be re-dialed; end-to-end reliability and FIFO across
// reconnects come from the group substrate's sequence numbers and
// ack/retransmit, exactly as with the simulated lossy network.
package tcpnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/obs"
)

// Frame is the wire unit: addressed, self-contained.
type Frame struct {
	From    node.ID
	To      node.ID
	Payload node.Message
}

var registerOnce sync.Once

// RegisterProtocolTypes registers every protocol message with gob. It is
// idempotent and called automatically by New; exposed for programs that
// decode frames themselves.
func RegisterProtocolTypes() {
	registerOnce.Do(func() {
		gob.Register(group.DataMsg{})
		gob.Register(group.AckMsg{})
		gob.Register(group.HeartbeatMsg{})
		gob.Register(consistency.Request{})
		gob.Register(consistency.Reply{})
		gob.Register(consistency.GSNAssign{})
		gob.Register(consistency.GSNRequest{})
		gob.Register(consistency.BodyRequest{})
		gob.Register(consistency.SyncRequest{})
		gob.Register(consistency.GSNQuery{})
		gob.Register(consistency.GSNReport{})
		gob.Register(consistency.StateUpdate{})
		gob.Register(consistency.PerfBroadcast{})
		gob.Register(consistency.SequencerAnnounce{})
	})
}

// Dial retry policy: a missing peer at startup (processes come up in
// arbitrary order) gets a few quick retries with doubling backoff; after
// that the address enters a cooldown during which sends drop immediately,
// so a long outage costs each Send a map lookup instead of a backoff wait.
const (
	dialAttempts     = 4
	dialBackoffBase  = 25 * time.Millisecond
	dialCooldownSpan = 250 * time.Millisecond
)

var errDialCooldown = errors.New("tcpnet: peer in dial cooldown")

// instruments holds the transport's traffic counters; the zero value (no
// registry) is all nil no-ops.
type instruments struct {
	messagesSent *obs.Counter
	bytesSent    *obs.Counter
	messagesRecv *obs.Counter
	bytesRecv    *obs.Counter
	dials        *obs.Counter
	dialFailures *obs.Counter
	accepts      *obs.Counter
	drops        *obs.Counter
}

// Transport is one process's TCP endpoint.
type Transport struct {
	rt       *live.Runtime
	listener net.Listener
	ins      instruments

	mu       sync.Mutex
	peers    map[node.ID]string // node -> address
	conns    map[string]*peerConn
	inbound  map[net.Conn]bool
	cooldown map[string]time.Time // addr -> no redial before
	closed   bool
	wg       sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// New starts a transport listening on listenAddr (e.g. ":7100" or
// "127.0.0.1:0"). peers maps every remote node ID to the address of the
// process hosting it; local IDs need no entry. Pass the returned
// Transport's Send to live.WithRemote.
func New(rt *live.Runtime, listenAddr string, peers map[node.ID]string) (*Transport, error) {
	RegisterProtocolTypes()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	t := &Transport{
		rt:       rt,
		listener: ln,
		peers:    make(map[node.ID]string, len(peers)),
		conns:    make(map[string]*peerConn),
		inbound:  make(map[net.Conn]bool),
		cooldown: make(map[string]time.Time),
	}
	for id, addr := range peers {
		t.peers[id] = addr
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with port 0).
func (t *Transport) Addr() string { return t.listener.Addr().String() }

// Instrument attaches traffic counters from reg (nil detaches nothing and
// is a no-op). Call before traffic flows; counters cover frames and bytes
// in both directions plus dial and accept activity.
func (t *Transport) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.ins = instruments{
		messagesSent: reg.Counter("tcpnet_messages_sent_total"),
		bytesSent:    reg.Counter("tcpnet_bytes_sent_total"),
		messagesRecv: reg.Counter("tcpnet_messages_recv_total"),
		bytesRecv:    reg.Counter("tcpnet_bytes_recv_total"),
		dials:        reg.Counter("tcpnet_dials_total"),
		dialFailures: reg.Counter("tcpnet_dial_failures_total"),
		accepts:      reg.Counter("tcpnet_accepts_total"),
		drops:        reg.Counter("tcpnet_drops_total"),
	}
}

// countingWriter/countingReader tee byte totals into a counter; a nil
// counter costs one no-op method call per I/O.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(uint64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(uint64(n))
	return n, err
}

// AddPeer maps (or remaps) a node ID to an address.
func (t *Transport) AddPeer(id node.ID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

// Close stops the listener and all connections.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*peerConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	in := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		in = append(in, c)
	}
	t.mu.Unlock()

	err := t.listener.Close()
	for _, c := range conns {
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
	}
	for _, c := range in {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// Send forwards a frame to the process hosting 'to'. Messages to unknown
// or unreachable peers are dropped silently — the group substrate's
// retransmission recovers once the peer is reachable.
func (t *Transport) Send(from, to node.ID, m node.Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		t.ins.drops.Inc()
		return
	}
	pc, err := t.dial(addr)
	if err != nil {
		t.ins.drops.Inc()
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		t.ins.drops.Inc()
		return
	}
	if err := pc.enc.Encode(Frame{From: from, To: to, Payload: m}); err != nil {
		// Broken pipe: drop the connection; the next Send re-dials.
		t.ins.drops.Inc()
		pc.conn.Close()
		pc.conn = nil
		t.mu.Lock()
		if t.conns[addr] == pc {
			delete(t.conns, addr)
		}
		t.mu.Unlock()
		return
	}
	t.ins.messagesSent.Inc()
}

func (t *Transport) dial(addr string) (*peerConn, error) {
	t.mu.Lock()
	if pc, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	if until, cooling := t.cooldown[addr]; cooling {
		if time.Now().Before(until) {
			t.mu.Unlock()
			return nil, errDialCooldown
		}
		delete(t.cooldown, addr)
	}
	t.mu.Unlock()

	// Bounded retry with doubling backoff: absorbs the startup window where
	// a peer process has not bound its listener yet.
	var conn net.Conn
	var err error
	backoff := dialBackoffBase
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return nil, errors.New("tcpnet: transport closed")
			}
		}
		t.ins.dials.Inc()
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		t.ins.dialFailures.Inc()
	}
	if err != nil {
		t.mu.Lock()
		t.cooldown[addr] = time.Now().Add(dialCooldownSpan)
		t.mu.Unlock()
		return nil, err
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(countingWriter{w: conn, c: t.ins.bytesSent})}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		conn.Close()
		return nil, errors.New("tcpnet: transport closed")
	}
	if existing, ok := t.conns[addr]; ok {
		conn.Close() // lost the race; reuse the winner
		return existing, nil
	}
	t.conns[addr] = pc
	return pc, nil
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.ins.accepts.Inc()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(countingReader{r: conn, c: t.ins.bytesRecv})
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		t.ins.messagesRecv.Inc()
		t.rt.Inject(f.From, f.To, f.Payload)
	}
}
