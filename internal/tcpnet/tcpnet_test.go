package tcpnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/live"
	"aqua/internal/node"
	"aqua/internal/obs"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout waiting for: " + msg)
}

// twoProcesses wires two live runtimes through real TCP loopback.
func twoProcesses(t *testing.T, aNode, bNode node.Node) (cleanup func()) {
	t.Helper()
	rtA := live.NewRuntime()
	rtB := live.NewRuntime()

	trA, err := New(rtA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := New(rtB, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	trA.AddPeer("b", trB.Addr())
	trB.AddPeer("a", trA.Addr())
	rtA.SetRemote(trA.Send)
	rtB.SetRemote(trB.Send)

	rtA.Register("a", aNode)
	rtB.Register("b", bNode)
	rtA.Start()
	rtB.Start()
	return func() {
		rtA.Stop()
		rtB.Stop()
		trA.Close()
		trB.Close()
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var echoed atomic.Bool
	a := &node.FuncNode{
		OnInit: func(ctx node.Context) {
			ctx.Send("b", consistency.Request{Method: "Get", Payload: []byte("k")})
		},
		OnRecv: func(from node.ID, m node.Message) {
			// Flatten: the live inbound path boxes hot types as pointers.
			if r, ok := Flatten(m).(consistency.Reply); ok && string(r.Payload) == "pong" {
				echoed.Store(true)
			}
		},
	}
	b := &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			// Reply over TCP requires a context captured at Init; use the
			// sender address from the frame instead.
		},
	}
	var bCtx atomic.Value
	b = &node.FuncNode{
		OnInit: func(ctx node.Context) { bCtx.Store(ctx) },
		OnRecv: func(from node.ID, m node.Message) {
			if req, ok := Flatten(m).(consistency.Request); ok && req.Method == "Get" {
				bCtx.Load().(node.Context).Send(from, consistency.Reply{Payload: []byte("pong")})
			}
		},
	}
	cleanup := twoProcesses(t, a, b)
	defer cleanup()
	waitFor(t, echoed.Load, "TCP round trip")
}

func TestTCPCarriesAllProtocolTypes(t *testing.T) {
	var count atomic.Int64
	msgs := []node.Message{
		consistency.Request{ID: consistency.RequestID{Client: "a", Seq: 1}, Method: "Set", Payload: []byte("x=1")},
		consistency.Reply{Payload: []byte("ok"), T1: 3 * time.Millisecond, Replica: "b"},
		consistency.GSNAssign{GSN: 7, Update: true},
		consistency.GSNRequest{Update: true},
		consistency.GSNQuery{Epoch: 2},
		consistency.GSNReport{Epoch: 2, GSN: 9},
		consistency.StateUpdate{CSN: 4, Snapshot: []byte{1, 2}},
		consistency.PerfBroadcast{Replica: "b", TS: time.Millisecond, IsPublisher: true, NU: 3},
		consistency.SequencerAnnounce{Sequencer: "p01"},
	}
	a := &node.FuncNode{
		OnInit: func(ctx node.Context) {
			for _, m := range msgs {
				ctx.Send("b", m)
			}
		},
	}
	b := &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) { count.Add(1) },
	}
	cleanup := twoProcesses(t, a, b)
	defer cleanup()
	waitFor(t, func() bool { return count.Load() == int64(len(msgs)) }, "all protocol types")
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send("a", "nobody", consistency.GSNQuery{}) // must not panic or block
}

func TestTCPUnreachablePeerDropped(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", map[node.ID]string{"b": "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send("a", "b", consistency.GSNQuery{}) // connection refused: dropped
}

func TestTCPCloseIdempotent(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Send("a", "b", consistency.GSNQuery{}) // after close: dropped
}

func TestTCPAddrReportsBoundPort(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Addr() == "127.0.0.1:0" || tr.Addr() == "" {
		t.Fatalf("Addr = %q", tr.Addr())
	}
}

// counterValue reads one named counter out of a registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return uint64(s.Value)
		}
	}
	t.Fatalf("counter %s not in snapshot", name)
	return 0
}

// TestTCPConcurrentSendersFraming hammers one connection from many
// goroutines at once: every frame must arrive intact (gob frames from
// concurrent Sends must never interleave on the wire) and the traffic
// counters must account for each one exactly once.
func TestTCPConcurrentSendersFraming(t *testing.T) {
	const senders, perSender = 8, 50

	var got atomic.Int64
	var wrong atomic.Int64
	b := &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			req, ok := Flatten(m).(consistency.Request)
			if !ok || req.Method != "Set" || string(req.Payload) != "k=v" {
				wrong.Add(1)
				return
			}
			got.Add(1)
		},
	}

	rtA, rtB := live.NewRuntime(), live.NewRuntime()
	trA, err := New(rtA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := New(rtB, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	trA.AddPeer("b", trB.Addr())
	reg := obs.NewRegistry()
	trA.Instrument(reg)
	rtB.SetRemote(trB.Send)
	rtB.Register("b", b)
	rtB.Start()
	defer rtB.Stop()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := node.ID(fmt.Sprintf("a%02d", s))
			for i := uint64(0); i < perSender; i++ {
				trA.Send(from, "b", consistency.Request{
					ID:      consistency.RequestID{Client: from, Seq: i},
					Method:  "Set",
					Payload: []byte("k=v"),
				})
			}
		}(s)
	}
	wg.Wait()

	waitFor(t, func() bool { return got.Load() == senders*perSender }, "all concurrent frames")
	if wrong.Load() != 0 {
		t.Fatalf("%d frames arrived corrupted", wrong.Load())
	}
	if sent := counterValue(t, reg, "tcpnet_messages_sent_total"); sent != senders*perSender {
		t.Fatalf("messagesSent = %d, want %d", sent, senders*perSender)
	}
	if counterValue(t, reg, "tcpnet_bytes_sent_total") == 0 {
		t.Fatal("bytesSent = 0, want > 0")
	}
}

// TestTCPDialRetryAbsorbsLateListener reproduces the startup race the retry
// policy exists for: the first Send happens before the peer process has
// bound its listener, and a retry within the backoff ladder (0/25/50/100 ms)
// — run by the peer's writer goroutine, not the Send caller — must still
// deliver the frame.
func TestTCPDialRetryAbsorbsLateListener(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: real dial-backoff timing")
	}
	// Reserve an address, then free it so the late listener can bind it.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	rtA := live.NewRuntime()
	trA, err := New(rtA, "127.0.0.1:0", map[node.ID]string{"b": addr})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()

	var got atomic.Int64
	var trB *Transport
	var trBMu sync.Mutex
	time.AfterFunc(60*time.Millisecond, func() {
		rtB := live.NewRuntime()
		tr, err := New(rtB, addr, nil)
		if err != nil {
			return // port stolen between probe and bind; Send fails the test
		}
		rtB.SetRemote(tr.Send)
		rtB.Register("b", &node.FuncNode{
			OnRecv: func(node.ID, node.Message) { got.Add(1) },
		})
		rtB.Start()
		trBMu.Lock()
		trB = tr
		trBMu.Unlock()
	})
	defer func() {
		trBMu.Lock()
		if trB != nil {
			trB.Close()
		}
		trBMu.Unlock()
	}()

	trA.Send("a", "b", consistency.GSNQuery{Epoch: 1}) // returns at once; writer retries
	waitFor(t, func() bool { return got.Load() == 1 }, "delivery after dial retry")
}

// TestTCPDialCooldownBoundsOutageCost verifies that once the writer's retry
// budget is exhausted, frames sent during the cooldown window drop without
// re-paying the backoff ladder (no further dial attempts).
func TestTCPDialCooldownBoundsOutageCost(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: real dial-backoff timing")
	}
	rt := live.NewRuntime()
	// 127.0.0.1:1 refuses instantly, so the writer's dial ladder costs only
	// the backoff sleeps (~175 ms) before entering cooldown.
	tr, err := New(rt, "127.0.0.1:0", map[node.ID]string{"b": "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := obs.NewRegistry()
	tr.Instrument(reg)

	tr.Send("a", "b", consistency.GSNQuery{Epoch: 1}) // writer exhausts the retries
	waitFor(t, func() bool {
		return counterValue(t, reg, "tcpnet_drops_total") == 1
	}, "first frame dropped after retry ladder")
	dialsAfterFirst := counterValue(t, reg, "tcpnet_dial_failures_total")
	if dialsAfterFirst != dialAttempts {
		t.Fatalf("first send made %d dial attempts, want %d", dialsAfterFirst, dialAttempts)
	}

	tr.Send("a", "b", consistency.GSNQuery{Epoch: 2}) // in cooldown: drops fast
	waitFor(t, func() bool {
		return counterValue(t, reg, "tcpnet_drops_total") == 2
	}, "second frame dropped in cooldown")
	if counterValue(t, reg, "tcpnet_dial_failures_total") != dialsAfterFirst {
		t.Fatal("send during cooldown re-dialed")
	}
}

// TestTCPSendNonBlockingDuringOutage is the Send latency contract: no code
// path reachable from live.Runtime may sleep in Send, so a Send to a down
// peer that is NOT yet in dial cooldown — the worst case, where the old
// transport slept through the whole backoff ladder — must return in under
// a millisecond. The dial ladder runs concurrently on the writer goroutine.
func TestTCPSendNonBlockingDuringOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: wall-clock latency assertion")
	}
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", map[node.ID]string{"b": "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	for i := 0; i < 50; i++ {
		start := time.Now()
		tr.Send("a", "b", consistency.GSNQuery{Epoch: uint64(i)})
		if elapsed := time.Since(start); elapsed >= time.Millisecond {
			t.Fatalf("Send %d to down peer took %v, want < 1ms", i, elapsed)
		}
	}
}

// TestTCPReconnectMidStreamExactlyOnce runs the paper's reliability layering
// end to end over real sockets: a group.Stack sends a stream of sequenced
// payloads across the transport while the test severs every TCP connection
// twice mid-stream. The length-prefixed codec must resynchronize on the
// re-dialed connections (a frame boundary starts every stream) and the
// stack's ack/retransmit must hand every payload to the app layer exactly
// once, in order.
func TestTCPReconnectMidStreamExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: real sockets and retransmit timers")
	}
	const total = 100
	gcfg := group.Config{
		RetransmitInterval: 20 * time.Millisecond,
		MaxRetries:         1000, // never presume the peer dead: outages here are transient
	}

	var mu sync.Mutex
	seen := make(map[uint64]int)
	var delivered atomic.Int64

	type stackHolder struct{ s *group.Stack }
	recvH := &stackHolder{}
	recv := &node.FuncNode{
		OnInit: func(ctx node.Context) {
			recvH.s = group.NewStack(ctx, gcfg, func(from node.ID, m node.Message) {
				req := Flatten(m).(consistency.Request)
				mu.Lock()
				seen[req.ID.Seq]++
				mu.Unlock()
				delivered.Add(1)
			})
		},
		OnRecv: func(from node.ID, m node.Message) { recvH.s.Handle(from, m) },
	}
	sendH := &stackHolder{}
	send := &node.FuncNode{
		OnInit: func(ctx node.Context) {
			sendH.s = group.NewStack(ctx, gcfg, func(node.ID, node.Message) {})
			for i := uint64(1); i <= total; i++ {
				sendH.s.Send("b", consistency.Request{
					ID:     consistency.RequestID{Client: "a", Seq: i},
					Method: "Set", Payload: []byte("k=v"),
				})
			}
		},
		OnRecv: func(from node.ID, m node.Message) { sendH.s.Handle(from, m) },
	}

	rtA, rtB := live.NewRuntime(), live.NewRuntime()
	trA, err := New(rtA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := New(rtB, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()
	trA.AddPeer("b", trB.Addr())
	trB.AddPeer("a", trA.Addr())
	rtA.SetRemote(trA.Send)
	rtB.SetRemote(trB.Send)
	rtB.Register("b", recv)
	rtB.Start()
	defer rtB.Stop()
	rtA.Register("a", send)
	rtA.Start()
	defer rtA.Stop()

	// Sever every connection twice while the stream is in flight.
	for _, cut := range []int64{total / 3, 2 * total / 3} {
		cut := cut
		waitFor(t, func() bool { return delivered.Load() >= cut }, "progress before cut")
		trA.dropConnections()
		trB.dropConnections()
	}

	waitFor(t, func() bool {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		return n == total
	}, "all payloads delivered across reconnects")
	mu.Lock()
	defer mu.Unlock()
	for i := uint64(1); i <= total; i++ {
		if seen[i] != 1 {
			t.Fatalf("payload %d delivered %d times, want exactly once", i, seen[i])
		}
	}
}

func TestTCPPeerProcessRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short: real sockets and re-dial timing")
	}
	// Process B dies and a new incarnation binds the same node ID at a new
	// address; A keeps talking after AddPeer remaps it. The group layer
	// above recovers ordering/reliability; here we verify the transport
	// itself re-dials and delivers.
	rtA := live.NewRuntime()
	trA, err := New(rtA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	rtA.SetRemote(trA.Send)

	var got atomic.Int64
	mkB := func() (*live.Runtime, *Transport) {
		rtB := live.NewRuntime()
		trB, err := New(rtB, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		rtB.SetRemote(trB.Send)
		rtB.Register("b", &node.FuncNode{
			OnRecv: func(node.ID, node.Message) { got.Add(1) },
		})
		rtB.Start()
		return rtB, trB
	}

	rtB1, trB1 := mkB()
	trA.AddPeer("b", trB1.Addr())
	rtA.Register("a", &node.FuncNode{})
	rtA.Start()
	defer rtA.Stop()

	trA.Send("a", "b", consistency.GSNQuery{Epoch: 1})
	waitFor(t, func() bool { return got.Load() == 1 }, "first incarnation delivery")

	// Kill B entirely.
	rtB1.Stop()
	trB1.Close()
	trA.Send("a", "b", consistency.GSNQuery{Epoch: 2}) // dropped (broken pipe)

	// New incarnation at a new port.
	rtB2, trB2 := mkB()
	defer rtB2.Stop()
	defer trB2.Close()
	trA.AddPeer("b", trB2.Addr())

	// Sends re-dial the remapped address; allow for the one dropped frame
	// that flushed into the dead connection's buffer.
	waitFor(t, func() bool {
		trA.Send("a", "b", consistency.GSNQuery{Epoch: 3})
		return got.Load() >= 2
	}, "second incarnation delivery")
}
