package tcpnet

import (
	"sync/atomic"
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/live"
	"aqua/internal/node"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout waiting for: " + msg)
}

// twoProcesses wires two live runtimes through real TCP loopback.
func twoProcesses(t *testing.T, aNode, bNode node.Node) (cleanup func()) {
	t.Helper()
	rtA := live.NewRuntime()
	rtB := live.NewRuntime()

	trA, err := New(rtA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := New(rtB, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	trA.AddPeer("b", trB.Addr())
	trB.AddPeer("a", trA.Addr())
	rtA.SetRemote(trA.Send)
	rtB.SetRemote(trB.Send)

	rtA.Register("a", aNode)
	rtB.Register("b", bNode)
	rtA.Start()
	rtB.Start()
	return func() {
		rtA.Stop()
		rtB.Stop()
		trA.Close()
		trB.Close()
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var echoed atomic.Bool
	a := &node.FuncNode{
		OnInit: func(ctx node.Context) {
			ctx.Send("b", consistency.Request{Method: "Get", Payload: []byte("k")})
		},
		OnRecv: func(from node.ID, m node.Message) {
			if r, ok := m.(consistency.Reply); ok && string(r.Payload) == "pong" {
				echoed.Store(true)
			}
		},
	}
	b := &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) {
			// Reply over TCP requires a context captured at Init; use the
			// sender address from the frame instead.
		},
	}
	var bCtx atomic.Value
	b = &node.FuncNode{
		OnInit: func(ctx node.Context) { bCtx.Store(ctx) },
		OnRecv: func(from node.ID, m node.Message) {
			if req, ok := m.(consistency.Request); ok && req.Method == "Get" {
				bCtx.Load().(node.Context).Send(from, consistency.Reply{Payload: []byte("pong")})
			}
		},
	}
	cleanup := twoProcesses(t, a, b)
	defer cleanup()
	waitFor(t, echoed.Load, "TCP round trip")
}

func TestTCPCarriesAllProtocolTypes(t *testing.T) {
	var count atomic.Int64
	msgs := []node.Message{
		consistency.Request{ID: consistency.RequestID{Client: "a", Seq: 1}, Method: "Set", Payload: []byte("x=1")},
		consistency.Reply{Payload: []byte("ok"), T1: 3 * time.Millisecond, Replica: "b"},
		consistency.GSNAssign{GSN: 7, Update: true},
		consistency.GSNRequest{Update: true},
		consistency.GSNQuery{Epoch: 2},
		consistency.GSNReport{Epoch: 2, GSN: 9},
		consistency.StateUpdate{CSN: 4, Snapshot: []byte{1, 2}},
		consistency.PerfBroadcast{Replica: "b", TS: time.Millisecond, IsPublisher: true, NU: 3},
		consistency.SequencerAnnounce{Sequencer: "p01"},
	}
	a := &node.FuncNode{
		OnInit: func(ctx node.Context) {
			for _, m := range msgs {
				ctx.Send("b", m)
			}
		},
	}
	b := &node.FuncNode{
		OnRecv: func(from node.ID, m node.Message) { count.Add(1) },
	}
	cleanup := twoProcesses(t, a, b)
	defer cleanup()
	waitFor(t, func() bool { return count.Load() == int64(len(msgs)) }, "all protocol types")
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send("a", "nobody", consistency.GSNQuery{}) // must not panic or block
}

func TestTCPUnreachablePeerDropped(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", map[node.ID]string{"b": "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send("a", "b", consistency.GSNQuery{}) // connection refused: dropped
}

func TestTCPCloseIdempotent(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Send("a", "b", consistency.GSNQuery{}) // after close: dropped
}

func TestTCPAddrReportsBoundPort(t *testing.T) {
	rt := live.NewRuntime()
	tr, err := New(rt, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Addr() == "127.0.0.1:0" || tr.Addr() == "" {
		t.Fatalf("Addr = %q", tr.Addr())
	}
}

func TestTCPPeerProcessRestart(t *testing.T) {
	// Process B dies and a new incarnation binds the same node ID at a new
	// address; A keeps talking after AddPeer remaps it. The group layer
	// above recovers ordering/reliability; here we verify the transport
	// itself re-dials and delivers.
	rtA := live.NewRuntime()
	trA, err := New(rtA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	rtA.SetRemote(trA.Send)

	var got atomic.Int64
	mkB := func() (*live.Runtime, *Transport) {
		rtB := live.NewRuntime()
		trB, err := New(rtB, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		rtB.SetRemote(trB.Send)
		rtB.Register("b", &node.FuncNode{
			OnRecv: func(node.ID, node.Message) { got.Add(1) },
		})
		rtB.Start()
		return rtB, trB
	}

	rtB1, trB1 := mkB()
	trA.AddPeer("b", trB1.Addr())
	rtA.Register("a", &node.FuncNode{})
	rtA.Start()
	defer rtA.Stop()

	trA.Send("a", "b", consistency.GSNQuery{Epoch: 1})
	waitFor(t, func() bool { return got.Load() == 1 }, "first incarnation delivery")

	// Kill B entirely.
	rtB1.Stop()
	trB1.Close()
	trA.Send("a", "b", consistency.GSNQuery{Epoch: 2}) // dropped (broken pipe)

	// New incarnation at a new port.
	rtB2, trB2 := mkB()
	defer rtB2.Stop()
	defer trB2.Close()
	trA.AddPeer("b", trB2.Addr())

	// Sends re-dial the remapped address; allow for the one dropped frame
	// that flushed into the dead connection's buffer.
	waitFor(t, func() bool {
		trA.Send("a", "b", consistency.GSNQuery{Epoch: 3})
		return got.Load() >= 2
	}, "second incarnation delivery")
}
