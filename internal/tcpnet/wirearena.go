// Arena-backed shared decoding for the inbound hot path. The public
// DecodeFrame/Decode copy every variable-length field and box messages as
// interface values, which costs 2-4 heap allocations per frame. At the
// rates the live transport targets those allocations (and the GC cycles
// they feed) dominate single-core decode cost, so the read loop uses
// DecodeShared instead:
//
//   - byte fields ([]byte payloads, snapshots) alias the frame body
//     directly — zero copy. The caller must relinquish ownership of the
//     buffer to the decoded messages (the read loop's slab discipline).
//   - hot message types are boxed from per-decoder typed slabs, so the
//     interface conversion reuses amortized storage instead of allocating
//     per frame. Hot messages therefore arrive as pointers (*group.DataMsg,
//     *consistency.Request, ...); every protocol switch on the live path
//     accepts both the value and pointer forms.
//   - RequestID lists come from a shared slab as well.
//
// Rare control-plane types (PerfBroadcast, announcements, sync) keep plain
// value boxing — their rates are too low to matter.
package tcpnet

import (
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// arenaSlab is the element count of each typed slab. It only needs to be
// large enough to amortize the slab allocation across many frames; decoded
// messages keep their slot alive until the runtime drops them, and the GC
// reclaims whole slabs as usual.
const arenaSlab = 512

// decodeArena hands out typed message slots in slab-sized batches.
type decodeArena struct {
	dataMsgs []group.DataMsg
	acks     []group.AckMsg
	hbs      []group.HeartbeatMsg
	reqs     []consistency.Request
	replies  []consistency.Reply
	assigns  []consistency.GSNAssign
	batches  []consistency.GSNAssignBatch
	sus      []consistency.StateUpdate
	ids      []consistency.RequestID
}

func (a *decodeArena) putDataMsg(m group.DataMsg) *group.DataMsg {
	if len(a.dataMsgs) == 0 {
		a.dataMsgs = make([]group.DataMsg, arenaSlab)
	}
	p := &a.dataMsgs[0]
	a.dataMsgs = a.dataMsgs[1:]
	*p = m
	return p
}

func (a *decodeArena) putAck(m group.AckMsg) *group.AckMsg {
	if len(a.acks) == 0 {
		a.acks = make([]group.AckMsg, arenaSlab)
	}
	p := &a.acks[0]
	a.acks = a.acks[1:]
	*p = m
	return p
}

func (a *decodeArena) putHeartbeat(m group.HeartbeatMsg) *group.HeartbeatMsg {
	if len(a.hbs) == 0 {
		a.hbs = make([]group.HeartbeatMsg, arenaSlab)
	}
	p := &a.hbs[0]
	a.hbs = a.hbs[1:]
	*p = m
	return p
}

func (a *decodeArena) putRequest(m consistency.Request) *consistency.Request {
	if len(a.reqs) == 0 {
		a.reqs = make([]consistency.Request, arenaSlab)
	}
	p := &a.reqs[0]
	a.reqs = a.reqs[1:]
	*p = m
	return p
}

func (a *decodeArena) putReply(m consistency.Reply) *consistency.Reply {
	if len(a.replies) == 0 {
		a.replies = make([]consistency.Reply, arenaSlab)
	}
	p := &a.replies[0]
	a.replies = a.replies[1:]
	*p = m
	return p
}

func (a *decodeArena) putAssign(m consistency.GSNAssign) *consistency.GSNAssign {
	if len(a.assigns) == 0 {
		a.assigns = make([]consistency.GSNAssign, arenaSlab)
	}
	p := &a.assigns[0]
	a.assigns = a.assigns[1:]
	*p = m
	return p
}

func (a *decodeArena) putAssignBatch(m consistency.GSNAssignBatch) *consistency.GSNAssignBatch {
	if len(a.batches) == 0 {
		a.batches = make([]consistency.GSNAssignBatch, arenaSlab)
	}
	p := &a.batches[0]
	a.batches = a.batches[1:]
	*p = m
	return p
}

func (a *decodeArena) putStateUpdate(m consistency.StateUpdate) *consistency.StateUpdate {
	if len(a.sus) == 0 {
		a.sus = make([]consistency.StateUpdate, arenaSlab)
	}
	p := &a.sus[0]
	a.sus = a.sus[1:]
	*p = m
	return p
}

// requestIDs hands out an n-element RequestID slice from the shared slab.
func (a *decodeArena) requestIDs(n int) []consistency.RequestID {
	if len(a.ids) < n {
		a.ids = make([]consistency.RequestID, max(arenaSlab*4, n))
	}
	out := a.ids[:n:n]
	a.ids = a.ids[n:]
	return out
}

// DecodeShared parses one frame body with shared (zero-copy) semantics:
// decoded byte fields alias body, and hot message types are boxed from the
// decoder's slabs as pointers. The caller must hand ownership of body to
// the decoded message — body must not be reused or mutated afterwards.
// Everything else matches Decode: a frame either decodes exactly or errors.
func (d *FrameDecoder) DecodeShared(body []byte) (from, to node.ID, m node.Message, err error) {
	r := wireReader{b: body, intern: &d.intern, arena: &d.arena}
	if v := r.byte(); r.err == nil && v != WireVersion {
		return "", "", nil, errVersion
	}
	from = r.id()
	to = r.id()
	m = decodeMessage(&r, 0)
	if r.err != nil {
		return "", "", nil, r.err
	}
	if len(r.b) != 0 {
		return "", "", nil, errTrailing
	}
	return from, to, m, nil
}

// Flatten undoes pointer boxing: messages decoded by DecodeShared arrive as
// pointers to slab slots; Flatten returns the equivalent value-boxed
// message (recursing into DataMsg payloads) so code that compares or
// type-asserts on value forms — tests, recorders — can normalize first.
// Value-boxed messages pass through unchanged.
func Flatten(m node.Message) node.Message {
	switch v := m.(type) {
	case *group.DataMsg:
		dm := *v
		dm.Payload = Flatten(dm.Payload)
		return dm
	case group.DataMsg:
		v.Payload = Flatten(v.Payload)
		return v
	case *group.AckMsg:
		return *v
	case *group.HeartbeatMsg:
		return *v
	case *consistency.Request:
		return *v
	case *consistency.Reply:
		return *v
	case *consistency.GSNAssign:
		return *v
	case *consistency.GSNAssignBatch:
		return *v
	case *consistency.StateUpdate:
		return *v
	default:
		return m
	}
}
