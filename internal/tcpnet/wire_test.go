package tcpnet

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// randBytes returns a payload of the given length (nil for 0, matching the
// codec's and gob's nil/empty collapse).
func randBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func randID(rng *rand.Rand, n int) node.ID {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-_."
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return node.ID(b)
}

func randReqID(rng *rand.Rand) consistency.RequestID {
	return consistency.RequestID{Client: randID(rng, 1+rng.Intn(8)), Seq: rng.Uint64()}
}

// wireMessageGenerators produces one generator per registered payload type.
// round 0 yields the zero value, round 1 the max-length-fields case, and
// later rounds randomized instances.
func wireMessageGenerators() map[string]func(rng *rand.Rand, round int) node.Message {
	const maxPayload = 1 << 16
	return map[string]func(rng *rand.Rand, round int) node.Message{
		"group.DataMsg": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				// Zero numeric fields; a nil interface payload is an encode
				// error by design (tested separately), so wrap the empty
				// message instead.
				return group.DataMsg{Payload: consistency.SyncRequest{}}
			case 1:
				return group.DataMsg{SrcEpoch: ^uint64(0), Gen: ^uint64(0), Seq: ^uint64(0),
					Payload: consistency.Request{ID: randReqID(rng), Payload: randBytes(rng, maxPayload)}}
			}
			return group.DataMsg{SrcEpoch: rng.Uint64(), Gen: rng.Uint64(), Seq: rng.Uint64(),
				Payload: consistency.GSNAssign{ID: randReqID(rng), GSN: rng.Uint64(), Update: rng.Intn(2) == 0}}
		},
		"group.AckMsg": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return group.AckMsg{}
			}
			return group.AckMsg{SrcEpoch: rng.Uint64(), DstEpoch: rng.Uint64(), Gen: rng.Uint64(), Expected: rng.Uint64()}
		},
		"group.HeartbeatMsg": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				return group.HeartbeatMsg{}
			case 1:
				return group.HeartbeatMsg{Group: string(randID(rng, 255))}
			}
			return group.HeartbeatMsg{Group: string(randID(rng, 1+rng.Intn(16)))}
		},
		"consistency.Request": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				return consistency.Request{}
			case 1:
				return consistency.Request{ID: randReqID(rng), Method: string(randID(rng, 128)),
					Payload: randBytes(rng, maxPayload), ReadOnly: true, Staleness: int(^uint(0) >> 1)}
			}
			return consistency.Request{ID: randReqID(rng), Method: "Set",
				Payload: randBytes(rng, rng.Intn(64)), ReadOnly: rng.Intn(2) == 0, Staleness: rng.Intn(10) - 1}
		},
		"consistency.Reply": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				return consistency.Reply{}
			case 1:
				return consistency.Reply{ID: randReqID(rng), Payload: randBytes(rng, maxPayload),
					Err: string(randID(rng, 256)), T1: time.Duration(int64(^uint64(0) >> 1)),
					CSN: ^uint64(0), Replica: randID(rng, 64), Deferred: true}
			}
			return consistency.Reply{ID: randReqID(rng), Payload: randBytes(rng, rng.Intn(64)),
				T1:  time.Duration(rng.Int63n(int64(time.Minute))) - time.Second,
				CSN: rng.Uint64(), Replica: randID(rng, 3), Deferred: rng.Intn(2) == 0}
		},
		"consistency.GSNAssign": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.GSNAssign{}
			}
			return consistency.GSNAssign{ID: randReqID(rng), GSN: rng.Uint64(), Update: rng.Intn(2) == 0}
		},
		"consistency.GSNRequest": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.GSNRequest{}
			}
			return consistency.GSNRequest{ID: randReqID(rng), Update: rng.Intn(2) == 0}
		},
		"consistency.BodyRequest": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.BodyRequest{}
			}
			return consistency.BodyRequest{ID: randReqID(rng)}
		},
		"consistency.SyncRequest": func(rng *rand.Rand, round int) node.Message {
			return consistency.SyncRequest{}
		},
		"consistency.GSNQuery": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.GSNQuery{}
			}
			return consistency.GSNQuery{Epoch: rng.Uint64()}
		},
		"consistency.GSNReport": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				return consistency.GSNReport{}
			case 1:
				assigns := make([]consistency.GSNAssign, 1024)
				for i := range assigns {
					assigns[i] = consistency.GSNAssign{
						ID: randReqID(rng), GSN: rng.Uint64(), Update: rng.Intn(2) == 0,
					}
				}
				return consistency.GSNReport{Epoch: rng.Uint64(), GSN: rng.Uint64(), Assigns: assigns}
			default:
				var assigns []consistency.GSNAssign
				for i := 0; i < rng.Intn(4); i++ {
					assigns = append(assigns, consistency.GSNAssign{
						ID: randReqID(rng), GSN: rng.Uint64(), Update: rng.Intn(2) == 0,
					})
				}
				return consistency.GSNReport{Epoch: rng.Uint64(), GSN: rng.Uint64(), Assigns: assigns}
			}
		},
		"consistency.AssignAck": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.AssignAck{}
			}
			return consistency.AssignAck{Epoch: rng.Uint64(), Frontier: rng.Uint64()}
		},
		"consistency.OrderCommit": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.OrderCommit{}
			}
			return consistency.OrderCommit{Epoch: rng.Uint64(), Floor: rng.Uint64()}
		},
		"consistency.StateUpdate": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				return consistency.StateUpdate{}
			case 1:
				ids := make([]consistency.RequestID, 512)
				for i := range ids {
					ids[i] = randReqID(rng)
				}
				return consistency.StateUpdate{CSN: ^uint64(0), Snapshot: randBytes(rng, maxPayload), RecentIDs: ids}
			}
			var ids []consistency.RequestID
			for i := 0; i < rng.Intn(4); i++ {
				ids = append(ids, randReqID(rng))
			}
			return consistency.StateUpdate{CSN: rng.Uint64(), Snapshot: randBytes(rng, rng.Intn(256)), RecentIDs: ids}
		},
		"consistency.PerfBroadcast": func(rng *rand.Rand, round int) node.Message {
			switch round {
			case 0:
				return consistency.PerfBroadcast{}
			case 1:
				return consistency.PerfBroadcast{Replica: randID(rng, 64),
					TS: time.Duration(int64(^uint64(0) >> 1)), TQ: -time.Hour, TB: time.Hour,
					Deferred: true, Primary: true, Sequencer: randID(rng, 64), IsPublisher: true,
					NU: int(^uint(0) >> 1), TU: time.Hour, NL: -(int(^uint(0)>>1) - 1), TL: time.Hour}
			}
			return consistency.PerfBroadcast{Replica: randID(rng, 3),
				TS: time.Duration(rng.Int63n(int64(time.Second))), TQ: time.Duration(rng.Int63n(int64(time.Second))),
				TB: time.Duration(rng.Int63n(int64(time.Second))), Deferred: rng.Intn(2) == 0,
				Primary: rng.Intn(2) == 0, Sequencer: randID(rng, 3), IsPublisher: rng.Intn(2) == 0,
				NU: rng.Intn(100), TU: time.Duration(rng.Int63n(int64(time.Second))),
				NL: rng.Intn(100), TL: time.Duration(rng.Int63n(int64(time.Second)))}
		},
		"consistency.SequencerAnnounce": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.SequencerAnnounce{}
			}
			return consistency.SequencerAnnounce{Sequencer: randID(rng, 1+rng.Intn(16))}
		},
		"consistency.DigestAnnounce": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.DigestAnnounce{}
			}
			return consistency.DigestAnnounce{Applied: rng.Uint64(), Hash: rng.Uint64()}
		},
		"consistency.GSNAssignBatch": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.GSNAssignBatch{}
			}
			m := consistency.GSNAssignBatch{First: rng.Uint64(), ReadGSN: rng.Uint64()}
			for i := rng.Intn(64); i > 0; i-- {
				m.Updates = append(m.Updates, randReqID(rng))
			}
			for i := rng.Intn(64); i > 0; i-- {
				m.Reads = append(m.Reads, randReqID(rng))
			}
			return m
		},
		"consistency.ShardMapAnnounce": func(rng *rand.Rand, round int) node.Message {
			if round == 0 {
				return consistency.ShardMapAnnounce{}
			}
			n := 1 + rng.Intn(16)
			m := consistency.ShardMapAnnounce{Version: rng.Uint64(), Shards: uint32(n)}
			for i := 0; i < n; i++ {
				m.Starts = append(m.Starts, rng.Uint32())
				m.Owners = append(m.Owners, uint32(rng.Intn(n)))
			}
			return m
		},
	}
}

// gobRoundTrip pushes a frame through gob — the reference codec the binary
// wire format replaced — and returns the decoded frame.
func gobRoundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Frame
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// TestWireCodecDifferential round-trips every registered payload type with
// randomized instances (including zero values and max-length fields)
// through both the binary codec and gob, and requires:
//   - the two decoders agree (reflect.DeepEqual),
//   - encoding is byte-stable across runs,
//   - re-encoding a decoded frame reproduces the identical bytes.
func TestWireCodecDifferential(t *testing.T) {
	RegisterProtocolTypes()
	gens := wireMessageGenerators()
	if len(gens) != 19 {
		t.Fatalf("generator table covers %d types, want 19 (one per wire tag)", len(gens))
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(20020623))
			for round := 0; round < 25; round++ {
				m := gen(rng, round)
				from, to := randID(rng, 1+rng.Intn(8)), randID(rng, 1+rng.Intn(8))

				buf, err := AppendFrame(nil, from, to, m)
				if err != nil {
					t.Fatalf("round %d: AppendFrame: %v", round, err)
				}
				buf2, err := AppendFrame(nil, from, to, m)
				if err != nil || !bytes.Equal(buf, buf2) {
					t.Fatalf("round %d: encoding is not byte-stable", round)
				}

				gotFrom, gotTo, gotMsg, err := DecodeFrame(buf[4:])
				if err != nil {
					t.Fatalf("round %d: DecodeFrame: %v", round, err)
				}
				if gotFrom != from || gotTo != to {
					t.Fatalf("round %d: addressing corrupted: %q->%q became %q->%q",
						round, from, to, gotFrom, gotTo)
				}

				ref := gobRoundTrip(t, Frame{From: from, To: to, Payload: m})
				if !reflect.DeepEqual(gotMsg, ref.Payload) {
					t.Fatalf("round %d: wire and gob decode disagree:\nwire: %#v\ngob:  %#v",
						round, gotMsg, ref.Payload)
				}

				re, err := AppendFrame(nil, gotFrom, gotTo, gotMsg)
				if err != nil || !bytes.Equal(buf, re) {
					t.Fatalf("round %d: decode+re-encode does not reproduce the frame bytes", round)
				}
			}
		})
	}
}

// TestWireCodecRejectsUnknown verifies unknown versions and tags are
// rejected — never misdecoded — and that every strict prefix of a valid
// frame body errors instead of panicking or silently succeeding.
func TestWireCodecRejectsUnknown(t *testing.T) {
	buf, err := AppendFrame(nil, "a", "b", consistency.Request{
		ID: consistency.RequestID{Client: "c", Seq: 9}, Method: "Get", Payload: []byte("key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	body := buf[4:]

	// Unknown version byte.
	bad := append([]byte(nil), body...)
	bad[0] = WireVersion + 1
	if _, _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("future version accepted")
	}

	// Unknown type tags, including 0.
	for _, tag := range []byte{0, tagOrderCommit + 1, 0x7f, 0xee, 0xff} {
		raw := []byte{WireVersion, 1, 'a', 1, 'b', tag}
		if _, _, m, err := DecodeFrame(raw); err == nil {
			t.Fatalf("unknown tag %d decoded as %T", tag, m)
		}
	}

	// Trailing bytes after a complete message.
	if _, _, _, err := DecodeFrame(append(append([]byte(nil), body...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	// Every strict prefix must fail cleanly.
	for i := 0; i < len(body); i++ {
		if _, _, _, err := DecodeFrame(body[:i]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", i, len(body))
		}
	}

	// Unregistered payload types are an encode error, not a panic.
	type notRegistered struct{ X int }
	if _, err := AppendFrame(nil, "a", "b", notRegistered{X: 1}); err == nil {
		t.Fatal("unregistered payload type encoded")
	}
}

// TestWireEncodeZeroAlloc is the steady-state encode contract: appending a
// frame to a warm, reused buffer performs zero heap allocations. Both the
// bare protocol message and the group-substrate-wrapped (DataMsg) form —
// the transport's actual hot frame — are covered.
func TestWireEncodeZeroAlloc(t *testing.T) {
	payload := []byte("key=value")
	msgs := []node.Message{
		consistency.Request{ID: consistency.RequestID{Client: "c00", Seq: 7}, Method: "Set", Payload: payload},
		group.DataMsg{SrcEpoch: 3, Gen: 1, Seq: 42, Payload: consistency.Request{
			ID: consistency.RequestID{Client: "c00", Seq: 7}, Method: "Set", Payload: payload}},
		consistency.GSNAssign{ID: consistency.RequestID{Client: "c00", Seq: 7}, GSN: 99, Update: true},
	}
	buf := make([]byte, 0, 4096)
	for _, m := range msgs {
		m := m
		allocs := testing.AllocsPerRun(200, func() {
			b, err := AppendFrame(buf[:0], "p00", "p01", m)
			if err != nil || len(b) == 0 {
				panic("encode failed")
			}
		})
		if allocs != 0 {
			t.Errorf("%T: %v allocs per encoded frame, want 0", m, allocs)
		}
	}
}

// TestWireDecodedPayloadDoesNotAliasInput guards the decode copy rule:
// messages escape into the runtime asynchronously, so decoded byte fields
// must not alias the (reused) read buffer.
func TestWireDecodedPayloadDoesNotAliasInput(t *testing.T) {
	buf, err := AppendFrame(nil, "a", "b", consistency.Request{
		ID: consistency.RequestID{Client: "c", Seq: 1}, Method: "Set", Payload: []byte("hello"),
	})
	if err != nil {
		t.Fatal(err)
	}
	body := buf[4:]
	_, _, m, err := DecodeFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xff // clobber the read buffer, as a reused buffer would be
	}
	if string(m.(consistency.Request).Payload) != "hello" {
		t.Fatal("decoded payload aliases the input buffer")
	}
}
