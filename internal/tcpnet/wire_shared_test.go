package tcpnet

import (
	"reflect"
	"testing"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// TestWireDecodeSharedMatchesDecode pins the shared decoder against the
// copying one across every seed message shape: identical frames must yield
// semantically identical messages (after Flatten normalizes pointer
// boxing), with identical addressing.
func TestWireDecodeSharedMatchesDecode(t *testing.T) {
	var shared, plain FrameDecoder
	for i, m := range fuzzSeedMessages() {
		frame, err := AppendFrame(nil, "p00", "c01", m)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", i, err)
		}
		body := frame[4:]
		f1, t1, m1, err1 := plain.Decode(body)
		// DecodeShared consumes ownership of its body; give it a copy so
		// the two decoders cannot interfere.
		bodyCopy := append([]byte(nil), body...)
		f2, t2, m2, err2 := shared.DecodeShared(bodyCopy)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: decode errs: %v / %v", i, err1, err2)
		}
		if f1 != f2 || t1 != t2 {
			t.Fatalf("seed %d: addressing mismatch: %s->%s vs %s->%s", i, f1, t1, f2, t2)
		}
		if !reflect.DeepEqual(m1, Flatten(m2)) {
			t.Fatalf("seed %d: decoded mismatch:\n plain: %#v\nshared: %#v", i, m1, Flatten(m2))
		}
	}
}

// TestWireDecodeSharedAliasesInput pins the zero-copy contract (the inverse
// of TestWireDecodedPayloadDoesNotAliasInput, which guards the copying
// decoder): byte fields of a shared-decoded message alias the frame body.
func TestWireDecodeSharedAliasesInput(t *testing.T) {
	req := consistency.Request{ID: consistency.RequestID{Client: "c00", Seq: 1},
		Method: "Set", Payload: []byte("payload-bytes")}
	frame, err := AppendFrame(nil, "a", "b", req)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:]
	var d FrameDecoder
	_, _, m, err := d.DecodeShared(body)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*consistency.Request)
	if !ok {
		t.Fatalf("shared decode boxed %T, want *consistency.Request", m)
	}
	if len(got.Payload) == 0 {
		t.Fatal("empty payload")
	}
	inBody := false
	for i := range body {
		if &body[i] == &got.Payload[0] {
			inBody = true
			break
		}
	}
	if !inBody {
		t.Fatal("shared-decoded payload does not alias the frame body; the zero-copy path regressed to copying")
	}
}

// TestWireDecodeSharedZeroAlloc is the inbound counterpart of
// TestWireEncodeZeroAlloc and the satellite alloc guard: steady-state
// decoding of the transport's hot frames with a warm decoder performs zero
// heap allocations per frame. Slabs are primed by a warmup pass sized so
// the measured runs never trigger a slab refill (arenaSlab is larger than
// the run count per message shape).
func TestWireDecodeSharedZeroAlloc(t *testing.T) {
	rid := consistency.RequestID{Client: "c00", Seq: 7}
	msgs := []node.Message{
		group.DataMsg{SrcEpoch: 3, Gen: 1, Seq: 42,
			Payload: consistency.Request{ID: rid, Method: "Set", Payload: []byte("key=value")}},
		group.AckMsg{SrcEpoch: 3, DstEpoch: 2, Gen: 1, Expected: 43},
		consistency.Reply{ID: rid, Payload: []byte("ok"), CSN: 9, Replica: "p01"},
		group.DataMsg{SrcEpoch: 3, Gen: 1, Seq: 43,
			Payload: consistency.GSNAssignBatch{First: 30, Updates: []consistency.RequestID{rid},
				ReadGSN: 31, Reads: []consistency.RequestID{rid}}},
	}
	const runs = 100
	if runs+1 >= arenaSlab {
		t.Fatalf("measured runs %d must stay under arenaSlab %d or refills skew the count", runs, arenaSlab)
	}
	var d FrameDecoder
	for _, m := range msgs {
		frame, err := AppendFrame(nil, "p00", "p01", m)
		if err != nil {
			t.Fatal(err)
		}
		body := frame[4:]
		// Warm the intern table and prime every slab this shape touches.
		if _, _, _, err := d.DecodeShared(body); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(runs, func() {
			if _, _, _, err := d.DecodeShared(body); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Errorf("DecodeShared(%T): %v allocs per frame, want 0", m, allocs)
		}
	}
}

// TestWireEncodePointerFormsMatchValueForms pins that re-encoding a
// pointer-boxed message (as a forwarding node would after a shared decode)
// produces byte-identical frames to the value form.
func TestWireEncodePointerFormsMatchValueForms(t *testing.T) {
	rid := consistency.RequestID{Client: "c00", Seq: 7}
	su := consistency.StateUpdate{CSN: 5, Snapshot: []byte{1, 2, 3},
		RecentIDs: []consistency.RequestID{rid}}
	pairs := []struct{ val, ptr node.Message }{
		{group.AckMsg{SrcEpoch: 1, Gen: 2, Expected: 3}, &group.AckMsg{SrcEpoch: 1, Gen: 2, Expected: 3}},
		{group.HeartbeatMsg{Group: "g"}, &group.HeartbeatMsg{Group: "g"}},
		{consistency.Request{ID: rid, Method: "Get"}, &consistency.Request{ID: rid, Method: "Get"}},
		{consistency.Reply{ID: rid, CSN: 4}, &consistency.Reply{ID: rid, CSN: 4}},
		{consistency.GSNAssign{ID: rid, GSN: 9}, &consistency.GSNAssign{ID: rid, GSN: 9}},
		{consistency.GSNAssignBatch{First: 1}, &consistency.GSNAssignBatch{First: 1}},
		{su, &su},
		{group.DataMsg{Seq: 1, Payload: consistency.Request{ID: rid}},
			&group.DataMsg{Seq: 1, Payload: &consistency.Request{ID: rid}}},
	}
	for i, p := range pairs {
		a, err1 := AppendFrame(nil, "x", "y", p.val)
		b, err2 := AppendFrame(nil, "x", "y", p.ptr)
		if err1 != nil || err2 != nil {
			t.Fatalf("pair %d: %v / %v", i, err1, err2)
		}
		if string(a) != string(b) {
			t.Fatalf("pair %d (%T): pointer form encodes differently", i, p.val)
		}
	}
}
