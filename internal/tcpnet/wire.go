// Binary wire codec for the live transport. Frames are length-prefixed and
// hand-encoded — one type tag per registered protocol message, uvarint
// integers, zigzag varints for signed quantities — replacing the
// reflection-driven gob stream. The encoder is append-style over a caller
// owned buffer, so the steady-state encode path performs zero heap
// allocations per frame; the decoder copies variable-length fields out of
// the (reused) read buffer because decoded messages escape into the
// runtime asynchronously.
//
// Frame layout (all multi-byte fixed integers big-endian):
//
//	uint32  length of the body that follows (excludes these 4 bytes)
//	byte    wire version (currently 1)
//	string  From node ID   (uvarint length + bytes)
//	string  To node ID     (uvarint length + bytes)
//	byte    type tag       (see the tag table below)
//	...     message fields, in struct declaration order
//
// Field encodings: uint64 → uvarint; int / time.Duration → zigzag varint;
// bool → one byte (0/1); string and []byte → uvarint length + bytes
// (length 0 decodes as nil/""); RequestID → Client string + Seq uvarint;
// []RequestID → uvarint count + elements. group.DataMsg nests its payload
// as a complete tagged message (bounded depth).
//
// Evolution policy (see DESIGN.md §9): tags are append-only and never
// reused; changing a message's field set requires either a new tag or a
// wire version bump. Decoders reject unknown versions and unknown tags
// outright — a frame is never misdecoded into the wrong type — and the
// connection is dropped, so the peers resynchronize on re-dial and the
// group substrate's retransmission recovers the traffic.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// WireVersion is the current frame format version.
const WireVersion = 1

// maxFrameBytes bounds a single frame (StateUpdate snapshots are the large
// case); oversized or negative lengths indicate a desynchronized or hostile
// stream and drop the connection.
const maxFrameBytes = 64 << 20

// maxPayloadNest bounds recursive DataMsg payload nesting during decode.
const maxPayloadNest = 8

// Type tags, append-only. Tag 0 is reserved as invalid forever.
const (
	tagDataMsg           = 1
	tagAckMsg            = 2
	tagHeartbeatMsg      = 3
	tagRequest           = 4
	tagReply             = 5
	tagGSNAssign         = 6
	tagGSNRequest        = 7
	tagBodyRequest       = 8
	tagSyncRequest       = 9
	tagGSNQuery          = 10
	tagGSNReport         = 11
	tagStateUpdate       = 12
	tagPerfBroadcast     = 13
	tagSequencerAnnounce = 14
	tagDigestAnnounce    = 15
	tagGSNAssignBatch    = 16
	tagShardMapAnnounce  = 17
	tagAssignAck         = 18
	tagOrderCommit       = 19
)

var (
	errTruncated  = errors.New("tcpnet: truncated frame")
	errUnknownTag = errors.New("tcpnet: unknown wire type tag")
	errVersion    = errors.New("tcpnet: unsupported wire version")
	errTrailing   = errors.New("tcpnet: trailing bytes after frame")
	errNested     = errors.New("tcpnet: payload nesting too deep")
	errFrameSize  = errors.New("tcpnet: frame exceeds size limit")
)

// AppendFrame appends the complete wire encoding of one frame — length
// prefix included — to buf and returns the extended buffer. On error buf is
// returned truncated to its original length. It allocates only when buf
// lacks capacity, so a writer reusing its buffer encodes frames without
// heap allocations.
func AppendFrame(buf []byte, from, to node.ID, m node.Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length backpatched below
	buf = append(buf, WireVersion)
	buf = appendString(buf, string(from))
	buf = appendString(buf, string(to))
	buf, err := appendMessage(buf, m, 0)
	if err != nil {
		return buf[:start], err
	}
	n := len(buf) - start - 4
	if n > maxFrameBytes {
		return buf[:start], errFrameSize
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// stateUpdateCache memoizes the encoded body of the most recently seen
// StateUpdate payload. The lazy publisher builds one StateUpdate per tick
// and fans it out to every secondary, so the DataMsg frames bound for
// different peers carry payloads whose CSN and slice identities match
// exactly; the first writer to encode the tick's snapshot pays for it, the
// rest splice the cached bytes. Identity keying (same backing arrays, not
// equal contents) makes false hits impossible. The cached body slice is
// immutable once published — replacements allocate fresh storage — so
// returning it outside the lock is safe.
type stateUpdateCache struct {
	mu   sync.Mutex
	csn  uint64
	snap []byte
	ids  []consistency.RequestID
	body []byte
}

func sameByteSlice(a, b []byte) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func sameIDSlice(a, b []consistency.RequestID) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// encoded returns the tagged wire encoding of su, reusing the cached bytes
// when su shares the previous call's CSN and backing arrays.
func (c *stateUpdateCache) encoded(su consistency.StateUpdate) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.body != nil && su.CSN == c.csn && sameByteSlice(su.Snapshot, c.snap) && sameIDSlice(su.RecentIDs, c.ids) {
		return c.body
	}
	b, err := appendMessage(make([]byte, 0, 64+len(su.Snapshot)), su, 0)
	if err != nil {
		return nil // unreachable: StateUpdate always has a wire tag
	}
	c.csn, c.snap, c.ids, c.body = su.CSN, su.Snapshot, su.RecentIDs, b
	return b
}

// appendFrameCached is AppendFrame with the fan-out encode cache spliced
// in: a DataMsg carrying a StateUpdate reuses the cached payload encoding
// when the same snapshot was just encoded for another peer. Byte output is
// identical to AppendFrame's.
func (t *Transport) appendFrameCached(buf []byte, from, to node.ID, m node.Message) ([]byte, error) {
	dm, ok := m.(group.DataMsg)
	if !ok {
		if p, isPtr := m.(*group.DataMsg); isPtr {
			dm = *p
		} else {
			return AppendFrame(buf, from, to, m)
		}
	}
	su, ok := dm.Payload.(consistency.StateUpdate)
	if !ok {
		if p, isPtr := dm.Payload.(*consistency.StateUpdate); isPtr {
			su = *p
		} else {
			return AppendFrame(buf, from, to, m)
		}
	}
	body := t.suCache.encoded(su)
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, WireVersion)
	buf = appendString(buf, string(from))
	buf = appendString(buf, string(to))
	buf = append(buf, tagDataMsg)
	buf = appendUvarint(buf, dm.SrcEpoch)
	buf = appendUvarint(buf, dm.Gen)
	buf = appendUvarint(buf, dm.Seq)
	buf = append(buf, body...)
	n := len(buf) - start - 4
	if n > maxFrameBytes {
		return buf[:start], errFrameSize
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// appendFrameVec is appendFrameCached for the vectored flush: a DataMsg
// carrying a StateUpdate appends only the frame header (length prefix
// covering header+body, addressing, DataMsg fields) to buf and returns the
// cached payload encoding separately, so the writer can splice it into a
// net.Buffers write instead of copying it per peer. Every other message
// appends fully with cached == nil. Wire bytes are identical to
// AppendFrame's.
func (t *Transport) appendFrameVec(buf []byte, from, to node.ID, m node.Message) (out, cached []byte, err error) {
	dm, ok := m.(group.DataMsg)
	if !ok {
		if p, isPtr := m.(*group.DataMsg); isPtr {
			dm = *p
		} else {
			out, err = AppendFrame(buf, from, to, m)
			return out, nil, err
		}
	}
	su, ok := dm.Payload.(consistency.StateUpdate)
	if !ok {
		if p, isPtr := dm.Payload.(*consistency.StateUpdate); isPtr {
			su = *p
		} else {
			out, err = AppendFrame(buf, from, to, m)
			return out, nil, err
		}
	}
	body := t.suCache.encoded(su)
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, WireVersion)
	buf = appendString(buf, string(from))
	buf = appendString(buf, string(to))
	buf = append(buf, tagDataMsg)
	buf = appendUvarint(buf, dm.SrcEpoch)
	buf = appendUvarint(buf, dm.Gen)
	buf = appendUvarint(buf, dm.Seq)
	n := len(buf) - start - 4 + len(body)
	if n > maxFrameBytes {
		return buf[:start], nil, errFrameSize
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, body, nil
}

// DecodeFrame parses one frame body (the bytes after the 4-byte length
// prefix). Variable-length fields are copied out of body, so the caller may
// reuse it. Unknown versions or type tags, truncated fields, and trailing
// bytes are all errors — a frame either decodes exactly or not at all.
func DecodeFrame(body []byte) (from, to node.ID, m node.Message, err error) {
	var d FrameDecoder
	return d.Decode(body)
}

// FrameDecoder is DecodeFrame plus a small intern cache for the short
// strings every frame repeats (node IDs, method names), so steady-state
// decoding of a connection's traffic does not re-allocate them per frame,
// and typed slabs backing the zero-copy DecodeShared path (wirearena.go).
// Not safe for concurrent use; each read loop owns one.
type FrameDecoder struct {
	intern internTable
	arena  decodeArena
}

// Decode is DecodeFrame against this decoder's intern cache.
func (d *FrameDecoder) Decode(body []byte) (from, to node.ID, m node.Message, err error) {
	r := wireReader{b: body, intern: &d.intern}
	if v := r.byte(); r.err == nil && v != WireVersion {
		return "", "", nil, errVersion
	}
	from = r.id()
	to = r.id()
	m = decodeMessage(&r, 0)
	if r.err != nil {
		return "", "", nil, r.err
	}
	if len(r.b) != 0 {
		return "", "", nil, errTrailing
	}
	return from, to, m, nil
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendDuration(b []byte, d time.Duration) []byte {
	return binary.AppendVarint(b, int64(d))
}

func appendRequestID(b []byte, id consistency.RequestID) []byte {
	b = appendString(b, string(id.Client))
	return binary.AppendUvarint(b, id.Seq)
}

// appendMessage writes the tag plus fields of every protocol message type.
// Unregistered types are an error (the frame is dropped and counted), the
// same contract gob's unregistered-type failure gave the old transport.
func appendMessage(b []byte, m node.Message, depth int) ([]byte, error) {
	if depth > maxPayloadNest {
		return b, errNested
	}
	switch v := m.(type) {
	// Pointer forms come from DecodeShared's slab boxing; a node that
	// forwards a received message re-encodes it here, so both forms are
	// accepted and produce identical bytes.
	case *group.DataMsg:
		return appendMessage(b, *v, depth)
	case *group.AckMsg:
		return appendMessage(b, *v, depth)
	case *group.HeartbeatMsg:
		return appendMessage(b, *v, depth)
	case *consistency.Request:
		return appendMessage(b, *v, depth)
	case *consistency.Reply:
		return appendMessage(b, *v, depth)
	case *consistency.GSNAssign:
		return appendMessage(b, *v, depth)
	case *consistency.GSNAssignBatch:
		return appendMessage(b, *v, depth)
	case *consistency.StateUpdate:
		return appendMessage(b, *v, depth)
	case group.DataMsg:
		b = append(b, tagDataMsg)
		b = appendUvarint(b, v.SrcEpoch)
		b = appendUvarint(b, v.Gen)
		b = appendUvarint(b, v.Seq)
		return appendMessage(b, v.Payload, depth+1)
	case group.AckMsg:
		b = append(b, tagAckMsg)
		b = appendUvarint(b, v.SrcEpoch)
		b = appendUvarint(b, v.DstEpoch)
		b = appendUvarint(b, v.Gen)
		return appendUvarint(b, v.Expected), nil
	case group.HeartbeatMsg:
		b = append(b, tagHeartbeatMsg)
		return appendString(b, v.Group), nil
	case consistency.Request:
		b = append(b, tagRequest)
		b = appendRequestID(b, v.ID)
		b = appendString(b, v.Method)
		b = appendBytes(b, v.Payload)
		b = appendBool(b, v.ReadOnly)
		return binary.AppendVarint(b, int64(v.Staleness)), nil
	case consistency.Reply:
		b = append(b, tagReply)
		b = appendRequestID(b, v.ID)
		b = appendBytes(b, v.Payload)
		b = appendString(b, v.Err)
		b = appendDuration(b, v.T1)
		b = appendUvarint(b, v.CSN)
		b = appendString(b, string(v.Replica))
		return appendBool(b, v.Deferred), nil
	case consistency.GSNAssign:
		b = append(b, tagGSNAssign)
		b = appendRequestID(b, v.ID)
		b = appendUvarint(b, v.GSN)
		return appendBool(b, v.Update), nil
	case consistency.GSNRequest:
		b = append(b, tagGSNRequest)
		b = appendRequestID(b, v.ID)
		return appendBool(b, v.Update), nil
	case consistency.BodyRequest:
		b = append(b, tagBodyRequest)
		return appendRequestID(b, v.ID), nil
	case consistency.SyncRequest:
		return append(b, tagSyncRequest), nil
	case consistency.GSNQuery:
		b = append(b, tagGSNQuery)
		return appendUvarint(b, v.Epoch), nil
	case consistency.GSNReport:
		b = append(b, tagGSNReport)
		b = appendUvarint(b, v.Epoch)
		b = appendUvarint(b, v.GSN)
		b = appendUvarint(b, uint64(len(v.Assigns)))
		for _, a := range v.Assigns {
			b = appendRequestID(b, a.ID)
			b = appendUvarint(b, a.GSN)
			b = appendBool(b, a.Update)
		}
		return b, nil
	case consistency.AssignAck:
		b = append(b, tagAssignAck)
		b = appendUvarint(b, v.Epoch)
		return appendUvarint(b, v.Frontier), nil
	case consistency.OrderCommit:
		b = append(b, tagOrderCommit)
		b = appendUvarint(b, v.Epoch)
		return appendUvarint(b, v.Floor), nil
	case consistency.StateUpdate:
		b = append(b, tagStateUpdate)
		b = appendUvarint(b, v.CSN)
		b = appendBytes(b, v.Snapshot)
		b = appendUvarint(b, uint64(len(v.RecentIDs)))
		for _, id := range v.RecentIDs {
			b = appendRequestID(b, id)
		}
		return b, nil
	case consistency.PerfBroadcast:
		b = append(b, tagPerfBroadcast)
		b = appendString(b, string(v.Replica))
		b = appendDuration(b, v.TS)
		b = appendDuration(b, v.TQ)
		b = appendDuration(b, v.TB)
		b = appendBool(b, v.Deferred)
		b = appendBool(b, v.Primary)
		b = appendString(b, string(v.Sequencer))
		b = appendBool(b, v.IsPublisher)
		b = binary.AppendVarint(b, int64(v.NU))
		b = appendDuration(b, v.TU)
		b = binary.AppendVarint(b, int64(v.NL))
		return appendDuration(b, v.TL), nil
	case consistency.SequencerAnnounce:
		b = append(b, tagSequencerAnnounce)
		return appendString(b, string(v.Sequencer)), nil
	case consistency.DigestAnnounce:
		b = append(b, tagDigestAnnounce)
		b = appendUvarint(b, v.Applied)
		return appendUvarint(b, v.Hash), nil
	case consistency.GSNAssignBatch:
		b = append(b, tagGSNAssignBatch)
		b = appendUvarint(b, v.First)
		b = appendUvarint(b, uint64(len(v.Updates)))
		for _, id := range v.Updates {
			b = appendRequestID(b, id)
		}
		b = appendUvarint(b, v.ReadGSN)
		b = appendUvarint(b, uint64(len(v.Reads)))
		for _, id := range v.Reads {
			b = appendRequestID(b, id)
		}
		return b, nil
	case consistency.ShardMapAnnounce:
		b = append(b, tagShardMapAnnounce)
		b = appendUvarint(b, v.Version)
		b = appendUvarint(b, uint64(v.Shards))
		b = appendUvarint(b, uint64(len(v.Starts)))
		for _, s := range v.Starts {
			b = appendUvarint(b, uint64(s))
		}
		b = appendUvarint(b, uint64(len(v.Owners)))
		for _, o := range v.Owners {
			b = appendUvarint(b, uint64(o))
		}
		return b, nil
	default:
		return b, fmt.Errorf("tcpnet: message type %T has no wire tag; add one in wire.go", m)
	}
}

// wireReader is a fail-latching cursor over a frame body: the first parse
// error sticks, subsequent reads return zero values, and the caller checks
// err once at the end.
type wireReader struct {
	intern *internTable
	arena  *decodeArena // non-nil: shared decode (alias bytes, slab boxing)
	b      []byte
	err    error
}

func (r *wireReader) fail(err error) {
	if r.err == nil {
		r.err = err
		r.b = nil
	}
}

func (r *wireReader) byte() byte {
	if len(r.b) == 0 {
		r.fail(errTruncated)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(errTruncated)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) bool_() bool { return r.byte() != 0 }

func (r *wireReader) duration() time.Duration { return time.Duration(r.varint()) }

// bytes returns a copy of the next length-prefixed byte field (nil for
// length 0, matching gob's omitted-zero-field decoding).
func (r *wireReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(errTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	if r.arena != nil {
		// Shared decode: alias the frame body instead of copying. The
		// DecodeShared contract transfers buffer ownership to the message.
		out := r.b[:n:n]
		r.b = r.b[n:]
		return out
	}
	out := make([]byte, n)
	copy(out, r.b[:n])
	r.b = r.b[n:]
	return out
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail(errTruncated)
		return ""
	}
	s := r.intern.get(r.b[:n])
	r.b = r.b[n:]
	return s
}

// internTable is a direct-mapped cache of short decoded strings. A
// connection's frames repeat a tiny vocabulary — node IDs, method names —
// so a hit returns the previously allocated string instead of copying the
// bytes again. Misses (and strings too long to be worth caching) fall back
// to a plain copy; correctness never depends on a hit, only allocation
// count does. Strings are immutable, so sharing them across decoded
// messages is safe. Single-goroutine use only.
type internTable struct {
	slots [128]string
}

func (t *internTable) get(b []byte) string {
	if t == nil || len(b) == 0 || len(b) > 64 {
		return string(b)
	}
	h := uint32(2166136261) // FNV-1a
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	s := &t.slots[h%uint32(len(t.slots))]
	if *s == string(b) { // compiled as an alloc-free comparison
		return *s
	}
	*s = string(b)
	return *s
}

func (r *wireReader) id() node.ID { return node.ID(r.str()) }

func (r *wireReader) requestID() consistency.RequestID {
	return consistency.RequestID{Client: r.id(), Seq: r.uvarint()}
}

// requestIDs decodes a length-prefixed RequestID list (nil for length 0),
// bounding the count by the remaining bytes before allocating.
// uint32s decodes a uvarint-counted list of uvarint-encoded uint32 values.
func (r *wireReader) uint32s() []uint32 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Every element costs >= 1 byte on the wire, so a count beyond the
	// remaining bytes is a truncated frame — reject before allocating.
	if n > uint64(len(r.b)) {
		r.fail(errTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(r.uvarint())
	}
	return out
}

// gsnAssigns decodes a length-prefixed list of GSN assignments (a
// GSNReport's takeover-merge memo). Always heap-allocated: reports are rare
// failover traffic, not worth arena space.
func (r *wireReader) gsnAssigns() []consistency.GSNAssign {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Every GSNAssign costs >= 4 bytes on the wire (id >= 2, gsn, update),
	// so a count above len/4 cannot decode — reject it before it sizes the
	// allocation.
	if n > uint64(len(r.b))/4 {
		r.fail(errTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]consistency.GSNAssign, n)
	for i := range out {
		out[i].ID = r.requestID()
		out[i].GSN = r.uvarint()
		out[i].Update = r.bool_()
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *wireReader) requestIDs() []consistency.RequestID {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Every RequestID costs >= 2 bytes on the wire, so a count above len/2
	// cannot decode — reject it before it sizes the allocation.
	if n > uint64(len(r.b))/2 {
		r.fail(errTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	var out []consistency.RequestID
	if r.arena != nil {
		out = r.arena.requestIDs(int(n))
	} else {
		out = make([]consistency.RequestID, n)
	}
	for i := range out {
		out[i] = r.requestID()
	}
	return out
}

func decodeMessage(r *wireReader, depth int) node.Message {
	if depth > maxPayloadNest {
		r.fail(errNested)
		return nil
	}
	switch tag := r.byte(); tag {
	case tagDataMsg:
		var m group.DataMsg
		m.SrcEpoch = r.uvarint()
		m.Gen = r.uvarint()
		m.Seq = r.uvarint()
		m.Payload = decodeMessage(r, depth+1)
		if r.arena != nil {
			return r.arena.putDataMsg(m)
		}
		return m
	case tagAckMsg:
		var m group.AckMsg
		m.SrcEpoch = r.uvarint()
		m.DstEpoch = r.uvarint()
		m.Gen = r.uvarint()
		m.Expected = r.uvarint()
		if r.arena != nil {
			return r.arena.putAck(m)
		}
		return m
	case tagHeartbeatMsg:
		if r.arena != nil {
			return r.arena.putHeartbeat(group.HeartbeatMsg{Group: r.str()})
		}
		return group.HeartbeatMsg{Group: r.str()}
	case tagRequest:
		var m consistency.Request
		m.ID = r.requestID()
		m.Method = r.str()
		m.Payload = r.bytes()
		m.ReadOnly = r.bool_()
		m.Staleness = int(r.varint())
		if r.arena != nil {
			return r.arena.putRequest(m)
		}
		return m
	case tagReply:
		var m consistency.Reply
		m.ID = r.requestID()
		m.Payload = r.bytes()
		m.Err = r.str()
		m.T1 = r.duration()
		m.CSN = r.uvarint()
		m.Replica = r.id()
		m.Deferred = r.bool_()
		if r.arena != nil {
			return r.arena.putReply(m)
		}
		return m
	case tagGSNAssign:
		var m consistency.GSNAssign
		m.ID = r.requestID()
		m.GSN = r.uvarint()
		m.Update = r.bool_()
		if r.arena != nil {
			return r.arena.putAssign(m)
		}
		return m
	case tagGSNRequest:
		var m consistency.GSNRequest
		m.ID = r.requestID()
		m.Update = r.bool_()
		return m
	case tagBodyRequest:
		return consistency.BodyRequest{ID: r.requestID()}
	case tagSyncRequest:
		return consistency.SyncRequest{}
	case tagGSNQuery:
		return consistency.GSNQuery{Epoch: r.uvarint()}
	case tagGSNReport:
		var m consistency.GSNReport
		m.Epoch = r.uvarint()
		m.GSN = r.uvarint()
		m.Assigns = r.gsnAssigns()
		return m
	case tagAssignAck:
		var m consistency.AssignAck
		m.Epoch = r.uvarint()
		m.Frontier = r.uvarint()
		return m
	case tagOrderCommit:
		var m consistency.OrderCommit
		m.Epoch = r.uvarint()
		m.Floor = r.uvarint()
		return m
	case tagStateUpdate:
		var m consistency.StateUpdate
		m.CSN = r.uvarint()
		m.Snapshot = r.bytes()
		m.RecentIDs = r.requestIDs()
		if r.arena != nil {
			return r.arena.putStateUpdate(m)
		}
		return m
	case tagPerfBroadcast:
		var m consistency.PerfBroadcast
		m.Replica = r.id()
		m.TS = r.duration()
		m.TQ = r.duration()
		m.TB = r.duration()
		m.Deferred = r.bool_()
		m.Primary = r.bool_()
		m.Sequencer = r.id()
		m.IsPublisher = r.bool_()
		m.NU = int(r.varint())
		m.TU = r.duration()
		m.NL = int(r.varint())
		m.TL = r.duration()
		return m
	case tagSequencerAnnounce:
		return consistency.SequencerAnnounce{Sequencer: r.id()}
	case tagDigestAnnounce:
		var m consistency.DigestAnnounce
		m.Applied = r.uvarint()
		m.Hash = r.uvarint()
		return m
	case tagGSNAssignBatch:
		var m consistency.GSNAssignBatch
		m.First = r.uvarint()
		m.Updates = r.requestIDs()
		m.ReadGSN = r.uvarint()
		m.Reads = r.requestIDs()
		if r.arena != nil {
			return r.arena.putAssignBatch(m)
		}
		return m
	case tagShardMapAnnounce:
		var m consistency.ShardMapAnnounce
		m.Version = r.uvarint()
		m.Shards = uint32(r.uvarint())
		m.Starts = r.uint32s()
		m.Owners = r.uint32s()
		return m
	default:
		r.fail(errUnknownTag)
		return nil
	}
}
