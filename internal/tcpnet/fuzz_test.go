package tcpnet

import (
	"reflect"
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// fuzzSeedMessages covers every wire tag, nesting included, so the fuzzer
// starts from structurally valid frames of each shape and mutates from
// there. Kept in one place so the checked-in corpus generator (see
// testdata/fuzz) and f.Add agree.
func fuzzSeedMessages() []node.Message {
	rid := consistency.RequestID{Client: "c00", Seq: 7}
	return []node.Message{
		group.DataMsg{SrcEpoch: 1, Gen: 2, Seq: 3,
			Payload: consistency.Request{ID: rid, Method: "Set",
				Payload: []byte("k=v"), Staleness: 2}},
		group.AckMsg{SrcEpoch: 1, DstEpoch: 2, Gen: 3, Expected: 4},
		group.HeartbeatMsg{Group: "primaries"},
		consistency.Request{ID: rid, Method: "Get", ReadOnly: true, Staleness: -1},
		consistency.Reply{ID: rid, Payload: []byte("ok"), Err: "",
			T1: 3 * time.Millisecond, CSN: 9, Replica: "p01", Deferred: true},
		consistency.GSNAssign{ID: rid, GSN: 12, Update: true},
		consistency.GSNRequest{ID: rid, Update: false},
		consistency.BodyRequest{ID: rid},
		consistency.SyncRequest{},
		consistency.GSNQuery{Epoch: 3},
		consistency.GSNReport{Epoch: 3, GSN: 44},
		consistency.StateUpdate{CSN: 5, Snapshot: []byte{1, 2, 3},
			RecentIDs: []consistency.RequestID{rid, {Client: "c01", Seq: 1}}},
		consistency.PerfBroadcast{Replica: "s00", TS: time.Millisecond,
			TQ: 2 * time.Millisecond, TB: 0, Deferred: true, Primary: false,
			Sequencer: "p00", IsPublisher: true, NU: 3, TU: time.Second,
			NL: -1, TL: -time.Millisecond},
		consistency.SequencerAnnounce{Sequencer: "p02"},
		consistency.DigestAnnounce{Applied: 17, Hash: 0xdeadbeef},
		consistency.GSNAssignBatch{First: 30,
			Updates: []consistency.RequestID{rid, {Client: "c01", Seq: 2}},
			ReadGSN: 31,
			Reads:   []consistency.RequestID{{Client: "c02", Seq: 5}}},
		consistency.ShardMapAnnounce{Version: 2, Shards: 4,
			Starts: []uint32{0, 1 << 30, 1 << 31, 3 << 30},
			Owners: []uint32{0, 1, 2, 3}},
		group.DataMsg{SrcEpoch: 1, Gen: 1, Seq: 9,
			Payload: consistency.GSNAssignBatch{First: 4,
				Updates: []consistency.RequestID{rid}, ReadGSN: 4}},
	}
}

// FuzzFrameDecoder feeds arbitrary bytes to the wire decoder. The contract
// under test is the one DESIGN.md §9 promises: a frame either decodes
// exactly or errors — never panics, never misdecodes — and anything that
// decodes survives an encode/decode round trip unchanged.
func FuzzFrameDecoder(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		buf, err := AppendFrame(nil, "p00", "s01", m)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf[4:]) // frame body, as the read loop hands it to Decode
	}
	f.Add([]byte{})
	f.Add([]byte{WireVersion})
	f.Fuzz(func(t *testing.T, body []byte) {
		var d FrameDecoder
		from, to, m, err := d.Decode(body)
		if err != nil {
			return // rejected cleanly; the transport drops the connection
		}
		buf, err := AppendFrame(nil, from, to, m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%#v)", err, m)
		}
		from2, to2, m2, err := DecodeFrame(buf[4:])
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v (%#v)", err, m)
		}
		if from2 != from || to2 != to || !reflect.DeepEqual(m2, m) {
			t.Fatalf("round trip drifted:\n first %q->%q %#v\nsecond %q->%q %#v",
				from, to, m, from2, to2, m2)
		}
	})
}
