// Per-peer writer goroutines. Send enqueues onto a bounded ring and
// returns; the peer's writer goroutine owns the connection, performs every
// dial (with retry, backoff, and cooldown) off the caller path, and
// coalesces whatever is queued at each wakeup into a single buffered write
// — amortizing encode buffers and syscalls under load. Ring overflow is a
// counted drop recovered by the group substrate's retransmission, the same
// contract the old blocking transport gave unreachable peers.
package tcpnet

import (
	"net"
	"sync"
	"time"

	"aqua/internal/node"
)

// DefaultSendQueue is the per-peer send ring capacity (frames) unless
// overridden with WithSendQueue.
const DefaultSendQueue = 1024

// frameRec is one queued frame awaiting encode+flush.
type frameRec struct {
	from, to node.ID
	msg      node.Message
}

type peerWriter struct {
	t    *Transport
	addr string

	mu     sync.Mutex
	ring   []frameRec
	head   int // index of the oldest queued frame
	count  int // queued frames
	closed bool
	wake   chan struct{} // capacity 1: wakeup signal

	// connMu guards the conn pointer only; the writer goroutine performs
	// I/O outside the lock (net.Conn.Close concurrent with Write is safe
	// and is how Close unblocks a writer mid-flush).
	connMu sync.Mutex
	conn   net.Conn

	stop chan struct{} // closed by shutdown; interrupts dial backoff

	// Writer-goroutine-private state, reused across flushes so the
	// steady-state encode path allocates nothing per frame.
	batch         []frameRec
	buf           []byte
	splices       []vecSplice
	nbScratch     [][]byte
	cooldownUntil time.Time
}

// vecSplice marks a point in the flush buffer where a cached StateUpdate
// body belongs. Offsets (not sub-slices) because buf may reallocate while
// later frames append to it; the net.Buffers view is materialized only
// after the whole batch is encoded.
type vecSplice struct {
	off  int    // buf offset the body is spliced after
	body []byte // cached, immutable encoded payload
}

func newPeerWriter(t *Transport, addr string, queueCap int) *peerWriter {
	return &peerWriter{
		t:    t,
		addr: addr,
		ring: make([]frameRec, queueCap),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
}

// enqueue queues one frame for the writer goroutine. It never blocks, never
// dials, and never sleeps — the Send latency contract. A full ring is a
// counted drop.
func (w *peerWriter) enqueue(from, to node.ID, m node.Message) {
	w.mu.Lock()
	if w.closed || w.count == len(w.ring) {
		w.mu.Unlock()
		w.t.ins.drops.Inc()
		return
	}
	w.ring[(w.head+w.count)%len(w.ring)] = frameRec{from: from, to: to, msg: m}
	w.count++
	w.mu.Unlock()
	w.t.ins.queueDepth.Add(1)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// run is the writer goroutine: sleep until woken, drain the ring, flush the
// whole batch in one write.
func (w *peerWriter) run() {
	defer w.t.wg.Done()
	defer w.setConn(nil)
	for {
		w.mu.Lock()
		for w.count == 0 && !w.closed {
			w.mu.Unlock()
			<-w.wake
			w.mu.Lock()
		}
		if w.closed {
			w.mu.Unlock()
			return
		}
		w.batch = w.batch[:0]
		for w.count > 0 {
			w.batch = append(w.batch, w.ring[w.head])
			w.ring[w.head] = frameRec{} // drop the message reference
			w.head = (w.head + 1) % len(w.ring)
			w.count--
		}
		w.mu.Unlock()
		w.t.ins.queueDepth.Add(-int64(len(w.batch)))
		w.flush()
	}
}

// flush encodes the drained batch into the reused buffer and writes it in
// one syscall. Frames whose tail is a cached StateUpdate body are not
// copied into the buffer: flush records a splice point and hands the kernel
// a vectored net.Buffers write ([header|...|header, cached-body, ...]), so
// a fan-out of large snapshots moves each body zero extra times. Connection
// setup (and its retry/backoff/cooldown) happens here, on the writer
// goroutine, never on a Send caller.
func (w *peerWriter) flush() {
	if w.getConn() == nil && !w.dial() {
		w.t.ins.drops.Add(uint64(len(w.batch)))
		return
	}
	w.buf = w.buf[:0]
	w.splices = w.splices[:0]
	vectored := !w.t.legacyIn
	frames := 0
	for i := range w.batch {
		f := &w.batch[i]
		var b, cached []byte
		var err error
		if vectored {
			b, cached, err = w.t.appendFrameVec(w.buf, f.from, f.to, f.msg)
		} else {
			b, err = w.t.appendFrameCached(w.buf, f.from, f.to, f.msg)
		}
		if err != nil {
			w.t.ins.drops.Inc() // unregistered type: skip, keep the rest
			continue
		}
		w.buf = b
		if cached != nil {
			w.splices = append(w.splices, vecSplice{off: len(b), body: cached})
		}
		frames++
	}
	if frames == 0 {
		return
	}
	w.t.ins.flushBatch.Observe(float64(frames))
	conn := w.getConn()
	if conn == nil { // Close raced us
		w.t.ins.drops.Add(uint64(frames))
		return
	}
	total := len(w.buf)
	var err error
	if len(w.splices) == 0 {
		_, err = conn.Write(w.buf)
	} else {
		// Materialize the vectored view: buffer segments between splice
		// points interleaved with the cached bodies, then one writev.
		w.nbScratch = w.nbScratch[:0]
		prev := 0
		for _, sp := range w.splices {
			if sp.off > prev {
				w.nbScratch = append(w.nbScratch, w.buf[prev:sp.off])
			}
			w.nbScratch = append(w.nbScratch, sp.body)
			total += len(sp.body)
			prev = sp.off
		}
		if prev < len(w.buf) {
			w.nbScratch = append(w.nbScratch, w.buf[prev:])
		}
		nb := net.Buffers(w.nbScratch)
		_, err = nb.WriteTo(conn)
	}
	if err != nil {
		// Broken pipe: drop the batch and the connection; the next flush
		// re-dials and the group layer retransmits.
		w.t.ins.drops.Add(uint64(frames))
		w.setConn(nil)
		return
	}
	w.t.ins.messagesSent.Add(uint64(frames))
	w.t.ins.bytesSent.Add(uint64(total))
}

// dial establishes the connection with the bounded retry ladder; on
// exhaustion the address enters a cooldown during which queued frames drop
// immediately instead of re-paying the backoff. All of it runs on the
// writer goroutine.
func (w *peerWriter) dial() bool {
	if !w.cooldownUntil.IsZero() {
		if time.Now().Before(w.cooldownUntil) {
			return false
		}
		w.cooldownUntil = time.Time{}
	}
	backoff := dialBackoffBase
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-w.stop:
				return false
			}
			backoff *= 2
		}
		w.t.ins.dials.Inc()
		conn, err := net.Dial("tcp", w.addr)
		if err == nil {
			w.setConn(conn)
			if w.isClosed() { // lost the race with Close
				w.setConn(nil)
				return false
			}
			return true
		}
		w.t.ins.dialFailures.Inc()
	}
	w.cooldownUntil = time.Now().Add(dialCooldownSpan)
	return false
}

func (w *peerWriter) getConn() net.Conn {
	w.connMu.Lock()
	c := w.conn
	w.connMu.Unlock()
	return c
}

// setConn swaps the connection, closing the previous one. setConn(nil)
// closes and clears.
func (w *peerWriter) setConn(c net.Conn) {
	w.connMu.Lock()
	if w.conn != nil && w.conn != c {
		w.conn.Close()
	}
	w.conn = c
	w.connMu.Unlock()
}

func (w *peerWriter) isClosed() bool {
	w.mu.Lock()
	c := w.closed
	w.mu.Unlock()
	return c
}

// shutdown stops the writer goroutine: marks it closed, interrupts any dial
// backoff, wakes it, and closes the connection to unblock a Write in
// flight. Idempotent.
func (w *peerWriter) shutdown() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	select {
	case w.wake <- struct{}{}:
	default:
	}
	w.setConn(nil)
}
