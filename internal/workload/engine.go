// Open-loop load engine: one node that simulates a large client population
// (up to ~10^6 logical clients) as lightweight per-client state instead of
// one runtime node per client. Arrivals come from a pluggable stochastic
// process and are issued regardless of completions — the open-loop model
// that exposes saturation, unlike closed-loop drivers whose offered rate
// collapses to the service rate under overload. Deadline and expiry
// accounting per request feeds the load-ramp experiments.
package workload

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"aqua/internal/client"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/stats"
)

// Process generates successive inter-arrival gaps of the aggregate request
// stream. elapsed is the virtual time since the engine started, letting
// time-varying processes know their phase. Implementations may be stateful
// and are owned by one engine — never share an instance across engines.
type Process interface {
	Gap(r *rand.Rand, elapsed time.Duration) time.Duration
}

// expGap draws an exponential inter-arrival gap for the given rate
// (events/second). Non-positive rates yield an hour — effectively off.
func expGap(r *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Hour
	}
	u := r.Float64()
	for u <= 0 {
		u = r.Float64()
	}
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// Poisson is a homogeneous Poisson arrival process: the superposition of
// many independent clients each issuing rarely, which is exactly how the
// engine's simulated population behaves in aggregate.
type Poisson struct {
	Rate float64 // events per second
}

// Gap implements Process.
func (p Poisson) Gap(r *rand.Rand, _ time.Duration) time.Duration {
	return expGap(r, p.Rate)
}

// MMPP is a two-state Markov-modulated Poisson process: arrivals are
// Poisson at LowRate or HighRate, with exponentially distributed sojourns
// in each state. It produces the clumped traffic that stresses the
// staleness model's Poisson assumption while keeping a known mean rate.
type MMPP struct {
	LowRate, HighRate float64       // events per second in each state
	MeanLow, MeanHigh time.Duration // mean sojourn per state

	high bool
	left time.Duration // remaining sojourn in the current state
}

// Gap implements Process. A candidate gap that would outlive the current
// sojourn is discarded: the process advances to the state switch and
// redraws at the new rate — exact for exponential gaps, which are
// memoryless past the boundary.
func (m *MMPP) Gap(r *rand.Rand, _ time.Duration) time.Duration {
	if m.left <= 0 {
		m.left = m.drawSojourn(r)
	}
	var total time.Duration
	for {
		rate := m.LowRate
		if m.high {
			rate = m.HighRate
		}
		if g := expGap(r, rate); g < m.left {
			m.left -= g
			return total + g
		}
		total += m.left
		m.high = !m.high
		m.left = m.drawSojourn(r)
	}
}

func (m *MMPP) drawSojourn(r *rand.Rand) time.Duration {
	mean := m.MeanLow
	if m.high {
		mean = m.MeanHigh
	}
	return expGap(r, float64(time.Second)/float64(mean))
}

// Diurnal is a non-homogeneous Poisson process whose rate swings
// sinusoidally between Base and Peak over Period — a compressed diurnal
// ramp. Gaps are drawn by Lewis–Shedler thinning against Peak, so the
// instantaneous rate tracks the profile exactly.
type Diurnal struct {
	Base, Peak float64 // events per second at trough and crest
	Period     time.Duration
}

// Gap implements Process.
func (d Diurnal) Gap(r *rand.Rand, elapsed time.Duration) time.Duration {
	if d.Peak <= 0 {
		return time.Hour
	}
	var gap time.Duration
	for {
		gap += expGap(r, d.Peak)
		phase := 2 * math.Pi * float64(elapsed+gap) / float64(d.Period)
		rate := d.Base + (d.Peak-d.Base)*0.5*(1-math.Cos(phase))
		if r.Float64()*d.Peak <= rate {
			return gap
		}
	}
}

// EngineConfig describes one open-loop load engine.
type EngineConfig struct {
	// Service tells the engine where the replicas are; reads go to the
	// sequencer plus serving replicas, updates to the whole primary group.
	Service client.ServiceInfo
	// Group tunes the substrate. The zero value gets reliable FIFO links
	// with retransmission and no heartbeats (the client default).
	Group group.Config
	// Clients is the simulated population size (default 1, up to ~10^6).
	// Arrivals are attributed round-robin, so the per-client rate is the
	// aggregate rate divided by Clients.
	Clients int
	// Arrivals drives the aggregate request stream. Required.
	Arrivals Process
	// ArrivalCoalesce, when positive, quantizes the arrival schedule on the
	// live runtime: consecutive inter-arrival gaps are summed until they
	// reach this span, and that many requests are issued in one timer fire.
	// This trades per-arrival timer precision for far fewer runtime timers
	// at high offered rates (a real load generator's batching). Zero (the
	// default) keeps one timer per arrival — the simulator experiments use
	// that and are byte-identical to before this knob existed.
	ArrivalCoalesce time.Duration
	// ReadFraction is the probability an arrival is a read (0 = all
	// updates, 1 = all reads).
	ReadFraction float64
	// ReadMethod/ReadPayload form read requests (defaults "Get"/"x").
	ReadMethod  string
	ReadPayload []byte
	// UpdateMethod/UpdateKey form updates as "key=<seq>" (defaults
	// "Set"/"x").
	UpdateMethod string
	UpdateKey    string
	// UpdatePad, when positive, pads every update payload to at least this
	// many bytes with trailing filler — the knob that gives live
	// benchmarks realistic KV value sizes. Zero (the default) keeps the
	// historical bare "key=<seq>" payloads, byte-identical to before.
	UpdatePad int
	// Staleness is the read staleness bound a (0 = sequential consistency).
	Staleness int
	// Deadline classifies read completions: past it they count as timing
	// failures (default 50ms).
	Deadline time.Duration
	// ExpireAfter bounds how long a request may stay pending before it is
	// written off as lost (default max(8×Deadline, 1s)). Expired reads
	// count as timing failures.
	ExpireAfter time.Duration
	// MaxPending bounds tracked in-flight requests; arrivals beyond it are
	// shed and counted (default 65536). This is the engine's backpressure
	// valve — an open-loop generator must bound its own memory when the
	// service saturates.
	MaxPending int
	// PerClientCap bounds outstanding requests per simulated client
	// (0 = unlimited); arrivals hitting a saturated client are shed.
	PerClientCap int
	// MaxRequests stops the generator after that many arrivals
	// (0 = run until the scheduler stops).
	MaxRequests uint64
	// FanoutReads is how many serving replicas receive each read
	// (default 1; the sequencer always gets a copy for GSN assignment).
	FanoutReads int
	// ReadTargets overrides the read-serving set (default: every primary
	// except the sequencer).
	ReadTargets []node.ID

	// Keys, when set, draws a per-request key instead of the fixed
	// UpdateKey/ReadPayload (updates write "<key>=<seq>", reads carry the
	// bare key). Nil keeps the historical single-key stream — and the
	// historical rand-draw sequence, so every existing run stays
	// byte-identical.
	Keys KeyDist
	// Shards, when non-nil, runs the engine against a sharded service: each
	// request routes to the deployment owning its key — reads to that
	// shard's sequencer plus its serving replicas, updates to its primary
	// group. Service is ignored in this mode; Keys and ShardOf are
	// required.
	Shards []client.ServiceInfo
	// ShardOf maps a key to its owning shard index (e.g. shard.Map.Owner).
	ShardOf func(key string) int
}

func (c *EngineConfig) setDefaults() {
	if c.Group.RetransmitInterval == 0 {
		g := group.DefaultConfig()
		g.HeartbeatInterval = 0
		g.FailTimeout = 0
		c.Group = g
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ReadMethod == "" {
		c.ReadMethod = "Get"
	}
	if c.ReadPayload == nil {
		c.ReadPayload = []byte("x")
	}
	if c.UpdateMethod == "" {
		c.UpdateMethod = "Set"
	}
	if c.UpdateKey == "" {
		c.UpdateKey = "x"
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.ExpireAfter <= 0 {
		c.ExpireAfter = 8 * c.Deadline
		if c.ExpireAfter < time.Second {
			c.ExpireAfter = time.Second
		}
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1 << 16
	}
	if c.FanoutReads <= 0 {
		c.FanoutReads = 1
	}
}

// engineBucketBoundsMS are the latency histogram bounds in milliseconds:
// geometric from 50µs (the frontier fast path's territory) to 5s.
var engineBucketBoundsMS = []float64{
	0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
}

// LatencyHist is a fixed-bucket latency histogram with value semantics:
// snapshots copy, and Sub yields the delta of a measurement window.
type LatencyHist struct {
	Counts [17]uint64 // len(engineBucketBoundsMS)+1; last is overflow
}

// Observe records one latency.
func (h *LatencyHist) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(engineBucketBoundsMS) && ms > engineBucketBoundsMS[i] {
		i++
	}
	h.Counts[i]++
}

// Total returns the number of observations.
func (h LatencyHist) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-th latency quantile from the buckets.
func (h LatencyHist) Quantile(q float64) time.Duration {
	ms := stats.BucketQuantile(engineBucketBoundsMS, h.Counts[:], q)
	return time.Duration(ms * float64(time.Millisecond))
}

// Sub returns the histogram of observations recorded after prev was
// snapshotted.
func (h LatencyHist) Sub(prev LatencyHist) LatencyHist {
	var out LatencyHist
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return out
}

// EngineMetrics aggregates the engine's accounting. It has value
// semantics; Sub computes a measurement window's delta.
type EngineMetrics struct {
	Issued  uint64 // requests actually transmitted
	Reads   uint64
	Updates uint64
	Shed    uint64 // arrivals dropped by MaxPending or PerClientCap

	Completed   uint64
	ReadsDone   uint64
	UpdatesDone uint64
	Expired     uint64 // pending past ExpireAfter, written off

	// TimingFailures counts reads that completed past Deadline or expired.
	TimingFailures uint64

	ReadLatency   LatencyHist
	UpdateLatency LatencyHist
}

// Sub returns the metrics accumulated after prev was snapshotted.
func (m EngineMetrics) Sub(prev EngineMetrics) EngineMetrics {
	return EngineMetrics{
		Issued:         m.Issued - prev.Issued,
		Reads:          m.Reads - prev.Reads,
		Updates:        m.Updates - prev.Updates,
		Shed:           m.Shed - prev.Shed,
		Completed:      m.Completed - prev.Completed,
		ReadsDone:      m.ReadsDone - prev.ReadsDone,
		UpdatesDone:    m.UpdatesDone - prev.UpdatesDone,
		Expired:        m.Expired - prev.Expired,
		TimingFailures: m.TimingFailures - prev.TimingFailures,
		ReadLatency:    m.ReadLatency.Sub(prev.ReadLatency),
		UpdateLatency:  m.UpdateLatency.Sub(prev.UpdateLatency),
	}
}

// engPending is one in-flight request's accounting state.
type engPending struct {
	t0     time.Time
	client uint32
	shard  int16 // owning shard index; -1 in single-service mode
	read   bool
}

// engShard is the engine's per-shard routing state in multi-shard mode: the
// shard's current sequencer view and its round-robin read cursor — exactly
// the state the single-service engine keeps once, held once per shard.
type engShard struct {
	info        client.ServiceInfo
	sequencer   node.ID
	readTargets []node.ID
	rr          int

	issued    uint64
	completed uint64
}

// Engine is the open-loop load generator; it implements node.Node and is
// registered with the runtime like any other node (it is not deployed by
// core.Deploy — experiments register it beside a deployed service).
type Engine struct {
	cfg EngineConfig
	ctx node.Context

	stack       *group.Stack
	sequencer   node.ID
	readTargets []node.ID
	rr          int // round-robin cursor over readTargets

	// Multi-shard state; empty in single-service mode.
	shards       []engShard
	replicaShard map[node.ID]int

	started  time.Time
	stopped  bool
	nextSeq  uint64
	clientRR uint32 // round-robin attribution cursor over the population
	pad      []byte // cached filler for UpdatePad

	// outstanding is the per-client in-flight count — the entire state of a
	// simulated client, which is what lets one node stand in for a million
	// of them.
	outstanding []uint16

	pending map[uint64]engPending
	order   []uint64 // pending seqs in issue order; head indexes the oldest
	head    int

	// mu guards the accounting (m, pending bookkeeping, shard counters) so
	// Metrics/Pending/ShardCounts can snapshot mid-run on the live runtime,
	// where the engine's mailbox goroutine runs concurrently with the
	// measuring goroutine. Under the simulator the lock is uncontended and
	// changes nothing observable.
	mu sync.Mutex
	m  EngineMetrics

	arrivalN  int // arrivals to issue at the next timer fire (coalescing)
	arrivalFn func()
	sweepFn   func()
}

var _ node.Node = (*Engine)(nil)

// NewEngine creates an engine; register it with the runtime under a unique
// node ID before starting the scheduler.
func NewEngine(cfg EngineConfig) *Engine {
	cfg.setDefaults()
	if cfg.Arrivals == nil {
		panic("workload: EngineConfig.Arrivals is required")
	}
	e := &Engine{
		cfg:         cfg,
		sequencer:   cfg.Service.Sequencer,
		outstanding: make([]uint16, cfg.Clients),
		pending:     make(map[uint64]engPending),
	}
	if len(cfg.Shards) > 0 {
		if cfg.Keys == nil || cfg.ShardOf == nil {
			panic("workload: EngineConfig.Shards requires Keys and ShardOf")
		}
		e.replicaShard = make(map[node.ID]int)
		for i, info := range cfg.Shards {
			s := engShard{info: info, sequencer: info.Sequencer}
			for _, id := range info.Primaries {
				e.replicaShard[id] = i
				if id != info.Sequencer {
					s.readTargets = append(s.readTargets, id)
				}
			}
			for _, id := range info.Secondaries {
				e.replicaShard[id] = i
			}
			e.shards = append(e.shards, s)
		}
	}
	return e
}

// Init implements node.Node.
func (e *Engine) Init(ctx node.Context) {
	e.ctx = ctx
	e.started = ctx.Now()
	e.stack = group.NewStack(ctx, e.cfg.Group, e.deliver)
	e.readTargets = e.cfg.ReadTargets
	if e.readTargets == nil {
		for _, id := range e.cfg.Service.Primaries {
			if id != e.cfg.Service.Sequencer {
				e.readTargets = append(e.readTargets, id)
			}
		}
	}
	e.arrivalFn = e.arrival
	e.sweepFn = e.sweep
	ctx.Post(e.cfg.Arrivals.Gap(ctx.Rand(), 0), e.arrivalFn)
	ctx.Post(e.cfg.ExpireAfter/4, e.sweepFn)
}

// Recv implements node.Node. Everything of interest arrives through the
// substrate; raw messages are dropped.
func (e *Engine) Recv(from node.ID, m node.Message) {
	e.stack.Handle(from, m)
}

// Stop halts the generator: no further arrivals are issued. Pending
// requests still complete or expire. Safe to call between scheduler runs.
func (e *Engine) Stop() { e.stopped = true }

// Metrics returns a snapshot of the engine's accounting (value semantics —
// diff two snapshots with Sub to scope a measurement window). Safe to call
// from outside the engine's goroutine while a live run is in progress.
func (e *Engine) Metrics() EngineMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m
}

// Pending returns the current in-flight request count.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// arrival issues one request (or sheds it) and schedules the next — the
// open loop: the schedule depends only on the arrival process, never on
// completions.
func (e *Engine) arrival() {
	if e.stopped {
		return
	}
	n := e.arrivalN
	if n < 1 {
		n = 1
	}
	e.mu.Lock()
	for i := 0; i < n; i++ {
		e.issue()
		if e.cfg.MaxRequests > 0 && e.m.Issued+e.m.Shed >= e.cfg.MaxRequests {
			e.mu.Unlock()
			e.stopped = true
			return
		}
	}
	e.mu.Unlock()
	// With coalescing off this is exactly one Gap draw and one Post per
	// arrival, the historical schedule; with it on, gaps accumulate until
	// the coalesce span is covered and the count carries to the next fire.
	elapsed := e.ctx.Now().Sub(e.started)
	gap := e.cfg.Arrivals.Gap(e.ctx.Rand(), elapsed)
	count := 1
	for e.cfg.ArrivalCoalesce > 0 && gap < e.cfg.ArrivalCoalesce {
		gap += e.cfg.Arrivals.Gap(e.ctx.Rand(), elapsed)
		count++
	}
	e.arrivalN = count
	e.ctx.Post(gap, e.arrivalFn)
}

func (e *Engine) issue() {
	c := e.clientRR
	e.clientRR = (e.clientRR + 1) % uint32(len(e.outstanding))
	if e.cfg.PerClientCap > 0 && int(e.outstanding[c]) >= e.cfg.PerClientCap {
		e.m.Shed++
		return
	}
	if len(e.pending) >= e.cfg.MaxPending {
		e.m.Shed++
		return
	}
	e.nextSeq++
	id := consistency.RequestID{Client: e.ctx.ID(), Seq: e.nextSeq}
	read := e.ctx.Rand().Float64() < e.cfg.ReadFraction

	// Key and shard resolution: the extra rand draw happens only when Keys
	// is configured, so the historical single-key stream is untouched.
	key := e.cfg.UpdateKey
	if e.cfg.Keys != nil {
		key = e.cfg.Keys.Key(e.ctx.Rand())
	}
	sh := -1
	if len(e.shards) > 0 {
		sh = e.cfg.ShardOf(key)
		e.shards[sh].issued++
	}

	req := consistency.Request{ID: id, ReadOnly: read}
	if read {
		req.Method = e.cfg.ReadMethod
		req.Payload = e.cfg.ReadPayload
		if e.cfg.Keys != nil {
			req.Payload = []byte(key)
		}
		req.Staleness = e.cfg.Staleness
		e.m.Reads++
		// The sequencer orders the read; FanoutReads serving replicas race
		// to answer it.
		if sh < 0 {
			e.stack.Send(e.sequencer, req)
			for i := 0; i < e.cfg.FanoutReads && i < len(e.readTargets); i++ {
				e.stack.Send(e.readTargets[e.rr], req)
				e.rr = (e.rr + 1) % len(e.readTargets)
			}
		} else {
			s := &e.shards[sh]
			e.stack.Send(s.sequencer, req)
			for i := 0; i < e.cfg.FanoutReads && i < len(s.readTargets); i++ {
				e.stack.Send(s.readTargets[s.rr], req)
				s.rr = (s.rr + 1) % len(s.readTargets)
			}
		}
	} else {
		req.Method = e.cfg.UpdateMethod
		// Fresh payload per update: replicas retain the body until commit.
		buf := make([]byte, 0, max(len(key)+21, e.cfg.UpdatePad))
		buf = append(buf, key...)
		buf = append(buf, '=')
		req.Payload = strconv.AppendUint(buf, e.nextSeq, 10)
		if n := e.cfg.UpdatePad - len(req.Payload); n > 0 {
			if len(e.pad) < n {
				e.pad = make([]byte, n)
				for i := range e.pad {
					e.pad[i] = '.'
				}
			}
			req.Payload = append(req.Payload, e.pad[:n]...)
		}
		e.m.Updates++
		primaries := e.cfg.Service.Primaries
		if sh >= 0 {
			primaries = e.shards[sh].info.Primaries
		}
		for _, p := range primaries {
			e.stack.Send(p, req)
		}
	}
	e.m.Issued++
	e.outstanding[c]++
	e.pending[e.nextSeq] = engPending{t0: e.ctx.Now(), client: c, shard: int16(sh), read: read}
	e.order = append(e.order, e.nextSeq)
}

// sweep expires pending requests older than ExpireAfter, walking the FIFO
// order ring from its head — entries are issued in time order, so the scan
// stops at the first live one.
func (e *Engine) sweep() {
	cutoff := e.ctx.Now().Add(-e.cfg.ExpireAfter)
	e.mu.Lock()
	for e.head < len(e.order) {
		seq := e.order[e.head]
		p, ok := e.pending[seq]
		if ok && p.t0.After(cutoff) {
			break
		}
		e.head++
		if !ok {
			continue // completed; ring entry already stale
		}
		delete(e.pending, seq)
		e.outstanding[p.client]--
		e.m.Expired++
		if p.read {
			e.m.TimingFailures++
		}
	}
	// Compact the ring once the dead prefix dominates.
	if e.head > 4096 && e.head > len(e.order)/2 {
		e.order = append(e.order[:0], e.order[e.head:]...)
		e.head = 0
	}
	again := !e.stopped || len(e.pending) > 0
	e.mu.Unlock()
	if again {
		e.ctx.Post(e.cfg.ExpireAfter/4, e.sweepFn)
	}
}

func (e *Engine) deliver(from node.ID, m node.Message) {
	switch msg := m.(type) {
	case consistency.Reply:
		e.onReply(msg)
	case *consistency.Reply:
		// Pointer form from the live transport's shared decoder.
		e.onReply(*msg)
	case consistency.SequencerAnnounce:
		e.setSequencer(from, msg.Sequencer)
	case consistency.PerfBroadcast:
		if msg.Sequencer != "" {
			e.setSequencer(msg.Replica, msg.Sequencer)
		}
	default:
		// The engine models clients that ignore everything else.
	}
}

// setSequencer records a sequencer failover. In multi-shard mode the update
// applies to the announcing replica's shard; announcements from unknown
// senders are ignored rather than cross-wired into another shard.
func (e *Engine) setSequencer(from node.ID, seq node.ID) {
	if len(e.shards) == 0 {
		e.sequencer = seq
		return
	}
	if i, ok := e.replicaShard[from]; ok {
		e.shards[i].sequencer = seq
	}
}

// ShardCounts returns per-shard issued and completed request counts
// (nil outside multi-shard mode) — the skew evidence for hot-shard runs.
func (e *Engine) ShardCounts() (issued, completed []uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.shards {
		issued = append(issued, e.shards[i].issued)
		completed = append(completed, e.shards[i].completed)
	}
	return issued, completed
}

func (e *Engine) onReply(r consistency.Reply) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pending[r.ID.Seq]
	if !ok {
		return // duplicate reply (read fan-out) or already expired
	}
	delete(e.pending, r.ID.Seq)
	e.outstanding[p.client]--
	if p.shard >= 0 {
		e.shards[p.shard].completed++
	}
	lat := e.ctx.Now().Sub(p.t0)
	e.m.Completed++
	if p.read {
		e.m.ReadsDone++
		e.m.ReadLatency.Observe(lat)
		if lat > e.cfg.Deadline {
			e.m.TimingFailures++
		}
	} else {
		e.m.UpdatesDone++
		e.m.UpdateLatency.Observe(lat)
	}
}
