package workload_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/sim"
	"aqua/internal/workload"
)

const ms = time.Millisecond

func deployWithEngine(t *testing.T, seed int64, ecfg workload.EngineConfig) (*sim.Scheduler, *workload.Engine) {
	t.Helper()
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 200 * time.Microsecond, Max: ms}))
	d, err := core.Deploy(rt, core.ServiceConfig{
		Primaries:    3,
		Secondaries:  1,
		LazyInterval: 20 * ms,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ecfg.Service = d.Info
	eng := workload.NewEngine(ecfg)
	rt.Register("load", eng)
	rt.Start()
	return s, eng
}

func TestEngineOpenLoopMix(t *testing.T) {
	const rate = 400.0
	s, eng := deployWithEngine(t, 7, workload.EngineConfig{
		Clients:      100,
		Arrivals:     workload.Poisson{Rate: rate},
		ReadFraction: 0.5,
		Deadline:     50 * ms,
	})
	s.RunFor(4 * time.Second)
	m := eng.Metrics()

	want := rate * 4
	if float64(m.Issued) < 0.8*want || float64(m.Issued) > 1.2*want {
		t.Fatalf("issued %d, want ~%.0f (open loop should track the offered rate)", m.Issued, want)
	}
	if m.Reads+m.Updates != m.Issued {
		t.Fatalf("mix bookkeeping: %d reads + %d updates != %d issued", m.Reads, m.Updates, m.Issued)
	}
	frac := float64(m.Reads) / float64(m.Issued)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction %.2f, want ~0.5", frac)
	}
	if m.Shed != 0 || m.Expired != 0 {
		t.Fatalf("unloaded run shed %d / expired %d requests", m.Shed, m.Expired)
	}
	// Everything issued either completed or is still in flight.
	if m.Completed+uint64(eng.Pending()) != m.Issued {
		t.Fatalf("completed %d + pending %d != issued %d", m.Completed, eng.Pending(), m.Issued)
	}
	if float64(m.Completed) < 0.95*float64(m.Issued) {
		t.Fatalf("only %d/%d completed on an unloaded service", m.Completed, m.Issued)
	}
	if got := m.ReadLatency.Total() + m.UpdateLatency.Total(); got != m.Completed {
		t.Fatalf("latency histograms hold %d obs, want %d", got, m.Completed)
	}
	if p99 := m.ReadLatency.Quantile(0.99); p99 <= 0 || p99 > 50*ms {
		t.Fatalf("read p99 %v out of range for an unloaded service", p99)
	}
}

func TestEngineMillionClients(t *testing.T) {
	s, eng := deployWithEngine(t, 11, workload.EngineConfig{
		Clients:      1_000_000,
		Arrivals:     workload.Poisson{Rate: 1000},
		ReadFraction: 0.3,
	})
	s.RunFor(1 * time.Second)
	m := eng.Metrics()
	if m.Issued < 700 {
		t.Fatalf("issued %d, want ~1000", m.Issued)
	}
	if float64(m.Completed) < 0.9*float64(m.Issued) {
		t.Fatalf("completed %d of %d with a million-client population", m.Completed, m.Issued)
	}
}

func TestEnginePerClientCapSheds(t *testing.T) {
	// One client, cap 1, arrivals far faster than the service round trip:
	// almost every arrival finds the client saturated and is shed.
	s, eng := deployWithEngine(t, 13, workload.EngineConfig{
		Clients:      1,
		PerClientCap: 1,
		Arrivals:     workload.Poisson{Rate: 5000},
		ReadFraction: 1,
	})
	s.RunFor(500 * ms)
	m := eng.Metrics()
	if m.Shed == 0 {
		t.Fatal("saturated client shed nothing")
	}
	if m.Issued+m.Shed == m.Shed {
		t.Fatal("nothing issued at all")
	}
}

func TestEngineMaxRequestsStops(t *testing.T) {
	s, eng := deployWithEngine(t, 17, workload.EngineConfig{
		Clients:     10,
		Arrivals:    workload.Poisson{Rate: 2000},
		MaxRequests: 100,
	})
	s.RunFor(2 * time.Second)
	m := eng.Metrics()
	if m.Issued+m.Shed != 100 {
		t.Fatalf("arrivals = %d, want exactly MaxRequests=100", m.Issued+m.Shed)
	}
	if m.Completed != m.Issued {
		t.Fatalf("completed %d of %d after generator stopped", m.Completed, m.Issued)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() workload.EngineMetrics {
		s, eng := deployWithEngine(t, 23, workload.EngineConfig{
			Clients:      1000,
			Arrivals:     &workload.MMPP{LowRate: 100, HighRate: 800, MeanLow: 200 * ms, MeanHigh: 100 * ms},
			ReadFraction: 0.7,
		})
		s.RunFor(2 * time.Second)
		return eng.Metrics()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
}

// Mean-rate sanity for the arrival processes, without a deployment: the
// empirical rate over many gaps must track each process's nominal mean.
func TestProcessMeanRates(t *testing.T) {
	meanRate := func(p workload.Process) float64 {
		r := rand.New(rand.NewSource(42))
		var elapsed time.Duration
		const n = 200000
		for i := 0; i < n; i++ {
			elapsed += p.Gap(r, elapsed)
		}
		return n / elapsed.Seconds()
	}
	if got := meanRate(workload.Poisson{Rate: 500}); math.Abs(got-500) > 25 {
		t.Errorf("Poisson mean rate %.1f, want ~500", got)
	}
	// MMPP spends equal time in each state: mean rate = (100+900)/2.
	mmpp := &workload.MMPP{LowRate: 100, HighRate: 900, MeanLow: 50 * ms, MeanHigh: 50 * ms}
	if got := meanRate(mmpp); math.Abs(got-500) > 50 {
		t.Errorf("MMPP mean rate %.1f, want ~500", got)
	}
	// The sinusoid averages to the midpoint of Base and Peak.
	diurnal := workload.Diurnal{Base: 100, Peak: 900, Period: 2 * time.Second}
	if got := meanRate(diurnal); math.Abs(got-500) > 50 {
		t.Errorf("Diurnal mean rate %.1f, want ~500", got)
	}
}

func TestDiurnalTracksPhase(t *testing.T) {
	// At the trough (elapsed ≈ 0 mod Period) gaps should be long; at the
	// crest (elapsed ≈ Period/2) short. Compare empirical rates pinned at
	// the two phases.
	r := rand.New(rand.NewSource(9))
	d := workload.Diurnal{Base: 50, Peak: 1000, Period: 10 * time.Second}
	rateAt := func(phase time.Duration) float64 {
		var sum time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			sum += d.Gap(r, phase)
		}
		return n / sum.Seconds()
	}
	trough, crest := rateAt(0), rateAt(5*time.Second)
	if crest < 5*trough {
		t.Fatalf("crest rate %.0f not ≫ trough rate %.0f", crest, trough)
	}
}
