// Key-popularity distributions for the open-loop engine. The engine's
// historical workload touches a single key; these samplers spread traffic
// over a key universe — uniformly, or with the Zipf skew that concentrates
// a hot-shard's worth of traffic onto a few keys.
package workload

import (
	"math/rand"
	"strconv"
)

// KeyDist samples keys for generated requests. Implementations may be
// stateful and are owned by one engine — never share an instance across
// engines (the same ownership rule as Process).
type KeyDist interface {
	Key(r *rand.Rand) string
}

// keyTable pre-renders the key strings "prefix<i>" so sampling allocates
// nothing in steady state.
func keyTable(prefix string, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = prefix + strconv.Itoa(i)
	}
	return keys
}

// UniformKeys samples uniformly from N keys named "<Prefix><i>".
type UniformKeys struct {
	N      int
	Prefix string // default "k"

	keys []string
}

// Key implements KeyDist.
func (u *UniformKeys) Key(r *rand.Rand) string {
	if u.keys == nil {
		if u.Prefix == "" {
			u.Prefix = "k"
		}
		u.keys = keyTable(u.Prefix, u.N)
	}
	return u.keys[r.Intn(len(u.keys))]
}

// ZipfKeys samples from N keys with Zipf(s, v) popularity: key 0 is the
// hottest, and with the default skew roughly half of all traffic lands on a
// handful of keys — the hot-shard stress for a partitioned keyspace.
//
// The sampler draws through math/rand's rejection-free Zipf generator,
// which binds to one *rand.Rand at construction; ZipfKeys latches the first
// source Key sees, which under the engine is always the owning node's
// deterministic per-node stream.
type ZipfKeys struct {
	N      int
	S      float64 // skew exponent s > 1 (default 1.2)
	V      float64 // offset v >= 1 (default 1)
	Prefix string  // default "k"

	keys []string
	zipf *rand.Zipf
	src  *rand.Rand
}

// Key implements KeyDist.
func (z *ZipfKeys) Key(r *rand.Rand) string {
	if z.zipf == nil || z.src != r {
		if z.S <= 1 {
			z.S = 1.2
		}
		if z.V < 1 {
			z.V = 1
		}
		if z.Prefix == "" {
			z.Prefix = "k"
		}
		z.keys = keyTable(z.Prefix, z.N)
		z.zipf = rand.NewZipf(r, z.S, z.V, uint64(z.N-1))
		z.src = r
	}
	return z.keys[z.zipf.Uint64()]
}
