package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/app"
	"aqua/internal/apps"
	"aqua/internal/client"
	"aqua/internal/core"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/qos"
	"aqua/internal/sim"
)

func deploy(t *testing.T, seed int64, drivers map[node.ID]Driver) (*sim.Scheduler, *core.Deployment) {
	t.Helper()
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s)
	var clients []core.ClientConfig
	for id, d := range drivers {
		clients = append(clients, core.ClientConfig{
			ID:      id,
			Spec:    qos.Spec{Staleness: 2, Deadline: time.Second, MinProb: 0.5},
			Methods: qos.NewMethods("Get", "Version"),
			Driver:  d,
		})
	}
	dep, err := core.Deploy(rt, core.ServiceConfig{
		Primaries:    3,
		Secondaries:  2,
		LazyInterval: time.Second,
		Group:        group.DefaultConfig(),
		NewApp:       func() app.Application { return apps.NewKVStore() },
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	return s, dep
}

func TestPoissonWritesCompleteAndAverageRate(t *testing.T) {
	const n = 100
	done := false
	var doneAt time.Time
	s, dep := deploy(t, 1, map[node.ID]Driver{
		"w": PoissonWrites(n, "k", 5.0, func() { done = true }),
	})
	start := s.Now()
	for i := 0; i < 60 && !done; i++ {
		s.RunFor(5 * time.Second)
	}
	doneAt = s.Now()
	if !done {
		t.Fatal("poisson writes never completed")
	}
	if got := dep.Replicas["p01"].Applied(); got != n {
		t.Fatalf("applied %d of %d", got, n)
	}
	// 100 events at 5/s ≈ 20s of arrivals (within a loose factor).
	elapsed := doneAt.Sub(start).Seconds()
	if elapsed < 10 || elapsed > 40 {
		t.Fatalf("poisson run took %.1fs, want ≈20s", elapsed)
	}
}

func TestBurstyWritesPattern(t *testing.T) {
	const n = 24
	done := false
	s, dep := deploy(t, 2, map[node.ID]Driver{
		"w": BurstyWrites(n, "k", 8, 2*time.Second, func() { done = true }),
	})
	for i := 0; i < 30 && !done; i++ {
		s.RunFor(2 * time.Second)
	}
	if !done {
		t.Fatal("bursty writes never completed")
	}
	if got := dep.Replicas["p01"].Applied(); got != n {
		t.Fatalf("applied %d of %d", got, n)
	}
}

func TestPeriodicReads(t *testing.T) {
	var results []client.Result
	done := false
	s, _ := deploy(t, 3, map[node.ID]Driver{
		"r": PeriodicReads(5, "Version", nil, 100*time.Millisecond,
			func(r client.Result) { results = append(results, r) },
			func() { done = true }),
	})
	for i := 0; i < 30 && !done; i++ {
		s.RunFor(time.Second)
	}
	if !done || len(results) != 5 {
		t.Fatalf("reads = %d done = %v", len(results), done)
	}
	for _, r := range results {
		if string(r.Payload) != "v0" {
			t.Fatalf("read = %+v", r)
		}
	}
}

func TestPoissonInterArrivalDistribution(t *testing.T) {
	// Sanity: the sampler's mean inter-arrival ≈ 1/rate.
	rng := rand.New(rand.NewSource(9))
	const rate = 4.0
	sampler := func(r interface{ Float64() float64 }) time.Duration {
		u := r.Float64()
		for u <= 0 {
			u = r.Float64()
		}
		return time.Duration(-math.Log(u) / rate * float64(time.Second))
	}
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		sum += sampler(rng)
	}
	mean := (sum / n).Seconds()
	if mean < 0.2 || mean > 0.3 {
		t.Fatalf("mean inter-arrival %.3fs, want ≈0.25s", mean)
	}
}
