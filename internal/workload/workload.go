// Package workload provides request-arrival processes for driving client
// gateways: the paper's closed-loop alternating workload, plus open-loop
// Poisson and bursty processes. The staleness model (Equation 4) assumes
// Poisson update arrivals; the paper notes "it should be possible to
// evaluate P(Nu(tl) ≤ a) for the case in which the arrival of update
// requests follows a distribution that is not Poisson" — the bursty process
// stresses exactly that assumption.
package workload

import (
	"fmt"
	"math"
	"time"

	"aqua/internal/client"
	"aqua/internal/node"
)

// Driver runs a workload against a client gateway from within its node
// context (install it as core.ClientConfig.Driver).
type Driver func(ctx node.Context, gw *client.Gateway)

// Writes generates n "Set" updates whose arrival instants are produced by
// next (a stateful inter-arrival sampler); key namespaces the touched keys.
// done, if non-nil, fires after the last update completes.
func Writes(n int, key string, next func(r interface{ Float64() float64 }) time.Duration, done func()) Driver {
	return func(ctx node.Context, gw *client.Gateway) {
		issued, completed := 0, 0
		var schedule func()
		schedule = func() {
			if issued >= n {
				return
			}
			i := issued
			issued++
			gw.Invoke("Set", []byte(fmt.Sprintf("%s=%d", key, i)), func(client.Result) {
				completed++
				if completed == n && done != nil {
					done()
				}
			})
			if issued < n {
				ctx.Post(next(ctx.Rand()), schedule)
			}
		}
		ctx.Post(next(ctx.Rand()), schedule)
	}
}

// PoissonWrites issues n updates as an open-loop Poisson process with the
// given rate (events per second): exponential inter-arrival times,
// independent of completion.
func PoissonWrites(n int, key string, rate float64, done func()) Driver {
	return Writes(n, key, func(r interface{ Float64() float64 }) time.Duration {
		u := r.Float64()
		for u <= 0 {
			u = r.Float64()
		}
		return time.Duration(-math.Log(u) / rate * float64(time.Second))
	}, done)
}

// BurstyWrites issues n updates in bursts: burstSize arrivals back-to-back
// (1ms apart), then a gap. The mean rate matches a Poisson process of
// burstSize/gap, but the distribution is maximally clumped — the staleness
// model's worst case.
func BurstyWrites(n int, key string, burstSize int, gap time.Duration, done func()) Driver {
	i := 0
	return Writes(n, key, func(interface{ Float64() float64 }) time.Duration {
		pos := i % burstSize
		i++
		if pos == burstSize-1 {
			return gap
		}
		return time.Millisecond
	}, done)
}

// PeriodicReads issues n read-only requests with a fixed period, reporting
// each result.
func PeriodicReads(n int, method string, payload []byte, period time.Duration, onRead func(client.Result), done func()) Driver {
	return func(ctx node.Context, gw *client.Gateway) {
		var issue func(i int)
		issue = func(i int) {
			if i >= n {
				if done != nil {
					done()
				}
				return
			}
			gw.Invoke(method, payload, func(r client.Result) {
				if onRead != nil {
					onRead(r)
				}
				ctx.Post(period, func() { issue(i + 1) })
			})
		}
		ctx.Post(period, func() { issue(0) })
	}
}
