package workload

import (
	"math/rand"
	"testing"
)

func TestUniformKeysDeterministic(t *testing.T) {
	draw := func() []string {
		u := &UniformKeys{N: 16}
		r := rand.New(rand.NewSource(42))
		out := make([]string, 200)
		for i := range out {
			out[i] = u.Key(r)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, k := range a {
		seen[k] = true
	}
	if len(seen) < 8 {
		t.Fatalf("200 uniform draws over 16 keys hit only %d", len(seen))
	}
}

// TestZipfKeysDeterministicAndSkewed pins the two properties the hot-shard
// scenarios rely on: identical seed → identical key sequence (so sharded
// sweeps stay reproducible at any parallelism — each point owns its own
// KeyDist and rand, nothing is shared), and the default skew concentrates
// a large fraction of draws on the hottest keys.
func TestZipfKeysDeterministicAndSkewed(t *testing.T) {
	draw := func() []string {
		z := &ZipfKeys{N: 64}
		r := rand.New(rand.NewSource(7))
		out := make([]string, 2000)
		for i := range out {
			out[i] = z.Key(r)
		}
		return out
	}
	a, b := draw(), draw()
	counts := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	// Zipf s=1.2 over 64 keys: the hottest key dominates.
	if counts["k0"] < len(a)/4 {
		t.Fatalf("hottest key drew %d of %d; distribution not skewed", counts["k0"], len(a))
	}
	if len(counts) < 5 {
		t.Fatalf("only %d distinct keys drawn", len(counts))
	}
}

func TestZipfKeysRebindsToNewSource(t *testing.T) {
	z := &ZipfKeys{N: 8}
	r1 := rand.New(rand.NewSource(1))
	first := z.Key(r1)
	_ = first
	// A different source must not silently keep drawing from the old one.
	r2 := rand.New(rand.NewSource(2))
	z.Key(r2)
	if z.src != r2 {
		t.Fatal("sampler did not rebind to the new rand source")
	}
}
