package fifo

import (
	"fmt"
	"testing"
	"time"

	"aqua/internal/apps"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/sim"
)

const ms = time.Millisecond

type bed struct {
	s        *sim.Scheduler
	rt       *sim.Runtime
	replicas map[node.ID]*Replica
	clients  map[node.ID]*Client
}

func newBed(seed int64, nReplicas, nClients int, jitter time.Duration) *bed {
	s := sim.NewScheduler(seed)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 0, Max: jitter}))
	b := &bed{s: s, rt: rt, replicas: make(map[node.ID]*Replica), clients: make(map[node.ID]*Client)}

	var rids []node.ID
	for i := 0; i < nReplicas; i++ {
		rids = append(rids, node.ID(fmt.Sprintf("r%d", i)))
	}
	gcfg := group.DefaultConfig()
	gcfg.HeartbeatInterval = 0
	for _, id := range rids {
		r := NewReplica(ReplicaConfig{Replicas: rids, Group: gcfg, App: apps.NewKVStore()})
		b.replicas[id] = r
		rt.Register(id, r)
	}
	for i := 0; i < nClients; i++ {
		id := node.ID(fmt.Sprintf("c%d", i))
		c := NewClient(ClientConfig{Replicas: rids, Group: gcfg})
		b.clients[id] = c
		rt.Register(id, c)
	}
	return b
}

func TestFIFOUpdateAppliesEverywhere(t *testing.T) {
	b := newBed(1, 3, 1, ms)
	b.rt.Start()
	var rep consistency.Reply
	b.s.After(0, func() {
		b.clients["c0"].Update("Set", []byte("a=1"), func(r consistency.Reply) { rep = r })
	})
	b.s.RunFor(time.Second)

	if string(rep.Payload) != "v1" {
		t.Fatalf("reply = %+v", rep)
	}
	for id, r := range b.replicas {
		if r.Applied() != 1 {
			t.Fatalf("%s applied %d, want 1", id, r.Applied())
		}
	}
}

func TestFIFOPerClientOrderPreservedUnderJitter(t *testing.T) {
	// One client issues a rapid stream of dependent updates under heavy
	// network reordering; every replica must apply them in issue order.
	b := newBed(2, 3, 1, 20*ms)
	b.rt.Start()
	const n = 30
	b.s.After(0, func() {
		for i := 0; i < n; i++ {
			b.clients["c0"].Update("Set", []byte(fmt.Sprintf("k=%d", i)), nil)
		}
	})
	b.s.RunFor(5 * time.Second)

	for id, r := range b.replicas {
		if r.Applied() != n {
			t.Fatalf("%s applied %d, want %d", id, r.Applied(), n)
		}
		// Final value reflects the LAST issued update — FIFO order held.
		got, err := r.App().Read("Get", []byte("k"))
		if err != nil || string(got) != fmt.Sprintf("%d", n-1) {
			t.Fatalf("%s final k = %q (%v), want %d", id, got, err, n-1)
		}
	}
}

func TestFIFOReadRoundRobin(t *testing.T) {
	b := newBed(3, 3, 1, 0)
	b.rt.Start()
	counts := make(map[node.ID]int)
	b.s.After(0, func() {
		for i := 0; i < 6; i++ {
			b.clients["c0"].Read("Version", nil, func(r consistency.Reply) {
				counts[r.Replica]++
			})
		}
	})
	b.s.RunFor(time.Second)
	if len(counts) != 3 {
		t.Fatalf("reads hit %d replicas, want 3 (round robin): %v", len(counts), counts)
	}
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("replica %s served %d reads, want 2", id, c)
		}
	}
}

func TestFIFOCrossClientDivergenceIsBounded(t *testing.T) {
	// Two clients write the same key; replicas may interleave differently
	// mid-run but every replica applies all updates (no losses, no dups).
	b := newBed(4, 3, 2, 10*ms)
	b.rt.Start()
	const n = 10
	b.s.After(0, func() {
		for i := 0; i < n; i++ {
			b.clients["c0"].Update("Set", []byte(fmt.Sprintf("x=a%d", i)), nil)
			b.clients["c1"].Update("Set", []byte(fmt.Sprintf("x=b%d", i)), nil)
		}
	})
	b.s.RunFor(5 * time.Second)
	for id, r := range b.replicas {
		if r.Applied() != 2*n {
			t.Fatalf("%s applied %d, want %d", id, r.Applied(), 2*n)
		}
	}
}

func TestFIFOReadSeesOwnWrites(t *testing.T) {
	// With FIFO links, a client's read issued after its update reaches the
	// same replica after the update (single client, same target).
	b := newBed(5, 1, 1, 5*ms)
	b.rt.Start()
	var got consistency.Reply
	b.s.After(0, func() {
		b.clients["c0"].Update("Set", []byte("mine=yes"), nil)
		b.clients["c0"].Read("Get", []byte("mine"), func(r consistency.Reply) { got = r })
	})
	b.s.RunFor(time.Second)
	if string(got.Payload) != "yes" {
		t.Fatalf("read-own-write = %+v", got)
	}
}

func TestFIFONewReplicaPanicsWithoutApp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReplica(ReplicaConfig{Replicas: []node.ID{"a"}})
}
