// Package fifo implements the framework's FIFO ordering handler — the
// "service B" of Figure 2. The paper's gateway architecture lets a service
// choose its ordering guarantee; where the sequential handler routes every
// update through the sequencer for a total order, the FIFO handler
// guarantees only that each client's operations are applied in that
// client's issue order at every replica.
//
// The guarantee falls directly out of the substrate: the link layer
// sequences every (sender, receiver) pair, so a client's multicast updates
// arrive at each replica in issue order. Replicas apply them immediately.
// Cross-client interleavings may differ between replicas — that is FIFO
// consistency; applications using this handler must tolerate it (e.g.
// per-account banking operations where each account has one writer).
package fifo

import (
	"math/rand"
	"time"

	"aqua/internal/app"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// ReplicaConfig describes one FIFO replica.
type ReplicaConfig struct {
	// Replicas lists the whole replica set (including this node).
	Replicas []node.ID
	// Group tunes the substrate.
	Group group.Config
	// ServiceDelay simulates background load (nil for none).
	ServiceDelay func(r *rand.Rand) time.Duration
	// App is this replica's application instance.
	App app.Application
}

// Replica is a FIFO-ordering server gateway. Far simpler than the
// sequential gateway: no sequencer, no GSNs, no lazy propagation — every
// replica applies every client's stream in arrival (= issue) order.
type Replica struct {
	cfg   ReplicaConfig
	ctx   node.Context
	stack *group.Stack

	queue   []fifoJob
	busy    bool
	applied uint64
}

type fifoJob struct {
	req          consistency.Request
	from         node.ID
	arrivedAt    time.Time
	serviceStart time.Time
}

var _ node.Node = (*Replica)(nil)

// NewReplica creates a FIFO replica gateway.
func NewReplica(cfg ReplicaConfig) *Replica {
	if cfg.App == nil {
		panic("fifo: ReplicaConfig.App is required")
	}
	return &Replica{cfg: cfg}
}

// Applied returns the number of updates applied.
func (r *Replica) Applied() uint64 { return r.applied }

// App exposes the application (tests verify state).
func (r *Replica) App() app.Application { return r.cfg.App }

// Init implements node.Node.
func (r *Replica) Init(ctx node.Context) {
	r.ctx = ctx
	r.stack = group.NewStack(ctx, r.cfg.Group, r.deliver)
}

// Recv implements node.Node.
func (r *Replica) Recv(from node.ID, m node.Message) {
	if r.stack.Handle(from, m) {
		return
	}
	r.ctx.Logf("fifo: unexpected raw message %T from %s", m, from)
}

func (r *Replica) deliver(from node.ID, m node.Message) {
	req, ok := m.(consistency.Request)
	if !ok {
		r.ctx.Logf("fifo: unhandled payload %T from %s", m, from)
		return
	}
	r.queue = append(r.queue, fifoJob{req: req, from: from, arrivedAt: r.ctx.Now()})
	r.startNext()
}

func (r *Replica) startNext() {
	if r.busy || len(r.queue) == 0 {
		return
	}
	r.busy = true
	j := r.queue[0]
	r.queue = r.queue[1:]
	j.serviceStart = r.ctx.Now()
	var delay time.Duration
	if r.cfg.ServiceDelay != nil {
		delay = r.cfg.ServiceDelay(r.ctx.Rand())
	}
	r.ctx.Post(delay, func() { r.complete(j) })
}

func (r *Replica) complete(j fifoJob) {
	now := r.ctx.Now()
	var payload []byte
	var err error
	if j.req.ReadOnly {
		payload, err = r.cfg.App.Read(j.req.Method, j.req.Payload)
	} else {
		payload, err = r.cfg.App.ApplyUpdate(j.req.Method, j.req.Payload)
		r.applied++
	}
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	r.stack.Send(j.from, consistency.Reply{
		ID:      j.req.ID,
		Payload: payload,
		Err:     errStr,
		T1:      now.Sub(j.arrivedAt),
		CSN:     r.applied,
		Replica: r.ctx.ID(),
	})
	r.busy = false
	r.startNext()
}

// ClientConfig describes a FIFO client gateway.
type ClientConfig struct {
	// Replicas lists the service's replicas.
	Replicas []node.ID
	// Group tunes the substrate.
	Group group.Config
}

// Client is the FIFO handler's client gateway: updates are multicast to all
// replicas (each applies them in this client's order); reads go to one
// replica chosen round-robin.
type Client struct {
	cfg ClientConfig
	ctx node.Context

	stack   *group.Stack
	nextSeq uint64
	rrIndex int
	pending map[consistency.RequestID]func(consistency.Reply)
}

var _ node.Node = (*Client)(nil)

// NewClient creates a FIFO client gateway.
func NewClient(cfg ClientConfig) *Client {
	return &Client{cfg: cfg, pending: make(map[consistency.RequestID]func(consistency.Reply))}
}

// Init implements node.Node.
func (c *Client) Init(ctx node.Context) {
	c.ctx = ctx
	c.stack = group.NewStack(ctx, c.cfg.Group, c.deliver)
}

// Recv implements node.Node.
func (c *Client) Recv(from node.ID, m node.Message) {
	if c.stack.Handle(from, m) {
		return
	}
	c.ctx.Logf("fifo client: unexpected raw message %T from %s", m, from)
}

func (c *Client) deliver(from node.ID, m node.Message) {
	reply, ok := m.(consistency.Reply)
	if !ok {
		return
	}
	if cb, exists := c.pending[reply.ID]; exists {
		delete(c.pending, reply.ID)
		if cb != nil {
			cb(reply)
		}
	}
}

// Update multicasts a state-modifying operation to every replica; cb fires
// on the first reply. Must be called from the node's own callbacks.
func (c *Client) Update(method string, payload []byte, cb func(consistency.Reply)) {
	c.nextSeq++
	id := consistency.RequestID{Client: c.ctx.ID(), Seq: c.nextSeq}
	c.pending[id] = cb
	req := consistency.Request{ID: id, Method: method, Payload: payload}
	for _, r := range c.cfg.Replicas {
		c.stack.Send(r, req)
	}
}

// Read sends a read-only operation to one replica, round-robin.
func (c *Client) Read(method string, payload []byte, cb func(consistency.Reply)) {
	c.nextSeq++
	id := consistency.RequestID{Client: c.ctx.ID(), Seq: c.nextSeq}
	c.pending[id] = cb
	target := c.cfg.Replicas[c.rrIndex%len(c.cfg.Replicas)]
	c.rrIndex++
	c.stack.Send(target, consistency.Request{
		ID: id, Method: method, Payload: payload, ReadOnly: true,
	})
}
