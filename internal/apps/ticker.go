package apps

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"

	"aqua/internal/app"
)

// Ticker is the paper's online stock-trading example (Section 1): a
// real-time quote board where traders tolerate slightly stale quotes in
// exchange for timely answers. Prices are fixed-point cents to keep replica
// state bit-identical.
//
// Methods:
//
//	"Quote"  payload "SYM=12345"  → reply "ok" (price in cents)
//	"Trade"  payload "SYM:+50"    → reply new price (relative adjustment)
//	"Price"  payload "SYM"        → reply price in cents (read-only)
//	"Board"  payload ""           → reply "SYM1=...;SYM2=..." (read-only)
type Ticker struct {
	cents   map[string]int64
	symbols []string // insertion order, for a deterministic Board
	version uint64
}

var _ app.Application = (*Ticker)(nil)

// NewTicker returns an empty quote board.
func NewTicker() *Ticker {
	return &Ticker{cents: make(map[string]int64)}
}

// tickerState is the canonical (deterministic-bytes) snapshot form:
// prices ride in Symbols order rather than as a gob map.
type tickerState struct {
	Symbols []string
	Prices  []int64
	Version uint64
}

// ApplyUpdate implements app.Application.
func (t *Ticker) ApplyUpdate(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Quote":
		sym, raw, ok := bytes.Cut(payload, []byte{'='})
		if !ok {
			return nil, fmt.Errorf("ticker: Quote payload %q lacks '='", payload)
		}
		cents, err := strconv.ParseInt(string(raw), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ticker: bad price %q: %w", raw, err)
		}
		t.set(string(sym), cents)
		t.version++
		return []byte("ok"), nil
	case "Trade":
		sym, raw, ok := bytes.Cut(payload, []byte{':'})
		if !ok {
			return nil, fmt.Errorf("ticker: Trade payload %q lacks ':'", payload)
		}
		delta, err := strconv.ParseInt(string(raw), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ticker: bad delta %q: %w", raw, err)
		}
		next := t.cents[string(sym)] + delta
		t.set(string(sym), next)
		t.version++
		return []byte(strconv.FormatInt(next, 10)), nil
	default:
		return nil, fmt.Errorf("ticker: unknown update method %q", method)
	}
}

func (t *Ticker) set(sym string, cents int64) {
	if _, ok := t.cents[sym]; !ok {
		t.symbols = append(t.symbols, sym)
	}
	t.cents[sym] = cents
}

// Read implements app.Application.
func (t *Ticker) Read(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Price":
		cents, ok := t.cents[string(payload)]
		if !ok {
			return nil, fmt.Errorf("ticker: unknown symbol %q", payload)
		}
		return []byte(strconv.FormatInt(cents, 10)), nil
	case "Board":
		var buf bytes.Buffer
		for i, sym := range t.symbols {
			if i > 0 {
				buf.WriteByte(';')
			}
			fmt.Fprintf(&buf, "%s=%d", sym, t.cents[sym])
		}
		return buf.Bytes(), nil
	case "Version":
		return []byte(fmt.Sprintf("v%d", t.version)), nil
	default:
		return nil, fmt.Errorf("ticker: unknown read method %q", method)
	}
}

// Version returns the number of updates applied.
func (t *Ticker) Version() uint64 { return t.version }

// Snapshot implements app.Application; the encoding is canonical.
func (t *Ticker) Snapshot() ([]byte, error) {
	st := tickerState{
		Symbols: t.symbols,
		Prices:  make([]int64, len(t.symbols)),
		Version: t.version,
	}
	for i, sym := range t.symbols {
		st.Prices[i] = t.cents[sym]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("ticker snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements app.Application.
func (t *Ticker) Restore(snapshot []byte) error {
	var st tickerState
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&st); err != nil {
		return fmt.Errorf("ticker restore: %w", err)
	}
	if len(st.Symbols) != len(st.Prices) {
		return fmt.Errorf("ticker restore: %d symbols vs %d prices", len(st.Symbols), len(st.Prices))
	}
	t.cents = make(map[string]int64, len(st.Symbols))
	for i, sym := range st.Symbols {
		t.cents[sym] = st.Prices[i]
	}
	t.symbols = st.Symbols
	t.version = st.Version
	return nil
}
