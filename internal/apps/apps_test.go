package apps

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"

	"aqua/internal/app"
)

func TestKVStoreSetGet(t *testing.T) {
	k := NewKVStore()
	rep, err := k.ApplyUpdate("Set", []byte("a=1"))
	if err != nil || string(rep) != "v1" {
		t.Fatalf("Set = %q, %v", rep, err)
	}
	got, err := k.Read("Get", []byte("a"))
	if err != nil || string(got) != "1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if v, _ := k.Read("Version", nil); string(v) != "v1" {
		t.Fatalf("Version = %q", v)
	}
}

func TestKVStoreDel(t *testing.T) {
	k := NewKVStore()
	k.ApplyUpdate("Set", []byte("a=1"))
	if _, err := k.ApplyUpdate("Del", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if got, _ := k.Read("Get", []byte("a")); len(got) != 0 {
		t.Fatalf("deleted key still returns %q", got)
	}
	if k.Version() != 2 {
		t.Fatalf("version = %d", k.Version())
	}
}

func TestKVStoreErrors(t *testing.T) {
	k := NewKVStore()
	if _, err := k.ApplyUpdate("Set", []byte("noequals")); err == nil {
		t.Fatal("malformed Set accepted")
	}
	if _, err := k.ApplyUpdate("Nope", nil); err == nil {
		t.Fatal("unknown update accepted")
	}
	if _, err := k.Read("Nope", nil); err == nil {
		t.Fatal("unknown read accepted")
	}
	if k.Version() != 0 {
		t.Fatal("failed update advanced version")
	}
}

func TestKVStoreSnapshotRoundTrip(t *testing.T) {
	k := NewKVStore()
	k.ApplyUpdate("Set", []byte("a=1"))
	k.ApplyUpdate("Set", []byte("b=2"))
	snap, err := k.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k2 := NewKVStore()
	if err := k2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got, _ := k2.Read("Get", []byte("b")); string(got) != "2" {
		t.Fatalf("restored Get = %q", got)
	}
	if k2.Version() != 2 {
		t.Fatalf("restored version = %d", k2.Version())
	}
}

func TestKVStoreRestoreEmptySnapshotOfEmptyStore(t *testing.T) {
	k := NewKVStore()
	snap, err := k.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k2 := NewKVStore()
	if err := k2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Store must remain usable after restoring a nil map.
	if _, err := k2.ApplyUpdate("Set", []byte("x=y")); err != nil {
		t.Fatal(err)
	}
}

func TestKVStoreRestoreGarbage(t *testing.T) {
	if err := NewKVStore().Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestDocumentAppendFetch(t *testing.T) {
	d := NewDocument()
	d.ApplyUpdate("Append", []byte("hello"))
	d.ApplyUpdate("Append", []byte("world"))
	got, err := d.Read("Fetch", nil)
	if err != nil || string(got) != "hello\nworld\n" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	if line, _ := d.Read("Line", []byte("1")); string(line) != "world" {
		t.Fatalf("Line 1 = %q", line)
	}
}

func TestDocumentReplace(t *testing.T) {
	d := NewDocument()
	d.ApplyUpdate("Append", []byte("one"))
	if _, err := d.ApplyUpdate("Replace", []byte("0:uno")); err != nil {
		t.Fatal(err)
	}
	if line, _ := d.Read("Line", []byte("0")); string(line) != "uno" {
		t.Fatalf("Line 0 = %q", line)
	}
	if _, err := d.ApplyUpdate("Replace", []byte("9:x")); err == nil {
		t.Fatal("out-of-range Replace accepted")
	}
	if _, err := d.ApplyUpdate("Replace", []byte("nocolon")); err == nil {
		t.Fatal("malformed Replace accepted")
	}
}

func TestDocumentErrorsAndVersion(t *testing.T) {
	d := NewDocument()
	if _, err := d.Read("Line", []byte("0")); err == nil {
		t.Fatal("Line on empty doc accepted")
	}
	if _, err := d.ApplyUpdate("Nope", nil); err == nil {
		t.Fatal("unknown update accepted")
	}
	d.ApplyUpdate("Append", []byte("x"))
	if v, _ := d.Read("Version", nil); string(v) != "v1" {
		t.Fatalf("Version = %q", v)
	}
}

func TestDocumentSnapshotRoundTrip(t *testing.T) {
	d := NewDocument()
	d.ApplyUpdate("Append", []byte("a"))
	snap, _ := d.Snapshot()
	d2 := NewDocument()
	if err := d2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got, _ := d2.Read("Fetch", nil); string(got) != "a\n" {
		t.Fatalf("restored Fetch = %q", got)
	}
	if err := d2.Restore([]byte("junk")); err == nil {
		t.Fatal("junk restore accepted")
	}
}

func TestTickerQuoteAndPrice(t *testing.T) {
	tk := NewTicker()
	if _, err := tk.ApplyUpdate("Quote", []byte("ACME=12345")); err != nil {
		t.Fatal(err)
	}
	if got, _ := tk.Read("Price", []byte("ACME")); string(got) != "12345" {
		t.Fatalf("Price = %q", got)
	}
	if _, err := tk.Read("Price", []byte("NONE")); err == nil {
		t.Fatal("unknown symbol accepted")
	}
}

func TestTickerTrade(t *testing.T) {
	tk := NewTicker()
	tk.ApplyUpdate("Quote", []byte("ACME=100"))
	rep, err := tk.ApplyUpdate("Trade", []byte("ACME:-30"))
	if err != nil || string(rep) != "70" {
		t.Fatalf("Trade = %q, %v", rep, err)
	}
	if tk.Version() != 2 {
		t.Fatalf("version = %d", tk.Version())
	}
}

func TestTickerBoardDeterministicOrder(t *testing.T) {
	tk := NewTicker()
	tk.ApplyUpdate("Quote", []byte("B=2"))
	tk.ApplyUpdate("Quote", []byte("A=1"))
	got, _ := tk.Read("Board", nil)
	if string(got) != "B=2;A=1" {
		t.Fatalf("Board = %q, want insertion order", got)
	}
}

func TestTickerErrors(t *testing.T) {
	tk := NewTicker()
	cases := []struct{ method, payload string }{
		{"Quote", "noequals"},
		{"Quote", "A=notanumber"},
		{"Trade", "nocolon"},
		{"Trade", "A:NaN"},
		{"Bogus", ""},
	}
	for _, c := range cases {
		if _, err := tk.ApplyUpdate(c.method, []byte(c.payload)); err == nil {
			t.Errorf("update %s(%q) accepted", c.method, c.payload)
		}
	}
	if _, err := tk.Read("Bogus", nil); err == nil {
		t.Fatal("unknown read accepted")
	}
}

func TestTickerSnapshotRoundTrip(t *testing.T) {
	tk := NewTicker()
	tk.ApplyUpdate("Quote", []byte("A=1"))
	tk.ApplyUpdate("Quote", []byte("B=2"))
	snap, _ := tk.Snapshot()
	tk2 := NewTicker()
	if err := tk2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	b1, _ := tk.Read("Board", nil)
	b2, _ := tk2.Read("Board", nil)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("board mismatch: %q vs %q", b1, b2)
	}
	if err := tk2.Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("junk restore accepted")
	}
}

// Property: applying the same update sequence to two fresh KV stores yields
// identical snapshots — the determinism every primary relies on.
func TestKVStoreDeterminismProperty(t *testing.T) {
	prop := func(ops [][2]string) bool {
		a, b := NewKVStore(), NewKVStore()
		apply := func(k *KVStore) {
			for _, op := range ops {
				payload := op[0] + "=" + op[1]
				k.ApplyUpdate("Set", []byte(payload))
			}
		}
		apply(a)
		apply(b)
		sa, _ := a.Snapshot()
		sb, _ := b.Snapshot()
		ra, rb := NewKVStore(), NewKVStore()
		ra.Restore(sa)
		rb.Restore(sb)
		ba, _ := ra.Read("Version", nil)
		bb, _ := rb.Read("Version", nil)
		if !bytes.Equal(ba, bb) {
			return false
		}
		for _, op := range ops {
			va, _ := ra.Read("Get", []byte(op[0]))
			vb, _ := rb.Read("Get", []byte(op[0]))
			if !bytes.Equal(va, vb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Interface compliance for all three applications.
var (
	_ app.Application = (*KVStore)(nil)
	_ app.Application = (*Document)(nil)
	_ app.Application = (*Ticker)(nil)
)

// Canonical snapshots: identical logical state must produce identical bytes
// (the anti-entropy digest depends on it), regardless of insertion order.
func TestKVStoreSnapshotCanonical(t *testing.T) {
	a, b := NewKVStore(), NewKVStore()
	a.ApplyUpdate("Set", []byte("x=1"))
	a.ApplyUpdate("Set", []byte("y=2"))
	b.ApplyUpdate("Set", []byte("y=wrong"))
	b.ApplyUpdate("Set", []byte("x=1"))
	// Converge b's logical state to a's (same version count, same data).
	b2 := NewKVStore()
	b2.ApplyUpdate("Set", []byte("y=2"))
	b2.ApplyUpdate("Set", []byte("x=1"))
	sa, _ := a.Snapshot()
	sb, _ := b2.Snapshot()
	if !bytes.Equal(sa, sb) {
		t.Fatal("identical KV state produced different snapshot bytes")
	}
	// And repeated snapshots of the same store are stable.
	for i := 0; i < 20; i++ {
		s2, _ := a.Snapshot()
		if !bytes.Equal(sa, s2) {
			t.Fatal("snapshot bytes unstable across calls")
		}
	}
}

func TestTickerSnapshotCanonical(t *testing.T) {
	a := NewTicker()
	a.ApplyUpdate("Quote", []byte("A=1"))
	a.ApplyUpdate("Quote", []byte("B=2"))
	sa, _ := a.Snapshot()
	for i := 0; i < 20; i++ {
		s2, _ := a.Snapshot()
		if !bytes.Equal(sa, s2) {
			t.Fatal("ticker snapshot bytes unstable")
		}
	}
	// Restore preserves insertion (board) order.
	b := NewTicker()
	if err := b.Restore(sa); err != nil {
		t.Fatal(err)
	}
	ba, _ := a.Read("Board", nil)
	bb, _ := b.Read("Board", nil)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("board after restore: %q vs %q", bb, ba)
	}
}

func TestKVStoreRestoreLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	type kvBad struct {
		Keys    []string
		Values  []string
		Version uint64
	}
	gobEncode(t, &buf, kvBad{Keys: []string{"a", "b"}, Values: []string{"1"}})
	if err := NewKVStore().Restore(buf.Bytes()); err == nil {
		t.Fatal("mismatched snapshot accepted")
	}
}

func gobEncode(t *testing.T, buf *bytes.Buffer, v interface{}) {
	t.Helper()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		t.Fatal(err)
	}
}
