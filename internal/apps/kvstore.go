// Package apps provides replicated applications built on the app contract:
// a versioned key-value store (the experiment workload), a shared document
// (the Section 2 motivating example), and a stock ticker (the Section 1
// real-time database example).
package apps

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"aqua/internal/app"
)

// KVStore is a deterministic string key-value store with a version counter.
//
// Methods:
//
//	"Set"  payload "key=value" → reply "v<N>"
//	"Del"  payload "key"       → reply "v<N>"
//	"Get"  payload "key"       → reply "value" (read-only)
//	"Version" payload ""       → reply "v<N>" (read-only)
type KVStore struct {
	data    map[string]string
	version uint64
}

var _ app.Application = (*KVStore)(nil)

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{data: make(map[string]string)}
}

// kvState is the gob snapshot form. Pairs are sorted by key so snapshots
// are canonical: replicas with identical state produce identical bytes,
// which the anti-entropy digest comparison depends on (gob map encoding is
// iteration-order-dependent and therefore unusable here).
type kvState struct {
	Keys    []string
	Values  []string
	Version uint64
}

// ApplyUpdate implements app.Application.
func (k *KVStore) ApplyUpdate(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Set":
		key, value, ok := bytes.Cut(payload, []byte{'='})
		if !ok {
			return nil, fmt.Errorf("kvstore: Set payload %q lacks '='", payload)
		}
		k.data[string(key)] = string(value)
	case "Del":
		delete(k.data, string(payload))
	default:
		return nil, fmt.Errorf("kvstore: unknown update method %q", method)
	}
	k.version++
	return []byte(fmt.Sprintf("v%d", k.version)), nil
}

// Read implements app.Application.
func (k *KVStore) Read(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Get":
		return []byte(k.data[string(payload)]), nil
	case "Version":
		return []byte(fmt.Sprintf("v%d", k.version)), nil
	default:
		return nil, fmt.Errorf("kvstore: unknown read method %q", method)
	}
}

// Version returns the number of updates applied.
func (k *KVStore) Version() uint64 { return k.version }

// Snapshot implements app.Application; the encoding is canonical (sorted).
func (k *KVStore) Snapshot() ([]byte, error) {
	st := kvState{
		Keys:    make([]string, 0, len(k.data)),
		Values:  make([]string, 0, len(k.data)),
		Version: k.version,
	}
	for key := range k.data {
		st.Keys = append(st.Keys, key)
	}
	sort.Strings(st.Keys)
	for _, key := range st.Keys {
		st.Values = append(st.Values, k.data[key])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("kvstore snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements app.Application.
func (k *KVStore) Restore(snapshot []byte) error {
	var st kvState
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&st); err != nil {
		return fmt.Errorf("kvstore restore: %w", err)
	}
	if len(st.Keys) != len(st.Values) {
		return fmt.Errorf("kvstore restore: %d keys vs %d values", len(st.Keys), len(st.Values))
	}
	k.data = make(map[string]string, len(st.Keys))
	for i, key := range st.Keys {
		k.data[key] = st.Values[i]
	}
	k.version = st.Version
	return nil
}
