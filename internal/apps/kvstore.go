// Package apps provides replicated applications built on the app contract:
// a versioned key-value store (the experiment workload), a shared document
// (the Section 2 motivating example), and a stock ticker (the Section 1
// real-time database example).
package apps

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"

	"aqua/internal/app"
)

// KVStore is a deterministic string key-value store with a version counter.
//
// Methods:
//
//	"Set"  payload "key=value" → reply "v<N>"
//	"Del"  payload "key"       → reply "v<N>"
//	"Get"  payload "key"       → reply "value" (read-only)
//	"Version" payload ""       → reply "v<N>" (read-only)
type KVStore struct {
	data    map[string]string
	version uint64

	// snapCache memoizes the encoded snapshot for snapVersion: the lazy
	// publisher snapshots every interval whether or not updates arrived, and
	// the bytes are immutable once handed out, so re-encoding an unchanged
	// store is pure waste. keyScratch is reused for the sort.
	snapCache   []byte
	snapVersion uint64
	keyScratch  []string
}

var _ app.Application = (*KVStore)(nil)

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{data: make(map[string]string)}
}

// Snapshot wire format (version 1): a canonical, allocation-lean binary
// encoding. Pairs are sorted by key so snapshots are canonical: replicas
// with identical state produce identical bytes, which the anti-entropy
// digest comparison depends on. (The previous gob encoding was canonical
// too, but rebuilt its type machinery — hundreds of allocations — on every
// encode and decode; snapshots travel on every lazy update.)
//
//	byte    format tag (kvSnapFormat)
//	uvarint version counter
//	uvarint pair count n
//	n ×     (uvarint key len, key bytes, uvarint value len, value bytes)
const kvSnapFormat = 1

// ApplyUpdate implements app.Application.
func (k *KVStore) ApplyUpdate(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Set":
		key, value, ok := bytes.Cut(payload, []byte{'='})
		if !ok {
			return nil, fmt.Errorf("kvstore: Set payload %q lacks '='", payload)
		}
		k.data[string(key)] = string(value)
	case "Del":
		delete(k.data, string(payload))
	default:
		return nil, fmt.Errorf("kvstore: unknown update method %q", method)
	}
	k.version++
	return versionReply(k.version), nil
}

// versionReply renders "v<N>" without the fmt machinery.
func versionReply(v uint64) []byte {
	buf := make([]byte, 1, 12)
	buf[0] = 'v'
	return strconv.AppendUint(buf, v, 10)
}

// Read implements app.Application.
func (k *KVStore) Read(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Get":
		return []byte(k.data[string(payload)]), nil
	case "Version":
		return versionReply(k.version), nil
	default:
		return nil, fmt.Errorf("kvstore: unknown read method %q", method)
	}
}

// Version returns the number of updates applied.
func (k *KVStore) Version() uint64 { return k.version }

// Snapshot implements app.Application; the encoding is canonical (sorted).
// The returned bytes are shared with later callers until the store changes
// again; receivers must treat snapshots as read-only (they already do — the
// bytes travel inside simulator messages by reference).
func (k *KVStore) Snapshot() ([]byte, error) {
	if k.snapCache != nil && k.snapVersion == k.version {
		return k.snapCache, nil
	}
	keys := k.keyScratch[:0]
	size := 1 + binary.MaxVarintLen64 + binary.MaxVarintLen64
	for key, value := range k.data {
		keys = append(keys, key)
		size += 2*binary.MaxVarintLen64 + len(key) + len(value)
	}
	sort.Strings(keys)
	k.keyScratch = keys

	buf := make([]byte, 1, size)
	buf[0] = kvSnapFormat
	buf = binary.AppendUvarint(buf, k.version)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, key := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(key)))
		buf = append(buf, key...)
		value := k.data[key]
		buf = binary.AppendUvarint(buf, uint64(len(value)))
		buf = append(buf, value...)
	}
	k.snapCache = buf
	k.snapVersion = k.version
	return buf, nil
}

// Restore implements app.Application.
func (k *KVStore) Restore(snapshot []byte) error {
	if len(snapshot) == 0 || snapshot[0] != kvSnapFormat {
		return fmt.Errorf("kvstore restore: bad snapshot format")
	}
	rest := snapshot[1:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("kvstore restore: truncated snapshot")
		}
		rest = rest[n:]
		return v, nil
	}
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if uint64(len(rest)) < l {
			return "", fmt.Errorf("kvstore restore: truncated snapshot")
		}
		s := string(rest[:l])
		rest = rest[l:]
		return s, nil
	}
	version, err := readUvarint()
	if err != nil {
		return err
	}
	n, err := readUvarint()
	if err != nil {
		return err
	}
	data := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		key, err := readString()
		if err != nil {
			return err
		}
		value, err := readString()
		if err != nil {
			return err
		}
		data[key] = value
	}
	k.data = data
	k.version = version
	// The incoming bytes are the canonical encoding of the state just
	// adopted, so they can serve future Snapshot calls directly.
	k.snapCache = snapshot
	k.snapVersion = version
	return nil
}
