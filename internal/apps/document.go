package apps

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"

	"aqua/internal/app"
)

// Document is the paper's motivating example (Section 2): "a
// document-sharing application in which multiple readers and writers
// concurrently access a document that is updated in sequential mode", where
// a client can ask for "a copy of the document that is not more than 5
// versions old within 2.0 seconds with a probability of at least 0.7".
//
// Methods:
//
//	"Append"  payload "line"   → reply "v<N>"
//	"Replace" payload "i:line" → reply "v<N>"
//	"Fetch"   payload ""       → reply full text (read-only)
//	"Line"    payload "i"      → reply line i (read-only)
//	"Version" payload ""       → reply "v<N>" (read-only)
type Document struct {
	lines   []string
	version uint64
}

var _ app.Application = (*Document)(nil)

// NewDocument returns an empty document.
func NewDocument() *Document { return &Document{} }

type docState struct {
	Lines   []string
	Version uint64
}

// ApplyUpdate implements app.Application.
func (d *Document) ApplyUpdate(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Append":
		d.lines = append(d.lines, string(payload))
	case "Replace":
		idxRaw, line, ok := bytes.Cut(payload, []byte{':'})
		if !ok {
			return nil, fmt.Errorf("document: Replace payload %q lacks ':'", payload)
		}
		i, err := strconv.Atoi(string(idxRaw))
		if err != nil || i < 0 || i >= len(d.lines) {
			return nil, fmt.Errorf("document: Replace index %q out of range", idxRaw)
		}
		d.lines[i] = string(line)
	default:
		return nil, fmt.Errorf("document: unknown update method %q", method)
	}
	d.version++
	return []byte(fmt.Sprintf("v%d", d.version)), nil
}

// Read implements app.Application.
func (d *Document) Read(method string, payload []byte) ([]byte, error) {
	switch method {
	case "Fetch":
		var buf bytes.Buffer
		for _, l := range d.lines {
			buf.WriteString(l)
			buf.WriteByte('\n')
		}
		return buf.Bytes(), nil
	case "Line":
		i, err := strconv.Atoi(string(payload))
		if err != nil || i < 0 || i >= len(d.lines) {
			return nil, fmt.Errorf("document: Line index %q out of range", payload)
		}
		return []byte(d.lines[i]), nil
	case "Version":
		return []byte(fmt.Sprintf("v%d", d.version)), nil
	default:
		return nil, fmt.Errorf("document: unknown read method %q", method)
	}
}

// Version returns the number of updates applied.
func (d *Document) Version() uint64 { return d.version }

// Snapshot implements app.Application.
func (d *Document) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(docState{Lines: d.lines, Version: d.version}); err != nil {
		return nil, fmt.Errorf("document snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements app.Application.
func (d *Document) Restore(snapshot []byte) error {
	var st docState
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&st); err != nil {
		return fmt.Errorf("document restore: %w", err)
	}
	d.lines = st.Lines
	d.version = st.Version
	return nil
}
