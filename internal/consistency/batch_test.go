package consistency

import (
	"math/rand"
	"testing"
)

// TestAssignUpdateBatchMatchesSingleton drives a batched and a singleton
// sequencer over identical random request streams (with retransmissions)
// and requires identical assignments — batching must be a pure
// amortization, never a renumbering.
func TestAssignUpdateBatchMatchesSingleton(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		one := NewSequencerState(64)
		batched := NewSequencerState(64)
		for round := 0; round < 8; round++ {
			n := 1 + r.Intn(6)
			ids := make([]RequestID, n)
			for i := range ids {
				// Small key space so retransmissions (duplicates) occur, both
				// across rounds and inside a single batch.
				ids[i] = rid("c", uint64(r.Intn(12)))
			}
			want := make(map[RequestID]uint64, n)
			for _, id := range ids {
				want[id] = one.AssignUpdate(id)
			}
			first, fresh, dups := batched.AssignUpdateBatch(ids)
			for i, id := range fresh {
				if got := first + uint64(i); got != want[id] {
					t.Fatalf("trial %d: fresh %v got GSN %d, singleton gave %d", trial, id, got, want[id])
				}
			}
			for _, d := range dups {
				if d.GSN != want[d.ID] {
					t.Fatalf("trial %d: dup %v got GSN %d, singleton gave %d", trial, d.ID, d.GSN, want[d.ID])
				}
				if !d.Update {
					t.Fatalf("trial %d: dup %v lost Update flag", trial, d.ID)
				}
			}
			if len(fresh)+len(dups) != n {
				t.Fatalf("trial %d: %d fresh + %d dups != %d ids", trial, len(fresh), len(dups), n)
			}
			if one.GSN() != batched.GSN() {
				t.Fatalf("trial %d: counters diverged %d vs %d", trial, one.GSN(), batched.GSN())
			}
		}
	}
}

// TestAssignUpdateBatchWindowContiguous pins the window contract: fresh IDs
// occupy first..first+len(fresh)-1 with no holes even when duplicates are
// interleaved through the input.
func TestAssignUpdateBatchWindowContiguous(t *testing.T) {
	s := NewSequencerState(0)
	s.AssignUpdate(rid("c", 1)) // pre-assigned: will be the dup
	first, fresh, dups := s.AssignUpdateBatch([]RequestID{
		rid("c", 2), rid("c", 1), rid("c", 3), rid("c", 3),
	})
	if first != 2 || len(fresh) != 2 || fresh[0] != rid("c", 2) || fresh[1] != rid("c", 3) {
		t.Fatalf("window = %d %v", first, fresh)
	}
	// c1 was memoized before the batch; the second c3 was memoized by the
	// first occurrence inside it.
	if len(dups) != 2 || dups[0].GSN != 1 || dups[1].GSN != 3 {
		t.Fatalf("dups = %v", dups)
	}
	if s.GSN() != 3 {
		t.Fatalf("GSN = %d, want 3", s.GSN())
	}
}

// TestAddAssignBatchMatchesSequential interleaves random bodies and a
// batched assignment window against two buffers — one taking the batch in
// one call, one taking the equivalent singleton GSNAssigns — and requires
// the same commits in the same order and the same final CSN/GSN.
func TestAddAssignBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		one := NewCommitBuffer()
		batched := NewCommitBuffer()
		next := uint64(1)
		for round := 0; round < 6; round++ {
			n := 1 + r.Intn(5)
			ids := make([]RequestID, n)
			for i := range ids {
				ids[i] = rid("w", next+uint64(i))
			}
			first := next
			next += uint64(n)
			// A random subset of bodies lands before the assignment window,
			// the rest after — both arrival orders must agree.
			var late []RequestID
			for _, id := range ids {
				if r.Intn(2) == 0 {
					late = append(late, id)
					continue
				}
				one.AddBody(Request{ID: id, Method: "Set"})
				batched.AddBody(Request{ID: id, Method: "Set"})
			}
			var want []Request
			for i, id := range ids {
				want = append(want, one.AddAssign(GSNAssign{ID: id, GSN: first + uint64(i), Update: true})...)
			}
			got := append([]Request(nil), batched.AddAssignBatch(first, ids)...)
			for _, id := range late {
				want = append(want, one.AddBody(Request{ID: id, Method: "Set"})...)
				got = append(got, batched.AddBody(Request{ID: id, Method: "Set"})...)
			}
			if len(want) != len(got) {
				t.Fatalf("trial %d round %d: %d commits vs %d", trial, round, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID {
					t.Fatalf("trial %d round %d: commit %d = %v, want %v", trial, round, i, got[i].ID, want[i].ID)
				}
			}
			if one.MyCSN() != batched.MyCSN() || one.MyGSN() != batched.MyGSN() {
				t.Fatalf("trial %d: CSN/GSN diverged %d/%d vs %d/%d",
					trial, batched.MyCSN(), batched.MyGSN(), one.MyCSN(), one.MyGSN())
			}
		}
	}
}

// TestAddAssignBatchDuplicateWindow re-delivers a committed window (the
// post-failover rebroadcast case): no re-commits, stale bodies dropped.
func TestAddAssignBatchDuplicateWindow(t *testing.T) {
	b := NewCommitBuffer()
	ids := []RequestID{rid("w", 1), rid("w", 2), rid("w", 3)}
	for _, id := range ids {
		b.AddBody(Request{ID: id, Method: "Set"})
	}
	if got := b.AddAssignBatch(1, ids); len(got) != 3 {
		t.Fatalf("first delivery committed %d, want 3", len(got))
	}
	b.AddBody(Request{ID: ids[1], Method: "Set"}) // retransmitted body
	if got := b.AddAssignBatch(1, ids); got != nil {
		t.Fatalf("duplicate window re-committed: %v", got)
	}
	if b.HasBody(ids[1]) {
		t.Fatal("stale retransmitted body not dropped by duplicate window")
	}
	if b.MyCSN() != 3 {
		t.Fatalf("CSN = %d, want 3", b.MyCSN())
	}
}

// TestAddAssignBatchGroupCommitSingleDrain stages a full window whose
// bodies all arrived first and expects the whole window in one call — the
// group-commit hot path.
func TestAddAssignBatchGroupCommitSingleDrain(t *testing.T) {
	b := NewCommitBuffer()
	const n = 64
	ids := make([]RequestID, n)
	for i := range ids {
		ids[i] = rid("w", uint64(i+1))
		b.AddBody(Request{ID: ids[i], Method: "Set"})
	}
	got := b.AddAssignBatch(1, ids)
	if len(got) != n {
		t.Fatalf("group commit released %d, want %d", len(got), n)
	}
	for i, req := range got {
		if req.ID != ids[i] {
			t.Fatalf("commit %d = %v, want %v", i, req.ID, ids[i])
		}
	}
}

// TestAddAssignBatchSteadyStateAllocs checks the hot path reuses its
// scratch: staging and draining a warm window performs no per-request
// allocations beyond map traffic.
func TestAddAssignBatchSteadyStateAllocs(t *testing.T) {
	b := NewCommitBuffer()
	ids := make([]RequestID, 32)
	for i := range ids {
		ids[i] = rid("w", uint64(i+1))
	}
	gsn := uint64(0)
	// Cycle one window of request IDs so map slots are reused; each round is
	// a fresh GSN window whose bodies all arrive, then group-commit.
	warm := func() {
		for i := range ids {
			b.AddBody(Request{ID: ids[i], Method: "Set"})
		}
		first := gsn + 1
		gsn += uint64(len(ids))
		b.AddAssignBatch(first, ids)
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(50, warm)
	// Map insert/delete churn may allocate occasionally; the point is that
	// the drain/stage path itself is amortized, not one-alloc-per-request.
	if allocs > float64(len(ids))/4 {
		t.Fatalf("AddAssignBatch steady state allocates %.1f per window of %d", allocs, len(ids))
	}
}
