// Package consistency implements the paper's tunable consistency protocols
// (Section 4): the wire messages exchanged between client gateways, server
// gateways, the sequencer and the lazy publisher, plus the pure protocol
// state machines — GSN assignment, commit-in-GSN-order buffering, and
// deferred-read queueing — that the replica gateway composes.
//
// The message types in this file cross process boundaries: the live TCP
// transport encodes each with a hand-written case in its binary codec
// (internal/tcpnet/wire.go, format in DESIGN.md §9), keyed by a per-type
// wire tag. Evolving a message therefore means evolving the codec in the
// same change: a new field extends the matching encode/decode pair (old
// peers reject the frame rather than misread it), a new message gets a new
// tag appended to the table, and anything incompatible bumps WireVersion.
// The codec-vs-gob differential test in tcpnet catches a struct and codec
// that have drifted apart.
package consistency

import (
	"time"

	"aqua/internal/node"
)

// RequestID uniquely identifies a client request: the issuing client plus a
// client-local sequence number.
type RequestID struct {
	Client node.ID
	Seq    uint64
}

// Request is a client gateway's invocation as transmitted to server
// gateways (and, for reads, to the sequencer).
type Request struct {
	ID       RequestID
	Method   string
	Payload  []byte
	ReadOnly bool
	// Staleness is the client's staleness threshold a; only meaningful for
	// read-only requests.
	Staleness int
}

// Reply is a server gateway's response. T1 piggybacks ts+tq+tb exactly as
// in Section 5.4 so the client can derive the gateway delay.
type Reply struct {
	ID      RequestID
	Payload []byte
	Err     string
	// T1 = service time + queueing delay + defer wait at the replica.
	T1 time.Duration
	// CSN is the replica's commit sequence number when it served the
	// request (diagnostic; staleness guarantees are enforced server-side).
	CSN uint64
	// Replica identifies the responding server gateway.
	Replica node.ID
	// Deferred reports that this reply served a read deferred until a lazy
	// state update (diagnostic; feeds client-side trace spans).
	Deferred bool
}

// GSNAssign is the sequencer's broadcast assigning (for updates) or
// reporting (for reads) the Global Sequence Number for a request.
type GSNAssign struct {
	ID RequestID
	// GSN is the assigned sequence number for updates, or the current GSN
	// (not advanced) for read-only requests.
	GSN uint64
	// Update distinguishes an assignment from a read snapshot.
	Update bool
}

// GSNAssignBatch is the sequencer's batched broadcast: one message covers a
// contiguous window of update assignments plus the read snapshots taken at
// the window's end. Semantically it is exactly the sequence of singleton
// GSNAssign messages {Updates[i] ↦ First+i, Update: true} followed by
// {Reads[j] ↦ ReadGSN, Update: false}; batching amortizes the per-broadcast
// cost of the sequencer's ordering pipeline across the window.
type GSNAssignBatch struct {
	// First is the GSN assigned to Updates[0]; Updates[i] holds GSN First+i.
	First   uint64
	Updates []RequestID
	// ReadGSN is the snapshot GSN reported for every ID in Reads: the
	// window's post-update frontier, First+len(Updates)-1 (or the
	// sequencer's GSN at flush time when the window carried no updates).
	ReadGSN uint64
	Reads   []RequestID
}

// GSNRequest asks the current sequencer to (re)issue a GSNAssign for a
// request. Replicas send it when a buffered request has waited too long for
// its assignment — the recovery path after a sequencer failover loses an
// in-flight broadcast.
type GSNRequest struct {
	ID     RequestID
	Update bool
}

// BodyRequest asks a peer primary for an update body this replica has a
// GSN assignment for but never received — the recovery path when a
// client's update multicast reached only part of the primary group. The
// peer answers by re-sending the original Request.
type BodyRequest struct {
	ID RequestID
}

// StateUpdate is the lazy publisher's periodic state propagation to the
// secondary group (also the recovery snapshot answering a SyncRequest).
type StateUpdate struct {
	// CSN is the publisher's commit sequence number at snapshot time.
	CSN uint64
	// Snapshot is the application state produced by Application.Snapshot.
	Snapshot []byte
	// RecentIDs are the request IDs of recently committed updates. A
	// recovering replica seeds its commit-dedup memo from them: a client
	// retransmission that crosses a sequencer failover can be assigned a
	// second GSN, and without the memo the restored replica would apply
	// the same logical update twice.
	RecentIDs []RequestID
}

// SyncRequest asks the current sequencer for a full state snapshot (the
// reply is a StateUpdate). Sent by replicas at startup and whenever their
// commit stream detects a gap it cannot close — the recovery path for a
// restarted replica rejoining the group.
type SyncRequest struct{}

// GSNQuery and GSNReport implement sequencer failover: a new primary-group
// leader queries the group for the highest GSN anyone has seen before it
// resumes assigning.
type (
	// GSNQuery asks a primary replica for the highest GSN it has observed.
	GSNQuery struct{ Epoch uint64 }
	// GSNReport answers a GSNQuery.
	GSNReport struct {
		Epoch uint64
		GSN   uint64
		// Assigns, sent under replicated GSN assignment, carries the
		// reporter's recent (request → GSN) assignment memo so the new
		// sequencer merges every survivor's table before resuming: any
		// assignment released to the application was acknowledged by a
		// majority, every takeover quorum intersects that majority, and the
		// merge therefore re-covers it — no assignment hole survives a
		// sequencer death. Empty in the legacy (timeout-takeover) mode.
		Assigns []GSNAssign
	}
)

// AssignAck is a primary's cumulative ordering acknowledgement under
// replicated GSN assignment (DESIGN.md §14): the sender knows the
// (GSN → request) mapping for every update GSN at or below Frontier.
// Frontiers are monotone within an incarnation, so redelivery and
// reordering are harmless.
type AssignAck struct {
	// Epoch echoes the sender's view of the sequencer era (diagnostic; the
	// floor's safety rests on frontier monotonicity, not on epochs).
	Epoch uint64
	// Frontier is the sender's contiguous assignment frontier
	// (CommitBuffer.AssignFrontier).
	Frontier uint64
}

// OrderCommit is the sequencer's replicated-ordering release: a majority of
// the primary group (sequencer included) has acknowledged every assignment
// at or below Floor, so replicas may release commits up to it. Floors are
// monotone facts — once a majority holds an assignment it holds it forever —
// so a stale or duplicated OrderCommit is harmless.
type OrderCommit struct {
	Epoch uint64
	Floor uint64
}

// DigestAnnounce is the sequencer's periodic anti-entropy beacon: its
// applied position and a hash of its state. A primary at the same position
// with a different hash has diverged (only possible in the pathological
// re-sequencing window around a sequencer crash) and resynchronizes with a
// SyncRequest.
type DigestAnnounce struct {
	Applied uint64
	Hash    uint64
}

// SequencerAnnounce tells replicas and clients who the sequencer is after a
// failover.
type SequencerAnnounce struct {
	Sequencer node.ID
}

// ShardMapAnnounce propagates one shard-map version (internal/shard.Map) to
// routers: the ring's range starts and their owning shard indices. Routers
// ignore versions at or below the one they hold, so redelivery and
// reordering are harmless.
type ShardMapAnnounce struct {
	Version uint64
	// Shards is the total shard count; every owner index is below it.
	Shards uint32
	// Starts are the ascending range lower bounds on the 32-bit hash ring
	// (Starts[0] is always 0); Owners[i] owns [Starts[i], Starts[i+1]).
	Starts []uint32
	Owners []uint32
}

// PerfBroadcast carries a server gateway's newly measured performance
// parameters to every client (Section 5.4). The lazy publisher additionally
// fills the update-arrival counters used by the staleness model
// (Section 5.4.1).
type PerfBroadcast struct {
	Replica node.ID
	// TS, TQ, TB are the service time, queueing delay and buffering (defer)
	// time of the read this broadcast reports.
	TS, TQ, TB time.Duration
	// Deferred marks measurements from a deferred read, whose TB feeds the
	// client's history of the lazy-update wait U.
	Deferred bool
	// Primary reports whether the sender currently belongs to the primary
	// group, letting clients apply staleness factor 1 to it.
	Primary bool
	// Sequencer is the sender's current view of the sequencer identity, so
	// clients follow failovers.
	Sequencer node.ID

	// Publisher data; valid only when IsPublisher.
	IsPublisher bool
	// NU updates arrived in the TU since the publisher's last broadcast.
	NU int
	TU time.Duration
	// NL updates arrived in the TL since the last lazy state update.
	NL int
	TL time.Duration
}
