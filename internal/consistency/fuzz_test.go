package consistency

import (
	"testing"
	"time"
)

// FuzzSequencerDelivery drives a sequencer plus one primary commit buffer
// and one secondary read buffer through a byte-directed interleaving of
// submissions, deliveries, retransmissions, and state transfers. The fuzz
// input is the message schedule; the invariants are the protocol's:
//
//   - the sequencer's GSN never decreases and AssignUpdate is idempotent;
//   - committed GSNs are strictly increasing and each request commits once;
//   - staleness (my_GSN − my_CSN) is never negative;
//   - a read is served at most once, at its originally memoized GSN.
//
// A tiny request-ID space (8 writers, 8 readers) makes duplicate and
// out-of-order deliveries the common case rather than a lucky mutation.
func FuzzSequencerDelivery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77})
	// One full in-order flow: submit, deliver assign, deliver body, read.
	f.Add([]byte{0x01, 0x11, 0x21, 0x51, 0x61})
	// Reversed deliveries, a retransmission, then a state transfer.
	f.Add([]byte{0x01, 0x02, 0x22, 0x12, 0x11, 0x21, 0x31, 0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq := NewSequencerState(64)
		commit := NewCommitBuffer()
		reads := NewReadBuffer(64)

		gsnOf := make(map[RequestID]uint64)   // sequencer's memoized answers seen by the test
		committed := make(map[RequestID]bool) // each update commits at most once
		readGSN := make(map[RequestID]uint64) // first snapshot GSN per read
		readServed := make(map[RequestID]bool)
		var lastCommitGSN uint64

		checkStaleness := func() {
			if commit.Staleness() < 0 {
				t.Fatalf("negative staleness: GSN %d < CSN %d", commit.MyGSN(), commit.MyCSN())
			}
		}
		takeCommits := func(out []Request) {
			for _, r := range out {
				g, ok := gsnOf[r.ID]
				if !ok {
					t.Fatalf("committed %v without a sequencer assignment", r.ID)
				}
				if committed[r.ID] {
					t.Fatalf("%v committed twice", r.ID)
				}
				committed[r.ID] = true
				if g <= lastCommitGSN {
					t.Fatalf("commit GSNs not strictly increasing: %d after %d", g, lastCommitGSN)
				}
				lastCommitGSN = g
			}
			if commit.MyCSN() < lastCommitGSN {
				t.Fatalf("CSN %d behind last committed GSN %d", commit.MyCSN(), lastCommitGSN)
			}
			checkStaleness()
		}
		serveRead := func(pr PendingRead, ready bool) {
			if !ready {
				return
			}
			id := pr.Req.ID
			if readServed[id] {
				t.Fatalf("read %v released twice", id)
			}
			readServed[id] = true
			if want, ok := readGSN[id]; ok && pr.GSN != want {
				t.Fatalf("read %v served at GSN %d, memoized %d", id, pr.GSN, want)
			}
		}

		t0 := time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)
		for i := 0; i < len(data); i++ {
			op, arg := data[i]>>4, uint64(data[i]&0x07)+1
			wid := RequestID{Client: "w", Seq: arg}
			rdid := RequestID{Client: "r", Seq: arg}
			switch op {
			case 0: // client submits an update: sequencer assigns (idempotently)
				g := seq.AssignUpdate(wid)
				if prev, ok := gsnOf[wid]; ok && prev != g {
					t.Fatalf("AssignUpdate(%v) = %d, previously %d", wid, g, prev)
				}
				gsnOf[wid] = g
			case 1: // assignment reaches the primary (only if ever issued)
				if g, ok := gsnOf[wid]; ok {
					takeCommits(commit.AddAssign(GSNAssign{ID: wid, GSN: g, Update: true}))
				}
			case 2: // body reaches the primary (possibly before its assignment)
				takeCommits(commit.AddBody(Request{ID: wid, Method: "Set"}))
			case 3: // sequencer retransmission of an old assignment
				if g, ok := gsnOf[wid]; ok {
					takeCommits(commit.AddAssign(GSNAssign{ID: wid, GSN: g, Update: true}))
					takeCommits(commit.AddAssign(GSNAssign{ID: wid, GSN: g, Update: true}))
				}
			case 4: // state transfer up to an already-assigned GSN
				target := seq.GSN() * arg / 8
				skipped := commit.SkipTo(target)
				// Updates subsumed by the snapshot are committed-by-transfer:
				// account for them so later replays are flagged as duplicates.
				if target > lastCommitGSN && commit.MyCSN() >= target {
					for id, g := range gsnOf {
						if g <= target {
							committed[id] = true
						}
					}
					if target > lastCommitGSN {
						lastCommitGSN = target
					}
				}
				takeCommits(skipped)
			case 5: // read snapshot broadcast reaches the secondary
				g := seq.SnapshotRead(rdid)
				if prev, ok := readGSN[rdid]; ok && prev != g {
					t.Fatalf("SnapshotRead(%v) = %d, previously %d", rdid, g, prev)
				}
				readGSN[rdid] = g
				serveRead(reads.AddAssign(rdid, g))
			case 6: // read body reaches the secondary
				serveRead(reads.AddRead(Request{ID: rdid, Method: "Get",
					ReadOnly: true, Staleness: int(arg) % 3}, "client", t0))
			case 7: // read-side GSN observation folds into my_GSN
				commit.ObserveGSN(seq.GSN())
				checkStaleness()
			default:
				// ops 8..15: sequencer failover resume at (or below) its own
				// GSN — must never rewind.
				before := seq.GSN()
				seq.Resume(before * arg / 8)
				if seq.GSN() != before {
					t.Fatalf("Resume rewound GSN %d -> %d", before, seq.GSN())
				}
			}
			if g := seq.GSN(); g < lastCommitGSN {
				t.Fatalf("sequencer GSN %d behind committed %d", g, lastCommitGSN)
			}
		}
	})
}
