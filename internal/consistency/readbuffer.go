package consistency

import (
	"time"

	"aqua/internal/node"
)

// PendingRead tracks a read-only request while it moves through the
// server-side pipeline of Section 4.1.2: buffered until the sequencer's GSN
// broadcast arrives, then possibly deferred until the next lazy update.
type PendingRead struct {
	Req  Request
	From node.ID
	// ArrivedAt is when the request reached this gateway (starts tq).
	ArrivedAt time.Time
	// GSN is the sequencer's snapshot for this read, valid once assigned.
	GSN uint64
	// DeferredAt is when the replica decided to defer (starts tb); zero if
	// the read was never deferred.
	DeferredAt time.Time
}

// ReadBuffer pairs read request bodies with their GSN broadcasts, arriving
// in either order, and holds deferred reads until a state update.
//
// The sequencer broadcasts every read's GSN to all replicas, but only the
// selected subset holds the body, so unclaimed assignments (and the dedup
// memory of served requests) are bounded FIFO memos: oldest entries are
// pruned past maxMemo.
type ReadBuffer struct {
	waitingBody   map[RequestID]PendingRead // have body, waiting for GSN
	waitingAssign map[RequestID]uint64      // have GSN, waiting for body
	assignOrder   []RequestID
	deferred      []PendingRead
	seen          map[RequestID]bool // delivered or in-flight, for dedup
	seenOrder     []RequestID
	maxMemo       int
}

// NewReadBuffer creates an empty buffer. maxMemo bounds the unclaimed
// assignment and dedup memos; <=0 selects a default.
func NewReadBuffer(maxMemo int) *ReadBuffer {
	if maxMemo <= 0 {
		maxMemo = 4096
	}
	return &ReadBuffer{
		waitingBody:   make(map[RequestID]PendingRead),
		waitingAssign: make(map[RequestID]uint64),
		seen:          make(map[RequestID]bool),
		maxMemo:       maxMemo,
	}
}

// AddRead records an arriving read body. If its GSN broadcast already
// arrived the read is returned ready=true with GSN filled in; otherwise it
// is buffered. Duplicate bodies are dropped (ready=false).
func (b *ReadBuffer) AddRead(req Request, from node.ID, now time.Time) (pr PendingRead, ready bool) {
	if b.seen[req.ID] {
		return PendingRead{}, false
	}
	pr = PendingRead{Req: req, From: from, ArrivedAt: now}
	if gsn, ok := b.waitingAssign[req.ID]; ok {
		delete(b.waitingAssign, req.ID)
		b.markSeen(req.ID)
		pr.GSN = gsn
		return pr, true
	}
	b.waitingBody[req.ID] = pr
	return PendingRead{}, false
}

// AddAssign records a GSN broadcast for a read. If the body is waiting, the
// read is returned ready=true. Duplicate assignments for unseen bodies are
// memoized once.
func (b *ReadBuffer) AddAssign(id RequestID, gsn uint64) (pr PendingRead, ready bool) {
	if pr, ok := b.waitingBody[id]; ok {
		delete(b.waitingBody, id)
		b.markSeen(id)
		pr.GSN = gsn
		return pr, true
	}
	if !b.seen[id] {
		if _, dup := b.waitingAssign[id]; !dup {
			b.waitingAssign[id] = gsn
			b.assignOrder = append(b.assignOrder, id)
			if len(b.assignOrder) > b.maxMemo {
				victim := b.assignOrder[0]
				b.assignOrder = b.assignOrder[1:]
				delete(b.waitingAssign, victim)
			}
		}
	}
	return PendingRead{}, false
}

func (b *ReadBuffer) markSeen(id RequestID) {
	if b.seen[id] {
		return
	}
	b.seen[id] = true
	b.seenOrder = append(b.seenOrder, id)
	if len(b.seenOrder) > b.maxMemo {
		victim := b.seenOrder[0]
		b.seenOrder = b.seenOrder[1:]
		delete(b.seen, victim)
	}
}

// Defer parks a read that is too stale to serve until the next state
// update; now starts its tb clock.
func (b *ReadBuffer) Defer(pr PendingRead, now time.Time) {
	pr.DeferredAt = now
	b.deferred = append(b.deferred, pr)
}

// DrainDeferred removes and returns all deferred reads, oldest first. The
// caller re-checks staleness and may re-defer individual reads.
func (b *ReadBuffer) DrainDeferred() []PendingRead {
	out := b.deferred
	b.deferred = nil
	return out
}

// DeferredLen returns the number of parked deferred reads.
func (b *ReadBuffer) DeferredLen() int { return len(b.deferred) }

// AwaitingGSN returns the IDs of reads that have waited for a GSN broadcast
// since before cutoff — candidates for a GSNRequest chase after sequencer
// failover.
func (b *ReadBuffer) AwaitingGSN(cutoff time.Time) []RequestID {
	var out []RequestID
	for id, pr := range b.waitingBody {
		if pr.ArrivedAt.Before(cutoff) {
			out = append(out, id)
		}
	}
	// Sorted like PendingBodies: chase traffic must leave in a reproducible
	// order or a loaded run's event stream diverges between executions.
	sortRequestIDs(out)
	return out
}

// Forget drops memory of a request ID (bounded-state hygiene for very long
// runs; the gateway prunes IDs whose replies are long sent).
func (b *ReadBuffer) Forget(id RequestID) {
	delete(b.seen, id)
	delete(b.waitingAssign, id)
	delete(b.waitingBody, id)
}
