package consistency

import "testing"

// --- CommitBuffer replicated-assignment gate -------------------------------

func TestCommitBufferGateHoldsUntilCeiling(t *testing.T) {
	b := NewCommitBuffer()
	b.GateReleases()
	b.AddBody(upd(1))
	b.AddBody(upd(2))
	if got := b.AddAssign(assign(1, 1)); got != nil {
		t.Fatalf("released below ceiling: %v", got)
	}
	if got := b.AddAssign(assign(2, 2)); got != nil {
		t.Fatalf("released below ceiling: %v", got)
	}
	if b.MyCSN() != 0 {
		t.Fatalf("CSN advanced past ceiling: %d", b.MyCSN())
	}
	// Raising the ceiling to 1 releases exactly GSN 1.
	got := b.SetCeiling(1)
	if len(got) != 1 || got[0].ID != rid("w", 1) || b.MyCSN() != 1 {
		t.Fatalf("SetCeiling(1) = %v, CSN = %d", got, b.MyCSN())
	}
	// A stale (lower) floor is a no-op; a higher one drains the rest.
	if got := b.SetCeiling(1); got != nil {
		t.Fatalf("stale floor released commits: %v", got)
	}
	got = b.SetCeiling(5)
	if len(got) != 1 || got[0].ID != rid("w", 2) || b.MyCSN() != 2 {
		t.Fatalf("SetCeiling(5) = %v, CSN = %d", got, b.MyCSN())
	}
	if b.Ceiling() != 5 {
		t.Fatalf("Ceiling = %d, want 5", b.Ceiling())
	}
}

func TestCommitBufferUngatedIgnoresCeiling(t *testing.T) {
	b := NewCommitBuffer()
	b.AddBody(upd(1))
	if got := b.AddAssign(assign(1, 1)); len(got) != 1 {
		t.Fatalf("legacy mode gated a release: %v", got)
	}
	if got := b.SetCeiling(10); got != nil {
		t.Fatalf("SetCeiling on ungated buffer = %v", got)
	}
}

func TestCommitBufferBootstrap(t *testing.T) {
	b := NewCommitBuffer()
	b.Bootstrap(7)
	b.GateReleases()
	if b.MyCSN() != 7 || b.MyGSN() != 7 || b.Ceiling() != 7 {
		t.Fatalf("after Bootstrap(7): CSN=%d GSN=%d ceiling=%d", b.MyCSN(), b.MyGSN(), b.Ceiling())
	}
	// Duplicate assignments at or below the bootstrap frontier are absorbed.
	if got := b.AddAssign(assign(3, 3)); got != nil {
		t.Fatalf("stale assign released: %v", got)
	}
	// The next commit continues the frontier.
	b.AddBody(upd(8))
	b.AddAssign(assign(8, 8))
	got := b.SetCeiling(8)
	if len(got) != 1 || got[0].ID != rid("w", 8) || b.MyCSN() != 8 {
		t.Fatalf("commit after bootstrap = %v, CSN = %d", got, b.MyCSN())
	}
}

func TestCommitBufferAssignFrontier(t *testing.T) {
	b := NewCommitBuffer()
	b.GateReleases()
	if b.AssignFrontier() != 0 {
		t.Fatalf("empty frontier = %d", b.AssignFrontier())
	}
	// Assignments 1, 2 and 4: frontier is 2 (hole at 3).
	b.AddAssign(assign(1, 1))
	b.AddAssign(assign(2, 2))
	b.AddAssign(assign(4, 4))
	if b.AssignFrontier() != 2 {
		t.Fatalf("frontier with hole at 3 = %d, want 2", b.AssignFrontier())
	}
	// A read broadcast jumps my_GSN but must not move the assign frontier.
	b.ObserveGSN(9)
	if b.MyGSN() != 9 || b.AssignFrontier() != 2 {
		t.Fatalf("GSN=%d frontier=%d after read observe, want 9/2", b.MyGSN(), b.AssignFrontier())
	}
	// Filling the hole extends the frontier through 4; pairing bodies and
	// releasing commits keeps it at 4 (the range (CSN, 4] shrinks).
	b.AddAssign(assign(3, 3))
	if b.AssignFrontier() != 4 {
		t.Fatalf("frontier after fill = %d, want 4", b.AssignFrontier())
	}
	for seq := uint64(1); seq <= 4; seq++ {
		b.AddBody(upd(seq))
	}
	b.SetCeiling(4)
	if b.MyCSN() != 4 || b.AssignFrontier() != 4 {
		t.Fatalf("CSN=%d frontier=%d after release, want 4/4", b.MyCSN(), b.AssignFrontier())
	}
}

func TestCommitBufferAssignFrontierBatch(t *testing.T) {
	b := NewCommitBuffer()
	b.GateReleases()
	ids := []RequestID{rid("w", 1), rid("w", 2), rid("w", 3)}
	b.AddAssignBatch(1, ids)
	if b.AssignFrontier() != 3 {
		t.Fatalf("frontier after batch = %d, want 3", b.AssignFrontier())
	}
}

func TestCommitBufferSkipToRaisesCeiling(t *testing.T) {
	b := NewCommitBuffer()
	b.GateReleases()
	b.AddAssign(assign(1, 1))
	// A snapshot at CSN 5 subsumes the gate: its state is already
	// majority-committed at the publisher.
	b.SkipTo(5)
	if b.MyCSN() != 5 || b.Ceiling() != 5 {
		t.Fatalf("after SkipTo(5): CSN=%d ceiling=%d", b.MyCSN(), b.Ceiling())
	}
	if b.AssignFrontier() != 5 {
		t.Fatalf("frontier after SkipTo = %d, want 5", b.AssignFrontier())
	}
	// Commits above the snapshot wait for the ceiling again.
	b.AddBody(upd(6))
	if got := b.AddAssign(assign(6, 6)); got != nil {
		t.Fatalf("released past snapshot ceiling: %v", got)
	}
	if got := b.SetCeiling(6); len(got) != 1 || b.MyCSN() != 6 {
		t.Fatalf("SetCeiling(6) = %v, CSN = %d", got, b.MyCSN())
	}
}

// --- OrderTracker ----------------------------------------------------------

func TestOrderTrackerQuorumFloor(t *testing.T) {
	// Group of 3: quorum 2 (self + one peer).
	tr := NewOrderTracker(3)
	if tr.Quorum() != 2 {
		t.Fatalf("quorum = %d, want 2", tr.Quorum())
	}
	if f := tr.Floor(5); f != 0 {
		t.Fatalf("floor with no acks = %d, want 0", f)
	}
	tr.Observe("p01", 3)
	if f := tr.Floor(5); f != 3 {
		t.Fatalf("floor = %d, want 3 (self 5, peer 3)", f)
	}
	tr.Observe("p02", 5)
	if f := tr.Floor(5); f != 5 {
		t.Fatalf("floor = %d, want 5 (self 5, peers 3 and 5)", f)
	}
}

func TestOrderTrackerMonotone(t *testing.T) {
	tr := NewOrderTracker(3)
	tr.Observe("p01", 8)
	if f := tr.Floor(8); f != 8 {
		t.Fatalf("floor = %d, want 8", f)
	}
	// A stale ack and a lower self frontier never regress the floor.
	tr.Observe("p01", 2)
	if f := tr.Floor(3); f != 8 {
		t.Fatalf("floor regressed to %d", f)
	}
}

func TestOrderTrackerFiveNode(t *testing.T) {
	// Group of 5: quorum 3. Floor is the 3rd-largest frontier.
	tr := NewOrderTracker(5)
	tr.Observe("p01", 10)
	tr.Observe("p02", 7)
	tr.Observe("p03", 4)
	tr.Observe("p04", 1)
	if f := tr.Floor(12); f != 7 {
		t.Fatalf("floor = %d, want 7 (frontiers 12,10,7,4,1)", f)
	}
}
