package consistency

import (
	"testing"
	"time"
)

var t0 = time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)

func readReq(seq uint64) Request {
	return Request{ID: rid("r", seq), Method: "Get", ReadOnly: true, Staleness: 2}
}

func TestReadBufferBodyThenAssign(t *testing.T) {
	b := NewReadBuffer(0)
	if _, ready := b.AddRead(readReq(1), "client", t0); ready {
		t.Fatal("read ready before GSN broadcast")
	}
	pr, ready := b.AddAssign(rid("r", 1), 9)
	if !ready || pr.GSN != 9 || pr.Req.ID != rid("r", 1) || !pr.ArrivedAt.Equal(t0) {
		t.Fatalf("pr = %+v ready = %v", pr, ready)
	}
}

func TestReadBufferAssignThenBody(t *testing.T) {
	b := NewReadBuffer(0)
	if _, ready := b.AddAssign(rid("r", 1), 4); ready {
		t.Fatal("assign ready without body")
	}
	pr, ready := b.AddRead(readReq(1), "client", t0)
	if !ready || pr.GSN != 4 {
		t.Fatalf("pr = %+v ready = %v", pr, ready)
	}
}

func TestReadBufferDuplicateBodyDropped(t *testing.T) {
	b := NewReadBuffer(0)
	b.AddAssign(rid("r", 1), 4)
	if _, ready := b.AddRead(readReq(1), "client", t0); !ready {
		t.Fatal("first body should be ready")
	}
	if _, ready := b.AddRead(readReq(1), "client", t0); ready {
		t.Fatal("duplicate body served twice")
	}
}

func TestReadBufferDuplicateAssignHarmless(t *testing.T) {
	b := NewReadBuffer(0)
	b.AddRead(readReq(1), "client", t0)
	if _, ready := b.AddAssign(rid("r", 1), 4); !ready {
		t.Fatal("assign with waiting body not ready")
	}
	if _, ready := b.AddAssign(rid("r", 1), 5); ready {
		t.Fatal("duplicate assign re-released the read")
	}
	// A duplicate body after completion must also stay quiet.
	if _, ready := b.AddRead(readReq(1), "client", t0); ready {
		t.Fatal("body after completion served again")
	}
}

func TestReadBufferDeferAndDrain(t *testing.T) {
	b := NewReadBuffer(0)
	b.AddRead(readReq(1), "client", t0)
	pr, _ := b.AddAssign(rid("r", 1), 4)
	b.Defer(pr, t0.Add(5*time.Millisecond))
	if b.DeferredLen() != 1 {
		t.Fatalf("DeferredLen = %d", b.DeferredLen())
	}
	drained := b.DrainDeferred()
	if len(drained) != 1 || !drained[0].DeferredAt.Equal(t0.Add(5*time.Millisecond)) {
		t.Fatalf("drained = %+v", drained)
	}
	if b.DeferredLen() != 0 || len(b.DrainDeferred()) != 0 {
		t.Fatal("drain did not clear")
	}
}

func TestReadBufferAwaitingGSN(t *testing.T) {
	b := NewReadBuffer(0)
	b.AddRead(readReq(1), "client", t0)
	b.AddRead(readReq(2), "client", t0.Add(time.Second))
	old := b.AwaitingGSN(t0.Add(500 * time.Millisecond))
	if len(old) != 1 || old[0] != rid("r", 1) {
		t.Fatalf("AwaitingGSN = %v", old)
	}
	all := b.AwaitingGSN(t0.Add(time.Hour))
	if len(all) != 2 {
		t.Fatalf("AwaitingGSN(all) = %v", all)
	}
}

func TestReadBufferForget(t *testing.T) {
	b := NewReadBuffer(0)
	b.AddRead(readReq(1), "client", t0)
	b.AddAssign(rid("r", 1), 4)
	b.Forget(rid("r", 1))
	// After Forget, the same ID may flow through again (fresh request).
	if _, ready := b.AddRead(readReq(1), "client", t0); ready {
		t.Fatal("ready without new assign")
	}
	if _, ready := b.AddAssign(rid("r", 1), 6); !ready {
		t.Fatal("forgotten ID did not flow again")
	}
}

func TestReadBufferMemoPruning(t *testing.T) {
	b := NewReadBuffer(2)
	// Three unclaimed assignments: the oldest is pruned.
	b.AddAssign(rid("r", 1), 1)
	b.AddAssign(rid("r", 2), 2)
	b.AddAssign(rid("r", 3), 3)
	if _, ready := b.AddRead(readReq(1), "client", t0); ready {
		t.Fatal("pruned assignment still matched")
	}
	// Recent ones still match. (r1's body is now waiting, unrelated.)
	if _, ready := b.AddRead(readReq(3), "client", t0); !ready {
		t.Fatal("recent assignment lost")
	}
	// seen memo also prunes without breaking near-term dedup.
	b.AddAssign(rid("r", 2), 2)
	if _, ready := b.AddRead(readReq(2), "client", t0); !ready {
		t.Fatal("r2 should pair")
	}
	if _, ready := b.AddRead(readReq(2), "client", t0); ready {
		t.Fatal("immediate duplicate not suppressed")
	}
}
