package consistency

// Adversarial delivery tests: each table row is a hostile message schedule
// (duplicates, reordering, stale replays, restarts modeled as fresh buffers
// fed a snapshot) and the exact commit stream it must produce. These encode
// the delivery hazards the chaos harness (internal/chaos) provokes at the
// network layer, pinned down at the data-structure level.

import (
	"testing"
	"time"
)

// op is one delivery step against a CommitBuffer.
type op struct {
	kind string // "body", "assign", "skip"
	seq  uint64 // request sequence (body, assign)
	gsn  uint64 // assigned GSN (assign) or snapshot CSN (skip)
}

func body(seq uint64) op     { return op{kind: "body", seq: seq} }
func asg(seq, gsn uint64) op { return op{kind: "assign", seq: seq, gsn: gsn} }
func skip(csn uint64) op     { return op{kind: "skip", gsn: csn} }
func play(b *CommitBuffer, ops []op) []uint64 {
	var committed []uint64
	take := func(reqs []Request) {
		for _, r := range reqs {
			committed = append(committed, r.ID.Seq)
		}
	}
	for _, o := range ops {
		switch o.kind {
		case "body":
			take(b.AddBody(upd(o.seq)))
		case "assign":
			take(b.AddAssign(assign(o.seq, o.gsn)))
		case "skip":
			take(b.SkipTo(o.gsn))
		}
	}
	return committed
}

func TestCommitBufferAdversarialDelivery(t *testing.T) {
	cases := []struct {
		name      string
		ops       []op
		commits   []uint64 // expected committed seqs, in order
		csn, gsn  uint64
		staleness int
	}{
		{
			name: "reversed assignment order",
			ops: []op{
				body(1), body(2), body(3),
				asg(3, 3), asg(2, 2), asg(1, 1),
			},
			commits: []uint64{1, 2, 3}, csn: 3, gsn: 3,
		},
		{
			name: "interleaved duplicates of every message",
			ops: []op{
				body(2), body(2), asg(2, 2), asg(2, 2),
				asg(1, 1), asg(1, 1), body(1), body(1),
			},
			commits: []uint64{1, 2}, csn: 2, gsn: 2,
		},
		{
			name: "duplicate assignment while still unpaired keeps first GSN",
			ops: []op{
				asg(1, 1), asg(1, 1), // sequencer retransmit, same GSN
				body(1),
			},
			commits: []uint64{1}, csn: 1, gsn: 1,
		},
		{
			name: "replayed pair after commit stays quiet",
			ops: []op{
				body(1), asg(1, 1),
				asg(1, 1), body(1), asg(1, 1),
			},
			commits: []uint64{1}, csn: 1, gsn: 1,
		},
		{
			name: "hole stalls everything behind it",
			ops: []op{
				body(1), asg(1, 1),
				body(3), asg(3, 3), body(4), asg(4, 4), // 2 missing
			},
			commits: []uint64{1}, csn: 1, gsn: 4, staleness: 3,
		},
		{
			name: "late straggler releases the stalled run",
			ops: []op{
				body(3), asg(3, 3), body(4), asg(4, 4),
				body(2), asg(2, 2), body(1), asg(1, 1),
			},
			commits: []uint64{1, 2, 3, 4}, csn: 4, gsn: 4,
		},
		{
			name: "snapshot subsumes staged updates and releases the tail",
			ops: []op{
				body(2), asg(2, 2), body(3), asg(3, 3),
				skip(2), // state transfer covers 1..2
			},
			commits: []uint64{3}, csn: 3, gsn: 3,
		},
		{
			name: "restart recovery: snapshot then replayed old traffic",
			// A fresh buffer (post-restart) restores to CSN 5 via state
			// transfer; the network then replays pre-crash bodies and
			// assignments 3..5. None may commit again; new update 6 may.
			ops: []op{
				skip(5),
				body(3), asg(3, 3), asg(4, 4), body(4), body(5), asg(5, 5),
				body(6), asg(6, 6),
			},
			commits: []uint64{6}, csn: 6, gsn: 6,
		},
		{
			name: "assignment racing ahead of snapshot is dropped as stale",
			ops: []op{
				asg(2, 2), // assignment arrives, body lost in a partition
				skip(4),   // snapshot already covers GSN 2
				body(2),   // body finally arrives — must not commit
			},
			commits: nil, csn: 4, gsn: 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewCommitBuffer()
			got := play(b, tc.ops)
			if len(got) != len(tc.commits) {
				t.Fatalf("commits = %v, want %v", got, tc.commits)
			}
			for i := range got {
				if got[i] != tc.commits[i] {
					t.Fatalf("commits = %v, want %v", got, tc.commits)
				}
			}
			if b.MyCSN() != tc.csn || b.MyGSN() != tc.gsn {
				t.Fatalf("CSN/GSN = %d/%d, want %d/%d", b.MyCSN(), b.MyGSN(), tc.csn, tc.gsn)
			}
			if b.Staleness() != tc.staleness {
				t.Fatalf("staleness = %d, want %d", b.Staleness(), tc.staleness)
			}
		})
	}
}

// TestCommitBufferFaultReorderHook pins the behavior of the deliberate bug
// the chaos acceptance test plants: with the hook armed, drain releases a
// staged update across a one-GSN hole — exactly the violation the
// sequential-consistency oracle exists to catch.
func TestCommitBufferFaultReorderHook(t *testing.T) {
	b := NewCommitBuffer()
	b.EnableFaultReorder()
	got := play(b, []op{body(2), asg(2, 2)}) // hole at 1
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("armed hook commits = %v, want [2]", got)
	}
	if b.MyCSN() != 2 {
		t.Fatalf("CSN = %d, want 2 (jumped the hole)", b.MyCSN())
	}
	// Sanity: without the hook the same schedule stalls.
	clean := NewCommitBuffer()
	if got := play(clean, []op{body(2), asg(2, 2)}); got != nil {
		t.Fatalf("clean buffer committed %v across a hole", got)
	}
}

// TestReadBufferReDeferral models the secondary's lazy-update drain loop
// (replica.Gateway.redefer): a deferred read whose staleness bound is still
// violated after a state update goes back on the deferred queue with its
// original DeferredAt preserved, so the paper's tb clock keeps accumulating
// across re-deferrals.
func TestReadBufferReDeferral(t *testing.T) {
	cases := []struct {
		name      string
		gsn       uint64 // read's snapshot GSN
		staleness int
		csnAfter  []uint64 // replica CSN after each successive lazy update
		servedOn  int      // index of the update that releases it; -1 = never
	}{
		{name: "released on first update", gsn: 10, staleness: 2,
			csnAfter: []uint64{8}, servedOn: 0},
		{name: "still stale once, released on second", gsn: 10, staleness: 2,
			csnAfter: []uint64{7, 8}, servedOn: 1},
		{name: "re-deferred twice, released on third", gsn: 10, staleness: 0,
			csnAfter: []uint64{7, 9, 10}, servedOn: 2},
		{name: "never covered within the run", gsn: 10, staleness: 0,
			csnAfter: []uint64{7, 8}, servedOn: -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewReadBuffer(0)
			req := Request{ID: rid("r", 1), Method: "Get", ReadOnly: true,
				Staleness: tc.staleness}
			b.AddRead(req, "client", t0)
			pr, ready := b.AddAssign(rid("r", 1), tc.gsn)
			if !ready {
				t.Fatal("read did not pair")
			}
			deferredAt := t0.Add(3 * time.Millisecond)
			b.Defer(pr, deferredAt)

			served := -1
			for i, csn := range tc.csnAfter {
				for _, d := range b.DrainDeferred() {
					if int64(d.GSN)-int64(csn) <= int64(d.Req.Staleness) {
						if served >= 0 {
							t.Fatal("read served twice")
						}
						served = i
						if !d.DeferredAt.Equal(deferredAt) {
							t.Fatalf("DeferredAt = %v, want original %v (tb must accumulate)",
								d.DeferredAt, deferredAt)
						}
					} else {
						// Mirror Gateway.redefer: preserve the original tb start.
						b.Defer(d, d.DeferredAt)
					}
				}
			}
			if served != tc.servedOn {
				t.Fatalf("served on update %d, want %d", served, tc.servedOn)
			}
			if tc.servedOn == -1 && b.DeferredLen() != 1 {
				t.Fatalf("DeferredLen = %d, want 1 (still parked)", b.DeferredLen())
			}
		})
	}
}

// TestReadBufferAdversarialAssignReplay: duplicate and contradictory GSN
// broadcasts (possible during sequencer failover, where the new sequencer
// re-answers chased reads) never double-serve and never resurrect a served
// read.
func TestReadBufferAdversarialAssignReplay(t *testing.T) {
	b := NewReadBuffer(0)
	// Assignment, duplicate assignment with a different GSN (failover
	// re-answer), then the body: first memoized GSN wins.
	b.AddAssign(rid("r", 1), 4)
	b.AddAssign(rid("r", 1), 6)
	pr, ready := b.AddRead(readReq(1), "client", t0)
	if !ready || pr.GSN != 4 {
		t.Fatalf("pr = %+v ready = %v, want GSN 4", pr, ready)
	}
	// Post-serve replays of both assignment and body stay quiet.
	if _, ready := b.AddAssign(rid("r", 1), 6); ready {
		t.Fatal("post-serve assignment replay re-released the read")
	}
	if _, ready := b.AddRead(readReq(1), "client", t0); ready {
		t.Fatal("post-serve body replay re-released the read")
	}
}
