package consistency

import (
	"testing"
	"testing/quick"

	"aqua/internal/node"
)

func rid(client string, seq uint64) RequestID {
	return RequestID{Client: node.ID("c-" + client), Seq: seq}
}

func TestSequencerAssignsMonotonically(t *testing.T) {
	s := NewSequencerState(0)
	for i := uint64(1); i <= 5; i++ {
		if got := s.AssignUpdate(rid("a", i)); got != i {
			t.Fatalf("assignment %d = %d", i, got)
		}
	}
	if s.GSN() != 5 {
		t.Fatalf("GSN = %d, want 5", s.GSN())
	}
}

func TestSequencerDuplicateUpdateKeepsGSN(t *testing.T) {
	s := NewSequencerState(0)
	id := rid("a", 1)
	g1 := s.AssignUpdate(id)
	s.AssignUpdate(rid("a", 2))
	g2 := s.AssignUpdate(id) // retransmission
	if g1 != g2 {
		t.Fatalf("duplicate got %d, original %d", g2, g1)
	}
	if s.GSN() != 2 {
		t.Fatalf("duplicate advanced GSN to %d", s.GSN())
	}
}

func TestSequencerReadDoesNotAdvance(t *testing.T) {
	s := NewSequencerState(0)
	s.AssignUpdate(rid("a", 1))
	if got := s.SnapshotRead(rid("b", 1)); got != 1 {
		t.Fatalf("read snapshot = %d, want 1", got)
	}
	if s.GSN() != 1 {
		t.Fatal("read advanced the GSN")
	}
}

func TestSequencerReadSnapshotIsStable(t *testing.T) {
	s := NewSequencerState(0)
	s.AssignUpdate(rid("a", 1))
	readID := rid("b", 1)
	g1 := s.SnapshotRead(readID)
	s.AssignUpdate(rid("a", 2)) // GSN moves on
	g2 := s.SnapshotRead(readID)
	if g1 != g2 {
		t.Fatalf("re-requested read snapshot changed: %d -> %d", g1, g2)
	}
}

func TestSequencerResumeNeverRegresses(t *testing.T) {
	s := NewSequencerState(0)
	s.Resume(10)
	if s.GSN() != 10 {
		t.Fatalf("GSN after resume = %d", s.GSN())
	}
	s.Resume(5)
	if s.GSN() != 10 {
		t.Fatal("Resume moved GSN backwards")
	}
	if got := s.AssignUpdate(rid("a", 1)); got != 11 {
		t.Fatalf("assignment after resume = %d, want 11", got)
	}
}

func TestSequencerMemoPruning(t *testing.T) {
	s := NewSequencerState(3)
	ids := []RequestID{rid("a", 1), rid("a", 2), rid("a", 3), rid("a", 4)}
	for _, id := range ids {
		s.AssignUpdate(id)
	}
	// The oldest memo (a,1) was pruned; re-assigning gives a fresh number.
	if got := s.AssignUpdate(ids[0]); got != 5 {
		t.Fatalf("pruned duplicate = %d, want fresh 5", got)
	}
	// Recent ones are still memoized.
	if got := s.AssignUpdate(ids[3]); got != 4 {
		t.Fatalf("recent duplicate = %d, want 4", got)
	}
}

// Property: assigned GSNs for distinct IDs are exactly 1..n in order.
func TestSequencerDenseAssignmentProperty(t *testing.T) {
	prop := func(n uint8) bool {
		s := NewSequencerState(0)
		for i := uint64(0); i < uint64(n); i++ {
			if s.AssignUpdate(rid("x", i)) != i+1 {
				return false
			}
		}
		return s.GSN() == uint64(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
