package consistency

import (
	"testing"
	"testing/quick"
)

func upd(seq uint64) Request {
	return Request{ID: rid("w", seq), Method: "Set"}
}

func assign(seq, gsn uint64) GSNAssign {
	return GSNAssign{ID: rid("w", seq), GSN: gsn, Update: true}
}

func TestCommitBufferBodyThenAssign(t *testing.T) {
	b := NewCommitBuffer()
	if got := b.AddBody(upd(1)); got != nil {
		t.Fatalf("committed before assignment: %v", got)
	}
	got := b.AddAssign(assign(1, 1))
	if len(got) != 1 || got[0].ID != rid("w", 1) {
		t.Fatalf("commit = %v", got)
	}
	if b.MyCSN() != 1 || b.MyGSN() != 1 {
		t.Fatalf("CSN/GSN = %d/%d", b.MyCSN(), b.MyGSN())
	}
}

func TestCommitBufferAssignThenBody(t *testing.T) {
	b := NewCommitBuffer()
	if got := b.AddAssign(assign(1, 1)); got != nil {
		t.Fatalf("committed before body: %v", got)
	}
	got := b.AddBody(upd(1))
	if len(got) != 1 {
		t.Fatalf("commit = %v", got)
	}
}

func TestCommitBufferOutOfOrderCommitsSequentially(t *testing.T) {
	b := NewCommitBuffer()
	// GSN 2 fully arrives first; it must wait for GSN 1.
	b.AddBody(upd(2))
	if got := b.AddAssign(assign(2, 2)); got != nil {
		t.Fatalf("out-of-order commit: %v", got)
	}
	if b.Staleness() != 2 {
		t.Fatalf("staleness = %d, want 2", b.Staleness())
	}
	b.AddBody(upd(1))
	got := b.AddAssign(assign(1, 1))
	if len(got) != 2 || got[0].ID != rid("w", 1) || got[1].ID != rid("w", 2) {
		t.Fatalf("drain = %v, want updates 1 then 2", got)
	}
	if b.MyCSN() != 2 || b.Staleness() != 0 {
		t.Fatalf("CSN = %d staleness = %d", b.MyCSN(), b.Staleness())
	}
}

func TestCommitBufferDuplicateBodyIgnored(t *testing.T) {
	b := NewCommitBuffer()
	b.AddBody(upd(1))
	b.AddBody(upd(1))
	got := b.AddAssign(assign(1, 1))
	if len(got) != 1 {
		t.Fatalf("duplicate body caused %d commits", len(got))
	}
}

func TestCommitBufferDuplicateAssignAfterCommitIgnored(t *testing.T) {
	b := NewCommitBuffer()
	b.AddBody(upd(1))
	b.AddAssign(assign(1, 1))
	if got := b.AddAssign(assign(1, 1)); got != nil {
		t.Fatalf("re-commit on duplicate assign: %v", got)
	}
	// A late duplicate body for a committed GSN must also be dropped.
	if got := b.AddBody(upd(1)); got != nil {
		t.Fatalf("late body recommitted: %v", got)
	}
	if got := b.AddAssign(assign(1, 1)); got != nil {
		t.Fatalf("stale pair recommitted: %v", got)
	}
}

func TestCommitBufferObserveGSNTracksReads(t *testing.T) {
	b := NewCommitBuffer()
	b.ObserveGSN(7)
	if b.MyGSN() != 7 || b.Staleness() != 7 {
		t.Fatalf("GSN/staleness = %d/%d", b.MyGSN(), b.Staleness())
	}
	b.ObserveGSN(3) // never regresses
	if b.MyGSN() != 7 {
		t.Fatal("ObserveGSN regressed")
	}
}

func TestCommitBufferSkipTo(t *testing.T) {
	b := NewCommitBuffer()
	// Updates 1..3 staged but only 2 and 3 fully arrive.
	b.AddBody(upd(2))
	b.AddAssign(assign(2, 2))
	b.AddBody(upd(3))
	b.AddAssign(assign(3, 3))
	// State transfer covers through CSN 2: update 2 is subsumed, update 3
	// becomes sequential and commits.
	got := b.SkipTo(2)
	if len(got) != 1 || got[0].ID != rid("w", 3) {
		t.Fatalf("SkipTo drained %v, want update 3", got)
	}
	if b.MyCSN() != 3 {
		t.Fatalf("CSN = %d, want 3", b.MyCSN())
	}
	if got := b.SkipTo(1); got != nil || b.MyCSN() != 3 {
		t.Fatal("SkipTo regressed")
	}
}

func TestCommitBufferPendingBodies(t *testing.T) {
	b := NewCommitBuffer()
	b.AddBody(upd(1))
	b.AddBody(upd(2))
	if !b.HasBody(rid("w", 1)) {
		t.Fatal("HasBody false for pending body")
	}
	if got := b.PendingBodies(); len(got) != 2 {
		t.Fatalf("PendingBodies = %v", got)
	}
	b.AddAssign(assign(1, 1))
	if b.HasBody(rid("w", 1)) {
		t.Fatal("HasBody true after commit")
	}
}

// Property: for any interleaving where bodies and assignments of updates
// 1..n arrive in arbitrary (permuted) order, commits come out exactly
// 1..n in GSN order.
func TestCommitBufferPermutationProperty(t *testing.T) {
	prop := func(bodyOrder, assignOrder []uint8, interleave []bool) bool {
		const n = 8
		permute := func(raw []uint8) []uint64 {
			p := make([]uint64, n)
			for i := range p {
				p[i] = uint64(i + 1)
			}
			for i, b := range raw {
				j, k := int(b)%n, i%n
				p[j], p[k] = p[k], p[j]
			}
			return p
		}
		bodies, assigns := permute(bodyOrder), permute(assignOrder)
		b := NewCommitBuffer()
		var committed []uint64
		take := func(reqs []Request) {
			for _, r := range reqs {
				committed = append(committed, r.ID.Seq)
			}
		}
		bi, ai := 0, 0
		for bi < n || ai < n {
			useBody := bi < n && (ai >= n || (len(interleave) > 0 && interleave[(bi+ai)%len(interleave)]))
			if useBody {
				take(b.AddBody(upd(bodies[bi])))
				bi++
			} else {
				g := assigns[ai]
				take(b.AddAssign(assign(g, g)))
				ai++
			}
		}
		if len(committed) != n || b.MyCSN() != n {
			return false
		}
		for i, g := range committed {
			if g != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCommitBufferPendingAssignmentsAndBody(t *testing.T) {
	b := NewCommitBuffer()
	b.AddAssign(assign(1, 1)) // assignment without body
	got := b.PendingAssignments()
	if len(got) != 1 || got[0] != rid("w", 1) {
		t.Fatalf("PendingAssignments = %v", got)
	}
	if _, ok := b.Body(rid("w", 1)); ok {
		t.Fatal("Body reported a body that never arrived")
	}
	b.AddBody(upd(2)) // body without assignment
	if req, ok := b.Body(rid("w", 2)); !ok || req.ID != rid("w", 2) {
		t.Fatalf("Body = %+v, %v", req, ok)
	}
	// Completing update 1 clears its pending assignment.
	b.AddBody(upd(1))
	if len(b.PendingAssignments()) != 0 {
		t.Fatalf("PendingAssignments after commit = %v", b.PendingAssignments())
	}
}
