package consistency

import "sort"

// CommitBuffer implements the primary replica's commit-in-GSN-order logic
// from Section 4.1.1. A replica holds two pieces of state, my_GSN and
// my_CSN; an update may be delivered to the application only when both the
// request body (from the client) and its GSN assignment (from the
// sequencer) have arrived, and only in strictly increasing GSN order. The
// buffer pairs up bodies and assignments arriving in either order and emits
// commits as they become sequential.
type CommitBuffer struct {
	myGSN uint64
	myCSN uint64

	// pendingGSN maps request IDs to assigned GSNs received before (or
	// with) their bodies.
	pendingGSN map[RequestID]uint64
	// pendingBody holds update bodies awaiting their GSN assignment.
	pendingBody map[RequestID]Request
	// ready holds fully-paired updates keyed by GSN, awaiting their turn.
	ready map[uint64]Request

	// faultReorder, set only by EnableFaultReorder, makes drain release a
	// staged update across a one-GSN hole — a deliberate protocol violation
	// used to prove the chaos harness's sequential-consistency oracle
	// detects ordering bugs rather than merely tolerating faults.
	faultReorder bool

	// Replicated GSN assignment (DESIGN.md §14) adds a release gate: when
	// gated, drain stops at the ceiling — the highest GSN the sequencer has
	// announced as majority-replicated (OrderCommit.Floor) — so no commit is
	// released to the application before its assignment survives any
	// sequencer death. assigned maps the update GSNs above my_CSN whose
	// assignments this replica holds to their request IDs, backing
	// AssignFrontier and ContiguousAssigns (the durable-logging input); it
	// is maintained only when gated.
	gated    bool
	ceiling  uint64
	assigned map[uint64]RequestID

	// drainScratch and idScratch back the slices returned by
	// AddBody/AddAssign/SkipTo and PendingBodies/PendingAssignments. The
	// returned slices are valid only until the next call on the buffer;
	// every caller consumes them synchronously (the runtimes serialize all
	// callbacks of the owning node), and commits flow on every update, so
	// reusing the backing array removes a per-commit allocation.
	drainScratch []Request
	idScratch    []RequestID
}

// NewCommitBuffer creates an empty buffer with my_GSN = my_CSN = 0.
func NewCommitBuffer() *CommitBuffer {
	return &CommitBuffer{
		pendingGSN:  make(map[RequestID]uint64),
		pendingBody: make(map[RequestID]Request),
		ready:       make(map[uint64]Request),
	}
}

// MyGSN returns the replica's local view of the highest GSN it has seen.
func (b *CommitBuffer) MyGSN() uint64 { return b.myGSN }

// MyCSN returns the commit sequence number: the GSN of the most recent
// update committed. Every update with GSN <= MyCSN has been committed.
func (b *CommitBuffer) MyCSN() uint64 { return b.myCSN }

// Staleness returns my_GSN − my_CSN, the replica's staleness measure from
// Section 4.1.2.
func (b *CommitBuffer) Staleness() int { return int(b.myGSN - b.myCSN) }

// StagedLen returns how many updates sit in the buffer waiting to commit:
// paired updates out of sequence plus half-arrived bodies and assignments.
// It is an O(1) depth reading for the observability layer.
func (b *CommitBuffer) StagedLen() int {
	return len(b.ready) + len(b.pendingBody) + len(b.pendingGSN)
}

// Bootstrap seeds a recovered replica's position: my_GSN = my_CSN = csn,
// with the release ceiling at least csn (the recovered prefix was released
// before the crash). Called once, before any traffic reaches the buffer.
func (b *CommitBuffer) Bootstrap(csn uint64) {
	b.myGSN, b.myCSN = csn, csn
	if csn > b.ceiling {
		b.ceiling = csn
	}
}

// GateReleases switches the buffer into replicated-assignment mode: drain
// stops at the release ceiling until SetCeiling raises it. The ceiling
// starts at the current commit frontier, so the already-released prefix
// stays released.
func (b *CommitBuffer) GateReleases() {
	b.gated = true
	if b.assigned == nil {
		b.assigned = make(map[uint64]RequestID)
	}
	if b.myCSN > b.ceiling {
		b.ceiling = b.myCSN
	}
}

// SetCeiling raises the release ceiling to the sequencer's majority floor
// and returns the commits that become releasable, in commit order. Floors
// are monotone facts, so a stale (lower) floor is ignored. No-op when the
// buffer is not gated.
func (b *CommitBuffer) SetCeiling(floor uint64) []Request {
	if !b.gated || floor <= b.ceiling {
		return nil
	}
	b.ceiling = floor
	return b.drain()
}

// Ceiling returns the current release ceiling (meaningful only when gated).
func (b *CommitBuffer) Ceiling() uint64 { return b.ceiling }

// AssignFrontier returns the replica's contiguous assignment frontier: the
// largest A ≥ my_CSN such that this replica holds the assignment for every
// update GSN in (my_CSN, A]. This — not my_GSN, which read snapshots can
// advance past assignments the replica never received — is what an
// AssignAck reports: every GSN at or below A is locally recoverable.
// Meaningful only when gated.
func (b *CommitBuffer) AssignFrontier() uint64 {
	a := b.myCSN
	for {
		if _, ok := b.assigned[a+1]; !ok {
			return a
		}
		a++
	}
}

// ContiguousAssigns returns the assignment-table entries above from,
// contiguous from it (result[i] is the assignment for GSN from+i+1), in
// GSN order. The gateway persists these — the WAL's assign records and the
// snapshot cell's table both require contiguity. The walk starts at
// max(from, my_CSN): entries at or below my_CSN were released and dropped.
// Meaningful only when gated.
func (b *CommitBuffer) ContiguousAssigns(from uint64) []GSNAssign {
	if from < b.myCSN {
		from = b.myCSN
	}
	var out []GSNAssign
	for {
		id, ok := b.assigned[from+1]
		if !ok {
			return out
		}
		from++
		out = append(out, GSNAssign{ID: id, GSN: from, Update: true})
	}
}

// recordAssign notes an update assignment above my_CSN for AssignFrontier.
func (b *CommitBuffer) recordAssign(gsn uint64, id RequestID) {
	if b.gated {
		b.assigned[gsn] = id
	}
}

// ObserveGSN folds any externally learned GSN (e.g. from a read's GSNAssign
// broadcast) into my_GSN.
func (b *CommitBuffer) ObserveGSN(gsn uint64) {
	if gsn > b.myGSN {
		b.myGSN = gsn
	}
}

// AddBody records an update request body. It returns the requests that
// become committable, in commit order.
func (b *CommitBuffer) AddBody(req Request) []Request {
	if gsn, ok := b.pendingGSN[req.ID]; ok {
		delete(b.pendingGSN, req.ID)
		return b.stage(gsn, req)
	}
	if _, dup := b.pendingBody[req.ID]; dup {
		return nil
	}
	b.pendingBody[req.ID] = req
	return nil
}

// AddAssign records a GSN assignment. It returns the requests that become
// committable, in commit order.
func (b *CommitBuffer) AddAssign(a GSNAssign) []Request {
	b.ObserveGSN(a.GSN)
	if !a.Update {
		return nil
	}
	if a.GSN <= b.myCSN {
		// Already committed (duplicate assignment after failover).
		delete(b.pendingBody, a.ID)
		return nil
	}
	b.recordAssign(a.GSN, a.ID)
	if req, ok := b.pendingBody[a.ID]; ok {
		delete(b.pendingBody, a.ID)
		return b.stage(a.GSN, req)
	}
	if _, dup := b.pendingGSN[a.ID]; !dup {
		b.pendingGSN[a.ID] = a.GSN
	}
	return nil
}

// AddAssignBatch folds a contiguous window of assignments (ids[i] ↦
// first+i) into the buffer with one staging pass and at most one drain,
// and returns the requests that become committable, in commit order. It is
// equivalent to len(ids) AddAssign calls but touches the staged queue once:
// under group commit a full window typically releases in a single drain
// instead of len(ids) separate map probes ending in failure. The returned
// slice shares the buffer's scratch array (see drain).
func (b *CommitBuffer) AddAssignBatch(first uint64, ids []RequestID) []Request {
	if len(ids) == 0 {
		return nil
	}
	b.ObserveGSN(first + uint64(len(ids)) - 1)
	staged := false
	for i, id := range ids {
		gsn := first + uint64(i)
		if gsn <= b.myCSN {
			// Already committed (duplicate assignment after failover).
			delete(b.pendingBody, id)
			continue
		}
		b.recordAssign(gsn, id)
		if req, ok := b.pendingBody[id]; ok {
			delete(b.pendingBody, id)
			b.ready[gsn] = req
			staged = true
			continue
		}
		if _, dup := b.pendingGSN[id]; !dup {
			b.pendingGSN[id] = gsn
		}
	}
	if !staged {
		return nil
	}
	return b.drain()
}

// HasBody reports whether an update body is still waiting for its GSN.
func (b *CommitBuffer) HasBody(id RequestID) bool {
	_, ok := b.pendingBody[id]
	return ok
}

// PendingBodies returns the IDs of update bodies still awaiting a GSN
// assignment; the replica gateway uses it to chase lost assignments after a
// sequencer failover. The result is sorted (client, then sequence number) so
// chase messages go out in a reproducible order, and is valid only until the
// next PendingBodies/PendingAssignments call.
func (b *CommitBuffer) PendingBodies() []RequestID {
	out := b.idScratch[:0]
	for id := range b.pendingBody {
		out = append(out, id)
	}
	b.idScratch = out
	sortRequestIDs(out)
	if len(out) == 0 {
		return nil
	}
	return out
}

// PendingAssignments returns the IDs of GSN assignments whose update bodies
// have not arrived. A body that reached only part of the primary group
// stalls everyone else's commit stream at that GSN; the gateway chases
// these with BodyRequests to its peers. Sorting and slice reuse follow
// PendingBodies.
func (b *CommitBuffer) PendingAssignments() []RequestID {
	out := b.idScratch[:0]
	for id := range b.pendingGSN {
		out = append(out, id)
	}
	b.idScratch = out
	sortRequestIDs(out)
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortRequestIDs orders ids by client then per-client sequence number.
func sortRequestIDs(ids []RequestID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Client != ids[j].Client {
			return ids[i].Client < ids[j].Client
		}
		return ids[i].Seq < ids[j].Seq
	})
}

// Body returns the buffered body for id, if this replica still holds one.
func (b *CommitBuffer) Body(id RequestID) (Request, bool) {
	req, ok := b.pendingBody[id]
	return req, ok
}

// SkipTo advances my_CSN without emitting commits. A secondary applying a
// lazy state update uses it: the snapshot already contains the effect of
// every update up to the publisher's CSN.
func (b *CommitBuffer) SkipTo(csn uint64) []Request {
	if csn <= b.myCSN {
		return nil
	}
	b.myCSN = csn
	b.ObserveGSN(csn)
	if csn > b.ceiling {
		// A snapshot's state is already majority-committed at its publisher;
		// adopting it implies release up to its CSN.
		b.ceiling = csn
	}
	// Drop staged updates the snapshot already covers, then emit any that
	// became sequential.
	for gsn := range b.ready {
		if gsn <= csn {
			delete(b.ready, gsn)
		}
	}
	if b.gated {
		for gsn := range b.assigned {
			if gsn <= csn {
				delete(b.assigned, gsn)
			}
		}
	}
	return b.drain()
}

func (b *CommitBuffer) stage(gsn uint64, req Request) []Request {
	if gsn <= b.myCSN {
		return nil // stale duplicate
	}
	b.ready[gsn] = req
	return b.drain()
}

// EnableFaultReorder arms the deliberate commit-order bug (test hook; see
// the faultReorder field). Production code never calls it.
func (b *CommitBuffer) EnableFaultReorder() { b.faultReorder = true }

// drain emits the commits that have become sequential. The returned slice
// shares the buffer's scratch array and is valid only until the next
// AddBody/AddAssign/SkipTo call.
func (b *CommitBuffer) drain() []Request {
	out := b.drainScratch[:0]
	for {
		if b.gated && b.myCSN+1 > b.ceiling {
			// Replicated-assignment gate: the next GSN is not yet known to
			// be majority-replicated; hold it until the ceiling rises.
			break
		}
		req, ok := b.ready[b.myCSN+1]
		if !ok {
			if b.faultReorder {
				// Injected bug: jump a one-GSN hole and release the next
				// staged update out of order.
				if req2, ok2 := b.ready[b.myCSN+2]; ok2 {
					delete(b.ready, b.myCSN+2)
					b.myCSN += 2
					out = append(out, req2)
					continue
				}
			}
			break
		}
		delete(b.ready, b.myCSN+1)
		b.myCSN++
		if b.gated {
			delete(b.assigned, b.myCSN)
		}
		out = append(out, req)
	}
	b.drainScratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}
