package consistency

import (
	"sort"

	"aqua/internal/node"
)

// OrderTracker is the sequencer-side half of replicated GSN assignment
// (DESIGN.md §14): it folds each primary's acknowledged assignment frontier
// (AssignAck) and computes the majority floor — the highest GSN such that a
// quorum of the primary group (sequencer included) holds every assignment at
// or below it. The sequencer broadcasts the floor as an OrderCommit; commit
// buffers release up to it.
//
// Safety rests on two monotone facts: a replica's acknowledged frontier
// never regresses within an incarnation, and a takeover quorum always
// intersects the ack quorum behind any released floor — so a new sequencer's
// GSNReport merge re-learns every released assignment. Epochs ride along for
// diagnostics only.
type OrderTracker struct {
	quorum int
	acks   map[node.ID]uint64
	floor  uint64

	// scratch backs Floor's sort; reused across calls.
	scratch []uint64
}

// NewOrderTracker sizes the tracker for a primary group of groupSize
// replicas (sequencer included): quorum = groupSize/2 + 1.
func NewOrderTracker(groupSize int) *OrderTracker {
	return &OrderTracker{
		quorum: groupSize/2 + 1,
		acks:   make(map[node.ID]uint64),
	}
}

// Quorum returns the majority size the tracker requires.
func (t *OrderTracker) Quorum() int { return t.quorum }

// Observe folds a peer's acknowledged assignment frontier. Stale (lower)
// acks are ignored: frontiers are monotone per incarnation, and a restarted
// peer's genuinely lower frontier only matters for floors not yet released —
// which Floor's own monotonicity already protects.
func (t *OrderTracker) Observe(peer node.ID, frontier uint64) {
	if frontier > t.acks[peer] {
		t.acks[peer] = frontier
	}
}

// Floor returns the majority-replicated floor given the sequencer's own
// assignment frontier: the quorum-th largest of {self} ∪ peer acks, clamped
// monotone. Zero until a quorum exists.
func (t *OrderTracker) Floor(self uint64) uint64 {
	s := append(t.scratch[:0], self)
	for _, f := range t.acks {
		s = append(s, f)
	}
	t.scratch = s
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
	if len(s) >= t.quorum {
		if f := s[t.quorum-1]; f > t.floor {
			t.floor = f
		}
	}
	return t.floor
}
