package consistency

// SequencerState is the pure state machine of the GSN sequencer: it assigns
// strictly increasing Global Sequence Numbers to update requests and
// snapshots the current GSN for read requests. Assignments are memoized so
// duplicate requests (client retransmissions, post-failover GSNRequests)
// re-receive their original number — assigning a fresh GSN to a duplicate
// would violate sequential consistency.
type SequencerState struct {
	gsn      uint64
	assigned map[RequestID]uint64
	order    []RequestID // FIFO of memoized IDs, for pruning
	maxMemo  int

	// freshScratch and dupScratch back the slices returned by
	// AssignUpdateBatch; valid only until the next call (the owning node's
	// callbacks are serialized, and the gateway copies what escapes).
	freshScratch []RequestID
	dupScratch   []GSNAssign
}

// NewSequencerState creates a sequencer state. maxMemo bounds the
// assignment memo (oldest entries are pruned); <=0 selects a default large
// enough that only long-gone requests are forgotten.
func NewSequencerState(maxMemo int) *SequencerState {
	if maxMemo <= 0 {
		maxMemo = 4096
	}
	return &SequencerState{
		assigned: make(map[RequestID]uint64),
		maxMemo:  maxMemo,
	}
}

// GSN returns the current (highest assigned) global sequence number.
func (s *SequencerState) GSN() uint64 { return s.gsn }

// Resume installs a starting GSN after failover; the new sequencer calls it
// with the highest GSN discovered by its GSNQuery round. It never moves the
// counter backwards.
func (s *SequencerState) Resume(gsn uint64) {
	if gsn > s.gsn {
		s.gsn = gsn
	}
}

// AssignUpdate returns the GSN for an update request, advancing the counter
// exactly once per distinct request ID.
func (s *SequencerState) AssignUpdate(id RequestID) uint64 {
	if g, ok := s.assigned[id]; ok {
		return g
	}
	s.gsn++
	s.memoize(id, s.gsn)
	return s.gsn
}

// AssignUpdateBatch assigns one contiguous GSN window to the IDs in ids
// that have no memoized assignment: fresh[i] receives GSN first+i, each
// memoized exactly as AssignUpdate would have. IDs already assigned (client
// retransmissions, chase re-issues — including duplicates within ids
// itself) keep their original numbers and are returned separately as
// singleton re-broadcasts. Both returned slices share the state's scratch
// buffers and are valid only until the next call; first is meaningless when
// fresh is empty.
func (s *SequencerState) AssignUpdateBatch(ids []RequestID) (first uint64, fresh []RequestID, dups []GSNAssign) {
	fresh = s.freshScratch[:0]
	dups = s.dupScratch[:0]
	for _, id := range ids {
		if g, ok := s.assigned[id]; ok {
			dups = append(dups, GSNAssign{ID: id, GSN: g, Update: true})
			continue
		}
		s.gsn++
		if len(fresh) == 0 {
			first = s.gsn
		}
		s.memoize(id, s.gsn)
		fresh = append(fresh, id)
	}
	s.freshScratch, s.dupScratch = fresh, dups
	return first, fresh, dups
}

// SnapshotRead returns the current GSN for a read request without advancing
// it. Reads are memoized too: a deferred GSNRequest for a read must observe
// the GSN the read was originally ordered against, not a later one.
func (s *SequencerState) SnapshotRead(id RequestID) uint64 {
	if g, ok := s.assigned[id]; ok {
		return g
	}
	s.memoize(id, s.gsn)
	return s.gsn
}

func (s *SequencerState) memoize(id RequestID, gsn uint64) {
	s.assigned[id] = gsn
	s.order = append(s.order, id)
	if len(s.order) > s.maxMemo {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.assigned, victim)
	}
}
