package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aqua/internal/node"
	"aqua/internal/sim"
)

// Action identifies a fault event's effect.
type Action uint8

// Fault actions. Crash/Restart target one replica; Partition/Heal manage a
// named partition; Link/LinkClear manage a symmetric link fault.
const (
	ActCrash Action = iota + 1
	ActRestart
	ActPartition
	ActHeal
	ActLink
	ActLinkClear
	// ActRestartRecover restarts the target from its durable state (WAL +
	// snapshot) instead of a blank slate. Appended so existing action values
	// stay stable.
	ActRestartRecover
)

func (a Action) String() string {
	switch a {
	case ActCrash:
		return "crash"
	case ActRestart:
		return "restart"
	case ActPartition:
		return "partition"
	case ActHeal:
		return "heal"
	case ActLink:
		return "link"
	case ActLinkClear:
		return "link_clear"
	case ActRestartRecover:
		return "restart_recover"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Event is one timed fault.
type Event struct {
	// At is virtual time since the run's start.
	At time.Duration
	// Action selects which remaining fields apply.
	Action Action
	// Target is the replica to crash or restart.
	Target node.ID
	// Name identifies a partition across its open/heal pair.
	Name string
	// SideA and SideB are the partition's sides.
	SideA, SideB []node.ID
	// From and To name the faulted link; the injector applies the fault in
	// both directions.
	From, To node.ID
	// Fault is the link degradation to install.
	Fault LinkFault
}

// String renders the event for traces; the format is deterministic.
func (e Event) String() string {
	switch e.Action {
	case ActCrash, ActRestart, ActRestartRecover:
		return fmt.Sprintf("%s %s", e.Action, e.Target)
	case ActPartition:
		return fmt.Sprintf("partition %s open {%s | %s}", e.Name, joinIDs(e.SideA), joinIDs(e.SideB))
	case ActHeal:
		return fmt.Sprintf("partition %s heal", e.Name)
	case ActLink:
		return fmt.Sprintf("link %s<>%s delay=%s jitter=%s loss=%.2f dup=%.2f",
			e.From, e.To, e.Fault.ExtraDelay, e.Fault.Jitter, e.Fault.Loss, e.Fault.DupProb)
	case ActLinkClear:
		return fmt.Sprintf("link %s<>%s clear", e.From, e.To)
	}
	return e.Action.String()
}

func joinIDs(ids []node.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}

// Schedule is a list of fault events. Order matters only among events with
// equal At (they execute in slice order); Sort arranges the slice by time
// while preserving that tiebreak.
type Schedule []Event

// Sort orders the schedule by event time, keeping the relative order of
// simultaneous events.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
}

// Observer receives fault notifications as they are injected; the check
// package's Recorder satisfies it. A nil Observer is allowed.
type Observer interface {
	Crash(node.ID)
	Restart(node.ID)
	Fault(note string)
}

// Injector executes a Schedule against a simulation run.
type Injector struct {
	// RT is the simulation runtime faults act on.
	RT *sim.Runtime
	// Faults is the mutable network-fault overlay; the runtime must have
	// been built with it as both delay and loss model for partition and
	// link events to have any effect.
	Faults *NetFaults
	// Fresh builds the replacement node for a restart (state lost; recovery
	// is the protocol's job). Required if the schedule contains restarts.
	Fresh func(id node.ID) (node.Node, error)
	// FreshRecovered builds the replacement node for a restart_recover
	// event: the node keeps its durable media and replays snapshot + WAL at
	// Init. Required if the schedule contains restart_recover events.
	FreshRecovered func(id node.ID) (node.Node, error)
	// Obs, if non-nil, is notified of every injected fault.
	Obs Observer
}

// Install posts every event of s onto the runtime's scheduler, relative to
// the current virtual time. Call it before the run starts; the events fire
// as the clock reaches them. Equal-time events fire in schedule order (the
// scheduler breaks ties by posting order).
func (in *Injector) Install(s Schedule) {
	sched := in.RT.Scheduler()
	for i := range s {
		ev := s[i]
		sched.Post(ev.At, func() { in.apply(ev) })
	}
}

func (in *Injector) apply(ev Event) {
	switch ev.Action {
	case ActCrash:
		in.RT.Crash(ev.Target)
		if in.Obs != nil {
			in.Obs.Crash(ev.Target)
		}
	case ActRestart:
		if in.Fresh == nil {
			panic("chaos: schedule contains a restart but Injector.Fresh is nil")
		}
		n, err := in.Fresh(ev.Target)
		if err != nil {
			panic(fmt.Sprintf("chaos: restart %s: %v", ev.Target, err))
		}
		// Notify the observer before Init runs: Init-time recorder events
		// (the durable path's Recover) must land in the new incarnation.
		if in.Obs != nil {
			in.Obs.Restart(ev.Target)
		}
		in.RT.Restart(ev.Target, n)
	case ActRestartRecover:
		if in.FreshRecovered == nil {
			panic("chaos: schedule contains a restart_recover but Injector.FreshRecovered is nil")
		}
		n, err := in.FreshRecovered(ev.Target)
		if err != nil {
			panic(fmt.Sprintf("chaos: restart_recover %s: %v", ev.Target, err))
		}
		if in.Obs != nil {
			in.Obs.Restart(ev.Target)
		}
		in.RT.Restart(ev.Target, n)
	case ActPartition:
		in.Faults.OpenPartition(ev.Name, ev.SideA, ev.SideB)
		in.note(ev)
	case ActHeal:
		in.Faults.Heal(ev.Name)
		in.note(ev)
	case ActLink:
		in.Faults.SetLink(ev.From, ev.To, ev.Fault)
		in.Faults.SetLink(ev.To, ev.From, ev.Fault)
		in.note(ev)
	case ActLinkClear:
		in.Faults.ClearLink(ev.From, ev.To)
		in.Faults.ClearLink(ev.To, ev.From)
		in.note(ev)
	default:
		panic(fmt.Sprintf("chaos: unknown action %v", ev.Action))
	}
}

func (in *Injector) note(ev Event) {
	if in.Obs != nil {
		in.Obs.Fault(ev.String())
	}
}
