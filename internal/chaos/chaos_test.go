package chaos

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/sim"
)

func TestNetFaultsPartitionOpenHeal(t *testing.T) {
	f := NewNetFaults(nil, nil)
	r := rand.New(rand.NewSource(1))
	if f.Drop(r, "a", "b") {
		t.Fatal("fault-free overlay dropped a message")
	}
	f.OpenPartition("p", []node.ID{"a"}, []node.ID{"b", "c"})
	if !f.Drop(r, "a", "b") || !f.Drop(r, "c", "a") {
		t.Fatal("partition did not drop cross-side traffic")
	}
	if f.Drop(r, "b", "c") {
		t.Fatal("partition dropped same-side traffic")
	}
	if f.Drop(r, "a", "d") {
		t.Fatal("partition dropped traffic of an unlisted node")
	}
	f.Heal("p")
	if f.Drop(r, "a", "b") {
		t.Fatal("healed partition still dropping")
	}
	f.Heal("p") // healing twice is a no-op
}

func TestNetFaultsLinkFault(t *testing.T) {
	base := netsim.ConstantDelay(time.Millisecond)
	f := NewNetFaults(base, nil)
	r := rand.New(rand.NewSource(1))

	f.SetLink("a", "b", LinkFault{ExtraDelay: 10 * time.Millisecond})
	if d := f.Delay(r, "a", "b"); d != 11*time.Millisecond {
		t.Fatalf("faulted delay = %v, want 11ms", d)
	}
	if d := f.Delay(r, "b", "a"); d != time.Millisecond {
		t.Fatalf("reverse direction delay = %v, want base 1ms", d)
	}

	f.SetLink("a", "b", LinkFault{Loss: 1.0})
	if !f.Drop(r, "a", "b") {
		t.Fatal("loss=1 link did not drop")
	}
	f.SetLink("a", "b", LinkFault{DupProb: 1.0})
	if f.Dup(r, "a", "b") != 1 {
		t.Fatal("dup=1 link did not duplicate")
	}
	if f.Dup(r, "b", "a") != 0 {
		t.Fatal("reverse direction duplicated")
	}
	f.ClearLink("a", "b")
	if f.Drop(r, "a", "b") || f.Dup(r, "a", "b") != 0 {
		t.Fatal("cleared link still faulted")
	}
	// A zero fault clears too.
	f.SetLink("a", "b", LinkFault{Loss: 0.5})
	f.SetLink("a", "b", LinkFault{})
	if f.Drop(rand.New(rand.NewSource(2)), "a", "b") {
		t.Fatal("zero SetLink did not clear the fault")
	}
}

func topo() Topology {
	return Topology{
		Sequencer:   "p00",
		Primaries:   []node.ID{"p01", "p02", "p03"},
		Secondaries: []node.ID{"s00", "s01", "s02", "s03", "s04"},
		Clients:     []node.ID{"c00", "c01"},
	}
}

func genCfg() GenConfig {
	return GenConfig{
		Horizon:       2 * time.Second,
		Crashes:       4,
		SequencerKill: true,
		Partitions:    2,
		LinkFaults:    3,
	}
}

// TestGenerateDeterministic: the same seed yields the exact same schedule.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), topo(), genCfg())
	b := Generate(rand.New(rand.NewSource(42)), topo(), genCfg())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\nvs\n%v", a, b)
	}
	c := Generate(rand.New(rand.NewSource(43)), topo(), genCfg())
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateGuardRails checks every seed-generated schedule respects the
// fault-model rails: crashes pair with restarts, partitions heal and only
// isolate secondaries, at most one serving-primary/sequencer down at once,
// and the schedule is time-sorted.
func TestGenerateGuardRails(t *testing.T) {
	tp := topo()
	secondaries := make(map[node.ID]bool)
	for _, id := range tp.Secondaries {
		secondaries[id] = true
	}
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(rand.New(rand.NewSource(seed)), tp, genCfg())
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].At < s[j].At }) {
			t.Fatalf("seed %d: schedule not time-sorted", seed)
		}
		down := make(map[node.ID]bool)
		openParts := make(map[string]bool)
		var primariesDown int
		for _, ev := range s {
			switch ev.Action {
			case ActCrash:
				if down[ev.Target] {
					t.Fatalf("seed %d: %s crashed while already down", seed, ev.Target)
				}
				down[ev.Target] = true
				if !secondaries[ev.Target] {
					primariesDown++
					if primariesDown > 1 {
						t.Fatalf("seed %d: two primaries down at once", seed)
					}
				}
			case ActRestart:
				if !down[ev.Target] {
					t.Fatalf("seed %d: restart of %s without a crash", seed, ev.Target)
				}
				delete(down, ev.Target)
				if !secondaries[ev.Target] {
					primariesDown--
				}
			case ActPartition:
				openParts[ev.Name] = true
				for _, id := range ev.SideB {
					if !secondaries[id] {
						t.Fatalf("seed %d: partition %s isolates non-secondary %s", seed, ev.Name, id)
					}
				}
			case ActHeal:
				if !openParts[ev.Name] {
					t.Fatalf("seed %d: heal of unopened partition %s", seed, ev.Name)
				}
				delete(openParts, ev.Name)
			}
		}
		if len(down) != 0 {
			t.Fatalf("seed %d: schedule ends with nodes still crashed: %v", seed, down)
		}
		if len(openParts) != 0 {
			t.Fatalf("seed %d: schedule ends with open partitions: %v", seed, openParts)
		}
	}
}

// echoNode counts received messages; restarts reset the count (fresh
// instance), which the injector test uses to observe the restart.
type echoNode struct{ got int }

func (n *echoNode) Init(node.Context)          {}
func (n *echoNode) Recv(node.ID, node.Message) { n.got++ }

// pulseNode sends one message to a peer every interval.
type pulseNode struct {
	to       node.ID
	interval time.Duration
}

func (n *pulseNode) Init(ctx node.Context) {
	var tick func()
	tick = func() {
		ctx.Send(n.to, "ping")
		ctx.Post(n.interval, tick)
	}
	ctx.Post(n.interval, tick)
}
func (n *pulseNode) Recv(node.ID, node.Message) {}

// TestInjectorCrashRestartAndFaults drives a two-node sim through a crash,
// a restart, a partition episode, and a duplicating link fault, verifying
// each takes effect at its scheduled virtual time.
func TestInjectorCrashRestartAndFaults(t *testing.T) {
	sched := sim.NewScheduler(1)
	faults := NewNetFaults(netsim.ConstantDelay(time.Millisecond), nil)
	rt := sim.NewRuntime(sched, sim.WithDelay(faults), sim.WithLoss(faults))

	sender := &pulseNode{to: "b", interval: 10 * time.Millisecond}
	first := &echoNode{}
	second := &echoNode{}
	rt.Register("a", sender)
	rt.Register("b", first)
	rt.Start()

	inj := &Injector{
		RT:     rt,
		Faults: faults,
		Fresh: func(id node.ID) (node.Node, error) {
			return second, nil
		},
	}
	inj.Install(Schedule{
		{At: 100 * time.Millisecond, Action: ActCrash, Target: "b"},
		{At: 200 * time.Millisecond, Action: ActRestart, Target: "b"},
		{At: 300 * time.Millisecond, Action: ActPartition, Name: "p",
			SideA: []node.ID{"a"}, SideB: []node.ID{"b"}},
		{At: 400 * time.Millisecond, Action: ActHeal, Name: "p"},
		{At: 500 * time.Millisecond, Action: ActLink, From: "a", To: "b",
			Fault: LinkFault{DupProb: 1.0}},
		{At: 600 * time.Millisecond, Action: ActLinkClear, From: "a", To: "b"},
	})

	sched.RunFor(700 * time.Millisecond)

	// Incarnation 1 received ~10 pulses before the crash; the crash ate the
	// rest of its window.
	if first.got == 0 || first.got > 10 {
		t.Fatalf("first incarnation got %d pulses, want 1..10", first.got)
	}
	// Incarnation 2 lived 200..700ms minus the 100ms partition (~40 pulses)
	// plus ~10 duplicated pulses in the 500..600ms window.
	if second.got < 40 || second.got > 60 {
		t.Fatalf("second incarnation got %d pulses, want 40..60", second.got)
	}
	if rt.Duplicated() == 0 {
		t.Fatal("duplicating link fault injected no duplicates")
	}
	if _, dropped := rt.Stats(); dropped == 0 {
		t.Fatal("partition dropped nothing")
	}
}

// TestScheduleSortStable: equal-At events keep their relative order.
func TestScheduleSortStable(t *testing.T) {
	s := Schedule{
		{At: 10, Action: ActCrash, Target: "x"},
		{At: 5, Action: ActPartition, Name: "p"},
		{At: 5, Action: ActHeal, Name: "p"},
	}
	s.Sort()
	if s[0].Action != ActPartition || s[1].Action != ActHeal || s[2].Action != ActCrash {
		t.Fatalf("unexpected order: %v", s)
	}
}
