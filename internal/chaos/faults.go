// Package chaos is the deterministic fault-injection layer for the
// simulated AQuA stack. It contributes three pieces:
//
//   - NetFaults, a mutable delay/loss/duplication model layered over the
//     netsim base models, holding the currently open partitions and per-link
//     faults;
//   - Schedule/Injector, a timed list of fault events (crash, restart,
//     partition, heal, link fault) executed on the virtual-time scheduler;
//   - Generate, a seeded random schedule builder parameterized by fault
//     rates, with guard rails that keep the generated scenario inside what
//     the protocol promises to survive.
//
// Everything is driven by the simulation's deterministic random streams and
// virtual clock, so a (seed, schedule) pair reproduces the exact same run —
// including every fault — byte for byte.
package chaos

import (
	"math/rand"
	"time"

	"aqua/internal/netsim"
	"aqua/internal/node"
)

// LinkFault describes a degraded directed link: added latency (fixed plus
// uniform jitter), extra loss, and duplication. A duplicated message's extra
// copy draws its own delay, so DupProb also induces reordering.
type LinkFault struct {
	ExtraDelay time.Duration
	Jitter     time.Duration
	Loss       float64
	DupProb    float64
}

func (f LinkFault) active() bool {
	return f.ExtraDelay > 0 || f.Jitter > 0 || f.Loss > 0 || f.DupProb > 0
}

// NetFaults is a netsim.DelayModel/LossModel/DupModel whose behaviour
// changes as the Injector opens and heals faults mid-run. All mutation
// happens from scheduler callbacks, so no locking is needed, and all
// iteration is over slices in insertion order, so random-stream consumption
// stays deterministic.
type NetFaults struct {
	delay netsim.DelayModel
	loss  netsim.LossModel

	// parts holds open partitions; partOrder fixes evaluation order (maps
	// iterate randomly, which would both reorder rand draws and break
	// reproducibility).
	parts     map[string]*netsim.Partition
	partOrder []string

	// links holds directed link faults, keyed by (from, to).
	links map[[2]node.ID]LinkFault
}

var (
	_ netsim.DelayModel = (*NetFaults)(nil)
	_ netsim.LossModel  = (*NetFaults)(nil)
	_ netsim.DupModel   = (*NetFaults)(nil)
)

// NewNetFaults wraps the base delay and loss models with an initially
// fault-free overlay. Nil bases default to zero delay / no loss.
func NewNetFaults(delay netsim.DelayModel, loss netsim.LossModel) *NetFaults {
	if delay == nil {
		delay = netsim.ConstantDelay(0)
	}
	if loss == nil {
		loss = netsim.NoLoss{}
	}
	return &NetFaults{
		delay: delay,
		loss:  loss,
		parts: make(map[string]*netsim.Partition),
		links: make(map[[2]node.ID]LinkFault),
	}
}

// OpenPartition starts dropping all traffic between sides a and b, under a
// name Heal can later refer to. Opening an already-open name replaces it.
func (f *NetFaults) OpenPartition(name string, a, b []node.ID) {
	if _, open := f.parts[name]; !open {
		f.partOrder = append(f.partOrder, name)
	}
	f.parts[name] = netsim.NewPartition(a, b)
}

// Heal closes the named partition. Healing an unknown name is a no-op.
func (f *NetFaults) Heal(name string) {
	if _, open := f.parts[name]; !open {
		return
	}
	delete(f.parts, name)
	for i, n := range f.partOrder {
		if n == name {
			f.partOrder = append(f.partOrder[:i], f.partOrder[i+1:]...)
			break
		}
	}
}

// SetLink installs a fault on the directed link from → to, replacing any
// previous one. A zero fault clears the link.
func (f *NetFaults) SetLink(from, to node.ID, lf LinkFault) {
	key := [2]node.ID{from, to}
	if !lf.active() {
		delete(f.links, key)
		return
	}
	f.links[key] = lf
}

// ClearLink removes the fault on the directed link from → to.
func (f *NetFaults) ClearLink(from, to node.ID) {
	delete(f.links, [2]node.ID{from, to})
}

// Delay implements netsim.DelayModel: the base delay plus any link fault's
// fixed delay and jitter draw.
func (f *NetFaults) Delay(r *rand.Rand, from, to node.ID) time.Duration {
	d := f.delay.Delay(r, from, to)
	if lf, ok := f.links[[2]node.ID{from, to}]; ok {
		d += lf.ExtraDelay
		if lf.Jitter > 0 {
			d += time.Duration(r.Int63n(int64(lf.Jitter) + 1))
		}
	}
	return d
}

// Drop implements netsim.LossModel. Partitions are checked first (they
// consume no randomness), then link-fault loss, then the base model, so the
// sequence of random draws is a pure function of the fault state — itself a
// pure function of the schedule and virtual time.
func (f *NetFaults) Drop(r *rand.Rand, from, to node.ID) bool {
	for _, name := range f.partOrder {
		if f.parts[name].Drop(r, from, to) {
			return true
		}
	}
	if lf, ok := f.links[[2]node.ID{from, to}]; ok && lf.Loss > 0 {
		if r.Float64() < lf.Loss {
			return true
		}
	}
	return f.loss.Drop(r, from, to)
}

// Dup implements netsim.DupModel: with the link's DupProb, deliver one
// extra copy of the message.
func (f *NetFaults) Dup(r *rand.Rand, from, to node.ID) int {
	lf, ok := f.links[[2]node.ID{from, to}]
	if !ok || lf.DupProb <= 0 {
		return 0
	}
	if r.Float64() < lf.DupProb {
		return 1
	}
	return 0
}
