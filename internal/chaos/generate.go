package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"aqua/internal/node"
)

// Topology tells the generator which role each node plays, because the
// guard rails are role-aware: the sequencer only dies via SequencerKill,
// serving primaries never all die at once, and partitions only isolate
// secondaries.
type Topology struct {
	Sequencer   node.ID
	Primaries   []node.ID // serving primaries (sequencer excluded)
	Secondaries []node.ID
	Clients     []node.ID
}

// GenConfig parameterizes the random schedule generator.
type GenConfig struct {
	// Horizon is the window within which faults begin; repairs (restart,
	// heal, link clear) may land past it.
	Horizon time.Duration
	// Crashes is the number of crash→restart pairs on non-sequencer
	// replicas.
	Crashes int
	// SequencerKill adds one sequencer crash→restart, forcing a takeover
	// and, after the restart, the deposed leader's re-join.
	SequencerKill bool
	// Partitions is the number of partition open→heal pairs. Each isolates
	// one or two secondaries from everyone else.
	Partitions int
	// LinkFaults is the number of degraded-link episodes (extra delay,
	// jitter, loss, duplication) between replica pairs.
	LinkFaults int
	// MinDown/MaxDown bound each fault's duration. Zero values default to
	// Horizon/10 and Horizon/4.
	MinDown, MaxDown time.Duration
	// RecoverRestarts swaps every generated restart for a restart_recover
	// (durable state preserved, replayed at Init). It draws no extra
	// randomness, so schedules with it off are byte-identical to builds
	// that predate the knob.
	RecoverRestarts bool
}

type span struct{ from, to time.Duration }

func overlaps(spans []span, from, to time.Duration) bool {
	for _, s := range spans {
		if from < s.to && s.from < to {
			return true
		}
	}
	return false
}

// quantize rounds fault times to whole milliseconds, purely for legible
// traces; determinism does not depend on it.
func quantize(d time.Duration) time.Duration {
	return d - d%time.Millisecond
}

// Generate builds a random fault schedule from r, which must come from the
// run's deterministic seed (e.g. rand.New(rand.NewSource(seed))) so the
// same seed always yields the same schedule.
//
// Guard rails keep the scenario inside the protocol's fault model: at most
// one serving primary (or the sequencer) is down at any moment, the
// sequencer dies only through SequencerKill, every crash is paired with a
// restart, every partition heals, and partitions only isolate secondaries —
// an isolated serving primary would elect itself sequencer and, on heal,
// rejoin via leader step-down, a scenario the takeover protocol handles but
// whose client-visible guarantees the paper does not define.
func Generate(r *rand.Rand, topo Topology, cfg GenConfig) Schedule {
	if cfg.Horizon <= 0 {
		cfg.Horizon = time.Second
	}
	if cfg.MinDown <= 0 {
		cfg.MinDown = cfg.Horizon / 10
	}
	if cfg.MaxDown <= cfg.MinDown {
		cfg.MaxDown = cfg.MinDown + cfg.Horizon/4
	}

	dur := func() time.Duration {
		return quantize(cfg.MinDown + time.Duration(r.Int63n(int64(cfg.MaxDown-cfg.MinDown)+1)))
	}
	begin := func() time.Duration {
		return quantize(time.Duration(r.Int63n(int64(cfg.Horizon))))
	}

	restartAct := ActRestart
	if cfg.RecoverRestarts {
		restartAct = ActRestartRecover
	}

	var s Schedule
	busy := make(map[node.ID][]span) // per-node downtime
	var primaryDown []span           // any serving-primary/sequencer downtime
	const placementAttempts = 16     // rejection sampling bound per fault
	grace := cfg.MaxDown             // slack around a sequencer kill for the takeover round

	if cfg.SequencerKill {
		// Land the kill mid-run so there is traffic both before and after.
		at := quantize(cfg.Horizon/4 + time.Duration(r.Int63n(int64(cfg.Horizon/2)+1)))
		d := dur()
		s = append(s,
			Event{At: at, Action: ActCrash, Target: topo.Sequencer},
			Event{At: at + d, Action: restartAct, Target: topo.Sequencer},
		)
		busy[topo.Sequencer] = append(busy[topo.Sequencer], span{at, at + d})
		primaryDown = append(primaryDown, span{at - grace, at + d + grace})
	}

	for i := 0; i < cfg.Crashes; i++ {
		for attempt := 0; attempt < placementAttempts; attempt++ {
			var target node.ID
			primary := false
			// Bias crashes toward secondaries; serving primaries carry the
			// commit stream, and the ≤1-down rail makes them harder to place.
			if len(topo.Secondaries) > 0 && (len(topo.Primaries) == 0 || r.Float64() < 0.7) {
				target = topo.Secondaries[r.Intn(len(topo.Secondaries))]
			} else if len(topo.Primaries) > 0 {
				target = topo.Primaries[r.Intn(len(topo.Primaries))]
				primary = true
			} else {
				break
			}
			at, d := begin(), dur()
			if overlaps(busy[target], at, at+d) {
				continue
			}
			if primary && overlaps(primaryDown, at, at+d) {
				continue
			}
			s = append(s,
				Event{At: at, Action: ActCrash, Target: target},
				Event{At: at + d, Action: restartAct, Target: target},
			)
			busy[target] = append(busy[target], span{at, at + d})
			if primary {
				primaryDown = append(primaryDown, span{at, at + d})
			}
			break
		}
	}

	for i := 0; i < cfg.Partitions && len(topo.Secondaries) > 0; i++ {
		k := 1
		if len(topo.Secondaries) > 2 && r.Intn(2) == 1 {
			k = 2
		}
		perm := r.Perm(len(topo.Secondaries))
		isolated := make(map[node.ID]bool, k)
		sideB := make([]node.ID, 0, k)
		for _, idx := range perm[:k] {
			sideB = append(sideB, topo.Secondaries[idx])
			isolated[topo.Secondaries[idx]] = true
		}
		sideA := make([]node.ID, 0, 1+len(topo.Primaries)+len(topo.Secondaries)+len(topo.Clients))
		sideA = append(sideA, topo.Sequencer)
		sideA = append(sideA, topo.Primaries...)
		for _, id := range topo.Secondaries {
			if !isolated[id] {
				sideA = append(sideA, id)
			}
		}
		sideA = append(sideA, topo.Clients...)
		at, d := begin(), dur()
		name := fmt.Sprintf("part%02d", i)
		s = append(s,
			Event{At: at, Action: ActPartition, Name: name, SideA: sideA, SideB: sideB},
			Event{At: at + d, Action: ActHeal, Name: name},
		)
	}

	replicas := make([]node.ID, 0, 1+len(topo.Primaries)+len(topo.Secondaries))
	replicas = append(replicas, topo.Sequencer)
	replicas = append(replicas, topo.Primaries...)
	replicas = append(replicas, topo.Secondaries...)
	for i := 0; i < cfg.LinkFaults && len(replicas) >= 2; i++ {
		a := r.Intn(len(replicas))
		b := r.Intn(len(replicas) - 1)
		if b >= a {
			b++
		}
		lf := LinkFault{
			ExtraDelay: quantize(time.Duration(r.Int63n(int64(5 * time.Millisecond)))),
			Jitter:     quantize(time.Duration(r.Int63n(int64(4 * time.Millisecond)))),
			Loss:       0.3 * r.Float64(),
			DupProb:    0.5 * r.Float64(),
		}
		at, d := begin(), dur()
		s = append(s,
			Event{At: at, Action: ActLink, From: replicas[a], To: replicas[b], Fault: lf},
			Event{At: at + d, Action: ActLinkClear, From: replicas[a], To: replicas[b]},
		)
	}

	s.Sort()
	return s
}
