package group

import (
	"time"

	"aqua/internal/node"
)

// Config tunes the substrate's recovery and failure-detection timing.
type Config struct {
	// RetransmitInterval is how often unacked messages are resent.
	RetransmitInterval time.Duration
	// MaxRetries bounds retransmissions per message; past it the message
	// is dropped (the peer is presumed dead and the failure detector will
	// notice independently).
	MaxRetries int
	// HeartbeatInterval is how often each member heartbeats its groups.
	// Zero disables heartbeats (static membership).
	HeartbeatInterval time.Duration
	// FailTimeout is how long a member may stay silent before peers
	// suspect it. Zero disables the failure detector.
	FailTimeout time.Duration
}

// DefaultConfig mirrors LAN-scale Ensemble settings: fast retransmit, a
// heartbeat a few times per second, and suspicion after ~3 missed beats.
func DefaultConfig() Config {
	return Config{
		RetransmitInterval: 50 * time.Millisecond,
		MaxRetries:         10,
		HeartbeatInterval:  250 * time.Millisecond,
		FailTimeout:        900 * time.Millisecond,
	}
}

// View is a group's locally computed membership view.
type View struct {
	Group   string
	Version int
	Members []node.ID // live members, sorted
	Leader  node.ID   // lowest live ID; "" if the view is empty
}

// Contains reports whether id is in the view.
func (v View) Contains(id node.ID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// groupState tracks one joined group.
type groupState struct {
	name     string
	members  []node.ID // full configured membership, sorted, includes self
	lastSeen map[node.ID]time.Time
	dead     map[node.ID]bool
	version  int
	onView   func(View)
	// hbMsg is the group's heartbeat pre-boxed as a node.Message once at
	// Join; heartbeats fire every interval to every peer, and re-boxing the
	// same immutable value was a measurable share of simulator allocations.
	hbMsg node.Message
}

// Stack gives one node reliable FIFO links to its peers and membership
// views of the groups it joins. It must only be used from within the owning
// node's callbacks (the runtimes serialize those).
type Stack struct {
	ctx node.Context
	cfg Config
	// incarnation distinguishes this stack instance from previous lives of
	// the same node ID across restarts.
	incarnation uint64
	out         map[node.ID]*sendLink
	// outOrder lists send-link peers in creation order: the retransmit tick
	// walks links in this fixed order because iterating the out map would
	// resend (and thus draw network randomness) in a different order every
	// run, making loss-experiment results irreproducible.
	outOrder []node.ID
	in       map[node.ID]*recvLink
	// seqScratch is reused by retransmitTick to sort unacked sequence
	// numbers without a fresh slice per tick.
	seqScratch []uint64
	// groups indexes by name; groupList holds the same states in Join order
	// so periodic ticks iterate (and therefore send) in a deterministic
	// order — map iteration would perturb the simulator's network random
	// stream from run to run once a node joins more than one group.
	groupList []*groupState
	groups    map[string]*groupState
	deliver   func(from node.ID, m node.Message)
	stopped   bool

	// retransmitArmed tracks whether the retransmit timer is scheduled; it
	// is armed on demand so idle stacks generate no events.
	retransmitArmed bool

	// heartbeatFn/retransmitFn are the tick methods bound once at creation;
	// rebinding the method value on every rearm allocates.
	heartbeatFn  func()
	retransmitFn func()
}

// NewStack creates the substrate for the node owning ctx. deliver receives
// every in-order application payload. Timers for retransmission and
// heartbeats start immediately.
func NewStack(ctx node.Context, cfg Config, deliver func(from node.ID, m node.Message)) *Stack {
	s := &Stack{
		ctx:     ctx,
		cfg:     cfg,
		out:     make(map[node.ID]*sendLink),
		in:      make(map[node.ID]*recvLink),
		groups:  make(map[string]*groupState),
		deliver: deliver,
	}
	// Draw a nonzero incarnation from the node's deterministic source.
	for s.incarnation == 0 {
		s.incarnation = uint64(ctx.Rand().Int63())
	}
	s.heartbeatFn = s.heartbeatTick
	s.retransmitFn = s.retransmitTick
	if cfg.HeartbeatInterval > 0 {
		s.ctx.Post(cfg.HeartbeatInterval, s.heartbeatFn)
	}
	return s
}

// Stop halts the stack's periodic work (used by the live runtime on
// shutdown; the simulator just stops running events).
func (s *Stack) Stop() { s.stopped = true }

// Join registers membership in a named group. members must include the
// local node. onView, if non-nil, is called with the initial view and after
// every membership change.
func (s *Stack) Join(name string, members []node.ID, onView func(View)) {
	g := &groupState{
		name:     name,
		members:  sortedIDs(members),
		lastSeen: make(map[node.ID]time.Time, len(members)),
		dead:     make(map[node.ID]bool),
		onView:   onView,
		hbMsg:    HeartbeatMsg{Group: name},
	}
	now := s.ctx.Now()
	for _, m := range g.members {
		g.lastSeen[m] = now
	}
	s.groups[name] = g
	s.groupList = append(s.groupList, g)
	if onView != nil {
		onView(s.viewOf(g))
	}
}

// ViewOf returns the current view of a joined group. ok is false for groups
// this stack never joined.
func (s *Stack) ViewOf(name string) (View, bool) {
	g, ok := s.groups[name]
	if !ok {
		return View{}, false
	}
	return s.viewOf(g), true
}

func (s *Stack) viewOf(g *groupState) View {
	v := View{Group: g.name, Version: g.version}
	for _, m := range g.members {
		if !g.dead[m] {
			v.Members = append(v.Members, m)
		}
	}
	if len(v.Members) > 0 {
		v.Leader = v.Members[0]
	}
	return v
}

// Send transmits m to one peer over the reliable FIFO link.
func (s *Stack) Send(to node.ID, m node.Message) {
	if to == s.ctx.ID() {
		// Local delivery is immediate and needs no link machinery.
		s.deliver(to, m)
		return
	}
	l, ok := s.out[to]
	if !ok {
		l = newSendLink()
		s.out[to] = l
		s.outOrder = append(s.outOrder, to)
	}
	s.transmit(to, l, m)
	s.armRetransmit()
}

// transmit numbers and sends one payload on a link.
func (s *Stack) transmit(to node.ID, l *sendLink, m node.Message) {
	dm := DataMsg{SrcEpoch: s.incarnation, Gen: l.gen, Seq: l.nextSeq, Payload: m}
	l.nextSeq++
	l.unacked[dm.Seq] = pendingMsg{msg: dm, sentAt: s.ctx.Now()}
	s.ctx.Send(to, dm)
}

func (s *Stack) armRetransmit() {
	if s.retransmitArmed || s.cfg.RetransmitInterval <= 0 || s.stopped {
		return
	}
	s.retransmitArmed = true
	s.ctx.Post(s.cfg.RetransmitInterval, s.retransmitFn)
}

// Multicast sends m to every live member of a joined group except the local
// node. FIFO ordering holds per sender across all receivers.
func (s *Stack) Multicast(group string, m node.Message) {
	g, ok := s.groups[group]
	if !ok {
		s.ctx.Logf("group: multicast to unjoined group %q dropped", group)
		return
	}
	self := s.ctx.ID()
	for _, member := range g.members {
		if member == self || g.dead[member] {
			continue
		}
		s.Send(member, m)
	}
}

// Handle gives the stack a chance to consume a received message. It returns
// true when the message belonged to the substrate (data envelope, ack, or
// heartbeat); the caller must not process it further. Application payloads
// extracted from data envelopes are handed to the deliver callback.
// Both value and pointer forms are accepted: the live transport's shared
// decoder boxes hot messages as pointers into its arena (tcpnet
// DecodeShared), while the simulator and local delivery keep values.
func (s *Stack) Handle(from node.ID, m node.Message) bool {
	switch msg := m.(type) {
	case *DataMsg:
		return s.handleData(from, *msg)
	case DataMsg:
		return s.handleData(from, msg)
	case *AckMsg:
		return s.handleAck(from, *msg)
	case AckMsg:
		return s.handleAck(from, msg)
	case HeartbeatMsg, *HeartbeatMsg:
		s.noteAlive(from)
		return true
	default:
		return false
	}
}

func (s *Stack) handleData(from node.ID, msg DataMsg) bool {
	{
		s.noteAlive(from)
		l, ok := s.in[from]
		switch {
		case !ok, l.srcEpoch != msg.SrcEpoch, msg.Gen > l.gen:
			// First contact, a restarted sender, or a sender-side link
			// reset: previous reorder state is meaningless.
			l = newRecvLink(msg.SrcEpoch, msg.Gen)
			s.in[from] = l
		case msg.Gen < l.gen:
			return true // stale generation: drop
		}
		for _, payload := range l.receive(msg) {
			s.deliver(from, payload)
		}
		// Cumulative ack of everything delivered in order so far; covers
		// duplicates and quenches retransmits of delivered messages.
		s.ctx.Send(from, AckMsg{SrcEpoch: msg.SrcEpoch, DstEpoch: s.incarnation, Gen: l.gen, Expected: l.expected})
		return true
	}
}

func (s *Stack) handleAck(from node.ID, msg AckMsg) bool {
	{
		s.noteAlive(from)
		if msg.SrcEpoch != s.incarnation {
			return true // ack addressed to a previous life of this node
		}
		l, ok := s.out[from]
		if !ok {
			return true
		}
		reset := false
		if l.peerEpoch == 0 {
			l.peerEpoch = msg.DstEpoch
		} else if l.peerEpoch != msg.DstEpoch {
			// The receiver restarted: everything unacked was numbered for
			// its previous life.
			reset = true
		}
		if !reset && msg.Gen == l.gen {
			l.ack(msg.Expected)
			// A receiver stuck below a permanently dropped sequence number
			// can never progress within this generation.
			reset = l.stuck(msg.Expected)
		}
		if reset {
			// Renumber the backlog onto the next link generation and
			// retransmit; the receiver discards older-gen state on first
			// contact with the new generation. (Across a reset the link
			// degrades to at-least-once delivery — resent payloads that
			// were delivered but whose acks raced deliver twice; every
			// protocol layer above dedups by request ID.)
			for _, payload := range l.reset(msg.DstEpoch) {
				s.transmit(from, l, payload)
			}
			s.armRetransmit()
		}
		return true
	}
}

// noteAlive refreshes failure-detector state for a peer in every joined
// group and revives peers previously declared dead (e.g. after a transient
// partition heals).
func (s *Stack) noteAlive(peer node.ID) {
	now := s.ctx.Now()
	for _, g := range s.groupList {
		if _, member := g.lastSeen[peer]; !member {
			continue
		}
		g.lastSeen[peer] = now
		if g.dead[peer] {
			delete(g.dead, peer)
			g.version++
			if g.onView != nil {
				g.onView(s.viewOf(g))
			}
		}
	}
}

func (s *Stack) retransmitTick() {
	s.retransmitArmed = false
	if s.stopped {
		return
	}
	now := s.ctx.Now()
	pending := false
	for _, peer := range s.outOrder {
		l := s.out[peer]
		if len(l.unacked) == 0 {
			continue
		}
		// Walk sequence numbers in sorted order: resends draw from the
		// network's random stream, so their order must not depend on map
		// iteration.
		seqs := s.seqScratch[:0]
		for seq := range l.unacked {
			seqs = append(seqs, seq)
		}
		sortUint64s(seqs)
		s.seqScratch = seqs
		for _, seq := range seqs {
			p := l.unacked[seq]
			if now.Sub(p.sentAt) < s.cfg.RetransmitInterval {
				pending = true
				continue
			}
			if p.retries >= s.cfg.MaxRetries {
				delete(l.unacked, seq)
				if seq > l.droppedMax {
					l.droppedMax = seq
				}
				s.ctx.Logf("group: giving up on msg %d to %s after %d retries", seq, peer, p.retries)
				continue
			}
			p.retries++
			p.sentAt = now
			l.unacked[seq] = p
			s.ctx.Send(peer, p.msg)
			pending = true
		}
	}
	if pending {
		s.armRetransmit()
	}
}

func (s *Stack) heartbeatTick() {
	if s.stopped {
		return
	}
	self := s.ctx.ID()
	for _, g := range s.groupList {
		for _, member := range g.members {
			if member != self {
				s.ctx.Send(member, g.hbMsg)
			}
		}
	}
	if s.cfg.FailTimeout > 0 {
		s.checkFailures()
	}
	s.ctx.Post(s.cfg.HeartbeatInterval, s.heartbeatFn)
}

func (s *Stack) checkFailures() {
	now := s.ctx.Now()
	self := s.ctx.ID()
	for _, g := range s.groupList {
		changed := false
		for _, member := range g.members {
			if member == self || g.dead[member] {
				continue
			}
			if now.Sub(g.lastSeen[member]) > s.cfg.FailTimeout {
				g.dead[member] = true
				changed = true
			}
		}
		if changed {
			g.version++
			if g.onView != nil {
				g.onView(s.viewOf(g))
			}
		}
	}
}
