package group

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/sim"
)

// testPeer is a node wrapping a Stack for substrate tests.
type testPeer struct {
	stack     *Stack
	cfg       Config
	groupName string
	members   []node.ID
	delivered []node.Message
	views     []View
	onInit    func(p *testPeer, ctx node.Context)
}

func (p *testPeer) Init(ctx node.Context) {
	p.stack = NewStack(ctx, p.cfg, func(from node.ID, m node.Message) {
		p.delivered = append(p.delivered, m)
	})
	if p.groupName != "" {
		p.stack.Join(p.groupName, p.members, func(v View) {
			p.views = append(p.views, v)
		})
	}
	if p.onInit != nil {
		p.onInit(p, ctx)
	}
}

func (p *testPeer) Recv(from node.ID, m node.Message) {
	p.stack.Handle(from, m)
}

func buildPeers(rt *sim.Runtime, cfg Config, groupName string, n int) []*testPeer {
	members := make([]node.ID, n)
	for i := range members {
		members[i] = node.ID(fmt.Sprintf("p%d", i))
	}
	peers := make([]*testPeer, n)
	for i := range peers {
		peers[i] = &testPeer{cfg: cfg, groupName: groupName, members: members}
		rt.Register(members[i], peers[i])
	}
	return peers
}

func TestStackFIFOUnderReordering(t *testing.T) {
	s := sim.NewScheduler(5)
	// Large jitter forces heavy reordering at the raw network level.
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.UniformDelay{Min: 0, Max: 40 * time.Millisecond}))
	cfg := DefaultConfig()
	peers := buildPeers(rt, cfg, "g", 2)
	const n = 50
	peers[0].onInit = func(p *testPeer, ctx node.Context) {
		for i := 0; i < n; i++ {
			p.stack.Send("p1", i)
		}
	}
	rt.Start()
	s.RunFor(2 * time.Second)

	got := peers[1].delivered
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
	for i, m := range got {
		if m.(int) != i {
			t.Fatalf("FIFO violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestStackReliableUnderLoss(t *testing.T) {
	s := sim.NewScheduler(7)
	rt := sim.NewRuntime(s,
		sim.WithDelay(netsim.UniformDelay{Min: time.Millisecond, Max: 5 * time.Millisecond}),
		sim.WithLoss(netsim.UniformLoss{P: 0.3}))
	cfg := DefaultConfig()
	cfg.MaxRetries = 100
	peers := buildPeers(rt, cfg, "g", 2)
	const n = 30
	peers[0].onInit = func(p *testPeer, ctx node.Context) {
		for i := 0; i < n; i++ {
			p.stack.Send("p1", i)
		}
	}
	rt.Start()
	s.RunFor(30 * time.Second)

	got := peers[1].delivered
	if len(got) != n {
		t.Fatalf("delivered %d of %d under 30%% loss", len(got), n)
	}
	for i, m := range got {
		if m.(int) != i {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestStackMulticastReachesAllButSelf(t *testing.T) {
	s := sim.NewScheduler(9)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(time.Millisecond)))
	peers := buildPeers(rt, DefaultConfig(), "g", 4)
	peers[0].onInit = func(p *testPeer, ctx node.Context) {
		p.stack.Multicast("g", "hello")
	}
	rt.Start()
	s.RunFor(time.Second)

	if len(peers[0].delivered) != 0 {
		t.Fatal("multicast delivered to sender")
	}
	for i := 1; i < 4; i++ {
		if len(peers[i].delivered) != 1 || peers[i].delivered[0].(string) != "hello" {
			t.Fatalf("peer %d delivered %v", i, peers[i].delivered)
		}
	}
}

func TestStackSendToSelfDeliversLocally(t *testing.T) {
	s := sim.NewScheduler(1)
	rt := sim.NewRuntime(s)
	peers := buildPeers(rt, DefaultConfig(), "g", 1)
	peers[0].onInit = func(p *testPeer, ctx node.Context) {
		p.stack.Send(ctx.ID(), "self")
	}
	rt.Start()
	s.RunFor(100 * time.Millisecond)
	if len(peers[0].delivered) != 1 {
		t.Fatalf("self send delivered %v", peers[0].delivered)
	}
}

func TestStackInitialViewAndLeader(t *testing.T) {
	s := sim.NewScheduler(1)
	rt := sim.NewRuntime(s)
	peers := buildPeers(rt, DefaultConfig(), "g", 3)
	rt.Start()
	v := peers[2].views[0]
	if v.Leader != "p0" || len(v.Members) != 3 || v.Version != 0 {
		t.Fatalf("initial view = %+v", v)
	}
	if !v.Contains("p1") || v.Contains("zz") {
		t.Fatal("Contains wrong")
	}
}

func TestStackFailureDetectionAndLeaderChange(t *testing.T) {
	s := sim.NewScheduler(11)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(time.Millisecond)))
	peers := buildPeers(rt, DefaultConfig(), "g", 3)
	rt.Start()
	s.RunFor(2 * time.Second) // settle heartbeats

	rt.Crash("p0") // the leader dies
	s.RunFor(3 * time.Second)

	v, ok := peers[1].stack.ViewOf("g")
	if !ok {
		t.Fatal("group not joined")
	}
	if v.Contains("p0") {
		t.Fatalf("crashed leader still in view %+v", v)
	}
	if v.Leader != "p1" {
		t.Fatalf("leader = %s, want p1", v.Leader)
	}
	if v.Version == 0 {
		t.Fatal("view version did not advance")
	}
	// Peer 2 must agree.
	v2, _ := peers[2].stack.ViewOf("g")
	if v2.Leader != "p1" || v2.Contains("p0") {
		t.Fatalf("peer2 view = %+v", v2)
	}
}

func TestStackViewCallbackOnFailure(t *testing.T) {
	s := sim.NewScheduler(13)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(time.Millisecond)))
	peers := buildPeers(rt, DefaultConfig(), "g", 2)
	rt.Start()
	s.RunFor(time.Second)
	before := len(peers[1].views)
	rt.Crash("p0")
	s.RunFor(3 * time.Second)
	if len(peers[1].views) <= before {
		t.Fatal("no view callback after failure")
	}
	last := peers[1].views[len(peers[1].views)-1]
	if len(last.Members) != 1 || last.Leader != "p1" {
		t.Fatalf("final view = %+v", last)
	}
}

func TestStackHeartbeatsDisabled(t *testing.T) {
	s := sim.NewScheduler(15)
	rt := sim.NewRuntime(s)
	cfg := Config{RetransmitInterval: 50 * time.Millisecond, MaxRetries: 5}
	peers := buildPeers(rt, cfg, "g", 2)
	rt.Start()
	rt.Crash("p0")
	s.RunFor(5 * time.Second)
	v, _ := peers[1].stack.ViewOf("g")
	if !v.Contains("p0") {
		t.Fatal("static membership changed despite disabled failure detector")
	}
}

func TestStackHandleIgnoresAppMessages(t *testing.T) {
	s := sim.NewScheduler(1)
	rt := sim.NewRuntime(s)
	peers := buildPeers(rt, DefaultConfig(), "g", 1)
	rt.Start()
	if peers[0].stack.Handle("x", "not-a-substrate-message") {
		t.Fatal("Handle consumed an application message")
	}
}

func TestStackViewOfUnknownGroup(t *testing.T) {
	s := sim.NewScheduler(1)
	rt := sim.NewRuntime(s)
	peers := buildPeers(rt, DefaultConfig(), "g", 1)
	rt.Start()
	if _, ok := peers[0].stack.ViewOf("nope"); ok {
		t.Fatal("ViewOf unknown group reported ok")
	}
}

func TestStackRevivalAfterPartitionHeals(t *testing.T) {
	s := sim.NewScheduler(17)
	part := netsim.NewPartition([]node.ID{"p0"}, []node.ID{"p1"})
	lossy := &switchableLoss{model: part}
	rt := sim.NewRuntime(s,
		sim.WithDelay(netsim.ConstantDelay(time.Millisecond)),
		sim.WithLoss(lossy))
	peers := buildPeers(rt, DefaultConfig(), "g", 2)
	rt.Start()
	s.RunFor(3 * time.Second)

	v, _ := peers[1].stack.ViewOf("g")
	if v.Contains("p0") {
		t.Fatal("partitioned peer not suspected")
	}

	lossy.model = netsim.NoLoss{} // heal
	s.RunFor(3 * time.Second)
	v, _ = peers[1].stack.ViewOf("g")
	if !v.Contains("p0") || v.Leader != "p0" {
		t.Fatalf("healed peer not revived: %+v", v)
	}
}

// switchableLoss lets a test swap the loss model mid-run.
type switchableLoss struct {
	model netsim.LossModel
}

func (s *switchableLoss) Drop(r *rand.Rand, from, to node.ID) bool {
	return s.model.Drop(r, from, to)
}

func TestStackSurvivesReceiverRestart(t *testing.T) {
	// p0 streams to p1; p1 restarts (fresh stack, fresh incarnation) midway
	// while some messages to its old life were dropped after MaxRetries.
	// The link must reset generations and deliver everything sent after
	// the restart, in order.
	s := sim.NewScheduler(41)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(time.Millisecond)))
	cfg := DefaultConfig()
	cfg.HeartbeatInterval = 0

	sender := &testPeer{cfg: cfg}
	rt.Register("p0", sender)
	rt.Register("p1", &testPeer{cfg: cfg})
	rt.Start()
	s.RunFor(10 * time.Millisecond)

	// Phase 1: stream into a dead receiver so early seqs get dropped.
	rt.Crash("p1")
	s.After(0, func() {
		for i := 0; i < 5; i++ {
			sender.stack.Send("p1", i)
		}
	})
	s.RunFor(2 * time.Second) // exhaust MaxRetries for some messages

	// Phase 2: p1 restarts with a fresh stack.
	restarted := &testPeer{cfg: cfg}
	rt.Restart("p1", restarted)
	s.After(0, func() {
		for i := 5; i < 10; i++ {
			sender.stack.Send("p1", i)
		}
	})
	s.RunFor(3 * time.Second)

	got := restarted.delivered
	if len(got) == 0 {
		t.Fatal("restarted receiver got nothing: link deadlocked")
	}
	// Everything sent after the restart must arrive, in order; dropped
	// pre-restart messages may be missing (at-least-once across restart),
	// but whatever arrives must be ordered.
	for i := 1; i < len(got); i++ {
		if got[i].(int) <= got[i-1].(int) {
			t.Fatalf("order violated: %v", got)
		}
	}
	if got[len(got)-1].(int) != 9 {
		t.Fatalf("last post-restart message missing: %v", got)
	}
	count := 0
	for _, m := range got {
		if m.(int) >= 5 {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("post-restart messages delivered %d of 5: %v", count, got)
	}
}

func TestStackSurvivesSenderRestart(t *testing.T) {
	s := sim.NewScheduler(43)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(time.Millisecond)))
	cfg := DefaultConfig()
	cfg.HeartbeatInterval = 0

	sender := &testPeer{cfg: cfg}
	receiver := &testPeer{cfg: cfg}
	rt.Register("p0", sender)
	rt.Register("p1", receiver)
	rt.Start()
	s.After(0, func() {
		for i := 0; i < 3; i++ {
			sender.stack.Send("p1", i)
		}
	})
	s.RunFor(time.Second)

	rt.Crash("p0")
	fresh := &testPeer{cfg: cfg}
	rt.Restart("p0", fresh)
	s.After(0, func() {
		for i := 100; i < 103; i++ {
			fresh.stack.Send("p1", i)
		}
	})
	s.RunFor(2 * time.Second)

	// All six must arrive: three from the old life, three from the new.
	if len(receiver.delivered) != 6 {
		t.Fatalf("delivered %d, want 6: %v", len(receiver.delivered), receiver.delivered)
	}
	for i, want := range []int{0, 1, 2, 100, 101, 102} {
		if receiver.delivered[i].(int) != want {
			t.Fatalf("delivered = %v", receiver.delivered)
		}
	}
}

func TestStackRecoversFromDroppedHole(t *testing.T) {
	// Extreme loss drops a message past MaxRetries while the receiver is
	// alive: the stuck-hole detection must reset the generation and get
	// the stream flowing again (at-least-once across the reset).
	s := sim.NewScheduler(47)
	lossy := &switchableLoss{model: netsim.UniformLoss{P: 1.0}}
	rt := sim.NewRuntime(s,
		sim.WithDelay(netsim.ConstantDelay(time.Millisecond)),
		sim.WithLoss(lossy))
	cfg := DefaultConfig()
	cfg.HeartbeatInterval = 0
	cfg.MaxRetries = 3

	sender := &testPeer{cfg: cfg}
	receiver := &testPeer{cfg: cfg}
	rt.Register("p0", sender)
	rt.Register("p1", receiver)
	rt.Start()

	// Total blackout: the first messages exhaust their retries.
	s.After(0, func() {
		sender.stack.Send("p1", 1)
		sender.stack.Send("p1", 2)
	})
	s.RunFor(2 * time.Second)

	// Network heals; new messages flow but the receiver is stuck behind
	// the dropped 1-2 until the hole reset kicks in.
	lossy.model = netsim.NoLoss{}
	s.After(0, func() {
		sender.stack.Send("p1", 3)
		sender.stack.Send("p1", 4)
	})
	s.RunFor(3 * time.Second)

	got := receiver.delivered
	if len(got) < 2 {
		t.Fatalf("stream never recovered past the hole: %v", got)
	}
	if got[len(got)-1].(int) != 4 {
		t.Fatalf("latest message missing: %v", got)
	}
}
