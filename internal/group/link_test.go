package group

import (
	"testing"
	"testing/quick"

	"aqua/internal/node"
)

func TestRecvLinkInOrder(t *testing.T) {
	l := newRecvLink(7, 1)
	for seq := uint64(1); seq <= 3; seq++ {
		out := l.receive(DataMsg{Seq: seq, Payload: int(seq)})
		if len(out) != 1 || out[0].(int) != int(seq) {
			t.Fatalf("seq %d: out = %v", seq, out)
		}
	}
}

func TestRecvLinkReorders(t *testing.T) {
	l := newRecvLink(7, 1)
	if out := l.receive(DataMsg{Seq: 3, Payload: 3}); out != nil {
		t.Fatalf("early message delivered: %v", out)
	}
	if out := l.receive(DataMsg{Seq: 2, Payload: 2}); out != nil {
		t.Fatalf("early message delivered: %v", out)
	}
	out := l.receive(DataMsg{Seq: 1, Payload: 1})
	if len(out) != 3 {
		t.Fatalf("drain produced %v, want 3 messages", out)
	}
	for i, m := range out {
		if m.(int) != i+1 {
			t.Fatalf("out of order drain: %v", out)
		}
	}
}

func TestRecvLinkDropsDuplicates(t *testing.T) {
	l := newRecvLink(7, 1)
	l.receive(DataMsg{Seq: 1, Payload: 1})
	if out := l.receive(DataMsg{Seq: 1, Payload: 1}); out != nil {
		t.Fatalf("duplicate delivered: %v", out)
	}
	// Duplicate of a buffered (not yet delivered) message must not double
	// deliver either.
	l.receive(DataMsg{Seq: 3, Payload: 3})
	l.receive(DataMsg{Seq: 3, Payload: 3})
	out := l.receive(DataMsg{Seq: 2, Payload: 2})
	if len(out) != 2 {
		t.Fatalf("drain = %v, want [2 3]", out)
	}
}

func TestSendLinkCumulativeAck(t *testing.T) {
	l := newSendLink()
	// Mirror three transmits: seqs are always drawn from nextSeq++, and
	// ack() relies on that contiguity (it walks, never scans).
	l.unacked[1] = pendingMsg{}
	l.unacked[2] = pendingMsg{}
	l.unacked[3] = pendingMsg{}
	l.nextSeq = 4
	l.ack(3) // receiver expects 3: 1 and 2 are delivered
	if _, ok := l.unacked[1]; ok {
		t.Fatal("seq 1 still pending after cumulative ack")
	}
	if _, ok := l.unacked[2]; ok {
		t.Fatal("seq 2 still pending after cumulative ack")
	}
	if _, ok := l.unacked[3]; !ok {
		t.Fatal("undelivered seq 3 lost")
	}
	l.ack(99) // over-ack must be harmless
	if len(l.unacked) != 0 {
		t.Fatal("over-ack left state")
	}
}

func TestSendLinkStuckAndReset(t *testing.T) {
	l := newSendLink()
	l.nextSeq = 6
	l.droppedMax = 2 // seqs 1-2 given up
	l.unacked[4] = pendingMsg{msg: DataMsg{Seq: 4, Payload: "a"}}
	l.unacked[5] = pendingMsg{msg: DataMsg{Seq: 5, Payload: "b"}}
	if !l.stuck(1) || !l.stuck(2) {
		t.Fatal("receiver below the hole not reported stuck")
	}
	if l.stuck(3) {
		t.Fatal("receiver above the hole reported stuck")
	}
	payloads := l.reset(42)
	if len(payloads) != 2 || payloads[0] != "a" || payloads[1] != "b" {
		t.Fatalf("reset backlog = %v", payloads)
	}
	if l.gen != 2 || l.nextSeq != 1 || l.droppedMax != 0 || l.peerEpoch != 42 {
		t.Fatalf("reset state = %+v", l)
	}
}

// Property: for any permutation of sequence numbers 1..n (with arbitrary
// duplicates interleaved), the receiver delivers exactly 1..n in order.
func TestRecvLinkPermutationProperty(t *testing.T) {
	prop := func(order []uint8, dups []uint8) bool {
		const n = 12
		l := newRecvLink(7, 1)
		// Build a delivery order: a permutation of 1..n derived from the
		// random bytes, plus duplicate injections.
		perm := make([]uint64, n)
		for i := range perm {
			perm[i] = uint64(i + 1)
		}
		for i, b := range order {
			j := int(b) % n
			k := i % n
			perm[j], perm[k] = perm[k], perm[j]
		}
		var delivered []int
		feed := func(seq uint64) {
			for _, m := range l.receive(DataMsg{Seq: seq, Payload: int(seq)}) {
				delivered = append(delivered, m.(int))
			}
		}
		for i, seq := range perm {
			feed(seq)
			if len(dups) > 0 {
				feed(uint64(dups[i%len(dups)])%n + 1) // random duplicate
			}
		}
		if len(delivered) != n {
			return false
		}
		for i, v := range delivered {
			if v != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedIDs(t *testing.T) {
	in := []node.ID{"c", "a", "b"}
	out := sortedIDs(in)
	if out[0] != "a" || out[1] != "b" || out[2] != "c" {
		t.Fatalf("sortedIDs = %v", out)
	}
	if in[0] != "c" {
		t.Fatal("sortedIDs mutated input")
	}
}
