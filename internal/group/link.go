// Package group provides the group-communication substrate the paper's
// protocols consume. In the paper this is Maestro/Ensemble: "we depend on
// Maestro-Ensemble to provide reliable, virtual synchrony, and FIFO
// messaging guarantees ... and to inform the group members when changes in
// the group membership occur". This package rebuilds those guarantees:
//
//   - a link layer giving per-sender FIFO, reliable, duplicate-free delivery
//     between every pair of nodes (sequence numbers, reordering buffer, and
//     ack/retransmit recovery), and
//   - a membership layer per named group: all-to-all heartbeats, a timeout
//     failure detector, locally computed views, and deterministic leader
//     election (lowest live ID).
//
// Multicast to a group is FIFO-ordered per sender across all receivers
// because every copy travels over the sender's sequenced links.
package group

import (
	"sort"
	"time"

	"aqua/internal/node"
)

// Wire messages. The live TCP transport encodes them with its hand-written
// binary codec (internal/tcpnet/wire.go has the tag table; DESIGN.md §9 the
// format), so adding a field here requires extending the matching
// encode/decode case there — the codec differential test fails otherwise.
//
// Both carry incarnation numbers: each Stack instance draws a random
// SrcEpoch at creation, so a restarted process is distinguishable from its
// previous life. Receivers reset their reorder state when a sender's epoch
// changes; senders renumber and retransmit their backlog when an ack
// reveals a restarted receiver. Without this, a restart deadlocks the link
// (fresh sequence numbers read as duplicates, old ones as gaps).
type (
	// DataMsg carries an application payload with a per-destination
	// sequence number, tagged with the sender's incarnation and the link
	// generation (bumped when the sender resets the link after discovering
	// a restarted receiver, so old and new numbering never mix).
	DataMsg struct {
		SrcEpoch uint64
		Gen      uint64
		Seq      uint64
		Payload  node.Message
	}
	// AckMsg is a cumulative acknowledgment: the receiver has delivered
	// every sequence number below Expected for the sender incarnation
	// SrcEpoch and link generation Gen, and reveals its own incarnation
	// DstEpoch. Acking delivery (not mere receipt) lets the sender detect a
	// receiver stuck behind a hole it can no longer fill — Expected at or
	// below a sequence number the sender dropped after MaxRetries — and
	// reset the link generation, retransmitting its backlog.
	AckMsg struct {
		SrcEpoch uint64
		DstEpoch uint64
		Gen      uint64
		Expected uint64
	}
	// HeartbeatMsg keeps the failure detector of a group quiet.
	HeartbeatMsg struct {
		Group string
	}
)

// sendLink is the sender side of a reliable FIFO link to one peer.
type sendLink struct {
	gen     uint64
	nextSeq uint64
	// unacked holds pendingMsg by value: links carry one entry per in-flight
	// message and churn constantly, and the extra pointer allocation per
	// transmit was measurable across a whole experiment run.
	unacked map[uint64]pendingMsg
	// peerEpoch is the receiver incarnation we are talking to (0 until the
	// first ack reveals it).
	peerEpoch uint64
	// droppedMax is the highest sequence number of this generation dropped
	// after MaxRetries; a receiver acking Expected ≤ droppedMax can never
	// progress and forces a generation reset.
	droppedMax uint64
	// ackFloor is the lowest sequence number no cumulative ack has covered
	// yet. Sequence numbers are contiguous, so ack() walks the range
	// [ackFloor, Expected) instead of scanning the whole map — O(newly
	// acked) per ack rather than O(in-flight), which matters when heavy
	// traffic holds thousands of messages in flight on one link.
	ackFloor uint64
}

type pendingMsg struct {
	msg     DataMsg
	sentAt  time.Time
	retries int
}

// recvLink is the receiver side: expected next sequence number plus a
// reorder buffer for early arrivals, bound to one sender incarnation and
// link generation.
type recvLink struct {
	srcEpoch uint64
	gen      uint64
	expected uint64
	buffer   map[uint64]node.Message
	// deliverScratch backs receive's result; the slice is valid only until
	// the next receive on this link, which is fine because the stack hands
	// the payloads to the deliver callback synchronously.
	deliverScratch []node.Message
}

func newSendLink() *sendLink {
	return &sendLink{gen: 1, nextSeq: 1, ackFloor: 1, unacked: make(map[uint64]pendingMsg)}
}

func newRecvLink(srcEpoch, gen uint64) *recvLink {
	return &recvLink{srcEpoch: srcEpoch, gen: gen, expected: 1, buffer: make(map[uint64]node.Message)}
}

// reset renumbers the link onto a new generation, returning the payloads
// that must be retransmitted (the previous generation's backlog, in order).
func (l *sendLink) reset(peerEpoch uint64) []node.Message {
	out := l.backlog()
	l.gen++
	l.nextSeq = 1
	l.ackFloor = 1
	l.unacked = make(map[uint64]pendingMsg)
	l.peerEpoch = peerEpoch
	l.droppedMax = 0
	return out
}

// ack processes a cumulative acknowledgment: everything below expected has
// been delivered. Deleting dropped or already-removed sequence numbers in
// the walked range is a harmless no-op.
func (l *sendLink) ack(expected uint64) {
	if expected > l.nextSeq {
		expected = l.nextSeq // never walk past what was actually sent
	}
	for ; l.ackFloor < expected; l.ackFloor++ {
		delete(l.unacked, l.ackFloor)
	}
}

// stuck reports whether the receiver can never progress past a permanently
// dropped sequence number.
func (l *sendLink) stuck(expected uint64) bool {
	return expected <= l.droppedMax
}

// backlog returns the unacked payloads in sequence order — what must be
// renumbered and retransmitted after the receiver turns out to have
// restarted.
func (l *sendLink) backlog() []node.Message {
	seqs := make([]uint64, 0, len(l.unacked))
	for s := range l.unacked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]node.Message, len(seqs))
	for i, s := range seqs {
		out[i] = l.unacked[s].msg.Payload
	}
	return out
}

// receive accepts a data message and returns the in-order payloads that
// become deliverable (possibly none for early/duplicate arrivals).
func (l *recvLink) receive(m DataMsg) []node.Message {
	if m.Seq < l.expected {
		return nil // duplicate of an already delivered message
	}
	if m.Seq > l.expected {
		l.buffer[m.Seq] = m.Payload // early: hold for reordering
		return nil
	}
	out := append(l.deliverScratch[:0], m.Payload)
	l.expected++
	for {
		p, ok := l.buffer[l.expected]
		if !ok {
			break
		}
		delete(l.buffer, l.expected)
		out = append(out, p)
		l.expected++
	}
	l.deliverScratch = out
	return out
}

// sortUint64s sorts s ascending in place.
func sortUint64s(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// sortedIDs returns a sorted copy of ids.
func sortedIDs(ids []node.ID) []node.ID {
	out := make([]node.ID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
