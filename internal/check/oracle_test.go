package check

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

// fakeClock hands the recorder a controllable virtual clock.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{at: epoch} }
func rid(c node.ID, seq uint64) consistency.RequestID {
	return consistency.RequestID{Client: c, Seq: seq}
}

var epoch = time.Date(2002, 6, 23, 0, 0, 0, 0, time.UTC)

func verdict(t *testing.T, rep Report, invariant string) Verdict {
	t.Helper()
	for _, v := range rep.Verdicts {
		if v.Invariant == invariant {
			return v
		}
	}
	t.Fatalf("no verdict for %q", invariant)
	return Verdict{}
}

func requireOK(t *testing.T, rep Report, invariant string) {
	t.Helper()
	if v := verdict(t, rep, invariant); !v.OK() {
		t.Fatalf("%s: unexpected violations: %v", invariant, v.Violations)
	}
}

func requireFail(t *testing.T, rep Report, invariant, substr string) {
	t.Helper()
	v := verdict(t, rep, invariant)
	if v.OK() {
		t.Fatalf("%s: expected a violation, got none", invariant)
	}
	if substr != "" && !strings.Contains(strings.Join(v.Violations, "\n"), substr) {
		t.Fatalf("%s: violations %v do not mention %q", invariant, v.Violations, substr)
	}
}

// TestSequentialConsistencyHealthy: in-order applies across two replicas
// plus a snapshot-recovered restart incarnation all pass.
func TestSequentialConsistencyHealthy(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	for gsn := uint64(1); gsn <= 4; gsn++ {
		clk.advance(time.Millisecond)
		r.Apply("p01", gsn, rid("c00", gsn))
		r.Apply("p02", gsn, rid("c00", gsn))
	}
	// p02 restarts, recovers via snapshot to 4, then applies 5 — and may
	// legally re-apply requests its previous incarnation already applied.
	r.Crash("p02")
	r.Restart("p02")
	r.Restore("p02", 4)
	r.Apply("p02", 5, rid("c00", 5))
	r.Apply("p01", 5, rid("c00", 5))
	rep := Run(r.Events())
	requireOK(t, rep, "sequential-consistency")
	if v := verdict(t, rep, "sequential-consistency"); v.Checked == 0 {
		t.Fatal("no checks performed")
	}
}

func TestSequentialConsistencyCatchesHole(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 1, rid("c00", 1))
	r.Apply("p01", 3, rid("c00", 3)) // skipped gsn 2 with no snapshot
	rep := Run(r.Events())
	requireFail(t, rep, "sequential-consistency", "hole")
}

// TestSequentialConsistencyHoleNotExcusedByLaterSnapshot is the regression
// the chaos bug-hunt surfaced: the protocol's periodic sync repaired a
// replica that had applied across a hole, and a trace-wide coverage check
// let the earlier violation slide. The frontier check must flag the apply
// at the moment it jumps, snapshot or not.
func TestSequentialConsistencyHoleNotExcusedByLaterSnapshot(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 1, rid("c00", 1))
	clk.advance(time.Millisecond)
	r.Apply("p01", 3, rid("c00", 3)) // hole at 2
	clk.advance(time.Millisecond)
	r.Restore("p01", 10) // later self-repair must not excuse it
	rep := Run(r.Events())
	requireFail(t, rep, "sequential-consistency", "hole")
}

func TestSequentialConsistencyCatchesDuplicateApply(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 1, rid("c00", 1))
	r.Apply("p01", 1, rid("c00", 1))
	rep := Run(r.Events())
	requireFail(t, rep, "sequential-consistency", "twice")
}

func TestSequentialConsistencyCatchesOrderDivergence(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 1, rid("c00", 1))
	r.Apply("p02", 1, rid("c01", 7)) // same gsn, different request
	rep := Run(r.Events())
	requireFail(t, rep, "sequential-consistency", "divergence")
}

func TestCSNMonotonicity(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.ServeRead("s00", rid("c00", 1), 3, 2, 2, false)
	r.Restore("s00", 5)
	r.ServeRead("s00", rid("c00", 2), 6, 5, 2, false)
	rep := Run(r.Events())
	requireOK(t, rep, "csn-monotonicity")

	// A rewind must be flagged — but only within one incarnation: a
	// restarted replica legitimately starts over from 0.
	r.Crash("s00")
	r.Restart("s00")
	r.Restore("s00", 2)
	rep = Run(r.Events())
	requireOK(t, rep, "csn-monotonicity")

	r.ServeRead("s00", rid("c00", 3), 2, 1, 2, false) // csn 1 after restore 2
	rep = Run(r.Events())
	requireFail(t, rep, "csn-monotonicity", "backwards")
}

func TestCSNMonotonicityCatchesRestoreBelowApplied(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 1, rid("c00", 1))
	r.Apply("p01", 2, rid("c00", 2))
	r.Restore("p01", 1)
	rep := Run(r.Events())
	requireFail(t, rep, "csn-monotonicity", "below applied")
}

func TestStalenessBound(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.ServeRead("s00", rid("c00", 1), 10, 8, 2, false) // exactly at bound
	rep := Run(r.Events())
	requireOK(t, rep, "staleness-bound")

	r.ServeRead("s00", rid("c00", 2), 10, 7, 2, false) // 3 behind, bound 2
	rep = Run(r.Events())
	requireFail(t, rep, "staleness-bound", "behind")
}

func TestDeferredRead(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Restore("s00", 8)
	r.ServeRead("s00", rid("c00", 1), 10, 8, 2, true) // covered: 8 >= 10-2
	rep := Run(r.Events())
	requireOK(t, rep, "deferred-read")

	// Deferred read served with no covering state update.
	r2 := NewRecorder(epoch, clk.now)
	r2.Restore("s00", 5)
	r2.ServeRead("s00", rid("c00", 1), 10, 5, 2, true) // needs >= 8, best is 5
	rep = Run(r2.Events())
	requireFail(t, rep, "deferred-read", "covering")
}

func TestReadYourWrites(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	// c00 writes (seq 1, applied at gsn 5), then reads (seq 2).
	r.Apply("p01", 5, rid("c00", 1))
	r.ClientResult("c00", 1, false, false)
	r.ServeRead("p01", rid("c00", 2), 5, 5, 0, false)
	r.ClientResult("c00", 2, true, false)
	rep := Run(r.Events())
	requireOK(t, rep, "read-your-writes")

	// A second session's read ordered before its own write's GSN.
	r2 := NewRecorder(epoch, clk.now)
	r2.Apply("p01", 5, rid("c00", 1))
	r2.ClientResult("c00", 1, false, false)
	r2.ServeRead("p01", rid("c00", 2), 4, 4, 0, false) // gsn 4 < write's 5
	r2.ClientResult("c00", 2, true, false)
	rep = Run(r2.Events())
	requireFail(t, rep, "read-your-writes", "behind its own")
}

// TestReadYourWritesIgnoresFailedWrites: an errored update (retries
// exhausted) promises nothing; reads after it are unconstrained by it.
func TestReadYourWritesIgnoresFailedWrites(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 5, rid("c00", 1))
	r.ClientResult("c00", 1, false, true) // failed
	r.ServeRead("p01", rid("c00", 2), 1, 1, 0, false)
	r.ClientResult("c00", 2, true, false)
	rep := Run(r.Events())
	requireOK(t, rep, "read-your-writes")
}

// TestTraceByteStability: the same logical trace renders to identical
// bytes every time — the bedrock of the chaos determinism tests.
func TestTraceByteStability(t *testing.T) {
	build := func() []byte {
		clk := newClock()
		r := NewRecorder(epoch, clk.now)
		clk.advance(1500 * time.Microsecond)
		r.Apply("p01", 1, rid("c00", 1))
		r.ServeRead("s00", rid("c01", 1), 1, 0, 2, true)
		r.Crash("s00")
		r.Restart("s00")
		r.Restore("s00", 1)
		r.Fault("partition part00 open {p00 | s00}")
		r.ClientResult("c00", 1, false, false)
		var buf bytes.Buffer
		if err := r.WriteTrace(&buf); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace not byte-stable:\n%s\nvs\n%s", a, b)
	}
	// Incarnation must be stamped: post-restart events carry /1.
	if !bytes.Contains(a, []byte("restore node=s00/1 csn=1")) {
		t.Fatalf("trace missing incarnation stamp:\n%s", a)
	}
}

// TestViolationCap: failure counts stay exact past the retained-message cap.
func TestViolationCap(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	for i := uint64(0); i < 20; i++ {
		r.ServeRead("s00", rid("c00", i+1), 100+i, 0, 0, false)
	}
	rep := Run(r.Events())
	v := verdict(t, rep, "staleness-bound")
	if v.Failures != 20 {
		t.Fatalf("Failures = %d, want 20", v.Failures)
	}
	if len(v.Violations) != maxViolations {
		t.Fatalf("retained %d violation strings, want %d", len(v.Violations), maxViolations)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(+12 more)")) {
		t.Fatalf("report does not summarize overflow:\n%s", buf.Bytes())
	}
}

func TestReportWriteFormat(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p01", 1, rid("c00", 1))
	rep := Run(r.Events())
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	for _, inv := range []string{"sequential-consistency", "csn-monotonicity",
		"staleness-bound", "deferred-read", "read-your-writes"} {
		if !strings.Contains(out, inv) {
			t.Errorf("report missing invariant %s:\n%s", inv, out)
		}
	}
	if !rep.OK() {
		t.Fatal("healthy single-apply trace reported violations")
	}
}

// TestRecoveryFrontierHealthy: a durable restart recovers to exactly the
// prior incarnation's frontier and continues from there.
func TestRecoveryFrontierHealthy(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	for gsn := uint64(1); gsn <= 5; gsn++ {
		clk.advance(time.Millisecond)
		r.Apply("p02", gsn, rid("c00", gsn))
	}
	r.Crash("p02")
	r.Restart("p02")
	r.Recover("p02", 5)
	r.Apply("p02", 6, rid("c00", 6))
	rep := Run(r.Events())
	requireOK(t, rep, "recovery-frontier")
	requireOK(t, rep, "sequential-consistency")
	if v := verdict(t, rep, "recovery-frontier"); v.Checked == 0 {
		t.Fatal("recovery-frontier checked nothing")
	}
}

// TestRecoveryFrontierAheadOfApplied: the durable frontier may legally lead
// the applied frontier (the WAL append precedes the apply; a crash lands in
// between).
func TestRecoveryFrontierAheadOfApplied(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Apply("p02", 1, rid("c00", 1))
	r.Crash("p02") // gsn 2 was logged but never applied
	r.Restart("p02")
	r.Recover("p02", 2)
	r.Apply("p02", 3, rid("c00", 3))
	requireOK(t, Run(r.Events()), "recovery-frontier")
}

// TestRecoveryFrontierLostHistory: recovering below the prior incarnation's
// frontier is exactly the bug the oracle exists to catch.
func TestRecoveryFrontierLostHistory(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	for gsn := uint64(1); gsn <= 5; gsn++ {
		r.Apply("p02", gsn, rid("c00", gsn))
	}
	r.Crash("p02")
	r.Restart("p02")
	r.Recover("p02", 3) // two applied updates vanished
	rep := Run(r.Events())
	requireFail(t, rep, "recovery-frontier", "below its prior incarnation's frontier")
}

// TestRecoveryRefetchBelowFrontier: a recovered incarnation pulling a peer
// snapshot beneath its own recovered frontier defeats the purpose of the
// log and is flagged.
func TestRecoveryRefetchBelowFrontier(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	for gsn := uint64(1); gsn <= 4; gsn++ {
		r.Apply("p02", gsn, rid("c00", gsn))
	}
	r.Crash("p02")
	r.Restart("p02")
	r.Recover("p02", 4)
	r.Restore("p02", 2) // re-fetched stale history
	requireFail(t, Run(r.Events()), "recovery-frontier", "below its recovered frontier")
}

// TestRecoveryVacuousWithoutDurability: legacy state-loss restarts emit no
// Recover events; the oracle stays a vacuous pass and catch-up restores are
// not misjudged.
func TestRecoveryVacuousWithoutDurability(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	for gsn := uint64(1); gsn <= 3; gsn++ {
		r.Apply("p02", gsn, rid("c00", gsn))
	}
	r.Crash("p02")
	r.Restart("p02")
	r.Restore("p02", 3) // sync-based catch-up, the legacy path
	rep := Run(r.Events())
	v := verdict(t, rep, "recovery-frontier")
	if !v.OK() || v.Checked != 0 {
		t.Fatalf("expected vacuous pass, got checks=%d violations=%v", v.Checked, v.Violations)
	}
}

// TestRecoverTraceLine locks the recover line's trace format.
func TestRecoverTraceLine(t *testing.T) {
	clk := newClock()
	r := NewRecorder(epoch, clk.now)
	r.Restart("p02")
	r.Recover("p02", 7)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t=0s recover node=p02/1 csn=7\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("trace %q missing %q", buf.String(), want)
	}
}
