// Package check implements trace-driven protocol-invariant oracles for the
// AQuA stack. A Recorder collects the observation events the gateways expose
// (update applications, served reads, snapshot restores) together with the
// fault and client events the chaos harness injects, and Run judges the
// resulting trace against the paper's guarantees:
//
//  1. sequential consistency — every replica applies the same GSN-ordered
//     update sequence, in order, exactly once per incarnation, with holes
//     only where a state snapshot covered them;
//  2. CSN monotonicity — a replica's commit position never moves backwards
//     within an incarnation;
//  3. staleness-bound honesty — a read ordered at GSN g and served under
//     staleness bound a reflects a state no more than a commits behind g
//     (my_GSN − my_CSN ≤ a at serve time, Section 4.1.2);
//  4. deferred-read correctness — a deferred read is served only after a
//     state update whose CSN covers its staleness requirement arrived;
//  5. read-your-writes — within a closed-loop client session, a read is
//     ordered at (and, with a = 0, reflects) a GSN no lower than any update
//     the same session completed earlier;
//  6. recovery-frontier — a replica restarting with durable state recovers
//     to a commit frontier no lower than its prior incarnation's reflected
//     frontier (the WAL is written before any effect becomes visible, so
//     nothing observable may be lost), and never re-fetches a state
//     snapshot below what it recovered.
//
// The oracles are pure functions of the event trace, so the same trace
// always yields the same verdicts, and the trace itself (WriteTrace) is
// byte-stable for a given simulation seed — the property the chaos
// determinism tests lock in.
package check

import (
	"fmt"
	"io"
	"sort"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

// Kind labels one trace event.
type Kind uint8

// Event kinds. Apply/ServeRead/Restore/Recover come from gateway hooks;
// Crash, Restart and Fault from the chaos injector; Client from the
// workload driver. Appended in order: existing indices are load-bearing
// for recorded traces.
const (
	KindApply Kind = iota + 1
	KindServeRead
	KindRestore
	KindCrash
	KindRestart
	KindFault
	KindClient
	KindRecover
)

func (k Kind) String() string {
	switch k {
	case KindApply:
		return "apply"
	case KindServeRead:
		return "serve_read"
	case KindRestore:
		return "restore"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindFault:
		return "fault"
	case KindClient:
		return "client"
	case KindRecover:
		return "recover"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one observation in the oracle trace.
type Event struct {
	// At is virtual time since the recorder's epoch.
	At time.Duration
	// Kind selects which of the remaining fields are meaningful.
	Kind Kind
	// Node is the replica (Apply/ServeRead/Restore/Crash/Restart) or client
	// (Client) the event belongs to.
	Node node.ID
	// Inc is the node's incarnation: 0 at deployment, +1 per restart.
	Inc int
	// GSN is the applied update's GSN (Apply) or the read's order GSN
	// (ServeRead).
	GSN uint64
	// CSN is the replica's commit position at serve time (ServeRead) or the
	// restored snapshot's commit position (Restore).
	CSN uint64
	// Req identifies the request (Apply/ServeRead/Client).
	Req consistency.RequestID
	// Staleness is the read's bound a (ServeRead).
	Staleness int
	// Deferred marks a read served after waiting for a lazy update.
	Deferred bool
	// ReadOnly/Failed describe a client completion (Client).
	ReadOnly bool
	Failed   bool
	// Note annotates fault events (partition membership, link faults).
	Note string
}

// Recorder accumulates trace events. It is not safe for concurrent use: all
// recording must happen from the single goroutine that runs the simulation
// (the scheduler executes every callback inline), which also makes the event
// order — and therefore the trace bytes — deterministic for a given seed.
type Recorder struct {
	now    func() time.Time
	epoch  time.Time
	inc    map[node.ID]int
	events []Event
}

// NewRecorder creates a recorder stamping events with now() relative to
// epoch (sim.Epoch for virtual-time runs).
func NewRecorder(epoch time.Time, now func() time.Time) *Recorder {
	return &Recorder{now: now, epoch: epoch, inc: make(map[node.ID]int)}
}

func (r *Recorder) add(e Event) {
	e.At = r.now().Sub(r.epoch)
	e.Inc = r.inc[e.Node]
	r.events = append(r.events, e)
}

// Apply records an update application (the replica OnApply hook).
func (r *Recorder) Apply(replica node.ID, gsn uint64, rid consistency.RequestID) {
	r.add(Event{Kind: KindApply, Node: replica, GSN: gsn, Req: rid})
}

// ServeRead records a served read (the replica OnServeRead hook).
func (r *Recorder) ServeRead(replica node.ID, rid consistency.RequestID, gsn, csn uint64, staleness int, deferred bool) {
	r.add(Event{Kind: KindServeRead, Node: replica, Req: rid, GSN: gsn, CSN: csn,
		Staleness: staleness, Deferred: deferred})
}

// Restore records a state-snapshot restoration (the replica OnRestore hook).
func (r *Recorder) Restore(replica node.ID, csn uint64) {
	r.add(Event{Kind: KindRestore, Node: replica, CSN: csn})
}

// Recover records a durable recovery (the replica OnRecover hook): the
// fresh incarnation reconstructed its state to csn from snapshot + WAL
// replay at Init, before rejoining the group.
func (r *Recorder) Recover(replica node.ID, csn uint64) {
	r.add(Event{Kind: KindRecover, Node: replica, CSN: csn})
}

// Crash records a replica crash (injected fault).
func (r *Recorder) Crash(replica node.ID) {
	r.add(Event{Kind: KindCrash, Node: replica})
}

// Restart records a replica restart and opens its next incarnation: later
// events for the node belong to the fresh process.
func (r *Recorder) Restart(replica node.ID) {
	r.inc[replica]++
	r.add(Event{Kind: KindRestart, Node: replica})
}

// Fault records a network fault transition (partition open/heal, link fault)
// for the trace; the oracles do not interpret it.
func (r *Recorder) Fault(note string) {
	r.add(Event{Kind: KindFault, Note: note})
}

// ClientResult records a completed client invocation. The read-your-writes
// oracle assumes closed-loop sessions: a client issues request seq+1 only
// after seq completed, so per-client Seq order is session order.
func (r *Recorder) ClientResult(client node.ID, seq uint64, readOnly, failed bool) {
	r.add(Event{Kind: KindClient, Node: client,
		Req: consistency.RequestID{Client: client, Seq: seq}, ReadOnly: readOnly, Failed: failed})
}

// Events returns the recorded trace in recording order. The slice is owned
// by the recorder; callers must not modify it.
func (r *Recorder) Events() []Event { return r.events }

// WriteTrace renders the trace as one line per event. The format is fixed
// and byte-stable: identical seeds produce identical bytes, which the chaos
// determinism tests compare across parallelism levels.
func (r *Recorder) WriteTrace(w io.Writer) error {
	for i := range r.events {
		e := &r.events[i]
		var err error
		switch e.Kind {
		case KindApply:
			_, err = fmt.Fprintf(w, "t=%s apply node=%s/%d gsn=%d req=%s/%d\n",
				e.At, e.Node, e.Inc, e.GSN, e.Req.Client, e.Req.Seq)
		case KindServeRead:
			_, err = fmt.Fprintf(w, "t=%s serve_read node=%s/%d req=%s/%d gsn=%d csn=%d a=%d deferred=%t\n",
				e.At, e.Node, e.Inc, e.Req.Client, e.Req.Seq, e.GSN, e.CSN, e.Staleness, e.Deferred)
		case KindRestore:
			_, err = fmt.Fprintf(w, "t=%s restore node=%s/%d csn=%d\n", e.At, e.Node, e.Inc, e.CSN)
		case KindRecover:
			_, err = fmt.Fprintf(w, "t=%s recover node=%s/%d csn=%d\n", e.At, e.Node, e.Inc, e.CSN)
		case KindCrash:
			_, err = fmt.Fprintf(w, "t=%s crash node=%s/%d\n", e.At, e.Node, e.Inc)
		case KindRestart:
			_, err = fmt.Fprintf(w, "t=%s restart node=%s/%d\n", e.At, e.Node, e.Inc)
		case KindFault:
			_, err = fmt.Fprintf(w, "t=%s fault %s\n", e.At, e.Note)
		case KindClient:
			_, err = fmt.Fprintf(w, "t=%s client node=%s seq=%d read=%t failed=%t\n",
				e.At, e.Node, e.Req.Seq, e.ReadOnly, e.Failed)
		default:
			_, err = fmt.Fprintf(w, "t=%s %s\n", e.At, e.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// maxViolations bounds the violation strings kept per invariant; the count
// of checks and violations stays exact.
const maxViolations = 8

// Verdict is one invariant's judgement over a trace.
type Verdict struct {
	// Invariant names the checked property.
	Invariant string
	// Checked counts individual checks performed (0 means the trace
	// exercised nothing — a vacuous pass worth noticing).
	Checked int
	// Failures counts violations found; Violations holds the first few,
	// rendered deterministically.
	Failures   int
	Violations []string
}

// OK reports whether the invariant held.
func (v *Verdict) OK() bool { return v.Failures == 0 }

func (v *Verdict) violate(format string, args ...interface{}) {
	v.Failures++
	if len(v.Violations) < maxViolations {
		v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
	}
}

// Report bundles the six invariant verdicts, in fixed order (appended,
// never reordered: tests index into Verdicts).
type Report struct {
	Verdicts []Verdict
}

// OK reports whether every invariant held.
func (r *Report) OK() bool {
	for i := range r.Verdicts {
		if !r.Verdicts[i].OK() {
			return false
		}
	}
	return true
}

// Write renders one PASS/FAIL line per invariant plus the retained
// violation details. The output is deterministic.
func (r *Report) Write(w io.Writer) error {
	for i := range r.Verdicts {
		v := &r.Verdicts[i]
		status := "PASS"
		if !v.OK() {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "%s %-24s checks=%d failures=%d\n",
			status, v.Invariant, v.Checked, v.Failures); err != nil {
			return err
		}
		for _, s := range v.Violations {
			if _, err := fmt.Fprintf(w, "  - %s\n", s); err != nil {
				return err
			}
		}
		if v.Failures > len(v.Violations) {
			if _, err := fmt.Fprintf(w, "  - (+%d more)\n", v.Failures-len(v.Violations)); err != nil {
				return err
			}
		}
	}
	return nil
}

// incKey scopes per-replica state to one incarnation.
type incKey struct {
	node node.ID
	inc  int
}

func (k incKey) String() string { return fmt.Sprintf("%s/%d", k.node, k.inc) }

// Run judges a trace against the six protocol invariants. It is a pure
// function: the same event slice always produces the same report, including
// the order and wording of violation messages.
func Run(events []Event) Report {
	rep := Report{Verdicts: []Verdict{
		{Invariant: "sequential-consistency"},
		{Invariant: "csn-monotonicity"},
		{Invariant: "staleness-bound"},
		{Invariant: "deferred-read"},
		{Invariant: "read-your-writes"},
		{Invariant: "recovery-frontier"},
	}}
	checkSequential(events, &rep.Verdicts[0])
	checkCSNMonotone(events, &rep.Verdicts[1])
	checkStalenessBound(events, &rep.Verdicts[2])
	checkDeferredRead(events, &rep.Verdicts[3])
	checkReadYourWrites(events, &rep.Verdicts[4])
	checkRecovery(events, &rep.Verdicts[5])
	return rep
}

// checkSequential verifies the sequential-consistency invariant. Each
// incarnation's reflected state must at every instant be a prefix of the
// single global GSN order: an apply is legal only when it extends the
// incarnation's frontier — the highest GSN such that every update up to it
// is reflected, via in-order applies or a restored snapshot — by exactly
// one. A skipped GSN is flagged at the apply that jumps it, even if a later
// snapshot repairs the state: in between, the replica served from a
// non-prefix state. Exactly-once holds per incarnation (no request applied
// twice), and globally every GSN must map to one request.
func checkSequential(events []Event, v *Verdict) {
	type incState struct {
		frontier uint64
		seenReq  map[consistency.RequestID]uint64 // rid -> gsn applied
	}
	incs := make(map[incKey]*incState)
	globalReq := make(map[uint64]consistency.RequestID) // gsn -> rid (first seen)

	state := func(k incKey) *incState {
		s := incs[k]
		if s == nil {
			s = &incState{seenReq: make(map[consistency.RequestID]uint64)}
			incs[k] = s
		}
		return s
	}

	for i := range events {
		e := &events[i]
		k := incKey{e.Node, e.Inc}
		switch e.Kind {
		case KindRestore, KindRecover:
			// A snapshot — or a durable recovery — advances the frontier
			// wholesale: it reflects every update up to its CSN. One below
			// the frontier adds nothing (the csn-monotonicity oracle judges
			// rewinds). Seeding from Recover means a recovered incarnation's
			// first apply must continue at CSN+1: a re-apply of replayed
			// history is flagged as a duplicate right here.
			s := state(k)
			if e.CSN > s.frontier {
				s.frontier = e.CSN
			}
		case KindApply:
			v.Checked++
			s := state(k)
			switch {
			case e.GSN == s.frontier+1:
				s.frontier = e.GSN
			case e.GSN <= s.frontier:
				v.violate("%s applied gsn %d at t=%s at or below its frontier %d (duplicate or rewound apply)",
					k, e.GSN, e.At, s.frontier)
			default:
				v.violate("%s applied gsn %d at t=%s with frontier %d, skipping %d update(s) (hole)",
					k, e.GSN, e.At, s.frontier, e.GSN-s.frontier-1)
				s.frontier = e.GSN
			}
			if g, dup := s.seenReq[e.Req]; dup {
				v.violate("%s applied request %s/%d twice (gsn %d then %d)", k, e.Req.Client, e.Req.Seq, g, e.GSN)
			}
			s.seenReq[e.Req] = e.GSN
			if rid, ok := globalReq[e.GSN]; ok && rid != e.Req {
				v.violate("gsn %d maps to request %s/%d at %s but %s/%d elsewhere (order divergence)",
					e.GSN, e.Req.Client, e.Req.Seq, k, rid.Client, rid.Seq)
			} else if !ok {
				globalReq[e.GSN] = e.Req
			}
		}
	}
}

// checkCSNMonotone verifies that a replica's observable commit position
// (serve-time CSN, restored-snapshot CSN) never decreases within an
// incarnation, and that a restore never rewinds below an applied GSN.
func checkCSNMonotone(events []Event, v *Verdict) {
	type incState struct {
		lastCSN    uint64
		haveCSN    bool
		maxApplied uint64
	}
	incs := make(map[incKey]*incState)
	state := func(k incKey) *incState {
		s := incs[k]
		if s == nil {
			s = &incState{}
			incs[k] = s
		}
		return s
	}
	for i := range events {
		e := &events[i]
		k := incKey{e.Node, e.Inc}
		switch e.Kind {
		case KindApply:
			if s := state(k); e.GSN > s.maxApplied {
				s.maxApplied = e.GSN
			}
		case KindServeRead, KindRestore, KindRecover:
			v.Checked++
			s := state(k)
			if s.haveCSN && e.CSN < s.lastCSN {
				v.violate("%s csn moved backwards: %d then %d at t=%s (%s)", k, s.lastCSN, e.CSN, e.At, e.Kind)
			}
			if e.Kind == KindRestore && e.CSN < s.maxApplied {
				v.violate("%s restored snapshot at csn %d below applied gsn %d", k, e.CSN, s.maxApplied)
			}
			s.lastCSN, s.haveCSN = e.CSN, true
		}
	}
}

// checkStalenessBound verifies staleness honesty: a read ordered at GSN g
// and served with commit position csn under bound a satisfies g − csn ≤ a.
func checkStalenessBound(events []Event, v *Verdict) {
	for i := range events {
		e := &events[i]
		if e.Kind != KindServeRead {
			continue
		}
		v.Checked++
		if int64(e.GSN)-int64(e.CSN) > int64(e.Staleness) {
			v.violate("%s/%d served read %s/%d at csn %d, %d commits behind its gsn %d (bound a=%d)",
				e.Node, e.Inc, e.Req.Client, e.Req.Seq, e.CSN, e.GSN-e.CSN, e.GSN, e.Staleness)
		}
	}
}

// checkDeferredRead verifies that every deferred read was released by a
// covering state update: a restore on the same incarnation, at or before
// serve time, whose CSN brings the replica within the read's bound.
func checkDeferredRead(events []Event, v *Verdict) {
	restores := make(map[incKey]uint64) // highest restore CSN so far
	for i := range events {
		e := &events[i]
		k := incKey{e.Node, e.Inc}
		switch e.Kind {
		case KindRestore, KindRecover:
			// Recovered state covers its CSN exactly as an installed
			// snapshot does.
			if e.CSN > restores[k] {
				restores[k] = e.CSN
			}
		case KindServeRead:
			if !e.Deferred {
				continue
			}
			v.Checked++
			need := int64(e.GSN) - int64(e.Staleness)
			if best, ok := restores[k]; !ok || int64(best) < need {
				got := "no state update at all"
				if ok {
					got = fmt.Sprintf("best covers csn %d", best)
				}
				v.violate("%s served deferred read %s/%d (gsn %d, a=%d) without a covering state update (%s)",
					k, e.Req.Client, e.Req.Seq, e.GSN, e.Staleness, got)
			}
		}
	}
}

// checkRecovery verifies the recovery-frontier invariant for replicas that
// restart with durable state. The WAL append precedes both the apply and
// the ack (and snapshot installs persist the cell at the same CSN), so at
// any crash point the durable frontier is at least the reflected frontier:
// a recovery reporting less lost observable history. And because recovery
// reconstructs that frontier locally, the recovered incarnation must never
// re-fetch a peer snapshot below it — a Restore under the recovered CSN
// means the replica fell back to the chase/sync path recovery exists to
// replace. Incarnations without a Recover event (fresh boots, state-loss
// restarts) are out of scope.
func checkRecovery(events []Event, v *Verdict) {
	// Pass 1: each incarnation's final reflected frontier (applies and
	// snapshot installs, plus its own recovery seed).
	frontier := make(map[incKey]uint64)
	for i := range events {
		e := &events[i]
		k := incKey{e.Node, e.Inc}
		switch e.Kind {
		case KindApply:
			if e.GSN > frontier[k] {
				frontier[k] = e.GSN
			}
		case KindRestore, KindRecover:
			if e.CSN > frontier[k] {
				frontier[k] = e.CSN
			}
		}
	}
	// Pass 2: judge each recovery against the prior incarnation, and each
	// restore in a recovered incarnation against the recovery seed.
	recovered := make(map[incKey]uint64)
	for i := range events {
		e := &events[i]
		k := incKey{e.Node, e.Inc}
		switch e.Kind {
		case KindRecover:
			v.Checked++
			if _, dup := recovered[k]; !dup {
				recovered[k] = e.CSN
			}
			if e.Inc == 0 {
				continue // first boot: nothing durable to compare against
			}
			if prior := frontier[incKey{e.Node, e.Inc - 1}]; e.CSN < prior {
				v.violate("%s recovered to csn %d below its prior incarnation's frontier %d (durable history lost)",
					k, e.CSN, prior)
			}
		case KindRestore:
			seed, ok := recovered[k]
			if !ok {
				continue
			}
			v.Checked++
			if e.CSN < seed {
				v.violate("%s re-fetched a snapshot at csn %d below its recovered frontier %d at t=%s",
					k, e.CSN, seed, e.At)
			}
		}
	}
}

// checkReadYourWrites verifies session ordering for closed-loop clients:
// a read is ordered at a GSN no lower than the GSN of any update the same
// client completed (successfully) earlier in the session. Combined with the
// staleness bound, an a=0 read therefore reflects the session's own writes.
func checkReadYourWrites(events []Event, v *Verdict) {
	// rid -> assigned GSN, from apply events (first observation wins; the
	// sequential-consistency oracle reports disagreements).
	gsnOf := make(map[consistency.RequestID]uint64)
	for i := range events {
		e := &events[i]
		if e.Kind == KindApply {
			if _, ok := gsnOf[e.Req]; !ok {
				gsnOf[e.Req] = e.GSN
			}
		}
	}
	// Per client: the completed updates, in session (Seq) order.
	type upd struct {
		seq uint64
		gsn uint64
	}
	updates := make(map[node.ID][]upd)
	for i := range events {
		e := &events[i]
		if e.Kind != KindClient || e.ReadOnly || e.Failed {
			continue
		}
		if g, ok := gsnOf[e.Req]; ok {
			updates[e.Node] = append(updates[e.Node], upd{seq: e.Req.Seq, gsn: g})
		}
	}
	// prefixMax[client] holds updates sorted by seq with gsn running-max, so
	// each read binary-searches the strongest earlier write.
	for c := range updates {
		us := updates[c]
		sort.Slice(us, func(i, j int) bool { return us[i].seq < us[j].seq })
		var running uint64
		for i := range us {
			if us[i].gsn > running {
				running = us[i].gsn
			}
			us[i].gsn = running
		}
		updates[c] = us
	}
	for i := range events {
		e := &events[i]
		if e.Kind != KindServeRead {
			continue
		}
		us := updates[e.Req.Client]
		// Strongest update completed strictly before this read was issued.
		idx := sort.Search(len(us), func(i int) bool { return us[i].seq >= e.Req.Seq })
		if idx == 0 {
			continue // no earlier completed update: nothing to check
		}
		v.Checked++
		if want := us[idx-1].gsn; e.GSN < want {
			v.violate("client %s read seq %d ordered at gsn %d behind its own completed write at gsn %d (served by %s/%d)",
				e.Req.Client, e.Req.Seq, e.GSN, want, e.Node, e.Inc)
		}
	}
}
