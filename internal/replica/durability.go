package replica

import (
	"fmt"

	"aqua/internal/consistency"
	"aqua/internal/wal"
)

// Durable state (DESIGN.md §14). The gateway's invariant is that the WAL
// frontier always equals my_CSN: every commit release goes through the log
// before its job enters the work queue (walAppend in enqueueCommits and the
// state-update drain), and snapshot installs refresh the cell at the same
// CSN they advance the buffer to. A crash therefore always lands with the
// durable frontier at or ahead of the applied frontier — the simulator only
// crashes nodes between callbacks, and within a callback the append
// precedes both the apply and the ack.

// recoverDurable rebuilds pre-crash state at Init: restore the snapshot
// cell, replay the log suffix against the application, and reseed the
// protocol memos so the replica stands exactly where its last incarnation
// committed — without re-fetching history from its peers.
func (g *Gateway) recoverDurable() {
	rec, err := g.cfg.Durable.Recover()
	if err != nil {
		// An unreadable store recovers nothing provable; rejoin as a fresh
		// node through the usual sync path.
		g.ctx.Logf("replica: wal recover: %v", err)
	}
	if rec.CSN == 0 && len(rec.Assigns) == 0 {
		return // empty store: first boot, or nothing durable survived
	}
	if rec.Snapshot.CSN > 0 || len(rec.Snapshot.App) > 0 {
		if err := g.cfg.App.Restore(rec.Snapshot.App); err != nil {
			g.ctx.Logf("replica: wal snapshot restore failed: %v", err)
			return
		}
		for _, id := range rec.Snapshot.RecentIDs {
			g.markCommitted(id)
		}
	}
	for i := range rec.Records {
		r := &rec.Records[i]
		if !r.Dup {
			if _, err := g.cfg.App.ApplyUpdate(r.Method, r.Payload); err != nil {
				g.ctx.Logf("replica: wal replay apply %s: %v", fmtID(r.ID), err)
			}
		}
		g.markCommitted(r.ID)
		g.rememberBody(consistency.Request{ID: r.ID, Method: r.Method, Payload: r.Payload})
		g.observeAssign(r.ID, r.GSN)
	}
	g.commit.Bootstrap(rec.CSN)
	// Restore the durable assignment table above the commit frontier: the
	// prior incarnation acknowledged these assignments to the sequencer, so
	// this incarnation must still hold them — a takeover quorum counting
	// this node re-learns them from its GSNReport (REVIEW: acked frontiers
	// must survive crash-recovery, not just the released prefix).
	for _, a := range rec.Assigns {
		g.observeAssign(a.ID, a.GSN)
		g.commit.AddAssign(consistency.GSNAssign{ID: a.ID, GSN: a.GSN, Update: true})
	}
	g.applied = rec.CSN
	g.recovered = rec.CSN
	g.ins.recoveries.Inc()
	g.ins.recoveryReplayed.Observe(float64(len(rec.Records)))
	// Replay is not re-execution for the trace: the prior incarnation's
	// OnApply events already cover these GSNs. OnRecover marks where the
	// recovered incarnation resumes instead.
	if rec.CSN > 0 && g.cfg.OnRecover != nil {
		g.cfg.OnRecover(rec.CSN)
	}
	g.ctx.Logf("replica: recovered to CSN %d (snapshot %d + %d records + %d assigns, torn=%t)",
		rec.CSN, rec.Snapshot.CSN, len(rec.Records), len(rec.Assigns), rec.Torn)
}

// Recovered returns the durable commit frontier Init reconstructed (0 when
// none) — for tests and diagnostics.
func (g *Gateway) Recovered() uint64 { return g.recovered }

// DurableStore exposes the gateway's WAL store (nil when durability is
// off) — the adversarial tests arm crash-point and planted-bug injections
// on it before Init runs.
func (g *Gateway) DurableStore() *wal.Store { return g.cfg.Durable }

// walFail wedges the replica on a durability failure: a WAL that can no
// longer extend its frontier means the invariant "durable frontier ≥
// acknowledged frontier" is about to break, and a replica that keeps
// applying and acking on top of a stale log silently un-promises
// durability. Fail stop instead: drop all traffic, stop ticking, go
// silent — the group treats the node as crashed and heals around it.
func (g *Gateway) walFail(op string, err error) {
	if g.wedged {
		return
	}
	g.wedged = true
	g.ctx.Logf("replica: wal %s failed; wedging (fail-stop): %v", op, err)
}

// Wedged reports whether a durability failure has fail-stopped this
// replica (tests and diagnostics).
func (g *Gateway) Wedged() bool { return g.wedged }

// walAppend durably logs one released commit before its job enters the
// work queue: the ack and the visible state change both happen after the
// record is on media. It reports whether the caller may proceed — an
// append failure wedges the replica (fail-stop) and the commit must not
// be applied or acked. No-op without a durable store.
func (g *Gateway) walAppend(gsn uint64, req *consistency.Request, dup bool) bool {
	if g.cfg.Durable == nil {
		return true
	}
	if g.wedged {
		return false
	}
	rec := wal.Record{GSN: gsn, ID: req.ID, Method: req.Method, Payload: req.Payload, Dup: dup}
	if err := g.cfg.Durable.Append(&rec); err != nil {
		g.walFail(fmt.Sprintf("append gsn %d", gsn), err)
		return false
	}
	g.ins.walAppends.Inc()
	return true
}

// walLogAssigns extends the store's durable assignment frontier to the
// commit buffer's contiguous assignment frontier. It runs before any
// AssignAck: an acknowledged frontier the acker cannot recover after a
// crash would let a sequencer release a floor whose takeover quorum no
// longer holds the assignments. No-op without a durable store.
func (g *Gateway) walLogAssigns() {
	if g.cfg.Durable == nil || g.wedged {
		return
	}
	st := g.cfg.Durable
	from := st.AssignFrontier()
	if from >= g.commit.AssignFrontier() {
		return
	}
	for _, a := range g.commit.ContiguousAssigns(from) {
		if err := st.AppendAssign(a.GSN, a.ID); err != nil {
			g.walFail(fmt.Sprintf("assign gsn %d", a.GSN), err)
			return
		}
		g.ins.walAppends.Inc()
	}
}

// ackableFrontier is the assignment frontier this replica may acknowledge:
// the in-memory contiguous frontier, capped at what the WAL holds when the
// replica is durable (an ack is a promise to survive a crash).
func (g *Gateway) ackableFrontier() uint64 {
	f := g.commit.AssignFrontier()
	if g.cfg.Durable != nil {
		if df := g.cfg.Durable.AssignFrontier(); df < f {
			f = df
		}
	}
	return f
}

// walSaveSnapshot replaces the snapshot cell (and resets the log) with
// state at csn, carrying the outstanding assignment table above it. It
// reports whether the caller may proceed — a snapshot failure wedges the
// replica. No-op without a durable store.
func (g *Gateway) walSaveSnapshot(csn uint64, appState []byte, ids []consistency.RequestID) bool {
	if g.cfg.Durable == nil {
		return true
	}
	if g.wedged {
		return false
	}
	snap := wal.Snapshot{CSN: csn, App: appState, RecentIDs: ids}
	for _, a := range g.commit.ContiguousAssigns(csn) {
		snap.Assigns = append(snap.Assigns, wal.Assign{GSN: a.GSN, ID: a.ID})
	}
	if err := g.cfg.Durable.SaveSnapshot(&snap); err != nil {
		g.walFail(fmt.Sprintf("snapshot at %d", csn), err)
		return false
	}
	g.ins.walSnapshots.Inc()
	return true
}

// maybeCompact folds the log into a fresh snapshot once it exceeds the
// compaction threshold. Runs only when the applied frontier has caught up
// with the commit frontier, so the snapshot provably covers every logged
// record.
func (g *Gateway) maybeCompact() {
	if g.cfg.Durable == nil || g.cfg.Durable.LogRecords() < g.cfg.SnapshotEvery {
		return
	}
	if g.applied != g.commit.MyCSN() {
		return // queued commits not yet applied; next completion retries
	}
	snap, err := g.cfg.App.Snapshot()
	if err != nil {
		g.ctx.Logf("replica: compaction snapshot failed: %v", err)
		return
	}
	g.walSaveSnapshot(g.applied, snap, g.recentCommittedIDs(1024))
}
