package replica

import (
	"aqua/internal/consistency"
	"aqua/internal/wal"
)

// Durable state (DESIGN.md §14). The gateway's invariant is that the WAL
// frontier always equals my_CSN: every commit release goes through the log
// before its job enters the work queue (walAppend in enqueueCommits and the
// state-update drain), and snapshot installs refresh the cell at the same
// CSN they advance the buffer to. A crash therefore always lands with the
// durable frontier at or ahead of the applied frontier — the simulator only
// crashes nodes between callbacks, and within a callback the append
// precedes both the apply and the ack.

// recoverDurable rebuilds pre-crash state at Init: restore the snapshot
// cell, replay the log suffix against the application, and reseed the
// protocol memos so the replica stands exactly where its last incarnation
// committed — without re-fetching history from its peers.
func (g *Gateway) recoverDurable() {
	rec, err := g.cfg.Durable.Recover()
	if err != nil {
		// An unreadable store recovers nothing provable; rejoin as a fresh
		// node through the usual sync path.
		g.ctx.Logf("replica: wal recover: %v", err)
	}
	if rec.CSN == 0 {
		return // empty store: first boot, or nothing durable survived
	}
	if rec.Snapshot.CSN > 0 || len(rec.Snapshot.App) > 0 {
		if err := g.cfg.App.Restore(rec.Snapshot.App); err != nil {
			g.ctx.Logf("replica: wal snapshot restore failed: %v", err)
			return
		}
		for _, id := range rec.Snapshot.RecentIDs {
			g.markCommitted(id)
		}
	}
	for i := range rec.Records {
		r := &rec.Records[i]
		if !r.Dup {
			if _, err := g.cfg.App.ApplyUpdate(r.Method, r.Payload); err != nil {
				g.ctx.Logf("replica: wal replay apply %s: %v", fmtID(r.ID), err)
			}
		}
		g.markCommitted(r.ID)
		g.rememberBody(consistency.Request{ID: r.ID, Method: r.Method, Payload: r.Payload})
		g.observeAssign(r.ID, r.GSN)
	}
	g.commit.Bootstrap(rec.CSN)
	g.applied = rec.CSN
	g.recovered = rec.CSN
	g.ins.recoveries.Inc()
	g.ins.recoveryReplayed.Observe(float64(len(rec.Records)))
	// Replay is not re-execution for the trace: the prior incarnation's
	// OnApply events already cover these GSNs. OnRecover marks where the
	// recovered incarnation resumes instead.
	if g.cfg.OnRecover != nil {
		g.cfg.OnRecover(rec.CSN)
	}
	g.ctx.Logf("replica: recovered to CSN %d (snapshot %d + %d records, torn=%t)",
		rec.CSN, rec.Snapshot.CSN, len(rec.Records), rec.Torn)
}

// Recovered returns the durable commit frontier Init reconstructed (0 when
// none) — for tests and diagnostics.
func (g *Gateway) Recovered() uint64 { return g.recovered }

// DurableStore exposes the gateway's WAL store (nil when durability is
// off) — the adversarial tests arm crash-point and planted-bug injections
// on it before Init runs.
func (g *Gateway) DurableStore() *wal.Store { return g.cfg.Durable }

// walAppend durably logs one released commit before its job enters the
// work queue: the ack and the visible state change both happen after the
// record is on media. No-op without a durable store.
func (g *Gateway) walAppend(gsn uint64, req *consistency.Request, dup bool) {
	if g.cfg.Durable == nil {
		return
	}
	rec := wal.Record{GSN: gsn, ID: req.ID, Method: req.Method, Payload: req.Payload, Dup: dup}
	if err := g.cfg.Durable.Append(&rec); err != nil {
		g.ctx.Logf("replica: wal append gsn %d: %v", gsn, err)
		return
	}
	g.ins.walAppends.Inc()
}

// walSaveSnapshot replaces the snapshot cell (and resets the log) with
// state at csn. No-op without a durable store.
func (g *Gateway) walSaveSnapshot(csn uint64, appState []byte, ids []consistency.RequestID) {
	if g.cfg.Durable == nil {
		return
	}
	snap := wal.Snapshot{CSN: csn, App: appState, RecentIDs: ids}
	if err := g.cfg.Durable.SaveSnapshot(&snap); err != nil {
		g.ctx.Logf("replica: wal snapshot at %d: %v", csn, err)
		return
	}
	g.ins.walSnapshots.Inc()
}

// maybeCompact folds the log into a fresh snapshot once it exceeds the
// compaction threshold. Runs only when the applied frontier has caught up
// with the commit frontier, so the snapshot provably covers every logged
// record.
func (g *Gateway) maybeCompact() {
	if g.cfg.Durable == nil || g.cfg.Durable.LogRecords() < g.cfg.SnapshotEvery {
		return
	}
	if g.applied != g.commit.MyCSN() {
		return // queued commits not yet applied; next completion retries
	}
	snap, err := g.cfg.App.Snapshot()
	if err != nil {
		g.ctx.Logf("replica: compaction snapshot failed: %v", err)
		return
	}
	g.walSaveSnapshot(g.applied, snap, g.recentCommittedIDs(1024))
}
