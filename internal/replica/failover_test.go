package replica

import (
	"testing"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

func TestFailoverSequencerTakeover(t *testing.T) {
	tb := newTestbed(20, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	// Commit a couple of updates so the takeover has a GSN to discover.
	tb.update(1, "a=1")
	tb.update(2, "b=2")
	tb.s.RunFor(300 * ms)

	tb.rt.Crash("p0")
	tb.s.RunFor(5 * time.Second) // failure detection + GSNQuery round

	p1 := tb.replicas["p1"]
	if !p1.IsLeader() {
		t.Fatal("p1 did not become leader")
	}
	if !p1.seqReady {
		t.Fatal("takeover never completed")
	}
	if got := p1.seqState.GSN(); got != 2 {
		t.Fatalf("resumed GSN = %d, want 2", got)
	}
	// Everyone, including secondaries, learned the new sequencer.
	for _, id := range []node.ID{"p2", "s1", "s2"} {
		if got := tb.replicas[id].Sequencer(); got != "p1" {
			t.Fatalf("%s believes sequencer is %s", id, got)
		}
	}
	// New assignments continue above the discovered GSN.
	tb.update(3, "c=3")
	tb.s.RunFor(2 * time.Second)
	if got := tb.replicas["p2"].Applied(); got != 3 {
		t.Fatalf("p2 applied %d, want 3", got)
	}
}

func TestFailoverPublisherHandoffKeepsLazyFlowing(t *testing.T) {
	tb := newTestbed(21, 300*ms, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(time.Second)
	if tb.replicas["s1"].CSN() != 1 {
		t.Fatal("initial lazy propagation failed")
	}

	tb.rt.Crash("p1") // the publisher
	tb.s.RunFor(3 * time.Second)
	if !tb.replicas["p2"].IsPublisher() {
		t.Fatal("p2 did not take over publishing")
	}
	tb.update(2, "b=2")
	tb.s.RunFor(2 * time.Second)
	for _, id := range []node.ID{"s1", "s2"} {
		if got := tb.replicas[id].CSN(); got != 2 {
			t.Fatalf("%s CSN %d, want 2 after publisher handoff", id, got)
		}
	}
}

func TestFailoverLonePrimaryServes(t *testing.T) {
	tb := newTestbed(22, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.rt.Crash("p0")
	tb.rt.Crash("p1")
	tb.s.RunFor(5 * time.Second)

	p2 := tb.replicas["p2"]
	if !p2.IsLeader() || !p2.IsPublisher() {
		t.Fatal("lone survivor did not absorb both roles")
	}
	if !p2.lonePrimary() {
		t.Fatal("lonePrimary() false for singleton view")
	}

	// Updates are acknowledged by the lone leader itself.
	tb.update(1, "a=1")
	tb.s.RunFor(2 * time.Second)
	found := false
	for _, r := range tb.cli.replies {
		if r.Replica == "p2" && r.ID.Seq == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lone leader never replied to the update; replies: %+v", tb.cli.replies)
	}

	// Reads sent to the lone leader are served too.
	tb.cli.send("p2", req(2, true, "Get", "k", 5))
	tb.s.RunFor(2 * time.Second)
	served := false
	for _, r := range tb.cli.replies {
		if r.ID.Seq == 2 && r.Replica == "p2" {
			served = true
		}
	}
	if !served {
		t.Fatal("lone leader refused a read")
	}
}

func TestFailoverDeposedLeaderStopsSequencing(t *testing.T) {
	// p0 is partitioned away (crash, in our model), p1 takes over. The
	// onPrimaryView deposition path is the revival scenario: simulate it
	// directly by feeding p1 a view where p0 is back.
	tb := newTestbed(23, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.rt.Crash("p0")
	tb.s.RunFor(5 * time.Second)
	p1 := tb.replicas["p1"]
	if !p1.IsLeader() {
		t.Fatal("p1 not leader after crash")
	}
	// Heal: p0's revival shows up as a view change at p1.
	tb.s.After(0, func() {
		v, _ := p1.stack.ViewOf(PrimaryGroupName)
		v.Members = append([]node.ID{"p0"}, v.Members...)
		v.Leader = "p0"
		p1.onPrimaryView(v)
	})
	tb.s.RunFor(100 * ms)
	if p1.IsLeader() {
		t.Fatal("deposed leader kept sequencing")
	}
	if p1.Sequencer() != "p0" {
		t.Fatalf("p1 sequencer belief = %s", p1.Sequencer())
	}
}

func TestFailoverGSNQueryReport(t *testing.T) {
	tb := newTestbed(24, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(300 * ms)

	// Drive a GSNQuery into p2 via the substrate; it must answer with its
	// observed GSN.
	tb.s.After(0, func() {
		tb.cli.send("p2", consistency.GSNQuery{Epoch: 9})
	})
	tb.s.RunFor(500 * ms)
	found := false
	for _, m := range tb.cli.other {
		if rep, ok := m.(consistency.GSNReport); ok && rep.Epoch == 9 && rep.GSN == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no GSNReport; other = %+v", tb.cli.other)
	}
}

func TestFailoverUpdateChase(t *testing.T) {
	// Deliver an update body to p1 only (never to the sequencer): the GSN
	// assignment never arrives, and the chase must obtain one.
	tb := newTestbed(25, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.cli.send("p1", req(1, false, "Set", "a=1", 0))
	tb.s.RunFor(3 * time.Second)

	if got := tb.replicas["p1"].Applied(); got != 1 {
		t.Fatalf("p1 applied %d; chase did not recover the assignment", got)
	}
	// The sequencer broadcast the assignment to all primaries, so p2
	// holds a pending assignment but no body — harmless, bounded.
	if got := tb.replicas["p0"].Applied(); got != 1 {
		t.Fatalf("sequencer applied %d", got)
	}
}

func TestReplicaHeldRequestsDuringTakeover(t *testing.T) {
	// Requests arriving at the new leader between its election and the end
	// of the GSNQuery round must be held and sequenced afterwards.
	tb := newTestbed(26, time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	tb.rt.Crash("p0")
	// Wait for the view change (fail timeout ~900ms) then immediately send
	// an update; the takeover round (300ms) may still be in flight.
	tb.s.RunFor(1200 * ms)
	tb.update(1, "a=1")
	tb.s.RunFor(5 * time.Second)
	if got := tb.replicas["p2"].Applied(); got != 1 {
		t.Fatalf("p2 applied %d; held request lost in takeover", got)
	}
}
