// Package replica implements the server-side AQuA gateway handler of
// Section 4: the sequential-consistency protocol roles (sequencer, primary,
// secondary, lazy publisher), the single-server work queue whose queueing
// delay the monitoring layer measures, the performance instrumentation and
// broadcasts of Section 5.4, and the sequencer/lazy-publisher failover the
// paper sketches in Section 4.1.
package replica

import (
	"fmt"
	"math/rand"
	"time"

	"aqua/internal/app"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
	"aqua/internal/obs"
	"aqua/internal/wal"
)

// PrimaryGroupName is the heartbeating group of primary replicas; its
// leader is the sequencer.
const PrimaryGroupName = "primary"

// DelayModel produces the simulated service delay for one request — the
// paper "simulated the background load on the servers by having each
// replica respond to a request after a delay that was normally distributed".
// A nil model means requests are serviced with zero simulated delay.
type DelayModel func(r *rand.Rand) time.Duration

// Config describes one replica gateway.
type Config struct {
	// Primary marks membership in the primary group. The initial sequencer
	// is the lowest-ID primary member.
	Primary bool
	// PrimaryGroup lists all primary members, including the sequencer.
	PrimaryGroup []node.ID
	// Secondaries lists the secondary group.
	Secondaries []node.ID
	// Clients lists the client gateways to publish measurements to (the
	// QoS group of Figure 1).
	Clients []node.ID
	// Group tunes the communication substrate.
	Group group.Config
	// LazyInterval is T_L, the lazy update period of the designated
	// publisher.
	LazyInterval time.Duration
	// ServiceDelay simulates background load; nil for none.
	ServiceDelay DelayModel
	// ChaseInterval is how often buffered requests missing their GSN
	// assignment are chased with a GSNRequest; 0 selects a default.
	ChaseInterval time.Duration
	// TakeoverTimeout bounds the GSNQuery round during sequencer failover;
	// 0 selects a default.
	TakeoverTimeout time.Duration
	// RecoveryGap is the commit-stream gap (my_GSN − my_CSN) beyond which a
	// replica assumes it missed history (e.g. it restarted) and requests a
	// state snapshot from the sequencer; 0 selects a default of 32.
	RecoveryGap int
	// AssignBatch, when > 1, enables batched GSN ordering at the sequencer:
	// requests accumulate into a window of at most AssignBatch and are
	// assigned and broadcast as one GSNAssignBatch. Values <= 1 select the
	// original per-request GSNAssign broadcast path, byte-identical to the
	// pre-batching protocol.
	AssignBatch int
	// AssignBatchWindow bounds how long a non-full assignment window
	// accumulates before flushing. 0 flushes at the end of the current
	// virtual instant (coalescing only same-instant arrivals). Only
	// meaningful when AssignBatch > 1.
	AssignBatchWindow time.Duration
	// SeqCostBase and SeqCostPerReq model the sequencer's ordering-pipeline
	// occupancy: each assignment broadcast holds the pipeline for
	// SeqCostBase + n*SeqCostPerReq (n = requests covered), and broadcasts
	// queue behind one another. Both zero (the default) disables the model —
	// broadcasts leave instantly, as before. The loadmax experiment enables
	// it so saturation exists in virtual time; batching then amortizes the
	// per-broadcast base across the window.
	SeqCostBase   time.Duration
	SeqCostPerReq time.Duration
	// FastReads enables the frontier fast path: a read whose snapshot GSN
	// the commit stream has already reached, arriving while the work queue
	// is idle and no service-delay model is configured, is served inline —
	// no job staging, no queue pass, no deferred-read machinery.
	FastReads bool
	// Durable, when non-nil, gives the replica a write-ahead log plus
	// snapshot cell (DESIGN.md §14): every released commit is logged before
	// its effects become visible, lazy/recovery snapshots refresh the cell,
	// and Init replays snapshot + log suffix back to the exact pre-crash
	// commit frontier instead of re-fetching history from peers.
	Durable *wal.Store
	// SnapshotEvery compacts the log into a fresh snapshot once it holds
	// this many records; 0 selects a default of 256. Only meaningful with
	// Durable.
	SnapshotEvery int
	// ReplicatedAssign enables quorum-replicated GSN assignment: primaries
	// acknowledge their contiguous assignment frontier (AssignAck), the
	// sequencer releases commits only up to the majority floor
	// (OrderCommit), and takeover merges survivors' assignment tables — a
	// sequencer death leaves no assignment hole behind a released commit.
	ReplicatedAssign bool
	// App is this replica's application instance.
	App app.Application
	// OnRecover, if set, observes a durable recovery at Init with the
	// recovered commit frontier (after snapshot restore + log replay,
	// before the replica rejoins the group). The chaos harness's
	// recovery-frontier oracle feeds from it.
	OnRecover func(csn uint64)
	// OnApply, if set, observes every update actually executed against the
	// application, in execution order — test hooks use it to verify the
	// sequential-consistency prefix property across replicas.
	OnApply func(gsn uint64, id consistency.RequestID)
	// OnServeRead, if set, observes every read-only request at the moment
	// its reply is produced: the read's order GSN, the replica's CSN at
	// serve time, the client's staleness bound a, and whether the read was
	// deferred until a lazy update. The chaos harness's staleness-honesty
	// and deferred-read oracles feed from it.
	OnServeRead func(id consistency.RequestID, gsn, csn uint64, staleness int, deferred bool)
	// OnRestore, if set, observes every state snapshot actually restored
	// (lazy update at a secondary, recovery snapshot anywhere) with the
	// snapshot's CSN. The deferred-read oracle pairs it with OnServeRead.
	OnRestore func(csn uint64)
	// Obs, when non-nil, receives served-request counters, the
	// staleness-at-read histogram, and commit/defer/work queue depth gauges.
	Obs *obs.Registry
	// Tracer, when non-nil, receives one JSONL span per served job.
	Tracer *obs.Tracer
}

func (c *Config) setDefaults() {
	if c.ChaseInterval <= 0 {
		c.ChaseInterval = 500 * time.Millisecond
	}
	if c.TakeoverTimeout <= 0 {
		c.TakeoverTimeout = 300 * time.Millisecond
	}
	if c.RecoveryGap <= 0 {
		c.RecoveryGap = 32
	}
	if c.LazyInterval <= 0 {
		c.LazyInterval = 2 * time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
}

// Gateway is the server-side gateway handler for one replica. It implements
// node.Node; all state is confined to the owning node's callbacks.
type Gateway struct {
	cfg Config
	ctx node.Context

	stack  *group.Stack
	commit *consistency.CommitBuffer
	reads  *consistency.ReadBuffer

	// Role state.
	isLeader    bool
	isPublisher bool
	sequencerID node.ID
	seqState    *consistency.SequencerState
	seqReady    bool
	started     bool

	// Takeover (sequencer failover) state. takeoverReported tracks which
	// peers this era's round has counted, so a re-queried peer answering
	// twice contributes one vote toward the quorum, not two.
	epoch            uint64
	takeoverMax      uint64
	takeoverAwait    int
	takeoverReported map[node.ID]bool
	takeoverDone     node.CancelFunc
	heldRequests     []heldRequest

	// Batched-assignment state (sequencer role, AssignBatch > 1): the
	// accumulating window, its flush timer, and the scratch that filters
	// memoized duplicates out of a flush.
	batchUpdates    []consistency.RequestID
	batchReads      []consistency.RequestID
	batchFresh      []consistency.RequestID
	batchFlushArmed bool
	batchFlushFn    func()

	// seqBusyUntil is the modeled ordering pipeline's occupancy horizon
	// (SeqCostBase/SeqCostPerReq); zero value means idle.
	seqBusyUntil time.Time

	// Plain batching/fast-path counters (always on; tests and the loadmax
	// experiment read them without an obs registry).
	assignFlushes     uint64
	assignFlushedReqs uint64
	fastServed        uint64

	// Work queue (single server: queueing delay is emergent).
	queue []job
	busy  bool

	// applied is the GSN of the last update actually executed against the
	// application; it trails commit.MyCSN() by the queue contents.
	applied uint64

	// bodyArrived records when update bodies arrived, for tq measurement.
	bodyArrived map[consistency.RequestID]time.Time

	// recentBodies retains recently committed update bodies so peers whose
	// copy of a client multicast was lost can recover them (BodyRequest).
	recentBodies map[consistency.RequestID]consistency.Request
	recentOrder  []consistency.RequestID

	// observedAssigns remembers every update GSN assignment this primary
	// has seen, across sequencer eras (bounded FIFO). A new sequencer
	// consults it before assigning: re-issuing the original number for a
	// retransmitted request keeps the group's order identical everywhere.
	observedAssigns      map[consistency.RequestID]uint64
	observedAssignsOrder []consistency.RequestID

	// committed is the commit-dedup memo: request IDs whose update has
	// been applied (or deliberately skipped as a duplicate). A client
	// retransmission re-sequenced after a sequencer failover arrives as a
	// second (GSN, body) pair; the memo turns its application into a
	// reply-only no-op on every replica.
	committed      map[consistency.RequestID]bool
	committedOrder []consistency.RequestID

	// Publisher measurement counters (Section 5.4.1).
	updatesSinceBroadcast int       // nu
	lastBroadcastAt       time.Time // start of tu
	updatesSinceLazy      int       // nL
	lastLazyAt            time.Time // start of tL
	lazyTimerSet          bool

	// Tick callbacks bound once at Init so re-arming a periodic timer does
	// not allocate a fresh method-value closure per tick.
	chaseFn func()
	lazyFn  func()

	// Stuck-stream detection: the last time my_CSN advanced, and its value
	// then. A commit stream with my_GSN ahead of my_CSN that makes no
	// progress across chase ticks has a hole nothing will fill (both the
	// body and the assignment died with a crashed sequencer); the replica
	// recovers through a snapshot.
	lastCSN   uint64
	lastCSNAt time.Time

	// Replicated-assignment state. The tracker lives only at the leader;
	// lastAckedFrontier suppresses duplicate AssignAcks at followers;
	// lastFloor suppresses duplicate (or regressing) OrderCommit broadcasts
	// across sequencer eras; recovered is the durable frontier Init
	// reconstructed, when any.
	orderTracker      *consistency.OrderTracker
	lastAckedFrontier uint64
	lastFloor         uint64
	orderCommitsSent  uint64
	recovered         uint64

	// wedged marks a durability fail-stop (see walFail): the WAL could not
	// extend its frontier, so the replica goes silent rather than keep
	// acking commits it can no longer promise to recover.
	wedged bool

	// Reads deferred at a primary until its own commits catch up (the
	// paper's secondaries defer until a lazy update; a primary's state
	// converges through its commit stream instead).
	commitWaiters []consistency.PendingRead

	// ins holds the resolved observability instruments (all nil no-ops when
	// Config.Obs is nil); obsOn gates the depth-gauge refreshes.
	ins   replicaInstruments
	obsOn bool
}

var _ node.Node = (*Gateway)(nil)

// New creates a replica gateway. The caller registers it with a runtime
// under its node ID.
func New(cfg Config) *Gateway {
	cfg.setDefaults()
	if cfg.App == nil {
		panic("replica: Config.App is required")
	}
	if len(cfg.PrimaryGroup) < 2 {
		panic("replica: primary group needs at least a sequencer and one serving member")
	}
	return &Gateway{
		cfg:             cfg,
		commit:          consistency.NewCommitBuffer(),
		reads:           consistency.NewReadBuffer(0),
		bodyArrived:     make(map[consistency.RequestID]time.Time),
		recentBodies:    make(map[consistency.RequestID]consistency.Request),
		committed:       make(map[consistency.RequestID]bool),
		observedAssigns: make(map[consistency.RequestID]uint64),
	}
}

// Init implements node.Node.
func (g *Gateway) Init(ctx node.Context) {
	g.ctx = ctx
	// Bind the tick callbacks before anything (including the synchronous
	// first view callback out of Join) can schedule them.
	g.chaseFn = g.chaseTick
	g.lazyFn = g.lazyTick
	g.batchFlushFn = func() {
		g.batchFlushArmed = false
		g.flushAssignBatch()
	}
	g.lastBroadcastAt = ctx.Now()
	g.lastLazyAt = ctx.Now()
	g.stack = group.NewStack(ctx, g.cfg.Group, g.handleDelivery)
	g.sequencerID = sortedFirst(g.cfg.PrimaryGroup)
	g.ins = newReplicaInstruments(g.cfg.Obs, ctx.ID())
	g.obsOn = g.cfg.Obs != nil

	if g.cfg.ReplicatedAssign && g.cfg.Primary {
		g.commit.GateReleases()
	}
	// Durable recovery runs before Join: the replica rejoins the group
	// already standing at its pre-crash commit frontier.
	if g.cfg.Durable != nil {
		g.recoverDurable()
	}

	if g.cfg.Primary {
		g.stack.Join(PrimaryGroupName, g.cfg.PrimaryGroup, g.onPrimaryView)
	}
	g.started = true
	g.lastCSNAt = ctx.Now()
	g.ctx.Post(g.cfg.ChaseInterval, g.chaseFn)

	// Bootstrap/restart state sync: ask the sequencer for a snapshot so a
	// rejoining replica converges immediately instead of waiting for the
	// commit stream (primary) or the next lazy update (secondary). At a
	// fresh deployment the answer is an empty snapshot at CSN 0, a no-op.
	// A replica that just recovered durable state skips this — replacing
	// the peer re-fetch is the point of the log; if it is genuinely behind,
	// the chase tick's gap detection pulls a snapshot as usual.
	if !g.isLeader && g.recovered == 0 {
		g.stack.Send(g.sequencerID, consistency.SyncRequest{})
	}
}

// Recv implements node.Node.
func (g *Gateway) Recv(from node.ID, m node.Message) {
	if g.wedged {
		// Fail-stopped on a durability failure: drop everything, including
		// group heartbeats, so peers detect the silence and heal around
		// this node exactly as they would around a crash.
		return
	}
	if g.stack.Handle(from, m) {
		return
	}
	g.ctx.Logf("replica: unexpected raw message %T from %s", m, from)
}

// handleDelivery processes substrate-delivered application payloads.
func (g *Gateway) handleDelivery(from node.ID, m node.Message) {
	// Hot types arrive as pointers from the live transport's shared decoder
	// (tcpnet DecodeShared) and as values from the simulator; both forms
	// are accepted.
	switch msg := m.(type) {
	case consistency.Request:
		g.onRequest(from, msg)
	case *consistency.Request:
		g.onRequest(from, *msg)
	case consistency.GSNAssign:
		g.onAssign(msg)
	case *consistency.GSNAssign:
		g.onAssign(*msg)
	case consistency.GSNAssignBatch:
		g.onAssignBatch(msg)
	case *consistency.GSNAssignBatch:
		g.onAssignBatch(*msg)
	case consistency.GSNRequest:
		g.onGSNRequest(from, msg)
	case consistency.BodyRequest:
		g.onBodyRequest(from, msg)
	case consistency.StateUpdate:
		g.onStateUpdate(msg)
	case *consistency.StateUpdate:
		g.onStateUpdate(*msg)
	case consistency.SyncRequest:
		g.onSyncRequest(from)
	case consistency.GSNQuery:
		g.stack.Send(from, g.buildGSNReport(msg.Epoch))
	case consistency.GSNReport:
		g.onGSNReport(from, msg)
	case consistency.AssignAck:
		g.onAssignAck(from, msg)
	case consistency.OrderCommit:
		g.onOrderCommit(msg)
	case consistency.SequencerAnnounce:
		g.sequencerID = msg.Sequencer
	case consistency.DigestAnnounce:
		g.onDigest(from, msg)
	default:
		g.ctx.Logf("replica: unhandled payload %T from %s", m, from)
	}
}

// Sequencer returns this replica's current belief about the sequencer
// identity (for tests and diagnostics).
func (g *Gateway) Sequencer() node.ID { return g.sequencerID }

// IsLeader reports whether this replica currently acts as the sequencer.
func (g *Gateway) IsLeader() bool { return g.isLeader }

// IsPublisher reports whether this replica is the designated lazy
// publisher.
func (g *Gateway) IsPublisher() bool { return g.isPublisher }

// CSN returns the replica's commit sequence number.
func (g *Gateway) CSN() uint64 { return g.commit.MyCSN() }

// Applied returns the GSN of the last update executed against the app.
func (g *Gateway) Applied() uint64 { return g.applied }

// FastServed returns how many reads this gateway served through the
// frontier fast path.
func (g *Gateway) FastServed() uint64 { return g.fastServed }

// AssignBatchStats returns the sequencer role's flush count and the total
// requests those flushes covered; their ratio is the realized mean batch
// size. Zero on replicas that never sequenced with batching enabled.
func (g *Gateway) AssignBatchStats() (flushes, requests uint64) {
	return g.assignFlushes, g.assignFlushedReqs
}

// App exposes the application instance (tests verify replica state).
func (g *Gateway) App() app.Application { return g.cfg.App }

// EnableCommitReorderFault arms the deliberate commit-ordering bug in this
// replica's commit buffer — a test hook proving the chaos harness's
// sequential-consistency oracle detects (not merely tolerates) protocol
// violations. Production code never calls it.
func (g *Gateway) EnableCommitReorderFault() { g.commit.EnableFaultReorder() }

func sortedFirst(ids []node.ID) node.ID {
	if len(ids) == 0 {
		return ""
	}
	first := ids[0]
	for _, id := range ids[1:] {
		if id < first {
			first = id
		}
	}
	return first
}

// replicaTargets returns every other replica (primary members and
// secondaries), used for read-GSN broadcasts.
func (g *Gateway) replicaTargets() []node.ID {
	var out []node.ID
	self := g.ctx.ID()
	for _, id := range g.cfg.PrimaryGroup {
		if id != self {
			out = append(out, id)
		}
	}
	for _, id := range g.cfg.Secondaries {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

func (g *Gateway) otherPrimaries() []node.ID {
	var out []node.ID
	self := g.ctx.ID()
	for _, id := range g.cfg.PrimaryGroup {
		if id != self {
			out = append(out, id)
		}
	}
	return out
}

// errString converts an application error for the wire.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// fmtID renders a request ID for logs.
func fmtID(id consistency.RequestID) string {
	return fmt.Sprintf("%s/%d", id.Client, id.Seq)
}
