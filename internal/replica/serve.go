package replica

import (
	"hash/fnv"
	"time"

	"aqua/internal/consistency"
	"aqua/internal/node"
)

// jobKind distinguishes work-queue entries.
type jobKind int

const (
	jobUpdate jobKind = iota + 1
	jobRead
)

// job is one unit of work in the replica's single-server queue.
type job struct {
	kind jobKind
	req  consistency.Request
	from node.ID
	gsn  uint64 // update: assigned GSN; read: snapshot GSN
	// dup marks a re-sequenced duplicate update: advance the commit
	// position and reply, but do not apply.
	dup bool
	// arrivedAt is when the request body reached the gateway; tq runs from
	// here, minus the defer wait.
	arrivedAt time.Time
	// deferWait is tb for deferred reads.
	deferWait time.Duration
	// serviceStart is stamped when the job reaches the head of the queue.
	serviceStart time.Time
}

// onRequest handles a client request reaching this gateway.
func (g *Gateway) onRequest(from node.ID, req consistency.Request) {
	now := g.ctx.Now()
	if req.ReadOnly {
		if g.isLeader {
			// The sequencer orders reads and normally never serves them —
			// except as the last live primary, when refusing would leave
			// updates unacknowledgeable and fresh reads unservable.
			g.sequence(from, req)
			if !g.lonePrimary() {
				return
			}
		}
		if pr, ready := g.reads.AddRead(req, from, now); ready {
			g.readReady(pr)
		}
		return
	}

	// Update: every primary member commits it; the leader additionally
	// assigns its GSN.
	if !g.cfg.Primary {
		g.ctx.Logf("replica: secondary received update %s; ignoring", fmtID(req.ID))
		return
	}
	if _, seen := g.bodyArrived[req.ID]; !seen {
		g.bodyArrived[req.ID] = now
	}
	if g.isLeader {
		g.sequence(from, req)
	}
	g.enqueueCommits(g.commit.AddBody(req))
}

// onAssign handles a GSN broadcast from the sequencer.
func (g *Gateway) onAssign(a consistency.GSNAssign) {
	if a.Update {
		if !g.cfg.Primary {
			return // secondaries learn update effects only via lazy updates
		}
		g.observeAssign(a.ID, a.GSN)
		g.enqueueCommits(g.commit.AddAssign(a))
		g.maybeAckAssigns()
		return
	}
	g.commit.ObserveGSN(a.GSN)
	if pr, ready := g.reads.AddAssign(a.ID, a.GSN); ready {
		g.readReady(pr)
	}
}

// onAssignBatch handles a batched assignment window: the update range folds
// into the commit buffer in one group-commit pass, and every read in the
// window observes the shared frontier snapshot. Semantically identical to
// delivering the equivalent singleton GSNAssigns in order.
func (g *Gateway) onAssignBatch(ab consistency.GSNAssignBatch) {
	if g.cfg.Primary && len(ab.Updates) > 0 {
		for i, id := range ab.Updates {
			g.observeAssign(id, ab.First+uint64(i))
		}
		g.enqueueCommits(g.commit.AddAssignBatch(ab.First, ab.Updates))
		g.maybeAckAssigns()
	}
	if len(ab.Reads) > 0 {
		g.commit.ObserveGSN(ab.ReadGSN)
		for _, id := range ab.Reads {
			if pr, ready := g.reads.AddAssign(id, ab.ReadGSN); ready {
				g.readReady(pr)
			}
		}
	}
}

// enqueueCommits moves newly committable updates into the work queue, in
// commit order, and re-examines reads waiting for the commit stream.
func (g *Gateway) enqueueCommits(commits []consistency.Request) {
	if len(commits) == 0 {
		return
	}
	base := g.commit.MyCSN() - uint64(len(commits))
	now := g.ctx.Now()
	for i, req := range commits {
		arrived, ok := g.bodyArrived[req.ID]
		if !ok {
			arrived = now
		}
		delete(g.bodyArrived, req.ID)
		dup := g.committed[req.ID]
		if !dup {
			g.markCommitted(req.ID)
			g.rememberBody(req)
		}
		gsn := base + uint64(i) + 1
		// Durability barrier: the record hits the log before the job (and
		// with it the apply and the ack) exists. A failed append wedges the
		// replica — this commit and everything after it must not become
		// visible.
		if !g.walAppend(gsn, &req, dup) {
			break
		}
		g.enqueue(job{
			kind:      jobUpdate,
			req:       req,
			from:      req.ID.Client,
			gsn:       gsn,
			arrivedAt: arrived,
			dup:       dup,
		})
		// Publisher accounting: an update was received/ordered.
		g.updatesSinceBroadcast++
		g.updatesSinceLazy++
	}
	g.releaseCommitWaiters()
	g.observeDepths()
}

// observeAssign records an update assignment in the cross-era memo.
func (g *Gateway) observeAssign(id consistency.RequestID, gsn uint64) {
	const maxObserved = 4096
	if _, dup := g.observedAssigns[id]; dup {
		return
	}
	g.observedAssigns[id] = gsn
	g.observedAssignsOrder = append(g.observedAssignsOrder, id)
	if len(g.observedAssignsOrder) > maxObserved {
		victim := g.observedAssignsOrder[0]
		g.observedAssignsOrder = g.observedAssignsOrder[1:]
		delete(g.observedAssigns, victim)
	}
}

// stateHash digests the application state for anti-entropy comparison.
func (g *Gateway) stateHash() (uint64, bool) {
	snap, err := g.cfg.App.Snapshot()
	if err != nil {
		return 0, false
	}
	h := fnv.New64a()
	h.Write(snap)
	return h.Sum64(), true
}

// onDigest compares the sequencer's anti-entropy beacon against local
// state: same position, different bytes means this replica sits on the
// losing side of a re-sequencing window — resynchronize.
func (g *Gateway) onDigest(from node.ID, d consistency.DigestAnnounce) {
	if g.isLeader || !g.cfg.Primary {
		return
	}
	if g.applied != d.Applied {
		return // position mismatch: the gap/stuck recovery paths own this
	}
	if h, ok := g.stateHash(); ok && h != d.Hash {
		g.ctx.Logf("replica: state digest mismatch at %d; resyncing", d.Applied)
		g.stack.Send(from, consistency.SyncRequest{})
	}
}

// markCommitted records a request ID in the bounded commit-dedup memo.
func (g *Gateway) markCommitted(id consistency.RequestID) {
	const maxCommitted = 4096
	if g.committed[id] {
		return
	}
	g.committed[id] = true
	g.committedOrder = append(g.committedOrder, id)
	if len(g.committedOrder) > maxCommitted {
		victim := g.committedOrder[0]
		g.committedOrder = g.committedOrder[1:]
		delete(g.committed, victim)
	}
}

// recentCommittedIDs returns up to limit most recent committed request IDs
// for snapshot transfer.
func (g *Gateway) recentCommittedIDs(limit int) []consistency.RequestID {
	ids := g.committedOrder
	if len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	out := make([]consistency.RequestID, len(ids))
	copy(out, ids)
	return out
}

// rememberBody retains a committed update body (bounded FIFO) for peer
// body recovery.
func (g *Gateway) rememberBody(req consistency.Request) {
	const maxRecent = 1024
	if _, dup := g.recentBodies[req.ID]; dup {
		return
	}
	g.recentBodies[req.ID] = req
	g.recentOrder = append(g.recentOrder, req.ID)
	if len(g.recentOrder) > maxRecent {
		victim := g.recentOrder[0]
		g.recentOrder = g.recentOrder[1:]
		delete(g.recentBodies, victim)
	}
}

// onBodyRequest serves a peer's missing update body from the commit buffer
// or the recent-commit log by re-sending the original Request.
func (g *Gateway) onBodyRequest(from node.ID, br consistency.BodyRequest) {
	if req, ok := g.commit.Body(br.ID); ok {
		g.stack.Send(from, req)
		return
	}
	if req, ok := g.recentBodies[br.ID]; ok {
		g.stack.Send(from, req)
	}
}

// readReady runs the staleness check of Section 4.1.2 once a read has both
// its body and its GSN.
func (g *Gateway) readReady(pr consistency.PendingRead) {
	staleness := int64(pr.GSN) - int64(g.commit.MyCSN())
	g.ins.stalenessAtRead.Observe(float64(staleness))
	if staleness <= int64(pr.Req.Staleness) {
		if g.canFastServe(pr) {
			g.serveReadFast(pr)
			return
		}
		g.enqueueRead(pr)
		return
	}
	if g.cfg.Primary {
		// A primary converges through its own commit stream: hold the read
		// until my_CSN catches up (its assignments are already in flight).
		g.commitWaiters = append(g.commitWaiters, pr)
		return
	}
	// Secondary: deferred read until the next lazy update (tb starts now).
	g.ins.readsDeferred.Inc()
	g.reads.Defer(pr, g.ctx.Now())
	g.observeDepths()
}

// releaseCommitWaiters re-checks primary-held reads after CSN advances.
func (g *Gateway) releaseCommitWaiters() {
	if len(g.commitWaiters) == 0 {
		return
	}
	var still []consistency.PendingRead
	for _, pr := range g.commitWaiters {
		if int64(pr.GSN)-int64(g.commit.MyCSN()) <= int64(pr.Req.Staleness) {
			g.enqueueRead(pr)
		} else {
			still = append(still, pr)
		}
	}
	g.commitWaiters = still
}

// canFastServe gates the frontier fast path: the read's snapshot GSN is
// already committed locally (a frontier hit, not merely within the client's
// staleness bound), the single-server queue is idle with no simulated
// service delay to draw, the read was never deferred, and no tracer wants a
// span. Under those conditions serving inline is indistinguishable from a
// zero-delay pass through the queue — minus the job staging.
func (g *Gateway) canFastServe(pr consistency.PendingRead) bool {
	return g.cfg.FastReads && g.cfg.ServiceDelay == nil && g.cfg.Tracer == nil &&
		!g.busy && len(g.queue) == 0 &&
		pr.GSN <= g.commit.MyCSN() && pr.DeferredAt.IsZero()
}

// serveReadFast answers a frontier read inline: no job allocation, no queue
// pass, no deferred-read machinery — the application read and the reply
// are all that remains.
func (g *Gateway) serveReadFast(pr consistency.PendingRead) {
	tq := g.ctx.Now().Sub(pr.ArrivedAt)
	if tq < 0 {
		tq = 0
	}
	result, err := g.cfg.App.Read(pr.Req.Method, pr.Req.Payload)
	g.fastServed++
	g.ins.readsServed.Inc()
	g.ins.fastReads.Inc()
	if g.cfg.OnServeRead != nil {
		g.cfg.OnServeRead(pr.Req.ID, pr.GSN, g.commit.MyCSN(), pr.Req.Staleness, false)
	}
	g.stack.Send(pr.From, consistency.Reply{
		ID:      pr.Req.ID,
		Payload: result,
		Err:     errString(err),
		T1:      tq,
		CSN:     g.commit.MyCSN(),
		Replica: g.ctx.ID(),
	})
	g.publishPerf(0, tq, 0)
	g.ins.serviceTimeHist.Observe(0)
}

func (g *Gateway) enqueueRead(pr consistency.PendingRead) {
	var deferWait time.Duration
	if !pr.DeferredAt.IsZero() {
		deferWait = g.ctx.Now().Sub(pr.DeferredAt)
	}
	g.enqueue(job{
		kind:      jobRead,
		req:       pr.Req,
		from:      pr.From,
		gsn:       pr.GSN,
		arrivedAt: pr.ArrivedAt,
		deferWait: deferWait,
	})
}

// enqueue adds a job to the single-server queue and starts it if idle.
func (g *Gateway) enqueue(j job) {
	g.queue = append(g.queue, j)
	g.startNext()
	g.observeDepths()
}

func (g *Gateway) startNext() {
	if g.busy || len(g.queue) == 0 {
		return
	}
	g.busy = true
	j := g.queue[0]
	g.queue = g.queue[1:]
	j.serviceStart = g.ctx.Now()

	var delay time.Duration
	if g.cfg.ServiceDelay != nil && !(g.isLeader && j.kind == jobUpdate && !g.lonePrimary()) {
		// The sequencer's silent commits carry no simulated load: in the
		// paper it does not service requests at all. A lone surviving
		// primary, however, really is serving.
		delay = g.cfg.ServiceDelay(g.ctx.Rand())
	}
	g.ctx.Post(delay, func() { g.complete(j) })
}

// complete finishes a job: executes the application call, replies, and (for
// reads) publishes the measurements.
func (g *Gateway) complete(j job) {
	now := g.ctx.Now()
	ts := now.Sub(j.serviceStart)
	tq := j.serviceStart.Sub(j.arrivedAt) - j.deferWait
	if tq < 0 {
		tq = 0
	}

	switch j.kind {
	case jobUpdate:
		var result []byte
		var err error
		if j.gsn > g.applied && !j.dup {
			result, err = g.cfg.App.ApplyUpdate(j.req.Method, j.req.Payload)
			g.ins.updatesApplied.Inc()
			if g.cfg.OnApply != nil {
				g.cfg.OnApply(j.gsn, j.req.ID)
			}
		}
		if j.gsn > g.applied {
			g.applied = j.gsn
		}
		g.maybeCompact()
		// A job at or below g.applied was subsumed by a state snapshot
		// restored while it sat in the queue: applying it again would
		// corrupt the newer state. The reply (from restored state) still
		// serves the client.
		if !g.isLeader || g.lonePrimary() {
			g.stack.Send(j.from, consistency.Reply{
				ID:      j.req.ID,
				Payload: result,
				Err:     errString(err),
				T1:      ts + tq,
				CSN:     g.applied,
				Replica: g.ctx.ID(),
			})
		}
	case jobRead:
		result, err := g.cfg.App.Read(j.req.Method, j.req.Payload)
		g.ins.readsServed.Inc()
		if g.cfg.OnServeRead != nil {
			g.cfg.OnServeRead(j.req.ID, j.gsn, g.commit.MyCSN(), j.req.Staleness, j.deferWait > 0)
		}
		g.stack.Send(j.from, consistency.Reply{
			ID:       j.req.ID,
			Payload:  result,
			Err:      errString(err),
			T1:       ts + tq + j.deferWait,
			CSN:      g.commit.MyCSN(),
			Replica:  g.ctx.ID(),
			Deferred: j.deferWait > 0,
		})
		g.publishPerf(ts, tq, j.deferWait)
	}
	g.ins.serviceTimeHist.Observe(float64(ts) / 1e6)
	if g.cfg.Tracer != nil {
		g.recordServeSpan(&j, float64(ts)/1e6, float64(tq)/1e6)
	}

	g.busy = false
	g.startNext()
	g.observeDepths()
}

// publishPerf broadcasts newly measured (ts, tq, tb) to every client, with
// the lazy publisher's update-arrival statistics when applicable
// (Section 5.4).
func (g *Gateway) publishPerf(ts, tq, tb time.Duration) {
	now := g.ctx.Now()
	pb := consistency.PerfBroadcast{
		Replica:   g.ctx.ID(),
		TS:        ts,
		TQ:        tq,
		TB:        tb,
		Deferred:  tb > 0,
		Primary:   g.cfg.Primary,
		Sequencer: g.sequencerID,
	}
	if g.isPublisher {
		pb.IsPublisher = true
		pb.NU = g.updatesSinceBroadcast
		pb.TU = now.Sub(g.lastBroadcastAt)
		pb.NL = g.updatesSinceLazy
		pb.TL = now.Sub(g.lastLazyAt)
		g.updatesSinceBroadcast = 0
		g.lastBroadcastAt = now
	}
	g.ins.perfBroadcasts.Inc()
	for _, c := range g.cfg.Clients {
		g.stack.Send(c, pb)
	}
}

// onSyncRequest serves a state snapshot to a bootstrapping or recovering
// replica. Any primary answers (a restarted sequencer has no one above it
// to ask); a stale answer is harmless — StateUpdate application is
// monotone in CSN, and the requester re-chases if a gap remains.
func (g *Gateway) onSyncRequest(from node.ID) {
	if !g.cfg.Primary {
		return
	}
	snapshot, err := g.cfg.App.Snapshot()
	if err != nil {
		g.ctx.Logf("replica: sync snapshot failed: %v", err)
		return
	}
	g.stack.Send(from, consistency.StateUpdate{
		CSN:       g.applied,
		Snapshot:  snapshot,
		RecentIDs: g.recentCommittedIDs(1024),
	})
}

// onStateUpdate applies a state propagation: the lazy update at a secondary
// (Section 4.1.2) or a recovery snapshot at any replica. Restore the
// snapshot, advance my_CSN, then serve whatever reads the fresh state
// satisfies.
func (g *Gateway) onStateUpdate(su consistency.StateUpdate) {
	if su.CSN < g.commit.MyCSN() {
		return // stale propagation
	}
	if su.CSN == g.commit.MyCSN() {
		// Same position: normally a duplicate, but after a re-sequencing
		// window two replicas can hold different states at the same
		// position — the anti-entropy path corrects that here.
		if own, err := g.cfg.App.Snapshot(); err == nil && string(own) == string(su.Snapshot) {
			return
		}
	}
	if err := g.cfg.App.Restore(su.Snapshot); err != nil {
		g.ctx.Logf("replica: state update restore failed: %v", err)
		return
	}
	if g.cfg.OnRestore != nil {
		g.cfg.OnRestore(su.CSN)
	}
	for _, id := range su.RecentIDs {
		g.markCommitted(id)
	}
	// The installed snapshot subsumes the log: persist it as the new
	// durable baseline (the cell is written before the log reset, so a
	// crash between the two leaves only subsumed records behind). Failure
	// wedges the replica: nothing past this point may become visible.
	if !g.walSaveSnapshot(su.CSN, su.Snapshot, su.RecentIDs) {
		return
	}
	if g.isLeader && g.seqState != nil {
		// A snapshot proves history at least this deep exists; never
		// assign below it.
		g.seqState.Resume(su.CSN)
	}
	base := su.CSN
	for i, req := range g.commit.SkipTo(su.CSN) {
		// Updates staged above the snapshot become sequential: queue them
		// (the apply guard in complete() keeps ordering safe).
		g.rememberBody(req)
		if !g.walAppend(base+uint64(i)+1, &req, false) {
			return
		}
		g.enqueue(job{kind: jobUpdate, req: req, from: req.ID.Client,
			gsn: base + uint64(i) + 1, arrivedAt: g.ctx.Now()})
	}
	if su.CSN > g.applied {
		g.applied = su.CSN
	}
	g.releaseCommitWaiters()
	for _, pr := range g.reads.DrainDeferred() {
		if int64(pr.GSN)-int64(g.commit.MyCSN()) <= int64(pr.Req.Staleness) {
			g.enqueueRead(pr)
		} else {
			// Still too stale (a can be 0 while updates raced ahead):
			// keep deferring; DeferredAt is preserved so tb accumulates.
			g.redefer(pr)
		}
	}
}

func (g *Gateway) redefer(pr consistency.PendingRead) {
	saved := pr.DeferredAt
	g.reads.Defer(pr, saved)
}

// scheduleLazyTick arms the publisher's periodic propagation timer.
func (g *Gateway) scheduleLazyTick() {
	if g.lazyTimerSet {
		return
	}
	g.lazyTimerSet = true
	g.ctx.Post(g.cfg.LazyInterval, g.lazyFn)
}

// lazyTick propagates the publisher's applied state to every secondary and
// refreshes the clients' staleness inputs with a stats-only broadcast.
func (g *Gateway) lazyTick() {
	g.lazyTimerSet = false
	if !g.isPublisher || g.wedged {
		return // role moved on; the new publisher has its own timer
	}
	g.ins.lazyTicks.Inc()
	g.ins.lazyBatchHist.Observe(float64(g.updatesSinceLazy))
	snapshot, err := g.cfg.App.Snapshot()
	if err != nil {
		g.ctx.Logf("replica: snapshot failed: %v", err)
	} else {
		su := consistency.StateUpdate{
			CSN:       g.applied,
			Snapshot:  snapshot,
			RecentIDs: g.recentCommittedIDs(1024),
		}
		for _, id := range g.cfg.Secondaries {
			g.stack.Send(id, su)
		}
	}
	g.updatesSinceLazy = 0
	g.lastLazyAt = g.ctx.Now()
	g.scheduleLazyTick()
}
