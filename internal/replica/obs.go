package replica

import (
	"aqua/internal/node"
	"aqua/internal/obs"
)

// replicaInstruments holds the server gateway's resolved metrics. The zero
// value (observability disabled) is all nil no-op instruments.
type replicaInstruments struct {
	readsServed    *obs.Counter
	updatesApplied *obs.Counter
	readsDeferred  *obs.Counter
	perfBroadcasts *obs.Counter

	// stalenessAtRead samples my_GSN − my_CSN each time a read clears its
	// GSN wait — the quantity the staleness check of Section 4.1.2 compares
	// against the client's threshold a.
	stalenessAtRead *obs.Histogram

	// Queue depths, sampled whenever they change.
	commitStaged  *obs.Gauge
	deferredReads *obs.Gauge
	queueDepth    *obs.Gauge

	// Sequencer role.
	gsnAssigned   *obs.Counter
	readSnapshots *obs.Counter
	// assignBatchHist samples requests-per-flush when batched GSN ordering
	// is enabled; its mean is the realized amortization factor.
	assignBatchHist *obs.Histogram

	// fastReads counts reads served through the frontier fast path (a
	// subset of readsServed).
	fastReads *obs.Counter

	// Lazy publisher role.
	lazyTicks       *obs.Counter
	lazyBatchHist   *obs.Histogram
	serviceTimeHist *obs.Histogram

	// Durability: WAL appends and snapshot-cell writes, recoveries run at
	// Init, and the per-recovery replayed-record count.
	walAppends       *obs.Counter
	walSnapshots     *obs.Counter
	recoveries       *obs.Counter
	recoveryReplayed *obs.Histogram

	// Replicated ordering: majority-floor broadcasts by the sequencer.
	orderCommits *obs.Counter
}

func newReplicaInstruments(reg *obs.Registry, self node.ID) replicaInstruments {
	if reg == nil {
		return replicaInstruments{}
	}
	n := string(self)
	return replicaInstruments{
		readsServed:      reg.Counter("aqua_replica_reads_served_total", "node", n),
		updatesApplied:   reg.Counter("aqua_replica_updates_applied_total", "node", n),
		readsDeferred:    reg.Counter("aqua_replica_reads_deferred_total", "node", n),
		perfBroadcasts:   reg.Counter("aqua_replica_perf_broadcasts_total", "node", n),
		stalenessAtRead:  reg.Histogram("aqua_replica_staleness_at_read", obs.DepthBuckets(), "node", n),
		commitStaged:     reg.Gauge("aqua_replica_commit_staged", "node", n),
		deferredReads:    reg.Gauge("aqua_replica_deferred_reads", "node", n),
		queueDepth:       reg.Gauge("aqua_replica_queue_depth", "node", n),
		gsnAssigned:      reg.Counter("aqua_sequencer_gsn_assigned_total", "node", n),
		readSnapshots:    reg.Counter("aqua_sequencer_read_snapshots_total", "node", n),
		assignBatchHist:  reg.Histogram("aqua_sequencer_assign_batch_reqs", obs.DepthBuckets(), "node", n),
		fastReads:        reg.Counter("aqua_replica_fast_reads_total", "node", n),
		lazyTicks:        reg.Counter("aqua_publisher_lazy_ticks_total", "node", n),
		lazyBatchHist:    reg.Histogram("aqua_publisher_lazy_batch_updates", obs.DepthBuckets(), "node", n),
		serviceTimeHist:  reg.Histogram("aqua_replica_service_ms", obs.LatencyBucketsMS(), "node", n),
		walAppends:       reg.Counter("aqua_replica_wal_appends_total", "node", n),
		walSnapshots:     reg.Counter("aqua_replica_wal_snapshots_total", "node", n),
		recoveries:       reg.Counter("aqua_replica_recoveries_total", "node", n),
		recoveryReplayed: reg.Histogram("aqua_replica_recovery_replayed_records", obs.DepthBuckets(), "node", n),
		orderCommits:     reg.Counter("aqua_sequencer_order_commits_total", "node", n),
	}
}

// observeDepths refreshes the three depth gauges; called after any mutation
// of the commit buffer, defer queue, or work queue. Guarded by obsOn so the
// disabled path skips even the len() reads.
func (g *Gateway) observeDepths() {
	if !g.obsOn {
		return
	}
	g.ins.commitStaged.Set(int64(g.commit.StagedLen()))
	g.ins.deferredReads.Set(int64(g.reads.DeferredLen()))
	g.ins.queueDepth.Set(int64(len(g.queue)))
}

// recordServeSpan emits the replica-side trace record for one completed
// job. Callers guard on g.cfg.Tracer != nil.
func (g *Gateway) recordServeSpan(j *job, tsMS, tqMS float64) {
	kind := "serve_update"
	if j.kind == jobRead {
		kind = "serve_read"
	}
	span := obs.Span{
		Kind:      kind,
		Node:      string(g.ctx.ID()),
		Client:    string(j.req.ID.Client),
		Seq:       j.req.ID.Seq,
		Method:    j.req.Method,
		Deferred:  j.deferWait > 0,
		ServiceMS: tsMS,
		QueueMS:   tqMS,
		DeferMS:   float64(j.deferWait) / 1e6,
		Staleness: int64(j.gsn) - int64(g.commit.MyCSN()),
	}
	g.cfg.Tracer.Record(g.ctx.Now(), &span)
}
