package replica

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"aqua/internal/apps"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/netsim"
	"aqua/internal/node"
	"aqua/internal/sim"
	"aqua/internal/wal"
)

// lossSwitch is a mutable LossModel: tests arm and disarm a partition
// between RunFor windows.
type lossSwitch struct{ m netsim.LossModel }

func (l *lossSwitch) Drop(r *rand.Rand, from, to node.ID) bool {
	return l.m != nil && l.m.Drop(r, from, to)
}

// durableTestbed is the replicated-assignment + WAL variant of testbed:
// every primary runs with ReplicatedAssign and a durable store whose media
// survives restarts (the registry outlives gateway incarnations), and every
// restore is recorded per node.
type durableTestbed struct {
	*testbed
	reg      *wal.Registry
	loss     *lossSwitch
	restores map[node.ID][]uint64
}

func newDurableTestbed(seed int64, lazy time.Duration) *durableTestbed {
	s := sim.NewScheduler(seed)
	loss := &lossSwitch{}
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(ms)), sim.WithLoss(loss))
	dtb := &durableTestbed{
		testbed:  &testbed{s: s, rt: rt, replicas: make(map[node.ID]*Gateway), cli: &probe{}},
		reg:      wal.NewRegistry(),
		loss:     loss,
		restores: make(map[node.ID][]uint64),
	}
	primGroup := []node.ID{"p0", "p1", "p2"}
	secs := []node.ID{"s1", "s2"}
	for _, id := range primGroup {
		g := New(dtb.config(id, true, lazy))
		dtb.replicas[id] = g
		rt.Register(id, g)
	}
	for _, id := range secs {
		g := New(dtb.config(id, false, lazy))
		dtb.replicas[id] = g
		rt.Register(id, g)
	}
	rt.Register("cli", dtb.cli)
	return dtb
}

func (dtb *durableTestbed) config(id node.ID, primary bool, lazy time.Duration) Config {
	cfg := Config{
		Primary:      primary,
		PrimaryGroup: []node.ID{"p0", "p1", "p2"},
		Secondaries:  []node.ID{"s1", "s2"},
		Clients:      []node.ID{"cli"},
		Group:        group.DefaultConfig(),
		LazyInterval: lazy,
		App:          apps.NewKVStore(),
		OnRestore: func(csn uint64) {
			dtb.restores[id] = append(dtb.restores[id], csn)
		},
	}
	if primary {
		cfg.Durable = wal.NewStore(dtb.reg.Get(id))
		cfg.ReplicatedAssign = true
	}
	return cfg
}

// restartRecover replaces a crashed primary with an incarnation that
// recovers from the same durable media.
func (dtb *durableTestbed) restartRecover(id node.ID, lazy time.Duration) *Gateway {
	g := New(dtb.config(id, true, lazy))
	dtb.replicas[id] = g
	dtb.rt.Restart(id, g)
	return g
}

// TestDurableAckedFrontierSurvivesRecovery is the high-severity regression:
// a follower that acknowledged assignment frontier F to the sequencer, then
// crash-recovered before the commits released, must still hold every
// assignment at or below F — in its commit buffer, in its GSNReport, and
// usable to commit at the original GSNs. Before the fix, assignments were
// WAL-logged only at release, so the recovered incarnation came back empty
// and the acked frontier was a broken promise.
func TestDurableAckedFrontierSurvivesRecovery(t *testing.T) {
	const lazy = 30 * time.Second
	dtb := newDurableTestbed(40, lazy)
	dtb.rt.Start()
	dtb.s.RunFor(200 * ms)

	// Feed p2 three bodies and their assignments directly, bypassing the
	// sequencer, so no majority floor ever rises: the commits stay staged
	// behind the release gate — exactly the acked-but-unreleased window.
	p2 := dtb.replicas["p2"]
	dtb.s.After(0, func() {
		for i := uint64(1); i <= 3; i++ {
			p2.onRequest("cli", req(i, false, "Set", fmt.Sprintf("k%d=%d", i, i), 0))
			p2.onAssign(consistency.GSNAssign{
				ID: consistency.RequestID{Client: "cli", Seq: i}, GSN: i, Update: true,
			})
		}
	})
	dtb.s.RunFor(300 * ms)

	if got := p2.commit.AssignFrontier(); got != 3 {
		t.Fatalf("pre-crash assignment frontier = %d, want 3", got)
	}
	if got := p2.CSN(); got != 0 {
		t.Fatalf("pre-crash CSN = %d, want 0 (no floor released)", got)
	}
	if got := p2.cfg.Durable.AssignFrontier(); got != 3 {
		t.Fatalf("pre-crash durable assign frontier = %d, want 3 (acks must be logged first)", got)
	}

	// Crash and recover from the same media.
	dtb.rt.Crash("p2")
	dtb.s.RunFor(100 * ms)
	p2r := dtb.restartRecover("p2", lazy)
	dtb.s.RunFor(300 * ms)

	if got := p2r.commit.AssignFrontier(); got != 3 {
		t.Fatalf("recovered assignment frontier = %d, want 3 (acked frontier lost in crash)", got)
	}
	r := p2r.buildGSNReport(7)
	if len(r.Assigns) != 3 {
		t.Fatalf("recovered GSNReport carries %d assigns, want 3: %+v", len(r.Assigns), r.Assigns)
	}

	// The recovered assignments commit at their original GSNs once the
	// bodies return and the floor releases them.
	dtb.s.After(0, func() {
		for i := uint64(1); i <= 3; i++ {
			p2r.onRequest("cli", req(i, false, "Set", fmt.Sprintf("k%d=%d", i, i), 0))
		}
		p2r.onOrderCommit(consistency.OrderCommit{Floor: 3})
	})
	dtb.s.RunFor(500 * ms)
	if got := p2r.Applied(); got != 3 {
		t.Fatalf("recovered replica applied %d, want 3", got)
	}
	if v, err := p2r.App().Read("Get", []byte("k2")); err != nil || string(v) != "2" {
		t.Fatalf("recovered replica k2 = %q (%v)", v, err)
	}
}

// TestTakeoverWaitsForMajorityReports is the finding-2 regression: a
// replicated-assign takeover must not finish below a majority of the full
// primary group. With every peer dead the new leader waits — re-querying as
// peers recover — instead of resuming with holes behind a released floor.
func TestTakeoverWaitsForMajorityReports(t *testing.T) {
	const lazy = 30 * time.Second
	dtb := newDurableTestbed(41, lazy)
	dtb.rt.Start()
	dtb.s.RunFor(200 * ms)

	for i := uint64(1); i <= 2; i++ {
		dtb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	dtb.s.RunFor(time.Second)
	if got := dtb.replicas["p1"].Applied(); got != 2 {
		t.Fatalf("pre-fault p1 applied = %d, want 2", got)
	}

	// Kill a follower and the sequencer: p1 is the lone survivor of a
	// three-member group — below majority with self alone.
	dtb.rt.Crash("p2")
	dtb.rt.Crash("p0")
	dtb.s.RunFor(3 * time.Second)

	p1 := dtb.replicas["p1"]
	if !p1.IsLeader() {
		t.Fatal("p1 did not take leadership")
	}
	if p1.seqReady {
		t.Fatal("takeover finished without a majority of reports (quorum intersection voided)")
	}

	// p2 recovers with its durable state; its report completes the quorum.
	dtb.restartRecover("p2", lazy)
	dtb.s.RunFor(3 * time.Second)
	if !p1.seqReady {
		t.Fatal("takeover did not complete after a majority became reachable")
	}

	// Sequencing resumes: the two-member majority releases new commits.
	dtb.update(3, "k3=3")
	dtb.s.RunFor(2 * time.Second)
	if got := p1.Applied(); got != 3 {
		t.Fatalf("p1 applied %d after takeover, want 3", got)
	}
	if got := dtb.replicas["p2"].Applied(); got != 3 {
		t.Fatalf("recovered p2 applied %d, want 3", got)
	}
	if p1.OrderCommits() == 0 {
		t.Fatal("replicated ordering never engaged after takeover")
	}
}

// TestFloorRebroadcastAfterLostOrderCommit is the finding-3 regression: a
// follower whose OrderCommit was lost (and whose traffic then stopped) must
// still release its fully-assigned commits through the leader's periodic
// floor retransmission — via the commit stream, not the stuck-detection
// snapshot fallback.
func TestFloorRebroadcastAfterLostOrderCommit(t *testing.T) {
	const lazy = 30 * time.Second
	dtb := newDurableTestbed(42, lazy)
	dtb.rt.Start()
	dtb.s.RunFor(200 * ms)

	for i := uint64(1); i <= 2; i++ {
		dtb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	dtb.s.RunFor(400 * ms)
	p2 := dtb.replicas["p2"]
	if got := p2.CSN(); got != 2 {
		t.Fatalf("pre-partition p2 CSN = %d, want 2", got)
	}

	// Isolate p2 from the sequencer (only): update 3's assignment and its
	// OrderCommit both die on the p0→p2 link, while p0+p1 form a majority
	// and release it. The window stays under the failure detector's
	// timeout, so no view change masks the loss.
	dtb.loss.m = netsim.NewPartition([]node.ID{"p0"}, []node.ID{"p2"})
	dtb.update(3, "k3=3")
	dtb.s.RunFor(600 * ms)
	if got := dtb.replicas["p1"].CSN(); got != 3 {
		t.Fatalf("majority did not release during partition: p1 CSN = %d", got)
	}
	if got := p2.CSN(); got != 2 {
		t.Fatalf("partitioned p2 CSN = %d, want 2", got)
	}
	dtb.loss.m = nil // heal

	// p2's chase recovers the assignment; the leader's floor rebroadcast
	// must then release it. Well before the stuck-detection snapshot path
	// (2×ChaseInterval of no progress) could paper over a missing
	// retransmission.
	dtb.s.RunFor(1500 * ms)
	if got := p2.CSN(); got != 3 {
		t.Fatalf("p2 CSN = %d after heal, want 3 (floor never retransmitted?)", got)
	}
	if got := p2.Applied(); got != 3 {
		t.Fatalf("p2 applied = %d, want 3", got)
	}
	for _, csn := range dtb.restores["p2"] {
		if csn > 0 {
			t.Fatalf("p2 converged via snapshot restore at %d, not the commit stream: floor rebroadcast missing", csn)
		}
	}
}

// errMedia wraps a Media and fails appends on demand — the real-media
// failure (e.g. a full or dying disk) the simulator's MemMedia never
// produces.
type errMedia struct {
	wal.Media
	fail bool
}

func (m *errMedia) AppendLog(b []byte) error {
	if m.fail {
		return fmt.Errorf("media: injected append failure")
	}
	return m.Media.AppendLog(b)
}

// TestWALFailureWedgesReplica is the finding-4 regression: a durable
// replica whose WAL append fails must fail stop — no further applies, no
// acks, no participation — rather than keep serving with a permanently
// stale durable frontier.
func TestWALFailureWedgesReplica(t *testing.T) {
	s := sim.NewScheduler(43)
	rt := sim.NewRuntime(s, sim.WithDelay(netsim.ConstantDelay(ms)))
	tb := &testbed{s: s, rt: rt, replicas: make(map[node.ID]*Gateway), cli: &probe{}}
	em := &errMedia{Media: wal.NewMemMedia()}
	mk := func(id node.ID) *Gateway {
		cfg := Config{
			Primary:      true,
			PrimaryGroup: []node.ID{"p0", "p1", "p2"},
			Secondaries:  nil,
			Clients:      []node.ID{"cli"},
			Group:        group.DefaultConfig(),
			LazyInterval: 30 * time.Second,
			App:          apps.NewKVStore(),
		}
		if id == "p2" {
			cfg.Durable = wal.NewStore(em)
		}
		g := New(cfg)
		tb.replicas[id] = g
		rt.Register(id, g)
		return g
	}
	for _, id := range []node.ID{"p0", "p1", "p2"} {
		mk(id)
	}
	rt.Register("cli", tb.cli)
	rt.Start()
	s.RunFor(200 * ms)

	for i := uint64(1); i <= 2; i++ {
		for _, id := range []node.ID{"p0", "p1", "p2"} {
			tb.cli.send(id, req(i, false, "Set", fmt.Sprintf("k%d=%d", i, i), 0))
		}
	}
	s.RunFor(time.Second)
	p2 := tb.replicas["p2"]
	if got := p2.Applied(); got != 2 {
		t.Fatalf("pre-fault p2 applied = %d, want 2", got)
	}

	// The disk dies. The next release must wedge p2, not silently skip
	// durability while still acking.
	em.fail = true
	for _, id := range []node.ID{"p0", "p1", "p2"} {
		tb.cli.send(id, req(3, false, "Set", "k3=3", 0))
	}
	s.RunFor(time.Second)

	if !p2.Wedged() {
		t.Fatal("WAL append failure did not wedge the replica")
	}
	if got := p2.Applied(); got != 2 {
		t.Fatalf("wedged p2 applied = %d, want 2 (nothing after the failure may apply)", got)
	}
	if got := tb.replicas["p1"].Applied(); got != 3 {
		t.Fatalf("healthy p1 applied = %d, want 3", got)
	}

	// A wedged replica is silent: no replies to later requests.
	for _, id := range []node.ID{"p0", "p1", "p2"} {
		tb.cli.send(id, req(4, false, "Set", "k4=4", 0))
	}
	s.RunFor(2 * time.Second)
	for _, r := range tb.cli.replies {
		if r.Replica == "p2" && r.ID.Seq >= 3 {
			t.Fatalf("wedged p2 replied to seq %d", r.ID.Seq)
		}
	}
	if got := tb.replicas["p1"].Applied(); got != 4 {
		t.Fatalf("group did not heal around the wedged replica: p1 applied %d, want 4", got)
	}
}
