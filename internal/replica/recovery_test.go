package replica

import (
	"fmt"
	"testing"
	"time"

	"aqua/internal/apps"
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// restart replaces a crashed replica with a fresh (empty) incarnation, as
// the sim runtime's process-restart model prescribes.
func (tb *testbed) restart(id node.ID, primary bool, lazy time.Duration) *Gateway {
	g := New(Config{
		Primary:      primary,
		PrimaryGroup: []node.ID{"p0", "p1", "p2"},
		Secondaries:  []node.ID{"s1", "s2"},
		Clients:      []node.ID{"cli"},
		Group:        group.DefaultConfig(),
		LazyInterval: lazy,
		App:          apps.NewKVStore(),
	})
	tb.replicas[id] = g
	tb.rt.Restart(id, g)
	return g
}

func TestRecoveryPrimaryRestartCatchesUp(t *testing.T) {
	const lazy = 10 * time.Second // lazy updates irrelevant here
	tb := newTestbed(30, lazy, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)

	// History before the crash.
	for i := uint64(1); i <= 5; i++ {
		tb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	tb.s.RunFor(time.Second)
	tb.rt.Crash("p2")
	// More history while p2 is down.
	for i := uint64(6); i <= 10; i++ {
		tb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	tb.s.RunFor(time.Second)

	// Restart p2 empty: its Init-time SyncRequest must pull the snapshot.
	p2 := tb.restart("p2", true, lazy)
	tb.s.RunFor(3 * time.Second)

	if got := p2.CSN(); got != 10 {
		t.Fatalf("restarted p2 CSN = %d, want 10", got)
	}
	if got := p2.Applied(); got != 10 {
		t.Fatalf("restarted p2 applied = %d, want 10", got)
	}
	v, err := p2.App().Read("Get", []byte("k7"))
	if err != nil || string(v) != "7" {
		t.Fatalf("restarted p2 k7 = %q (%v)", v, err)
	}

	// And it participates in new commits.
	tb.update(11, "k11=11")
	tb.s.RunFor(time.Second)
	if got := p2.Applied(); got != 11 {
		t.Fatalf("restarted p2 did not resume committing: applied %d", got)
	}
}

func TestRecoveryGapTriggersSync(t *testing.T) {
	// Suppress the Init sync by restarting while the sequencer is briefly
	// unreachable... simpler: drive the gap path directly. A replica whose
	// my_GSN raced far ahead of my_CSN requests a snapshot on its next
	// chase tick.
	tb := newTestbed(31, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	for i := uint64(1); i <= 3; i++ {
		tb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	tb.s.RunFor(time.Second)

	p2 := tb.replicas["p2"]
	// Simulate missed history: a read assign with a far-future GSN.
	tb.s.After(0, func() {
		p2.onAssign(consistency.GSNAssign{ID: consistency.RequestID{Client: "cli", Seq: 99}, GSN: 100})
	})
	tb.s.RunFor(2 * time.Second) // > ChaseInterval

	// The sync snapshot only covers the sequencer's applied state (3), so
	// the gap remains numerically — but the state must have been pulled.
	if got := p2.CSN(); got < 3 {
		t.Fatalf("gap-triggered sync did not run: CSN %d", got)
	}
}

func TestRecoverySecondaryRestartViaInitSync(t *testing.T) {
	const lazy = 30 * time.Second // too long to help within the test
	tb := newTestbed(32, lazy, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	for i := uint64(1); i <= 4; i++ {
		tb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	tb.s.RunFor(time.Second)
	tb.rt.Crash("s1")
	tb.s.RunFor(time.Second)

	s1 := tb.restart("s1", false, lazy)
	tb.s.RunFor(2 * time.Second)
	if got := s1.CSN(); got != 4 {
		t.Fatalf("restarted s1 CSN = %d, want 4 (Init sync, not lazy update)", got)
	}
	// It can serve reads against the restored state immediately.
	tb.read(50, 5, "s1")
	tb.s.RunFor(time.Second)
	served := false
	for _, r := range tb.cli.replies {
		if r.ID.Seq == 50 && r.Replica == "s1" && r.CSN == 4 {
			served = true
		}
	}
	if !served {
		t.Fatalf("restarted secondary did not serve; replies %+v", tb.cli.replies)
	}
}

func TestRecoveryRestartedSequencerResumesViaQuery(t *testing.T) {
	tb := newTestbed(33, 10*time.Second, nil)
	tb.rt.Start()
	tb.s.RunFor(100 * ms)
	for i := uint64(1); i <= 6; i++ {
		tb.update(i, fmt.Sprintf("k%d=%d", i, i))
	}
	tb.s.RunFor(time.Second)
	tb.rt.Crash("p0")
	tb.s.RunFor(5 * time.Second) // p1 takes over

	if !tb.replicas["p1"].IsLeader() {
		t.Fatal("p1 did not take over")
	}
	tb.update(7, "k7=7")
	tb.s.RunFor(time.Second)

	// p0 restarts empty; as the lowest ID it reclaims leadership and must
	// resume sequencing above GSN 7 (learned from the GSNQuery round), not
	// from its empty local state.
	p0 := tb.restart("p0", true, 10*time.Second)
	tb.s.RunFor(8 * time.Second)
	if !p0.IsLeader() {
		t.Fatal("restarted p0 did not reclaim leadership")
	}
	if tb.replicas["p1"].IsLeader() {
		t.Fatal("p1 was not deposed")
	}
	tb.update(8, "k8=8")
	tb.s.RunFor(2 * time.Second)
	if got := tb.replicas["p1"].Applied(); got != 8 {
		t.Fatalf("p1 applied %d after p0's return, want 8 (GSN continuity broken?)", got)
	}
	if got := p0.Applied(); got != 8 {
		t.Fatalf("restarted p0 applied %d, want 8", got)
	}
}
