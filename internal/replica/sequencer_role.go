package replica

import (
	"aqua/internal/consistency"
	"aqua/internal/group"
	"aqua/internal/node"
)

// heldRequest is a request whose sequencing is postponed while a takeover's
// GSNQuery round is in flight.
type heldRequest struct {
	from node.ID
	req  consistency.Request
}

// onPrimaryView reacts to primary-group membership changes: sequencer
// (leader) takeover and lazy-publisher designation. The rules are
// deterministic over the view so every member converges without extra
// agreement rounds: the leader is the lowest live member; the publisher is
// the lowest live non-leader member (or the leader itself in a singleton
// view).
func (g *Gateway) onPrimaryView(v group.View) {
	self := g.ctx.ID()

	if v.Leader == self {
		if !g.isLeader {
			g.becomeSequencer()
		}
	} else if g.isLeader {
		// Deposed (e.g. a heal revealed a lower-ID member): stop
		// sequencing; the rightful leader announces itself.
		g.isLeader = false
		g.seqReady = false
	}
	if v.Leader != "" {
		g.sequencerID = v.Leader
	}

	publisher := v.Leader
	for _, m := range v.Members {
		if m != v.Leader {
			publisher = m
			break
		}
	}
	if publisher == self && !g.isPublisher {
		g.isPublisher = true
		g.lastLazyAt = g.ctx.Now()
		g.updatesSinceLazy = 0
		g.scheduleLazyTick()
	} else if publisher != self {
		g.isPublisher = false
	}
}

// becomeSequencer starts a takeover: a GSNQuery round over the live
// primaries so assignments resume above every GSN any survivor has seen.
// The round always runs — a process cannot distinguish the deployment's
// first boot from its own restart, and a restarted sequencer that skipped
// the round would reissue GSNs from zero. It completes as soon as every
// queried peer reports (a few network round trips at first boot) or at the
// takeover timeout.
func (g *Gateway) becomeSequencer() {
	g.isLeader = true
	if g.seqState == nil {
		g.seqState = consistency.NewSequencerState(0)
	}

	g.epoch++
	g.seqReady = false
	g.takeoverMax = g.commit.MyGSN()
	peers := g.livePrimaryPeers()
	if len(peers) == 0 {
		g.finishTakeover()
		return
	}
	g.takeoverAwait = len(peers)
	epoch := g.epoch
	for _, id := range peers {
		g.stack.Send(id, consistency.GSNQuery{Epoch: epoch})
	}
	if g.takeoverDone != nil {
		g.takeoverDone()
	}
	g.takeoverDone = g.ctx.SetTimer(g.cfg.TakeoverTimeout, func() {
		if g.isLeader && !g.seqReady && epoch == g.epoch {
			g.finishTakeover()
		}
	})
}

func (g *Gateway) onGSNReport(r consistency.GSNReport) {
	if !g.isLeader || r.Epoch != g.epoch {
		return
	}
	if g.seqReady {
		// Late report (its link was recovering during the round): fold it
		// in — Resume is monotone, so this can only correct a takeover
		// that undershot, and a state sync closes the history gap.
		if r.GSN > g.seqState.GSN() {
			g.seqState.Resume(r.GSN)
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, consistency.SyncRequest{})
			}
		}
		return
	}
	if r.GSN > g.takeoverMax {
		g.takeoverMax = r.GSN
	}
	g.takeoverAwait--
	if g.takeoverAwait <= 0 {
		if g.takeoverDone != nil {
			g.takeoverDone()
		}
		g.finishTakeover()
	}
}

func (g *Gateway) finishTakeover() {
	g.seqState.Resume(g.takeoverMax)
	g.seqReady = true
	g.ctx.Logf("replica: sequencer takeover complete at GSN %d", g.seqState.GSN())

	// A restarted (or long-partitioned) leader may be behind the history it
	// now sequences: recover state from the surviving primaries.
	if g.commit.MyCSN() < g.takeoverMax {
		for _, id := range g.livePrimaryPeers() {
			g.stack.Send(id, consistency.SyncRequest{})
		}
	}

	// Tell every replica and client who sequences now.
	ann := consistency.SequencerAnnounce{Sequencer: g.ctx.ID()}
	for _, id := range g.replicaTargets() {
		g.stack.Send(id, ann)
	}
	for _, id := range g.cfg.Clients {
		g.stack.Send(id, ann)
	}

	held := g.heldRequests
	g.heldRequests = nil
	for _, h := range held {
		g.sequence(h.from, h.req)
	}
}

func (g *Gateway) livePrimaryPeers() []node.ID {
	v, ok := g.stack.ViewOf(PrimaryGroupName)
	if !ok {
		return g.otherPrimaries()
	}
	var out []node.ID
	for _, id := range v.Members {
		if id != g.ctx.ID() {
			out = append(out, id)
		}
	}
	return out
}

// sequence performs the sequencer's part of request processing
// (Sections 4.1.1 and 4.1.2).
func (g *Gateway) sequence(from node.ID, req consistency.Request) {
	if !g.seqReady {
		g.heldRequests = append(g.heldRequests, heldRequest{from: from, req: req})
		return
	}
	// Fold any GSN evidence the commit stream has seen (assignments from a
	// previous sequencer era) into the counter before using it: assigning a
	// number the group already committed would be dropped as a duplicate.
	g.seqState.Resume(g.commit.MyGSN())
	if req.ReadOnly {
		// Broadcast the current GSN, without advancing it, to the primary
		// and secondary replicas.
		g.ins.readSnapshots.Inc()
		gsn := g.seqState.SnapshotRead(req.ID)
		assign := consistency.GSNAssign{ID: req.ID, GSN: gsn}
		for _, id := range g.replicaTargets() {
			g.stack.Send(id, assign)
		}
		// Feed the local read pipeline too: needed when this node also
		// serves (lone surviving primary); otherwise a bounded memo.
		g.onAssign(assign)
		return
	}
	// Advance the GSN and broadcast the assignment to the other primaries.
	// A retransmission of a request some previous sequencer already
	// numbered keeps its original GSN: re-sequencing would let replicas
	// apply it at different positions.
	gsn, seen := g.observedAssigns[req.ID]
	if !seen {
		gsn = g.seqState.AssignUpdate(req.ID)
		g.ins.gsnAssigned.Inc()
	}
	assign := consistency.GSNAssign{ID: req.ID, GSN: gsn, Update: true}
	for _, id := range g.otherPrimaries() {
		g.stack.Send(id, assign)
	}
	// The sequencer also tracks commits locally (it never replies, but its
	// state must stay current so a later takeover by another member — or a
	// failback — never regresses, and so its own GSNReports are accurate).
	g.onAssign(assign)
}

// onGSNRequest services a chase: a replica holds a request whose assignment
// never arrived (typically lost with a crashed sequencer).
func (g *Gateway) onGSNRequest(from node.ID, r consistency.GSNRequest) {
	if !g.isLeader {
		// Not the sequencer: forward the chase to whoever we believe is.
		if g.sequencerID != g.ctx.ID() && g.sequencerID != "" && from != g.sequencerID {
			g.stack.Send(g.sequencerID, r)
		}
		return
	}
	if !g.seqReady {
		g.heldRequests = append(g.heldRequests, heldRequest{
			from: from,
			req:  consistency.Request{ID: r.ID, ReadOnly: !r.Update},
		})
		return
	}
	if r.Update {
		gsn, seen := g.observedAssigns[r.ID]
		if !seen {
			gsn = g.seqState.AssignUpdate(r.ID)
		}
		assign := consistency.GSNAssign{ID: r.ID, GSN: gsn, Update: true}
		for _, id := range g.otherPrimaries() {
			g.stack.Send(id, assign)
		}
		g.onAssign(assign)
		return
	}
	gsn := g.seqState.SnapshotRead(r.ID)
	g.stack.Send(from, consistency.GSNAssign{ID: r.ID, GSN: gsn})
}

// chaseTick periodically re-requests GSN assignments for requests that have
// been buffered longer than the chase interval.
func (g *Gateway) chaseTick() {
	cutoff := g.ctx.Now().Add(-g.cfg.ChaseInterval)
	if !g.isLeader && g.sequencerID != g.ctx.ID() && g.sequencerID != "" {
		for _, id := range g.reads.AwaitingGSN(cutoff) {
			g.stack.Send(g.sequencerID, consistency.GSNRequest{ID: id})
		}
		for _, id := range g.commit.PendingBodies() {
			if at, ok := g.bodyArrived[id]; ok && at.Before(cutoff) {
				g.stack.Send(g.sequencerID, consistency.GSNRequest{ID: id, Update: true})
			}
		}
	}
	// Track commit-stream progress for stuck detection.
	now := g.ctx.Now()
	if csn := g.commit.MyCSN(); csn != g.lastCSN {
		g.lastCSN = csn
		g.lastCSNAt = now
	}
	// Pull a snapshot when this replica has missed history: a large gap
	// (it restarted or rejoined after a partition), or a stream that is
	// ahead-but-stuck — a hole whose body and assignment both died with a
	// crashed sequencer, which no per-request chase can fill.
	stuck := g.commit.Staleness() > 0 && now.Sub(g.lastCSNAt) > 2*g.cfg.ChaseInterval
	if g.commit.Staleness() > g.cfg.RecoveryGap || stuck {
		if g.isLeader {
			// A leader heals from its peers (any primary answers).
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, consistency.SyncRequest{})
			}
		} else if g.sequencerID != g.ctx.ID() && g.sequencerID != "" {
			g.stack.Send(g.sequencerID, consistency.SyncRequest{})
		}
	}
	// A leader also re-queries peers periodically until it has heard from
	// everyone once: takeover rounds can complete on the timeout while a
	// recovering peer's higher GSN is still in flight.
	if g.isLeader && g.seqReady && g.takeoverAwait > 0 {
		for _, id := range g.livePrimaryPeers() {
			g.stack.Send(id, consistency.GSNQuery{Epoch: g.epoch})
		}
	}
	// Anti-entropy beacon: the sequencer publishes its state digest so a
	// primary that diverged inside a re-sequencing window detects it and
	// resynchronizes.
	if g.isLeader && g.seqReady && !g.busy {
		if h, ok := g.stateHash(); ok {
			d := consistency.DigestAnnounce{Applied: g.applied, Hash: h}
			for _, id := range g.livePrimaryPeers() {
				g.stack.Send(id, d)
			}
		}
	}
	// Assignments stuck without bodies stall the commit stream; recover
	// the bodies from peer primaries (any role does this, leader included).
	if g.cfg.Primary {
		for _, id := range g.commit.PendingAssignments() {
			for _, peer := range g.otherPrimaries() {
				g.stack.Send(peer, consistency.BodyRequest{ID: id})
			}
		}
	}
	g.ctx.Post(g.cfg.ChaseInterval, g.chaseFn)
}

// lonePrimary reports whether this node is the only live member of the
// primary group — the degenerate case where the sequencer must also serve.
func (g *Gateway) lonePrimary() bool {
	v, ok := g.stack.ViewOf(PrimaryGroupName)
	return ok && len(v.Members) == 1 && v.Leader == g.ctx.ID()
}
